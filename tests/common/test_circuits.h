// Small hand-built circuits shared by tests (paper figures and basic
// shapes).
#pragma once

#include "base/strings.h"
#include "netlist/netlist.h"

namespace mcrt::testing {

/// Paper Fig. 1a: two load-enable registers feeding one gate.
///
///   in0 -> [FF en] -.
///                    AND -> out
///   in1 -> [FF en] -'
///
/// Both registers share the enable input "en": a forward mc-retiming step
/// may move them (together with EN) across the AND gate.
inline Netlist fig1_circuit() {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  const NetId a = n.add_input("in0");
  const NetId b = n.add_input("in1");
  Register ra;
  ra.d = a;
  ra.clk = clk;
  ra.en = en;
  ra.name = "ra";
  const NetId qa = n.add_register(std::move(ra));
  Register rb;
  rb.d = b;
  rb.clk = clk;
  rb.en = en;
  rb.name = "rb";
  const NetId qb = n.add_register(std::move(rb));
  const NetId g = n.add_lut(TruthTable::and_n(2), {qa, qb}, "g");
  n.add_output("out", g);
  return n;
}

/// A pipeline: in -> gate^depth -> [FF]^regs -> out, single class.
/// Registers bunched at the end so minperiod retiming has work to do.
/// Each gate is an inverter so functional checks stay easy.
inline Netlist chain_circuit(std::size_t depth, std::size_t regs,
                             std::int64_t gate_delay = 1) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  NetId net = n.add_input("in0");
  for (std::size_t i = 0; i < depth; ++i) {
    net = n.add_lut(TruthTable::inverter(), {net},
                    str_format("g%zu", i));
    n.set_node_delay(NodeId{n.net(net).driver.index}, gate_delay);
  }
  for (std::size_t i = 0; i < regs; ++i) {
    Register ff;
    ff.d = net;
    ff.clk = clk;
    ff.name = str_format("ff%zu", i);
    net = n.add_register(std::move(ff));
  }
  n.add_output("out", net);
  return n;
}

/// Paper Fig. 5 circuit: registers with reset values that require local and
/// then global justification when moved backward.
///
///   i0 --------------+
///                    AND(v2) --> NAND(v3) -> [FF s=1] -> out0
///   i1 --+           |      |
///        |           |      +-> INV(v4)  -> [FF s=0] -> out1
///   i2 -- AND? ------+
///
/// Concretely: v2 = AND(i0, i1); v3 = NAND(v2, i2); v4 = INV(v2).
/// FF values chosen so moving both registers backward across v3/v4 then
/// across v2 produces a conflict that only global justification resolves.
inline Netlist fig5_circuit() {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId srst = n.add_input("srst");
  const NetId i0 = n.add_input("i0");
  const NetId i1 = n.add_input("i1");
  const NetId i2 = n.add_input("i2");
  const NetId v2 = n.add_lut(TruthTable::and_n(2), {i0, i1}, "v2");
  const NetId v3 = n.add_lut(TruthTable::nand_n(2), {v2, i2}, "v3");
  const NetId v4 = n.add_lut(TruthTable::inverter(), {v2}, "v4");
  Register f3;
  f3.d = v3;
  f3.clk = clk;
  f3.sync_ctrl = srst;
  f3.sync_val = ResetVal::kOne;
  f3.name = "f3";
  const NetId q3 = n.add_register(std::move(f3));
  Register f4;
  f4.d = v4;
  f4.clk = clk;
  f4.sync_ctrl = srst;
  f4.sync_val = ResetVal::kZero;
  f4.name = "f4";
  const NetId q4 = n.add_register(std::move(f4));
  n.add_output("out0", q3);
  n.add_output("out1", q4);
  return n;
}

}  // namespace mcrt::testing

#include "transform/sweep.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(SweepTest, RemovesDeadLogic) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId live = n.add_lut(TruthTable::inverter(), {a}, "live");
  n.add_lut(TruthTable::inverter(), {a}, "dead");
  n.add_output("o", live);
  SweepStats stats;
  const Netlist s = sweep(n, &stats);
  EXPECT_EQ(stats.nodes_removed, 1u);
  EXPECT_EQ(s.stats().luts, 1u);
}

TEST(SweepTest, RemovesDeadRegistersTransitively) {
  // Register chain feeding nothing: both registers go, and the enable cone
  // they referenced dies with them.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  const NetId en = n.add_lut(TruthTable::inverter(), {a}, "en_cone");
  Register f1;
  f1.d = a;
  f1.clk = clk;
  f1.en = en;
  const NetId q1 = n.add_register(std::move(f1));
  Register f2;
  f2.d = q1;
  f2.clk = clk;
  n.add_register(std::move(f2));
  n.add_output("o", a);
  SweepStats stats;
  const Netlist s = sweep(n, &stats);
  EXPECT_EQ(stats.registers_removed, 2u);
  EXPECT_EQ(s.register_count(), 0u);
  EXPECT_EQ(s.stats().luts, 0u);
}

TEST(SweepTest, FoldsConstants) {
  Netlist n;
  const NetId c = n.add_const(false);
  const NetId a = n.add_input("a");
  const NetId g = n.add_lut(TruthTable::and_n(2), {a, c}, "g");
  const NetId h = n.add_lut(TruthTable::or_n(2), {g, a}, "h");
  n.add_output("o", h);
  SweepStats stats;
  const Netlist s = sweep(n, &stats);
  EXPECT_GE(stats.constants_folded, 1u);
  // OR(0, a) = a: output driven by a buffer-free path.
  const auto eq = check_sequential_equivalence(n, s, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
  EXPECT_EQ(s.stats().luts, 0u);
}

TEST(SweepTest, ConstantEnableDropped) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId one = n.add_const(true);
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = one;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q", q);
  const Netlist s = sweep(n, nullptr);
  ASSERT_EQ(s.register_count(), 1u);
  EXPECT_FALSE(s.reg(RegId{0}).en.valid());
  const auto eq = check_sequential_equivalence(n, s, {});
  EXPECT_TRUE(eq.equivalent);
}

TEST(SweepTest, ConstantAsyncAssertedFoldsRegister) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId one = n.add_const(true);
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = one;
  ff.async_val = ResetVal::kOne;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q", q);
  const Netlist s = sweep(n, nullptr);
  EXPECT_EQ(s.register_count(), 0u);
  EXPECT_EQ(s.const_value(s.node(s.outputs()[0]).fanins[0]), true);
}

TEST(SweepTest, PreservesBehaviourOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    const Netlist s = sweep(n, nullptr);
    EXPECT_TRUE(s.validate().empty());
    EquivalenceOptions opt;
    opt.runs = 3;
    opt.cycles = 32;
    const auto eq = check_sequential_equivalence(n, s, opt);
    EXPECT_TRUE(eq.equivalent) << "seed " << seed << ": " << eq.counterexample;
  }
}

TEST(SweepTest, KeepsPrimaryInterface) {
  const Netlist n = testing::fig1_circuit();
  const Netlist s = sweep(n, nullptr);
  EXPECT_EQ(s.inputs().size(), n.inputs().size());
  EXPECT_EQ(s.outputs().size(), n.outputs().size());
}

TEST(SweepTest, IdempotentOnCleanCircuit) {
  const Netlist n = testing::fig1_circuit();
  const Netlist s1 = sweep(n, nullptr);
  SweepStats stats;
  const Netlist s2 = sweep(s1, &stats);
  EXPECT_EQ(stats.nodes_removed, 0u);
  EXPECT_EQ(stats.registers_removed, 0u);
  EXPECT_EQ(s2.stats().luts, s1.stats().luts);
}

}  // namespace
}  // namespace mcrt

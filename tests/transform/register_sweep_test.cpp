#include "transform/register_sweep.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(RegisterSweepTest, MergesIdenticalRegisters) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  for (int i = 0; i < 3; ++i) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    const NetId q = n.add_register(std::move(ff));
    n.add_output("o" + std::to_string(i), q);
  }
  RegisterSweepStats stats;
  const Netlist s = register_sweep(n, &stats);
  EXPECT_EQ(stats.merged_registers, 2u);
  EXPECT_EQ(s.register_count(), 1u);
  const auto eq = check_sequential_equivalence(n, s, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(RegisterSweepTest, ParallelShiftChainsCollapseTransitively) {
  // Two parallel 3-deep chains off the same source: 6 -> 3 registers.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  std::vector<NetId> tails;
  for (int c = 0; c < 2; ++c) {
    NetId net = d;
    for (int k = 0; k < 3; ++k) {
      Register ff;
      ff.d = net;
      ff.clk = clk;
      net = n.add_register(std::move(ff));
    }
    tails.push_back(net);
  }
  n.add_output("o", n.add_lut(TruthTable::xor_n(2), {tails[0], tails[1]}));
  RegisterSweepStats stats;
  const Netlist s = register_sweep(n, &stats);
  EXPECT_EQ(stats.merged_registers, 3u);
  EXPECT_EQ(s.register_count(), 3u);
  const auto eq = check_sequential_equivalence(n, s, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(RegisterSweepTest, DifferentControlsNotMerged) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en1 = n.add_input("en1");
  const NetId en2 = n.add_input("en2");
  const NetId d = n.add_input("d");
  for (int i = 0; i < 2; ++i) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.en = i == 0 ? en1 : en2;
    n.add_output("o" + std::to_string(i), n.add_register(std::move(ff)));
  }
  RegisterSweepStats stats;
  const Netlist s = register_sweep(n, &stats);
  EXPECT_EQ(stats.merged_registers, 0u);
  EXPECT_EQ(s.register_count(), 2u);
}

TEST(RegisterSweepTest, ConflictingResetValuesNotMerged) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId d = n.add_input("d");
  const ResetVal values[2] = {ResetVal::kZero, ResetVal::kOne};
  for (int i = 0; i < 2; ++i) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.async_ctrl = rst;
    ff.async_val = values[i];
    n.add_output("o" + std::to_string(i), n.add_register(std::move(ff)));
  }
  const Netlist s = register_sweep(n, nullptr);
  EXPECT_EQ(s.register_count(), 2u);
}

TEST(RegisterSweepTest, DontCareRefinesIntoConcrete) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId d = n.add_input("d");
  const ResetVal values[2] = {ResetVal::kOne, ResetVal::kDontCare};
  for (int i = 0; i < 2; ++i) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.async_ctrl = rst;
    ff.async_val = values[i];
    n.add_output("o" + std::to_string(i), n.add_register(std::move(ff)));
  }
  RegisterSweepStats stats;
  const Netlist s = register_sweep(n, &stats);
  EXPECT_EQ(stats.merged_registers, 1u);
  ASSERT_EQ(s.register_count(), 1u);
  EXPECT_EQ(s.reg(RegId{0}).async_val, ResetVal::kOne);
}

TEST(RegisterSweepTest, PreservesBehaviourOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    const Netlist s = register_sweep(n, nullptr);
    EXPECT_TRUE(s.validate().empty());
    EquivalenceOptions opt;
    opt.runs = 2;
    opt.cycles = 32;
    const auto eq = check_sequential_equivalence(n, s, opt);
    EXPECT_TRUE(eq.equivalent) << "seed " << seed << ": "
                               << eq.counterexample;
  }
}

TEST(RegisterSweepTest, Idempotent) {
  const Netlist n = random_sequential_circuit(9);
  const Netlist once = register_sweep(n, nullptr);
  RegisterSweepStats stats;
  register_sweep(once, &stats);
  EXPECT_EQ(stats.merged_registers, 0u);
}

}  // namespace
}  // namespace mcrt

#include "transform/decompose_controls.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(DecomposeEnablesTest, RemovesAllEnables) {
  const Netlist n = testing::fig1_circuit();
  const Netlist d = decompose_load_enables(n);
  EXPECT_EQ(d.stats().with_en, 0u);
  EXPECT_EQ(d.register_count(), n.register_count());
  // Two feedback muxes appear.
  EXPECT_EQ(d.stats().luts, n.stats().luts + 2);
}

TEST(DecomposeEnablesTest, PreservesBehaviour) {
  RandomCircuitOptions opt;
  opt.use_en = true;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist n = random_sequential_circuit(seed, opt);
    const Netlist d = decompose_load_enables(n);
    EquivalenceOptions eq_opt;
    eq_opt.runs = 3;
    eq_opt.cycles = 32;
    const auto eq = check_sequential_equivalence(n, d, eq_opt);
    EXPECT_TRUE(eq.equivalent) << "seed " << seed << ": " << eq.counterexample;
  }
}

TEST(DecomposeSyncTest, RemovesSyncControls) {
  RandomCircuitOptions opt;
  opt.use_sync = true;
  const Netlist n = random_sequential_circuit(21, opt);
  const Netlist d = decompose_sync_controls(n);
  EXPECT_EQ(d.stats().with_sync, 0u);
  EXPECT_EQ(d.register_count(), n.register_count());
}

TEST(DecomposeSyncTest, PreservesBehaviour) {
  RandomCircuitOptions opt;
  opt.use_sync = true;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist n = random_sequential_circuit(seed, opt);
    const Netlist d = decompose_sync_controls(n);
    EquivalenceOptions eq_opt;
    eq_opt.runs = 3;
    eq_opt.cycles = 32;
    const auto eq = check_sequential_equivalence(n, d, eq_opt);
    EXPECT_TRUE(eq.equivalent) << "seed " << seed << ": " << eq.counterexample;
  }
}

TEST(DecomposeSyncTest, SyncSetWithEnableBeatsEnable) {
  // sync=1 while en=0 must still load the set value after decomposition.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d_in = n.add_input("d");
  const NetId en = n.add_input("en");
  const NetId sr = n.add_input("rst_s");
  Register ff;
  ff.d = d_in;
  ff.clk = clk;
  ff.en = en;
  ff.sync_ctrl = sr;
  ff.sync_val = ResetVal::kOne;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q", q);

  const Netlist dec = decompose_sync_controls(n);
  EquivalenceOptions opt;
  opt.reset_inputs = {"rst_s"};
  const auto eq = check_sequential_equivalence(n, dec, opt);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(DecomposeTest, AsyncNeverTouched) {
  RandomCircuitOptions opt;
  opt.use_async = true;
  const Netlist n = random_sequential_circuit(5, opt);
  const Netlist d1 = decompose_load_enables(n);
  const Netlist d2 = decompose_sync_controls(n);
  EXPECT_EQ(d1.stats().with_async, n.stats().with_async);
  EXPECT_EQ(d2.stats().with_async, n.stats().with_async);
}

}  // namespace
}  // namespace mcrt

#include "transform/strash.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(StrashTest, MergesExactDuplicates) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g1 = n.add_lut(TruthTable::and_n(2), {a, b}, "g1");
  const NetId g2 = n.add_lut(TruthTable::and_n(2), {a, b}, "g2");
  n.add_output("o1", n.add_lut(TruthTable::inverter(), {g1}));
  n.add_output("o2", n.add_lut(TruthTable::inverter(), {g2}));
  StrashStats stats;
  const Netlist s = structural_hash(n, &stats);
  // g2 merges into g1, then the two inverters merge too.
  EXPECT_EQ(stats.merged_nodes, 2u);
  EXPECT_EQ(s.stats().luts, 2u);
  const auto eq = check_sequential_equivalence(n, s, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(StrashTest, CommutedFaninsMerge) {
  // Pin order is canonicalized: AND(a,b) and AND(b,a) share one key.
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g1 = n.add_lut(TruthTable::and_n(2), {a, b});
  const NetId g2 = n.add_lut(TruthTable::and_n(2), {b, a});
  n.add_output("o", n.add_lut(TruthTable::xor_n(2), {g1, g2}));
  StrashStats stats;
  const Netlist s = structural_hash(n, &stats);
  EXPECT_EQ(stats.merged_nodes, 1u);
  const auto eq = check_sequential_equivalence(n, s, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(StrashTest, PermutedNonCommutativeFunctionIsCorrect) {
  // mux21(sel, a, b) vs the pin-permuted instance computing the same
  // function: canonicalization must permute the truth table, not just the
  // pins, so behaviour is preserved exactly.
  Netlist n;
  const NetId s0 = n.add_input("s");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  // f(x0,x1,x2) with pins (a, s, b): same function as mux21 on (s, a, b):
  // out = s ? b : a. Build the permuted table explicitly.
  std::uint64_t bits = 0;
  for (std::uint32_t row = 0; row < 8; ++row) {
    const bool pa = row & 1;
    const bool ps = row & 2;
    const bool pb = row & 4;
    if (ps ? pb : pa) bits |= std::uint64_t{1} << row;
  }
  const NetId g1 = n.add_lut(TruthTable::mux21(), {s0, a, b});
  const NetId g2 = n.add_lut(TruthTable(3, bits), {a, s0, b});
  n.add_output("o", n.add_lut(TruthTable::xor_n(2), {g1, g2}));
  StrashStats stats;
  const Netlist out = structural_hash(n, &stats);
  // Canonical keys coincide (same sorted pins, same permuted function).
  EXPECT_EQ(stats.merged_nodes, 1u);
  const auto eq = check_sequential_equivalence(n, out, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(StrashTest, DifferentFunctionNotMerged) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g1 = n.add_lut(TruthTable::and_n(2), {a, b});
  const NetId g2 = n.add_lut(TruthTable::or_n(2), {a, b});
  n.add_output("o", n.add_lut(TruthTable::xor_n(2), {g1, g2}));
  StrashStats stats;
  const Netlist s = structural_hash(n, &stats);
  EXPECT_EQ(stats.merged_nodes, 0u);
  EXPECT_EQ(s.stats().luts, 3u);
}

TEST(StrashTest, PreservesRegistersAndBehaviour) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    const Netlist s = structural_hash(n, nullptr);
    EXPECT_TRUE(s.validate().empty());
    EXPECT_EQ(s.register_count(), n.register_count());
    EquivalenceOptions opt;
    opt.runs = 2;
    opt.cycles = 32;
    opt.init_registers_by_name = true;
    const auto eq = check_sequential_equivalence(n, s, opt);
    EXPECT_TRUE(eq.equivalent) << "seed " << seed << ": "
                               << eq.counterexample;
  }
}

TEST(StrashTest, Idempotent) {
  const Netlist n = random_sequential_circuit(5);
  const Netlist once = structural_hash(n, nullptr);
  StrashStats stats;
  const Netlist twice = structural_hash(once, &stats);
  EXPECT_EQ(stats.merged_nodes, 0u);
  EXPECT_EQ(twice.stats().luts, once.stats().luts);
}

TEST(StrashTest, MergesTransitively) {
  // Two identical 2-level cones collapse completely.
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId c = n.add_input("c");
  auto cone = [&] {
    const NetId g = n.add_lut(TruthTable::nand_n(2), {a, b});
    return n.add_lut(TruthTable::xor_n(2), {g, c});
  };
  const NetId x = cone();
  const NetId y = cone();
  n.add_output("o", n.add_lut(TruthTable::or_n(2), {x, y}));
  StrashStats stats;
  const Netlist s = structural_hash(n, &stats);
  EXPECT_EQ(stats.merged_nodes, 2u);
  // OR(x, x) remains (strash does not simplify, only merges).
  EXPECT_EQ(s.stats().luts, 3u);
}

}  // namespace
}  // namespace mcrt

// FuzzCase model: oracle naming, the mcrt-fuzz-repro/1 round trip, clock
// domain counting, and the determinism contract of the case sampler.
#include "fuzz/fuzz_case.h"

#include <gtest/gtest.h>

#include <set>

#include "blif/blif.h"
#include "fuzz/case_gen.h"
#include "netlist/structural_hash.h"
#include "sim/equivalence.h"
#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(OracleName, RoundTripsAllKinds) {
  const OracleKind kinds[] = {
      OracleKind::kSerialVsBulk, OracleKind::kBulkVsServe,
      OracleKind::kMonoVsWindowed, OracleKind::kCompactVsLegacy,
      OracleKind::kCslowVsReplicated};
  std::set<std::string> names;
  for (OracleKind kind : kinds) {
    const char* name = oracle_name(kind);
    ASSERT_NE(name, nullptr);
    names.insert(name);
    const auto parsed = oracle_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(names.size(), kOracleCount) << "names must be distinct";
  EXPECT_FALSE(oracle_from_name("not-an-oracle").has_value());
  EXPECT_FALSE(oracle_from_name("").has_value());
}

TEST(ReproFormat, RoundTripsACase) {
  FuzzCase c;
  c.name = "fuzz-serial-vs-bulk-s42";
  c.seed = 0xdeadbeefcafef00dULL;  // needs all 64 bits to survive
  c.oracle = OracleKind::kMonoVsWindowed;
  c.script = "sweep; retime(d=10,minperiod)";
  // Delay-free, like every sampled case: gate delays are not part of the
  // BLIF exchange format — flow scripts assign them (d=10).
  c.netlist = testing::chain_circuit(4, 2, 0);

  const std::string text = write_repro_string(c);
  EXPECT_EQ(text.rfind("# mcrt-fuzz-repro/1", 0), 0u);
  // No break: header for a healthy case.
  EXPECT_EQ(text.find("break:"), std::string::npos);

  auto parsed = read_repro_string(text);
  ASSERT_TRUE(std::holds_alternative<FuzzCase>(parsed))
      << std::get<std::string>(parsed);
  const FuzzCase& back = std::get<FuzzCase>(parsed);
  EXPECT_EQ(back.name, c.name);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.oracle, c.oracle);
  EXPECT_EQ(back.script, c.script);
  EXPECT_TRUE(back.break_spec.empty());
  // BLIF inserts an alias buffer when an output name differs from its
  // driving net, so the parsed circuit may gain a buffer LUT; what the
  // oracles rely on is that the *bytes* both engines parse are stable and
  // the behaviour is unchanged.
  EXPECT_EQ(write_blif_string(back.netlist), write_blif_string(c.netlist));
  const EquivalenceResult eq =
      check_sequential_equivalence(c.netlist, back.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(ReproFormat, BreakSpecTravelsInTheFile) {
  FuzzCase c;
  c.name = "self-test";
  c.seed = 7;
  c.oracle = OracleKind::kSerialVsBulk;
  c.script = "sweep";
  c.break_spec = "flip-lut";
  c.netlist = testing::chain_circuit(2, 1);
  auto parsed = read_repro_string(write_repro_string(c));
  ASSERT_TRUE(std::holds_alternative<FuzzCase>(parsed))
      << std::get<std::string>(parsed);
  EXPECT_EQ(std::get<FuzzCase>(parsed).break_spec, "flip-lut");
}

TEST(ReproFormat, RejectsGarbageWithAnExplanation) {
  for (const char* bad : {
           "",
           "not a repro at all",
           "# mcrt-fuzz-repro/1\nname: x\n",            // headers but no blif
           "# mcrt-fuzz-repro/2\nname: x\nblif:\n",     // wrong version
           "# mcrt-fuzz-repro/1\noracle: bogus\nblif:\n.model m\n.end\n",
       }) {
    auto parsed = read_repro_string(bad);
    EXPECT_TRUE(std::holds_alternative<std::string>(parsed)) << bad;
    if (std::holds_alternative<std::string>(parsed)) {
      EXPECT_FALSE(std::get<std::string>(parsed).empty()) << bad;
    }
  }
}

TEST(ClockDomains, CountsDistinctClockNets) {
  Netlist comb;
  const NetId a = comb.add_input("a");
  comb.add_output("o", comb.add_lut(TruthTable::inverter(), {a}, "g"));
  EXPECT_EQ(clock_domain_count(comb), 0u);

  EXPECT_EQ(clock_domain_count(testing::chain_circuit(3, 2)), 1u);
  EXPECT_EQ(clock_domain_count(register_class_zoo(1)), 1u);
  EXPECT_EQ(clock_domain_count(dual_clock_rig(1)), 2u);
}

TEST(CaseGen, SameSeedAndIndexIsIdentical) {
  for (std::size_t index = 0; index < 8; ++index) {
    const FuzzCase a = generate_fuzz_case(99, index);
    const FuzzCase b = generate_fuzz_case(99, index);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.oracle, b.oracle);
    EXPECT_EQ(a.script, b.script);
    EXPECT_EQ(structural_hash(a.netlist), structural_hash(b.netlist));
    // The circuit must be valid and have something to check.
    EXPECT_TRUE(a.netlist.validate().empty());
    EXPECT_FALSE(a.netlist.outputs().empty());
  }
}

TEST(CaseGen, OracleRotatesRoundRobin) {
  for (std::size_t index = 0; index < 8; ++index) {
    EXPECT_EQ(static_cast<std::size_t>(generate_fuzz_case(1, index).oracle),
              index % kOracleCount);
  }
}

TEST(CaseGen, CaseSeedRegeneratesTheSameCase) {
  const FuzzCase by_index = generate_fuzz_case(5, 2);
  const FuzzCase by_seed = generate_fuzz_case_from_seed(
      fuzz_case_seed(5, 2), by_index.oracle);
  EXPECT_EQ(by_seed.name, by_index.name);
  EXPECT_EQ(by_seed.script, by_index.script);
  EXPECT_EQ(structural_hash(by_seed.netlist),
            structural_hash(by_index.netlist));
}

TEST(CaseGen, DistinctIndicesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::size_t index = 0; index < 64; ++index) {
    seeds.insert(fuzz_case_seed(1, index));
  }
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(CaseGen, ScriptAlwaysHasSweepAndOneRetime) {
  for (std::size_t index = 0; index < 16; ++index) {
    const FuzzCase c = generate_fuzz_case(3, index);
    EXPECT_NE(c.script.find("sweep"), std::string::npos) << c.script;
    EXPECT_NE(c.script.find("retime("), std::string::npos) << c.script;
  }
}

}  // namespace
}  // namespace mcrt

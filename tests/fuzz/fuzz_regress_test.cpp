// Replays every committed reproducer in testdata/fuzz/.
//
// Two kinds of file live there:
//   - healthy reproducers (no break: header): fixed bugs and known-good
//     differential cases — these must PASS, forever;
//   - sabotage reproducers (break: flip-lut): oracle-sensitivity guards —
//     the planted miscompile must still be CAUGHT, forever.
//
// tools/update_fuzz_corpus.sh re-minimizes the corpus after oracle changes.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"
#include "fuzz/oracles.h"

#ifndef MCRT_TESTDATA_DIR
#error "MCRT_TESTDATA_DIR must point at the repo's testdata directory"
#endif

namespace mcrt {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_files() {
  const fs::path dir = fs::path(MCRT_TESTDATA_DIR) / "fuzz";
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzRegress, CorpusIsCommitted) {
  EXPECT_FALSE(corpus_files().empty())
      << "no reproducers in " << MCRT_TESTDATA_DIR << "/fuzz";
}

TEST(FuzzRegress, EveryCommittedReproducerReplaysAsExpected) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    auto parsed = read_repro_file(path);
    ASSERT_TRUE(std::holds_alternative<FuzzCase>(parsed))
        << std::get<std::string>(parsed);
    const FuzzCase& c = std::get<FuzzCase>(parsed);
    const OracleVerdict v = run_oracle(c);
    if (c.break_spec.empty()) {
      EXPECT_TRUE(v.pass) << "regression: " << v.first_failure();
    } else {
      EXPECT_FALSE(v.pass)
          << "oracle lost sensitivity: the planted '" << c.break_spec
          << "' miscompile is no longer caught";
    }
  }
}

}  // namespace
}  // namespace mcrt

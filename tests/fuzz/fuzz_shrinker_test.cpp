// Shrinker: cone extraction correctness and the acceptance self-test —
// a planted one-gate miscompile must minimize to a tiny reproducer that
// still fails its oracle.
#include "fuzz/shrinker.h"

#include <gtest/gtest.h>

#include "fuzz/case_gen.h"
#include "netlist/structural_hash.h"
#include "sim/equivalence.h"
#include "workload/random_circuit.h"
#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(ExtractCone, KeepingEverythingIsIdentity) {
  const Netlist n = register_class_zoo(5);
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < n.outputs().size(); ++i) keep.push_back(i);
  const Netlist cone =
      extract_cone(n, keep, std::vector<char>(n.net_count(), 0));
  EXPECT_TRUE(cone.validate().empty());
  EXPECT_EQ(structural_hash(cone), structural_hash(n));
}

TEST(ExtractCone, DropsLogicOnlyTheRemovedOutputObserves) {
  // Two independent cones: in0 -> inv -> o0, in1 -> inv -> inv -> o1.
  Netlist n;
  const NetId a = n.add_input("in0");
  const NetId b = n.add_input("in1");
  const NetId ga = n.add_lut(TruthTable::inverter(), {a}, "ga");
  const NetId gb1 = n.add_lut(TruthTable::inverter(), {b}, "gb1");
  const NetId gb2 = n.add_lut(TruthTable::inverter(), {gb1}, "gb2");
  n.add_output("o0", ga);
  n.add_output("o1", gb2);

  const Netlist cone =
      extract_cone(n, {0}, std::vector<char>(n.net_count(), 0));
  EXPECT_TRUE(cone.validate().empty());
  EXPECT_EQ(cone.outputs().size(), 1u);
  // Only o0's cone survives: one inverter, fed by in0 alone (in1 and its
  // two gates observed nothing that remains).
  EXPECT_EQ(cone.stats().luts, 1u);
  EXPECT_EQ(cone.inputs().size(), 1u);
}

TEST(ExtractCone, CutNetBecomesAPrimaryInput) {
  // in -> g0 -> g1 -> out; cutting g0's output leaves g1 fed by a fresh PI.
  Netlist n;
  const NetId in = n.add_input("in");
  const NetId g0 = n.add_lut(TruthTable::inverter(), {in}, "g0");
  const NetId g1 = n.add_lut(TruthTable::inverter(), {g0}, "g1");
  n.add_output("out", g1);

  std::vector<char> cut(n.net_count(), 0);
  cut[g0.index()] = 1;
  const Netlist cone = extract_cone(n, {0}, cut);
  EXPECT_TRUE(cone.validate().empty());
  EXPECT_EQ(cone.stats().luts, 1u);
  EXPECT_EQ(cone.inputs().size(), 1u);  // "in" is no longer needed
}

TEST(ExtractCone, PreservesRegisterFeedbackCycles) {
  // Random circuits with feedback registers (Q reaching its own D) are the
  // shape the two-phase rebuild exists for.
  RandomCircuitOptions options;
  options.gates = 30;
  options.registers = 8;
  options.feedback_registers = 3;
  const Netlist n = random_sequential_circuit(77, options);
  ASSERT_TRUE(n.validate().empty());
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < n.outputs().size(); ++i) keep.push_back(i);
  const Netlist cone =
      extract_cone(n, keep, std::vector<char>(n.net_count(), 0));
  EXPECT_TRUE(cone.validate().empty());
  // Random circuits contain logic no output observes; the cone legitimately
  // prunes it, so assert behaviour on the kept outputs, not size identity.
  EXPECT_LE(cone.stats().registers, n.stats().registers);
  EXPECT_LE(cone.stats().luts, n.stats().luts);
  EXPECT_EQ(cone.outputs().size(), n.outputs().size());
  const EquivalenceResult eq = check_sequential_equivalence(n, cone, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(Shrinker, PassingCaseComesBackUnchanged) {
  FuzzCase c;
  c.name = "healthy";
  c.seed = 1;
  c.oracle = OracleKind::kSerialVsBulk;
  c.script = "sweep";
  c.netlist = testing::chain_circuit(4, 2);
  const ShrinkResult r = shrink_case(c);
  EXPECT_FALSE(r.still_failing);
  EXPECT_EQ(structural_hash(r.minimized.netlist),
            structural_hash(c.netlist));
}

TEST(Shrinker, PlantedBugShrinksToAtMostTwentyGates) {
  // The acceptance self-test: a deliberately broken sweep on a ~60-LUT
  // random circuit must minimize to <= 20 gates and still fail. The
  // circuit is control-free (no EN/sync/async, no feedback) so no X
  // survives the warmup to mask the miscompile from the simulators.
  RandomCircuitOptions circuit;
  circuit.gates = 60;
  circuit.registers = 12;
  circuit.feedback_registers = 0;
  FuzzCase c;
  c.name = "planted";
  c.seed = 1;
  c.oracle = OracleKind::kSerialVsBulk;
  c.script = "sweep";  // keep the oracle cheap; the bug is in sweep itself
  c.break_spec = "flip-lut";
  c.netlist = random_sequential_circuit(9, circuit);
  ASSERT_GE(c.netlist.stats().luts, 20u) << "case unexpectedly small";

  ShrinkOptions options;
  options.budget_seconds = 60;
  const ShrinkResult r = shrink_case(c, options);
  ASSERT_TRUE(r.still_failing) << "planted bug not caught";
  EXPECT_LE(r.after.luts + r.after.registers, 20u)
      << r.after.luts << " LUTs + " << r.after.registers << " registers";
  EXPECT_LT(r.after.luts, r.before.luts);
  EXPECT_TRUE(r.minimized.netlist.validate().empty());
  EXPECT_EQ(r.minimized.break_spec, "flip-lut");
}

}  // namespace
}  // namespace mcrt

// Differential oracles: healthy cases pass every engine pair, the planted
// flip-lut miscompile is caught, and behavioural legs skip (rather than
// false-positive) on shapes the 3-valued simulators cannot judge.
#include "fuzz/oracles.h"

#include <gtest/gtest.h>

#include "fuzz/case_gen.h"
#include "../common/test_circuits.h"

namespace mcrt {
namespace {

FuzzCase chain_case(OracleKind oracle, const std::string& script) {
  FuzzCase c;
  c.name = "test-case";
  c.seed = 1;
  c.oracle = oracle;
  c.script = script;
  c.netlist = testing::chain_circuit(6, 3);
  return c;
}

TEST(Oracles, HealthyChainPassesEveryEnginePair) {
  for (OracleKind oracle :
       {OracleKind::kSerialVsBulk, OracleKind::kBulkVsServe,
        OracleKind::kMonoVsWindowed, OracleKind::kCompactVsLegacy,
        OracleKind::kCslowVsReplicated}) {
    const std::string script =
        oracle == OracleKind::kCslowVsReplicated
            ? "sweep; retime(d=10,minperiod,cslow=2)"
            : "sweep; retime(d=10,minperiod)";
    const FuzzCase c = chain_case(oracle, script);
    const OracleVerdict v = run_oracle(c);
    EXPECT_TRUE(v.pass) << oracle_name(oracle) << ": " << v.first_failure();
    EXPECT_FALSE(v.legs.empty());
  }
}

TEST(Oracles, HealthyZooPassesTheServePath) {
  FuzzCase c;
  c.name = "zoo";
  c.seed = 11;
  c.oracle = OracleKind::kBulkVsServe;
  c.script = "decompose-sync; sweep; retime(d=10)";
  c.netlist = register_class_zoo(11);
  const OracleVerdict v = run_oracle(c);
  EXPECT_TRUE(v.pass) << v.first_failure();
}

TEST(Oracles, CslowOracleHealthyZooPasses) {
  FuzzCase c;
  c.name = "cslow-zoo";
  c.seed = 11;
  c.oracle = OracleKind::kCslowVsReplicated;
  c.script = "sweep; retime(d=10,cslow=3)";
  c.netlist = register_class_zoo(11);
  const OracleVerdict v = run_oracle(c);
  EXPECT_TRUE(v.pass) << v.first_failure();
  // The stream leg must actually run on the single-clock zoo, not skip.
  bool stream_ran = false;
  for (const OracleLeg& leg : v.legs) {
    if (leg.name == "stream-equivalence" &&
        leg.detail.find("skipped") == std::string::npos) {
      stream_ran = true;
    }
  }
  EXPECT_TRUE(stream_ran);
}

TEST(Oracles, CslowOracleCatchesPlantedMiscompile) {
  // flip-lut sabotages both runs identically, so only the stream leg — the
  // comparison against the *unsabotaged* input — can convict.
  FuzzCase c = chain_case(OracleKind::kCslowVsReplicated,
                          "sweep; retime(d=10,cslow=2)");
  c.break_spec = "flip-lut";
  const OracleVerdict v = run_oracle(c);
  EXPECT_FALSE(v.pass);
  EXPECT_NE(v.first_failure().find("stream-equivalence"), std::string::npos)
      << v.first_failure();
}

TEST(Oracles, CslowOracleSkipsStreamLegOnDualClock) {
  FuzzCase c;
  c.name = "cslow-dual";
  c.seed = 3;
  c.oracle = OracleKind::kCslowVsReplicated;
  c.script = "sweep; retime(d=10,cslow=2)";
  c.netlist = dual_clock_rig(3);
  const OracleVerdict v = run_oracle(c);
  EXPECT_TRUE(v.pass) << v.first_failure();
  bool skipped = false;
  for (const OracleLeg& leg : v.legs) {
    if (leg.name == "stream-equivalence" &&
        leg.detail.find("skipped") != std::string::npos) {
      skipped = true;
    }
  }
  EXPECT_TRUE(skipped);
}

TEST(Oracles, InstallBreakRejectsUnknownSpecs) {
  PassRegistry registry;
  std::string error;
  EXPECT_FALSE(install_break(registry, "no-such-break", &error));
  EXPECT_FALSE(error.empty());
}

TEST(Oracles, FlipLutSabotageIsCaught) {
  FuzzCase c = chain_case(OracleKind::kSerialVsBulk, "sweep");
  c.break_spec = "flip-lut";
  const OracleVerdict v = run_oracle(c);
  EXPECT_FALSE(v.pass);
  // The miscompile is behavioural: both sides run the same broken pass, so
  // byte-identity holds and simulation equivalence is what must fire.
  bool sim_failed = false;
  for (const OracleLeg& leg : v.legs) {
    if (leg.name == "sim-equivalence" && !leg.pass) sim_failed = true;
  }
  EXPECT_TRUE(sim_failed) << v.first_failure();
}

TEST(Oracles, FlipLutIsCaughtThroughTheServePath) {
  FuzzCase c = chain_case(OracleKind::kBulkVsServe, "sweep");
  c.break_spec = "flip-lut";
  const OracleVerdict v = run_oracle(c);
  EXPECT_FALSE(v.pass);
}

TEST(Oracles, MultiClockSkipsBehaviouralLegs) {
  FuzzCase c;
  c.name = "dual";
  c.seed = 3;
  c.oracle = OracleKind::kSerialVsBulk;
  c.script = "sweep; retime(d=10)";
  c.netlist = dual_clock_rig(3);
  ASSERT_GT(clock_domain_count(c.netlist), 1u);
  const OracleVerdict v = run_oracle(c);
  EXPECT_TRUE(v.pass) << v.first_failure();
  bool sim_skipped = false;
  for (const OracleLeg& leg : v.legs) {
    if (leg.name == "sim-equivalence" &&
        leg.detail.rfind("skipped", 0) == 0) {
      sim_skipped = true;
    }
  }
  EXPECT_TRUE(sim_skipped);
}

TEST(Oracles, ScriptWithoutRetimeIsVacuousForWindowed) {
  // The shrinker relies on this: dropping the retime statement must make
  // the mono-vs-windowed oracle pass (nothing to compare), never fail.
  const FuzzCase c = chain_case(OracleKind::kMonoVsWindowed, "sweep");
  const OracleVerdict v = run_oracle(c);
  EXPECT_TRUE(v.pass) << v.first_failure();
}

TEST(Oracles, PreCancelledTokenDoesNotFabricateAFailure) {
  CancelToken cancel;
  cancel.request_cancel();
  OracleOptions options;
  options.cancel = &cancel;
  const FuzzCase c =
      chain_case(OracleKind::kSerialVsBulk, "sweep; retime(d=10)");
  try {
    const OracleVerdict v = run_oracle(c, options);
    // Both sides were cancelled identically — that must not read as an
    // engine mismatch (no bogus reproducer from a ctrl-C).
    EXPECT_TRUE(v.pass) << v.first_failure();
  } catch (const CancelledError&) {
    // Equally fine: the cancellation unwound out of the oracle.
  }
}

}  // namespace
}  // namespace mcrt

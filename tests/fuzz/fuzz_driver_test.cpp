// Campaign driver: deterministic replay (same seed => byte-identical
// canonical report), the planted-bug find -> shrink -> reproducer loop,
// budget handling and cancellation.
#include "fuzz/driver.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "fuzz/fuzz_case.h"

namespace mcrt {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("mcrt-fuzz-driver-test-") + tag + "-" +
       std::to_string(static_cast<unsigned long>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(FuzzDriver, SameSeedGivesByteIdenticalCanonicalReports) {
  FuzzDriverOptions options;
  options.seed = 7;
  options.cases = 6;
  options.canonical = true;
  options.shrink = false;
  const FuzzRunReport a = run_fuzz(options);
  const FuzzRunReport b = run_fuzz(options);
  EXPECT_EQ(a.cases_run, 6u);
  EXPECT_EQ(a.to_json(true), b.to_json(true));
  EXPECT_NE(a.to_json(true).find("\"schema\":\"mcrt-fuzz-report/1\""),
            std::string::npos);
}

TEST(FuzzDriver, ReportCarriesPerCaseSeedsAsStrings) {
  FuzzDriverOptions options;
  options.seed = 7;
  options.cases = 2;
  options.canonical = true;
  const FuzzRunReport report = run_fuzz(options);
  ASSERT_EQ(report.outcomes.size(), 2u);
  // 64-bit seeds travel as JSON strings (numbers lose precision past 2^53).
  const std::string json = report.to_json(true);
  for (const FuzzCaseOutcome& outcome : report.outcomes) {
    EXPECT_NE(json.find("\"" + std::to_string(outcome.seed) + "\""),
              std::string::npos);
  }
}

TEST(FuzzDriver, PlantedBugIsFoundShrunkAndReproducible) {
  const std::string out_dir = fresh_dir("plant");
  FuzzDriverOptions options;
  options.seed = 1;
  options.cases = 2;
  options.only_oracle = OracleKind::kSerialVsBulk;
  options.break_spec = "flip-lut";
  options.out_dir = out_dir;
  options.shrink_options.budget_seconds = 60;
  const FuzzRunReport report = run_fuzz(options);
  ASSERT_GE(report.failures, 1u) << "planted bug not caught";

  // The written reproducer must parse, carry the break, and stay small.
  bool checked = false;
  for (const FuzzCaseOutcome& outcome : report.outcomes) {
    if (outcome.pass) continue;
    ASSERT_FALSE(outcome.repro_path.empty());
    auto parsed = read_repro_file(outcome.repro_path);
    ASSERT_TRUE(std::holds_alternative<FuzzCase>(parsed))
        << std::get<std::string>(parsed);
    const FuzzCase& repro = std::get<FuzzCase>(parsed);
    EXPECT_EQ(repro.break_spec, "flip-lut");
    EXPECT_EQ(repro.oracle, OracleKind::kSerialVsBulk);
    const Netlist::Stats s = repro.netlist.stats();
    EXPECT_LE(s.luts + s.registers, 20u);
    checked = true;
  }
  EXPECT_TRUE(checked);
  fs::remove_all(out_dir);
}

TEST(FuzzDriver, BudgetBoundsTheRunAndTheReportIsWellFormed) {
  FuzzDriverOptions options;
  options.seed = 3;
  options.budget_seconds = 0.001;  // expires before (or right after) case 0
  const FuzzRunReport report = run_fuzz(options);
  EXPECT_LE(report.cases_run, 1u);
  EXPECT_NE(report.to_json(false).find("wall_seconds"), std::string::npos);
}

TEST(FuzzDriver, PreCancelledTokenRunsNothing) {
  CancelToken cancel;
  cancel.request_cancel();
  FuzzDriverOptions options;
  options.seed = 1;
  options.cases = 4;
  options.cancel = &cancel;
  const FuzzRunReport report = run_fuzz(options);
  EXPECT_EQ(report.cases_run, 0u);
  EXPECT_EQ(report.failures, 0u);
}

}  // namespace
}  // namespace mcrt

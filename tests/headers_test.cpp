// Every public header must be self-contained (include what it uses). This
// translation unit includes them all; compiling it is the test.
#include <gtest/gtest.h>

#include "base/ids.h"
#include "base/log.h"
#include "base/rng.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "base/timer.h"
#include "bdd/bdd.h"
#include "blif/blif.h"
#include "flow/maxflow.h"
#include "flow/mincost_flow.h"
#include "graph/difference_constraints.h"
#include "graph/digraph.h"
#include "graph/scc.h"
#include "graph/topo.h"
#include "mcretime/lower.h"
#include "mcretime/maximal_retiming.h"
#include "mcretime/mc_retime.h"
#include "mcretime/mcgraph.h"
#include "mcretime/rebuild.h"
#include "mcretime/register_class.h"
#include "mcretime/relocate.h"
#include "mcretime/reset_state.h"
#include "mcretime/sharing.h"
#include "netlist/dot_export.h"
#include "netlist/netlist.h"
#include "netlist/truth_table.h"
#include "pipeline/bulk_runner.h"
#include "pipeline/diagnostics.h"
#include "pipeline/flow_context.h"
#include "pipeline/flow_script.h"
#include "pipeline/pass.h"
#include "pipeline/pass_manager.h"
#include "pipeline/passes.h"
#include "retime/feas.h"
#include "retime/minarea.h"
#include "retime/minperiod.h"
#include "retime/period_constraints.h"
#include "retime/retime_graph.h"
#include "sim/equivalence.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "sim/vcd.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "tech/sta.h"
#include "tech/timing_report.h"
#include "transform/decompose_controls.h"
#include "transform/rewrite.h"
#include "transform/strash.h"
#include "transform/sweep.h"
#include "verify/formal_equivalence.h"
#include "verify/ternary_bmc.h"
#include "workload/generator.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(HeadersTest, AllPublicHeadersIncluded) {
  // The assertion is the successful compilation above; touch a couple of
  // symbols so nothing is optimized into irrelevance.
  EXPECT_EQ(trit_char(Trit::kUnknown), 'X');
  EXPECT_EQ(reset_val_char(ResetVal::kDontCare), '-');
}

}  // namespace
}  // namespace mcrt

#include "pipeline/report_reader.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../common/test_circuits.h"
#include "pipeline/bulk_runner.h"

namespace mcrt {
namespace {

// A canned schema-/2 document exactly as the pre-provenance engine wrote
// it (no "provenance" member). Historical reports must keep parsing.
constexpr const char* kVersion2Report = R"json({
  "schema": "mcrt-bulk-report/2",
  "script": "sweep; retime(d=10)",
  "circuits": 3,
  "succeeded": 2,
  "failed": 1,
  "results": [
    {"name": "r00", "status": "ok"},
    {"name": "r01", "status": "ok"},
    {"name": "r02", "status": "failed"}
  ]
})json";

BulkReport fresh_report() {
  BulkOptions options;
  options.jobs = 1;
  std::vector<BulkJob> jobs;
  jobs.push_back(make_netlist_job("demo", testing::fig1_circuit()));
  return BulkRunner("sweep", options).run(jobs);
}

TEST(ReportReaderTest, ReadsVersion2WithoutProvenance) {
  std::string error;
  const auto summary = read_bulk_report(kVersion2Report, &error);
  ASSERT_TRUE(summary) << error;
  EXPECT_EQ(summary->schema_version, 2);
  EXPECT_EQ(summary->script, "sweep; retime(d=10)");
  EXPECT_EQ(summary->circuits, 3u);
  EXPECT_EQ(summary->succeeded, 2u);
  EXPECT_EQ(summary->failed, 1u);
  ASSERT_EQ(summary->result_statuses.size(), 3u);
  EXPECT_EQ(summary->result_statuses[0].first, "r00");
  EXPECT_EQ(summary->result_statuses[2].second, "failed");
  EXPECT_FALSE(summary->provenance.has_value());
}

TEST(ReportReaderTest, ReadsFreshVersion3WithProvenance) {
  // Generate a real /3 report through the current engine so the reader is
  // exercised against what the writer actually emits, not a hand copy.
  const BulkReport report = fresh_report();
  BulkJsonOptions json;
  json.canonical = false;
  std::string error;
  const auto summary = read_bulk_report(report.to_json(json), &error);
  ASSERT_TRUE(summary) << error;
  EXPECT_EQ(summary->schema_version, 3);
  EXPECT_EQ(summary->script, "sweep");
  EXPECT_EQ(summary->circuits, 1u);
  EXPECT_EQ(summary->succeeded, 1u);
  ASSERT_EQ(summary->result_statuses.size(), 1u);
  EXPECT_EQ(summary->result_statuses[0].first, "demo");
  EXPECT_EQ(summary->result_statuses[0].second, "ok");
  ASSERT_TRUE(summary->provenance.has_value());
  EXPECT_EQ(summary->provenance->tool, "mcrt");
  EXPECT_FALSE(summary->provenance->version.empty());
  // Non-canonical reports carry the build type from base/version.
  EXPECT_FALSE(summary->provenance->build_type.empty());
}

TEST(ReportReaderTest, CanonicalVersion3OmitsBuildInfo) {
  const BulkReport report = fresh_report();
  BulkJsonOptions json;
  json.canonical = true;
  const auto summary = read_bulk_report(report.to_json(json));
  ASSERT_TRUE(summary);
  EXPECT_EQ(summary->schema_version, 3);
  ASSERT_TRUE(summary->provenance.has_value());
  // Canonical reports are byte-compared across machines: provenance pins
  // only schema-stable fields, never build type or sanitizer set.
  EXPECT_TRUE(summary->provenance->build_type.empty());
  EXPECT_TRUE(summary->provenance->sanitizers.empty());
}

TEST(ReportReaderTest, RejectsUnknownSchema) {
  std::string error;
  EXPECT_FALSE(read_bulk_report(R"({"schema": "mcrt-bulk-report/9"})", &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  error.clear();
  EXPECT_FALSE(read_bulk_report(R"({"script": "sweep"})", &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(read_bulk_report("not json at all", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace mcrt

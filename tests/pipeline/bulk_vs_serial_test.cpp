// Randomized differential regression: the same flow over the same
// generated corpus must produce byte-identical outputs and canonical
// reports with --jobs=1 and --jobs=8 — determinism under concurrency is
// what lets the bulk engine replace serial sweeps.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blif/blif.h"
#include "pipeline/bulk_runner.h"
#include "workload/generator.h"

namespace mcrt {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kCorpusSize = 64;
constexpr std::uint64_t kCorpusSeed = 20260806;
const char* const kScript = "decompose-sync; sweep; strash; retime(d=10)";

/// ctest runs each TEST of this file as a separate process, possibly
/// concurrently; keep every scratch directory private to the process.
fs::path scratch_dir(const std::string& name) {
  return fs::path(::testing::TempDir()) /
         (name + "." + std::to_string(::getpid()));
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Generates the corpus once per process, on disk, shared by both runs.
const fs::path& corpus_dir() {
  static const fs::path dir = [] {
    const fs::path d = scratch_dir("bulk_vs_serial_in");
    fs::remove_all(d);
    fs::create_directories(d);
    for (const CircuitProfile& profile :
         random_suite(kCorpusSize, kCorpusSeed)) {
      const Netlist netlist = generate_circuit(profile);
      const std::string path = (d / (profile.name + ".blif")).string();
      if (!write_blif_file(netlist, path, profile.name)) {
        ADD_FAILURE() << "cannot write " << path;
      }
    }
    return d;
  }();
  return dir;
}

BulkReport run_corpus(std::size_t jobs, const fs::path& out_dir) {
  fs::remove_all(out_dir);
  std::vector<BulkJob> batch;
  std::vector<fs::path> inputs;
  for (const auto& entry : fs::directory_iterator(corpus_dir())) {
    inputs.push_back(entry.path());
  }
  std::sort(inputs.begin(), inputs.end());
  EXPECT_EQ(inputs.size(), kCorpusSize);
  for (const fs::path& input : inputs) {
    batch.push_back(make_file_job(
        input.string(), (out_dir / input.filename()).string()));
  }
  BulkOptions options;
  options.jobs = jobs;
  BulkRunner runner(kScript, options);
  return runner.run(batch);
}

TEST(BulkVsSerialTest, SerialAndParallelRunsAreByteIdentical) {
  const fs::path serial_dir = scratch_dir("bulk_vs_serial_out1");
  const fs::path parallel_dir = scratch_dir("bulk_vs_serial_out8");

  const BulkReport serial = run_corpus(1, serial_dir);
  const BulkReport parallel = run_corpus(8, parallel_dir);
  EXPECT_EQ(serial.jobs, 1u);
  EXPECT_EQ(parallel.jobs, 8u);
  EXPECT_EQ(serial.succeeded(), kCorpusSize);
  EXPECT_EQ(parallel.succeeded(), kCorpusSize);

  // Byte-identical canonical reports (timings and paths stripped)...
  BulkJsonOptions canonical;
  canonical.canonical = true;
  EXPECT_EQ(serial.to_json(canonical), parallel.to_json(canonical));

  // ...and byte-identical retimed outputs, circuit by circuit.
  for (const BulkJobResult& result : serial.results) {
    const fs::path name = fs::path(result.output_path).filename();
    const std::string a = slurp(serial_dir / name);
    const std::string b = slurp(parallel_dir / name);
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << "output diverged under concurrency: " << name;
  }
}

TEST(BulkVsSerialTest, ParallelRunReportsMeaningfulAggregates) {
  const fs::path out_dir = scratch_dir("bulk_vs_serial_agg");
  const BulkReport report = run_corpus(8, out_dir);
  EXPECT_EQ(report.results.size(), kCorpusSize);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GE(report.cpu_seconds, report.wall_seconds * 0.5);
  // Merged per-pass profile covers the whole script.
  EXPECT_EQ(report.profile.phases().size(), 4u);
  // On a multi-core machine the batch must actually scale; on a 1-core CI
  // container speedup ~1 is the honest answer, so gate the assertion.
  if (ThreadPool::default_worker_count() >= 8) {
    EXPECT_GE(report.speedup(), 3.0);
  }
}

}  // namespace
}  // namespace mcrt

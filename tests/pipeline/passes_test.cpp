// Built-in pass adapters: each must match the library function it wraps,
// record its metrics, and compose into flows equivalent to the legacy
// hand-wired chains.
#include "pipeline/passes.h"

#include <gtest/gtest.h>

#include <memory>

#include "../common/test_circuits.h"
#include "cslow/stream_check.h"
#include "mcretime/mc_retime.h"
#include "pipeline/flow_context.h"
#include "pipeline/flow_script.h"
#include "pipeline/pass_manager.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "transform/strash.h"
#include "transform/sweep.h"

namespace mcrt {
namespace {

TEST(PassesTest, SweepPassMatchesDirectCall) {
  const Netlist input = testing::fig1_circuit();
  SweepStats direct_stats;
  const Netlist direct = sweep(input, &direct_stats);

  FlowContext context(input);
  SweepPass pass;
  const PassResult result = pass.run(context);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(context.netlist().node_count(), direct.node_count());
  EXPECT_EQ(context.metric("sweep.nodes_removed"),
            static_cast<std::int64_t>(direct_stats.nodes_removed));
}

TEST(PassesTest, MapPassProducesKBoundedLuts) {
  FlowContext context(testing::chain_circuit(6, 2));
  PassManager manager;
  std::string error;
  auto pass = std::make_unique<MapPass>();
  PassArgs args;
  args.set("k", "4");
  ASSERT_TRUE(pass->configure(args, &error)) << error;
  manager.add(std::move(pass));
  ASSERT_TRUE(manager.run(context).success);
  EXPECT_TRUE(context.metric("map.luts").has_value());
  for (const Node& node : context.netlist().nodes()) {
    if (node.kind == NodeKind::kLut) EXPECT_LE(node.fanins.size(), 4u);
  }
}

TEST(PassesTest, RetimePassFillsTypedStatsAndMetrics) {
  FlowContext context(testing::chain_circuit(8, 4));
  RetimePass pass;  // script defaults: d=10 on delay-less LUTs
  const PassResult result = pass.run(context);
  ASSERT_TRUE(result.success) << result.error;
  ASSERT_TRUE(context.retime_stats.has_value());
  EXPECT_GE(context.retime_stats->num_classes, 1u);
  EXPECT_LT(context.retime_stats->period_after,
            context.retime_stats->period_before);
  EXPECT_EQ(context.metric("retime.period_after"),
            context.retime_stats->period_after);
}

TEST(PassesTest, RetimePassHonorsScriptArguments) {
  std::string error;
  {
    RetimePass pass;
    PassArgs args;
    args.set("target", "24");
    args.set("no-sharing", "");
    ASSERT_TRUE(pass.configure(args, &error)) << error;
  }
  {
    RetimePass pass;
    PassArgs args;
    args.set("bogus", "1");
    EXPECT_FALSE(pass.configure(args, &error));
    EXPECT_NE(error.find("bogus"), std::string::npos);
  }
  {
    MapPass pass;
    PassArgs args;
    args.set("k", "1");  // FlowMap needs k >= 2
    EXPECT_FALSE(pass.configure(args, &error));
  }
}

TEST(PassesTest, RetimeCslowMultipliesRegistersAndVerifies) {
  for (const std::uint32_t factor : {2u, 3u}) {
    const Netlist input = testing::chain_circuit(8, 2);
    FlowContext context(input);
    PassManager manager;
    std::string error;
    auto pass = std::make_unique<RetimePass>();
    PassArgs args;
    args.set("cslow", std::to_string(factor));
    args.set("cslow-verify", "");
    ASSERT_TRUE(pass->configure(args, &error)) << error;
    manager.add(std::move(pass));
    ASSERT_TRUE(manager.run(context).success);
    EXPECT_EQ(context.metric("cslow.factor"),
              static_cast<std::int64_t>(factor));
    EXPECT_EQ(context.metric("cslow.registers_after"),
              static_cast<std::int64_t>(factor * input.register_count()));
    EXPECT_EQ(context.metric("cslow.verified"), 1);
    // Retiming the replicated chains must recover a shorter period than the
    // chain-at-the-end layout it starts from.
    ASSERT_TRUE(context.retime_stats.has_value());
    EXPECT_LT(context.retime_stats->period_after,
              context.retime_stats->period_before);
    // Stream equivalence holds against the *flow input*, independently of
    // the pass's own self-check.
    const StreamCheckResult eq =
        check_stream_equivalence(input, context.netlist(), factor);
    EXPECT_TRUE(eq.pass) << eq.reason;
    EXPECT_FALSE(eq.skipped);
  }
}

TEST(PassesTest, RetimeWindowedCslowComposes) {
  const Netlist input = testing::chain_circuit(12, 3);
  FlowContext context(input);
  PassManager manager;
  std::string error;
  ASSERT_EQ(compile_flow_script(
                "retime-windowed(window-size=16,window-jobs=2,cslow=2,"
                "cslow-verify)",
                PassRegistry::standard(), manager),
            std::nullopt);
  ASSERT_TRUE(manager.run(context).success);
  EXPECT_EQ(context.metric("cslow.factor"), 2);
  const StreamCheckResult eq =
      check_stream_equivalence(input, context.netlist(), 2);
  EXPECT_TRUE(eq.pass) << eq.reason;
}

TEST(PassesTest, RetimeCslowRecoversPerStreamPeriod) {
  // The headline C-slow property: after retiming, the C-slowed circuit's
  // period approaches T/C — here the 8-deep unit-delay chain retimes from
  // period 8 to at most ceil(8/2)+slack with one extra register layer.
  const Netlist input = testing::chain_circuit(8, 1, /*gate_delay=*/1);
  FlowContext mono_ctx(input);
  {
    RetimePass pass;
    PassArgs args;
    std::string error;
    ASSERT_TRUE(pass.configure(args, &error)) << error;
    ASSERT_TRUE(pass.run(mono_ctx).success);
  }
  FlowContext cs_ctx(input);
  {
    RetimePass pass;
    PassArgs args;
    std::string error;
    args.set("cslow", "2");
    ASSERT_TRUE(pass.configure(args, &error)) << error;
    ASSERT_TRUE(pass.run(cs_ctx).success);
  }
  ASSERT_TRUE(mono_ctx.retime_stats.has_value());
  ASSERT_TRUE(cs_ctx.retime_stats.has_value());
  EXPECT_LT(cs_ctx.retime_stats->period_after,
            mono_ctx.retime_stats->period_after);
}

Netlist combinational_cycle_circuit() {
  Netlist n;
  const NetId a = n.add_net("a");
  const NetId b = n.add_lut(TruthTable::inverter(), {a}, "g0");
  n.add_lut_driving(a, TruthTable::inverter(), {b});
  n.add_output("o", b);
  return n;
}

TEST(PassesTest, InvalidInputIsRejectedBeforeAnyPassRuns) {
  // A combinational cycle fails Netlist::validate(): the manager's
  // pre-flight check must reject it instead of blaming the first pass.
  FlowContext context(combinational_cycle_circuit());
  PassManager manager;  // default: invariant checking on
  manager.add(std::make_unique<RetimePass>());
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.executed.empty());
  EXPECT_NE(result.error.find("input"), std::string::npos);
}

TEST(PassesTest, ThrowingPassBecomesAPassFailureNotACrash) {
  // With checking disabled the cycle reaches mc_retime, which throws; the
  // manager must convert the exception into that pass's failure.
  FlowContext context(combinational_cycle_circuit());
  PassManagerOptions options;
  options.check_invariants = false;
  PassManager manager(options);
  manager.add(std::make_unique<RetimePass>());
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("retime:"), std::string::npos);
  EXPECT_NE(result.error.find("exception"), std::string::npos);
}

/// The legacy hand-wired chain and the scripted flow must agree.
TEST(PassesTest, ScriptedFlowMatchesLegacyChain) {
  const Netlist input = testing::fig1_circuit();
  // Legacy: sweep -> strash -> retime with default delay assignment.
  Netlist legacy = structural_hash(sweep(input, nullptr), nullptr);
  for (std::size_t i = 0; i < legacy.node_count(); ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (legacy.node(id).kind == NodeKind::kLut &&
        !legacy.node(id).fanins.empty() && legacy.node(id).delay == 0) {
      legacy.set_node_delay(id, 10);
    }
  }
  const McRetimeResult legacy_retimed = mc_retime(legacy, {});
  ASSERT_TRUE(legacy_retimed.success);

  // Scripted equivalent.
  PassManager manager;
  ASSERT_EQ(compile_flow_script("sweep; strash; retime",
                                PassRegistry::standard(), manager),
            std::nullopt);
  FlowContext context(input);
  ASSERT_TRUE(manager.run(context).success);

  EquivalenceOptions opt;
  opt.runs = 4;
  opt.cycles = 48;
  EXPECT_TRUE(check_sequential_equivalence(legacy_retimed.netlist,
                                           context.netlist(), opt)
                  .equivalent);
  // Same register count: the flows ran identical steps.
  EXPECT_EQ(context.netlist().register_count(),
            legacy_retimed.netlist.register_count());
}

TEST(PassesTest, FullScriptedFlowStaysEquivalent) {
  const Netlist input = testing::chain_circuit(6, 3);
  PassManagerOptions options;
  options.check_equivalence = true;  // spot check every pass
  options.equivalence.runs = 2;
  options.equivalence.cycles = 32;
  PassManager manager(options);
  ASSERT_EQ(compile_flow_script(
                "sweep; strash; regsweep; retime(minperiod); map(k=4)",
                PassRegistry::standard(), manager),
            std::nullopt);
  FlowContext context(input);
  const FlowResult result = manager.run(context);
  ASSERT_TRUE(result.success) << result.error;
  ASSERT_EQ(result.executed.size(), 5u);

  EquivalenceOptions opt;
  opt.runs = 4;
  opt.cycles = 48;
  EXPECT_TRUE(
      check_sequential_equivalence(input, context.netlist(), opt).equivalent);
}

TEST(PassesTest, DecomposePassesRemoveTheirControls) {
  {
    FlowContext context(testing::fig1_circuit());
    DecomposeEnPass pass;
    ASSERT_TRUE(pass.run(context).success);
    EXPECT_EQ(context.netlist().stats().with_en, 0u);
  }
}

}  // namespace
}  // namespace mcrt

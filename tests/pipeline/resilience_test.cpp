// Resilient execution, end to end: per-job deadlines against injected
// stalls (every job accounted exactly once), pass-failure rollback
// (sim-equivalent netlist + diagnostics), checkpoint/resume with
// byte-identical canonical reports, transient-failure retries, and
// fault-injection isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "../common/test_circuits.h"
#include "base/cancel.h"
#include "base/fault_injector.h"
#include "pipeline/bulk_runner.h"
#include "pipeline/checkpoint.h"
#include "pipeline/flow_context.h"
#include "pipeline/pass_manager.h"
#include "pipeline/passes.h"
#include "sim/equivalence.h"

namespace mcrt {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<BulkJob> small_batch() {
  std::vector<BulkJob> jobs;
  jobs.push_back(make_netlist_job("a", testing::chain_circuit(4, 2, 10)));
  jobs.push_back(make_netlist_job("b", testing::fig1_circuit()));
  jobs.push_back(make_netlist_job("c", testing::chain_circuit(3, 1, 10)));
  jobs.push_back(make_netlist_job("d", testing::chain_circuit(5, 2, 10)));
  return jobs;
}

// --- acceptance: stalled job times out, the rest of the batch completes ---

TEST(ResilienceTest, StalledJobTimesOutOthersSucceed) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("job:b=stall", &error)) << error;

  BulkOptions options;
  options.jobs = 2;
  options.timeout_seconds = 0.2;
  options.faults = &faults;
  BulkRunner runner("sweep", options);
  const BulkReport report = runner.run(small_batch());

  // Every job accounted exactly once, in input order.
  ASSERT_EQ(report.results.size(), 4u);
  const std::vector<std::string> names = {"a", "b", "c", "d"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(report.results[i].name, names[i]);
  }
  EXPECT_EQ(report.results[1].status, JobStatus::kTimeout);
  EXPECT_FALSE(report.results[1].success);
  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(report.results[i].status, JobStatus::kOk) << i;
    EXPECT_TRUE(report.results[i].success) << i;
  }
  EXPECT_EQ(report.succeeded(), 3u);
  EXPECT_EQ(report.failed(), 1u);
}

TEST(ResilienceTest, StalledPassTimesOutInsidePassManager) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("pass:strash=stall", &error)) << error;

  CancelToken cancel;
  cancel.set_timeout(0.05);
  CollectingDiagnostics diag;
  FlowContext context(testing::chain_circuit(4, 2), &diag);
  context.cancel = &cancel;
  context.faults = &faults;

  PassManager manager;
  manager.add(std::make_unique<SweepPass>());
  manager.add(std::make_unique<StrashPass>());
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.status, FlowStatus::kTimeout);
  // sweep ran; strash stalled and was recorded as the stopping pass.
  ASSERT_EQ(result.executed.size(), 2u);
  EXPECT_TRUE(result.executed[0].success);
  EXPECT_FALSE(result.executed[1].success);
}

TEST(ResilienceTest, BatchCancelReportsCancelled) {
  CancelToken cancel;
  cancel.request_cancel();  // cancelled before the batch even starts
  BulkOptions options;
  options.jobs = 2;
  options.cancel = &cancel;
  BulkRunner runner("sweep", options);
  const BulkReport report = runner.run(small_batch());
  ASSERT_EQ(report.results.size(), 4u);
  for (const BulkJobResult& r : report.results) {
    EXPECT_EQ(r.status, JobStatus::kCancelled) << r.name;
    EXPECT_FALSE(r.success);
  }
}

// --- rollback --------------------------------------------------------------

/// Mutates the netlist (breaking equivalence), then fails.
class VandalPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "vandal"; }
  [[nodiscard]] std::string_view description() const override {
    return "scrambles the netlist, then fails";
  }
  PassResult run(FlowContext& context) override {
    Netlist broken;  // maximally wrong: drop the whole circuit
    broken.add_input("junk");
    context.replace_netlist(std::move(broken));
    return PassResult::fail("vandalism detected");
  }
};

TEST(ResilienceTest, FailingPassRollsBackToPrePassSnapshot) {
  const Netlist original = testing::fig1_circuit();
  CollectingDiagnostics diag;
  FlowContext context(original, &diag);
  PassManager manager;  // rollback_on_failure defaults to true
  manager.add(std::make_unique<SweepPass>());
  manager.add(std::make_unique<VandalPass>());
  const FlowResult result = manager.run(context);

  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.status, FlowStatus::kFailed);
  ASSERT_EQ(result.executed.size(), 2u);
  EXPECT_TRUE(result.executed[1].rolled_back);

  // The surviving netlist is the pre-vandal state: sim-equivalent to the
  // input (sweep only removed dead logic).
  const EquivalenceResult eq =
      check_sequential_equivalence(original, context.netlist(), {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;

  // The rollback left a diagnostic trail.
  bool recorded = false;
  for (const Diagnostic& d : diag.diagnostics()) {
    if (d.message.find("rolled back") != std::string::npos) recorded = true;
  }
  EXPECT_TRUE(recorded);
}

TEST(ResilienceTest, RollbackDisabledKeepsMutatedNetlist) {
  PassManagerOptions options;
  options.rollback_on_failure = false;
  options.check_invariants = false;
  CollectingDiagnostics diag;
  FlowContext context(testing::fig1_circuit(), &diag);
  PassManager manager(options);
  manager.add(std::make_unique<VandalPass>());
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  ASSERT_EQ(result.executed.size(), 1u);
  EXPECT_FALSE(result.executed[0].rolled_back);
  EXPECT_EQ(context.netlist().stats().inputs, 1u);  // the vandal's junk
}

TEST(ResilienceTest, ThrowingPassAlsoRollsBack) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("pass:strash=throw", &error)) << error;
  const Netlist original = testing::chain_circuit(4, 2);
  CollectingDiagnostics diag;
  FlowContext context(original, &diag);
  context.faults = &faults;
  PassManager manager;
  manager.add(std::make_unique<StrashPass>());
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.status, FlowStatus::kFailed);
  const EquivalenceResult eq =
      check_sequential_equivalence(original, context.netlist(), {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

// --- checkpoint/resume -----------------------------------------------------

TEST(ResilienceTest, ManifestRecordRoundTrips) {
  BulkJobResult result;
  result.name = "tab\tand\nnewline";
  result.status = JobStatus::kTimeout;
  result.error = "strash: timeout";
  result.input_path = "in/x.blif";
  result.output_path = "out/x.blif";
  result.before.luts = 7;
  result.before.registers = 3;
  result.period_before = 42;
  result.after.luts = 5;
  result.after.registers = 4;
  result.period_after = 17;
  result.seconds = 0.125;
  PassExecution pass;
  pass.name = "sweep";
  pass.success = true;
  pass.rolled_back = true;
  pass.summary = "removed 2\tnodes";
  pass.seconds = 0.0625;
  result.executed.push_back(pass);

  const std::string line = encode_manifest_record(result);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto decoded = decode_manifest_record(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->name, result.name);
  EXPECT_EQ(decoded->status, JobStatus::kTimeout);
  EXPECT_EQ(decoded->error, result.error);
  EXPECT_EQ(decoded->before.luts, 7u);
  EXPECT_EQ(decoded->period_after, 17);
  EXPECT_EQ(decoded->seconds, 0.125);
  ASSERT_EQ(decoded->executed.size(), 1u);
  EXPECT_EQ(decoded->executed[0].name, "sweep");
  EXPECT_TRUE(decoded->executed[0].rolled_back);
  EXPECT_EQ(decoded->executed[0].summary, pass.summary);
  EXPECT_TRUE(decoded->resumed);

  // Truncated lines (mid-write kill) decode as malformed, never crash.
  for (std::size_t cut = 0; cut < line.size(); cut += 7) {
    (void)decode_manifest_record(line.substr(0, cut));
  }
  EXPECT_FALSE(decode_manifest_record("not a record").has_value());
}

TEST(ResilienceTest, ResumeSkipsCompletedJobsAndReportIsByteIdentical) {
  const fs::path dir = fresh_dir("resilience_resume");
  const std::string manifest = (dir / "manifest.txt").string();
  const std::string script = "sweep; retime(minperiod,d=10)";

  // Reference: one uninterrupted run, no manifest.
  BulkOptions plain;
  plain.jobs = 2;
  const BulkReport full = BulkRunner(script, plain).run(small_batch());

  // First run: journal to a manifest, with job "c" failing transiently
  // (injected environment fault) — it must not be recorded as final.
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("job:c=fail", &error)) << error;
  BulkOptions first = plain;
  first.manifest_path = manifest;
  first.faults = &faults;
  const BulkReport partial = BulkRunner(script, first).run(small_batch());
  EXPECT_EQ(partial.results[2].status, JobStatus::kIoError);
  EXPECT_EQ(partial.succeeded(), 3u);

  // Resume: only "c" re-runs (now without the fault) and the merged
  // canonical report matches the uninterrupted run byte for byte.
  BulkOptions second = plain;
  second.manifest_path = manifest;
  second.resume = true;
  const BulkReport resumed = BulkRunner(script, second).run(small_batch());
  ASSERT_EQ(resumed.results.size(), 4u);
  EXPECT_TRUE(resumed.results[0].resumed);
  EXPECT_TRUE(resumed.results[1].resumed);
  EXPECT_FALSE(resumed.results[2].resumed);  // re-ran after the transient
  EXPECT_TRUE(resumed.results[3].resumed);
  EXPECT_EQ(resumed.succeeded(), 4u);

  BulkJsonOptions canonical;
  canonical.canonical = true;
  EXPECT_EQ(resumed.to_json(canonical), full.to_json(canonical));
}

TEST(ResilienceTest, ManifestScriptMismatchIsIgnored) {
  const fs::path dir = fresh_dir("resilience_mismatch");
  const std::string manifest = (dir / "manifest.txt").string();

  BulkOptions first;
  first.jobs = 1;
  first.manifest_path = manifest;
  (void)BulkRunner("sweep", first).run(small_batch());

  // Same manifest, different script: nothing may be skipped.
  CollectingDiagnostics sink;
  BulkOptions second;
  second.jobs = 1;
  second.manifest_path = manifest;
  second.resume = true;
  second.sink = &sink;
  const BulkReport report = BulkRunner("strash", second).run(small_batch());
  for (const BulkJobResult& r : report.results) {
    EXPECT_FALSE(r.resumed) << r.name;
  }
  bool warned = false;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.message.find("manifest") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

// --- retries ---------------------------------------------------------------

TEST(ResilienceTest, TransientFaultIsRetriedUntilItClears) {
  // The injected fault fires only on the site's first hit; with one retry
  // the second attempt succeeds.
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("job:a=fail@1", &error)) << error;
  BulkOptions options;
  options.jobs = 1;
  options.faults = &faults;
  options.max_retries = 1;
  options.retry_backoff_seconds = 0.001;
  const BulkReport report = BulkRunner("sweep", options).run(small_batch());
  EXPECT_EQ(report.results[0].status, JobStatus::kOk);
  EXPECT_EQ(report.succeeded(), 4u);
}

TEST(ResilienceTest, PersistentFaultExhaustsRetries) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("job:a=fail", &error)) << error;
  BulkOptions options;
  options.jobs = 1;
  options.faults = &faults;
  options.max_retries = 2;
  options.retry_backoff_seconds = 0.001;
  const BulkReport report = BulkRunner("sweep", options).run(small_batch());
  EXPECT_EQ(report.results[0].status, JobStatus::kIoError);
  EXPECT_FALSE(report.results[0].success);
  EXPECT_EQ(report.succeeded(), 3u);  // the rest of the batch is untouched
}

TEST(ResilienceTest, InjectedWriteFailureIsIoError) {
  const fs::path dir = fresh_dir("resilience_write");
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("write:a.blif=fail", &error)) << error;
  std::vector<BulkJob> jobs;
  BulkJob job = make_netlist_job("a", testing::chain_circuit(3, 1));
  job.output_path = (dir / "a.blif").string();
  jobs.push_back(std::move(job));
  BulkOptions options;
  options.jobs = 1;
  options.faults = &faults;
  const BulkReport report = BulkRunner("sweep", options).run(jobs);
  EXPECT_EQ(report.results[0].status, JobStatus::kIoError);
  EXPECT_FALSE(fs::exists(dir / "a.blif"));
}

// --- all-jobs-fail: report stays valid, exit contract holds ---------------

/// Minimal recursive-descent JSON checker: enough to prove the report is
/// well-formed even when every job failed.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < text_.size(); ++pos_) {
      if (text_[pos_] == '\\') { ++pos_; continue; }
      if (text_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ResilienceTest, AllJobsFailingStillYieldsValidCanonicalReport) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("pass:sweep=throw", &error)) << error;
  BulkOptions options;
  options.jobs = 2;
  options.faults = &faults;
  const BulkReport report = BulkRunner("sweep", options).run(small_batch());
  EXPECT_EQ(report.succeeded(), 0u);
  EXPECT_EQ(report.failed(), report.results.size());
  for (const BulkJobResult& r : report.results) {
    EXPECT_EQ(r.status, JobStatus::kFailed) << r.name;
    EXPECT_FALSE(r.error.empty()) << r.name;
  }

  BulkJsonOptions canonical;
  canonical.canonical = true;
  const std::string json = report.to_json(canonical);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("mcrt-bulk-report/3"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
}

// --- fault isolation -------------------------------------------------------

TEST(ResilienceTest, FaultsInOneInjectorDoNotLeakIntoOthers) {
  FaultInjector poisoned;
  std::string error;
  ASSERT_TRUE(poisoned.configure("pass:sweep=throw", &error)) << error;
  FaultInjector clean;

  BulkOptions bad;
  bad.jobs = 1;
  bad.faults = &poisoned;
  BulkOptions good;
  good.jobs = 1;
  good.faults = &clean;
  EXPECT_EQ(BulkRunner("sweep", bad).run(small_batch()).succeeded(), 0u);
  EXPECT_EQ(BulkRunner("sweep", good).run(small_batch()).succeeded(), 4u);
}

// --- budgets ---------------------------------------------------------------

TEST(ResilienceTest, BddBudgetDowngradesVerifyToUnverified) {
  // A 1-node BDD cap makes BMC verification impossible; the verify pass
  // degrades to "retimed-but-unverified" instead of failing the flow.
  CollectingDiagnostics diag;
  FlowContext context(testing::fig1_circuit(), &diag);
  context.budgets.bdd_node_cap = 1;
  PassManager manager;
  const PassRegistry& registry = PassRegistry::standard();
  auto verify = registry.create("verify");
  ASSERT_NE(verify, nullptr);
  PassArgs args;
  args.set("bmc", "");
  std::string error;
  ASSERT_TRUE(verify->configure(args, &error)) << error;
  manager.add(std::move(verify));
  const FlowResult result = manager.run(context);
  EXPECT_TRUE(result.success);  // degraded, not failed
  ASSERT_EQ(result.executed.size(), 1u);
  EXPECT_NE(result.executed[0].summary.find("unverified"), std::string::npos);
}

}  // namespace
}  // namespace mcrt

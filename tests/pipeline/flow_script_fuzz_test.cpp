// Grammar fuzz hardening for the flow-script parser: random token soup and
// mutated well-formed scripts must never crash, and every rejection must be
// a structured FlowScriptError with a sane 1-based location and a
// formattable message — never an exception, never a garbage location.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "pipeline/flow_script.h"
#include "pipeline/pass_manager.h"
#include "pipeline/passes.h"

namespace mcrt {
namespace {

/// Checks the contract on one input: parse either succeeds or produces an
/// error whose location actually lies within (or one past) the script.
void expect_parse_contract(const std::string& script) {
  SCOPED_TRACE("script: \"" + script + "\"");
  auto parsed = parse_flow_script(script);
  if (const auto* err = std::get_if<FlowScriptError>(&parsed)) {
    EXPECT_GE(err->line, 1u);
    EXPECT_GE(err->column, 1u);
    EXPECT_LE(err->offset, script.size());
    EXPECT_FALSE(err->message.empty());
    EXPECT_FALSE(err->format().empty());
    // The reported line/column must agree with the reported offset.
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < err->offset && i < script.size(); ++i) {
      if (script[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    EXPECT_EQ(err->line, line);
    EXPECT_EQ(err->column, column);
  }
}

TEST(FlowScriptFuzz, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"sweep",  "retime", "map",  "(", ")", ",",  ";",
                          "=",      "k",      "4",    "d", "10", "\n", " ",
                          "no-such", "_",     "-",    ".", "minperiod"};
  Rng rng(2024);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string script;
    const std::size_t length = rng.below(24);
    for (std::size_t i = 0; i < length; ++i) {
      script += tokens[rng.below(sizeof(tokens) / sizeof(tokens[0]))];
    }
    expect_parse_contract(script);
  }
}

TEST(FlowScriptFuzz, RandomBytesNeverCrash) {
  Rng rng(7);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string script;
    const std::size_t length = rng.below(48);
    for (std::size_t i = 0; i < length; ++i) {
      script += static_cast<char>(rng.below(256));
    }
    expect_parse_contract(script);
  }
}

TEST(FlowScriptFuzz, MutatedWellFormedScriptsNeverCrash) {
  const std::string base =
      "decompose-sync; sweep; strash; retime(d=10,minperiod,no-sharing); "
      "map(k=4,d=10); sweep";
  Rng rng(11);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string script = base;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits && !script.empty(); ++e) {
      const std::size_t at = rng.below(script.size());
      switch (rng.below(3)) {
        case 0:  // flip a byte
          script[at] = static_cast<char>(rng.below(128));
          break;
        case 1:  // delete a byte
          script.erase(at, 1);
          break;
        default:  // duplicate a byte
          script.insert(at, 1, script[at]);
          break;
      }
    }
    expect_parse_contract(script);
  }
}

TEST(FlowScriptFuzz, CompileRejectsWithoutThrowingOnFuzzedScripts) {
  PassRegistry registry;
  register_standard_passes(registry);
  Rng rng(5);
  const char* tokens[] = {"sweep", "retime", "bogus", "(", ")", ";", ",",
                          "=",     "k",      "4"};
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string script;
    const std::size_t length = rng.below(12);
    for (std::size_t i = 0; i < length; ++i) {
      script += tokens[rng.below(sizeof(tokens) / sizeof(tokens[0]))];
    }
    PassManager manager;
    const auto error = compile_flow_script(script, registry, manager);
    if (error.has_value()) {
      EXPECT_FALSE(error->empty());
    }
  }
}

TEST(FlowScriptFuzz, MultiLineErrorsPointAtTheRightLine) {
  const auto parsed = parse_flow_script("sweep;\nstrash;\nretime((");
  const auto* err = std::get_if<FlowScriptError>(&parsed);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->line, 3u);
  EXPECT_GE(err->column, 8u);
  EXPECT_NE(err->format().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace mcrt

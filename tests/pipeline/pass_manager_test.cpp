// PassManager execution: ordering, timing, diagnostics, invariant
// checking and equivalence spot checks.
#include "pipeline/pass_manager.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../common/test_circuits.h"
#include "netlist/truth_table.h"
#include "pipeline/diagnostics.h"
#include "pipeline/flow_context.h"
#include "pipeline/passes.h"

namespace mcrt {
namespace {

/// Test pass running a callback; used to observe ordering and inject
/// failures or corruptions.
class LambdaPass final : public Pass {
 public:
  using Fn = std::function<PassResult(FlowContext&)>;
  LambdaPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::string_view description() const override {
    return "test pass";
  }
  PassResult run(FlowContext& context) override { return fn_(context); }

 private:
  std::string name_;
  Fn fn_;
};

TEST(PassManagerTest, RunsPassesInOrderAndRecordsProfile) {
  std::vector<std::string> order;
  PassManager manager;
  for (const char* name : {"first", "second", "third"}) {
    manager.add(std::make_unique<LambdaPass>(name, [&order, name](
                                                       FlowContext&) {
      order.push_back(name);
      return PassResult::ok("done");
    }));
  }
  FlowContext context(testing::fig1_circuit());
  const FlowResult result = manager.run(context);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second", "third"}));
  ASSERT_EQ(result.executed.size(), 3u);
  EXPECT_EQ(result.executed[0].name, "first");
  EXPECT_EQ(result.executed[2].name, "third");
  for (const PassExecution& e : result.executed) {
    EXPECT_TRUE(e.success);
    EXPECT_GE(e.seconds, 0.0);
    EXPECT_EQ(e.summary, "done");
  }
  EXPECT_EQ(result.profile.phases().size(), 3u);
  // The profile table mentions every pass.
  const std::string table = result.format_profile();
  EXPECT_NE(table.find("first"), std::string::npos);
  EXPECT_NE(table.find("third"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(PassManagerTest, FailingPassStopsTheFlow) {
  std::vector<std::string> order;
  PassManager manager;
  manager.add(std::make_unique<LambdaPass>("ok", [&](FlowContext&) {
    order.push_back("ok");
    return PassResult::ok();
  }));
  manager.add(std::make_unique<LambdaPass>("boom", [&](FlowContext&) {
    order.push_back("boom");
    return PassResult::fail("deliberate failure");
  }));
  manager.add(std::make_unique<LambdaPass>("never", [&](FlowContext&) {
    order.push_back("never");
    return PassResult::ok();
  }));
  CollectingDiagnostics diag;
  FlowContext context(testing::fig1_circuit(), &diag);
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.error, "boom: deliberate failure");
  EXPECT_EQ(order, (std::vector<std::string>{"ok", "boom"}));
  ASSERT_EQ(result.executed.size(), 2u);
  EXPECT_FALSE(result.executed.back().success);
  // The failure was reported through the sink, attributed to the pass.
  ASSERT_TRUE(diag.has_errors());
  EXPECT_EQ(diag.diagnostics().back().origin, "boom");
}

TEST(PassManagerTest, InvariantViolationIsSurfacedWithEveryProblem) {
  PassManagerOptions options;
  options.check_invariants = true;
  PassManager manager(options);
  manager.add(std::make_unique<LambdaPass>("corrupt", [](FlowContext& ctx) {
    // Break the register invariant directly: a sync value without a sync
    // control net (Netlist::validate flags this).
    ctx.netlist().reg(RegId{0}).sync_val = ResetVal::kZero;
    ctx.netlist().reg(RegId{1}).sync_val = ResetVal::kOne;
    return PassResult::ok("silently corrupted the netlist");
  }));
  manager.add(std::make_unique<LambdaPass>("never", [](FlowContext&) {
    ADD_FAILURE() << "flow must stop at the invariant violation";
    return PassResult::ok();
  }));
  CollectingDiagnostics diag;
  FlowContext context(testing::fig1_circuit(), &diag);
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("corrupt"), std::string::npos);
  EXPECT_NE(result.error.find("invariant"), std::string::npos);
  // Both broken registers show up, not just the first problem.
  EXPECT_GE(diag.messages(DiagSeverity::kError).size(), 2u);
}

TEST(PassManagerTest, InvariantCheckingCanBeDisabled) {
  PassManagerOptions options;
  options.check_invariants = false;
  PassManager manager(options);
  manager.add(std::make_unique<LambdaPass>("corrupt", [](FlowContext& ctx) {
    ctx.netlist().reg(RegId{0}).sync_val = ResetVal::kZero;
    return PassResult::ok();
  }));
  FlowContext context(testing::fig1_circuit());
  EXPECT_TRUE(manager.run(context).success);
}

TEST(PassManagerTest, EquivalenceSpotCheckCatchesMiscompile) {
  PassManagerOptions options;
  options.check_equivalence = true;
  options.equivalence.runs = 2;
  options.equivalence.cycles = 32;
  PassManager manager(options);
  manager.add(std::make_unique<LambdaPass>("miscompile", [](FlowContext& ctx) {
    // Turn the AND in fig1 into a NAND: structurally valid, functionally
    // wrong.
    Netlist& n = ctx.netlist();
    for (std::size_t i = 0; i < n.node_count(); ++i) {
      Node& node = n.node(NodeId{static_cast<std::uint32_t>(i)});
      if (node.kind == NodeKind::kLut && node.fanins.size() == 2) {
        node.function = TruthTable::nand_n(2);
      }
    }
    return PassResult::ok();
  }));
  FlowContext context(testing::fig1_circuit());
  const FlowResult result = manager.run(context);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("equivalence"), std::string::npos);
}

TEST(PassManagerTest, EquivalenceSpotCheckPassesHonestPasses) {
  PassManagerOptions options;
  options.check_equivalence = true;
  options.equivalence.runs = 2;
  options.equivalence.cycles = 32;
  PassManager manager(options);
  manager.add(std::make_unique<SweepPass>());
  manager.add(std::make_unique<StrashPass>());
  FlowContext context(testing::fig1_circuit());
  EXPECT_TRUE(manager.run(context).success);
}

TEST(PassManagerTest, VerboseReportsSummariesThroughTheSink) {
  PassManagerOptions options;
  options.verbose = true;
  PassManager manager(options);
  manager.add(std::make_unique<SweepPass>());
  CollectingDiagnostics diag;
  FlowContext context(testing::fig1_circuit(), &diag);
  EXPECT_TRUE(manager.run(context).success);
  ASSERT_FALSE(diag.diagnostics().empty());
  EXPECT_EQ(diag.diagnostics().front().origin, "sweep");
}

TEST(PassRegistryTest, StandardRegistryKnowsTheBuiltins) {
  const PassRegistry& registry = PassRegistry::standard();
  for (const char* name : {"sweep", "strash", "regsweep", "decompose-en",
                           "decompose-sync", "map", "retime"}) {
    EXPECT_NE(registry.create(name), nullptr) << name;
  }
  EXPECT_EQ(registry.create("nonsense"), nullptr);
  EXPECT_GE(registry.names().size(), 7u);
}

TEST(PassRegistryTest, DuplicateRegistrationIsRejected) {
  PassRegistry registry;
  EXPECT_TRUE(registry.register_pass(
      "p", [] { return std::unique_ptr<Pass>(); }));
  EXPECT_FALSE(registry.register_pass(
      "p", [] { return std::unique_ptr<Pass>(); }));
}

TEST(FlowContextTest, MetricsAndOptionsRoundTrip) {
  FlowContext context(testing::fig1_circuit());
  context.set_option("k", "4");
  EXPECT_EQ(context.option("k"), "4");
  EXPECT_EQ(context.option("missing"), std::nullopt);
  context.set_metric("m", 3);
  context.add_metric("m", 4);
  EXPECT_EQ(context.metric("m"), 7);
  EXPECT_EQ(context.metric("missing"), std::nullopt);
}

}  // namespace
}  // namespace mcrt

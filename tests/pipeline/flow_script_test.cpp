// Flow-script parsing: the grammar of docs/PIPELINE.md, including the
// error paths a CLI user will hit.
#include "pipeline/flow_script.h"

#include <gtest/gtest.h>

#include "pipeline/pass_manager.h"

namespace mcrt {
namespace {

std::vector<PassSpec> parse_ok(std::string_view script) {
  auto parsed = parse_flow_script(script);
  const auto* specs = std::get_if<std::vector<PassSpec>>(&parsed);
  EXPECT_NE(specs, nullptr) << "script failed to parse: " << script;
  return specs != nullptr ? *specs : std::vector<PassSpec>{};
}

FlowScriptError parse_err(std::string_view script) {
  auto parsed = parse_flow_script(script);
  const auto* err = std::get_if<FlowScriptError>(&parsed);
  EXPECT_NE(err, nullptr) << "script unexpectedly parsed: " << script;
  return err != nullptr ? *err : FlowScriptError{};
}

TEST(FlowScriptTest, SingleName) {
  const auto specs = parse_ok("sweep");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "sweep");
  EXPECT_TRUE(specs[0].args.empty());
}

TEST(FlowScriptTest, SequenceWithWhitespaceAndTrailingSemicolon) {
  const auto specs = parse_ok("  sweep ;strash;  regsweep ; ");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "sweep");
  EXPECT_EQ(specs[1].name, "strash");
  EXPECT_EQ(specs[2].name, "regsweep");
}

TEST(FlowScriptTest, EmptyStatementsAreSkipped) {
  const auto specs = parse_ok(";; sweep ;; strash ;;");
  ASSERT_EQ(specs.size(), 2u);
}

TEST(FlowScriptTest, ArgumentsKeyValueAndFlags) {
  const auto specs = parse_ok("retime(target=24, no-sharing); map(k=4,d=10)");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].args.value("target"), "24");
  EXPECT_TRUE(specs[0].args.flag("no-sharing"));
  EXPECT_FALSE(specs[0].args.flag("minperiod"));
  EXPECT_EQ(specs[1].args.value("k"), "4");
  EXPECT_EQ(specs[1].args.value("d"), "10");
}

TEST(FlowScriptTest, EmptyArgumentList) {
  const auto specs = parse_ok("sweep()");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_TRUE(specs[0].args.empty());
}

TEST(FlowScriptTest, NegativeValueParses) {
  const auto specs = parse_ok("retime(target=-5)");
  ASSERT_EQ(specs.size(), 1u);
  std::string error;
  EXPECT_EQ(specs[0].args.int_value("target", &error), -5);
}

TEST(FlowScriptTest, OffsetsPointIntoTheScript) {
  const auto specs = parse_ok("sweep; strash");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].offset, 0u);
  EXPECT_EQ(specs[1].offset, 7u);
}

TEST(FlowScriptTest, UnterminatedArgumentListFails) {
  const auto err = parse_err("retime(target=24");
  EXPECT_NE(err.message.find("unterminated"), std::string::npos);
}

TEST(FlowScriptTest, MissingValueAfterEqualsFails) {
  const auto err = parse_err("retime(target=)");
  EXPECT_NE(err.message.find("target"), std::string::npos);
}

TEST(FlowScriptTest, GarbageBetweenStatementsFails) {
  const auto err = parse_err("sweep strash");
  EXPECT_NE(err.message.find("expected ';'"), std::string::npos);
}

TEST(FlowScriptTest, BadCharacterFails) {
  parse_err("sweep; !");
  parse_err("retime(,)");
  parse_err("map(k=4 d=10)");
}

TEST(FlowScriptTest, MalformedScriptTable) {
  // One row per malformed-script shape: every diagnostic must carry the
  // 1-based line/column of the offending character, the offending token,
  // and a message naming the construct — what `mcrt serve` streams back
  // for a bad request script.
  struct Row {
    const char* script;
    std::size_t line;
    std::size_t column;
    const char* token;
    const char* message_fragment;
  };
  const Row rows[] = {
      {"sweep strash", 1, 7, "strash", "expected ';'"},
      {"sweep;\nstrash;\nretime(d=10) map", 3, 14, "map", "expected ';'"},
      {"retime(target=24", 1, 17, "end of script", "unterminated"},
      {"retime(target=)", 1, 15, ")", "missing its value"},
      {"sweep; !", 1, 8, "!", "expected pass name"},
      {"map(k=4 d=10)", 1, 9, "d", "expected ',' or ')'"},
      {"retime(,)", 1, 8, ",", "expected argument name"},
      {"sweep;\nretime(\n  target=\n)", 4, 1, ")", "missing its value"},
  };
  for (const Row& row : rows) {
    const FlowScriptError err = parse_err(row.script);
    EXPECT_EQ(err.line, row.line) << row.script;
    EXPECT_EQ(err.column, row.column) << row.script;
    EXPECT_EQ(err.token, row.token) << row.script;
    EXPECT_NE(err.message.find(row.message_fragment), std::string::npos)
        << row.script << " -> " << err.message;
    // Line/column must agree with the byte offset.
    std::size_t line = 1;
    std::size_t column = 1;
    const std::string_view text = row.script;
    for (std::size_t i = 0; i < err.offset && i < text.size(); ++i) {
      if (text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    EXPECT_EQ(err.line, line) << row.script;
    EXPECT_EQ(err.column, column) << row.script;
  }
}

TEST(FlowScriptTest, ErrorFormatIsHumanReadable) {
  const FlowScriptError err = parse_err("sweep strash");
  EXPECT_EQ(err.format(),
            "line 1, column 7: expected ';' after pass 'sweep', got 's' "
            "(near 'strash')");
}

TEST(FlowScriptTest, IntValueRejectsGarbage) {
  const auto specs = parse_ok("retime(target=banana)");
  std::string error;
  EXPECT_EQ(specs[0].args.int_value("target", &error), std::nullopt);
  EXPECT_NE(error.find("banana"), std::string::npos);
}

TEST(FlowScriptTest, IntValueRejectsOverflow) {
  const auto specs = parse_ok("retime(d=99999999999999999999)");
  std::string error;
  EXPECT_EQ(specs[0].args.int_value("d", &error), std::nullopt);
  EXPECT_NE(error.find("overflows"), std::string::npos);
}

TEST(FlowScriptTest, IntValueInRangeChecksBounds) {
  const auto specs = parse_ok("retime(cslow=7)");
  std::string error;
  EXPECT_EQ(specs[0].args.int_value_in_range("cslow", 1, 64, &error), 7);
  EXPECT_EQ(specs[0].args.int_value_in_range("cslow", 1, 4, &error),
            std::nullopt);
  EXPECT_NE(error.find("between 1 and 4"), std::string::npos);
  // An absent key is not an error.
  error.clear();
  EXPECT_EQ(specs[0].args.int_value_in_range("missing", 1, 4, &error),
            std::nullopt);
  EXPECT_TRUE(error.empty());
}

TEST(FlowScriptTest, ArgOffsetsRecordedForDiagnostics) {
  const std::string script = "sweep;\nretime(target=24,cslow=0)";
  const auto specs = parse_ok(script);
  ASSERT_EQ(specs.size(), 2u);
  std::string error;
  EXPECT_EQ(specs[1].args.int_value_in_range("cslow", 1, 64, &error),
            std::nullopt);
  const auto offset = specs[1].args.last_error_offset();
  ASSERT_TRUE(offset.has_value());
  EXPECT_EQ(script[*offset], '0');  // points at the value, not the key
  const FlowScriptError located =
      locate_in_script(script, *offset, std::move(error));
  EXPECT_EQ(located.line, 2u);
  EXPECT_EQ(located.token, "0");
}

TEST(FlowScriptCompileTest, UnknownPassNamesAvailablePasses) {
  PassManager manager;
  const auto error =
      compile_flow_script("sweep; frobnicate", PassRegistry::standard(),
                          manager);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("frobnicate"), std::string::npos);
  EXPECT_NE(error->find("sweep"), std::string::npos);  // the available list
}

TEST(FlowScriptCompileTest, UnknownArgumentRejected) {
  PassManager manager;
  const auto error = compile_flow_script("sweep(k=4)",
                                         PassRegistry::standard(), manager);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("does not take argument"), std::string::npos);
}

TEST(FlowScriptCompileTest, MalformedIntArgumentRejected) {
  PassManager manager;
  const auto error = compile_flow_script("map(k=four)",
                                         PassRegistry::standard(), manager);
  ASSERT_TRUE(error.has_value());
}

TEST(FlowScriptCompileTest, EmptyScriptRejected) {
  PassManager manager;
  EXPECT_TRUE(compile_flow_script("", PassRegistry::standard(), manager)
                  .has_value());
  EXPECT_TRUE(compile_flow_script(" ;; ", PassRegistry::standard(), manager)
                  .has_value());
}

TEST(FlowScriptCompileTest, IntOptionsCompile) {
  PassManager manager;
  EXPECT_EQ(compile_flow_script("retime(cslow=3)", PassRegistry::standard(),
                                manager),
            std::nullopt);
  EXPECT_EQ(compile_flow_script(
                "retime-windowed(window-size=24,cslow=2,cslow-verify)",
                PassRegistry::standard(), manager),
            std::nullopt);
}

TEST(FlowScriptCompileTest, MalformedIntOptionTable) {
  // Configure-time failures must be located like syntax errors: line/column
  // of the offending argument value plus the token, via the offsets the
  // parser records into PassArgs.
  struct Row {
    const char* script;
    const char* message_fragment;
    const char* location_fragment;  // "line L, column C"
    const char* near;
  };
  const Row rows[] = {
      {"retime(cslow=0)", "must be between", "line 1, column 14", "0"},
      {"retime(cslow=x)", "not an integer", "line 1, column 14", "x"},
      {"retime(cslow=99999999999999999999)", "overflows", "line 1, column 14",
       "99999999999999999999"},
      {"retime(cslow=-2)", "must be between", "line 1, column 14", "-2"},
      {"sweep;\nretime(d=10,cslow=0)", "must be between", "line 2, column 19",
       "0"},
      {"retime(cslow)", "needs an integer value", "line 1, column 8", "cslow"},
      {"retime-windowed(window-size=24,cslow=banana)", "not an integer",
       "line 1, column 38", "banana"},
      {"retime(cslow-verify)", "needs cslow=C", "line 1, column 1", "retime"},
  };
  for (const Row& row : rows) {
    PassManager manager;
    const auto error =
        compile_flow_script(row.script, PassRegistry::standard(), manager);
    ASSERT_TRUE(error.has_value()) << row.script;
    EXPECT_NE(error->find(row.message_fragment), std::string::npos)
        << row.script << " -> " << *error;
    EXPECT_NE(error->find(row.location_fragment), std::string::npos)
        << row.script << " -> " << *error;
    EXPECT_NE(error->find(std::string("near '") + row.near + "'"),
              std::string::npos)
        << row.script << " -> " << *error;
  }
}

TEST(FlowScriptCompileTest, GoodScriptBuildsConfiguredPasses) {
  PassManager manager;
  const auto error = compile_flow_script(
      "sweep; retime(target=24,no-sharing); map(k=6)",
      PassRegistry::standard(), manager);
  EXPECT_EQ(error, std::nullopt);
  ASSERT_EQ(manager.size(), 3u);
  EXPECT_EQ(manager.passes()[0]->name(), "sweep");
  EXPECT_EQ(manager.passes()[1]->name(), "retime");
  EXPECT_EQ(manager.passes()[2]->name(), "map");
}

}  // namespace
}  // namespace mcrt

// BulkRunner: batch execution, per-job failure isolation, atomic output
// files (a failing job must not leak a partial or temp output), report
// aggregation and canonical JSON determinism.
#include "pipeline/bulk_runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "../common/test_circuits.h"
#include "blif/blif.h"
#include "pipeline/flow_context.h"
#include "pipeline/passes.h"

namespace mcrt {
namespace {

namespace fs = std::filesystem;

/// A pass that throws on circuits whose first data input is named "boom"
/// and behaves as a no-op otherwise — the mid-batch poison for the
/// failure-isolation tests.
class BoomPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "boom"; }
  [[nodiscard]] std::string_view description() const override {
    return "throws on poisoned circuits";
  }
  PassResult run(FlowContext& context) override {
    const Netlist& n = context.netlist();
    for (std::size_t i = 0; i < n.net_count(); ++i) {
      if (n.net(NetId{static_cast<std::uint32_t>(i)}).name == "boom") {
        throw std::runtime_error("poisoned circuit");
      }
    }
    return PassResult::ok("survived");
  }
};

Netlist poisoned_circuit() {
  Netlist n = testing::chain_circuit(3, 2);
  n.add_input("boom");  // unused marker input
  return n;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

BulkOptions quiet_options() {
  BulkOptions options;
  options.jobs = 2;
  options.manager.check_invariants = true;
  return options;
}

TEST(BulkRunnerTest, RunsAllJobsInInputOrder) {
  std::vector<BulkJob> jobs;
  jobs.push_back(make_netlist_job("a", testing::chain_circuit(4, 2)));
  jobs.push_back(make_netlist_job("b", testing::fig1_circuit()));
  jobs.push_back(make_netlist_job("c", testing::chain_circuit(2, 1)));

  BulkRunner runner("sweep; strash", quiet_options());
  ASSERT_EQ(runner.check(), std::nullopt);
  const BulkReport report = runner.run(jobs);

  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.results[0].name, "a");
  EXPECT_EQ(report.results[1].name, "b");
  EXPECT_EQ(report.results[2].name, "c");
  EXPECT_EQ(report.succeeded(), 3u);
  EXPECT_EQ(report.failed(), 0u);
  for (const BulkJobResult& r : report.results) {
    EXPECT_TRUE(r.success);
    ASSERT_EQ(r.executed.size(), 2u);
    EXPECT_EQ(r.executed[0].name, "sweep");
    EXPECT_EQ(r.executed[1].name, "strash");
  }
}

TEST(BulkRunnerTest, CheckReportsBadScriptWithoutRunning) {
  BulkRunner runner("sweep; not-a-pass", quiet_options());
  const auto error = runner.check();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("not-a-pass"), std::string::npos);
}

TEST(BulkRunnerTest, ThrowingPassMidBatchOnlyFailsItsJob) {
  std::vector<BulkJob> jobs;
  jobs.push_back(make_netlist_job("ok0", testing::chain_circuit(3, 2)));
  jobs.push_back(make_netlist_job("bad", poisoned_circuit()));
  jobs.push_back(make_netlist_job("ok1", testing::chain_circuit(5, 2)));
  jobs.push_back(make_netlist_job("ok2", testing::fig1_circuit()));

  BulkOptions options = quiet_options();
  options.keep_netlists = true;
  BulkRunner runner(
      [](PassManager& manager, std::string*) {
        manager.add(std::make_unique<BoomPass>());
        manager.add(std::make_unique<SweepPass>());
        return true;
      },
      options);
  const BulkReport report = runner.run(jobs);

  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_EQ(report.succeeded(), 3u);
  EXPECT_EQ(report.failed(), 1u);
  EXPECT_FALSE(report.results[1].success);
  EXPECT_NE(report.results[1].error.find("poisoned"), std::string::npos);
  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_TRUE(report.results[i].success) << i;
    EXPECT_TRUE(report.results[i].netlist.has_value()) << i;
  }
}

TEST(BulkRunnerTest, FailingJobLeavesNoOutputOrTempFile) {
  const fs::path dir = fresh_dir("bulk_atomic");
  std::vector<BulkJob> jobs;
  BulkJob good = make_netlist_job("good", testing::chain_circuit(3, 2));
  good.output_path = (dir / "good.blif").string();
  BulkJob bad = make_netlist_job("bad", poisoned_circuit());
  bad.output_path = (dir / "bad.blif").string();
  jobs.push_back(std::move(good));
  jobs.push_back(std::move(bad));

  BulkRunner runner(
      [](PassManager& manager, std::string*) {
        manager.add(std::make_unique<SweepPass>());
        manager.add(std::make_unique<BoomPass>());
        return true;
      },
      quiet_options());
  const BulkReport report = runner.run(jobs);

  EXPECT_TRUE(report.results[0].success);
  EXPECT_FALSE(report.results[1].success);
  EXPECT_TRUE(fs::exists(dir / "good.blif"));
  EXPECT_FALSE(fs::exists(dir / "bad.blif"));
  // No partial/temp leftovers from the failed job either.
  EXPECT_FALSE(fs::exists(dir / "bad.blif.tmp"));

  // The successful output is a complete, loadable netlist.
  auto parsed = read_blif_file((dir / "good.blif").string());
  EXPECT_TRUE(std::holds_alternative<Netlist>(parsed));
}

TEST(BulkRunnerTest, UnreadableInputFailsOnlyThatJob) {
  const fs::path dir = fresh_dir("bulk_missing");
  std::vector<BulkJob> jobs;
  jobs.push_back(make_file_job((dir / "missing.blif").string(),
                               (dir / "missing.out.blif").string()));
  jobs.push_back(make_netlist_job("mem", testing::chain_circuit(2, 1)));

  BulkRunner runner("sweep", quiet_options());
  const BulkReport report = runner.run(jobs);
  EXPECT_FALSE(report.results[0].success);
  EXPECT_FALSE(report.results[0].diagnostics.empty());
  EXPECT_TRUE(report.results[1].success);
  EXPECT_FALSE(fs::exists(dir / "missing.out.blif"));
}

TEST(BulkRunnerTest, RecordsStatsDeltasAndProfile) {
  std::vector<BulkJob> jobs;
  jobs.push_back(make_netlist_job("chain", testing::chain_circuit(6, 3, 10)));

  BulkOptions options = quiet_options();
  BulkRunner runner("sweep; retime(minperiod,d=10)", options);
  const BulkReport report = runner.run(jobs);
  ASSERT_EQ(report.succeeded(), 1u);
  const BulkJobResult& r = report.results[0];
  EXPECT_GT(r.before.registers, 0u);
  EXPECT_GT(r.period_before, 0);
  EXPECT_LT(r.period_after, r.period_before);  // retiming spreads the chain
  EXPECT_TRUE(r.retime_stats.has_value());
  // The merged profile covers both passes.
  EXPECT_EQ(report.profile.phases().size(), 2u);
  EXPECT_GE(report.cpu_seconds, r.profile.total());
}

TEST(BulkRunnerTest, AggregateSinkSeesJobDiagnosticsInJobOrder) {
  CollectingDiagnostics aggregate;
  BulkOptions options = quiet_options();
  options.manager.verbose = true;
  options.sink = &aggregate;
  std::vector<BulkJob> jobs;
  jobs.push_back(make_netlist_job("first", testing::chain_circuit(2, 1)));
  jobs.push_back(make_netlist_job("second", testing::chain_circuit(3, 1)));

  BulkRunner runner("sweep", options);
  const BulkReport report = runner.run(jobs);
  ASSERT_EQ(report.succeeded(), 2u);
  // Per-job notes forwarded after the batch, grouped per job in order.
  ASSERT_FALSE(aggregate.diagnostics().empty());
  EXPECT_FALSE(aggregate.has_errors());
}

TEST(BulkRunnerTest, CanonicalJsonIdenticalAcrossJobCounts) {
  const auto batch = [] {
    std::vector<BulkJob> jobs;
    jobs.push_back(make_netlist_job("a", testing::chain_circuit(5, 2, 10)));
    jobs.push_back(make_netlist_job("b", testing::fig1_circuit()));
    jobs.push_back(make_netlist_job("c", testing::chain_circuit(3, 1, 10)));
    return jobs;
  };
  BulkOptions serial = quiet_options();
  serial.jobs = 1;
  BulkOptions wide = quiet_options();
  wide.jobs = 8;
  const std::string script = "sweep; retime(minperiod,d=10)";
  const BulkReport r1 = BulkRunner(script, serial).run(batch());
  const BulkReport r8 = BulkRunner(script, wide).run(batch());

  BulkJsonOptions canonical;
  canonical.canonical = true;
  EXPECT_EQ(r1.to_json(canonical), r8.to_json(canonical));

  // Non-canonical reports carry the timing fields.
  const std::string timed = r1.to_json();
  EXPECT_NE(timed.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(timed.find("\"speedup\""), std::string::npos);
  EXPECT_EQ(r1.to_json(canonical).find("\"wall_seconds\""),
            std::string::npos);
}

}  // namespace
}  // namespace mcrt

#include "graph/difference_constraints.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

void expect_satisfies(const std::vector<std::int64_t>& x,
                      const std::vector<DifferenceConstraint>& cs) {
  for (const auto& c : cs) {
    EXPECT_LE(x[c.u] - x[c.v], c.bound)
        << "x" << c.u << " - x" << c.v << " <= " << c.bound;
  }
}

TEST(DifferenceConstraintsTest, FeasibleSystem) {
  std::vector<DifferenceConstraint> cs = {
      {0, 1, 3},   // x0 - x1 <= 3
      {1, 2, -2},  // x1 - x2 <= -2
      {2, 0, 1},   // x2 - x0 <= 1
  };
  const auto solution = solve_difference_constraints(3, cs);
  ASSERT_TRUE(solution);
  expect_satisfies(*solution, cs);
}

TEST(DifferenceConstraintsTest, InfeasibleNegativeCycle) {
  std::vector<DifferenceConstraint> cs = {
      {0, 1, 1},
      {1, 0, -2},  // sum of cycle bounds = -1 < 0
  };
  EXPECT_FALSE(solve_difference_constraints(2, cs));
}

TEST(DifferenceConstraintsTest, UnconstrainedVariablesGetZero) {
  const auto solution = solve_difference_constraints(4, {});
  ASSERT_TRUE(solution);
  for (const auto v : *solution) EXPECT_EQ(v, 0);
}

TEST(DifferenceConstraintsTest, EqualityViaTwoConstraints) {
  std::vector<DifferenceConstraint> cs = {
      {0, 1, 5},
      {1, 0, -5},  // forces x0 - x1 == 5
  };
  const auto solution = solve_difference_constraints(2, cs);
  ASSERT_TRUE(solution);
  EXPECT_EQ((*solution)[0] - (*solution)[1], 5);
}

TEST(DifferenceConstraintsTest, ChainPropagation) {
  // x0 <= x1 - 1 <= x2 - 2 <= x3 - 3
  std::vector<DifferenceConstraint> cs = {
      {0, 1, -1},
      {1, 2, -1},
      {2, 3, -1},
  };
  const auto solution = solve_difference_constraints(4, cs);
  ASSERT_TRUE(solution);
  expect_satisfies(*solution, cs);
  EXPECT_LE((*solution)[0], (*solution)[3] - 3);
}

TEST(DifferenceConstraintsTest, SelfConstraintNonNegativeIsFine) {
  std::vector<DifferenceConstraint> cs = {{0, 0, 0}};
  EXPECT_TRUE(solve_difference_constraints(1, cs));
}

TEST(DifferenceConstraintsTest, SelfConstraintNegativeInfeasible) {
  std::vector<DifferenceConstraint> cs = {{0, 0, -1}};
  EXPECT_FALSE(solve_difference_constraints(1, cs));
}

}  // namespace
}  // namespace mcrt

#include "graph/scc.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(SccTest, DagIsAllSingletons) {
  Digraph g(3);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{2});
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.component_count, 3u);
  EXPECT_NE(result.component[0], result.component[1]);
  EXPECT_NE(result.component[1], result.component[2]);
}

TEST(SccTest, SimpleCycle) {
  Digraph g(4);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{2});
  g.add_edge(VertexId{2}, VertexId{0});
  g.add_edge(VertexId{2}, VertexId{3});
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.component_count, 2u);
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_EQ(result.component[1], result.component[2]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(SccTest, ReverseTopologicalNumbering) {
  // Tarjan numbers components in reverse topological order: a component is
  // finished before the components that reach it.
  Digraph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  const auto result = strongly_connected_components(g);
  EXPECT_LT(result.component[1], result.component[0]);
}

TEST(SccTest, TwoCycles) {
  Digraph g(6);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{0});
  g.add_edge(VertexId{1}, VertexId{2});
  g.add_edge(VertexId{2}, VertexId{3});
  g.add_edge(VertexId{3}, VertexId{4});
  g.add_edge(VertexId{4}, VertexId{2});
  g.add_edge(VertexId{4}, VertexId{5});
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.component_count, 3u);
  EXPECT_EQ(result.component[2], result.component[3]);
  EXPECT_EQ(result.component[3], result.component[4]);
  EXPECT_NE(result.component[0], result.component[2]);
}

TEST(SccTest, SelfLoop) {
  Digraph g(2);
  g.add_edge(VertexId{0}, VertexId{0});
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.component_count, 2u);
}

}  // namespace
}  // namespace mcrt

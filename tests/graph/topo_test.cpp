#include "graph/topo.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace mcrt {
namespace {

TEST(TopoTest, OrdersDag) {
  Digraph g(4);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{2});
  g.add_edge(VertexId{0}, VertexId{3});
  g.add_edge(VertexId{3}, VertexId{2});
  const auto order = topological_order(g);
  ASSERT_TRUE(order);
  ASSERT_EQ(order->size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < 4; ++i) pos[(*order)[i].index()] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[3], pos[2]);
}

TEST(TopoTest, DetectsCycle) {
  Digraph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{0});
  EXPECT_FALSE(topological_order(g));
}

TEST(TopoTest, EdgeFilterBreaksCycle) {
  Digraph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  const EdgeId back = g.add_edge(VertexId{1}, VertexId{0});
  const auto order =
      topological_order(g, [back](EdgeId e) { return e != back; });
  EXPECT_TRUE(order);
}

TEST(TopoTest, LongestPathWeights) {
  Digraph g(4);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{3});
  g.add_edge(VertexId{0}, VertexId{2});
  g.add_edge(VertexId{2}, VertexId{3});
  const std::vector<std::int64_t> weights = {1, 10, 2, 4};
  const auto dist = dag_longest_path(
      g, [&](VertexId v) { return weights[v.index()]; });
  ASSERT_TRUE(dist);
  EXPECT_EQ((*dist)[0], 1);
  EXPECT_EQ((*dist)[1], 11);
  EXPECT_EQ((*dist)[2], 3);
  EXPECT_EQ((*dist)[3], 15);  // 1 + 10 + 4
}

TEST(TopoTest, LongestPathCycleReturnsNullopt) {
  Digraph g(2);
  g.add_edge(VertexId{0}, VertexId{1});
  g.add_edge(VertexId{1}, VertexId{0});
  EXPECT_FALSE(dag_longest_path(g, [](VertexId) { return 1; }));
}

TEST(TopoTest, EmptyGraph) {
  Digraph g;
  const auto order = topological_order(g);
  ASSERT_TRUE(order);
  EXPECT_TRUE(order->empty());
}

}  // namespace
}  // namespace mcrt

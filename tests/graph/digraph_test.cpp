#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(DigraphTest, AddVerticesAndEdges) {
  Digraph g;
  const VertexId a = g.add_vertex();
  const VertexId b = g.add_vertex();
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.from(e), a);
  EXPECT_EQ(g.to(e), b);
  ASSERT_EQ(g.out_edges(a).size(), 1u);
  ASSERT_EQ(g.in_edges(b).size(), 1u);
  EXPECT_TRUE(g.out_edges(b).empty());
}

TEST(DigraphTest, ParallelEdgesAndSelfLoops) {
  Digraph g(2);
  const VertexId a{0};
  const VertexId b{1};
  g.add_edge(a, b);
  g.add_edge(a, b);
  g.add_edge(a, a);
  EXPECT_EQ(g.out_degree(a), 3u);
  EXPECT_EQ(g.in_degree(b), 2u);
  EXPECT_EQ(g.in_degree(a), 1u);
}

TEST(DigraphTest, ResizeGrows) {
  Digraph g;
  g.resize(5);
  EXPECT_EQ(g.vertex_count(), 5u);
  g.add_vertex();
  EXPECT_EQ(g.vertex_count(), 6u);
}

}  // namespace
}  // namespace mcrt

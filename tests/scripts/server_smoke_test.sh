#!/bin/sh
# Smoke test for `mcrt serve` / `mcrt client`.
#
# One daemon, four checks:
#   1. Differential: results served over the socket are byte-identical to
#      `mcrt bulk --canonical` — per-job output BLIFs and the composed
#      canonical report.
#   2. Concurrency: 8 clients x 8 circuits = 64 requests in flight at
#      once, every report byte-identical to the reference.
#   3. Cache: the concurrent pass re-submits circuits the daemon has
#      already seen, so the stats frame must show cache hits.
#   4. Resilience: a request pinned in an injected infinite stall times
#      out cleanly and the daemon keeps serving; a remote shutdown then
#      stops it with a final stats line.
#
# Usage: server_smoke_test.sh <mcrt-binary> <scratch-dir>
set -eu

MCRT=$1
WORK=$2
SCRIPT='sweep; strash; retime(d=10)'

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"
SOCK=$PWD/daemon.sock

"$MCRT" corpus circuits --count 8 --seed 23 > /dev/null
# A circuit whose job name arms the daemon-side stall fault below. (It is
# submitted with a different script than everything else, so the result
# cache can never short-circuit past the fault site.)
cp circuits/r00.blif stallme.blif

# Reference: the same corpus through `mcrt bulk`, no daemon involved.
"$MCRT" bulk "$SCRIPT" --jobs 4 --canonical \
  --out-dir out_ref --report ref.json circuits

"$MCRT" serve --socket "$SOCK" --jobs 4 --cache-mb 64 \
  --faults 'job:stallme=stall' > serve.log 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

TRIES=0
until [ -S "$SOCK" ]; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -gt 200 ]; then
    echo "error: daemon never bound $SOCK" >&2
    cat serve.log >&2
    exit 1
  fi
  sleep 0.05
done

# --- 1. differential vs bulk -------------------------------------------
"$MCRT" client "$SCRIPT" --socket "$SOCK" --canonical \
  --out-dir out_srv --report srv.json circuits
cmp ref.json srv.json
for f in out_ref/*.blif; do
  cmp "$f" "out_srv/$(basename "$f")"
done

# --- 2. 64 concurrent requests -----------------------------------------
i=0
while [ "$i" -lt 8 ]; do
  "$MCRT" client "$SCRIPT" --socket "$SOCK" --canonical \
    --out-dir "out_c$i" --report "c$i.json" circuits > "c$i.log" 2>&1 &
  eval "PID$i=\$!"
  i=$((i + 1))
done
i=0
while [ "$i" -lt 8 ]; do
  eval "wait \"\$PID$i\"" || {
    echo "error: concurrent client $i failed" >&2
    cat "c$i.log" >&2
    exit 1
  }
  cmp ref.json "c$i.json"
  i=$((i + 1))
done

# --- 3. cache hits visible in stats ------------------------------------
# Pass 1 populated all 8 entries, so the 64 concurrent requests were all
# cache hits.
STATS=$("$MCRT" client --stats --socket "$SOCK")
HITS=$(printf '%s\n' "$STATS" | sed -n 's/.*"hits":\([0-9]*\).*/\1/p')
SERVED=$(printf '%s\n' "$STATS" | sed -n 's/.*"cache_served":\([0-9]*\).*/\1/p')
if [ "${HITS:-0}" -lt 64 ] || [ "${SERVED:-0}" -lt 64 ]; then
  echo "error: expected >=64 cache hits, got hits=$HITS served=$SERVED" >&2
  echo "$STATS" >&2
  exit 1
fi

# --- 4. a stalled request times out; the daemon keeps serving ----------
if "$MCRT" client 'sweep' --socket "$SOCK" --timeout 1 \
     --out-dir out_stall stallme.blif > stall.log 2>&1; then
  echo "error: stalled request unexpectedly succeeded" >&2
  exit 1
fi
grep -q 'timeout' stall.log

"$MCRT" client "$SCRIPT" --socket "$SOCK" --canonical \
  --out-dir out_after --report after.json circuits
cmp ref.json after.json

"$MCRT" client --shutdown --socket "$SOCK"
wait "$SERVE_PID"
trap - EXIT
grep -q 'mcrt serve: .* requests' serve.log
echo "server smoke: 64 concurrent requests byte-identical, cache hot," \
  "daemon survived a stalled job"

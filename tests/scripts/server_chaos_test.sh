#!/bin/sh
# Crash-safety differential for the `mcrt serve` disk cache tier.
#
# Daemon 1 runs with a persistent cache directory and an injected write
# stall (`io:write:*=stall@6`): the sixth disk-cache write parks forever,
# and a SIGKILL lands exactly there — mid-write, with earlier entries
# committed and a request still in flight. We then damage the surviving
# state the way real crashes do (a torn entry, a bit-flipped entry, a
# stray .tmp) and restart a second daemon on the same directory. It must:
#   1. quarantine every damaged entry during the recovery scan (and sweep
#      the .tmp) — visible in the stats frame and the quarantine/ dir;
#   2. serve the full corpus byte-identical to `mcrt bulk --canonical`
#      (zero corrupt results served, re-executing what was quarantined);
#   3. show disk-tier hits for the entries that survived the crash.
#
# Usage: server_chaos_test.sh <mcrt-binary> <scratch-dir>
set -eu

MCRT=$1
WORK=$2
SCRIPT='sweep; strash; retime(d=10)'

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"
SOCK1=$PWD/chaos1.sock
SOCK2=$PWD/chaos2.sock
CACHE=$PWD/disk_cache

"$MCRT" corpus circuits --count 8 --seed 31 > /dev/null

# Reference: the same corpus through `mcrt bulk`, no daemon involved.
"$MCRT" bulk "$SCRIPT" --jobs 4 --canonical \
  --out-dir out_ref --report ref.json circuits

# --- daemon 1: killed mid-write ----------------------------------------
"$MCRT" serve --socket "$SOCK1" --jobs 2 --disk-cache-dir "$CACHE" \
  --faults 'io:write:*=stall@6' > serve1.log 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT

TRIES=0
until [ -S "$SOCK1" ]; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -gt 200 ]; then
    echo "error: daemon 1 never bound $SOCK1" >&2
    cat serve1.log >&2
    exit 1
  fi
  sleep 0.05
done

# This client wedges on the job whose cache write hit the stall; it dies
# with the daemon below.
"$MCRT" client "$SCRIPT" --socket "$SOCK1" --canonical \
  --out-dir out_d1 --report d1.json circuits > d1.log 2>&1 &
CLIENT_PID=$!

# Wait for the write stall to arm: five entries committed, the sixth
# parked. Then SIGKILL — no shutdown path, no flush.
TRIES=0
until [ "$(ls "$CACHE"/*.entry 2>/dev/null | wc -l)" -ge 5 ]; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -gt 400 ]; then
    echo "error: disk cache never reached 5 entries" >&2
    cat serve1.log >&2
    exit 1
  fi
  sleep 0.05
done
sleep 0.3
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
wait "$CLIENT_PID" 2>/dev/null || true
trap - EXIT

# --- crash damage: torn entry, bit rot, stray tmp ----------------------
FIRST=$(ls "$CACHE"/*.entry | head -n 1)
SECOND=$(ls "$CACHE"/*.entry | sed -n '2p')
SIZE=$(wc -c < "$FIRST")
dd if="$FIRST" of="$FIRST.torn" bs=1 count=$((SIZE * 2 / 3)) 2>/dev/null
mv "$FIRST.torn" "$FIRST"
printf 'X' | dd of="$SECOND" bs=1 seek=$((SIZE / 3)) conv=notrunc 2>/dev/null
printf 'interrupted write' > "$CACHE/deadbeef.entry.tmp"

# --- daemon 2: recovery on the same directory --------------------------
"$MCRT" serve --socket "$SOCK2" --jobs 2 --disk-cache-dir "$CACHE" \
  > serve2.log 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

TRIES=0
until [ -S "$SOCK2" ]; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -gt 200 ]; then
    echo "error: daemon 2 never bound $SOCK2" >&2
    cat serve2.log >&2
    exit 1
  fi
  sleep 0.05
done

# 1. The recovery scan quarantined both damaged entries and swept the tmp.
STATS=$("$MCRT" client --stats --socket "$SOCK2")
DISK=$(printf '%s' "$STATS" | sed -n 's/.*"disk":{\([^}]*\)}.*/\1/p')
QUARANTINED=$(printf '%s' "$DISK" | sed -n 's/.*"quarantined":\([0-9]*\).*/\1/p')
if [ "${QUARANTINED:-0}" -lt 2 ]; then
  echo "error: expected >=2 quarantined entries, got '$QUARANTINED'" >&2
  echo "$STATS" >&2
  exit 1
fi
if [ "$(ls "$CACHE"/quarantine 2>/dev/null | wc -l)" -lt 2 ]; then
  echo "error: quarantine/ should hold the damaged entries" >&2
  exit 1
fi
if ls "$CACHE"/*.tmp > /dev/null 2>&1; then
  echo "error: recovery left stray .tmp files behind" >&2
  exit 1
fi

# 2. Differential: byte-identical to bulk, so nothing corrupt was served.
"$MCRT" client "$SCRIPT" --socket "$SOCK2" --canonical \
  --out-dir out_d2 --report d2.json circuits
cmp ref.json d2.json
for f in out_ref/*.blif; do
  cmp "$f" "out_d2/$(basename "$f")"
done

# 3. Surviving entries were served from the disk tier.
STATS=$("$MCRT" client --stats --socket "$SOCK2")
DISK=$(printf '%s' "$STATS" | sed -n 's/.*"disk":{\([^}]*\)}.*/\1/p')
DISK_HITS=$(printf '%s' "$DISK" | sed -n 's/.*"hits":\([0-9]*\).*/\1/p')
if [ "${DISK_HITS:-0}" -lt 1 ]; then
  echo "error: expected disk-tier hits after restart, got '$DISK_HITS'" >&2
  echo "$STATS" >&2
  exit 1
fi

"$MCRT" client --shutdown --socket "$SOCK2"
wait "$SERVE_PID"
trap - EXIT
echo "server chaos: kill -9 mid-write recovered —" \
  "$QUARANTINED entries quarantined, $DISK_HITS disk hits," \
  "corpus byte-identical to bulk"

#!/bin/sh
# Kill-and-resume smoke test for `mcrt bulk --manifest/--resume`.
#
# A batch is SIGKILLed mid-run (one job pinned in an injected infinite
# stall so the kill always lands with work in flight), then resumed with
# --resume. The acceptance bar: the resumed run completes every job and
# its canonical JSON report is byte-identical to an uninterrupted run's.
#
# Usage: kill_resume_test.sh <mcrt-binary> <scratch-dir>
set -eu

MCRT=$1
WORK=$2
SCRIPT='sweep; retime(d=10)'

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

"$MCRT" corpus circuits --count 6 --seed 11 > /dev/null

# Reference: one uninterrupted run.
"$MCRT" bulk "$SCRIPT" --jobs 2 --canonical \
  --out-dir out_ref --report ref.json circuits

# Interrupted run: job r05 stalls forever; SIGKILL once the manifest
# shows at least three finished jobs.
rm -rf out_kill
MCRT_FAULT_STALL='job:r05=stall' "$MCRT" bulk "$SCRIPT" --jobs 2 \
  --manifest manifest.txt --out-dir out_kill circuits &
PID=$!
TRIES=0
while :; do
  DONE=$(grep -c '^job	' manifest.txt 2>/dev/null || true)
  [ "${DONE:-0}" -ge 3 ] && break
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -gt 200 ]; then
    echo "error: batch never reached 3 completed jobs" >&2
    kill -9 "$PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.05
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

# The stalled job must NOT be in the manifest (it never finished).
if grep '^job	r05	' manifest.txt > /dev/null 2>&1; then
  echo "error: stalled job r05 was journaled as finished" >&2
  exit 1
fi

# Resume without the fault: only the missing jobs re-run.
"$MCRT" bulk "$SCRIPT" --jobs 2 --canonical --resume \
  --manifest manifest.txt --out-dir out_kill \
  --report resumed.json circuits

cmp ref.json resumed.json
echo "kill-and-resume: canonical reports are byte-identical"

#include "flow/maxflow.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(MaxFlowTest, SingleArc) {
  MaxFlow flow(2);
  flow.add_arc(0, 1, 5);
  EXPECT_EQ(flow.solve(0, 1), 5);
}

TEST(MaxFlowTest, ClassicNetwork) {
  // CLRS-style example.
  MaxFlow flow(6);
  flow.add_arc(0, 1, 16);
  flow.add_arc(0, 2, 13);
  flow.add_arc(1, 2, 10);
  flow.add_arc(2, 1, 4);
  flow.add_arc(1, 3, 12);
  flow.add_arc(3, 2, 9);
  flow.add_arc(2, 4, 14);
  flow.add_arc(4, 3, 7);
  flow.add_arc(3, 5, 20);
  flow.add_arc(4, 5, 4);
  EXPECT_EQ(flow.solve(0, 5), 23);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow flow(3);
  flow.add_arc(0, 1, 4);
  EXPECT_EQ(flow.solve(0, 2), 0);
}

TEST(MaxFlowTest, LimitCapsFlow) {
  MaxFlow flow(2);
  flow.add_arc(0, 1, 100);
  EXPECT_EQ(flow.solve(0, 1, 7), 7);
}

TEST(MaxFlowTest, MinCutSides) {
  // 0 -> 1 -> 2 with bottleneck at 1->2.
  MaxFlow flow(3);
  flow.add_arc(0, 1, 10);
  const std::size_t bottleneck = flow.add_arc(1, 2, 3);
  EXPECT_EQ(flow.solve(0, 2), 3);
  EXPECT_TRUE(flow.source_side(0));
  EXPECT_TRUE(flow.source_side(1));
  EXPECT_FALSE(flow.source_side(2));
  EXPECT_EQ(flow.flow_on(bottleneck), 3);
}

TEST(MaxFlowTest, UnitCapacityNodeSplit) {
  // k-feasibility style check: 4 parallel unit paths -> flow 4, limit 3
  // reports >= 3 quickly.
  MaxFlow flow(10);
  for (std::uint32_t i = 0; i < 4; ++i) {
    flow.add_arc(0, 2 + i, 1);
    flow.add_arc(2 + i, 1, 1);
  }
  EXPECT_EQ(flow.solve(0, 1, 3), 3);
}

TEST(MaxFlowTest, FlowConservation) {
  MaxFlow flow(4);
  const auto a = flow.add_arc(0, 1, 2);
  const auto b = flow.add_arc(0, 2, 2);
  const auto c = flow.add_arc(1, 3, 3);
  const auto d = flow.add_arc(2, 3, 1);
  EXPECT_EQ(flow.solve(0, 3), 3);
  EXPECT_EQ(flow.flow_on(a) + flow.flow_on(b), 3);
  EXPECT_EQ(flow.flow_on(c) + flow.flow_on(d), 3);
  EXPECT_LE(flow.flow_on(d), 1);
}

}  // namespace
}  // namespace mcrt

// Property: max-flow equals min-cut on random small networks, checked
// against exhaustive cut enumeration, and the reported source side is a
// valid minimum cut.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "flow/maxflow.h"

namespace mcrt {
namespace {

struct Network {
  std::size_t nodes;
  struct Arc {
    std::uint32_t from, to;
    std::int64_t cap;
  };
  std::vector<Arc> arcs;
};

Network random_network(std::uint64_t seed) {
  Rng rng(seed);
  Network net;
  net.nodes = 6 + rng.below(3);  // 6..8 nodes; source 0, sink 1
  const std::size_t arc_count = 10 + rng.below(8);
  for (std::size_t i = 0; i < arc_count; ++i) {
    const auto from = static_cast<std::uint32_t>(rng.below(net.nodes));
    const auto to = static_cast<std::uint32_t>(rng.below(net.nodes));
    if (from == to) continue;
    net.arcs.push_back({from, to, 1 + static_cast<std::int64_t>(rng.below(9))});
  }
  return net;
}

/// Minimum s-t cut by enumerating all 2^(n-2) side assignments.
std::int64_t brute_force_min_cut(const Network& net) {
  std::int64_t best = INT64_MAX;
  const std::size_t free_nodes = net.nodes - 2;  // nodes 2..n-1
  for (std::uint32_t mask = 0; mask < (1u << free_nodes); ++mask) {
    auto side = [&](std::uint32_t v) {
      if (v == 0) return true;   // source side
      if (v == 1) return false;  // sink side
      return static_cast<bool>((mask >> (v - 2)) & 1);
    };
    std::int64_t cut = 0;
    for (const auto& arc : net.arcs) {
      if (side(arc.from) && !side(arc.to)) cut += arc.cap;
    }
    best = std::min(best, cut);
  }
  return best;
}

class MaxFlowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxFlowProperty, MaxFlowEqualsBruteForceMinCut) {
  const Network net = random_network(GetParam());
  MaxFlow flow(net.nodes);
  for (const auto& arc : net.arcs) flow.add_arc(arc.from, arc.to, arc.cap);
  const std::int64_t value = flow.solve(0, 1);
  EXPECT_EQ(value, brute_force_min_cut(net)) << "seed " << GetParam();
  // The residual source side defines a cut of exactly `value`.
  std::int64_t cut = 0;
  for (std::size_t a = 0; a < net.arcs.size(); ++a) {
    if (flow.source_side(net.arcs[a].from) &&
        !flow.source_side(net.arcs[a].to)) {
      cut += net.arcs[a].cap;
    }
  }
  EXPECT_EQ(cut, value) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, MaxFlowProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace mcrt

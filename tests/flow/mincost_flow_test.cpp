#include "flow/mincost_flow.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(MinCostFlowTest, SimpleTransshipment) {
  // 1 unit from node 0 to node 2 via cheaper of two routes.
  MinCostFlow flow(3);
  flow.set_demand(0, -1);
  flow.set_demand(2, 1);
  flow.add_arc(0, 1, MinCostFlow::kInfinite, 1);
  flow.add_arc(1, 2, MinCostFlow::kInfinite, 1);
  flow.add_arc(0, 2, MinCostFlow::kInfinite, 5);
  const auto solution = flow.solve();
  ASSERT_TRUE(solution);
  EXPECT_EQ(solution->total_cost, 2);
}

TEST(MinCostFlowTest, CapacityForcesExpensiveRoute) {
  MinCostFlow flow(3);
  flow.set_demand(0, -2);
  flow.set_demand(2, 2);
  flow.add_arc(0, 1, 1, 1);
  flow.add_arc(1, 2, 1, 1);
  flow.add_arc(0, 2, MinCostFlow::kInfinite, 5);
  const auto solution = flow.solve();
  ASSERT_TRUE(solution);
  EXPECT_EQ(solution->total_cost, 2 + 5);
}

TEST(MinCostFlowTest, InfeasibleWhenDemandUnreachable) {
  MinCostFlow flow(3);
  flow.set_demand(0, -1);
  flow.set_demand(2, 1);
  flow.add_arc(0, 1, MinCostFlow::kInfinite, 1);  // no way to reach 2
  EXPECT_FALSE(flow.solve());
}

TEST(MinCostFlowTest, ImbalancedDemandsRejected) {
  MinCostFlow flow(2);
  flow.set_demand(0, -2);
  flow.set_demand(1, 1);
  flow.add_arc(0, 1, MinCostFlow::kInfinite, 0);
  EXPECT_FALSE(flow.solve());
}

TEST(MinCostFlowTest, NegativeCostArcsHandled) {
  MinCostFlow flow(3);
  flow.set_demand(0, -1);
  flow.set_demand(2, 1);
  flow.add_arc(0, 1, MinCostFlow::kInfinite, -2);
  flow.add_arc(1, 2, MinCostFlow::kInfinite, 1);
  const auto solution = flow.solve();
  ASSERT_TRUE(solution);
  EXPECT_EQ(solution->total_cost, -1);
}

TEST(MinCostFlowTest, NegativeInfiniteCycleRejected) {
  MinCostFlow flow(2);
  flow.add_arc(0, 1, MinCostFlow::kInfinite, -1);
  flow.add_arc(1, 0, MinCostFlow::kInfinite, -1);
  EXPECT_FALSE(flow.solve());
}

TEST(MinCostFlowTest, PotentialsSatisfyReducedCosts) {
  // For every arc with residual capacity at optimum:
  // pi(to) <= pi(from) + cost  (these are the dual feasibility conditions
  // the retiming labels rely on).
  MinCostFlow flow(4);
  flow.set_demand(0, -2);
  flow.set_demand(3, 2);
  struct ArcSpec {
    std::uint32_t from, to;
    std::int64_t cost;
  };
  const std::vector<ArcSpec> arcs = {
      {0, 1, 2}, {1, 3, 2}, {0, 2, 1}, {2, 3, 4}, {1, 2, 0}};
  for (const auto& a : arcs) {
    flow.add_arc(a.from, a.to, MinCostFlow::kInfinite, a.cost);
  }
  const auto solution = flow.solve();
  ASSERT_TRUE(solution);
  for (const auto& a : arcs) {
    EXPECT_LE(solution->potential[a.to],
              solution->potential[a.from] + a.cost);
  }
}

TEST(MinCostFlowTest, ZeroDemandTrivial) {
  MinCostFlow flow(2);
  flow.add_arc(0, 1, MinCostFlow::kInfinite, 3);
  const auto solution = flow.solve();
  ASSERT_TRUE(solution);
  EXPECT_EQ(solution->total_cost, 0);
}

TEST(MinCostFlowTest, ArcFlowReported) {
  MinCostFlow flow(2);
  flow.set_demand(0, -3);
  flow.set_demand(1, 3);
  const auto arc = flow.add_arc(0, 1, MinCostFlow::kInfinite, 1);
  const auto solution = flow.solve();
  ASSERT_TRUE(solution);
  EXPECT_EQ(solution->arc_flow[arc / 2], 3);
}

}  // namespace
}  // namespace mcrt

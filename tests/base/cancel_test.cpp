// CancelToken semantics (explicit cancel, deadlines, parent chaining),
// the null-tolerant polling helpers, resource budgets and the
// deterministic FaultInjector.
#include "base/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "base/fault_injector.h"

namespace mcrt {
namespace {

TEST(CancelTokenTest, FreshTokenIsNotStopped) {
  CancelToken token;
  EXPECT_EQ(token.stop_requested(), StopReason::kNone);
  EXPECT_FALSE(token.stopped());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelTokenTest, RequestCancelStops) {
  CancelToken token;
  token.request_cancel();
  EXPECT_EQ(token.stop_requested(), StopReason::kCancelled);
  try {
    token.check();
    FAIL() << "check() must throw after request_cancel()";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), StopReason::kCancelled);
  }
}

TEST(CancelTokenTest, PastDeadlineIsTimeout) {
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_EQ(token.stop_requested(), StopReason::kTimeout);
}

TEST(CancelTokenTest, FutureDeadlineDoesNotStopYet) {
  CancelToken token;
  token.set_timeout(3600.0);
  EXPECT_EQ(token.stop_requested(), StopReason::kNone);
}

TEST(CancelTokenTest, NonPositiveTimeoutDisarms) {
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  ASSERT_EQ(token.stop_requested(), StopReason::kTimeout);
  token.set_timeout(0);
  EXPECT_EQ(token.stop_requested(), StopReason::kNone);
}

TEST(CancelTokenTest, TimeoutElapses) {
  CancelToken token;
  token.set_timeout(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(token.stop_requested(), StopReason::kTimeout);
}

TEST(CancelTokenTest, ExplicitCancelWinsOverDeadline) {
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  token.request_cancel();
  EXPECT_EQ(token.stop_requested(), StopReason::kCancelled);
}

TEST(CancelTokenTest, ChildObservesParentCancel) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_EQ(child.stop_requested(), StopReason::kNone);
  parent.request_cancel();
  EXPECT_EQ(child.stop_requested(), StopReason::kCancelled);
}

TEST(CancelTokenTest, ChildDeadlineDoesNotLeakToParent) {
  CancelToken parent;
  CancelToken child(&parent);
  child.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_EQ(child.stop_requested(), StopReason::kTimeout);
  EXPECT_EQ(parent.stop_requested(), StopReason::kNone);
}

TEST(CancelTokenTest, OwnStateWinsOverParent) {
  // The per-job deadline fires; the batch token is untouched — the poll
  // must report the job's own (timeout) reason.
  CancelToken parent;
  CancelToken child(&parent);
  child.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  parent.request_cancel();
  EXPECT_EQ(child.stop_requested(), StopReason::kTimeout);
}

TEST(CancelTokenTest, NullHelpersAreNoOps) {
  EXPECT_EQ(cancel_requested(nullptr), StopReason::kNone);
  EXPECT_NO_THROW(poll_cancel(nullptr));
  CancelToken token;
  token.request_cancel();
  EXPECT_EQ(cancel_requested(&token), StopReason::kCancelled);
  EXPECT_THROW(poll_cancel(&token), CancelledError);
}

TEST(ResourceBudgetsTest, DefaultsAreUnlimited) {
  const ResourceBudgets budgets;
  EXPECT_EQ(budgets.bdd_node_cap, 0u);
  EXPECT_EQ(budgets.bmc_step_cap, 0u);
  EXPECT_EQ(budgets.max_rss_bytes, 0u);
}

TEST(ResourceBudgetsTest, CurrentRssIsPlausible) {
  const std::size_t rss = current_rss_bytes();
  // On Linux /proc is available; a running test binary surely holds at
  // least a megabyte and less than a terabyte.
  EXPECT_GT(rss, std::size_t{1} << 20);
  EXPECT_LT(rss, std::size_t{1} << 40);
}

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjectorTest, EmptyInjectorDoesNothing) {
  FaultInjector faults;
  EXPECT_TRUE(faults.empty());
  EXPECT_EQ(faults.fire("pass:retime"), FaultInjector::Action::kNone);
  EXPECT_FALSE(faults.inject("pass:retime", nullptr));
}

TEST(FaultInjectorTest, ParsesActionsAndRejectsGarbage) {
  FaultInjector faults;
  std::string error;
  EXPECT_TRUE(faults.configure("pass:a=throw; job:b=fail, write:c=stall",
                               &error))
      << error;
  EXPECT_FALSE(faults.empty());
  EXPECT_EQ(faults.fire("pass:a"), FaultInjector::Action::kThrow);
  EXPECT_EQ(faults.fire("job:b"), FaultInjector::Action::kFail);
  EXPECT_EQ(faults.fire("write:c"), FaultInjector::Action::kStall);
  EXPECT_EQ(faults.fire("unrelated"), FaultInjector::Action::kNone);

  EXPECT_FALSE(faults.configure("pass:a=explode", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(faults.configure("justasite", &error));
  EXPECT_FALSE(faults.configure("pass:a=fail@notanumber", &error));
}

TEST(FaultInjectorTest, HitCountSelectsOneInvocation) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("job:x=fail@3", &error)) << error;
  EXPECT_EQ(faults.fire("job:x"), FaultInjector::Action::kNone);  // hit 1
  EXPECT_EQ(faults.fire("job:x"), FaultInjector::Action::kNone);  // hit 2
  EXPECT_EQ(faults.fire("job:x"), FaultInjector::Action::kFail);  // hit 3
  EXPECT_EQ(faults.fire("job:x"), FaultInjector::Action::kNone);  // hit 4
}

TEST(FaultInjectorTest, PrefixWildcardMatches) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("write:*=fail", &error)) << error;
  EXPECT_EQ(faults.fire("write:a.blif"), FaultInjector::Action::kFail);
  EXPECT_EQ(faults.fire("write:b.blif"), FaultInjector::Action::kFail);
  EXPECT_EQ(faults.fire("pass:a"), FaultInjector::Action::kNone);
}

TEST(FaultInjectorTest, InjectThrowsAndFails) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("a=throw; b=fail", &error)) << error;
  EXPECT_THROW(faults.inject("a", nullptr), FaultInjectedError);
  EXPECT_TRUE(faults.inject("b", nullptr));
  EXPECT_FALSE(faults.inject("c", nullptr));
}

TEST(FaultInjectorTest, StallEndsWhenCancelled) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("slow=stall", &error)) << error;
  CancelToken cancel;
  cancel.set_timeout(0.05);
  // The stall naps until the token stops; inject() then throws the
  // token's CancelledError out of the "pass".
  EXPECT_THROW(faults.inject("slow", &cancel), CancelledError);
}

}  // namespace
}  // namespace mcrt

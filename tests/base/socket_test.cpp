// SocketStream / ListenSocket: line framing, EOF semantics, ephemeral TCP
// ports, Unix-domain paths (incl. stale-file takeover) and the
// cross-thread shutdown() that unblocks a blocked reader.
#include "base/socket.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

namespace mcrt {
namespace {

namespace fs = std::filesystem;

struct Pair {
  ListenSocket listener;
  SocketStream server;
  SocketStream client;
};

/// Listens on `endpoint`, dials it, and accepts: one connected pair.
bool make_pair_on(const SocketEndpoint& endpoint, Pair* pair,
                  std::string* error) {
  if (!pair->listener.listen(endpoint, error)) return false;
  SocketEndpoint dial = endpoint;
  if (!endpoint.is_unix() && endpoint.tcp_port == 0) {
    dial.tcp_port = pair->listener.bound_port();
  }
  pair->client = connect_socket(dial, error);
  if (!pair->client.valid()) return false;
  auto accepted = pair->listener.accept(2000);
  if (!accepted) {
    *error = "accept timed out";
    return false;
  }
  pair->server = std::move(*accepted);
  return true;
}

TEST(SocketTest, TcpEphemeralPortRoundTrip) {
  SocketEndpoint endpoint;
  endpoint.tcp_port = 0;  // ephemeral
  Pair pair;
  std::string error;
  ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;
  EXPECT_NE(pair.listener.bound_port(), 0);

  ASSERT_TRUE(pair.client.write_line("ping"));
  EXPECT_EQ(pair.server.read_line(), "ping");
  ASSERT_TRUE(pair.server.write_line("pong"));
  EXPECT_EQ(pair.client.read_line(), "pong");
}

TEST(SocketTest, UnixSocketRoundTripAndStaleFileTakeover) {
  const std::string path =
      (fs::path(::testing::TempDir()) /
       ("sock_test_" + std::to_string(::getpid()) + ".sock"))
          .string();
  SocketEndpoint endpoint;
  endpoint.unix_path = path;
  {
    Pair pair;
    std::string error;
    ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;
    ASSERT_TRUE(pair.client.write_line("over unix"));
    EXPECT_EQ(pair.server.read_line(), "over unix");
  }
  // First listener is gone; rebinding over any stale socket file works.
  {
    Pair pair;
    std::string error;
    ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;
  }
  // close() unlinks the path.
  EXPECT_FALSE(fs::exists(path));
}

TEST(SocketTest, ReadLineSplitsOnNewlinesAndDeliversFinalFragment) {
  SocketEndpoint endpoint;
  Pair pair;
  std::string error;
  ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;

  ASSERT_TRUE(pair.client.write_all("a\nbb\nfragment"));
  pair.client.close();
  EXPECT_EQ(pair.server.read_line(), "a");
  EXPECT_EQ(pair.server.read_line(), "bb");
  EXPECT_EQ(pair.server.read_line(), "fragment");  // unterminated final line
  EXPECT_EQ(pair.server.read_line(), std::nullopt);  // EOF
}

TEST(SocketTest, BoundedReadLineDiscardsOversizedLineAndStaysFramed) {
  SocketEndpoint endpoint;
  Pair pair;
  std::string error;
  ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;

  // A 1 KiB line against an 8-byte bound, then a well-behaved frame: the
  // oversized line must be discarded through its '\n' so the next read
  // returns the good frame, not a mid-line fragment.
  ASSERT_TRUE(pair.client.write_line(std::string(1024, 'x')));
  ASSERT_TRUE(pair.client.write_line("ok"));
  bool overflow = false;
  EXPECT_EQ(pair.server.read_line(8, &overflow), "");
  EXPECT_TRUE(overflow);
  EXPECT_EQ(pair.server.read_line(8, &overflow), "ok");
  EXPECT_FALSE(overflow);
}

TEST(SocketTest, BoundedReadLineAtExactLimitAndEof) {
  SocketEndpoint endpoint;
  Pair pair;
  std::string error;
  ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;

  ASSERT_TRUE(pair.client.write_line("12345678"));  // exactly max_bytes
  ASSERT_TRUE(pair.client.write_all("unterminated-overlong-tail"));
  pair.client.close();
  bool overflow = true;
  EXPECT_EQ(pair.server.read_line(8, &overflow), "12345678");
  EXPECT_FALSE(overflow);
  // An oversized final fragment with no '\n' ends at EOF: the overflow is
  // reported once, then the stream is done.
  EXPECT_EQ(pair.server.read_line(8, &overflow), "");
  EXPECT_TRUE(overflow);
  EXPECT_EQ(pair.server.read_line(8, &overflow), std::nullopt);
}

TEST(SocketTest, WriteToClosedPeerFailsWithoutKillingProcess) {
  SocketEndpoint endpoint;
  Pair pair;
  std::string error;
  ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;
  pair.server.close();
  // Depending on timing the first write may land in the kernel buffer, but
  // repeated writes must fail (MSG_NOSIGNAL: an error, not SIGPIPE).
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !pair.client.write_line(std::string(1024, 'x'));
  }
  EXPECT_TRUE(failed);
}

TEST(SocketTest, ShutdownUnblocksConcurrentReader) {
  SocketEndpoint endpoint;
  Pair pair;
  std::string error;
  ASSERT_TRUE(make_pair_on(endpoint, &pair, &error)) << error;

  std::atomic<bool> unblocked{false};
  std::thread reader([&] {
    EXPECT_EQ(pair.server.read_line(), std::nullopt);
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unblocked.load());
  pair.server.shutdown();
  reader.join();
  EXPECT_TRUE(unblocked.load());
}

TEST(SocketTest, AcceptTimesOutWithoutConnection) {
  ListenSocket listener;
  SocketEndpoint endpoint;
  std::string error;
  ASSERT_TRUE(listener.listen(endpoint, &error)) << error;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(listener.accept(50).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(40));
}

TEST(SocketTest, ConnectToNothingFails) {
  SocketEndpoint endpoint;
  endpoint.unix_path = "/nonexistent/definitely/not/here.sock";
  std::string error;
  EXPECT_FALSE(connect_socket(endpoint, &error).valid());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace mcrt

#include "base/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace mcrt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace mcrt

// Work-stealing ThreadPool: completion, concurrency, nested submission,
// wait semantics and TaskGroup exception propagation.
#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mcrt {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  std::atomic<int> running{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      ++running;
      // Linger so other workers must pick up (or steal) the rest.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
      --running;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(running.load(), 0);
  // All four workers participate; on a loaded machine allow a straggler.
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, NestedSubmissionFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 10; ++j) {
        pool.submit([&count] { ++count; });
      }
    });
  }
  pool.wait_idle();  // must cover tasks submitted by tasks
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.submit([] {});
  pool.wait_idle();
  pool.wait_idle();
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
  }  // ~ThreadPool waits
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsNestedSubmissions) {
  // Regression: tasks submitted *by draining tasks* after stop was
  // requested must still be accounted and run before the workers exit.
  // The old shutdown ordering pushed the task before bumping the queued
  // count, so a worker could observe "stopping && queue empty" and exit
  // with work in flight.
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    {
      ThreadPool pool(2);
      for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          for (int j = 0; j < 4; ++j) pool.submit([&count] { ++count; });
        });
      }
    }  // ~ThreadPool must wait for the nested tasks too
  }
  EXPECT_EQ(count.load(), 20 * 8 * 4);
}

TEST(ThreadPoolTest, DefaultWorkerCountIsPositive) {
  EXPECT_GE(ThreadPool::default_worker_count(), 1u);
}

TEST(TaskGroupTest, WaitCoversExactlyItsBatch) {
  ThreadPool pool(4);
  std::atomic<int> ours{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&ours] { ++ours; });
  }
  group.wait();
  EXPECT_EQ(ours.load(), 100);
  // A drained group is reusable.
  group.run([&ours] { ++ours; });
  group.wait();
  EXPECT_EQ(ours.load(), 101);
}

TEST(TaskGroupTest, RethrowsFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    group.run([i, &completed] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      ++completed;
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 7);  // the other tasks still ran
}

TEST(TaskGroupTest, ParallelResultsLandInDistinctSlots) {
  ThreadPool pool(4);
  std::vector<int> results(200, 0);
  TaskGroup group(pool);
  for (std::size_t i = 0; i < results.size(); ++i) {
    group.run([&results, i] { results[i] = static_cast<int>(i) + 1; });
  }
  group.wait();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace mcrt

#include "base/log.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(LogTest, LevelThresholdRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  // Messages below the threshold are dropped (no crash, no output check
  // possible on stderr; this exercises the path).
  log_debug("dropped");
  log_error("dropped too at kOff");
  set_log_level(before);
}

TEST(LogTest, EmitsAtOrAboveThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  log_warn("warning path");
  log_error("error path");
  log_info("dropped");
  set_log_level(before);
}

}  // namespace
}  // namespace mcrt

// FaultInjector: spec parsing (including the io-class actions), per-site
// hit counting, @hit one-shot semantics, prefix matching, and inject()'s
// throw/fail behavior.
#include "base/fault_injector.h"

#include <gtest/gtest.h>

#include <string>

namespace mcrt {
namespace {

TEST(FaultInjectorTest, ParsesEveryActionIncludingIoClass) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.configure(
      "a=throw; b=fail; c=stall; d=short-write; e=fsync-fail; f=enospc; "
      "g=corrupt",
      &error))
      << error;
  EXPECT_EQ(injector.fire("a"), FaultInjector::Action::kThrow);
  EXPECT_EQ(injector.fire("b"), FaultInjector::Action::kFail);
  EXPECT_EQ(injector.fire("c"), FaultInjector::Action::kStall);
  EXPECT_EQ(injector.fire("d"), FaultInjector::Action::kShortWrite);
  EXPECT_EQ(injector.fire("e"), FaultInjector::Action::kFsyncFail);
  EXPECT_EQ(injector.fire("f"), FaultInjector::Action::kEnospc);
  EXPECT_EQ(injector.fire("g"), FaultInjector::Action::kCorrupt);
  EXPECT_EQ(injector.fire("unconfigured"), FaultInjector::Action::kNone);
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  FaultInjector injector;
  std::string error;
  EXPECT_FALSE(injector.configure("site=not-an-action", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(injector.configure("missing-equals", &error));
  EXPECT_FALSE(injector.configure("site=fail@zero", &error));
  EXPECT_FALSE(injector.configure("=fail", &error));
}

TEST(FaultInjectorTest, AtHitFiresExactlyOnce) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.configure("io:write:x=enospc@3", &error)) << error;
  EXPECT_EQ(injector.fire("io:write:x"), FaultInjector::Action::kNone);
  EXPECT_EQ(injector.fire("io:write:x"), FaultInjector::Action::kNone);
  EXPECT_EQ(injector.fire("io:write:x"), FaultInjector::Action::kEnospc);
  EXPECT_EQ(injector.fire("io:write:x"), FaultInjector::Action::kNone);
}

TEST(FaultInjectorTest, WithoutAtHitFiresEveryTime) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.configure("io:read:y=corrupt", &error)) << error;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(injector.fire("io:read:y"), FaultInjector::Action::kCorrupt);
  }
}

TEST(FaultInjectorTest, PrefixPatternCountsHitsPerPatternNotPerSite) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.configure("io:write:*=short-write@2", &error)) << error;
  // The @2 counter belongs to the pattern, so two different files share it.
  EXPECT_EQ(injector.fire("io:write:a.entry"), FaultInjector::Action::kNone);
  EXPECT_EQ(injector.fire("io:write:b.entry"),
            FaultInjector::Action::kShortWrite);
  EXPECT_EQ(injector.fire("io:write:a.entry"), FaultInjector::Action::kNone);
}

TEST(FaultInjectorTest, InjectThrowsForThrowAndReportsFailureForIoActions) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.configure("boom=throw; disk=enospc; ok=short-write",
                                 &error))
      << error;
  EXPECT_THROW((void)injector.inject("boom", nullptr), FaultInjectedError);
  // Generic inject() callers see io-class actions as a plain failure.
  EXPECT_TRUE(injector.inject("disk", nullptr));
  EXPECT_TRUE(injector.inject("ok", nullptr));
  EXPECT_FALSE(injector.inject("unconfigured", nullptr));
}

TEST(FaultInjectorTest, EmptyAndSeparators) {
  FaultInjector injector;
  std::string error;
  EXPECT_TRUE(injector.empty());
  ASSERT_TRUE(injector.configure("a=fail, b=fail; c=fail", &error)) << error;
  EXPECT_FALSE(injector.empty());
  EXPECT_EQ(injector.fire("b"), FaultInjector::Action::kFail);
  EXPECT_EQ(injector.fire("c"), FaultInjector::Action::kFail);
}

}  // namespace
}  // namespace mcrt

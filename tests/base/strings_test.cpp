#include "base/strings.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto tokens = split_tokens("a b  c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
}

TEST(StringsTest, SplitEmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_tokens("").empty());
  EXPECT_TRUE(split_tokens("   \t ").empty());
}

TEST(StringsTest, SplitCustomDelims) {
  const auto tokens = split_tokens("a=b:c", "=:");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2], "c");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with(".names a b", ".names"));
  EXPECT_FALSE(starts_with(".name", ".names"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(str_format("v%u=%s", 3u, "x"), "v3=x");
  EXPECT_EQ(str_format("%s", ""), "");
}

}  // namespace
}  // namespace mcrt

#include "base/strings.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto tokens = split_tokens("a b  c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
}

TEST(StringsTest, SplitEmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_tokens("").empty());
  EXPECT_TRUE(split_tokens("   \t ").empty());
}

TEST(StringsTest, SplitCustomDelims) {
  const auto tokens = split_tokens("a=b:c", "=:");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2], "c");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with(".names a b", ".names"));
  EXPECT_FALSE(starts_with(".name", ".names"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(str_format("v%u=%s", 3u, "x"), "v3=x");
  EXPECT_EQ(str_format("%s", ""), "");
}

TEST(StringsTest, JsonEscapePassesPlainTextThrough) {
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("sweep; strash"), "sweep; strash");
}

TEST(StringsTest, JsonEscapeQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("c:\\tmp"), "c:\\\\tmp");
}

TEST(StringsTest, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(json_escape("\r\b\f"), "\\r\\b\\f");
}

}  // namespace
}  // namespace mcrt

#include "base/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <variant>

namespace mcrt {
namespace {

Json parse_ok(const std::string& text) {
  auto parsed = Json::parse(text);
  const auto* err = std::get_if<JsonParseError>(&parsed);
  EXPECT_EQ(err, nullptr) << text << " -> "
                          << (err != nullptr ? err->message : "");
  return err == nullptr ? std::get<Json>(parsed) : Json();
}

JsonParseError parse_err(const std::string& text) {
  auto parsed = Json::parse(text);
  const auto* err = std::get_if<JsonParseError>(&parsed);
  EXPECT_NE(err, nullptr) << text << " unexpectedly parsed";
  return err != nullptr ? *err : JsonParseError{};
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool(true));
  EXPECT_EQ(parse_ok("42").as_int(), 42);
  EXPECT_EQ(parse_ok("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse_ok("2.5e3").as_number(), 2500.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesNested) {
  const Json doc = parse_ok(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("a").as_array().size(), 3u);
  EXPECT_TRUE(doc.at("a").as_array()[2].at("b").as_bool());
  EXPECT_TRUE(doc.at("c").at("d").is_null());
  EXPECT_EQ(doc.at("e").as_string(), "x");
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_TRUE(doc.at("missing").is_null());  // at() is null-tolerant
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  // \u escape, including a surrogate pair (U+1F600).
  EXPECT_EQ(parse_ok(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_ok(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, WriteIsCompactAndStable) {
  Json object = Json::object();
  object.set("name", "r00");
  object.set("ok", true);
  object.set("count", 42);
  Json list = Json::array();
  list.push_back(1);
  list.push_back("two");
  object.set("list", std::move(list));
  EXPECT_EQ(object.write(),
            R"({"name":"r00","ok":true,"count":42,"list":[1,"two"]})");
}

TEST(JsonTest, RoundTripPreservesMemberOrder) {
  const std::string text =
      R"({"z":1,"a":{"y":[true,null,-3.5],"x":"s"},"m":[]})";
  EXPECT_EQ(parse_ok(text).write(), text);
}

TEST(JsonTest, IntegersPrintWithoutExponent) {
  Json object = Json::object();
  object.set("big", static_cast<std::int64_t>(9007199254740992LL));
  object.set("neg", -123456789);
  EXPECT_EQ(object.write(), R"({"big":9007199254740992,"neg":-123456789})");
}

TEST(JsonTest, SetOverwritesExistingKey) {
  Json object = Json::object();
  object.set("k", 1);
  object.set("k", 2);
  EXPECT_EQ(object.at("k").as_int(), 2);
  EXPECT_EQ(object.as_object().size(), 1u);
}

TEST(JsonTest, RejectsMalformedDocuments) {
  parse_err("");
  parse_err("{");
  parse_err("[1, 2");
  parse_err("{\"a\": }");
  parse_err("{\"a\": 1,}");   // trailing comma
  parse_err("nul");
  parse_err("\"unterminated");
  parse_err("1 2");           // trailing garbage
  const JsonParseError err = parse_err("{\"a\": 1} x");
  EXPECT_GE(err.offset, 9u);
}

TEST(JsonTest, TypeMismatchFallsBack) {
  const Json doc = parse_ok(R"({"s": "x", "n": 5})");
  EXPECT_EQ(doc.at("s").as_int(7), 7);
  EXPECT_EQ(doc.at("n").as_string(), "");
  EXPECT_TRUE(doc.at("s").as_array().empty());
}

}  // namespace
}  // namespace mcrt

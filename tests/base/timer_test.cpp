#include "base/timer.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(TimerTest, MonotoneNonNegative) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(PhaseProfileTest, AccumulatesAndOrders) {
  PhaseProfile profile;
  profile.add("x", 1.0);
  profile.add("y", 3.0);
  profile.add("x", 1.0);
  EXPECT_DOUBLE_EQ(profile.total(), 5.0);
  EXPECT_DOUBLE_EQ(profile.seconds("x"), 2.0);
  EXPECT_DOUBLE_EQ(profile.percent("x"), 40.0);
  ASSERT_EQ(profile.phases().size(), 2u);
  EXPECT_EQ(profile.phases()[0], "x");
}

TEST(PhaseProfileTest, EmptyProfile) {
  PhaseProfile profile;
  EXPECT_DOUBLE_EQ(profile.total(), 0.0);
  EXPECT_DOUBLE_EQ(profile.percent("missing"), 0.0);
}

TEST(PhaseProfileTest, Merge) {
  PhaseProfile a;
  a.add("x", 1.0);
  PhaseProfile b;
  b.add("x", 2.0);
  b.add("z", 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.seconds("z"), 1.0);
}

TEST(PhaseProfileTest, ScopedPhaseAddsTime) {
  PhaseProfile profile;
  { ScopedPhase scope(profile, "work"); }
  EXPECT_GE(profile.seconds("work"), 0.0);
  EXPECT_EQ(profile.phases().size(), 1u);
}

}  // namespace
}  // namespace mcrt

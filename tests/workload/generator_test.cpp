#include "workload/generator.h"

#include <gtest/gtest.h>

#include "blif/blif.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

class PaperSuiteTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaperSuiteTest, GeneratesValidCircuit) {
  const auto suite = paper_suite();
  const CircuitProfile& profile = suite[GetParam()];
  const Netlist n = generate_circuit(profile);
  const auto problems = n.validate();
  EXPECT_TRUE(problems.empty())
      << profile.name << ": " << (problems.empty() ? "" : problems[0]);
  EXPECT_GT(n.register_count(), 0u);
  EXPECT_GT(n.stats().luts, 0u);
  EXPECT_FALSE(n.outputs().empty());
}

TEST_P(PaperSuiteTest, ProfileFlagsRespected) {
  const auto suite = paper_suite();
  const CircuitProfile& profile = suite[GetParam()];
  const Netlist n = generate_circuit(profile);
  const auto stats = n.stats();
  if (!profile.use_en) {
    EXPECT_EQ(stats.with_en, 0u) << profile.name;
  }
  if (!profile.use_async) {
    EXPECT_EQ(stats.with_async, 0u) << profile.name;
  }
  if (profile.use_en) {
    EXPECT_GT(stats.with_en, 0u) << profile.name;
  }
}

TEST_P(PaperSuiteTest, DeterministicForSeed) {
  const auto suite = paper_suite();
  const CircuitProfile& profile = suite[GetParam()];
  const Netlist a = generate_circuit(profile);
  const Netlist b = generate_circuit(profile);
  EXPECT_EQ(write_blif_string(a), write_blif_string(b));
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, PaperSuiteTest,
                         ::testing::Range<std::size_t>(0, 10),
                         [](const auto& info) {
                           return "C" + std::to_string(info.param + 1);
                         });

TEST(PaperSuiteTest, HasTenCircuits) {
  EXPECT_EQ(paper_suite().size(), 10u);
}

TEST(RandomCircuitTest, ValidAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    EXPECT_TRUE(n.validate().empty()) << "seed " << seed;
  }
}

TEST(RandomCircuitTest, FeedbackRegistersPresent) {
  RandomCircuitOptions opt;
  opt.feedback_registers = 3;
  const Netlist n = random_sequential_circuit(7, opt);
  EXPECT_GE(n.register_count(), 3u);
  EXPECT_TRUE(n.validate().empty());
}

TEST(RandomCircuitTest, OptionsControlControls) {
  RandomCircuitOptions opt;
  opt.use_en = false;
  opt.use_async = false;
  opt.use_sync = false;
  const Netlist n = random_sequential_circuit(3, opt);
  EXPECT_EQ(n.stats().with_en, 0u);
  EXPECT_EQ(n.stats().with_async, 0u);
  EXPECT_EQ(n.stats().with_sync, 0u);
}

}  // namespace
}  // namespace mcrt

#include "verify/formal_equivalence.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "mcretime/mc_retime.h"
#include "tech/decompose.h"
#include "transform/decompose_controls.h"
#include "transform/sweep.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

using Verdict = FormalResult::Verdict;

TEST(FormalEquivalenceTest, UnresettableStateIsHonestlyDistinguished) {
  // Two copies of a circuit whose registers have no reset can start in
  // different states: reset-synchronized equivalence correctly reports a
  // mismatch (the 3-valued simulation oracle is the tool for this case).
  const Netlist n = testing::fig1_circuit();
  const auto result = check_formal_equivalence(n, n, {});
  EXPECT_EQ(result.verdict, Verdict::kMismatch) << result.detail;
}

TEST(FormalEquivalenceTest, IdenticalResettableCircuits) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId x = n.add_input("x");
  const NetId d = n.add_net("d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = rst;
  ff.async_val = ResetVal::kZero;
  const NetId q = n.add_register(std::move(ff));
  n.add_lut_driving(d, TruthTable::xor_n(2), {q, x});
  n.add_output("o", q);
  const auto result = check_formal_equivalence(n, n, {});
  EXPECT_EQ(result.verdict, Verdict::kEquivalent) << result.detail;
  EXPECT_GT(result.iterations, 0u);
}

TEST(FormalEquivalenceTest, DetectsFunctionalChange) {
  Netlist a;
  {
    const NetId clk = a.add_input("clk");
    const NetId x = a.add_input("x");
    const NetId y = a.add_input("y");
    const NetId g = a.add_lut(TruthTable::and_n(2), {x, y});
    Register ff;
    ff.d = g;
    ff.clk = clk;
    a.add_output("o", a.add_register(std::move(ff)));
  }
  Netlist b;
  {
    const NetId clk = b.add_input("clk");
    const NetId x = b.add_input("x");
    const NetId y = b.add_input("y");
    const NetId g = b.add_lut(TruthTable::or_n(2), {x, y});  // OR, not AND
    Register ff;
    ff.d = g;
    ff.clk = clk;
    b.add_output("o", b.add_register(std::move(ff)));
  }
  const auto result = check_formal_equivalence(a, b, {});
  EXPECT_EQ(result.verdict, Verdict::kMismatch) << result.detail;
}

TEST(FormalEquivalenceTest, InterfaceMismatchUnsupported) {
  Netlist a;
  a.add_output("o", a.add_input("x"));
  Netlist b;
  b.add_output("o", b.add_input("different"));
  const auto result = check_formal_equivalence(a, b, {});
  EXPECT_EQ(result.verdict, Verdict::kUnsupported);
}

TEST(FormalEquivalenceTest, StateBitBudget) {
  RandomCircuitOptions opt;
  opt.registers = 20;
  const Netlist n = random_sequential_circuit(3, opt);
  FormalOptions fo;
  fo.max_state_bits = 8;
  const auto result = check_formal_equivalence(n, n, fo);
  EXPECT_EQ(result.verdict, Verdict::kUnsupported);
}

/// Fully-reset circuits: every register carries an async clear, so the
/// reset prefix collapses the state space and the verdict is exact.
Netlist fully_reset_circuit(std::uint64_t seed) {
  RandomCircuitOptions opt;
  opt.gates = 14;
  opt.registers = 5;
  opt.feedback_registers = 1;
  opt.inputs = 3;
  opt.outputs = 2;
  opt.control_signatures = 2;
  opt.use_en = true;
  opt.use_async = true;
  Netlist n = random_sequential_circuit(seed, opt);
  // Force an async clear on every register (signatures may have skipped
  // some).
  NetId rst;
  for (const NodeId in : n.inputs()) {
    if (n.node(in).name == "rst") rst = n.node(in).output;
  }
  for (std::size_t r = 0; r < n.register_count(); ++r) {
    Register& ff = n.reg(RegId{static_cast<std::uint32_t>(r)});
    if (!ff.async_ctrl.valid()) {
      ff.async_ctrl = rst;
      ff.async_val = ResetVal::kZero;
    }
  }
  return n;
}

TEST(FormalEquivalenceTest, DecompositionPreservesBehaviourFormally) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Netlist n = sweep(fully_reset_circuit(seed), nullptr);
    const Netlist d = decompose_to_binary(n);
    const auto result = check_formal_equivalence(n, d, {});
    EXPECT_EQ(result.verdict, Verdict::kEquivalent)
        << "seed " << seed << ": " << result.detail;
  }
}

TEST(FormalEquivalenceTest, EnableDecompositionFormally) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Netlist n = sweep(fully_reset_circuit(seed), nullptr);
    const Netlist d = decompose_load_enables(n);
    const auto result = check_formal_equivalence(n, d, {});
    EXPECT_EQ(result.verdict, Verdict::kEquivalent)
        << "seed " << seed << ": " << result.detail;
  }
}

TEST(FormalEquivalenceTest, McRetimingPreservesBehaviourFormally) {
  // The paper's guarantee, checked exhaustively on small circuits: the
  // retimed circuit is a replacement for the original.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Netlist n = sweep(fully_reset_circuit(seed), nullptr);
    for (std::size_t i = 0; i < n.node_count(); ++i) {
      if (n.nodes()[i].kind == NodeKind::kLut) {
        n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
      }
    }
    const auto retimed = mc_retime(n, {});
    ASSERT_TRUE(retimed.success) << "seed " << seed << ": " << retimed.error;
    FormalOptions fo;
    fo.max_state_bits = 30;
    const auto result = check_formal_equivalence(n, retimed.netlist, fo);
    EXPECT_EQ(result.verdict, Verdict::kEquivalent)
        << "seed " << seed << ": " << result.detail;
  }
}

TEST(FormalEquivalenceTest, CatchesWrongResetValueAfterRetiming) {
  // Sabotage: flip one register's async value in a retimed circuit; the
  // checker must notice (this is exactly the class of bug the paper's
  // justification machinery exists to prevent).
  Netlist n = sweep(fully_reset_circuit(2), nullptr);
  for (std::size_t i = 0; i < n.node_count(); ++i) {
    if (n.nodes()[i].kind == NodeKind::kLut) {
      n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
    }
  }
  auto retimed = mc_retime(n, {});
  ASSERT_TRUE(retimed.success);
  Netlist sabotaged = retimed.netlist;
  bool flipped = false;
  for (std::size_t r = 0; r < sabotaged.register_count() && !flipped; ++r) {
    Register& ff = sabotaged.reg(RegId{static_cast<std::uint32_t>(r)});
    if (ff.async_ctrl.valid()) {
      ff.async_val = ff.async_val == ResetVal::kOne ? ResetVal::kZero
                                                    : ResetVal::kOne;
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);
  FormalOptions fo;
  fo.max_state_bits = 30;
  const auto clean = check_formal_equivalence(n, retimed.netlist, fo);
  const auto dirty = check_formal_equivalence(n, sabotaged, fo);
  EXPECT_EQ(clean.verdict, Verdict::kEquivalent) << clean.detail;
  EXPECT_EQ(dirty.verdict, Verdict::kMismatch) << dirty.detail;
}

}  // namespace
}  // namespace mcrt

#include "verify/ternary_bmc.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "mcretime/mc_retime.h"
#include "tech/decompose.h"
#include "transform/decompose_controls.h"
#include "transform/sweep.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

using Verdict = TernaryBmcResult::Verdict;

TernaryBmcOptions shallow() {
  TernaryBmcOptions opt;
  opt.depth = 5;
  return opt;
}

TEST(TernaryBmcTest, IdenticalUnresettableCircuitsAgree) {
  // Unlike the binary reachability checker, dual-rail BMC handles the
  // all-X start exactly: a circuit is trivially equivalent to itself even
  // without resets.
  const Netlist n = testing::fig1_circuit();
  const auto result = check_ternary_bmc(n, n, shallow());
  EXPECT_EQ(result.verdict, Verdict::kEquivalentUpToDepth) << result.detail;
}

TEST(TernaryBmcTest, DetectsCombinationalChange) {
  Netlist a;
  {
    const NetId x = a.add_input("x");
    const NetId y = a.add_input("y");
    a.add_output("o", a.add_lut(TruthTable::and_n(2), {x, y}));
  }
  Netlist b;
  {
    const NetId x = b.add_input("x");
    const NetId y = b.add_input("y");
    b.add_output("o", b.add_lut(TruthTable::or_n(2), {x, y}));
  }
  const auto result = check_ternary_bmc(a, b, shallow());
  EXPECT_EQ(result.verdict, Verdict::kMismatch);
  EXPECT_EQ(result.mismatch_cycle, 0u);
}

TEST(TernaryBmcTest, DetectsWrongResetValue) {
  auto build = [](ResetVal v) {
    Netlist n;
    const NetId clk = n.add_input("clk");
    const NetId rst = n.add_input("rst");
    const NetId d = n.add_input("d");
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.async_ctrl = rst;
    ff.async_val = v;
    n.add_output("o", n.add_register(std::move(ff)));
    return n;
  };
  const auto result =
      check_ternary_bmc(build(ResetVal::kZero), build(ResetVal::kOne),
                        shallow());
  EXPECT_EQ(result.verdict, Verdict::kMismatch);
}

TEST(TernaryBmcTest, XRefinementIsAccepted) {
  // The transformed circuit may be MORE defined than the original: a '-'
  // reset value refined to a concrete 0 (exactly what rebuild_netlist
  // materializes); the contract only constrains defined outputs.
  auto build = [](ResetVal v) {
    Netlist n;
    const NetId clk = n.add_input("clk");
    const NetId rst = n.add_input("rst");
    const NetId d = n.add_input("d");
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.async_ctrl = rst;
    ff.async_val = v;
    n.add_output("o", n.add_register(std::move(ff)));
    return n;
  };
  const auto refine = check_ternary_bmc(build(ResetVal::kDontCare),
                                        build(ResetVal::kZero), shallow());
  EXPECT_EQ(refine.verdict, Verdict::kEquivalentUpToDepth) << refine.detail;
  // The reverse direction loses definedness: must be a mismatch.
  const auto coarsen = check_ternary_bmc(build(ResetVal::kZero),
                                         build(ResetVal::kDontCare),
                                         shallow());
  EXPECT_EQ(coarsen.verdict, Verdict::kMismatch);
}

TEST(TernaryBmcTest, XRefinementOkModeAcceptsLostDefinedness) {
  // x_refinement_ok inverts the tolerance: the transformed circuit may be
  // LESS defined than the original (forward-moved EN registers start X
  // where the original computed a value); only two *defined* outputs that
  // disagree remain a mismatch.
  auto build = [](ResetVal v) {
    Netlist n;
    const NetId clk = n.add_input("clk");
    const NetId rst = n.add_input("rst");
    const NetId d = n.add_input("d");
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.async_ctrl = rst;
    ff.async_val = v;
    n.add_output("o", n.add_register(std::move(ff)));
    return n;
  };
  TernaryBmcOptions relaxed = shallow();
  relaxed.x_refinement_ok = true;
  // Strict mode rejects kZero -> kDontCare (see XRefinementIsAccepted);
  // relaxed mode accepts it.
  const auto coarsen = check_ternary_bmc(build(ResetVal::kZero),
                                         build(ResetVal::kDontCare), relaxed);
  EXPECT_EQ(coarsen.verdict, Verdict::kEquivalentUpToDepth) << coarsen.detail;
  // A genuine polarity flip stays a mismatch even in relaxed mode.
  const auto flipped = check_ternary_bmc(build(ResetVal::kZero),
                                         build(ResetVal::kOne), relaxed);
  EXPECT_EQ(flipped.verdict, Verdict::kMismatch);
}

TEST(TernaryBmcTest, BddNodeBudgetReportsResourceLimit) {
  const Netlist n = testing::fig1_circuit();
  TernaryBmcOptions opt = shallow();
  opt.max_bdd_nodes = 4;  // absurdly tight: trips on the first image
  const auto result = check_ternary_bmc(n, n, opt);
  EXPECT_EQ(result.verdict, Verdict::kResourceLimit);
  EXPECT_FALSE(result.detail.empty());
}

TEST(TernaryBmcTest, CancelledTokenUnwinds) {
  const Netlist n = testing::fig1_circuit();
  CancelToken cancel;
  cancel.request_cancel();
  TernaryBmcOptions opt = shallow();
  opt.cancel = &cancel;
  EXPECT_THROW(check_ternary_bmc(n, n, opt), CancelledError);
}

TEST(TernaryBmcTest, VarBudgetRespected) {
  const Netlist n = testing::fig1_circuit();
  TernaryBmcOptions opt;
  opt.depth = 100;
  opt.max_input_vars = 10;
  const auto result = check_ternary_bmc(n, n, opt);
  EXPECT_EQ(result.verdict, Verdict::kUnsupported);
}

TEST(TernaryBmcTest, DecompositionEquivalentExactly) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomCircuitOptions opt;
    opt.gates = 12;
    opt.registers = 4;
    opt.inputs = 3;
    opt.outputs = 2;
    const Netlist n = sweep(random_sequential_circuit(seed, opt), nullptr);
    const Netlist d = decompose_to_binary(n);
    // Note: gate-level X pessimism means the decomposed circuit can be
    // LESS defined than the original on X inputs... but PIs here are
    // binary (dual-rail of a fresh variable), and register state starts X
    // in both. Decomposition preserves gate boundaries' functions, yet the
    // decomposed network may produce X where the LUT resolved - so only
    // the refinement direction (d as original) is guaranteed:
    const auto result = check_ternary_bmc(d, n, shallow());
    EXPECT_EQ(result.verdict, Verdict::kEquivalentUpToDepth)
        << "seed " << seed << ": " << result.detail;
  }
}

TEST(TernaryBmcTest, McRetimingHonoursTheContract) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomCircuitOptions opt;
    opt.gates = 14;
    opt.registers = 4;
    opt.inputs = 3;
    opt.outputs = 2;
    opt.control_signatures = 2;
    Netlist n = sweep(random_sequential_circuit(seed, opt), nullptr);
    for (std::size_t i = 0; i < n.node_count(); ++i) {
      if (n.nodes()[i].kind == NodeKind::kLut) {
        n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
      }
    }
    const auto retimed = mc_retime(n, {});
    ASSERT_TRUE(retimed.success) << "seed " << seed;
    const auto result = check_ternary_bmc(n, retimed.netlist, shallow());
    EXPECT_EQ(result.verdict, Verdict::kEquivalentUpToDepth)
        << "seed " << seed << ": " << result.detail;
  }
}

}  // namespace
}  // namespace mcrt

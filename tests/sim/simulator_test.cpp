#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

/// A single register with all controls, for semantic tests.
struct RegRig {
  Netlist netlist;
  NetId clk, en, sr, ar, d;

  explicit RegRig(bool with_en, bool with_sync, bool with_async,
                  ResetVal s = ResetVal::kOne, ResetVal a = ResetVal::kZero) {
    clk = netlist.add_input("clk");
    d = netlist.add_input("d");
    Register ff;
    ff.d = d;
    ff.clk = clk;
    if (with_en) {
      en = netlist.add_input("en");
      ff.en = en;
    }
    if (with_sync) {
      sr = netlist.add_input("sr");
      ff.sync_ctrl = sr;
      ff.sync_val = s;
    }
    if (with_async) {
      ar = netlist.add_input("ar");
      ff.async_ctrl = ar;
      ff.async_val = a;
    }
    const NetId q = netlist.add_register(std::move(ff));
    netlist.add_output("q", q);
  }
};

TEST(SimulatorTest, PlainRegisterDelaysByOneCycle) {
  RegRig rig(false, false, false);
  Simulator sim(rig.netlist);
  sim.set_input(rig.d, Trit::kOne);
  EXPECT_EQ(sim.step()[0], Trit::kUnknown);  // initial state unknown
  sim.set_input(rig.d, Trit::kZero);
  EXPECT_EQ(sim.step()[0], Trit::kOne);  // captured last cycle
  EXPECT_EQ(sim.step()[0], Trit::kZero);
}

TEST(SimulatorTest, EnableHoldsValue) {
  RegRig rig(true, false, false);
  Simulator sim(rig.netlist);
  sim.set_input(rig.d, Trit::kOne);
  sim.set_input(rig.en, Trit::kOne);
  sim.step();  // loads 1
  sim.set_input(rig.d, Trit::kZero);
  sim.set_input(rig.en, Trit::kZero);
  EXPECT_EQ(sim.step()[0], Trit::kOne);  // holds
  EXPECT_EQ(sim.step()[0], Trit::kOne);  // still holds
  sim.set_input(rig.en, Trit::kOne);
  sim.step();
  EXPECT_EQ(sim.step()[0], Trit::kZero);  // loaded after enable
}

TEST(SimulatorTest, SyncResetLoadsValueAtEdge) {
  RegRig rig(false, true, false, ResetVal::kOne);
  Simulator sim(rig.netlist);
  sim.set_input(rig.d, Trit::kZero);
  sim.set_input(rig.sr, Trit::kOne);
  EXPECT_EQ(sim.step()[0], Trit::kUnknown);  // before the edge: unknown
  sim.set_input(rig.sr, Trit::kZero);
  EXPECT_EQ(sim.step()[0], Trit::kOne);  // sync set took effect at edge
  EXPECT_EQ(sim.step()[0], Trit::kZero);
}

TEST(SimulatorTest, SyncBeatsEnable) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId en = n.add_input("en");
  const NetId sr = n.add_input("sr");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = en;
  ff.sync_ctrl = sr;
  ff.sync_val = ResetVal::kOne;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q", q);
  Simulator sim(n);
  sim.set_input(d, Trit::kZero);
  sim.set_input(en, Trit::kZero);  // enable off...
  sim.set_input(sr, Trit::kOne);   // ...but sync set asserted
  sim.step();
  sim.set_input(sr, Trit::kZero);
  EXPECT_EQ(sim.step()[0], Trit::kOne);
  (void)clk;
}

TEST(SimulatorTest, AsyncOverridesImmediately) {
  RegRig rig(false, false, true, ResetVal::kDontCare, ResetVal::kZero);
  Simulator sim(rig.netlist);
  sim.set_input(rig.d, Trit::kOne);
  sim.set_input(rig.ar, Trit::kOne);
  // Async clear is combinational: visible before any clock edge.
  EXPECT_EQ(sim.step()[0], Trit::kZero);
  // Still asserted at the edge: stays 0.
  EXPECT_EQ(sim.step()[0], Trit::kZero);
  sim.set_input(rig.ar, Trit::kZero);
  sim.step();  // now loads d
  EXPECT_EQ(sim.step()[0], Trit::kOne);
}

TEST(SimulatorTest, AsyncBeatsSync) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId sr = n.add_input("sr");
  const NetId ar = n.add_input("ar");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.sync_ctrl = sr;
  ff.sync_val = ResetVal::kOne;
  ff.async_ctrl = ar;
  ff.async_val = ResetVal::kZero;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q", q);
  Simulator sim(n);
  sim.set_input(d, Trit::kOne);
  sim.set_input(sr, Trit::kOne);
  sim.set_input(ar, Trit::kOne);
  EXPECT_EQ(sim.step()[0], Trit::kZero);
  EXPECT_EQ(sim.step()[0], Trit::kZero);
  (void)clk;
}

TEST(SimulatorTest, UnknownEnableMergesStates) {
  RegRig rig(true, false, false);
  Simulator sim(rig.netlist);
  // Load a known 1 first.
  sim.set_input(rig.d, Trit::kOne);
  sim.set_input(rig.en, Trit::kOne);
  sim.step();
  // Enable unknown, d = 1 (same as state): output stays 1.
  sim.set_input(rig.en, Trit::kUnknown);
  EXPECT_EQ(sim.step()[0], Trit::kOne);
  EXPECT_EQ(sim.step()[0], Trit::kOne);
  // Enable unknown, d = 0 (differs): becomes X after the edge.
  sim.set_input(rig.d, Trit::kZero);
  sim.step();
  EXPECT_EQ(sim.step()[0], Trit::kUnknown);
}

TEST(SimulatorTest, CombinationalLogicSettles) {
  const Netlist n = testing::fig1_circuit();
  Simulator sim(n);
  const NetId en = n.node(n.inputs()[1]).output;
  const NetId a = n.node(n.inputs()[2]).output;
  const NetId b = n.node(n.inputs()[3]).output;
  sim.set_input(en, Trit::kOne);
  sim.set_input(a, Trit::kOne);
  sim.set_input(b, Trit::kOne);
  sim.step();  // registers capture 1,1
  EXPECT_EQ(sim.step()[0], Trit::kOne);  // AND of registered values
}

TEST(SimulatorTest, SequentialFeedbackCounter) {
  // 1-bit toggler: q' = NOT q, with async clear for a defined start.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId d = n.add_net("d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = rst;
  ff.async_val = ResetVal::kZero;
  const NetId q = n.add_register(std::move(ff));
  n.add_lut_driving(d, TruthTable::inverter(), {q});
  n.add_output("q", q);
  Simulator sim(n);
  sim.set_input(rst, Trit::kOne);
  EXPECT_EQ(sim.step()[0], Trit::kZero);
  sim.set_input(rst, Trit::kZero);
  EXPECT_EQ(sim.step()[0], Trit::kZero);
  EXPECT_EQ(sim.step()[0], Trit::kOne);
  EXPECT_EQ(sim.step()[0], Trit::kZero);
}

TEST(SimulatorTest, ThrowsOnCombinationalCycle) {
  Netlist n;
  const NetId loop = n.add_net("loop");
  n.add_lut_driving(loop, TruthTable::buffer(), {loop});
  n.add_output("o", loop);
  EXPECT_THROW(Simulator sim(n), std::invalid_argument);
}

}  // namespace
}  // namespace mcrt

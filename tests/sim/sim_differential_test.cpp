// Three-way simulator differential on the full register-class zoo:
//  - WordSimulator (compact core) vs ParallelSimulator (seed word engine):
//    bit-identical TritWords on every net, every cycle;
//  - WordSimulator vs the scalar Simulator: lane-exact agreement;
//  - equivalence checker's word engine vs its scalar engine: same verdict,
//    same counterexample, same compared-output count.
// The corpus leg sweeps a 64-circuit randomized suite so EN, sync and async
// set/clear (including don't-care resets) are all exercised.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "sim/parallel_simulator.h"
#include "sim/simulator.h"
#include "sim/word_simulator.h"
#include "workload/generator.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

std::vector<NetId> input_nets(const Netlist& n) {
  std::vector<NetId> nets;
  for (const NodeId id : n.inputs()) nets.push_back(n.node(id).output);
  return nets;
}

// Drives all three engines with the same mixed stimulus (defined lanes plus
// deliberate X lanes) and asserts word==parallel exactly and scalar==lane.
void run_differential(const Netlist& n, std::uint64_t seed,
                      std::size_t cycles) {
  const std::vector<NetId> inputs = input_nets(n);
  std::mt19937_64 rng(seed);

  ParallelSimulator parallel(n);
  WordSimulator word(n);
  parallel.reset_to_unknown();
  word.reset_to_unknown();

  std::vector<std::vector<TritWord>> stimulus(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    stimulus[c].resize(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      // Lanes get 0/1/X: ones, zeros and a hole where neither bit is set.
      const std::uint64_t ones = rng();
      const std::uint64_t zeros = ~ones & rng();
      stimulus[c][i] = TritWord{ones, zeros};
    }
  }

  std::vector<std::vector<TritWord>> word_out(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      parallel.set_input(inputs[i], stimulus[c][i]);
      word.set_input(inputs[i], stimulus[c][i]);
    }
    const std::vector<TritWord> p = parallel.step();
    word_out[c] = word.step();
    ASSERT_EQ(word_out[c], p) << "cycle " << c;
    // Register words must agree too (the next-cycle state is the real
    // fixed-point payload).
    for (std::uint32_t r = 0; r < n.register_count(); ++r) {
      ASSERT_EQ(word.register_state(RegId{r}), parallel.register_state(RegId{r}))
          << "cycle " << c << " reg " << r;
    }
  }

  // Scalar agreement on a spread of lanes (all 64 would be slow on the
  // corpus leg; these include both word boundaries).
  for (const unsigned lane : {0u, 1u, 17u, 40u, 63u}) {
    Simulator scalar(n);
    scalar.reset_to_unknown();
    for (std::size_t c = 0; c < cycles; ++c) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        scalar.set_input(inputs[i], stimulus[c][i].lane(lane));
      }
      const std::vector<Trit> out = scalar.step();
      ASSERT_EQ(out.size(), word_out[c].size());
      for (std::size_t o = 0; o < out.size(); ++o) {
        ASSERT_EQ(out[o], word_out[c][o].lane(lane))
            << "lane " << lane << " cycle " << c << " output " << o;
      }
    }
  }
}

// One register per class: EN, sync set, sync clear, async set, async clear,
// plain, and a don't-care sync reset.
Netlist register_class_zoo() {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  const NetId sc = n.add_input("sc");
  const NetId ac = n.add_input("ac");
  const NetId d = n.add_input("d");
  NetId chain = d;
  const auto add = [&](const char* name, auto configure) {
    Register r;
    r.d = chain;
    r.clk = clk;
    r.name = name;
    configure(r);
    chain = n.add_register(std::move(r));
  };
  add("plain", [](Register&) {});
  add("with_en", [&](Register& r) { r.en = en; });
  add("sync_set", [&](Register& r) {
    r.sync_ctrl = sc;
    r.sync_val = ResetVal::kOne;
  });
  add("sync_clear", [&](Register& r) {
    r.sync_ctrl = sc;
    r.sync_val = ResetVal::kZero;
  });
  add("sync_dontcare", [&](Register& r) {
    r.sync_ctrl = sc;
    r.sync_val = ResetVal::kDontCare;
  });
  add("async_set", [&](Register& r) {
    r.async_ctrl = ac;
    r.async_val = ResetVal::kOne;
  });
  add("async_clear_en", [&](Register& r) {
    r.async_ctrl = ac;
    r.async_val = ResetVal::kZero;
    r.en = en;
  });
  const NetId g = n.add_lut(TruthTable::xor_n(2), {chain, d}, "g");
  n.add_output("o", g);
  return n;
}

TEST(SimDifferentialTest, RegisterClassZoo) {
  run_differential(register_class_zoo(), 11, 48);
}

TEST(SimDifferentialTest, HandCircuits) {
  run_differential(testing::fig1_circuit(), 2, 32);
  run_differential(testing::fig5_circuit(), 3, 32);
  run_differential(testing::chain_circuit(6, 3), 4, 32);
}

TEST(SimDifferentialTest, RandomSequentialCircuits) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCircuitOptions opt;
    opt.use_sync = seed % 2 == 0;
    run_differential(random_sequential_circuit(seed, opt), seed * 31 + 7, 24);
  }
}

TEST(SimDifferentialTest, SixtyFourCircuitCorpus) {
  const std::vector<CircuitProfile> corpus = random_suite(64, 2024);
  ASSERT_EQ(corpus.size(), 64u);
  std::uint64_t salt = 1;
  for (const CircuitProfile& profile : corpus) {
    run_differential(generate_circuit(profile), salt++, 8);
  }
}

TEST(SimDifferentialTest, EquivalenceEnginesAgreeOnEquivalentPair) {
  const Netlist a = testing::chain_circuit(5, 2);
  const Netlist b = testing::chain_circuit(5, 2);
  EquivalenceOptions word_opt;
  word_opt.engine = EquivalenceOptions::Engine::kWord;
  word_opt.runs = 6;
  word_opt.cycles = 40;
  EquivalenceOptions scalar_opt = word_opt;
  scalar_opt.engine = EquivalenceOptions::Engine::kScalar;

  const EquivalenceResult word = check_sequential_equivalence(a, b, word_opt);
  const EquivalenceResult scalar =
      check_sequential_equivalence(a, b, scalar_opt);
  EXPECT_TRUE(word.equivalent);
  EXPECT_EQ(word.equivalent, scalar.equivalent);
  EXPECT_EQ(word.counterexample, scalar.counterexample);
  EXPECT_EQ(word.compared_defined_outputs, scalar.compared_defined_outputs);
}

TEST(SimDifferentialTest, EquivalenceEnginesAgreeOnMismatch) {
  const Netlist a = testing::fig1_circuit();
  // Same interface, different gate: AND -> OR. Must be caught identically.
  Netlist b = testing::fig1_circuit();
  for (std::uint32_t v = 0; v < b.node_count(); ++v) {
    if (b.node(NodeId{v}).kind == NodeKind::kLut) {
      b.node(NodeId{v}).function = TruthTable::or_n(2);
    }
  }
  EquivalenceOptions word_opt;
  word_opt.engine = EquivalenceOptions::Engine::kWord;
  word_opt.init_registers_by_name = true;
  word_opt.runs = 4;
  word_opt.cycles = 24;
  EquivalenceOptions scalar_opt = word_opt;
  scalar_opt.engine = EquivalenceOptions::Engine::kScalar;

  const EquivalenceResult word = check_sequential_equivalence(a, b, word_opt);
  const EquivalenceResult scalar =
      check_sequential_equivalence(a, b, scalar_opt);
  EXPECT_FALSE(word.equivalent);
  EXPECT_EQ(word.equivalent, scalar.equivalent);
  EXPECT_EQ(word.counterexample, scalar.counterexample);
  EXPECT_EQ(word.compared_defined_outputs, scalar.compared_defined_outputs);
}

TEST(SimDifferentialTest, EquivalenceEnginesAgreeOnWorkloads) {
  for (const CircuitProfile& profile : random_suite(4, 321)) {
    const Netlist n = generate_circuit(profile);
    EquivalenceOptions word_opt;
    word_opt.engine = EquivalenceOptions::Engine::kWord;
    word_opt.runs = 3;
    word_opt.cycles = 16;
    EquivalenceOptions scalar_opt = word_opt;
    scalar_opt.engine = EquivalenceOptions::Engine::kScalar;
    const EquivalenceResult word =
        check_sequential_equivalence(n, n, word_opt);
    const EquivalenceResult scalar =
        check_sequential_equivalence(n, n, scalar_opt);
    EXPECT_TRUE(word.equivalent) << profile.name;
    EXPECT_EQ(word.compared_defined_outputs, scalar.compared_defined_outputs)
        << profile.name;
    EXPECT_EQ(word.counterexample, scalar.counterexample) << profile.name;
  }
}

}  // namespace
}  // namespace mcrt

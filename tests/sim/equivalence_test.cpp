#include "sim/equivalence.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(EquivalenceTest, IdenticalCircuitsEquivalent) {
  const Netlist n = testing::fig1_circuit();
  const auto result = check_sequential_equivalence(n, n, {});
  EXPECT_TRUE(result.equivalent);
  EXPECT_GT(result.compared_defined_outputs, 0u);
}

TEST(EquivalenceTest, DetectsInvertedOutput) {
  const Netlist a = testing::chain_circuit(2, 1);
  // Same circuit but with an extra inverter before the output.
  Netlist b = testing::chain_circuit(3, 1);
  const auto result = check_sequential_equivalence(a, b, {});
  EXPECT_FALSE(result.equivalent);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(EquivalenceTest, DetectsMissingOutput) {
  const Netlist a = testing::fig1_circuit();
  Netlist b;
  b.add_output("different", b.add_input("x"));
  const auto result = check_sequential_equivalence(a, b, {});
  EXPECT_FALSE(result.equivalent);
}

TEST(EquivalenceTest, DetectsLatencyChange) {
  // A register more means outputs lag: not equivalent under the strict
  // cycle-accurate check used for pinned-interface retiming.
  const Netlist a = testing::chain_circuit(2, 1);
  const Netlist b = testing::chain_circuit(2, 2);
  const auto result = check_sequential_equivalence(a, b, {});
  EXPECT_FALSE(result.equivalent);
}

TEST(EquivalenceTest, RandomCircuitSelfEquivalence) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    EquivalenceOptions opt;
    opt.runs = 2;
    opt.cycles = 32;
    const auto result = check_sequential_equivalence(n, n, opt);
    EXPECT_TRUE(result.equivalent) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mcrt

#include "sim/equivalence.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(EquivalenceTest, IdenticalCircuitsEquivalent) {
  const Netlist n = testing::fig1_circuit();
  const auto result = check_sequential_equivalence(n, n, {});
  EXPECT_TRUE(result.equivalent);
  EXPECT_GT(result.compared_defined_outputs, 0u);
}

TEST(EquivalenceTest, DetectsInvertedOutput) {
  const Netlist a = testing::chain_circuit(2, 1);
  // Same circuit but with an extra inverter before the output.
  Netlist b = testing::chain_circuit(3, 1);
  const auto result = check_sequential_equivalence(a, b, {});
  EXPECT_FALSE(result.equivalent);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(EquivalenceTest, DetectsMissingOutput) {
  const Netlist a = testing::fig1_circuit();
  Netlist b;
  b.add_output("different", b.add_input("x"));
  const auto result = check_sequential_equivalence(a, b, {});
  EXPECT_FALSE(result.equivalent);
}

TEST(EquivalenceTest, DetectsLatencyChange) {
  // A register more means outputs lag: not equivalent under the strict
  // cycle-accurate check used for pinned-interface retiming.
  const Netlist a = testing::chain_circuit(2, 1);
  const Netlist b = testing::chain_circuit(2, 2);
  const auto result = check_sequential_equivalence(a, b, {});
  EXPECT_FALSE(result.equivalent);
}

TEST(EquivalenceTest, XRefinementOkToleratesPessimismOnly) {
  // b = a with one extra un-initialized register: b's output is X while
  // a's is defined. Strict mode flags it; x_refinement_ok treats it as
  // tolerable pessimism — but a defined wrong value must still fail.
  const Netlist a = testing::chain_circuit(2, 1);
  const Netlist lagging = testing::chain_circuit(2, 2);
  EquivalenceOptions opt;
  opt.warmup = 0;  // compare from cycle 0, where the extra register is X
  opt.cycles = 4;
  EXPECT_FALSE(check_sequential_equivalence(a, lagging, opt).equivalent);
  opt.x_refinement_ok = true;
  // Cycle 0..: lagging's output is X until its pipeline fills, then both
  // are defined but time-shifted — so the defined cycles still disagree.
  // Restrict to the X prefix to isolate the tolerated case.
  opt.cycles = 2;
  EXPECT_TRUE(check_sequential_equivalence(a, lagging, opt).equivalent);
  // Defined-vs-defined disagreement is never tolerated.
  const Netlist inverted = testing::chain_circuit(3, 1);
  EXPECT_FALSE(check_sequential_equivalence(a, inverted, {}).equivalent);
  EquivalenceOptions tolerant;
  tolerant.x_refinement_ok = true;
  EXPECT_FALSE(check_sequential_equivalence(a, inverted, tolerant).equivalent);
}

TEST(EquivalenceTest, RandomCircuitSelfEquivalence) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    EquivalenceOptions opt;
    opt.runs = 2;
    opt.cycles = 32;
    const auto result = check_sequential_equivalence(n, n, opt);
    EXPECT_TRUE(result.equivalent) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mcrt

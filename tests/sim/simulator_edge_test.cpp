// Edge-case simulator behaviours: async feedback loops, X merging at
// controls, settle() without clocking, explicit reset-input selection in
// the equivalence oracle.
#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "sim/simulator.h"

namespace mcrt {
namespace {

TEST(SimulatorEdgeTest, SettleWithoutClockIsCombinational) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g = n.add_lut(TruthTable::xor_n(2), {a, b});
  n.add_output("o", g);
  Simulator sim(n);
  sim.set_input(a, Trit::kOne);
  sim.set_input(b, Trit::kZero);
  sim.settle();
  EXPECT_EQ(sim.net_value(g), Trit::kOne);
  sim.set_input(b, Trit::kOne);
  sim.settle();
  EXPECT_EQ(sim.net_value(g), Trit::kZero);
}

TEST(SimulatorEdgeTest, AsyncControlFeedbackSettles) {
  // A register whose async clear depends on its own output (self-clearing
  // pulse): settle() must reach a fixed point, not hang.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId q_net = n.add_net("q");
  // async = q itself: when q becomes 1 it clears itself to 0.
  Register ff;
  ff.d = d;
  ff.q = q_net;
  ff.clk = clk;
  ff.async_ctrl = q_net;
  ff.async_val = ResetVal::kZero;
  n.add_register(std::move(ff));
  n.add_output("o", q_net);
  Simulator sim(n);
  sim.set_input(d, Trit::kOne);
  // Must terminate; the oscillating state degrades to X or settles at 0.
  const auto out = sim.step();
  EXPECT_TRUE(out[0] == Trit::kZero || out[0] == Trit::kUnknown);
}

TEST(SimulatorEdgeTest, UnknownSyncControlMerges) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId sr = n.add_input("sr");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.sync_ctrl = sr;
  ff.sync_val = ResetVal::kOne;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("o", q);
  Simulator sim(n);
  // d = 1 and sync value 1 agree: X on the control still yields 1.
  sim.set_input(d, Trit::kOne);
  sim.set_input(sr, Trit::kUnknown);
  sim.step();
  EXPECT_EQ(sim.step()[0], Trit::kOne);
  // d = 0 disagrees with sync value 1: X control gives X.
  sim.set_input(d, Trit::kZero);
  sim.step();
  EXPECT_EQ(sim.step()[0], Trit::kUnknown);
}

TEST(SimulatorEdgeTest, RegisterStateInjection) {
  const Netlist n = testing::chain_circuit(0, 1);
  Simulator sim(n);
  sim.set_register_state(RegId{0}, Trit::kOne);
  EXPECT_EQ(sim.register_state(RegId{0}), Trit::kOne);
  sim.settle();
  EXPECT_EQ(sim.output_values()[0], Trit::kOne);
}

TEST(EquivalenceEdgeTest, ExplicitResetInputsRespected) {
  // A circuit whose reset is named oddly: the heuristic misses it, the
  // explicit list catches it.
  Netlist a;
  const NetId clk = a.add_input("clk");
  const NetId clear_in = a.add_input("zap");  // not rst-like
  const NetId d = a.add_input("d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = clear_in;
  ff.async_val = ResetVal::kZero;
  a.add_output("o", a.add_register(std::move(ff)));

  EquivalenceOptions opt;
  opt.reset_inputs = {"zap"};
  const auto eq = check_sequential_equivalence(a, a, opt);
  EXPECT_TRUE(eq.equivalent);
  EXPECT_GT(eq.compared_defined_outputs, 0u);
}

TEST(EquivalenceEdgeTest, WarmupSkipsEarlyCycles) {
  // Two circuits differing only in unresettable initial latency would
  // mismatch at cycle 0; with warm-up and flushing logic they compare.
  const Netlist n = testing::chain_circuit(2, 1);
  EquivalenceOptions opt;
  opt.warmup = 4;
  const auto eq = check_sequential_equivalence(n, n, opt);
  EXPECT_TRUE(eq.equivalent);
}

}  // namespace
}  // namespace mcrt

#include "sim/parallel_simulator.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "base/rng.h"
#include "sim/simulator.h"
#include "transform/sweep.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(TritWordTest, LaneAccess) {
  TritWord w;
  w.set_lane(0, Trit::kOne);
  w.set_lane(1, Trit::kZero);
  w.set_lane(2, Trit::kUnknown);
  EXPECT_EQ(w.lane(0), Trit::kOne);
  EXPECT_EQ(w.lane(1), Trit::kZero);
  EXPECT_EQ(w.lane(2), Trit::kUnknown);
  w.set_lane(0, Trit::kZero);
  EXPECT_EQ(w.lane(0), Trit::kZero);
  EXPECT_EQ((w.ones & w.zeros), 0u);
}

TEST(TritWordTest, EvalMatchesScalarTernary) {
  Rng rng(3);
  const TruthTable tables[] = {
      TruthTable::and_n(3),  TruthTable::xor_n(2), TruthTable::mux21(),
      TruthTable::nor_n(4),  TruthTable::inverter(),
      TruthTable(4, rng.next()), TruthTable(5, rng.next()),
  };
  for (const TruthTable& f : tables) {
    TritWord pins[6];
    Trit scalar[6][64];
    for (std::uint32_t i = 0; i < f.input_count(); ++i) {
      for (unsigned lane = 0; lane < 64; ++lane) {
        const Trit t = static_cast<Trit>(rng.below(3));
        pins[i].set_lane(lane, t);
        scalar[i][lane] = t;
      }
    }
    const TritWord out = tritword_eval(f, pins);
    for (unsigned lane = 0; lane < 64; ++lane) {
      Trit lane_pins[6];
      for (std::uint32_t i = 0; i < f.input_count(); ++i) {
        lane_pins[i] = scalar[i][lane];
      }
      EXPECT_EQ(out.lane(lane), f.eval_ternary(lane_pins))
          << f.to_string() << " lane " << lane;
    }
  }
}

TEST(TritWordTest, MergeAndIteMatchScalar) {
  const Trit values[] = {Trit::kZero, Trit::kOne, Trit::kUnknown};
  for (const Trit a : values) {
    for (const Trit b : values) {
      TritWord wa = TritWord::all(a);
      TritWord wb = TritWord::all(b);
      EXPECT_EQ(tritword_merge(wa, wb).lane(0), trit_merge(a, b));
      for (const Trit c : values) {
        const TritWord out = tritword_ite(TritWord::all(c), wa, wb);
        Trit expected;
        switch (c) {
          case Trit::kOne: expected = a; break;
          case Trit::kZero: expected = b; break;
          default: expected = trit_merge(a, b);
        }
        EXPECT_EQ(out.lane(0), expected)
            << trit_char(c) << "?" << trit_char(a) << ":" << trit_char(b);
      }
    }
  }
}

TEST(ParallelSimulatorTest, MatchesScalarSimulatorLaneByLane) {
  // Drive the scalar simulator and lane 0..7 of the parallel one with the
  // same stimulus across several cycles; every net value must agree.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist n = sweep(random_sequential_circuit(seed), nullptr);
    std::vector<Simulator> scalar;
    constexpr unsigned kLanes = 8;
    for (unsigned lane = 0; lane < kLanes; ++lane) scalar.emplace_back(n);
    ParallelSimulator parallel(n);

    Rng rng(seed * 77);
    for (int cycle = 0; cycle < 16; ++cycle) {
      for (const NodeId in : n.inputs()) {
        const NetId net = n.node(in).output;
        TritWord word;
        for (unsigned lane = 0; lane < kLanes; ++lane) {
          const Trit t = static_cast<Trit>(rng.below(3));
          scalar[lane].set_input(net, t);
          word.set_lane(lane, t);
        }
        parallel.set_input(net, word);
      }
      std::vector<std::vector<Trit>> scalar_out;
      for (unsigned lane = 0; lane < kLanes; ++lane) {
        scalar_out.push_back(scalar[lane].step());
      }
      const auto parallel_out = parallel.step();
      for (std::size_t o = 0; o < parallel_out.size(); ++o) {
        for (unsigned lane = 0; lane < kLanes; ++lane) {
          ASSERT_EQ(parallel_out[o].lane(lane), scalar_out[lane][o])
              << "seed " << seed << " cycle " << cycle << " output " << o
              << " lane " << lane;
        }
      }
    }
  }
}

TEST(ParallelSimulatorTest, RegisterSemantics) {
  // One enabled register, different stimulus per lane.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId en = n.add_input("en");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = en;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("o", q);
  ParallelSimulator sim(n);
  TritWord d_word;
  TritWord en_word;
  d_word.set_lane(0, Trit::kOne);   // lane 0: loads 1
  en_word.set_lane(0, Trit::kOne);
  d_word.set_lane(1, Trit::kOne);   // lane 1: enable off, holds X
  en_word.set_lane(1, Trit::kZero);
  sim.set_input(d, d_word);
  sim.set_input(en, en_word);
  sim.step();
  const auto out = sim.step();
  EXPECT_EQ(out[0].lane(0), Trit::kOne);
  EXPECT_EQ(out[0].lane(1), Trit::kUnknown);
}

TEST(ParallelSimulatorTest, StateInjection) {
  const Netlist n = testing::chain_circuit(0, 1);
  ParallelSimulator sim(n);
  TritWord w;
  w.set_lane(5, Trit::kOne);
  w.set_lane(6, Trit::kZero);
  sim.set_register_state(RegId{0}, w);
  sim.settle();
  const auto out = sim.output_values();
  EXPECT_EQ(out[0].lane(5), Trit::kOne);
  EXPECT_EQ(out[0].lane(6), Trit::kZero);
  EXPECT_EQ(out[0].lane(7), Trit::kUnknown);
}

}  // namespace
}  // namespace mcrt

#include "sim/vcd.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(VcdTest, HeaderDeclaresTracedNets) {
  const Netlist n = testing::fig1_circuit();
  VcdTrace trace(n);
  Simulator sim(n);
  sim.settle();
  trace.sample(sim);
  std::ostringstream out;
  trace.write(out, "fig1");
  const std::string text = out.str();
  EXPECT_NE(text.find("$scope module fig1 $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find(" clk $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTest, RecordsValueChanges) {
  const Netlist n = testing::chain_circuit(1, 1);
  const NetId in = n.node(n.inputs()[1]).output;  // inputs: clk, in0
  VcdTrace trace(n, {in});
  Simulator sim(n);
  sim.set_input(in, Trit::kZero);
  sim.settle();
  trace.sample(sim);
  sim.set_input(in, Trit::kOne);
  sim.settle();
  trace.sample(sim);
  sim.settle();
  trace.sample(sim);  // unchanged: no dump entry expected
  std::ostringstream out;
  trace.write(out);
  const std::string text = out.str();
  // One variable -> id "!": expect 0! then 1! exactly once.
  EXPECT_NE(text.find("0!"), std::string::npos);
  EXPECT_EQ(text.find("1!"), text.rfind("1!"));
  EXPECT_EQ(trace.sample_count(), 3u);
}

TEST(VcdTest, UnknownDumpsAsX) {
  const Netlist n = testing::chain_circuit(0, 1);
  VcdTrace trace(n);
  Simulator sim(n);
  sim.settle();  // register state unknown
  trace.sample(sim);
  std::ostringstream out;
  trace.write(out);
  EXPECT_NE(out.str().find('x'), std::string::npos);
}

TEST(VcdTest, FileRoundTrip) {
  const Netlist n = testing::fig1_circuit();
  VcdTrace trace(n);
  Simulator sim(n);
  sim.settle();
  trace.sample(sim);
  const std::string path = ::testing::TempDir() + "/mcrt_trace.vcd";
  EXPECT_TRUE(trace.write_file(path));
}

}  // namespace
}  // namespace mcrt

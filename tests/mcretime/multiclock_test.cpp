// Multi-clock circuits: Definition 1 makes the clock part of the class
// tuple, so registers in different clock domains are never compatible and
// no mc-retiming step may mix them. These tests pin down the structural
// guarantees (the 3-valued simulator is single-clock, so behavioural
// checks don't apply here).
#include <gtest/gtest.h>

#include "mcretime/maximal_retiming.h"
#include "mcretime/mc_retime.h"
#include "mcretime/mcgraph.h"
#include "tech/sta.h"

namespace mcrt {
namespace {

/// Two pipelines in separate clock domains converging on one AND gate, a
/// register from each domain feeding it.
struct DualClockRig {
  Netlist n;
  NetId clk_a, clk_b;

  DualClockRig() {
    clk_a = n.add_input("clk_a");
    clk_b = n.add_input("clk_b");
    const NetId x = n.add_input("x");
    const NetId y = n.add_input("y");
    const NetId qa = reg(chain(x, 2, "a"), clk_a, "ffa");
    const NetId qb = reg(chain(y, 2, "b"), clk_b, "ffb");
    const NetId g = n.add_lut(TruthTable::and_n(2), {qa, qb}, "join");
    n.set_node_delay(NodeId{n.net(g).driver.index}, 10);
    n.add_output("o", g);
  }

  NetId chain(NetId net, int depth, const std::string& tag) {
    for (int i = 0; i < depth; ++i) {
      net = n.add_lut(TruthTable::inverter(), {net},
                      tag + "_g" + std::to_string(i));
      n.set_node_delay(NodeId{n.net(net).driver.index}, 10);
    }
    return net;
  }

  NetId reg(NetId d, NetId clk, const std::string& name) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.name = name;
    return n.add_register(std::move(ff));
  }
};

TEST(MultiClockTest, ClocksSeparateClasses) {
  DualClockRig rig;
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 2u);
  EXPECT_NE(classes.reg_class[0], classes.reg_class[1]);
}

TEST(MultiClockTest, MixedClockLayerCannotMove) {
  DualClockRig rig;
  const McGraph g = build_mc_graph(rig.n);
  // The join gate's fanin layer holds one register per domain: forward
  // moves across it are invalid.
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate &&
        rig.n.node(g.origin_node(vid)).name == "join") {
      EXPECT_FALSE(g.forward_step_class(vid));
    }
  }
}

TEST(MultiClockTest, BoundsKeepDomainsSeparate) {
  DualClockRig rig;
  const McGraph g = build_mc_graph(rig.n);
  const auto maximal = compute_mc_bounds(g);
  // The join gate can never move (its fanout edge to the PO has no
  // registers and its fanin layer is mixed-clock).
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate &&
        rig.n.node(g.origin_node(vid)).name == "join") {
      EXPECT_EQ(maximal.bounds.r_max[v], 0);
      EXPECT_EQ(maximal.bounds.r_min[v], 0);
    }
  }
}

TEST(MultiClockTest, RetimingPreservesClockDomains) {
  DualClockRig rig;
  const auto result = mc_retime(rig.n, {});
  ASSERT_TRUE(result.success) << result.error;
  // Same number of registers per domain before and after.
  auto count_domain = [](const Netlist& n, const std::string& clk_name) {
    std::size_t count = 0;
    for (const Register& ff : n.registers()) {
      if (n.net(ff.clk).name == clk_name) ++count;
    }
    return count;
  };
  EXPECT_EQ(count_domain(result.netlist, "clk_a"), 1u);
  EXPECT_EQ(count_domain(result.netlist, "clk_b"), 1u);
  // Registers moved backward into their own domain's chain: period drops
  // from 3 stacked inverters + AND (30+10) to a balanced split.
  EXPECT_LE(result.stats.period_after, result.stats.period_before);
}

TEST(TargetPeriodTest, RelaxedTargetSavesRegisters) {
  // A chain whose minimum period needs spread registers; a relaxed target
  // lets minarea keep fewer (or equal) registers.
  Netlist n;
  const NetId clk = n.add_input("clk");
  NetId net = n.add_input("x");
  for (int i = 0; i < 6; ++i) {
    net = n.add_lut(TruthTable::inverter(), {net});
    n.set_node_delay(NodeId{n.net(net).driver.index}, 10);
  }
  for (int i = 0; i < 2; ++i) {
    Register ff;
    ff.d = net;
    ff.clk = clk;
    net = n.add_register(std::move(ff));
  }
  n.add_output("o", net);

  McRetimeOptions tight;  // minimize: period 20
  const auto r_tight = mc_retime(n, tight);
  ASSERT_TRUE(r_tight.success);
  EXPECT_EQ(r_tight.stats.period_after, 20);

  McRetimeOptions relaxed;
  relaxed.target_period = 30;
  const auto r_relaxed = mc_retime(n, relaxed);
  ASSERT_TRUE(r_relaxed.success);
  EXPECT_EQ(r_relaxed.stats.period_after, 30);
  EXPECT_LE(compute_period(r_relaxed.netlist), 30);
  EXPECT_LE(r_relaxed.stats.registers_after, r_tight.stats.registers_after);
}

TEST(TargetPeriodTest, InfeasibleTargetFallsBackToMinimum) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  NetId net = n.add_input("x");
  for (int i = 0; i < 4; ++i) {
    net = n.add_lut(TruthTable::inverter(), {net});
    n.set_node_delay(NodeId{n.net(net).driver.index}, 10);
  }
  Register ff;
  ff.d = net;
  ff.clk = clk;
  net = n.add_register(std::move(ff));
  n.add_output("o", net);

  McRetimeOptions options;
  options.target_period = 5;  // below a single LUT delay: impossible
  const auto result = mc_retime(n, options);
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.stats.period_after, 5);
}

}  // namespace
}  // namespace mcrt

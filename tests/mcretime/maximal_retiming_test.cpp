#include "mcretime/maximal_retiming.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

VertexId find_gate(const McGraph& g, const Netlist& n, const char* name) {
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate &&
        n.node(g.origin_node(vid)).name == name) {
      return vid;
    }
  }
  ADD_FAILURE() << "gate " << name << " not found";
  return {};
}

TEST(MaximalRetimingTest, ChainBounds) {
  // in -> g0 g1 g2 -> FF FF -> out: both registers can move backward across
  // g2, g1, g0 -> r_max(g0) = r_max(g1) = r_max(g2) = 2; nothing can move
  // forward (registers would cross the PO).
  const Netlist n = testing::chain_circuit(3, 2);
  const McGraph g = build_mc_graph(n);
  const auto result = compute_mc_bounds(g);
  for (const char* name : {"g0", "g1", "g2"}) {
    const VertexId v = find_gate(g, n, name);
    EXPECT_EQ(result.bounds.r_max[v.index()], 2) << name;
    EXPECT_EQ(result.bounds.r_min[v.index()], 0) << name;
  }
  EXPECT_EQ(result.bounds.possible_steps, 6u);
  EXPECT_FALSE(result.bounds.hit_cap);
}

TEST(MaximalRetimingTest, Fig1ForwardBound) {
  const Netlist n = testing::fig1_circuit();
  const McGraph g = build_mc_graph(n);
  const auto result = compute_mc_bounds(g);
  const VertexId gate = find_gate(g, n, "g");
  EXPECT_EQ(result.bounds.r_min[gate.index()], -1);
  EXPECT_EQ(result.bounds.r_max[gate.index()], 0);
}

TEST(MaximalRetimingTest, IncompatibleClassesBlockMoves) {
  // Like fig1 but with two different enables: no moves possible at all.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en1 = n.add_input("en1");
  const NetId en2 = n.add_input("en2");
  Register r1;
  r1.d = n.add_input("a");
  r1.clk = clk;
  r1.en = en1;
  const NetId q1 = n.add_register(std::move(r1));
  Register r2;
  r2.d = n.add_input("b");
  r2.clk = clk;
  r2.en = en2;
  const NetId q2 = n.add_register(std::move(r2));
  n.add_output("o", n.add_lut(TruthTable::and_n(2), {q1, q2}, "g"));
  const McGraph g = build_mc_graph(n);
  const auto result = compute_mc_bounds(g);
  const VertexId gate = find_gate(g, n, "g");
  EXPECT_EQ(result.bounds.r_min[gate.index()], 0);
  EXPECT_EQ(result.bounds.r_max[gate.index()], 0);
  EXPECT_EQ(result.bounds.possible_steps, 0u);
}

TEST(MaximalRetimingTest, ObservedRingHasFiniteBounds) {
  // A ring observed by a primary output cannot rotate its register past the
  // observation point: bounds stay finite.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  const NetId d = n.add_net("loop_d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  const NetId g1 = n.add_lut(TruthTable::xor_n(2), {q, a}, "ring1");
  const NetId g2 = n.add_lut(TruthTable::inverter(), {g1}, "ring2");
  n.add_lut_driving(d, TruthTable::buffer(), {g2});
  n.add_output("o", g1);
  const McGraph g = build_mc_graph(n);
  const auto result = compute_mc_bounds(g);
  EXPECT_FALSE(result.bounds.hit_cap);
  const VertexId ring1 = find_gate(g, n, "ring1");
  EXPECT_LT(result.bounds.r_max[ring1.index()], McBounds::kUnbounded);
}

TEST(MaximalRetimingTest, IsolatedRingIsUnbounded) {
  // A register ring with no external observation rotates forever; the cap
  // kicks in and the vertex is marked unbounded (no class constraint).
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_net("loop_d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  n.add_lut_driving(d, TruthTable::inverter(), {q});
  // Unrelated observable logic so the netlist is not empty.
  n.add_output("o", n.add_input("a"));
  const McGraph g = build_mc_graph(n);
  const auto result = compute_mc_bounds(g);
  EXPECT_TRUE(result.bounds.hit_cap);
  bool found_unbounded = false;
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    if (result.bounds.r_max[v] >= McBounds::kUnbounded) found_unbounded = true;
  }
  EXPECT_TRUE(found_unbounded);
}

TEST(MaximalRetimingTest, BackwardGraphIsMaximallyRetimed) {
  const Netlist n = testing::chain_circuit(3, 2);
  const McGraph g = build_mc_graph(n);
  const auto result = compute_mc_bounds(g);
  // In the backward graph no more backward steps are possible anywhere.
  for (std::size_t v = 1; v < result.backward_graph.vertex_count(); ++v) {
    EXPECT_FALSE(result.backward_graph.backward_step_class(
        VertexId{static_cast<std::uint32_t>(v)}));
  }
  // Register count is preserved for single-fanout chains.
  EXPECT_EQ(result.backward_graph.total_edge_registers(),
            g.total_edge_registers());
}

TEST(MaximalRetimingTest, BoundsAdmitZero) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    const McGraph g = build_mc_graph(n);
    const auto result = compute_mc_bounds(g);
    for (std::size_t v = 0; v < g.vertex_count(); ++v) {
      EXPECT_GE(result.bounds.r_max[v], 0) << "seed " << seed;
      EXPECT_LE(result.bounds.r_min[v], 0) << "seed " << seed;
    }
  }
}

TEST(MaximalRetimingTest, InputsOutputsNeverMove) {
  const Netlist n = testing::chain_circuit(2, 2);
  const McGraph g = build_mc_graph(n);
  const auto result = compute_mc_bounds(g);
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) != McVertexKind::kGate) {
      EXPECT_EQ(result.bounds.r_max[v], 0);
      EXPECT_EQ(result.bounds.r_min[v], 0);
    }
  }
}

}  // namespace
}  // namespace mcrt

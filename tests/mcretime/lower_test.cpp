// Unit tests of the mc-graph -> basic-retiming-graph lowering (§4/§5.1).
#include "mcretime/lower.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "tech/sta.h"

namespace mcrt {
namespace {

TEST(LowerTest, VerticesAndEdgesCarryOver) {
  const Netlist n = testing::fig1_circuit();
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  EXPECT_EQ(basic.vertex_count(), g.vertex_count());
  EXPECT_EQ(basic.edge_count(), g.digraph().edge_count());
  // Edge weights are the register-sequence lengths.
  for (std::size_t e = 0; e < basic.edge_count(); ++e) {
    const EdgeId id{static_cast<std::uint32_t>(e)};
    EXPECT_EQ(basic.weight(id),
              static_cast<std::int64_t>(g.regs(id).size()));
  }
}

TEST(LowerTest, InterfaceVerticesPinned) {
  const Netlist n = testing::fig1_circuit();
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    const McVertexKind kind = g.kind(vid);
    if (kind == McVertexKind::kInput || kind == McVertexKind::kOutput ||
        kind == McVertexKind::kControlTap) {
      EXPECT_EQ(basic.lower_bound(vid), 0);
      EXPECT_EQ(basic.upper_bound(vid), 0);
    }
  }
  EXPECT_TRUE(basic.has_bounds());
}

TEST(LowerTest, GateBoundsFromMaximalRetiming) {
  const Netlist n = testing::chain_circuit(3, 2);
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) != McVertexKind::kGate) continue;
    EXPECT_EQ(basic.upper_bound(vid), maximal.bounds.r_max[v]);
    EXPECT_EQ(basic.lower_bound(vid), maximal.bounds.r_min[v]);
  }
}

TEST(LowerTest, UnboundedMarksBecomeNoBound) {
  // Isolated register ring: unbounded vertices must lower to kNoBound.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_net("loop_d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  n.add_lut_driving(d, TruthTable::inverter(), {q});
  n.add_output("o", n.add_input("a"));
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  bool found = false;
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (maximal.bounds.r_max[v] >= McBounds::kUnbounded) {
      EXPECT_EQ(basic.upper_bound(vid), RetimeGraph::kNoBound);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LowerTest, PeriodMatchesNetlistSta) {
  // The lowered graph's clock period equals the netlist's STA period: the
  // graph model and the timing model must agree.
  Netlist n = testing::chain_circuit(4, 2, 7);
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  EXPECT_EQ(basic.period(), compute_period(n));
}

TEST(LowerTest, DelaysCarryOver) {
  Netlist n = testing::chain_circuit(2, 1, 9);
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    EXPECT_EQ(basic.delay(vid), g.delay(vid));
  }
}

}  // namespace
}  // namespace mcrt

// mc-retiming with synchronous set/clear *kept* on the registers (the
// XC4000E flow of §6 decomposes them first, but Definition 1 and the
// engine support them directly; other targets have sync controls).
#include <gtest/gtest.h>

#include "mcretime/mc_retime.h"
#include "sim/equivalence.h"
#include "tech/sta.h"
#include "transform/sweep.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

class SyncControlRetiming : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyncControlRetiming, EquivalentAndNeverSlower) {
  RandomCircuitOptions opt;
  opt.gates = 24;
  opt.registers = 7;
  opt.use_sync = true;
  opt.use_async = true;
  opt.use_en = true;
  Netlist n = sweep(random_sequential_circuit(GetParam(), opt), nullptr);
  for (std::size_t i = 0; i < n.node_count(); ++i) {
    if (n.nodes()[i].kind == NodeKind::kLut) {
      n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
    }
  }
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_LE(result.stats.period_after, result.stats.period_before);
  EquivalenceOptions eq_opt;
  eq_opt.runs = 3;
  eq_opt.cycles = 40;
  const auto eq = check_sequential_equivalence(n, result.netlist, eq_opt);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
  // Sync controls survive the round trip (unless the registers carrying
  // them were all swept / merged away).
  if (n.stats().with_sync > 0 && result.netlist.register_count() > 0) {
    EXPECT_GE(result.netlist.stats().with_sync, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncControlRetiming,
                         ::testing::Range<std::uint64_t>(201, 213));

TEST(SyncControlRetiming, SyncClassSeparatesFromAsyncClass) {
  // A register with sync clear and one with async clear from the same
  // signal must land in different classes and never move as one layer.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  Register r1;
  r1.d = a;
  r1.clk = clk;
  r1.sync_ctrl = rst;
  r1.sync_val = ResetVal::kZero;
  const NetId q1 = n.add_register(std::move(r1));
  Register r2;
  r2.d = b;
  r2.clk = clk;
  r2.async_ctrl = rst;
  r2.async_val = ResetVal::kZero;
  const NetId q2 = n.add_register(std::move(r2));
  const NetId g = n.add_lut(TruthTable::and_n(2), {q1, q2}, "g");
  n.set_node_delay(NodeId{n.net(g).driver.index}, 10);
  n.add_output("o", g);

  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.stats.num_classes, 2u);
  // The mixed layer cannot move: register count and positions unchanged.
  EXPECT_EQ(result.stats.moved_layers, 0u);
  EXPECT_EQ(result.stats.registers_after, 2u);
}

}  // namespace
}  // namespace mcrt

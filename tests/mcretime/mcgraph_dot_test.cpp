#include "mcretime/mcgraph_dot.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(McGraphDotTest, ContainsVerticesAndRegisterLabels) {
  const Netlist n = testing::fig1_circuit();
  const McGraph g = build_mc_graph(n);
  const std::string dot = write_mcgraph_dot_string(g, n, "fig1");
  EXPECT_NE(dot.find("digraph \"fig1\""), std::string::npos);
  EXPECT_NE(dot.find("host"), std::string::npos);
  EXPECT_NE(dot.find("tap en"), std::string::npos);
  EXPECT_NE(dot.find("C0[--]"), std::string::npos);  // register labels
  EXPECT_NE(dot.find("PI in0"), std::string::npos);
}

TEST(McGraphDotTest, ResetValuesShown) {
  const Netlist n = testing::fig5_circuit();
  const McGraph g = build_mc_graph(n);
  const std::string dot = write_mcgraph_dot_string(g, n);
  EXPECT_NE(dot.find("[1-]"), std::string::npos);  // sync=1, async=-
  EXPECT_NE(dot.find("[0-]"), std::string::npos);
}

}  // namespace
}  // namespace mcrt

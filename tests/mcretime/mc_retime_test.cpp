// End-to-end tests of the full multiple-class retiming flow, including the
// paper's headline property: the retimed circuit is behaviourally
// equivalent and its clock period never worse.
#include "mcretime/mc_retime.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "tech/sta.h"
#include "transform/sweep.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(McRetimeTest, ChainMinPeriod) {
  // 6 inverters (delay 1 each) followed by 2 registers: optimal retiming
  // spreads the registers, period 6 -> 2.
  Netlist n = testing::chain_circuit(6, 2);
  McRetimeOptions options;
  options.objective = McRetimeOptions::Objective::kMinPeriod;
  const auto result = mc_retime(n, options);
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.stats.period_before, 6);
  EXPECT_EQ(result.stats.period_after, 2);
  EXPECT_EQ(compute_period(result.netlist), 2);
  EXPECT_TRUE(result.netlist.validate().empty());
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(McRetimeTest, Fig1ForwardMoveKeepsEnable) {
  // The paper's Fig. 1a -> 1b: the two EN registers move forward across
  // the AND gate as one layer of a single class; no mux logic appears and
  // the register count drops to one.
  Netlist n = testing::fig1_circuit();
  // Give the AND gate delay so that moving forward is period-neutral and
  // minarea prefers fewer registers.
  for (std::size_t i = 0; i < n.node_count(); ++i) {
    if (n.nodes()[i].kind == NodeKind::kLut) {
      n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 1);
    }
  }
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.stats.num_classes, 1u);
  EXPECT_EQ(result.stats.registers_after, 1u);
  EXPECT_EQ(result.netlist.stats().with_en, 1u);
  // No combinational nodes added (the decomposition approach would add 2
  // muxes + keep 2 registers, paper Fig. 1d).
  EXPECT_EQ(result.netlist.stats().luts, n.stats().luts);
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(McRetimeTest, PeriodNeverWorse) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCircuitOptions opt;
    opt.gates = 30;
    opt.registers = 8;
    Netlist n = sweep(random_sequential_circuit(seed, opt), nullptr);
    // Give every LUT a delay so timing is meaningful.
    for (std::size_t i = 0; i < n.node_count(); ++i) {
      if (n.nodes()[i].kind == NodeKind::kLut) {
        n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
      }
    }
    const auto result = mc_retime(n, {});
    ASSERT_TRUE(result.success) << "seed " << seed << ": " << result.error;
    EXPECT_LE(result.stats.period_after, result.stats.period_before)
        << "seed " << seed;
    EXPECT_EQ(compute_period(result.netlist), result.stats.period_after)
        << "seed " << seed;
  }
}

TEST(McRetimeTest, EquivalenceOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RandomCircuitOptions opt;
    opt.gates = 25;
    opt.registers = 7;
    Netlist n = sweep(random_sequential_circuit(seed, opt), nullptr);
    for (std::size_t i = 0; i < n.node_count(); ++i) {
      if (n.nodes()[i].kind == NodeKind::kLut) {
        n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
      }
    }
    const auto result = mc_retime(n, {});
    ASSERT_TRUE(result.success) << "seed " << seed << ": " << result.error;
    EXPECT_TRUE(result.netlist.validate().empty()) << "seed " << seed;
    EquivalenceOptions eq_opt;
    eq_opt.runs = 4;
    eq_opt.cycles = 48;
    const auto eq = check_sequential_equivalence(n, result.netlist, eq_opt);
    EXPECT_TRUE(eq.equivalent)
        << "seed " << seed << ": " << eq.counterexample;
  }
}

TEST(McRetimeTest, EquivalenceOnMappedCircuits) {
  // The paper's actual flow: retime a mapped LUT netlist.
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    RandomCircuitOptions opt;
    opt.gates = 30;
    opt.registers = 8;
    const Netlist raw = random_sequential_circuit(seed, opt);
    const Netlist mapped =
        flowmap_map(decompose_to_binary(sweep(raw, nullptr)), {}).mapped;
    const auto result = mc_retime(mapped, {});
    ASSERT_TRUE(result.success) << "seed " << seed << ": " << result.error;
    EquivalenceOptions eq_opt;
    eq_opt.runs = 3;
    eq_opt.cycles = 32;
    const auto eq =
        check_sequential_equivalence(mapped, result.netlist, eq_opt);
    EXPECT_TRUE(eq.equivalent)
        << "seed " << seed << ": " << eq.counterexample;
  }
}

TEST(McRetimeTest, MinAreaNotWorseThanMinPeriodOnRegisters) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomCircuitOptions opt;
    opt.gates = 25;
    opt.registers = 8;
    Netlist n = sweep(random_sequential_circuit(seed, opt), nullptr);
    for (std::size_t i = 0; i < n.node_count(); ++i) {
      if (n.nodes()[i].kind == NodeKind::kLut) {
        n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
      }
    }
    McRetimeOptions mp;
    mp.objective = McRetimeOptions::Objective::kMinPeriod;
    McRetimeOptions ma;
    ma.objective = McRetimeOptions::Objective::kMinAreaMinPeriod;
    const auto rp = mc_retime(n, mp);
    const auto ra = mc_retime(n, ma);
    ASSERT_TRUE(rp.success && ra.success) << "seed " << seed;
    EXPECT_EQ(ra.stats.period_after, rp.stats.period_after) << "seed " << seed;
    EXPECT_LE(ra.stats.registers_after, rp.stats.registers_after)
        << "seed " << seed;
  }
}

TEST(McRetimeTest, MultiClassCircuitRetainsClasses) {
  RandomCircuitOptions opt;
  opt.control_signatures = 4;
  Netlist n = sweep(random_sequential_circuit(33, opt), nullptr);
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GE(result.stats.num_classes, 2u);
}

TEST(McRetimeTest, StatsAreConsistent) {
  Netlist n = testing::chain_circuit(6, 2);
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.registers_before, 2u);
  EXPECT_GT(result.stats.moved_layers, 0u);
  EXPECT_GE(result.stats.possible_steps, result.stats.moved_layers);
  EXPECT_GE(result.stats.attempts, 1u);
  // Profile covers the three phases.
  EXPECT_GE(result.stats.profile.phases().size(), 3u);
}

TEST(McRetimeTest, ConflictBoundRecomputeLoop) {
  // The unsatisfiable Fig-5 variant: retiming would like to move backward
  // across v2, justification fails, a bound is added and the second
  // attempt succeeds with registers kept further forward.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId srst = n.add_input("srst");
  const NetId i0 = n.add_input("i0");
  const NetId i1 = n.add_input("i1");
  const NetId i2 = n.add_input("i2");
  const NetId v2 = n.add_lut(TruthTable::and_n(2), {i0, i1}, "v2");
  const NetId v3 = n.add_lut(TruthTable::nand_n(2), {v2, i2}, "v3");
  const NetId v4 = n.add_lut(TruthTable::inverter(), {v2}, "v4");
  for (std::size_t i = 0; i < n.node_count(); ++i) {
    if (n.nodes()[i].kind == NodeKind::kLut) {
      n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
    }
  }
  Register f3;
  f3.d = v3;
  f3.clk = clk;
  f3.sync_ctrl = srst;
  f3.sync_val = ResetVal::kZero;
  const NetId q3 = n.add_register(std::move(f3));
  Register f4;
  f4.d = v4;
  f4.clk = clk;
  f4.sync_ctrl = srst;
  f4.sync_val = ResetVal::kOne;
  const NetId q4 = n.add_register(std::move(f4));
  n.add_output("out0", q3);
  n.add_output("out1", q4);

  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EquivalenceOptions eq_opt;
  eq_opt.reset_inputs = {"srst"};
  const auto eq = check_sequential_equivalence(n, result.netlist, eq_opt);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

}  // namespace
}  // namespace mcrt

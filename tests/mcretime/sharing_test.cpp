// Tests for the §4.2 register-sharing modification, including a rebuild of
// the paper's Fig. 4 situation: a multi-fanout vertex whose fanout register
// layers mix classes in the maximally backward-retimed graph.
#include "mcretime/sharing.h"

#include <gtest/gtest.h>

#include "mcretime/lower.h"
#include "mcretime/rebuild.h"

namespace mcrt {
namespace {

/// Fig. 4-style circuit: vertex u fans out to sinks v1..v3; the registers
/// on the fanout edges belong to two classes, so only the largest
/// compatible set can share.
struct Fig4Rig {
  Netlist n;
  NetId clk, en1, en2;

  Netlist build() {
    clk = n.add_input("clk");
    en1 = n.add_input("en1");
    en2 = n.add_input("en2");
    const NetId a = n.add_input("a");
    const NetId u = n.add_lut(TruthTable::inverter(), {a}, "u");
    // Branch 1 and 2: class C1 (en1). Branch 3: class C2 (en2).
    const NetId q1 = reg(u, en1, "r1");
    const NetId q2 = reg(u, en1, "r2");
    const NetId q3 = reg(u, en2, "r3");
    n.add_output("o1", n.add_lut(TruthTable::inverter(), {q1}, "v1"));
    n.add_output("o2", n.add_lut(TruthTable::inverter(), {q2}, "v2"));
    n.add_output("o3", n.add_lut(TruthTable::inverter(), {q3}, "v3"));
    return std::move(n);
  }

  NetId reg(NetId d, NetId en, const std::string& name) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.en = en;
    ff.name = name;
    return n.add_register(std::move(ff));
  }
};

TEST(SharingTest, MixedClassFanoutGetsSeparator) {
  Fig4Rig rig;
  const Netlist n = rig.build();
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const auto modified =
      apply_sharing_modification(g, maximal.bounds, maximal.backward_graph);
  // The C2 branch is the smaller group: exactly one separator expected.
  EXPECT_EQ(modified.separators_inserted, 1u);
  EXPECT_EQ(modified.graph.vertex_count(), g.vertex_count() + 1);
  EXPECT_TRUE(modified.graph.validate().empty());
  // Register total preserved.
  EXPECT_EQ(modified.graph.total_edge_registers(), g.total_edge_registers());
}

TEST(SharingTest, SeparatorBoundsFollowEq3) {
  Fig4Rig rig;
  const Netlist n = rig.build();
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const auto modified =
      apply_sharing_modification(g, maximal.bounds, maximal.backward_graph);
  // Separator vertices were appended at the end.
  for (std::size_t v = g.vertex_count(); v < modified.graph.vertex_count();
       ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    EXPECT_EQ(modified.graph.kind(vid), McVertexKind::kSeparator);
    EXPECT_EQ(modified.graph.delay(vid), 0);
    // Eq. 3 here: r_max(v3-gate) = 0 (registers at sinks can't move back
    // past the PO-feeding gate beyond what exists), w_b(e_s,v) = 1
    // -> r_max(s) = max(0 - 1, 0) = 0.
    EXPECT_EQ(modified.bounds.r_max[v], 0);
  }
}

TEST(SharingTest, SingleClassFanoutUntouched) {
  // All three branches same class: everything sharable, no separators.
  Fig4Rig rig;
  rig.n = Netlist{};
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  const NetId a = n.add_input("a");
  const NetId u = n.add_lut(TruthTable::inverter(), {a}, "u");
  for (int i = 0; i < 3; ++i) {
    Register ff;
    ff.d = u;
    ff.clk = clk;
    ff.en = en;
    const NetId q = n.add_register(std::move(ff));
    n.add_output("o" + std::to_string(i),
                 n.add_lut(TruthTable::inverter(), {q}));
  }
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const auto modified =
      apply_sharing_modification(g, maximal.bounds, maximal.backward_graph);
  EXPECT_EQ(modified.separators_inserted, 0u);
}

TEST(SharingTest, NoRegistersNoSeparators) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId u = n.add_lut(TruthTable::inverter(), {a});
  n.add_output("o1", n.add_lut(TruthTable::inverter(), {u}));
  n.add_output("o2", n.add_lut(TruthTable::buffer(), {u}));
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const auto modified =
      apply_sharing_modification(g, maximal.bounds, maximal.backward_graph);
  EXPECT_EQ(modified.separators_inserted, 0u);
}

TEST(SharingTest, PaperFig4aExactNumbers) {
  // The paper's Fig. 4a statement verbatim: "we would report a shared
  // register count of 2. But the registers of class C1 and C2 cannot be
  // shared so that the area cost is actually 3." Construction: driver u
  // with three fanout branches; two carry one C1 register, the third a C2
  // register followed by a C1 register (max weight 2 -> naive shared count
  // 2; physically: shared C1 layer (1) + the C2 register (1) + the deeper
  // C1 register (1) = 3, since C2 cannot join the C1 layer).
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en1 = n.add_input("en1");
  const NetId en2 = n.add_input("en2");
  const NetId a = n.add_input("a");
  const NetId u = n.add_lut(TruthTable::inverter(), {a}, "u");
  auto reg = [&](NetId d, NetId en) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.en = en;
    return n.add_register(std::move(ff));
  };
  const NetId q1 = reg(u, en1);
  const NetId q2 = reg(u, en1);
  const NetId q3 = reg(reg(u, en2), en1);  // C2 then C1 in series
  n.add_output("o1", n.add_lut(TruthTable::inverter(), {q1}));
  n.add_output("o2", n.add_lut(TruthTable::inverter(), {q2}));
  n.add_output("o3", n.add_lut(TruthTable::inverter(), {q3}));

  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  // Naive Leiserson-Saxe sharing on the unmodified graph: max(1,1,2) = 2.
  const RetimeGraph plain = lower_to_retime_graph(g, maximal.bounds);
  EXPECT_EQ(plain.shared_register_area(), 2);
  // The physical truth (what rebuild materializes): 3 registers.
  const Netlist rebuilt = rebuild_netlist(g, n);
  EXPECT_EQ(rebuilt.register_count(), 3u);
  // With the separation vertex the model reports the honest 3.
  const auto modified =
      apply_sharing_modification(g, maximal.bounds, maximal.backward_graph);
  const RetimeGraph fixed =
      lower_to_retime_graph(modified.graph, modified.bounds);
  EXPECT_EQ(fixed.shared_register_area(), 3);
}

TEST(SharingTest, LoweredGraphCountsNonSharableSeparately) {
  // Area model check: without the modification, the shared cost function
  // undercounts (2 instead of 3 registers, as in the paper's Fig. 4a).
  Fig4Rig rig;
  const Netlist n = rig.build();
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);

  const RetimeGraph plain = lower_to_retime_graph(g, maximal.bounds);
  // u has three fanout edges with one register each: the plain sharing
  // model counts max = 1 (plus nothing else).
  EXPECT_EQ(plain.shared_register_area(), 1);

  const auto modified =
      apply_sharing_modification(g, maximal.bounds, maximal.backward_graph);
  const RetimeGraph fixed =
      lower_to_retime_graph(modified.graph, modified.bounds);
  // With the separator, the C2 register sits behind a single-fanout
  // separation vertex and counts on its own: 1 (shared C1) + 1 (C2) = 2.
  EXPECT_EQ(fixed.shared_register_area(), 2);
}

}  // namespace
}  // namespace mcrt

// Larger-scale integration stress: map -> retime -> remap on mid-size
// generated circuits (hundreds of LUTs), with behavioural equivalence and
// the structural invariants checked end to end. Catches interactions the
// 30-gate property tests are too small to produce (deep chains, wide
// fanouts, many classes, separator insertion at scale).
#include <gtest/gtest.h>

#include "mcretime/mc_retime.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "tech/sta.h"
#include "transform/decompose_controls.h"
#include "transform/sweep.h"
#include "workload/generator.h"

namespace mcrt {
namespace {

class StressFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressFlow, MapRetimeRemapRoundTrip) {
  CircuitProfile profile;
  profile.name = "stress";
  profile.seed = GetParam();
  profile.control_signals = 6;
  profile.data_inputs = 10;
  profile.pipelines = {{10, 8, 2}, {8, 6, 2}};
  profile.accumulators = {{8}};
  profile.shifts = {{5, 8}};
  profile.counter_bits = 4;
  profile.use_sync = GetParam() % 2 == 0;

  Netlist rtl = generate_circuit(profile);
  rtl = sweep(decompose_sync_controls(rtl), nullptr);
  const FlowMapResult mapped = flowmap_map(decompose_to_binary(rtl), {});
  ASSERT_TRUE(mapped.mapped.validate().empty());

  const McRetimeResult retimed = mc_retime(mapped.mapped, {});
  ASSERT_TRUE(retimed.success) << retimed.error;
  EXPECT_TRUE(retimed.netlist.validate().empty());
  EXPECT_LE(retimed.stats.period_after, retimed.stats.period_before);
  EXPECT_EQ(compute_period(retimed.netlist), retimed.stats.period_after);

  const FlowMapResult remapped =
      flowmap_map(decompose_to_binary(retimed.netlist), {});
  EXPECT_TRUE(remapped.mapped.validate().empty());
  // Remap must not undo the retiming win.
  EXPECT_LE(compute_period(remapped.mapped), retimed.stats.period_before);

  EquivalenceOptions eq_opt;
  eq_opt.runs = 2;
  eq_opt.cycles = 48;
  const auto eq =
      check_sequential_equivalence(mapped.mapped, remapped.mapped, eq_opt);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressFlow,
                         ::testing::Range<std::uint64_t>(301, 307));

}  // namespace
}  // namespace mcrt

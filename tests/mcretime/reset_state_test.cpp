#include "mcretime/reset_state.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(MergeResetValuesTest, AllDontCare) {
  const auto merged = merge_reset_values(
      {ResetVal::kDontCare, ResetVal::kDontCare});
  ASSERT_TRUE(merged);
  EXPECT_EQ(*merged, ResetVal::kDontCare);
}

TEST(MergeResetValuesTest, ConcreteAbsorbsDontCare) {
  const auto merged = merge_reset_values(
      {ResetVal::kDontCare, ResetVal::kOne, ResetVal::kDontCare});
  ASSERT_TRUE(merged);
  EXPECT_EQ(*merged, ResetVal::kOne);
}

TEST(MergeResetValuesTest, ClashFails) {
  EXPECT_FALSE(merge_reset_values({ResetVal::kZero, ResetVal::kOne}));
}

TEST(ImplyTest, AndGate) {
  const TruthTable and2 = TruthTable::and_n(2);
  EXPECT_EQ(imply_through(and2, {ResetVal::kOne, ResetVal::kOne}),
            ResetVal::kOne);
  EXPECT_EQ(imply_through(and2, {ResetVal::kZero, ResetVal::kDontCare}),
            ResetVal::kZero);
  EXPECT_EQ(imply_through(and2, {ResetVal::kOne, ResetVal::kDontCare}),
            ResetVal::kDontCare);
}

TEST(ImplyTest, XorUnknownDominates) {
  const TruthTable xor2 = TruthTable::xor_n(2);
  EXPECT_EQ(imply_through(xor2, {ResetVal::kDontCare, ResetVal::kOne}),
            ResetVal::kDontCare);
  EXPECT_EQ(imply_through(xor2, {ResetVal::kOne, ResetVal::kOne}),
            ResetVal::kZero);
}

TEST(JustifyTest, AndToOneForcesAllInputs) {
  const auto pins = justify_through(TruthTable::and_n(3), true);
  ASSERT_TRUE(pins);
  for (const ResetVal v : *pins) EXPECT_EQ(v, ResetVal::kOne);
}

TEST(JustifyTest, AndToZeroUsesOneLiteral) {
  // f = a & b & c = 0 needs only one input at 0; the rest stay don't-care
  // (the paper's "select as many don't cares as possible").
  const auto pins = justify_through(TruthTable::and_n(3), false);
  ASSERT_TRUE(pins);
  int concrete = 0;
  for (const ResetVal v : *pins) {
    if (v != ResetVal::kDontCare) {
      ++concrete;
      EXPECT_EQ(v, ResetVal::kZero);
    }
  }
  EXPECT_EQ(concrete, 1);
}

TEST(JustifyTest, OrToOneUsesOneLiteral) {
  const auto pins = justify_through(TruthTable::or_n(4), true);
  ASSERT_TRUE(pins);
  int concrete = 0;
  for (const ResetVal v : *pins) {
    if (v != ResetVal::kDontCare) ++concrete;
  }
  EXPECT_EQ(concrete, 1);
}

TEST(JustifyTest, ConstantMismatchFails) {
  EXPECT_FALSE(justify_through(TruthTable::constant(false), true));
  EXPECT_TRUE(justify_through(TruthTable::constant(true), true));
}

TEST(JustifyTest, XorNeedsBothInputs) {
  const auto pins = justify_through(TruthTable::xor_n(2), true);
  ASSERT_TRUE(pins);
  // XOR to 1: both inputs must be concrete and different.
  ASSERT_EQ(pins->size(), 2u);
  EXPECT_NE((*pins)[0], ResetVal::kDontCare);
  EXPECT_NE((*pins)[1], ResetVal::kDontCare);
  EXPECT_NE((*pins)[0], (*pins)[1]);
}

TEST(JustifyTest, JustifiedValuesImplyTarget) {
  // Round-trip property on assorted functions.
  const TruthTable tables[] = {
      TruthTable::and_n(2),  TruthTable::or_n(3),   TruthTable::nand_n(2),
      TruthTable::xor_n(3),  TruthTable::mux21(),   TruthTable::inverter(),
  };
  for (const TruthTable& f : tables) {
    for (const bool target : {false, true}) {
      const auto pins = justify_through(f, target);
      if (!pins) continue;
      EXPECT_EQ(imply_through(f, *pins),
                target ? ResetVal::kOne : ResetVal::kZero)
          << f.to_string() << " -> " << target;
    }
  }
}

}  // namespace
}  // namespace mcrt

// Reproducibility: the full flow must be bit-identical across runs - the
// nondeterminism sources (hash-map iteration in taps, classes, closures)
// are all pinned by deterministic orderings.
#include <gtest/gtest.h>

#include "blif/blif.h"
#include "mcretime/mc_retime.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "transform/sweep.h"
#include "workload/generator.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(DeterminismTest, McRetimeIsBitIdentical) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    RandomCircuitOptions opt;
    opt.gates = 30;
    opt.registers = 8;
    Netlist n = sweep(random_sequential_circuit(seed, opt), nullptr);
    for (std::size_t i = 0; i < n.node_count(); ++i) {
      if (n.nodes()[i].kind == NodeKind::kLut) {
        n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
      }
    }
    const auto a = mc_retime(n, {});
    const auto b = mc_retime(n, {});
    ASSERT_TRUE(a.success && b.success);
    EXPECT_EQ(write_blif_string(a.netlist), write_blif_string(b.netlist))
        << "seed " << seed;
    EXPECT_EQ(a.stats.moved_layers, b.stats.moved_layers);
    EXPECT_EQ(a.stats.registers_after, b.stats.registers_after);
  }
}

TEST(DeterminismTest, FullMapRetimeFlowIsBitIdentical) {
  const CircuitProfile profile = paper_suite()[2];  // C3: small
  auto run = [&] {
    const Netlist rtl = sweep(generate_circuit(profile), nullptr);
    const FlowMapResult mapped = flowmap_map(decompose_to_binary(rtl), {});
    const auto retimed = mc_retime(mapped.mapped, {});
    EXPECT_TRUE(retimed.success);
    return write_blif_string(retimed.netlist);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mcrt

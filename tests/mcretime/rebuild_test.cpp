// Direct unit tests of netlist reconstruction from an mc-graph: shared
// shift trees, reset-value merging, control re-tapping, separators.
#include "mcretime/rebuild.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "mcretime/maximal_retiming.h"
#include "mcretime/sharing.h"
#include "sim/equivalence.h"

namespace mcrt {
namespace {

/// Three same-class registers on three fanout edges of one driver.
struct FanoutRig {
  Netlist n;
  NetId clk, en;

  Netlist build(ResetVal a0, ResetVal a1, ResetVal a2) {
    clk = n.add_input("clk");
    en = n.add_input("en");
    NetId rst;
    if (a0 != ResetVal::kDontCare || a1 != ResetVal::kDontCare ||
        a2 != ResetVal::kDontCare) {
      rst = n.add_input("rst");
    }
    const NetId a = n.add_input("a");
    const NetId u = n.add_lut(TruthTable::inverter(), {a}, "u");
    const ResetVal values[3] = {a0, a1, a2};
    for (int i = 0; i < 3; ++i) {
      Register ff;
      ff.d = u;
      ff.clk = clk;
      ff.en = en;
      if (values[i] != ResetVal::kDontCare) {
        ff.async_ctrl = rst;
        ff.async_val = values[i];
      }
      const NetId q = n.add_register(std::move(ff));
      n.add_output("o" + std::to_string(i),
                   n.add_lut(TruthTable::buffer(), {q}));
    }
    return std::move(n);
  }
};

std::size_t rebuild_ff_count(const Netlist& n) {
  const McGraph g = build_mc_graph(n);
  const Netlist out = rebuild_netlist(g, n);
  EXPECT_TRUE(out.validate().empty());
  return out.register_count();
}

TEST(RebuildTest, IdenticalRegistersShare) {
  FanoutRig rig;
  const Netlist n =
      rig.build(ResetVal::kZero, ResetVal::kZero, ResetVal::kZero);
  // Wait - these registers have the same class AND same values: one
  // physical register suffices.
  EXPECT_EQ(rebuild_ff_count(n), 1u);
}

TEST(RebuildTest, DontCareMergesWithConcrete) {
  // Registers of one class: values 0, 0, '-' (no async at all is a
  // *different class*, so use the same rig with rst wired and one '-').
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  const NetId rst = n.add_input("rst");
  const NetId a = n.add_input("a");
  const NetId u = n.add_lut(TruthTable::inverter(), {a}, "u");
  const ResetVal values[3] = {ResetVal::kZero, ResetVal::kZero,
                              ResetVal::kDontCare};
  for (int i = 0; i < 3; ++i) {
    Register ff;
    ff.d = u;
    ff.clk = clk;
    ff.en = en;
    ff.async_ctrl = rst;
    ff.async_val = values[i];
    const NetId q = n.add_register(std::move(ff));
    n.add_output("o" + std::to_string(i),
                 n.add_lut(TruthTable::buffer(), {q}));
  }
  // One class; '-' merges into the concrete 0 bucket: one physical FF.
  EXPECT_EQ(rebuild_ff_count(n), 1u);
}

TEST(RebuildTest, ConflictingValuesSplit) {
  FanoutRig rig;
  const Netlist n =
      rig.build(ResetVal::kZero, ResetVal::kOne, ResetVal::kZero);
  // 0 and 1 cannot share one register: two buckets.
  EXPECT_EQ(rebuild_ff_count(n), 2u);
}

TEST(RebuildTest, RebuildPreservesBehaviour) {
  FanoutRig rig;
  const Netlist n =
      rig.build(ResetVal::kZero, ResetVal::kOne, ResetVal::kDontCare);
  const McGraph g = build_mc_graph(n);
  const Netlist out = rebuild_netlist(g, n);
  const auto eq = check_sequential_equivalence(n, out, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(RebuildTest, RoundTripWithoutMovesKeepsStructure) {
  const Netlist n = testing::fig1_circuit();
  const McGraph g = build_mc_graph(n);
  const Netlist out = rebuild_netlist(g, n);
  EXPECT_TRUE(out.validate().empty());
  // Fig. 1a: both registers sit on different driver nets: no sharing.
  EXPECT_EQ(out.register_count(), n.register_count());
  EXPECT_EQ(out.stats().luts, n.stats().luts);
  EXPECT_EQ(out.stats().with_en, 2u);
  const auto eq = check_sequential_equivalence(n, out, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(RebuildTest, ControlTapRetapsThroughRegisters) {
  // An enable driven through a register: the rebuilt circuit's enable must
  // come from the (rebuilt) register output, not the gate before it.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  const NetId d = n.add_input("d");
  const NetId en_comb = n.add_lut(TruthTable::inverter(), {a}, "en_comb");
  Register en_ff;
  en_ff.d = en_comb;
  en_ff.clk = clk;
  const NetId en_q = n.add_register(std::move(en_ff));
  Register data_ff;
  data_ff.d = d;
  data_ff.clk = clk;
  data_ff.en = en_q;
  const NetId q = n.add_register(std::move(data_ff));
  n.add_output("o", q);

  const McGraph g = build_mc_graph(n);
  const Netlist out = rebuild_netlist(g, n);
  EXPECT_TRUE(out.validate().empty());
  ASSERT_EQ(out.register_count(), 2u);
  // Find the enabled register; its EN must be driven by a register.
  bool checked = false;
  for (const Register& ff : out.registers()) {
    if (!ff.en.valid()) continue;
    EXPECT_EQ(out.net(ff.en).driver.kind, NetDriver::Kind::kRegister);
    checked = true;
  }
  EXPECT_TRUE(checked);
  const auto eq = check_sequential_equivalence(n, out, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(RebuildTest, SeparatorsAreTransparent) {
  // Insert separators via the sharing modification, then rebuild without
  // any moves: the circuit must be unchanged behaviourally and the
  // separator must not materialize as a gate.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en1 = n.add_input("en1");
  const NetId en2 = n.add_input("en2");
  const NetId a = n.add_input("a");
  const NetId u = n.add_lut(TruthTable::inverter(), {a}, "u");
  for (int i = 0; i < 2; ++i) {
    Register ff;
    ff.d = u;
    ff.clk = clk;
    ff.en = i == 0 ? en1 : en2;
    const NetId q = n.add_register(std::move(ff));
    n.add_output("o" + std::to_string(i),
                 n.add_lut(TruthTable::inverter(), {q}));
  }
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const auto modified =
      apply_sharing_modification(g, maximal.bounds, maximal.backward_graph);
  ASSERT_GE(modified.separators_inserted, 1u);
  const Netlist out = rebuild_netlist(modified.graph, n);
  EXPECT_TRUE(out.validate().empty());
  EXPECT_EQ(out.stats().luts, n.stats().luts);  // no gate for the separator
  const auto eq = check_sequential_equivalence(n, out, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

}  // namespace
}  // namespace mcrt

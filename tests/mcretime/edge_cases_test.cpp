// Degenerate inputs the flow must handle gracefully.
#include <gtest/gtest.h>

#include "mcretime/mc_retime.h"
#include "sim/equivalence.h"
#include "tech/sta.h"

namespace mcrt {
namespace {

TEST(McRetimeEdgeTest, PureCombinationalCircuit) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g = n.add_lut(TruthTable::xor_n(2), {a, b});
  n.set_node_delay(NodeId{n.net(g).driver.index}, 10);
  n.add_output("o", g);
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.stats.registers_after, 0u);
  EXPECT_EQ(result.stats.period_after, result.stats.period_before);
  EXPECT_EQ(result.stats.moved_layers, 0u);
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent);
}

TEST(McRetimeEdgeTest, RegisterOnlyPath) {
  // PI -> FF -> FF -> PO: nothing to optimize, nothing to break.
  Netlist n;
  const NetId clk = n.add_input("clk");
  NetId net = n.add_input("d");
  for (int i = 0; i < 2; ++i) {
    Register ff;
    ff.d = net;
    ff.clk = clk;
    net = n.add_register(std::move(ff));
  }
  n.add_output("q", net);
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.stats.registers_after, 2u);
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(McRetimeEdgeTest, WireOnlyCircuit) {
  Netlist n;
  const NetId a = n.add_input("a");
  n.add_output("o", a);
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(compute_period(result.netlist), 0);
}

TEST(McRetimeEdgeTest, SingleGateFeedbackLoop) {
  // Tight loop: FF -> XOR(q, in) -> FF. The register cannot leave the
  // loop; retiming must return it intact and equivalent.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId in = n.add_input("in");
  const NetId d = n.add_net("d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = rst;
  ff.async_val = ResetVal::kZero;
  const NetId q = n.add_register(std::move(ff));
  const NodeId gate = n.add_lut_driving(d, TruthTable::xor_n(2), {q, in});
  n.set_node_delay(gate, 10);
  n.add_output("o", q);
  const auto result = mc_retime(n, {});
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.stats.registers_after, 1u);
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(McRetimeEdgeTest, ExhaustedAttemptsReportError) {
  // max_attempts = 0 cannot even try once: the driver must fail cleanly.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  n.add_output("q", n.add_register(std::move(ff)));
  McRetimeOptions options;
  options.max_attempts = 0;
  const auto result = mc_retime(n, options);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace mcrt

// Parameterized property sweep over the full mc-retiming flow: every
// combination of circuit seed, objective and sharing mode must produce a
// behaviourally equivalent circuit whose period is never worse; minarea at
// minperiod must achieve the minperiod period.
#include <gtest/gtest.h>

#include "mcretime/mc_retime.h"
#include "sim/equivalence.h"
#include "tech/sta.h"
#include "transform/sweep.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

struct FlowParams {
  std::uint64_t seed;
  McRetimeOptions::Objective objective;
  bool sharing;
};

class McRetimeProperty : public ::testing::TestWithParam<FlowParams> {};

Netlist prepared_circuit(std::uint64_t seed) {
  RandomCircuitOptions opt;
  opt.gates = 28;
  opt.registers = 8;
  opt.control_signatures = 3;
  Netlist n = sweep(random_sequential_circuit(seed, opt), nullptr);
  for (std::size_t i = 0; i < n.node_count(); ++i) {
    if (n.nodes()[i].kind == NodeKind::kLut) {
      n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
    }
  }
  return n;
}

TEST_P(McRetimeProperty, EquivalentAndNeverSlower) {
  const FlowParams& params = GetParam();
  const Netlist n = prepared_circuit(params.seed);
  McRetimeOptions options;
  options.objective = params.objective;
  options.sharing_modification = params.sharing;
  const auto result = mc_retime(n, options);
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_TRUE(result.netlist.validate().empty());
  EXPECT_LE(result.stats.period_after, result.stats.period_before);
  EXPECT_EQ(compute_period(result.netlist), result.stats.period_after);
  EquivalenceOptions eq_opt;
  eq_opt.runs = 3;
  eq_opt.cycles = 40;
  const auto eq = check_sequential_equivalence(n, result.netlist, eq_opt);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

std::vector<FlowParams> sweep_params() {
  std::vector<FlowParams> params;
  for (std::uint64_t seed = 101; seed <= 112; ++seed) {
    for (const auto objective :
         {McRetimeOptions::Objective::kMinPeriod,
          McRetimeOptions::Objective::kMinAreaMinPeriod}) {
      for (const bool sharing : {false, true}) {
        if (objective == McRetimeOptions::Objective::kMinPeriod && sharing) {
          continue;  // sharing modification only applies to minarea
        }
        params.push_back({seed, objective, sharing});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    FlowSweep, McRetimeProperty, ::testing::ValuesIn(sweep_params()),
    [](const auto& info) {
      const FlowParams& p = info.param;
      std::string name = "seed" + std::to_string(p.seed);
      name += p.objective == McRetimeOptions::Objective::kMinPeriod
                  ? "_minperiod"
                  : "_minarea";
      if (p.sharing) name += "_sharing";
      return name;
    });

class MinAreaMatchesMinPeriod : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MinAreaMatchesMinPeriod, SamePeriodFewerOrEqualRegisters) {
  const Netlist n = prepared_circuit(GetParam());
  McRetimeOptions mp;
  mp.objective = McRetimeOptions::Objective::kMinPeriod;
  McRetimeOptions ma;
  ma.objective = McRetimeOptions::Objective::kMinAreaMinPeriod;
  const auto rp = mc_retime(n, mp);
  const auto ra = mc_retime(n, ma);
  ASSERT_TRUE(rp.success && ra.success);
  EXPECT_EQ(ra.stats.period_after, rp.stats.period_after);
  EXPECT_LE(ra.stats.registers_after, rp.stats.registers_after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinAreaMatchesMinPeriod,
                         ::testing::Range<std::uint64_t>(101, 109));

}  // namespace
}  // namespace mcrt

#include "mcretime/relocate.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "mcretime/maximal_retiming.h"
#include "mcretime/rebuild.h"
#include "sim/equivalence.h"

namespace mcrt {
namespace {

VertexId gate_by_name(const McGraph& g, const Netlist& n, const char* name) {
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate &&
        n.node(g.origin_node(vid)).name == name) {
      return vid;
    }
  }
  ADD_FAILURE() << "gate not found: " << name;
  return {};
}

TEST(RelocateTest, BackwardChainMove) {
  // Move both end-of-chain registers backward across every gate.
  const Netlist n = testing::chain_circuit(3, 2);
  McGraph g = build_mc_graph(n);
  std::vector<std::int64_t> r(g.vertex_count(), 0);
  for (const char* name : {"g0", "g1", "g2"}) {
    r[gate_by_name(g, n, name).index()] = 2;
  }
  const auto result = relocate_registers(g, n, r);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.stats.backward_steps, 6u);
  EXPECT_EQ(result.stats.forward_steps, 0u);
  // Registers now sit on the PI -> g0 edge.
  const VertexId g0 = gate_by_name(g, n, "g0");
  const auto fanin = g.digraph().in_edges(g0);
  ASSERT_EQ(fanin.size(), 1u);
  EXPECT_EQ(g.regs(fanin[0]).size(), 2u);
}

TEST(RelocateTest, ForwardMoveImpliesValues) {
  // Register with async clear feeding an inverter: after a forward move the
  // new register's async value must be 1 (implied through the inverter).
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId a = n.add_input("a");
  Register ff;
  ff.d = a;
  ff.clk = clk;
  ff.async_ctrl = rst;
  ff.async_val = ResetVal::kZero;
  const NetId q = n.add_register(std::move(ff));
  const NetId inv = n.add_lut(TruthTable::inverter(), {q}, "inv");
  n.add_output("o", inv);

  McGraph g = build_mc_graph(n);
  std::vector<std::int64_t> r(g.vertex_count(), 0);
  r[gate_by_name(g, n, "inv").index()] = -1;
  const auto result = relocate_registers(g, n, r);
  ASSERT_TRUE(result.success) << result.failure_reason;
  const VertexId inv_v = gate_by_name(g, n, "inv");
  const auto fanout = g.digraph().out_edges(inv_v);
  ASSERT_EQ(fanout.size(), 1u);
  ASSERT_EQ(g.regs(fanout[0]).size(), 1u);
  EXPECT_EQ(g.regs(fanout[0])[0].async_val, ResetVal::kOne);
}

TEST(RelocateTest, BackwardMoveJustifiesWithDontCares) {
  // Register with async value 0 behind an AND: one fanin register gets 0,
  // the other stays '-'.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId and_net = n.add_lut(TruthTable::and_n(2), {a, b}, "and");
  Register ff;
  ff.d = and_net;
  ff.clk = clk;
  ff.async_ctrl = rst;
  ff.async_val = ResetVal::kZero;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("o", q);

  McGraph g = build_mc_graph(n);
  std::vector<std::int64_t> r(g.vertex_count(), 0);
  r[gate_by_name(g, n, "and").index()] = 1;
  const auto result = relocate_registers(g, n, r);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.stats.local_justifications, 1u);
  EXPECT_EQ(result.stats.global_justifications, 0u);
  const VertexId and_v = gate_by_name(g, n, "and");
  std::size_t zeros = 0;
  std::size_t dontcares = 0;
  for (const EdgeId e : g.digraph().in_edges(and_v)) {
    ASSERT_EQ(g.regs(e).size(), 1u);
    if (g.regs(e)[0].async_val == ResetVal::kZero) ++zeros;
    if (g.regs(e)[0].async_val == ResetVal::kDontCare) ++dontcares;
  }
  EXPECT_EQ(zeros, 1u);
  EXPECT_EQ(dontcares, 1u);
}

TEST(RelocateTest, Fig5GlobalJustification) {
  // The paper's Fig. 5 scenario: local justification handles v3 and v4,
  // the backward move across v2 conflicts, and a global justification
  // across v2, v3, v4 resolves it.
  const Netlist n = testing::fig5_circuit();
  McGraph g = build_mc_graph(n);
  std::vector<std::int64_t> r(g.vertex_count(), 0);
  r[gate_by_name(g, n, "v2").index()] = 1;
  r[gate_by_name(g, n, "v3").index()] = 1;
  r[gate_by_name(g, n, "v4").index()] = 1;
  const auto result = relocate_registers(g, n, r);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_GE(result.stats.global_justifications, 1u);

  // The revised values must be consistent: rebuild and compare behaviour.
  const Netlist rebuilt = rebuild_netlist(g, n);
  EXPECT_TRUE(rebuilt.validate().empty());
  EquivalenceOptions opt;
  opt.reset_inputs = {"srst"};
  opt.reset_prefix = 2;
  const auto eq = check_sequential_equivalence(n, rebuilt, opt);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(RelocateTest, UnresolvableConflictReportsVertex) {
  // Like Fig. 5 but with reset values whose constraints are jointly
  // unsatisfiable: f3 = 0 behind NAND forces the shared fanout to 1, while
  // f4 = 1 behind INV forces it to 0. Even global justification must fail,
  // and the relocation reports the conflicting vertex so the driver can
  // bound it away.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId srst = n.add_input("srst");
  const NetId i0 = n.add_input("i0");
  const NetId i1 = n.add_input("i1");
  const NetId i2 = n.add_input("i2");
  const NetId v2 = n.add_lut(TruthTable::and_n(2), {i0, i1}, "v2");
  const NetId v3 = n.add_lut(TruthTable::nand_n(2), {v2, i2}, "v3");
  const NetId v4 = n.add_lut(TruthTable::inverter(), {v2}, "v4");
  Register f3;
  f3.d = v3;
  f3.clk = clk;
  f3.sync_ctrl = srst;
  f3.sync_val = ResetVal::kZero;  // forces v2 side to 1
  const NetId q3 = n.add_register(std::move(f3));
  Register f4;
  f4.d = v4;
  f4.clk = clk;
  f4.sync_ctrl = srst;
  f4.sync_val = ResetVal::kOne;  // forces v2 side to 0
  const NetId q4 = n.add_register(std::move(f4));
  n.add_output("out0", q3);
  n.add_output("out1", q4);

  McGraph g = build_mc_graph(n);
  std::vector<std::int64_t> r(g.vertex_count(), 0);
  const VertexId v2_v = gate_by_name(g, n, "v2");
  r[v2_v.index()] = 1;
  r[gate_by_name(g, n, "v3").index()] = 1;
  r[gate_by_name(g, n, "v4").index()] = 1;
  const auto result = relocate_registers(g, n, r);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.failed_backward);
  EXPECT_EQ(result.failed_vertex, v2_v);
  EXPECT_EQ(result.achieved, 0);
  EXPECT_GE(result.stats.global_justifications, 1u);
}

TEST(RelocateTest, ZeroTargetIsNoOp) {
  const Netlist n = testing::fig1_circuit();
  McGraph g = build_mc_graph(n);
  const std::size_t before = g.total_edge_registers();
  const std::vector<std::int64_t> r(g.vertex_count(), 0);
  const auto result = relocate_registers(g, n, r);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.backward_steps, 0u);
  EXPECT_EQ(result.stats.forward_steps, 0u);
  EXPECT_EQ(g.total_edge_registers(), before);
}

}  // namespace
}  // namespace mcrt

#include "mcretime/register_class.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

struct Rig {
  Netlist n;
  NetId clk, en, d;
  Rig() {
    clk = n.add_input("clk");
    en = n.add_input("en");
    d = n.add_input("d");
  }
  RegId add(NetId en_net, NetId sync = {}, ResetVal s = ResetVal::kDontCare,
            NetId async = {}, ResetVal a = ResetVal::kDontCare) {
    Register ff;
    ff.d = d;
    ff.clk = clk;
    ff.en = en_net;
    ff.sync_ctrl = sync;
    ff.sync_val = s;
    ff.async_ctrl = async;
    ff.async_val = a;
    n.add_register(std::move(ff));
    return RegId{static_cast<std::uint32_t>(n.register_count() - 1)};
  }
  void finish() {
    for (std::size_t r = 0; r < n.register_count(); ++r) {
      n.add_output("o" + std::to_string(r), n.reg(RegId{(std::uint32_t)r}).q);
    }
  }
};

TEST(RegisterClassTest, SameControlsSameClass) {
  Rig rig;
  rig.add(rig.en);
  rig.add(rig.en);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 1u);
  EXPECT_EQ(classes.reg_class[0], classes.reg_class[1]);
}

TEST(RegisterClassTest, DifferentEnablesDifferentClasses) {
  Rig rig;
  const NetId en2 = rig.n.add_input("en2");
  rig.add(rig.en);
  rig.add(en2);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 2u);
}

TEST(RegisterClassTest, BufferedEnableIsEquivalent) {
  Rig rig;
  const NetId buffered =
      rig.n.add_lut(TruthTable::buffer(), {rig.en}, "en_buf");
  rig.add(rig.en);
  rig.add(buffered);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 1u);
}

TEST(RegisterClassTest, LogicallyEquivalentConesMerge) {
  // en and NOT(NOT(en)) are the same function.
  Rig rig;
  const NetId inv1 = rig.n.add_lut(TruthTable::inverter(), {rig.en});
  const NetId inv2 = rig.n.add_lut(TruthTable::inverter(), {inv1});
  rig.add(rig.en);
  rig.add(inv2);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 1u);
}

TEST(RegisterClassTest, InvertedEnableIsDifferent) {
  Rig rig;
  const NetId inv = rig.n.add_lut(TruthTable::inverter(), {rig.en});
  rig.add(rig.en);
  rig.add(inv);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 2u);
}

TEST(RegisterClassTest, ConstantOneEnableEqualsNoEnable) {
  Rig rig;
  const NetId one = rig.n.add_const(true);
  rig.add(NetId{});  // no enable at all
  rig.add(one);      // enable tied to 1
  // en OR NOT en == 1 as well.
  const NetId inv = rig.n.add_lut(TruthTable::inverter(), {rig.en});
  const NetId tautology = rig.n.add_lut(TruthTable::or_n(2), {rig.en, inv});
  rig.add(tautology);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 1u);
}

TEST(RegisterClassTest, ResetValueDoesNotSplitClass) {
  // Class is about *signals*; the value (set vs clear) is a register label.
  Rig rig;
  const NetId rst = rig.n.add_input("rst");
  rig.add(rig.en, NetId{}, ResetVal::kDontCare, rst, ResetVal::kZero);
  rig.add(rig.en, NetId{}, ResetVal::kDontCare, rst, ResetVal::kOne);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 1u);
}

TEST(RegisterClassTest, SyncVsAsyncAreDifferentTupleSlots) {
  Rig rig;
  const NetId rst = rig.n.add_input("rst");
  rig.add(NetId{}, rst, ResetVal::kZero);  // sync clear
  rig.add(NetId{}, NetId{}, ResetVal::kDontCare, rst, ResetVal::kZero);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  EXPECT_EQ(classes.class_count(), 2u);
}

TEST(RegisterClassTest, RegisterBoundaryCutsCones) {
  // Enables derived from *different registers* are different variables even
  // if those registers have identical cones behind them.
  Rig rig;
  const RegId r1 = rig.add(NetId{});
  const RegId r2 = rig.add(NetId{});
  rig.add(rig.n.reg(r1).q);
  rig.add(rig.n.reg(r2).q);
  rig.finish();
  const auto classes = classify_registers(rig.n);
  // r1/r2 share a class; the two enable-consumers have distinct classes.
  EXPECT_EQ(classes.class_count(), 3u);
}

TEST(RegisterClassTest, BudgetFallbackIsStructural) {
  // With the BDD node budget exhausted the analysis degrades to
  // structural identity: buffered enables no longer merge (sound: classes
  // only split, never wrongly unify).
  Rig rig;
  const NetId buffered =
      rig.n.add_lut(TruthTable::buffer(), {rig.en}, "en_buf");
  rig.add(rig.en);
  rig.add(buffered);
  rig.finish();
  ClassOptions tight;
  tight.bdd_node_budget = 0;
  const auto classes = classify_registers(rig.n, tight);
  EXPECT_EQ(classes.class_count(), 2u);
  // Identical nets still merge even without BDDs.
  Rig rig2;
  rig2.add(rig2.en);
  rig2.add(rig2.en);
  rig2.finish();
  const auto classes2 = classify_registers(rig2.n, tight);
  EXPECT_EQ(classes2.class_count(), 1u);
}

TEST(RegisterClassTest, Fig1HasOneClass) {
  const Netlist n = testing::fig1_circuit();
  const auto classes = classify_registers(n);
  EXPECT_EQ(classes.class_count(), 1u);
}

}  // namespace
}  // namespace mcrt

#include "mcretime/mcgraph.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(McGraphTest, Fig1Structure) {
  const Netlist n = testing::fig1_circuit();
  const McGraph g = build_mc_graph(n);
  EXPECT_TRUE(g.validate().empty());
  // Vertices: host + 4 PIs + 1 gate + 1 PO + 1 control tap (en).
  EXPECT_EQ(g.vertex_count(), 8u);

  // Fanin edges of the gate carry one register each.
  std::size_t gate_vertex = 0;
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    if (g.kind(VertexId{static_cast<std::uint32_t>(v)}) ==
        McVertexKind::kGate) {
      gate_vertex = v;
    }
  }
  const auto fanin = g.digraph().in_edges(VertexId{(std::uint32_t)gate_vertex});
  ASSERT_EQ(fanin.size(), 2u);
  for (const EdgeId e : fanin) {
    EXPECT_EQ(g.regs(e).size(), 1u);
  }
}

TEST(McGraphTest, ControlTapObservesEnable) {
  const Netlist n = testing::fig1_circuit();
  const McGraph g = build_mc_graph(n);
  std::size_t taps = 0;
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kControlTap) {
      ++taps;
      // The tap's source is the "en" primary input; edge has no registers.
      const auto in_edges = g.digraph().in_edges(vid);
      ASSERT_EQ(in_edges.size(), 1u);
      EXPECT_TRUE(g.regs(in_edges[0]).empty());
    }
  }
  EXPECT_EQ(taps, 1u);
}

TEST(McGraphTest, RegisterChainBecomesSequence) {
  const Netlist n = testing::chain_circuit(1, 3);
  const McGraph g = build_mc_graph(n);
  // The PO pin edge carries all three registers.
  bool found = false;
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) != McVertexKind::kOutput) continue;
    const auto in_edges = g.digraph().in_edges(vid);
    ASSERT_EQ(in_edges.size(), 1u);
    EXPECT_EQ(g.regs(in_edges[0]).size(), 3u);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(McGraphTest, BackwardStepValidity) {
  const Netlist n = testing::fig1_circuit();
  McGraph g = build_mc_graph(n);
  // The AND gate: fanout edge (to PO) has no register -> backward invalid.
  // Forward: both fanin edges end with compatible registers -> valid.
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) != McVertexKind::kGate) continue;
    EXPECT_FALSE(g.backward_step_class(vid));
    EXPECT_TRUE(g.forward_step_class(vid));
  }
}

TEST(McGraphTest, ForwardStepMovesLayer) {
  const Netlist n = testing::fig1_circuit();
  McGraph g = build_mc_graph(n);
  VertexId gate;
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate) gate = vid;
  }
  const std::size_t before = g.total_edge_registers();
  g.apply_forward_step(gate);
  // 2 fanin registers consumed, 1 fanout register created.
  EXPECT_EQ(g.total_edge_registers(), before - 1);
  for (const EdgeId e : g.digraph().in_edges(gate)) {
    EXPECT_TRUE(g.regs(e).empty());
  }
  for (const EdgeId e : g.digraph().out_edges(gate)) {
    EXPECT_EQ(g.regs(e).size(), 1u);
  }
  // Now a backward step is valid again and restores the count.
  EXPECT_TRUE(g.backward_step_class(gate));
  g.apply_backward_step(gate);
  EXPECT_EQ(g.total_edge_registers(), before);
}

TEST(McGraphTest, IncompatibleLayerBlocksMove) {
  // Two registers with different enables feeding one gate: no forward step.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en1 = n.add_input("en1");
  const NetId en2 = n.add_input("en2");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  Register r1;
  r1.d = a;
  r1.clk = clk;
  r1.en = en1;
  const NetId q1 = n.add_register(std::move(r1));
  Register r2;
  r2.d = b;
  r2.clk = clk;
  r2.en = en2;
  const NetId q2 = n.add_register(std::move(r2));
  const NetId g_net = n.add_lut(TruthTable::and_n(2), {q1, q2});
  n.add_output("o", g_net);

  McGraph g = build_mc_graph(n);
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate) {
      EXPECT_FALSE(g.forward_step_class(vid));
    }
  }
}

TEST(McGraphTest, ConstantVertexCannotMoveRegisters) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId c = n.add_const(true);
  Register ff;
  ff.d = c;
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("o", q);
  McGraph g = build_mc_graph(n);
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate) {
      // The constant drives a register, but backward across the constant
      // would delete it: must be invalid.
      EXPECT_FALSE(g.backward_step_class(vid));
    }
  }
}

TEST(McGraphTest, SharedNetDuplicatesSequencePerPin) {
  // One register output read by two gates: two edges, same register.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  Register ff;
  ff.d = a;
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  const NetId g1 = n.add_lut(TruthTable::inverter(), {q});
  const NetId g2 = n.add_lut(TruthTable::buffer(), {q});
  n.add_output("o1", g1);
  n.add_output("o2", g2);
  const McGraph g = build_mc_graph(n);
  // Both fanin edges of the two gates carry the (copied) register.
  std::size_t reg_edges = 0;
  for (std::size_t e = 0; e < g.digraph().edge_count(); ++e) {
    if (!g.regs(EdgeId{static_cast<std::uint32_t>(e)}).empty()) ++reg_edges;
  }
  EXPECT_EQ(reg_edges, 2u);
}

}  // namespace
}  // namespace mcrt

// Property: mc-retiming a seeded workload-generator corpus through the
// bulk path preserves sequential equivalence for every circuit. Random
// simulation (sim/equivalence.h) checks every circuit; ternary BMC
// (verify/ternary_bmc.h) additionally checks, exhaustively up to a bounded
// depth, the circuits small enough for its BDD input budget.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pipeline/bulk_runner.h"
#include "sim/equivalence.h"
#include "verify/ternary_bmc.h"
#include "workload/generator.h"

namespace mcrt {
namespace {

constexpr std::size_t kCorpusSize = 12;
constexpr std::uint64_t kCorpusSeed = 99;

struct RetimedPair {
  std::string name;
  Netlist before;
  Netlist after;
};

/// Runs the corpus through the bulk engine once for the whole suite.
const std::vector<RetimedPair>& retimed_corpus() {
  static const std::vector<RetimedPair>* const pairs = [] {
    auto* out = new std::vector<RetimedPair>;
    std::vector<Netlist> originals;
    std::vector<BulkJob> jobs;
    for (const CircuitProfile& profile :
         random_suite(kCorpusSize, kCorpusSeed)) {
      Netlist netlist = generate_circuit(profile);
      originals.push_back(netlist);
      jobs.push_back(make_netlist_job(profile.name, std::move(netlist)));
    }
    BulkOptions options;
    options.jobs = 4;
    options.keep_netlists = true;
    // The generated RTL carries sync set/clear; decompose before retiming
    // like the bench preparation scripts do.
    BulkRunner runner("decompose-sync; sweep; retime(d=10)", options);
    BulkReport report = runner.run(jobs);
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      BulkJobResult& result = report.results[i];
      EXPECT_TRUE(result.success) << result.name << ": " << result.error;
      if (!result.success || !result.netlist) continue;
      out->push_back({result.name, std::move(originals[i]),
                      std::move(*result.netlist)});
    }
    return out;
  }();
  return *pairs;
}

TEST(BulkEquivalencePropertyTest, WholeCorpusRetimes) {
  EXPECT_EQ(retimed_corpus().size(), kCorpusSize);
}

TEST(BulkEquivalencePropertyTest, SimulationEquivalenceOnEveryCircuit) {
  for (const RetimedPair& pair : retimed_corpus()) {
    EquivalenceOptions options;
    options.runs = 3;
    options.cycles = 40;
    const EquivalenceResult result =
        check_sequential_equivalence(pair.before, pair.after, options);
    EXPECT_TRUE(result.equivalent)
        << pair.name << ": " << result.counterexample;
  }
}

TEST(BulkEquivalencePropertyTest, TernaryBmcOnBddSizedCircuits) {
  TernaryBmcOptions options;
  options.depth = 4;
  options.max_input_vars = 96;
  std::size_t checked = 0;
  std::size_t bmc_equivalent = 0;
  for (const RetimedPair& pair : retimed_corpus()) {
    // depth+1 unrollings of every primary input must fit the BDD budget;
    // skip the circuits the checker itself reports as unsupported.
    const TernaryBmcResult result =
        check_ternary_bmc(pair.before, pair.after, options);
    if (result.verdict == TernaryBmcResult::Verdict::kUnsupported) continue;
    ++checked;
    if (result.verdict == TernaryBmcResult::Verdict::kEquivalentUpToDepth) {
      ++bmc_equivalent;
      continue;
    }
    // Known ternary caveat (not a bulk-engine property): a load-enable
    // register moved *forward* starts as X, so with EN held low the
    // retimed circuit holds X where the original computed a defined value
    // from its own X registers (e.g. AND(X,0) = 0). The strict BMC counts
    // defined-vs-X as a mismatch; the retiming contract from any concrete
    // initial state still holds. For circuits with enables re-check in
    // x_refinement_ok mode, which treats lost definedness as benign but
    // still proves — exhaustively up to the depth — that no two *defined*
    // outputs ever disagree. Anything else is a real retiming bug.
    EXPECT_GT(pair.before.stats().with_en, 0u)
        << pair.name << ": BMC mismatch without enables: " << result.detail
        << " (cycle " << result.mismatch_cycle << ")";
    TernaryBmcOptions relaxed = options;
    relaxed.x_refinement_ok = true;
    const TernaryBmcResult rel =
        check_ternary_bmc(pair.before, pair.after, relaxed);
    EXPECT_EQ(rel.verdict, TernaryBmcResult::Verdict::kEquivalentUpToDepth)
        << pair.name << ": defined outputs disagree: " << rel.detail
        << " (cycle " << rel.mismatch_cycle << ")";
  }
  // The corpus is sized so a fair share of circuits is BMC-checkable and
  // most are exactly equivalent (the EN caveat is the exception).
  EXPECT_GE(checked, 6u);
  EXPECT_GE(bmc_equivalent, checked - 2);
}

}  // namespace
}  // namespace mcrt

#include "cslow/cslow.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "mcretime/register_class.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(CslowTransformTest, RejectsBadFactors) {
  const Netlist n = testing::fig1_circuit();
  EXPECT_FALSE(cslow_transform(n, 0).success);
  EXPECT_FALSE(cslow_transform(n, kMaxCslowFactor + 1).success);
}

TEST(CslowTransformTest, FactorOneIsControlDecompositionOnly) {
  const Netlist n = testing::fig1_circuit();
  const CslowResult r = cslow_transform(n, 1);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.netlist.register_count(), n.register_count());
  EXPECT_EQ(r.netlist.stats().with_en, 0u);
  EXPECT_EQ(r.netlist.stats().with_sync, 0u);
  EXPECT_TRUE(r.netlist.validate().empty());
}

TEST(CslowTransformTest, ReplicatesEveryRegisterIntoChains) {
  for (const std::uint32_t factor : {2u, 3u, 5u}) {
    const Netlist n = testing::fig1_circuit();
    const CslowResult r = cslow_transform(n, factor);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.netlist.register_count(), factor * n.register_count());
    EXPECT_EQ(r.stats.registers_before, n.register_count());
    EXPECT_EQ(r.stats.registers_after, factor * n.register_count());
    EXPECT_TRUE(r.netlist.validate().empty());
    // No EN / sync controls survive replication (they would stall or reset
    // all streams at once); async controls replicate verbatim.
    EXPECT_EQ(r.netlist.stats().with_en, 0u);
    EXPECT_EQ(r.netlist.stats().with_sync, 0u);
  }
}

TEST(CslowTransformTest, ChainStagesKeepClassSignature) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId ar = n.add_input("ar");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = ar;
  ff.async_val = ResetVal::kOne;
  ff.name = "ff";
  n.add_output("q", n.add_register(std::move(ff)));

  const CslowResult r = cslow_transform(n, 3);
  ASSERT_TRUE(r.success) << r.error;
  ASSERT_EQ(r.netlist.register_count(), 3u);
  EXPECT_EQ(r.stats.async_chains, 1u);
  for (const Register& reg : r.netlist.registers()) {
    EXPECT_TRUE(reg.async_ctrl.valid());
    EXPECT_EQ(reg.async_val, ResetVal::kOne);
    EXPECT_EQ(r.netlist.net(reg.clk).name, "clk");
  }
  // The whole chain lands in one register class, so mc-retiming's sharing
  // machinery can move and price it as a unit.
  const auto classes = classify_registers(r.netlist);
  EXPECT_EQ(classes.classes.size(), 1u);
}

TEST(CslowTransformTest, ReplicationRequiresDecomposedControls) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId en = n.add_input("en");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = en;
  ff.name = "ff";
  n.add_output("q", n.add_register(std::move(ff)));

  const CslowResult direct = replicate_registers(n, 2);
  EXPECT_FALSE(direct.success);
  EXPECT_NE(direct.error.find("load enable"), std::string::npos);

  const CslowResult full = cslow_transform(n, 2);
  ASSERT_TRUE(full.success) << full.error;
  EXPECT_EQ(full.stats.enables_decomposed, 1u);
}

TEST(CslowTransformTest, RandomCircuitsStayStructurallyValid) {
  RandomCircuitOptions opt;
  opt.use_en = true;
  opt.use_sync = true;
  opt.use_async = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Netlist n = random_sequential_circuit(seed, opt);
    for (const std::uint32_t factor : {2u, 3u}) {
      const CslowResult r = cslow_transform(n, factor);
      ASSERT_TRUE(r.success) << "seed " << seed << ": " << r.error;
      EXPECT_TRUE(r.netlist.validate().empty()) << "seed " << seed;
      EXPECT_EQ(r.netlist.register_count(), factor * n.register_count());
      EXPECT_FALSE(r.netlist.combinational_order() == std::nullopt);
    }
  }
}

}  // namespace
}  // namespace mcrt

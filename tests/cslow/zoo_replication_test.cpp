// EN-class enable semantics under register replication: the fuzz zoo's
// enable-chained and EN+sync cases must stay stream-equivalent for every
// C, and a single enable net shared across every class signature must be
// legal to replicate (each stream sees its own hold, never a neighbour's).
#include <gtest/gtest.h>

#include <cstdint>

#include "cslow/cslow.h"
#include "cslow/stream_check.h"
#include "fuzz/case_gen.h"
#include "mcretime/register_class.h"
#include "netlist/netlist.h"

namespace mcrt {
namespace {

StreamCheckOptions quick() {
  StreamCheckOptions opt;
  opt.cycles = 32;
  opt.runs = 8;
  opt.warmup = 6;
  return opt;
}

TEST(ZooReplicationTest, ZooChainIsStreamEquivalentAcrossFactors) {
  // The zoo holds one register per class signature plus the enable-chained
  // pair and the EN+sync combination — the replication-hostile shapes.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Netlist zoo = register_class_zoo(seed);
    ASSERT_GT(zoo.stats().with_en, 1u);  // the chained pair is present
    ASSERT_GT(zoo.stats().with_sync, 0u);
    for (const std::uint32_t factor : {2u, 3u}) {
      const CslowResult r = cslow_transform(zoo, factor);
      ASSERT_TRUE(r.success) << r.error;
      EXPECT_EQ(r.netlist.register_count(), factor * zoo.register_count());
      const StreamCheckResult eq =
          check_stream_equivalence(zoo, r.netlist, factor, quick());
      EXPECT_TRUE(eq.pass) << "seed " << seed << " C=" << factor << ": "
                           << eq.reason;
      EXPECT_FALSE(eq.skipped) << eq.reason;
      EXPECT_GT(eq.compared_defined_outputs, 0u);
    }
  }
}

/// One enable net shared by a register of every class signature: plain-EN,
/// EN chained behind EN, EN+sync-reset, EN+async-reset.
Netlist shared_enable_all_classes() {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  const NetId sc = n.add_input("sc");
  const NetId ac = n.add_input("ac");
  const NetId d = n.add_input("d");
  NetId chain = d;
  std::size_t i = 0;
  const auto add = [&](auto configure) {
    Register r;
    r.d = chain;
    r.clk = clk;
    r.en = en;  // every register gates on the same net
    r.name = "s" + std::to_string(i++);
    configure(r);
    chain = n.add_register(std::move(r));
  };
  add([](Register&) {});
  add([](Register&) {});  // enable-chained: stalls must compound per stream
  add([&](Register& r) {
    r.sync_ctrl = sc;
    r.sync_val = ResetVal::kZero;
  });
  add([&](Register& r) {
    r.async_ctrl = ac;
    r.async_val = ResetVal::kOne;
  });
  n.add_output("o", n.add_lut(TruthTable::xor_n(2), {chain, d}, "mix"));
  return n;
}

TEST(ZooReplicationTest, SharedEnableIsLegalAcrossAllClasses) {
  const Netlist input = shared_enable_all_classes();
  // Sharing one enable does not collapse the classes: the sync/async
  // controls still split them.
  const std::size_t classes_before = classify_registers(input).class_count();
  ASSERT_GE(classes_before, 3u);
  for (const std::uint32_t factor : {2u, 3u}) {
    const CslowResult r = cslow_transform(input, factor);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.stats.enables_decomposed, input.stats().with_en);
    EXPECT_EQ(r.netlist.register_count(), factor * input.register_count());
    // Decomposition strips EN and sync from every chain stage, so the
    // replicated netlist cannot have more classes than the original.
    EXPECT_EQ(r.netlist.stats().with_en, 0u);
    EXPECT_EQ(r.netlist.stats().with_sync, 0u);
    EXPECT_LE(classify_registers(r.netlist).class_count(), classes_before);
    const StreamCheckResult eq =
        check_stream_equivalence(input, r.netlist, factor, quick());
    EXPECT_TRUE(eq.pass) << "C=" << factor << ": " << eq.reason;
    EXPECT_FALSE(eq.skipped) << eq.reason;
  }
}

TEST(ZooReplicationTest, DualClockRigIsSkippedNotMisjudged) {
  const Netlist rig = dual_clock_rig(7);
  const CslowResult r = cslow_transform(rig, 2);
  ASSERT_TRUE(r.success) << r.error;
  const StreamCheckResult eq = check_stream_equivalence(rig, r.netlist, 2);
  EXPECT_TRUE(eq.skipped);
  EXPECT_TRUE(eq.pass);  // a skip is not a failure verdict
}

}  // namespace
}  // namespace mcrt

#include "cslow/stream_check.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "cslow/cslow.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

StreamCheckOptions quick() {
  StreamCheckOptions opt;
  opt.cycles = 32;
  opt.runs = 8;
  opt.warmup = 6;
  return opt;
}

TEST(StreamCheckTest, PureTransformIsStreamEquivalent) {
  for (const std::uint32_t factor : {2u, 3u}) {
    const Netlist n = testing::chain_circuit(4, 3);
    const CslowResult r = cslow_transform(n, factor);
    ASSERT_TRUE(r.success) << r.error;
    const StreamCheckResult eq =
        check_stream_equivalence(n, r.netlist, factor, quick());
    EXPECT_TRUE(eq.pass) << eq.reason;
    EXPECT_FALSE(eq.skipped);
    EXPECT_GT(eq.compared_defined_outputs, 0u);
  }
}

TEST(StreamCheckTest, EnableRegistersHoldPerStream) {
  // fig1's shared-EN registers: each stream must see its *own* hold
  // behaviour — the chain rotates while a stream's slot keeps its value.
  for (const std::uint32_t factor : {2u, 3u}) {
    const Netlist n = testing::fig1_circuit();
    const CslowResult r = cslow_transform(n, factor);
    ASSERT_TRUE(r.success) << r.error;
    const StreamCheckResult eq =
        check_stream_equivalence(n, r.netlist, factor, quick());
    EXPECT_TRUE(eq.pass) << eq.reason;
    EXPECT_GT(eq.compared_defined_outputs, 0u);
  }
}

TEST(StreamCheckTest, SyncResetDecomposesPerStream) {
  const Netlist n = testing::fig5_circuit();
  const CslowResult r = cslow_transform(n, 2);
  ASSERT_TRUE(r.success) << r.error;
  const StreamCheckResult eq = check_stream_equivalence(n, r.netlist, 2, quick());
  EXPECT_TRUE(eq.pass) << eq.reason;
  EXPECT_GT(eq.compared_defined_outputs, 0u);
}

TEST(StreamCheckTest, AsyncControlsArePhaseConstant) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  const NetId ar = n.add_input("arst");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = ar;
  ff.async_val = ResetVal::kZero;
  ff.name = "ff";
  n.add_output("q", n.add_register(std::move(ff)));

  const CslowResult r = cslow_transform(n, 3);
  ASSERT_TRUE(r.success) << r.error;
  const StreamCheckResult eq = check_stream_equivalence(n, r.netlist, 3, quick());
  EXPECT_TRUE(eq.pass) << eq.reason;
  EXPECT_FALSE(eq.skipped);
  EXPECT_GT(eq.compared_defined_outputs, 0u);
}

TEST(StreamCheckTest, RandomMixedClassCircuits) {
  RandomCircuitOptions opt;
  opt.use_en = true;
  opt.use_sync = true;
  opt.use_async = true;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Netlist n = random_sequential_circuit(seed, opt);
    for (const std::uint32_t factor : {2u, 3u}) {
      const CslowResult r = cslow_transform(n, factor);
      ASSERT_TRUE(r.success) << r.error;
      StreamCheckOptions sopt = quick();
      sopt.seed = seed;
      const StreamCheckResult eq =
          check_stream_equivalence(n, r.netlist, factor, sopt);
      EXPECT_TRUE(eq.pass)
          << "seed " << seed << " factor " << factor << ": " << eq.reason;
    }
  }
}

TEST(StreamCheckTest, WrongFactorIsDetected) {
  // A 2-slowed netlist presented as 3-slowed has the wrong stream timing;
  // the checker must notice rather than vacuously pass.
  const Netlist n = testing::chain_circuit(4, 3);
  const CslowResult r = cslow_transform(n, 2);
  ASSERT_TRUE(r.success) << r.error;
  const StreamCheckResult eq =
      check_stream_equivalence(n, r.netlist, 3, quick());
  EXPECT_FALSE(eq.pass);
  EXPECT_FALSE(eq.skipped);
}

TEST(StreamCheckTest, CorruptedLogicIsDetected) {
  const Netlist n = testing::chain_circuit(3, 2);
  CslowResult r = cslow_transform(n, 2);
  ASSERT_TRUE(r.success) << r.error;
  // Flip the first inverter to a buffer.
  for (std::size_t i = 0; i < r.netlist.node_count(); ++i) {
    Node& node = r.netlist.node(NodeId{static_cast<std::uint32_t>(i)});
    if (node.kind == NodeKind::kLut && node.fanins.size() == 1) {
      node.function = TruthTable::buffer();
      break;
    }
  }
  const StreamCheckResult eq =
      check_stream_equivalence(n, r.netlist, 2, quick());
  EXPECT_FALSE(eq.pass);
}

TEST(StreamCheckTest, MultiClockIsSkipped) {
  Netlist n;
  const NetId clk_a = n.add_input("clk_a");
  const NetId clk_b = n.add_input("clk_b");
  const NetId d = n.add_input("d");
  Register fa;
  fa.d = d;
  fa.clk = clk_a;
  fa.name = "fa";
  const NetId qa = n.add_register(std::move(fa));
  Register fb;
  fb.d = qa;
  fb.clk = clk_b;
  fb.name = "fb";
  n.add_output("q", n.add_register(std::move(fb)));

  const CslowResult r = cslow_transform(n, 2);
  ASSERT_TRUE(r.success) << r.error;
  const StreamCheckResult eq = check_stream_equivalence(n, r.netlist, 2, quick());
  EXPECT_TRUE(eq.pass);
  EXPECT_TRUE(eq.skipped);
}

TEST(StreamCheckTest, RegisterFedAsyncConeIsSkipped) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  Register timer;
  timer.d = d;
  timer.clk = clk;
  timer.name = "timer";
  const NetId qt = n.add_register(std::move(timer));
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.async_ctrl = qt;  // async control computed from state
  ff.async_val = ResetVal::kOne;
  ff.name = "ff";
  n.add_output("q", n.add_register(std::move(ff)));

  const CslowResult r = cslow_transform(n, 2);
  ASSERT_TRUE(r.success) << r.error;
  const StreamCheckResult eq = check_stream_equivalence(n, r.netlist, 2, quick());
  EXPECT_TRUE(eq.pass);
  EXPECT_TRUE(eq.skipped);
}

TEST(StreamCheckVerifyTest, CombinedSimAndBmcPasses) {
  const Netlist n = testing::fig1_circuit();
  const CslowResult r = cslow_transform(n, 2);
  ASSERT_TRUE(r.success) << r.error;
  CslowVerifyOptions opt;
  opt.sim = quick();
  const CslowVerifyResult v = verify_cslow(n, r.netlist, 2, opt);
  EXPECT_TRUE(v.pass) << v.sim.reason << " / " << v.bmc_detail;
  EXPECT_FALSE(v.bmc_skipped) << v.bmc_detail;
}

TEST(StreamCheckVerifyTest, BmcCatchesCorruption) {
  const Netlist n = testing::chain_circuit(2, 1);
  CslowResult r = cslow_transform(n, 2);
  ASSERT_TRUE(r.success) << r.error;
  for (std::size_t i = 0; i < r.netlist.node_count(); ++i) {
    Node& node = r.netlist.node(NodeId{static_cast<std::uint32_t>(i)});
    if (node.kind == NodeKind::kLut && node.fanins.size() == 1) {
      node.function = TruthTable::buffer();
      break;
    }
  }
  CslowVerifyOptions opt;
  opt.sim = quick();
  const CslowVerifyResult v = verify_cslow(n, r.netlist, 2, opt);
  EXPECT_FALSE(v.pass);
}

}  // namespace
}  // namespace mcrt

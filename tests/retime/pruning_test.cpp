// Cross-check of the Shenoy-Rudell (+ Maheshwari-Sapatnekar bound) pruning
// against the unpruned reference: for every candidate period on random
// graphs, the pruned and full constraint systems must have the same
// satisfiability, and every satisfying assignment of the pruned system must
// satisfy the full one (implied-constraint property).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "graph/difference_constraints.h"
#include "retime/period_constraints.h"

namespace mcrt {
namespace {

RetimeGraph random_graph(std::uint64_t seed, std::size_t vertices,
                         bool with_bounds) {
  Rng rng(seed);
  RetimeGraph g;
  std::vector<VertexId> vs;
  for (std::size_t i = 0; i < vertices; ++i) {
    vs.push_back(g.add_vertex(1 + static_cast<std::int64_t>(rng.below(9))));
  }
  g.add_edge(g.host(), vs[0], 0);
  for (std::size_t i = 0; i + 1 < vertices; ++i) {
    g.add_edge(vs[i], vs[i + 1], rng.below(3));
  }
  for (std::size_t i = 0; i < vertices; ++i) {
    const std::size_t a = rng.below(vertices);
    const std::size_t b = rng.below(vertices);
    if (a < b) {
      g.add_edge(vs[a], vs[b], rng.below(2));
    } else if (a > b) {
      g.add_edge(vs[a], vs[b], 1 + rng.below(2));
    }
  }
  g.add_edge(vs[vertices - 1], g.host(), 0);
  if (with_bounds) {
    for (std::size_t i = 0; i < vertices; ++i) {
      g.set_bounds(vs[i], -static_cast<std::int64_t>(rng.below(3)),
                   static_cast<std::int64_t>(rng.below(3)));
    }
  }
  return g;
}

class PruningProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(PruningProperty, SameFeasibilityAsUnpruned) {
  const auto [seed, with_bounds] = GetParam();
  const RetimeGraph g = random_graph(seed, 10, with_bounds);
  const auto candidates = candidate_periods(g);
  for (const std::int64_t phi : candidates) {
    std::vector<DifferenceConstraint> pruned;
    generate_circuit_constraints(g, pruned);
    generate_period_constraints(g, phi, pruned);
    std::vector<DifferenceConstraint> full;
    generate_circuit_constraints(g, full);
    generate_period_constraints_unpruned(g, phi, full);
    ASSERT_LE(pruned.size(), full.size());

    const auto pruned_solution =
        solve_difference_constraints(g.vertex_count(), pruned);
    const auto full_solution =
        solve_difference_constraints(g.vertex_count(), full);
    ASSERT_EQ(static_cast<bool>(pruned_solution),
              static_cast<bool>(full_solution))
        << "seed " << seed << " phi " << phi;
    if (!pruned_solution) continue;
    // The pruned system's solution must satisfy every full constraint
    // (the dropped ones are implied).
    for (const auto& c : full) {
      if (c.u == c.v) continue;
      EXPECT_LE((*pruned_solution)[c.u] - (*pruned_solution)[c.v], c.bound)
          << "seed " << seed << " phi " << phi << " pair (" << c.u << ","
          << c.v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PruningProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 11),
                       ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_bounded" : "_free");
    });

}  // namespace
}  // namespace mcrt

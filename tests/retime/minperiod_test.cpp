#include "retime/minperiod.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "retime/feas.h"

namespace mcrt {
namespace {

RetimeGraph correlator() {
  RetimeGraph g;
  const VertexId v1 = g.add_vertex(7, "v7");
  const VertexId v2 = g.add_vertex(3, "a3");
  const VertexId v3 = g.add_vertex(3, "b3");
  const VertexId v4 = g.add_vertex(3, "c3");
  g.add_edge(v1, v2, 1);
  g.add_edge(v2, v3, 1);
  g.add_edge(v3, v4, 1);
  g.add_edge(v4, v1, 0);
  return g;
}

/// Random legal graph: pipeline + feedback with host closure.
RetimeGraph random_graph(std::uint64_t seed, std::size_t vertices) {
  Rng rng(seed);
  RetimeGraph g;
  std::vector<VertexId> vs;
  for (std::size_t i = 0; i < vertices; ++i) {
    vs.push_back(g.add_vertex(1 + static_cast<std::int64_t>(rng.below(9))));
  }
  // Forward chain guarantees connectivity; extra random forward edges;
  // a few back edges with weight >= 1 (legal cycles).
  g.add_edge(g.host(), vs[0], 0);
  for (std::size_t i = 0; i + 1 < vertices; ++i) {
    g.add_edge(vs[i], vs[i + 1], rng.below(3));
  }
  for (std::size_t i = 0; i < vertices; ++i) {
    const std::size_t a = rng.below(vertices);
    const std::size_t b = rng.below(vertices);
    if (a < b) {
      g.add_edge(vs[a], vs[b], rng.below(2));
    } else if (a > b) {
      g.add_edge(vs[a], vs[b], 1 + rng.below(2));
    }
  }
  g.add_edge(vs[vertices - 1], g.host(), 0);
  return g;
}

TEST(MinPeriodTest, CorrelatorOptimum) {
  const RetimeGraph g = correlator();
  const RetimeSolution solution = minperiod_retime(g);
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.period, 7);  // v1's own delay is the floor
  EXPECT_TRUE(g.check_legal(solution.r).empty());
  EXPECT_EQ(g.period(solution.r), 7);
}

TEST(MinPeriodTest, NeverWorseThanCurrent) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RetimeGraph g = random_graph(seed, 12);
    const RetimeSolution solution = minperiod_retime(g);
    ASSERT_TRUE(solution.feasible) << "seed " << seed;
    EXPECT_LE(solution.period, g.period()) << "seed " << seed;
    EXPECT_TRUE(g.check_legal(solution.r).empty())
        << "seed " << seed << ": " << g.check_legal(solution.r);
    EXPECT_EQ(g.period(solution.r), solution.period) << "seed " << seed;
  }
}

TEST(MinPeriodTest, OptimalityAgainstFeasScan) {
  // The period returned must equal the smallest phi FEAS accepts.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RetimeGraph g = random_graph(seed, 9);
    const RetimeSolution solution = minperiod_retime(g);
    ASSERT_TRUE(solution.feasible);
    EXPECT_TRUE(feas_check(g, solution.period));
    EXPECT_FALSE(feas_check(g, solution.period - 1))
        << "seed " << seed << " claims " << solution.period
        << " but less is feasible";
  }
}

TEST(MinPeriodTest, PinnedBoundsRestrictSolution) {
  RetimeGraph g = correlator();
  // Pin every vertex: retiming cannot move anything, so the minimum period
  // equals the current period.
  for (std::uint32_t v = 1; v <= 4; ++v) {
    g.set_bounds(VertexId{v}, 0, 0);
  }
  const RetimeSolution solution = minperiod_retime(g);
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.period, g.period());
  for (std::uint32_t v = 1; v <= 4; ++v) {
    EXPECT_EQ(solution.r[v], 0);
  }
}

TEST(MinPeriodTest, PartialBoundsBetweenExtremes) {
  RetimeGraph g = correlator();
  g.set_bounds(VertexId{2}, 0, 0);  // pin only one vertex
  const RetimeSolution bounded = minperiod_retime(g);
  RetimeGraph free_graph = correlator();
  const RetimeSolution free_solution = minperiod_retime(free_graph);
  ASSERT_TRUE(bounded.feasible);
  EXPECT_GE(bounded.period, free_solution.period);
  EXPECT_LE(bounded.period, g.period());
  EXPECT_TRUE(g.check_legal(bounded.r).empty());
}

TEST(MinPeriodTest, BoundedMatchesUnboundedWhenBoundsAreLoose) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RetimeGraph g = random_graph(seed, 10);
    for (std::size_t v = 1; v < g.vertex_count(); ++v) {
      g.set_bounds(VertexId{static_cast<std::uint32_t>(v)}, -100, 100);
    }
    RetimeGraph unbounded = random_graph(seed, 10);
    const RetimeSolution a = minperiod_retime(g);
    const RetimeSolution b = minperiod_retime(unbounded);
    ASSERT_TRUE(a.feasible);
    EXPECT_EQ(a.period, b.period) << "seed " << seed;
  }
}

TEST(MinPeriodTest, ZeroWeightChainDelayNotUnderestimated) {
  // Regression: D(u,v) must be the max delay among min-weight paths. With
  // zero-weight edges a -> c and a -> b -> c, the longer-delay route via b
  // defines D(a,c); a naive lexicographic Dijkstra can settle c with the
  // direct route's smaller delay first and emit too-weak constraints,
  // making the constraint-based (bounded) path report an unachievable
  // period. Compare against FEAS, which computes arrivals exactly.
  auto build = [] {
    RetimeGraph g;
    const VertexId a = g.add_vertex(5, "a");
    const VertexId b = g.add_vertex(3, "b");
    const VertexId c = g.add_vertex(10, "c");
    g.add_edge(g.host(), a, 2);
    g.add_edge(a, b, 0);
    g.add_edge(b, c, 0);
    g.add_edge(a, c, 0);
    g.add_edge(c, g.host(), 0);
    return g;
  };
  const RetimeSolution unbounded = minperiod_retime(build());
  RetimeGraph bounded_graph = build();
  for (std::uint32_t v = 1; v <= 3; ++v) {
    bounded_graph.set_bounds(VertexId{v}, -10, 10);  // loose: same optimum
  }
  const RetimeSolution bounded = minperiod_retime(bounded_graph);
  ASSERT_TRUE(unbounded.feasible && bounded.feasible);
  EXPECT_EQ(bounded.period, unbounded.period);
  EXPECT_EQ(bounded_graph.period(bounded.r), bounded.period);
}

TEST(MinPeriodTest, BoundedSolutionAchievesClaimedPeriod) {
  // Stronger randomized regression for the same bug: on bounded graphs the
  // labels returned must actually realize the claimed period.
  for (std::uint64_t seed = 50; seed <= 70; ++seed) {
    RetimeGraph g = random_graph(seed, 12);
    for (std::size_t v = 1; v < g.vertex_count(); ++v) {
      g.set_bounds(VertexId{static_cast<std::uint32_t>(v)}, -3, 3);
    }
    const RetimeSolution solution = minperiod_retime(g);
    ASSERT_TRUE(solution.feasible) << "seed " << seed;
    EXPECT_EQ(g.period(solution.r), solution.period) << "seed " << seed;
  }
}

TEST(MinPeriodTest, BoundedFeasibleHonorsBounds) {
  RetimeGraph g = correlator();
  g.set_bounds(VertexId{1}, 0, 0);
  const auto r = bounded_feasible(g, g.period());
  ASSERT_TRUE(r);
  EXPECT_TRUE(g.check_legal(*r).empty()) << g.check_legal(*r);
}

}  // namespace
}  // namespace mcrt

#include "retime/feas.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

/// The classic Leiserson-Saxe correlator: ring of vertices
/// d = 0(host-ish element replaced), we use delays 3,3,3,7 style.
RetimeGraph correlator() {
  RetimeGraph g;
  const VertexId v1 = g.add_vertex(7, "v7");
  const VertexId v2 = g.add_vertex(3, "a3");
  const VertexId v3 = g.add_vertex(3, "b3");
  const VertexId v4 = g.add_vertex(3, "c3");
  // Ring with registers: v1 -> v2 -> v3 -> v4 -> v1, 1 register on each of
  // the three "delay" edges (the LS correlator has weights 1,1,0... use a
  // shape whose optimum is known).
  g.add_edge(v1, v2, 1);
  g.add_edge(v2, v3, 1);
  g.add_edge(v3, v4, 1);
  g.add_edge(v4, v1, 0);
  return g;
}

TEST(FeasTest, CurrentPeriodAlwaysFeasible) {
  const RetimeGraph g = correlator();
  const std::int64_t period = g.period();
  const auto r = feas_check(g, period);
  ASSERT_TRUE(r);
  EXPECT_LE(g.period(*r), period);
}

TEST(FeasTest, FindsBetterPeriod) {
  const RetimeGraph g = correlator();
  // Current: v4 -> v1 zero-weight: 3 + 7 = 10. After retiming, 7 + 3 = 10?
  // Moving the register on v3->v4 to v4->v1 gives zero path v3->v4 = 6 and
  // v1 alone 7 -> period 7 is feasible.
  const auto r = feas_check(g, 7);
  ASSERT_TRUE(r);
  EXPECT_LE(g.period(*r), 7);
  EXPECT_TRUE(g.check_legal(*r).empty());
}

TEST(FeasTest, InfeasibleBelowMaxDelay) {
  const RetimeGraph g = correlator();
  EXPECT_FALSE(feas_check(g, 6));  // v1 alone has delay 7
}

TEST(FeasTest, TotalCycleDelayBound) {
  // A ring with total delay 16 and 3 registers: period >= ceil(16/3) = 6
  // is a classic lower bound; 10 must be feasible, 3 must not.
  const RetimeGraph g = correlator();
  EXPECT_TRUE(feas_check(g, 10));
  EXPECT_FALSE(feas_check(g, 3));
}

TEST(FeasTest, ReturnsLegalRetiming) {
  const RetimeGraph g = correlator();
  for (std::int64_t phi = 7; phi <= 16; ++phi) {
    const auto r = feas_check(g, phi);
    if (r) {
      EXPECT_TRUE(g.check_legal(*r).empty())
          << "phi=" << phi << ": " << g.check_legal(*r);
    }
  }
}

}  // namespace
}  // namespace mcrt

// Property test: compute_wd_from_source (Dijkstra + tight-DAG longest
// path) against a lexicographic Bellman-Ford fixpoint reference. W must be
// the minimum path weight and D the maximum delay among minimum-weight
// paths - the quantities the Leiserson-Saxe period constraints are built
// from. Guards the regression where a naive max-delay tiebreak settled
// low-delay vertices too early across zero-weight edges.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "retime/period_constraints.h"

namespace mcrt {
namespace {

RetimeGraph random_graph(std::uint64_t seed, std::size_t vertices,
                         std::int64_t max_delay) {
  Rng rng(seed);
  RetimeGraph g;
  std::vector<VertexId> vs;
  for (std::size_t i = 0; i < vertices; ++i) {
    vs.push_back(
        g.add_vertex(1 + static_cast<std::int64_t>(rng.below(
                         static_cast<std::uint64_t>(max_delay)))));
  }
  g.add_edge(g.host(), vs[0], 0);
  for (std::size_t i = 0; i + 1 < vertices; ++i) {
    g.add_edge(vs[i], vs[i + 1], rng.below(3));
  }
  for (std::size_t i = 0; i < 2 * vertices; ++i) {
    const std::size_t a = rng.below(vertices);
    const std::size_t b = rng.below(vertices);
    if (a < b) {
      g.add_edge(vs[a], vs[b], rng.below(2));  // many zero-weight edges
    } else if (a > b) {
      g.add_edge(vs[a], vs[b], 1 + rng.below(2));
    }
  }
  g.add_edge(vs[vertices - 1], g.host(), 0);
  return g;
}

/// Reference: lexicographic Bellman-Ford iterated to a fixpoint.
WdLabels reference_wd(const RetimeGraph& g, VertexId source) {
  const Digraph& dg = g.digraph();
  const std::size_t n = g.vertex_count();
  constexpr std::int64_t kInf = INT64_MAX / 4;
  WdLabels labels;
  labels.weight.assign(n, kInf);
  labels.delay.assign(n, -1);
  labels.reached.assign(n, false);
  labels.weight[source.index()] = 0;
  labels.delay[source.index()] = g.delay(source);
  labels.reached[source.index()] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t e = 0; e < dg.edge_count(); ++e) {
      const EdgeId id{static_cast<std::uint32_t>(e)};
      const auto from = dg.from(id);
      const auto to = dg.to(id);
      if (from == g.host()) continue;  // host is sink-only
      if (!labels.reached[from.index()]) continue;
      const std::int64_t cw = labels.weight[from.index()] + g.weight(id);
      const std::int64_t cd = labels.delay[from.index()] + g.delay(to);
      if (!labels.reached[to.index()] || cw < labels.weight[to.index()] ||
          (cw == labels.weight[to.index()] &&
           cd > labels.delay[to.index()])) {
        labels.reached[to.index()] = true;
        labels.weight[to.index()] = cw;
        labels.delay[to.index()] = cd;
        changed = true;
      }
    }
  }
  return labels;
}

class WdLabelsProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(WdLabelsProperty, MatchesBellmanFordReference) {
  const auto [seed, max_delay] = GetParam();
  const RetimeGraph g = random_graph(seed, 12, max_delay);
  for (std::size_t s = 1; s < g.vertex_count(); ++s) {
    const VertexId source{static_cast<std::uint32_t>(s)};
    const WdLabels fast = compute_wd_from_source(g, source);
    const WdLabels slow = reference_wd(g, source);
    for (std::size_t v = 0; v < g.vertex_count(); ++v) {
      ASSERT_EQ(fast.reached[v], slow.reached[v])
          << "seed " << seed << " src " << s << " v " << v;
      if (!fast.reached[v]) continue;
      EXPECT_EQ(fast.weight[v], slow.weight[v])
          << "seed " << seed << " src " << s << " v " << v;
      EXPECT_EQ(fast.delay[v], slow.delay[v])
          << "seed " << seed << " src " << s << " v " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, WdLabelsProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 16),
                       ::testing::Values(1, 5, 9)));

TEST(WdLabelsTest, ZeroWeightDiamond) {
  // The exact shape of the regression: both routes weight 0, D must take
  // the longer-delay one.
  RetimeGraph g;
  const VertexId a = g.add_vertex(5, "a");
  const VertexId b = g.add_vertex(3, "b");
  const VertexId c = g.add_vertex(10, "c");
  g.add_edge(a, b, 0);
  g.add_edge(b, c, 0);
  g.add_edge(a, c, 0);
  const WdLabels labels = compute_wd_from_source(g, a);
  EXPECT_EQ(labels.weight[c.index()], 0);
  EXPECT_EQ(labels.delay[c.index()], 18);  // 5 + 3 + 10
}

TEST(WdLabelsTest, RegisterBreaksTightPath) {
  // With weight on the longer route, the *minimum-weight* path defines D
  // even though the heavier path has more delay.
  RetimeGraph g;
  const VertexId a = g.add_vertex(5, "a");
  const VertexId b = g.add_vertex(3, "b");
  const VertexId c = g.add_vertex(10, "c");
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 0);
  g.add_edge(a, c, 0);
  const WdLabels labels = compute_wd_from_source(g, a);
  EXPECT_EQ(labels.weight[c.index()], 0);
  EXPECT_EQ(labels.delay[c.index()], 15);  // direct: 5 + 10
}

}  // namespace
}  // namespace mcrt

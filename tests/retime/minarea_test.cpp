#include "retime/minarea.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "retime/minperiod.h"

namespace mcrt {
namespace {

RetimeGraph random_graph(std::uint64_t seed, std::size_t vertices) {
  Rng rng(seed);
  RetimeGraph g;
  std::vector<VertexId> vs;
  for (std::size_t i = 0; i < vertices; ++i) {
    vs.push_back(g.add_vertex(1 + static_cast<std::int64_t>(rng.below(5))));
  }
  g.add_edge(g.host(), vs[0], 0);
  for (std::size_t i = 0; i + 1 < vertices; ++i) {
    g.add_edge(vs[i], vs[i + 1], rng.below(3));
  }
  for (std::size_t i = 0; i < vertices; ++i) {
    const std::size_t a = rng.below(vertices);
    const std::size_t b = rng.below(vertices);
    if (a < b) {
      g.add_edge(vs[a], vs[b], rng.below(2));
    } else if (a > b) {
      g.add_edge(vs[a], vs[b], 1 + rng.below(2));
    }
  }
  g.add_edge(vs[vertices - 1], g.host(), 0);
  return g;
}

/// Exhaustive minimum shared-register area over all legal retimings with
/// labels in [-limit, limit]; reference oracle for small graphs.
std::int64_t brute_force_minarea(const RetimeGraph& g, std::int64_t phi,
                                 std::int64_t limit) {
  const std::size_t n = g.vertex_count();
  std::vector<std::int64_t> r(n, 0);
  std::int64_t best = INT64_MAX;
  // Odometer over (2*limit+1)^(n-1) assignments (host fixed at 0).
  std::vector<std::int64_t> digits(n - 1, -limit);
  while (true) {
    for (std::size_t i = 0; i < n - 1; ++i) r[i + 1] = digits[i];
    if (g.check_legal(r).empty()) {
      bool period_ok = true;
      try {
        period_ok = g.period(r) <= phi;
      } catch (const std::logic_error&) {
        period_ok = false;
      }
      if (period_ok) best = std::min(best, g.shared_register_area(r));
    }
    std::size_t i = 0;
    for (; i < n - 1; ++i) {
      if (++digits[i] <= limit) break;
      digits[i] = -limit;
    }
    if (i == n - 1) break;
  }
  return best;
}

TEST(MinAreaTest, SolutionIsLegalAndMeetsPeriod) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RetimeGraph g = random_graph(seed, 10);
    const RetimeSolution mp = minperiod_retime(g);
    ASSERT_TRUE(mp.feasible);
    const MinAreaResult ma = minarea_retime(g, mp.period);
    ASSERT_TRUE(ma.feasible) << "seed " << seed;
    EXPECT_TRUE(g.check_legal(ma.r).empty())
        << "seed " << seed << ": " << g.check_legal(ma.r);
    EXPECT_LE(g.period(ma.r), mp.period) << "seed " << seed;
  }
}

TEST(MinAreaTest, NeverWorseThanMinPeriodSolution) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RetimeGraph g = random_graph(seed, 10);
    const RetimeSolution mp = minperiod_retime(g);
    const MinAreaResult ma = minarea_retime(g, mp.period);
    ASSERT_TRUE(ma.feasible);
    EXPECT_LE(ma.area, g.shared_register_area(mp.r)) << "seed " << seed;
  }
}

TEST(MinAreaTest, MatchesBruteForceOnSmallGraphs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RetimeGraph g = random_graph(seed, 5);
    const RetimeSolution mp = minperiod_retime(g);
    ASSERT_TRUE(mp.feasible);
    const MinAreaResult ma = minarea_retime(g, mp.period);
    ASSERT_TRUE(ma.feasible) << "seed " << seed;
    const std::int64_t best = brute_force_minarea(g, mp.period, 3);
    EXPECT_EQ(ma.area, best) << "seed " << seed;
  }
}

TEST(MinAreaTest, RelaxedPeriodAllowsSmallerArea) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RetimeGraph g = random_graph(seed, 10);
    const RetimeSolution mp = minperiod_retime(g);
    const MinAreaResult tight = minarea_retime(g, mp.period);
    const MinAreaResult loose = minarea_retime(g, g.period() + 100);
    ASSERT_TRUE(tight.feasible);
    ASSERT_TRUE(loose.feasible);
    EXPECT_LE(loose.area, tight.area) << "seed " << seed;
  }
}

TEST(MinAreaTest, SharingExploitedAtFanout) {
  // One driver with two fanout branches, each needing one register for the
  // period: sharing places them on a common chain (area 1, not 2).
  RetimeGraph g;
  const VertexId src = g.add_vertex(0, "pi");
  const VertexId a = g.add_vertex(5, "a");
  const VertexId b1 = g.add_vertex(5, "b1");
  const VertexId b2 = g.add_vertex(5, "b2");
  const VertexId po1 = g.add_vertex(0, "po1");
  const VertexId po2 = g.add_vertex(0, "po2");
  g.add_edge(g.host(), src, 0);
  g.add_edge(src, a, 0);
  g.add_edge(a, b1, 1);
  g.add_edge(a, b2, 1);
  g.add_edge(b1, po1, 0);
  g.add_edge(b2, po2, 0);
  g.add_edge(po1, g.host(), 0);
  g.add_edge(po2, g.host(), 0);
  const MinAreaResult ma = minarea_retime(g, 5);
  ASSERT_TRUE(ma.feasible);
  EXPECT_EQ(ma.area, 1);
}

TEST(MinAreaTest, BoundsRespected) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RetimeGraph g = random_graph(seed, 8);
    for (std::size_t v = 1; v < g.vertex_count(); ++v) {
      g.set_bounds(VertexId{static_cast<std::uint32_t>(v)}, -1, 1);
    }
    const RetimeSolution mp = minperiod_retime(g);
    ASSERT_TRUE(mp.feasible);
    const MinAreaResult ma = minarea_retime(g, mp.period);
    ASSERT_TRUE(ma.feasible) << "seed " << seed;
    for (std::size_t v = 1; v < g.vertex_count(); ++v) {
      EXPECT_GE(ma.r[v], -1);
      EXPECT_LE(ma.r[v], 1);
    }
  }
}

TEST(MinAreaTest, ReportedAreaMatchesComputed) {
  const RetimeGraph g = random_graph(3, 10);
  const RetimeSolution mp = minperiod_retime(g);
  const MinAreaResult ma = minarea_retime(g, mp.period);
  ASSERT_TRUE(ma.feasible);
  EXPECT_EQ(ma.area, g.shared_register_area(ma.r));
}

}  // namespace
}  // namespace mcrt

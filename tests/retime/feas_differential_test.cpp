// CSR FEAS vs the seed's legacy FEAS: both compute the same unique arrival
// fixed point, so they must agree probe-for-probe and label-for-label (not
// merely on feasibility). This differential is permanent — the legacy
// engine stays compiled as the oracle for exactly this test and the bench.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mcretime/lower.h"
#include "mcretime/maximal_retiming.h"
#include "mcretime/mcgraph.h"
#include "retime/feas.h"
#include "retime/minperiod.h"
#include "retime/period_constraints.h"
#include "workload/generator.h"

namespace mcrt {
namespace {

// Lowered retiming graph of a workload circuit, with unit LUT delays so
// the timing problem is non-degenerate.
RetimeGraph lowered_graph(const CircuitProfile& profile) {
  Netlist circuit = generate_circuit(profile);
  for (std::uint32_t v = 0; v < circuit.node_count(); ++v) {
    if (circuit.node(NodeId{v}).kind == NodeKind::kLut) {
      circuit.set_node_delay(NodeId{v}, 10);
    }
  }
  const McGraph mc = build_mc_graph(circuit);
  const MaximalRetimingResult maximal = compute_mc_bounds(mc);
  return lower_to_retime_graph(mc, maximal.bounds);
}

void expect_probe_agreement(const RetimeGraph& graph, std::int64_t phi) {
  const auto legacy = feas_check(graph, phi, FeasImpl::kLegacy);
  const auto csr = feas_check(graph, phi, FeasImpl::kCsr);
  ASSERT_EQ(legacy.has_value(), csr.has_value()) << "phi=" << phi;
  if (legacy) {
    EXPECT_EQ(*legacy, *csr) << "phi=" << phi;
    // FEAS is the *unbounded* oracle (class bounds are the caller's
    // business), so legality here means w_r >= 0 and the target period —
    // not check_legal(), which also enforces bounds.
    for (std::size_t e = 0; e < graph.edge_count(); ++e) {
      ASSERT_GE(graph.retimed_weight(EdgeId{static_cast<std::uint32_t>(e)},
                                     *csr),
                0)
          << "phi=" << phi;
    }
    EXPECT_LE(graph.period(*csr), phi);
  }
}

TEST(FeasDifferentialTest, HandGraphAllCandidates) {
  RetimeGraph g;
  const VertexId v1 = g.add_vertex(7, "v7");
  const VertexId v2 = g.add_vertex(3, "a3");
  const VertexId v3 = g.add_vertex(3, "b3");
  const VertexId v4 = g.add_vertex(3, "c3");
  g.add_edge(v1, v2, 1);
  g.add_edge(v2, v3, 1);
  g.add_edge(v3, v4, 1);
  g.add_edge(v4, v1, 0);
  // Host edges pin the interface like lowered graphs do.
  g.add_edge(g.host(), v1, 1);
  g.add_edge(v4, g.host(), 0);
  for (std::int64_t phi = 1; phi <= 20; ++phi) {
    expect_probe_agreement(g, phi);
  }
}

TEST(FeasDifferentialTest, WorkloadGraphsAgreeOnEveryCandidate) {
  std::vector<CircuitProfile> profiles = paper_suite();
  profiles.resize(3);
  const std::vector<CircuitProfile> extra = random_suite(5, 99);
  profiles.insert(profiles.end(), extra.begin(), extra.end());
  for (const CircuitProfile& profile : profiles) {
    const RetimeGraph graph = lowered_graph(profile);
    const std::vector<std::int64_t> candidates = candidate_periods(graph);
    // Every distinct path delay, feasible and infeasible alike (decimated
    // to keep the suite fast on the big circuits).
    const std::size_t stride =
        candidates.size() > 64 ? candidates.size() / 64 : 1;
    for (std::size_t i = 0; i < candidates.size(); i += stride) {
      expect_probe_agreement(graph, candidates[i]);
    }
  }
}

TEST(FeasDifferentialTest, MinperiodIdenticalThroughBothEngines) {
  for (const CircuitProfile& profile : random_suite(6, 123)) {
    const RetimeGraph graph = lowered_graph(profile);
    const RetimeSolution legacy = minperiod_retime(graph, FeasImpl::kLegacy);
    const RetimeSolution csr = minperiod_retime(graph, FeasImpl::kCsr);
    ASSERT_EQ(legacy.feasible, csr.feasible) << profile.name;
    EXPECT_EQ(legacy.period, csr.period) << profile.name;
    EXPECT_EQ(legacy.r, csr.r) << profile.name;
  }
}

TEST(FeasDifferentialTest, InfeasiblePeriodRejectedByBoth) {
  const RetimeGraph graph = lowered_graph(random_suite(1, 5).front());
  // A period below the largest single-vertex delay is never feasible.
  expect_probe_agreement(graph, 1);
}

}  // namespace
}  // namespace mcrt

#include "retime/retime_graph.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

/// The Leiserson-Saxe correlator example (simplified): a ring
/// host -> v1 -> v2 -> v3 -> host with weights on the ring.
RetimeGraph ring_graph() {
  RetimeGraph g;
  const VertexId v1 = g.add_vertex(3, "v1");
  const VertexId v2 = g.add_vertex(3, "v2");
  const VertexId v3 = g.add_vertex(7, "v3");
  g.add_edge(g.host(), v1, 1);
  g.add_edge(v1, v2, 1);
  g.add_edge(v2, v3, 0);
  g.add_edge(v3, g.host(), 0);
  return g;
}

TEST(RetimeGraphTest, PeriodOfCurrentWeights) {
  const RetimeGraph g = ring_graph();
  // Zero-weight path v2 -> v3: delay 3 + 7 = 10.
  EXPECT_EQ(g.period(), 10);
}

TEST(RetimeGraphTest, RetimedWeights) {
  RetimeGraph g = ring_graph();
  // r = (host=0, v1=0, v2=0, v3=1): moves a register from v3's fanout...
  // w(v2->v3) becomes 0 + 1 - 0 = 1; w(v3->host) becomes 0 + 0 - 1 = -1:
  // illegal.
  std::vector<std::int64_t> r = {0, 0, 0, 1};
  EXPECT_EQ(g.retimed_weight(EdgeId{2}, r), 1);
  EXPECT_EQ(g.retimed_weight(EdgeId{3}, r), -1);
  EXPECT_FALSE(g.check_legal(r).empty());
}

TEST(RetimeGraphTest, LegalRetimingImprovesPeriod) {
  RetimeGraph g = ring_graph();
  // Move the register on v1->v2 to v2->v3: r(v2) = -1... edge v1->v2
  // becomes 1 + (-1) - 0 = 0; edge v2->v3 becomes 0 + 0 - (-1) = 1.
  const std::vector<std::int64_t> r = {0, 0, -1, 0};
  EXPECT_TRUE(g.check_legal(r).empty()) << g.check_legal(r);
  // Critical zero-weight path now v1 -> v2 = 6 and v3 alone = 7.
  EXPECT_EQ(g.period(r), 7);
}

TEST(RetimeGraphTest, ApplyRewritesWeights) {
  RetimeGraph g = ring_graph();
  const std::vector<std::int64_t> r = {0, 0, -1, 0};
  g.apply(r);
  EXPECT_EQ(g.weight(EdgeId{1}), 0);
  EXPECT_EQ(g.weight(EdgeId{2}), 1);
  EXPECT_EQ(g.period(), 7);
}

TEST(RetimeGraphTest, ApplyRejectsIllegal) {
  RetimeGraph g = ring_graph();
  EXPECT_THROW(g.apply({0, 0, 0, 5}), std::invalid_argument);
}

TEST(RetimeGraphTest, BoundsChecked) {
  RetimeGraph g = ring_graph();
  g.set_bounds(VertexId{2}, 0, 0);  // pin v2
  EXPECT_TRUE(g.has_bounds());
  const std::vector<std::int64_t> r = {0, 0, -1, 0};
  EXPECT_FALSE(g.check_legal(r).empty());
}

TEST(RetimeGraphTest, SharedRegisterArea) {
  RetimeGraph g;
  const VertexId a = g.add_vertex(1, "a");
  const VertexId b = g.add_vertex(1, "b");
  const VertexId c = g.add_vertex(1, "c");
  g.add_edge(g.host(), a, 0);
  g.add_edge(a, b, 2);
  g.add_edge(a, c, 3);
  g.add_edge(b, g.host(), 0);
  g.add_edge(c, g.host(), 0);
  // Fanout sharing: a contributes max(2,3) = 3.
  EXPECT_EQ(g.shared_register_area(), 3);
}

TEST(RetimeGraphTest, HostCycleDoesNotBreakPeriod) {
  // PI -> gate -> PO, all weight 0: the environment loop through the host
  // must not be treated as a combinational cycle.
  RetimeGraph g;
  const VertexId pi = g.add_vertex(0, "pi");
  const VertexId gate = g.add_vertex(5, "gate");
  const VertexId po = g.add_vertex(0, "po");
  g.add_edge(g.host(), pi, 0);
  g.add_edge(pi, gate, 0);
  g.add_edge(gate, po, 0);
  g.add_edge(po, g.host(), 0);
  EXPECT_EQ(g.period(), 5);
}

}  // namespace
}  // namespace mcrt

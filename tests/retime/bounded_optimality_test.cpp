// Brute-force optimality oracle for *bounded* minimum-period retiming:
// enumerate every labeling in the bound box on small graphs and compare
// the best achievable period with what minperiod_retime claims.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "retime/minperiod.h"

namespace mcrt {
namespace {

RetimeGraph random_graph(std::uint64_t seed, std::size_t vertices) {
  Rng rng(seed);
  RetimeGraph g;
  std::vector<VertexId> vs;
  for (std::size_t i = 0; i < vertices; ++i) {
    vs.push_back(g.add_vertex(1 + static_cast<std::int64_t>(rng.below(9))));
  }
  g.add_edge(g.host(), vs[0], 0);
  for (std::size_t i = 0; i + 1 < vertices; ++i) {
    g.add_edge(vs[i], vs[i + 1], rng.below(3));
  }
  for (std::size_t i = 0; i < vertices; ++i) {
    const std::size_t a = rng.below(vertices);
    const std::size_t b = rng.below(vertices);
    if (a < b) {
      g.add_edge(vs[a], vs[b], rng.below(2));
    } else if (a > b) {
      g.add_edge(vs[a], vs[b], 1 + rng.below(2));
    }
  }
  g.add_edge(vs[vertices - 1], g.host(), 0);
  for (std::size_t i = 0; i < vertices; ++i) {
    g.set_bounds(vs[i], -static_cast<std::int64_t>(rng.below(3)),
                 static_cast<std::int64_t>(rng.below(3)));
  }
  return g;
}

std::int64_t brute_force_min_period(const RetimeGraph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::int64_t> r(n, 0);
  std::int64_t best = INT64_MAX;
  std::vector<std::int64_t> digits(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    digits[i] = g.lower_bound(VertexId{static_cast<std::uint32_t>(i + 1)});
  }
  while (true) {
    for (std::size_t i = 0; i + 1 < n; ++i) r[i + 1] = digits[i];
    if (g.check_legal(r).empty()) {
      best = std::min(best, g.period(r));
    }
    std::size_t i = 0;
    for (; i + 1 < n; ++i) {
      const VertexId v{static_cast<std::uint32_t>(i + 1)};
      if (++digits[i] <= g.upper_bound(v)) break;
      digits[i] = g.lower_bound(v);
    }
    if (i + 1 == n) break;
  }
  return best;
}

class BoundedOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedOptimality, MinPeriodMatchesBruteForce) {
  const RetimeGraph g = random_graph(GetParam(), 6);
  const RetimeSolution solution = minperiod_retime(g);
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.period, brute_force_min_period(g))
      << "seed " << GetParam();
  EXPECT_EQ(g.period(solution.r), solution.period);
  EXPECT_TRUE(g.check_legal(solution.r).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedOptimality,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mcrt

// Register-class zoo differential through the serve path: EN / sync /
// async / multi-clock circuits submitted to a live daemon must come back
// byte-identical to the bulk engine — including the cached replay of each
// request, which must be a cache hit with the exact same bytes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "../common/test_circuits.h"
#include "blif/blif.h"
#include "fuzz/case_gen.h"
#include "pipeline/bulk_runner.h"
#include "server/client.h"
#include "server/server.h"

namespace mcrt {
namespace {

namespace fs = std::filesystem;

constexpr const char* kScript = "decompose-sync; sweep; retime(d=10)";

struct ZooRig {
  const char* tag;
  Netlist netlist;
};

std::vector<ZooRig> zoo_rigs() {
  std::vector<ZooRig> rigs;
  rigs.push_back({"zoo_a", register_class_zoo(21)});
  rigs.push_back({"zoo_b", register_class_zoo(22)});
  rigs.push_back({"dual_clock", dual_clock_rig(23)});
  rigs.push_back({"fig1_en", testing::fig1_circuit()});
  return rigs;
}

TEST(ServeZoo, RegisterClassesAreByteIdenticalToBulkIncludingCacheHits) {
  // Shared scratch dir with one BLIF per rig (path-based requests, the
  // same shape `mcrt client` submits).
  static std::atomic<int> counter{0};
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("serve_zoo_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);

  const std::vector<ZooRig> rigs = zoo_rigs();
  std::vector<std::string> inputs;
  for (const ZooRig& rig : rigs) {
    ASSERT_TRUE(rig.netlist.validate().empty()) << rig.tag;
    const fs::path path = dir / (std::string(rig.tag) + ".blif");
    ASSERT_TRUE(write_blif_file(rig.netlist, path.string(), rig.tag));
    inputs.push_back(path.string());
  }

  // Bulk side.
  BulkOptions bulk_options;
  bulk_options.jobs = 2;
  std::vector<BulkJob> jobs;
  for (const std::string& input : inputs) jobs.push_back(make_file_job(input, ""));
  const BulkReport bulk_report = BulkRunner(kScript, bulk_options).run(jobs);
  ASSERT_EQ(bulk_report.succeeded(), rigs.size());

  // Serve side: a daemon on a private socket.
  ServerOptions server_options;
  server_options.endpoint.unix_path = (dir / "serve.sock").string();
  server_options.jobs = 2;
  RetimingServer server(server_options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread pump([&server] { server.run(); });

  ServeClient client;
  ASSERT_TRUE(client.connect(server.bound_endpoint(), &error)) << error;
  const auto submit = [&](const std::string& id, const std::string& path) {
    JobRequest request;
    request.id = id;
    request.script = kScript;
    request.path = path;
    request.options.canonical = true;
    return client.submit(request);
  };

  // Round 1: every rig once. Collected before round 2 so the replays are
  // guaranteed to find populated cache entries.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE(submit("first_" + std::to_string(i), inputs[i]));
  }
  std::vector<ClientJobResult> round1;
  ASSERT_TRUE(client.collect(&round1, &error)) << error;
  ASSERT_EQ(round1.size(), inputs.size());

  // Round 2: every rig again — must be served from cache.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE(submit("replay_" + std::to_string(i), inputs[i]));
  }
  std::vector<ClientJobResult> all;
  ASSERT_TRUE(client.collect(&all, &error)) << error;
  ASSERT_EQ(all.size(), 2 * inputs.size());

  BulkJsonOptions canonical;
  canonical.canonical = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    SCOPED_TRACE(rigs[i].tag);
    const ClientJobResult& first = all[i];
    const ClientJobResult& replay = all[inputs.size() + i];
    EXPECT_EQ(first.status, "ok") << first.error;
    // Byte identity against bulk on the first pass...
    EXPECT_EQ(first.job_json,
              bulk_job_result_to_json(bulk_report.results[i], canonical));
    // ...and the replay is a cache hit with the exact same bytes.
    EXPECT_TRUE(replay.cached);
    EXPECT_EQ(replay.job_json, first.job_json);
  }

  client.close();
  server.request_stop();
  pump.join();
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace mcrt

// DiskCache: entry encode/decode round-trip, the startup recovery scan
// over seeded torn/truncated/bit-flipped entries, read-time quarantine,
// size-budgeted eviction and the io:-site fault injection paths.
#include "server/disk_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "base/fault_injector.h"
#include "pipeline/job_executor.h"

namespace mcrt {
namespace {

namespace fs = std::filesystem;

CacheKey make_key(std::uint64_t hi, std::uint64_t lo, std::uint64_t flow) {
  CacheKey key;
  key.netlist.hi = hi;
  key.netlist.lo = lo;
  key.flow = flow;
  return key;
}

CachedResult make_result(const std::string& name, std::size_t pad = 0) {
  CachedResult result;
  result.job.name = name;
  result.job.input_path = "<inline>";
  result.job.success = true;
  result.job.status = JobStatus::kOk;
  result.job.seconds = 0.125;
  result.job.before.luts = 7;
  result.job.before.registers = 3;
  result.job.after.luts = 5;
  result.job.after.registers = 3;
  result.job.period_before = 40;
  result.job.period_after = 30;
  PassExecution pass;
  pass.name = "retime";
  pass.seconds = 0.0625;
  pass.success = true;
  pass.summary = "period 40 -> 30";
  result.job.executed.push_back(pass);
  Diagnostic diag;
  diag.severity = DiagSeverity::kNote;
  diag.origin = "retime";
  diag.message = "relocated 2 registers";
  result.job.diagnostics.push_back(diag);
  result.blif = ".model m\n.inputs a\n.outputs y\n" + std::string(pad, '#') +
                "\n.end\n";
  return result;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / ("disk_cache_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

TEST(DiskCacheTest, EncodeDecodeRoundTripsEveryJobField) {
  const CacheKey key = make_key(0x0123456789abcdefULL, 0xfedcba9876543210ULL,
                                0xdeadbeefcafef00dULL);
  const CachedResult original = make_result("roundtrip");
  const std::string bytes = DiskCache::encode_entry(key, original);

  CacheKey decoded_key;
  CachedResult decoded;
  std::string error;
  ASSERT_TRUE(DiskCache::decode_entry(bytes, &decoded_key, &decoded, &error))
      << error;
  EXPECT_EQ(decoded_key, key);
  EXPECT_EQ(decoded.blif, original.blif);
  EXPECT_EQ(decoded.job.name, original.job.name);
  EXPECT_EQ(decoded.job.input_path, original.job.input_path);
  EXPECT_TRUE(decoded.job.success);
  EXPECT_EQ(decoded.job.status, JobStatus::kOk);
  EXPECT_EQ(decoded.job.seconds, original.job.seconds);  // %.17g round-trip
  EXPECT_EQ(decoded.job.before.luts, original.job.before.luts);
  EXPECT_EQ(decoded.job.after.luts, original.job.after.luts);
  EXPECT_EQ(decoded.job.period_before, 40);
  EXPECT_EQ(decoded.job.period_after, 30);
  ASSERT_EQ(decoded.job.executed.size(), 1u);
  EXPECT_EQ(decoded.job.executed[0].name, "retime");
  EXPECT_EQ(decoded.job.executed[0].summary, "period 40 -> 30");
  ASSERT_EQ(decoded.job.diagnostics.size(), 1u);
  EXPECT_EQ(decoded.job.diagnostics[0].message, "relocated 2 registers");
}

TEST(DiskCacheTest, DecodeRejectsTamperedBytes) {
  const CacheKey key = make_key(1, 2, 3);
  std::string bytes = DiskCache::encode_entry(key, make_result("tamper"));
  CacheKey out_key;
  CachedResult out;
  std::string error;

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_FALSE(DiskCache::decode_entry(flipped, &out_key, &out, &error));
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(DiskCache::decode_entry(bytes.substr(0, bytes.size() / 2),
                                       &out_key, &out, &error));
  EXPECT_FALSE(DiskCache::decode_entry("junk", &out_key, &out, &error));
  EXPECT_FALSE(DiskCache::decode_entry("", &out_key, &out, &error));
}

TEST(DiskCacheTest, InsertLookupPersistsAcrossReopen) {
  const std::string dir = fresh_dir("reopen");
  const CacheKey key = make_key(10, 20, 30);
  const CachedResult result = make_result("persist");
  {
    DiskCache cache(dir, 1 << 20);
    std::string error;
    ASSERT_TRUE(cache.open(&error)) << error;
    cache.insert(key, result);
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->blif, result.blif);
    EXPECT_EQ(cache.stats().hits, 1u);
  }
  // A second instance on the same directory recovers the entry by scan.
  DiskCache cache(dir, 1 << 20);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  EXPECT_EQ(cache.stats().entries, 1u);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->job.name, "persist");
  EXPECT_FALSE(cache.lookup(make_key(7, 7, 7)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DiskCacheTest, RecoveryScanQuarantinesSeededBadEntries) {
  const std::string dir = fresh_dir("recovery");
  const CacheKey good_key = make_key(1, 1, 1);
  {
    DiskCache cache(dir, 1 << 20);
    std::string error;
    ASSERT_TRUE(cache.open(&error)) << error;
    cache.insert(good_key, make_result("good"));
  }
  // Seed the crash menagerie next to the good entry: a torn (truncated)
  // entry, a bit-flipped entry, a file that is not an entry at all, and a
  // stray .tmp from a crash mid-write.
  const CacheKey torn_key = make_key(2, 2, 2);
  const std::string torn = DiskCache::encode_entry(torn_key, make_result("t"));
  write_file(dir + "/" + DiskCache::entry_file_name(torn_key),
             torn.substr(0, torn.size() * 2 / 3));
  const CacheKey flip_key = make_key(3, 3, 3);
  std::string flipped = DiskCache::encode_entry(flip_key, make_result("f"));
  flipped[flipped.size() - 5] ^= 0x20;
  write_file(dir + "/" + DiskCache::entry_file_name(flip_key), flipped);
  const CacheKey junk_key = make_key(4, 4, 4);
  write_file(dir + "/" + DiskCache::entry_file_name(junk_key), "not an entry");
  write_file(dir + "/crash.entry.tmp", "partial");

  DiskCache cache(dir, 1 << 20);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.quarantined, 3u);
  EXPECT_TRUE(cache.lookup(good_key).has_value());
  EXPECT_FALSE(cache.lookup(torn_key).has_value());
  EXPECT_FALSE(cache.lookup(flip_key).has_value());
  // Quarantined files are preserved as evidence, the .tmp is deleted.
  EXPECT_TRUE(fs::exists(dir + "/quarantine/" +
                         DiskCache::entry_file_name(flip_key)));
  EXPECT_FALSE(fs::exists(dir + "/crash.entry.tmp"));
}

TEST(DiskCacheTest, MismatchedFileNameIsQuarantinedOnScan) {
  const std::string dir = fresh_dir("misfile");
  // A valid entry stored under the wrong key's file name must not be
  // served for that key.
  const CacheKey real_key = make_key(5, 5, 5);
  const CacheKey wrong_key = make_key(6, 6, 6);
  {
    DiskCache seeded(dir, 1 << 20);
    std::string error;
    ASSERT_TRUE(seeded.open(&error)) << error;
  }
  write_file(dir + "/" + DiskCache::entry_file_name(wrong_key),
             DiskCache::encode_entry(real_key, make_result("misplaced")));
  DiskCache cache(dir, 1 << 20);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(cache.lookup(wrong_key).has_value());
}

TEST(DiskCacheTest, ReadTimeCorruptionQuarantinesAndMisses) {
  const std::string dir = fresh_dir("readrot");
  const CacheKey key = make_key(8, 8, 8);
  DiskCache cache(dir, 1 << 20);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  cache.insert(key, make_result("rot"));
  // Bit rot after the scan: flip a byte in place, then look up.
  const std::string path = dir + "/" + DiskCache::entry_file_name(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(path, bytes);

  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(path));
  // The quarantine is sticky: the entry is out of the index for good.
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(DiskCacheTest, EvictsColdestPastByteBudget) {
  const std::string dir = fresh_dir("evict");
  const CacheKey a = make_key(1, 0, 0);
  const CacheKey b = make_key(2, 0, 0);
  const CacheKey c = make_key(3, 0, 0);
  // Budget sized from the real encoded entry: two fit, three do not.
  const std::size_t entry_bytes =
      DiskCache::encode_entry(a, make_result("a", 2000)).size();
  const std::size_t budget = entry_bytes * 5 / 2;
  DiskCache cache(dir, budget);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  cache.insert(a, make_result("a", 2000));
  cache.insert(b, make_result("b", 2000));
  EXPECT_TRUE(cache.lookup(a).has_value());  // refresh a: b is now coldest
  cache.insert(c, make_result("c", 2000));
  const DiskCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, budget);
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
}

TEST(DiskCacheTest, OversizedEntryAndZeroCapacityAreDropped) {
  const std::string dir = fresh_dir("oversize");
  DiskCache cache(dir, 100);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  const CacheKey key = make_key(9, 9, 9);
  cache.insert(key, make_result("big", 4000));  // larger than the budget
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(key).has_value());

  DiskCache disabled(fresh_dir("disabled"), 0);
  ASSERT_TRUE(disabled.open(&error)) << error;
  disabled.insert(key, make_result("nope"));
  EXPECT_FALSE(disabled.lookup(key).has_value());
}

TEST(DiskCacheTest, NonOkResultsAreNeverPersisted) {
  const std::string dir = fresh_dir("failed");
  DiskCache cache(dir, 1 << 20);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  CachedResult failed = make_result("failed");
  failed.job.success = false;
  failed.job.status = JobStatus::kFailed;
  cache.insert(make_key(1, 2, 3), failed);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(DiskCacheTest, InjectedShortWritePublishesTornEntryCaughtOnRead) {
  const std::string dir = fresh_dir("shortwrite");
  FaultInjector faults;
  std::string spec_error;
  ASSERT_TRUE(faults.configure("io:write:*=short-write@1", &spec_error))
      << spec_error;
  DiskCache cache(dir, 1 << 20, /*ttl_seconds=*/0, &faults);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  const CacheKey key = make_key(11, 11, 11);
  cache.insert(key, make_result("torn"));
  // The torn bytes hit the disk (exactly what a crash leaves); the read
  // verification must quarantine them instead of serving garbage.
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);

  // The fault was one-shot; the next insert persists cleanly.
  cache.insert(key, make_result("torn"));
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(DiskCacheTest, InjectedWriteFailuresAreCountedAndSwallowed) {
  const std::string dir = fresh_dir("enospc");
  FaultInjector injector;
  std::string spec_error;
  ASSERT_TRUE(injector.configure("io:write:*=enospc", &spec_error))
      << spec_error;
  DiskCache cache(dir, 1 << 20, /*ttl_seconds=*/0, &injector);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  const CacheKey key = make_key(12, 12, 12);
  cache.insert(key, make_result("lost"));
  EXPECT_EQ(cache.stats().write_failures, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_FALSE(fs::exists(dir + "/" + DiskCache::entry_file_name(key)));
}

TEST(DiskCacheTest, InjectedReadCorruptionIsCaughtByChecksum) {
  const std::string dir = fresh_dir("readfault");
  FaultInjector faults;
  std::string spec_error;
  ASSERT_TRUE(faults.configure("io:read:*=corrupt@1", &spec_error))
      << spec_error;
  DiskCache cache(dir, 1 << 20, /*ttl_seconds=*/0, &faults);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  const CacheKey key = make_key(13, 13, 13);
  cache.insert(key, make_result("bitrot"));
  // First read sees flipped bytes -> quarantined, miss, never served.
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
}

/// Backdates an entry file so a TTL of `ttl_s` seconds sees it as stale.
void backdate_entry(const std::string& path, std::uint64_t age_s) {
  std::error_code ec;
  fs::last_write_time(
      path, fs::file_time_type::clock::now() - std::chrono::seconds(age_s),
      ec);
  ASSERT_FALSE(ec) << path << ": " << ec.message();
}

TEST(DiskCacheTest, TtlExpiresStaleEntriesOnRecoveryScan) {
  const std::string dir = fresh_dir("ttl_scan");
  const CacheKey stale_key = make_key(1, 1, 1);
  const CacheKey fresh_key = make_key(2, 2, 2);
  {
    DiskCache cache(dir, 1 << 20);
    std::string error;
    ASSERT_TRUE(cache.open(&error)) << error;
    cache.insert(stale_key, make_result("stale"));
    cache.insert(fresh_key, make_result("fresh"));
  }
  backdate_entry(dir + "/" + DiskCache::entry_file_name(stale_key), 7200);

  DiskCache cache(dir, 1 << 20, /*ttl_seconds=*/3600);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.quarantined, 0u);  // age is not corruption
  // The stale file is deleted outright, not quarantined.
  EXPECT_FALSE(
      fs::exists(dir + "/" + DiskCache::entry_file_name(stale_key)));
  EXPECT_FALSE(fs::exists(dir + "/quarantine/" +
                          DiskCache::entry_file_name(stale_key)));
  EXPECT_FALSE(cache.lookup(stale_key).has_value());
  EXPECT_TRUE(cache.lookup(fresh_key).has_value());
}

TEST(DiskCacheTest, TtlExpiresOnLookupWithoutServingStaleBytes) {
  const std::string dir = fresh_dir("ttl_lookup");
  const CacheKey key = make_key(3, 3, 3);
  DiskCache cache(dir, 1 << 20, /*ttl_seconds=*/3600);
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  cache.insert(key, make_result("ages_out"));
  ASSERT_TRUE(cache.lookup(key).has_value());
  // Time passes (modeled by backdating the file past the TTL).
  backdate_entry(dir + "/" + DiskCache::entry_file_name(key), 7200);
  EXPECT_FALSE(cache.lookup(key).has_value());
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_FALSE(fs::exists(dir + "/" + DiskCache::entry_file_name(key)));
  // Re-inserting after expiry works: the slot is genuinely free again.
  cache.insert(key, make_result("reborn"));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->job.name, "reborn");
}

TEST(DiskCacheTest, TtlZeroNeverExpires) {
  const std::string dir = fresh_dir("ttl_off");
  const CacheKey key = make_key(4, 4, 4);
  DiskCache cache(dir, 1 << 20);  // default ttl_seconds = 0
  std::string error;
  ASSERT_TRUE(cache.open(&error)) << error;
  cache.insert(key, make_result("immortal"));
  backdate_entry(dir + "/" + DiskCache::entry_file_name(key), 365 * 86400);
  EXPECT_TRUE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().expired, 0u);
}

}  // namespace
}  // namespace mcrt

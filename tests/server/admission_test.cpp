// AdmissionController: in-flight bound, per-tenant fair share, drain mode
// and release bookkeeping, including concurrent admit/release traffic.
#include "server/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mcrt {
namespace {

TEST(AdmissionTest, UnboundedAdmitsEverythingUntilDrain) {
  AdmissionController admission(0, 100);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(admission.try_admit("").admitted);
  }
  EXPECT_EQ(admission.inflight(), 64u);
  admission.begin_drain();
  const auto decision = admission.try_admit("");
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.reason, "draining");
  EXPECT_EQ(decision.retry_after_ms, 100);
  EXPECT_EQ(admission.stats().rejected_draining, 1u);
}

TEST(AdmissionTest, BoundedRejectsOverflowWithHint) {
  AdmissionController admission(2, 250);
  EXPECT_TRUE(admission.try_admit("").admitted);
  EXPECT_TRUE(admission.try_admit("").admitted);
  const auto decision = admission.try_admit("");
  EXPECT_FALSE(decision.admitted);
  EXPECT_EQ(decision.reason, "overloaded");
  EXPECT_EQ(decision.retry_after_ms, 250);
  admission.release("");
  EXPECT_TRUE(admission.try_admit("").admitted);
  const AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.inflight, 2u);
}

TEST(AdmissionTest, FairShareHandsFreedSlotsToTheNewTenant) {
  AdmissionController admission(4, 100);
  // Tenant A saturates the daemon: 4 slots, then overloaded.
  int a_admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (admission.try_admit("a").admitted) ++a_admitted;
  }
  EXPECT_EQ(a_admitted, 4);
  EXPECT_EQ(admission.try_admit("b").reason, "overloaded");
  // One slot frees: B (under its 4/2=2 share) claims it.
  admission.release("a");
  const auto b = admission.try_admit("b");
  EXPECT_TRUE(b.admitted) << b.reason;
  // Another A slot frees (A holds 2, B holds 1, one slot open). A sits at
  // its 4/2=2 share and is tenant-throttled — the chatty tenant cannot
  // re-grab the slot and starve B, who claims it instead.
  admission.release("a");
  const auto a_more = admission.try_admit("a");
  EXPECT_FALSE(a_more.admitted);
  EXPECT_EQ(a_more.reason, "tenant-throttled");
  EXPECT_TRUE(admission.try_admit("b").admitted);
  EXPECT_GE(admission.stats().rejected_tenant, 1u);
}

TEST(AdmissionTest, SingleSlotNeverStarvesASecondTenant) {
  // max_inflight=1: fair share floors at 1, so admission degrades to FCFS
  // rather than rejecting tenants outright.
  AdmissionController admission(1, 100);
  EXPECT_TRUE(admission.try_admit("a").admitted);
  EXPECT_FALSE(admission.try_admit("b").admitted);
  admission.release("a");
  EXPECT_TRUE(admission.try_admit("b").admitted);
}

TEST(AdmissionTest, ReleaseRetiresIdleTenants) {
  AdmissionController admission(4, 100);
  ASSERT_TRUE(admission.try_admit("a").admitted);
  ASSERT_TRUE(admission.try_admit("b").admitted);
  EXPECT_EQ(admission.stats().active_tenants, 2u);
  admission.release("a");
  EXPECT_EQ(admission.stats().active_tenants, 1u);
  admission.release("b");
  EXPECT_EQ(admission.stats().active_tenants, 0u);
  EXPECT_EQ(admission.inflight(), 0u);
}

TEST(AdmissionTest, DrainLetsInflightFinish) {
  AdmissionController admission(4, 100);
  ASSERT_TRUE(admission.try_admit("a").admitted);
  admission.begin_drain();
  EXPECT_TRUE(admission.draining());
  EXPECT_FALSE(admission.try_admit("b").admitted);
  EXPECT_EQ(admission.inflight(), 1u);  // in-flight work keeps its slot
  admission.release("a");
  EXPECT_EQ(admission.inflight(), 0u);
  EXPECT_TRUE(admission.draining());  // drain is sticky
}

TEST(AdmissionTest, ConcurrentAdmitReleaseKeepsCountsConsistent) {
  AdmissionController admission(8, 50);
  std::atomic<std::int64_t> held{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&admission, &held, t] {
      const std::string tenant = t % 2 == 0 ? "even" : "odd";
      for (int i = 0; i < 500; ++i) {
        if (admission.try_admit(tenant).admitted) {
          held.fetch_add(1);
          held.fetch_sub(1);
          admission.release(tenant);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(admission.inflight(), 0u);
  EXPECT_EQ(admission.stats().active_tenants, 0u);
  const AdmissionStats stats = admission.stats();
  EXPECT_GT(stats.admitted, 0u);
}

}  // namespace
}  // namespace mcrt

// ResultCache: LRU ordering, byte-budget eviction, hit/miss/eviction
// counters, and the flow-options hash that keys it.
#include "server/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/pass_manager.h"

namespace mcrt {
namespace {

CacheKey key_n(std::uint64_t n) {
  CacheKey key;
  key.netlist.hi = n;
  key.netlist.lo = ~n;
  key.flow = 0x1234;
  return key;
}

CachedResult result_of_size(const std::string& name, std::size_t blif_bytes) {
  CachedResult result;
  result.job.name = name;
  result.job.success = true;
  result.job.status = JobStatus::kOk;
  result.blif.assign(blif_bytes, 'x');
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.lookup(key_n(1)).has_value());
  cache.insert(key_n(1), result_of_size("a", 100));
  const auto hit = cache.lookup(key_n(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->job.name, "a");
  EXPECT_EQ(hit->blif.size(), 100u);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 100u);  // entry footprint exceeds the BLIF alone
}

TEST(ResultCacheTest, DistinctFlowHashesAreDistinctEntries) {
  ResultCache cache(1 << 20);
  CacheKey same_netlist_other_flow = key_n(1);
  same_netlist_other_flow.flow = 0x9999;
  cache.insert(key_n(1), result_of_size("a", 10));
  EXPECT_FALSE(cache.lookup(same_netlist_other_flow).has_value());
  cache.insert(same_netlist_other_flow, result_of_size("b", 10));
  EXPECT_EQ(cache.lookup(key_n(1))->job.name, "a");
  EXPECT_EQ(cache.lookup(same_netlist_other_flow)->job.name, "b");
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, EvictsColdestWhenOverBudget) {
  // Budget fits two entries (sized off the real footprint, which includes
  // per-entry struct overhead), so inserting a third evicts the coldest.
  const std::size_t entry = result_of_size("a", 1000).approximate_bytes();
  const std::size_t budget = 2 * entry + entry / 2;
  ResultCache cache(budget);
  cache.insert(key_n(1), result_of_size("a", 1000));
  cache.insert(key_n(2), result_of_size("b", 1000));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(key_n(1)).has_value());
  cache.insert(key_n(3), result_of_size("c", 1000));

  EXPECT_TRUE(cache.lookup(key_n(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_n(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_n(3)).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, budget);
}

TEST(ResultCacheTest, OversizedEntryIsNotCached) {
  const std::size_t entry = result_of_size("a", 100).approximate_bytes();
  ResultCache cache(entry - 1);  // smaller than any entry
  cache.insert(key_n(1), result_of_size("huge", 100));
  EXPECT_FALSE(cache.lookup(key_n(1)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.insert(key_n(1), result_of_size("a", 10));
  EXPECT_FALSE(cache.lookup(key_n(1)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(1 << 20);
  cache.insert(key_n(1), result_of_size("old", 10));
  cache.insert(key_n(1), result_of_size("new", 20));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.lookup(key_n(1))->job.name, "new");
}

TEST(ResultCacheTest, ClearResetsContentsButKeepsCounters) {
  ResultCache cache(1 << 20);
  cache.insert(key_n(1), result_of_size("a", 10));
  EXPECT_TRUE(cache.lookup(key_n(1)).has_value());
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_FALSE(cache.lookup(key_n(1)).has_value());
}

TEST(ResultCacheTest, ConcurrentMixedTrafficStaysConsistent) {
  // Hammer one small cache from several threads with overlapping keys so
  // insert/evict/lookup/stats interleave; the invariants that must hold
  // throughout: served entries are intact (name matches key), byte usage
  // stays within budget, and counters add up at the end.
  const std::size_t budget = 8 * 1024;
  ResultCache cache(budget);
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> bad_entries{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, &bad_entries, t] {
      for (int i = 0; i < 800; ++i) {
        const std::uint64_t n = static_cast<std::uint64_t>((t * 797 + i) % 13);
        const std::string name = "c" + std::to_string(n);
        if (i % 3 == 0) {
          cache.insert(key_n(n), result_of_size(name, 512));
        } else {
          const auto hit = cache.lookup(key_n(n));
          if (hit.has_value() && hit->job.name != name) {
            bad_entries.fetch_add(1);
          }
        }
        if (i % 97 == 0) (void)cache.stats();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(bad_entries.load(), 0u);
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, budget);
  EXPECT_LE(stats.entries, 13u);
  // Inserts happen at i % 3 == 0 (267 of 800), lookups at the rest (533).
  EXPECT_EQ(stats.hits + stats.misses, 4u * 533u);
  EXPECT_EQ(stats.insertions, 4u * 267u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(FlowOptionsHashTest, ResultAffectingKnobsMoveTheHash) {
  PassManagerOptions manager;
  ResourceBudgets budgets;
  const std::uint64_t base = flow_options_hash("sweep", manager, budgets);

  // Different script: different hash.
  EXPECT_NE(base, flow_options_hash("sweep; strash", manager, budgets));

  // Invariant / equivalence checking change what a run can produce
  // (failures vs silent acceptance), so they contribute.
  PassManagerOptions checked = manager;
  checked.check_invariants = !checked.check_invariants;
  EXPECT_NE(base, flow_options_hash("sweep", checked, budgets));

  PassManagerOptions verified = manager;
  verified.check_equivalence = !verified.check_equivalence;
  EXPECT_NE(base, flow_options_hash("sweep", verified, budgets));

  PassManagerOptions effort = manager;
  effort.equivalence.runs += 1;
  EXPECT_NE(base, flow_options_hash("sweep", effort, budgets));

  // Budgets can abort a run early, so they contribute too.
  ResourceBudgets capped = budgets;
  capped.bdd_node_cap = 1000;
  EXPECT_NE(base, flow_options_hash("sweep", manager, capped));

  // And the hash is a pure function of its inputs.
  EXPECT_EQ(base, flow_options_hash("sweep", manager, budgets));
}

}  // namespace
}  // namespace mcrt

// Wire-protocol vocabulary: request parse/serialize round trips, malformed
// request rejection, and the response-frame builders' JSON shape.
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "base/json.h"
#include "server/admission.h"

namespace mcrt {
namespace {

RequestFrame parse_ok(const std::string& line) {
  auto parsed = parse_request_frame(line);
  const auto* err = std::get_if<std::string>(&parsed);
  EXPECT_EQ(err, nullptr) << line << " -> " << (err != nullptr ? *err : "");
  return err == nullptr ? std::get<RequestFrame>(parsed) : RequestFrame{};
}

std::string parse_err(const std::string& line) {
  auto parsed = parse_request_frame(line);
  const auto* err = std::get_if<std::string>(&parsed);
  EXPECT_NE(err, nullptr) << line << " unexpectedly parsed";
  return err != nullptr ? *err : std::string();
}

Json response_json(const std::string& line) {
  auto parsed = Json::parse(line);
  EXPECT_TRUE(std::holds_alternative<Json>(parsed)) << line;
  return std::holds_alternative<Json>(parsed) ? std::get<Json>(parsed) : Json();
}

TEST(ProtocolTest, ParsesControlRequests) {
  EXPECT_EQ(parse_ok(R"({"hello": true})").kind, RequestFrame::Kind::kHello);
  EXPECT_EQ(parse_ok(R"({"stats": true})").kind, RequestFrame::Kind::kStats);
  EXPECT_EQ(parse_ok(R"({"shutdown": true})").kind,
            RequestFrame::Kind::kShutdown);
  const RequestFrame cancel = parse_ok(R"({"cancel": "j7"})");
  EXPECT_EQ(cancel.kind, RequestFrame::Kind::kCancel);
  EXPECT_EQ(cancel.cancel_id, "j7");
}

TEST(ProtocolTest, ParsesFullJobRequest) {
  const RequestFrame frame = parse_ok(R"json({
    "id": "j1", "name": "r00", "script": "sweep; retime(d=10)",
    "blif": ".model m\n.end\n", "output": "/tmp/out.blif",
    "options": {"timeout": 2.5, "canonical": true, "return_blif": true,
                "validate": false, "verify": true,
                "budgets": {"bdd_nodes": 100, "bmc_steps": 7,
                            "max_rss_mb": 64}}})json");
  ASSERT_EQ(frame.kind, RequestFrame::Kind::kJob);
  const JobRequest& job = frame.job;
  EXPECT_EQ(job.id, "j1");
  EXPECT_EQ(job.name, "r00");
  EXPECT_EQ(job.script, "sweep; retime(d=10)");
  EXPECT_EQ(job.blif, ".model m\n.end\n");
  EXPECT_TRUE(job.path.empty());
  EXPECT_EQ(job.output, "/tmp/out.blif");
  EXPECT_DOUBLE_EQ(job.options.timeout_seconds, 2.5);
  EXPECT_TRUE(job.options.canonical);
  EXPECT_TRUE(job.options.return_blif);
  EXPECT_FALSE(job.options.validate);
  EXPECT_TRUE(job.options.verify);
  EXPECT_EQ(job.options.budgets.bdd_node_cap, 100u);
  EXPECT_EQ(job.options.budgets.bmc_step_cap, 7u);
  EXPECT_EQ(job.options.budgets.max_rss_bytes, 64u * 1024u * 1024u);
}

TEST(ProtocolTest, JobDefaultsAreConservative) {
  const RequestFrame frame =
      parse_ok(R"({"id": "j2", "script": "sweep", "path": "in.blif"})");
  ASSERT_EQ(frame.kind, RequestFrame::Kind::kJob);
  EXPECT_EQ(frame.job.path, "in.blif");
  EXPECT_DOUBLE_EQ(frame.job.options.timeout_seconds, 0.0);
  EXPECT_FALSE(frame.job.options.canonical);
  EXPECT_FALSE(frame.job.options.return_blif);
  EXPECT_TRUE(frame.job.options.validate);
  EXPECT_FALSE(frame.job.options.verify);
  EXPECT_EQ(frame.job.options.budgets.max_rss_bytes, 0u);
}

TEST(ProtocolTest, RequestRoundTripsThroughWriter) {
  const char* lines[] = {
      R"({"hello": true})",
      R"({"cancel": "j9"})",
      R"({"stats": true})",
      R"({"shutdown": true})",
      R"({"id": "j1", "name": "n", "script": "sweep", "blif": "x",)"
      R"( "output": "o.blif", "options": {"timeout": 1.5,)"
      R"( "return_blif": true, "verify": true}})",
  };
  for (const char* line : lines) {
    const RequestFrame first = parse_ok(line);
    const RequestFrame second = parse_ok(write_request_frame(first));
    EXPECT_EQ(second.kind, first.kind) << line;
    EXPECT_EQ(second.cancel_id, first.cancel_id) << line;
    EXPECT_EQ(second.job.id, first.job.id) << line;
    EXPECT_EQ(second.job.name, first.job.name) << line;
    EXPECT_EQ(second.job.script, first.job.script) << line;
    EXPECT_EQ(second.job.blif, first.job.blif) << line;
    EXPECT_EQ(second.job.output, first.job.output) << line;
    EXPECT_DOUBLE_EQ(second.job.options.timeout_seconds,
                     first.job.options.timeout_seconds)
        << line;
    EXPECT_EQ(second.job.options.return_blif, first.job.options.return_blif)
        << line;
    EXPECT_EQ(second.job.options.verify, first.job.options.verify) << line;
  }
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(parse_err("not json").empty());
  EXPECT_FALSE(parse_err("[1, 2]").empty());         // not an object
  EXPECT_FALSE(parse_err(R"({"frob": 1})").empty()); // unknown shape
  // Job requests need an id, a script, and a circuit.
  EXPECT_FALSE(parse_err(R"({"script": "sweep", "blif": "x"})").empty());
  EXPECT_FALSE(parse_err(R"({"id": "j1", "blif": "x"})").empty());
  EXPECT_FALSE(parse_err(R"({"id": "j1", "script": "sweep"})").empty());
  // Cancel needs a non-empty id.
  EXPECT_FALSE(parse_err(R"({"cancel": ""})").empty());
}

TEST(ProtocolTest, MalformedFrameTable) {
  // Hostile/broken inputs a serve session may read off the wire. Every one
  // must come back as a structured parse error (the session answers with an
  // error frame and keeps the connection) — never a crash or an accept.
  const char* rejected[] = {
      "",                                       // empty line
      "\x80\x81",                               // bare continuation bytes
      "{\"id\": \"j\xC3(\"}",                   // truncated UTF-8 sequence
      "{\"id\": \"\xED\xA0\x80\"}",             // CESU-8 surrogate half
      "{\"id\": \"\xF4\x90\x80\x80\"}",         // beyond U+10FFFF
      "{\"id\": \"\xC0\xAF\"}",                 // overlong encoding
      R"({"id": "j1", "script": "sweep")",      // truncated JSON
      R"({"id": "j1", "script": )",             // cut mid-value
      "\x00\x01\x02",                           // binary garbage
      R"("just a string")",                     // not an object
      R"({"id": 42, "script": "sweep", "blif": "x"})",  // wrong id type
      R"({"id": "j1", "script": "sweep", "blif": "x"} trailing)",
  };
  for (const char* line : rejected) {
    EXPECT_FALSE(parse_err(line).empty()) << line;
  }
  EXPECT_NE(parse_err("{\"id\": \"\xFF\"}").find("UTF-8"), std::string::npos);
}

TEST(ProtocolTest, Utf8FramesWithMultibyteContentParse) {
  // Well-formed multi-byte UTF-8 must not trip the validator.
  const RequestFrame frame = parse_ok(
      "{\"id\": \"j1\", \"name\": \"caf\xC3\xA9-\xE2\x82\xAC-\xF0\x9F\x94\xA7"
      "\", \"script\": \"sweep\", \"blif\": \"x\"}");
  EXPECT_EQ(frame.job.name, "caf\xC3\xA9-\xE2\x82\xAC-\xF0\x9F\x94\xA7");
}

TEST(ProtocolTest, ParsesHealthDrainAndTenant) {
  EXPECT_EQ(parse_ok(R"({"health": true})").kind, RequestFrame::Kind::kHealth);
  EXPECT_EQ(parse_ok(R"({"drain": true})").kind, RequestFrame::Kind::kDrain);
  const RequestFrame job = parse_ok(
      R"({"id": "j1", "script": "sweep", "blif": "x", "tenant": "team-a"})");
  EXPECT_EQ(job.job.tenant, "team-a");
  // The tenant survives the writer round trip.
  EXPECT_EQ(parse_ok(write_request_frame(job)).job.tenant, "team-a");
}

TEST(ProtocolTest, BusyFrameShape) {
  const Json busy = response_json(make_busy_frame("j3", 250, "overloaded"));
  EXPECT_EQ(busy.at("frame").as_string(), "busy");
  EXPECT_EQ(busy.at("id").as_string(), "j3");
  EXPECT_EQ(busy.at("retry_after_ms").as_int(), 250);
  EXPECT_EQ(busy.at("reason").as_string(), "overloaded");
}

TEST(ProtocolTest, HealthAndDrainAckFrameShape) {
  AdmissionStats admission;
  admission.inflight = 3;
  admission.max_inflight = 8;
  admission.active_tenants = 2;
  const Json health = response_json(make_health_frame(admission, 4));
  EXPECT_EQ(health.at("frame").as_string(), "health");
  EXPECT_EQ(health.at("state").as_string(), "ok");
  EXPECT_EQ(health.at("inflight").as_int(), 3);
  EXPECT_EQ(health.at("max_inflight").as_int(), 8);
  EXPECT_EQ(health.at("active_tenants").as_int(), 2);
  EXPECT_EQ(health.at("jobs").as_int(), 4);

  admission.draining = true;
  const Json draining = response_json(make_health_frame(admission, 4));
  EXPECT_EQ(draining.at("state").as_string(), "draining");

  const Json ack = response_json(make_drain_ack_frame(5));
  EXPECT_EQ(ack.at("frame").as_string(), "drain-ack");
  EXPECT_EQ(ack.at("inflight").as_int(), 5);
}

TEST(ProtocolTest, HelloFrameCarriesVersionAndBuild) {
  const Json hello = response_json(make_hello_frame(/*jobs=*/4));
  EXPECT_EQ(hello.at("frame").as_string(), "hello");
  EXPECT_EQ(hello.at("tool").as_string(), "mcrt");
  EXPECT_FALSE(hello.at("version").as_string().empty());
  EXPECT_GE(hello.at("protocol").as_int(), 1);
  EXPECT_FALSE(hello.at("build_type").as_string().empty());
  EXPECT_TRUE(hello.has("sanitizers"));
  EXPECT_EQ(hello.at("jobs").as_int(), 4);
}

TEST(ProtocolTest, ResultFrameShape) {
  BulkJobResult result;
  result.name = "r00";
  result.success = true;
  result.status = JobStatus::kOk;
  const std::string blif = ".model m\n.end\n";
  const Json frame = response_json(make_result_frame(
      "j1", result, /*cached=*/true, "{\n    \"name\": \"r00\"\n}", &blif));
  EXPECT_EQ(frame.at("frame").as_string(), "result");
  EXPECT_EQ(frame.at("id").as_string(), "j1");
  EXPECT_EQ(frame.at("name").as_string(), "r00");
  EXPECT_EQ(frame.at("status").as_string(), "ok");
  EXPECT_TRUE(frame.at("success").as_bool());
  EXPECT_TRUE(frame.at("cached").as_bool());
  EXPECT_EQ(frame.at("blif").as_string(), blif);

  // Without return_blif the member is absent entirely.
  const Json lean = response_json(
      make_result_frame("j1", result, /*cached=*/false, "{}", nullptr));
  EXPECT_FALSE(lean.has("blif"));
  EXPECT_FALSE(lean.at("cached").as_bool());
}

TEST(ProtocolTest, DiagnosticAndErrorFrames) {
  Diagnostic diag;
  diag.severity = DiagSeverity::kWarning;
  diag.origin = "sweep";
  diag.message = "removed 3 nets";
  const Json frame = response_json(make_diagnostic_frame("j1", diag));
  EXPECT_EQ(frame.at("frame").as_string(), "diagnostic");
  EXPECT_EQ(frame.at("severity").as_string(), "warning");
  EXPECT_EQ(frame.at("origin").as_string(), "sweep");
  EXPECT_EQ(frame.at("message").as_string(), "removed 3 nets");

  const Json error = response_json(make_error_frame("j1", "duplicate id"));
  EXPECT_EQ(error.at("frame").as_string(), "error");
  EXPECT_EQ(error.at("message").as_string(), "duplicate id");
}

TEST(ProtocolTest, StatsFrameCarriesBothCounterBlocks) {
  ServerStats server;
  server.requests = 10;
  server.ok = 7;
  server.timeout = 1;
  server.cancelled = 2;
  server.cache_served = 3;
  server.sessions = 2;
  server.jobs = 4;
  CacheStats cache;
  cache.entries = 5;
  cache.bytes = 4096;
  cache.capacity_bytes = 1 << 20;
  cache.hits = 3;
  cache.misses = 7;
  const Json frame = response_json(make_stats_frame(server, cache));
  EXPECT_EQ(frame.at("frame").as_string(), "stats");
  EXPECT_EQ(frame.at("server").at("requests").as_int(), 10);
  EXPECT_EQ(frame.at("server").at("cache_served").as_int(), 3);
  EXPECT_EQ(frame.at("server").at("sessions").as_int(), 2);
  EXPECT_EQ(frame.at("cache").at("entries").as_int(), 5);
  EXPECT_EQ(frame.at("cache").at("hits").as_int(), 3);
  EXPECT_EQ(frame.at("cache").at("misses").as_int(), 7);
}

TEST(ProtocolTest, CancelAckAndBye) {
  const Json ack = response_json(make_cancel_ack_frame("j1", true));
  EXPECT_EQ(ack.at("frame").as_string(), "cancel-ack");
  EXPECT_EQ(ack.at("id").as_string(), "j1");
  EXPECT_TRUE(ack.at("found").as_bool());
  const Json bye = response_json(make_bye_frame());
  EXPECT_EQ(bye.at("frame").as_string(), "bye");
}

}  // namespace
}  // namespace mcrt

// In-process end-to-end tests of the `mcrt serve` daemon: differential
// byte-identity against the bulk engine, cache hits with counter
// verification, cancel-one-request-mid-flight (the daemon must keep
// serving), disconnect cleanup, per-request timeouts and protocol errors.
#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "../common/test_circuits.h"
#include "base/fault_injector.h"
#include "base/socket.h"
#include "blif/blif.h"
#include "pipeline/bulk_runner.h"
#include "server/client.h"

namespace mcrt {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// A daemon on a Unix socket in a temp dir, run() pumping on its own
/// thread, stopped and joined on destruction.
class TestServer {
 public:
  explicit TestServer(ServerOptions options) : server_(configure(options)) {
    std::string error;
    started_ = server_.start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) {
      thread_ = std::thread([this] {
        server_.run();
        done_.store(true, std::memory_order_release);
      });
    }
  }

  ~TestServer() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
  }

  /// Waits for run() to return on its own (remote shutdown tests).
  bool join_within(std::chrono::seconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (!done_.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (thread_.joinable()) thread_.join();
    return true;
  }

  [[nodiscard]] RetimingServer& server() { return server_; }
  [[nodiscard]] SocketEndpoint endpoint() const {
    return server_.bound_endpoint();
  }

  ServeClient connect() {
    ServeClient client;
    std::string error;
    EXPECT_TRUE(client.connect(endpoint(), &error)) << error;
    return client;
  }

 private:
  ServerOptions configure(ServerOptions options) {
    if (options.endpoint.unix_path.empty() && options.endpoint.tcp_port == 0) {
      static std::atomic<int> counter{0};
      options.endpoint.unix_path =
          (fs::path(::testing::TempDir()) /
           ("mcrt_srv_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".sock"))
              .string();
    }
    if (options.jobs == 0) options.jobs = 2;
    return options;
  }

  RetimingServer server_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  bool started_ = false;
};

JobRequest inline_job(const std::string& id, const std::string& script,
                      const Netlist& netlist) {
  JobRequest request;
  request.id = id;
  request.name = id;
  request.script = script;
  request.blif = write_blif_string(netlist);
  request.options.canonical = true;
  return request;
}

constexpr const char* kScript = "sweep; strash; retime(d=10)";

TEST(ServerTest, DifferentialAgainstBulkIsByteIdentical) {
  // The acceptance differential: path-based requests through the daemon
  // must produce per-job canonical JSON, canonical report and output BLIF
  // byte-identical to `mcrt bulk --canonical` on the same corpus.
  const fs::path in_dir = fresh_dir("srv_diff_in");
  const fs::path bulk_dir = fresh_dir("srv_diff_bulk");
  const fs::path serve_dir = fresh_dir("srv_diff_serve");
  const Netlist circuits[] = {testing::chain_circuit(4, 2),
                              testing::fig1_circuit(),
                              testing::chain_circuit(6, 3)};
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < 3; ++i) {
    const fs::path path = in_dir / ("c" + std::to_string(i) + ".blif");
    ASSERT_TRUE(write_blif_file(circuits[i], path.string()));
    inputs.push_back(path.string());
  }

  // Bulk side.
  BulkOptions bulk_options;
  bulk_options.jobs = 2;
  bulk_options.manager.check_invariants = true;
  std::vector<BulkJob> jobs;
  for (const std::string& input : inputs) {
    jobs.push_back(make_file_job(
        input, (bulk_dir / fs::path(input).filename()).string()));
  }
  const BulkReport bulk_report = BulkRunner(kScript, bulk_options).run(jobs);
  ASSERT_EQ(bulk_report.succeeded(), 3u);

  // Server side.
  TestServer daemon{ServerOptions{}};
  ServeClient client = daemon.connect();
  for (std::size_t i = 0; i < 3; ++i) {
    JobRequest request;
    request.id = "j" + std::to_string(i);
    request.script = kScript;
    request.path = inputs[i];
    request.output = (serve_dir / fs::path(inputs[i]).filename()).string();
    request.options.canonical = true;
    ASSERT_TRUE(client.submit(request));
  }
  std::vector<ClientJobResult> results;
  std::string error;
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results.size(), 3u);

  BulkJsonOptions canonical;
  canonical.canonical = true;
  std::vector<std::string> bulk_jsons;
  std::vector<std::string> serve_jsons;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].status, "ok") << results[i].error;
    const std::string bulk_json =
        bulk_job_result_to_json(bulk_report.results[i], canonical);
    EXPECT_EQ(results[i].job_json, bulk_json) << i;
    bulk_jsons.push_back(bulk_json);
    serve_jsons.push_back(results[i].job_json);
    // Output files byte-identical.
    EXPECT_EQ(slurp(serve_dir / fs::path(inputs[i]).filename()),
              slurp(bulk_dir / fs::path(inputs[i]).filename()))
        << i;
  }
  // Whole canonical reports byte-identical (the client's --report path and
  // BulkReport::to_json share compose_canonical_report_json).
  EXPECT_EQ(compose_canonical_report_json(kScript, serve_jsons, 3),
            bulk_report.to_json(canonical));
}

TEST(ServerTest, CacheHitServesIdenticalBytesAndCounts) {
  TestServer daemon{ServerOptions{}};
  ServeClient client = daemon.connect();
  const Netlist circuit = testing::chain_circuit(5, 2);

  JobRequest first = inline_job("j1", kScript, circuit);
  first.options.return_blif = true;
  ASSERT_TRUE(client.submit(first));
  std::vector<ClientJobResult> results;
  std::string error;
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results[0].status, "ok") << results[0].error;
  EXPECT_FALSE(results[0].cached);

  // Same circuit + same script under a different request identity: served
  // from the cache, canonical record and BLIF bytes identical.
  JobRequest second = inline_job("j2", kScript, circuit);
  second.name = "j1";  // same name so the canonical records compare equal
  second.options.return_blif = true;
  ASSERT_TRUE(client.submit(second));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[1].cached);
  EXPECT_EQ(results[1].status, "ok");
  EXPECT_EQ(results[1].job_json, results[0].job_json);
  EXPECT_EQ(results[1].blif, results[0].blif);

  // A different script must miss.
  JobRequest third = inline_job("j3", "sweep", circuit);
  ASSERT_TRUE(client.submit(third));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  EXPECT_FALSE(results[2].cached);

  const auto stats = client.query_stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->at("server").at("requests").as_int(), 3);
  EXPECT_EQ(stats->at("server").at("ok").as_int(), 3);
  EXPECT_EQ(stats->at("server").at("cache_served").as_int(), 1);
  EXPECT_EQ(stats->at("cache").at("hits").as_int(), 1);
  EXPECT_EQ(stats->at("cache").at("misses").as_int(), 2);
  EXPECT_EQ(stats->at("cache").at("entries").as_int(), 2);
}

TEST(ServerTest, CacheHitWritesRequestedOutputFile) {
  const fs::path out_dir = fresh_dir("srv_cache_out");
  TestServer daemon{ServerOptions{}};
  ServeClient client = daemon.connect();
  const Netlist circuit = testing::fig1_circuit();

  JobRequest first = inline_job("a", "sweep; strash", circuit);
  first.output = (out_dir / "first.blif").string();
  ASSERT_TRUE(client.submit(first));
  std::vector<ClientJobResult> results;
  std::string error;
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results[0].status, "ok") << results[0].error;

  JobRequest second = inline_job("b", "sweep; strash", circuit);
  second.output = (out_dir / "second.blif").string();
  ASSERT_TRUE(client.submit(second));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  EXPECT_TRUE(results[1].cached);
  EXPECT_EQ(results[1].status, "ok");
  const std::string first_bytes = slurp(out_dir / "first.blif");
  ASSERT_FALSE(first_bytes.empty());
  EXPECT_EQ(slurp(out_dir / "second.blif"), first_bytes);
}

TEST(ServerTest, CancelOneRequestMidFlightKeepsServing) {
  // The acceptance kill-one-request test: one request stalls forever (an
  // injected fault at its job site), gets cancelled explicitly, and the
  // daemon must deliver every other result and keep serving afterwards.
  FaultInjector faults;
  std::string spec_error;
  ASSERT_TRUE(faults.configure("job:victim=stall", &spec_error)) << spec_error;
  ServerOptions options;
  options.faults = &faults;
  TestServer daemon(options);
  ServeClient client = daemon.connect();

  JobRequest victim = inline_job("victim", kScript, testing::fig1_circuit());
  ASSERT_TRUE(client.submit(victim));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.submit(inline_job("ok" + std::to_string(i), kScript,
                                         testing::chain_circuit(4 + i, 2))));
  }
  ASSERT_TRUE(client.cancel("victim"));

  std::vector<ClientJobResult> results;
  std::string error;
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, "cancelled");
  EXPECT_FALSE(results[0].success);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(results[i].status, "ok") << results[i].error;
  }

  // The daemon is still fully alive: another request on the same
  // connection and a fresh connection both complete.
  ASSERT_TRUE(client.submit(inline_job("after", kScript,
                                       testing::chain_circuit(8, 2))));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  EXPECT_EQ(results[4].status, "ok");

  ServeClient second = daemon.connect();
  ASSERT_TRUE(second.submit(inline_job("fresh", "sweep",
                                       testing::fig1_circuit())));
  ASSERT_TRUE(second.collect(&results, &error)) << error;
  EXPECT_EQ(results[0].status, "ok");

  const auto stats = second.query_stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->at("server").at("cancelled").as_int(), 1);
  EXPECT_EQ(stats->at("server").at("ok").as_int(), 5);
}

TEST(ServerTest, DisconnectCancelsInFlightRequests) {
  FaultInjector faults;
  std::string spec_error;
  ASSERT_TRUE(faults.configure("job:ghost=stall", &spec_error)) << spec_error;
  ServerOptions options;
  options.faults = &faults;
  TestServer daemon(options);

  {
    ServeClient doomed = daemon.connect();
    ASSERT_TRUE(doomed.submit(inline_job("ghost", kScript,
                                         testing::fig1_circuit())));
    // Give the job a moment to start, then vanish without collecting.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    doomed.close();
  }

  // The server notices the dead connection, cancels the stalled job and
  // keeps serving; poll the counters until the cancel lands.
  ServeClient client = daemon.connect();
  std::string error;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  bool cancelled_seen = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto stats = client.query_stats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    if (stats->at("server").at("cancelled").as_int() >= 1) {
      cancelled_seen = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(cancelled_seen);

  std::vector<ClientJobResult> results;
  ASSERT_TRUE(client.submit(inline_job("alive", "sweep",
                                       testing::chain_circuit(3, 1))));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  EXPECT_EQ(results[0].status, "ok");
}

TEST(ServerTest, PerRequestTimeoutLandsAsTimeoutStatus) {
  FaultInjector faults;
  std::string spec_error;
  ASSERT_TRUE(faults.configure("job:slow=stall", &spec_error)) << spec_error;
  ServerOptions options;
  options.faults = &faults;
  TestServer daemon(options);
  ServeClient client = daemon.connect();

  JobRequest slow = inline_job("slow", kScript, testing::fig1_circuit());
  slow.options.timeout_seconds = 0.2;
  ASSERT_TRUE(client.submit(slow));
  std::vector<ClientJobResult> results;
  std::string error;
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  EXPECT_EQ(results[0].status, "timeout");
  EXPECT_FALSE(results[0].success);

  const auto stats = client.query_stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->at("server").at("timeout").as_int(), 1);
}

TEST(ServerTest, ProtocolErrorsDoNotKillTheSession) {
  TestServer daemon{ServerOptions{}};
  std::string error;
  SocketStream raw = connect_socket(daemon.endpoint(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  // Greeting first.
  auto line = raw.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"hello\""), std::string::npos);

  // Garbage line: one error frame, connection stays up.
  ASSERT_TRUE(raw.write_line("this is not json"));
  line = raw.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"error\""), std::string::npos);

  // A job missing its circuit: error frame again.
  ASSERT_TRUE(raw.write_line(R"({"id": "x", "script": "sweep"})"));
  line = raw.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"error\""), std::string::npos);

  // And the session still answers a well-formed request.
  ASSERT_TRUE(raw.write_line(R"({"hello": true})"));
  line = raw.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"frame\":\"hello\""), std::string::npos);
}

TEST(ServerTest, RemoteShutdownStopsTheDaemon) {
  TestServer daemon{ServerOptions{}};
  ServeClient client = daemon.connect();
  ASSERT_TRUE(client.send_shutdown());
  EXPECT_TRUE(daemon.join_within(std::chrono::seconds(10)));
  // The endpoint is gone now.
  std::string error;
  ServeClient late;
  EXPECT_FALSE(late.connect(daemon.endpoint(), &error));
}

TEST(ServerTest, ShutdownCanBeDisabled) {
  ServerOptions options;
  options.allow_remote_shutdown = false;
  TestServer daemon(options);
  std::string error;
  SocketStream raw = connect_socket(daemon.endpoint(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  ASSERT_TRUE(raw.read_line().has_value());  // greeting
  ASSERT_TRUE(raw.write_line(R"({"shutdown": true})"));
  const auto line = raw.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"error\""), std::string::npos);
  // Daemon still alive.
  ServeClient client = daemon.connect();
  std::vector<ClientJobResult> results;
  ASSERT_TRUE(client.submit(inline_job("still", "sweep",
                                       testing::fig1_circuit())));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  EXPECT_EQ(results[0].status, "ok");
}

TEST(ServerTest, ManyConcurrentClients) {
  ServerOptions options;
  options.jobs = 4;
  TestServer daemon(options);
  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      std::string error;
      if (!client.connect(daemon.endpoint(), &error)) return;
      for (int j = 0; j < kJobsPerClient; ++j) {
        const std::string id =
            "c" + std::to_string(c) + "_" + std::to_string(j);
        if (!client.submit(inline_job(id, kScript,
                                      testing::chain_circuit(3 + j, 2)))) {
          return;
        }
      }
      std::vector<ClientJobResult> results;
      if (!client.collect(&results, &error)) return;
      for (const ClientJobResult& result : results) {
        if (result.status == "ok") ok.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kClients * kJobsPerClient);
  // All clients ran the same four circuits, so only four distinct keys
  // exist. (Concurrent first-requests for one key can each miss, so the
  // exact hit count is racy — but with 32 requests over 4 keys there must
  // be hits.)
  const CacheStats cache = daemon.server().cache_stats();
  EXPECT_EQ(cache.entries, static_cast<std::size_t>(kJobsPerClient));
  EXPECT_GE(cache.hits, 1u);
}

TEST(RetryPolicyTest, BackoffDoublesJittersAndHonorsHintAndCap) {
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.max_delay_ms = 1000;
  policy.jitter_seed = 42;

  // Deterministic on (seed, attempt): the chaos harness replays schedules.
  EXPECT_EQ(policy.delay_ms(1), policy.delay_ms(1));
  EXPECT_EQ(policy.delay_ms(3), policy.delay_ms(3));

  // Exponential envelope: base * 2^(attempt-1) plus at most +50% jitter.
  EXPECT_GE(policy.delay_ms(1), 100);
  EXPECT_LE(policy.delay_ms(1), 150);
  EXPECT_GE(policy.delay_ms(2), 200);
  EXPECT_LE(policy.delay_ms(2), 300);

  // The cap bounds every attempt, jitter included.
  for (int attempt = 1; attempt <= 12; ++attempt) {
    EXPECT_LE(policy.delay_ms(attempt), 1000) << attempt;
  }

  // The server's retry-after hint floors the backoff.
  EXPECT_GE(policy.delay_ms(1, 600), 600);

  // Different seeds move the jitter somewhere across the attempts.
  RetryPolicy other = policy;
  other.jitter_seed = 43;
  EXPECT_TRUE(policy.delay_ms(1) != other.delay_ms(1) ||
              policy.delay_ms(2) != other.delay_ms(2) ||
              policy.delay_ms(3) != other.delay_ms(3));
}

TEST(ServerTest, AdmissionBoundSendsBusyAndRetrySucceeds) {
  // One stalled job saturates max_inflight=1; the next submission must
  // bounce with a structured busy frame (not a dropped connection), and
  // the client's retry loop must land it once the slot frees.
  FaultInjector faults;
  std::string spec_error;
  ASSERT_TRUE(faults.configure("job:hog=stall", &spec_error)) << spec_error;
  ServerOptions options;
  options.faults = &faults;
  options.max_inflight = 1;
  options.retry_after_ms = 120;
  TestServer daemon(options);

  ServeClient hogger = daemon.connect();
  ASSERT_TRUE(
      hogger.submit(inline_job("hog", kScript, testing::fig1_circuit())));

  // Wait until the hog actually holds the admission slot.
  ServeClient client = daemon.connect();
  std::string error;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool admitted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto stats = client.query_stats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    if (stats->at("admission").at("inflight").as_int() >= 1) {
      admitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(admitted);

  JobRequest bounced = inline_job("b", kScript, testing::chain_circuit(4, 2));
  ASSERT_TRUE(client.submit(bounced));
  std::vector<ClientJobResult> results;
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].busy);
  EXPECT_TRUE(results[0].retryable());
  EXPECT_EQ(results[0].status, "busy");
  EXPECT_EQ(results[0].retry_after_ms, 120);
  EXPECT_EQ(results[0].error, "overloaded");

  // Free the slot, then drive the same retry loop `mcrt client` uses:
  // backoff floored by the server hint, re-submit until admitted.
  ASSERT_TRUE(hogger.cancel("hog"));
  std::vector<ClientJobResult> hog_results;
  ASSERT_TRUE(hogger.collect(&hog_results, &error)) << error;
  EXPECT_EQ(hog_results[0].status, "cancelled");

  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_delay_ms = 5;
  policy.max_delay_ms = 200;
  bool served = false;
  for (int attempt = 1; attempt < policy.max_attempts && !served; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        policy.delay_ms(attempt, results[0].retry_after_ms)));
    ASSERT_TRUE(client.submit(bounced));
    ASSERT_TRUE(client.collect(&results, &error)) << error;
    ASSERT_EQ(results.size(), 1u);
    if (!results[0].retryable()) served = true;
  }
  ASSERT_TRUE(served);
  EXPECT_EQ(results[0].status, "ok") << results[0].error;

  const auto stats = client.query_stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_GE(stats->at("server").at("busy").as_int(), 1);
  EXPECT_GE(stats->at("admission").at("rejected_overload").as_int(), 1);
}

TEST(ServerTest, HealthDrainAndDrainingRejections) {
  ServerOptions options;
  options.max_inflight = 4;
  TestServer daemon(options);
  ServeClient client = daemon.connect();
  std::string error;

  auto health = client.query_health(&error);
  ASSERT_TRUE(health.has_value()) << error;
  EXPECT_EQ(health->at("state").as_string(), "ok");
  EXPECT_EQ(health->at("max_inflight").as_int(), 4);
  EXPECT_GE(health->at("jobs").as_int(), 1);

  // Work completes before the drain...
  std::vector<ClientJobResult> results;
  ASSERT_TRUE(
      client.submit(inline_job("pre", "sweep", testing::fig1_circuit())));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  EXPECT_EQ(results[0].status, "ok") << results[0].error;

  auto ack = client.send_drain(&error);
  ASSERT_TRUE(ack.has_value()) << error;
  EXPECT_EQ(ack->at("frame").as_string(), "drain-ack");
  EXPECT_EQ(ack->at("inflight").as_int(), 0);

  health = client.query_health(&error);
  ASSERT_TRUE(health.has_value()) << error;
  EXPECT_EQ(health->at("state").as_string(), "draining");

  // ...and new work is turned away with a structured busy frame while the
  // control plane (health, stats) keeps answering for the ops side.
  ASSERT_TRUE(
      client.submit(inline_job("post", "sweep", testing::fig1_circuit())));
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[1].busy);
  EXPECT_EQ(results[1].error, "draining");

  const auto stats = client.query_stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_GE(stats->at("admission").at("rejected_draining").as_int(), 1);
  EXPECT_TRUE(stats->at("admission").at("draining").as_bool());
}

TEST(ServerTest, CoalescesIdenticalInFlightRequests) {
  // The leader ("lead") stalls inside execution while holding the
  // coalescing lead for its (netlist, flow) key; an identical request from
  // a second connection must rendezvous on that execution instead of
  // burning a second one. Cancelling the leader wakes the follower, which
  // takes over the lead and completes on its own.
  FaultInjector faults;
  std::string spec_error;
  ASSERT_TRUE(faults.configure("job:lead=stall", &spec_error)) << spec_error;
  ServerOptions options;
  options.faults = &faults;
  TestServer daemon(options);

  ServeClient leader = daemon.connect();
  ASSERT_TRUE(
      leader.submit(inline_job("lead", kScript, testing::fig1_circuit())));
  // Give the leader a moment to reach the stall (holding the lead).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  ServeClient follower = daemon.connect();
  ASSERT_TRUE(
      follower.submit(inline_job("follow", kScript, testing::fig1_circuit())));

  ServeClient watcher = daemon.connect();
  std::string error;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool coalesced = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto stats = watcher.query_stats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    if (stats->at("server").at("coalesced").as_int() >= 1) {
      coalesced = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(coalesced);

  ASSERT_TRUE(leader.cancel("lead"));
  std::vector<ClientJobResult> lead_results;
  ASSERT_TRUE(leader.collect(&lead_results, &error)) << error;
  EXPECT_EQ(lead_results[0].status, "cancelled");

  std::vector<ClientJobResult> follow_results;
  ASSERT_TRUE(follower.collect(&follow_results, &error)) << error;
  EXPECT_EQ(follow_results[0].status, "ok") << follow_results[0].error;
}

TEST(ServerTest, DiskTierServesAcrossRestart) {
  // The crash-safety payoff: results persisted by one daemon are served
  // byte-identically by the next daemon on the same directory, after the
  // memory tier died with the first process.
  const fs::path disk_dir = fresh_dir("srv_disk_restart");
  const Netlist circuit = testing::chain_circuit(6, 3);
  std::string first_json;
  std::string first_blif;
  {
    ServerOptions options;
    options.disk_cache_dir = disk_dir.string();
    TestServer daemon(options);
    ServeClient client = daemon.connect();
    JobRequest request = inline_job("cold", kScript, circuit);
    request.options.return_blif = true;
    ASSERT_TRUE(client.submit(request));
    std::vector<ClientJobResult> results;
    std::string error;
    ASSERT_TRUE(client.collect(&results, &error)) << error;
    ASSERT_EQ(results[0].status, "ok") << results[0].error;
    EXPECT_FALSE(results[0].cached);
    first_json = results[0].job_json;
    first_blif = results[0].blif;
    ASSERT_FALSE(first_blif.empty());
  }

  bool entry_found = false;
  for (const auto& file : fs::directory_iterator(disk_dir)) {
    if (file.path().extension() == ".entry") entry_found = true;
  }
  ASSERT_TRUE(entry_found);

  ServerOptions options;
  options.disk_cache_dir = disk_dir.string();
  TestServer daemon(options);
  ServeClient client = daemon.connect();
  JobRequest request = inline_job("warm", kScript, circuit);
  request.name = "cold";  // same identity so the canonical records compare
  request.options.return_blif = true;
  ASSERT_TRUE(client.submit(request));
  std::vector<ClientJobResult> results;
  std::string error;
  ASSERT_TRUE(client.collect(&results, &error)) << error;
  ASSERT_EQ(results[0].status, "ok") << results[0].error;
  EXPECT_TRUE(results[0].cached);
  EXPECT_EQ(results[0].job_json, first_json);
  EXPECT_EQ(results[0].blif, first_blif);

  const auto stats = client.query_stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->at("disk").at("hits").as_int(), 1);
  EXPECT_EQ(stats->at("cache").at("hits").as_int(), 0);  // memory was cold
  EXPECT_GE(stats->at("disk").at("entries").as_int(), 1);
}

}  // namespace
}  // namespace mcrt

#include "tech/decompose.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

TEST(DecomposeTest, ResultIsTwoBounded) {
  const Netlist n = random_sequential_circuit(3);
  const Netlist d = decompose_to_binary(n);
  for (const Node& node : d.nodes()) {
    if (node.kind == NodeKind::kLut) {
      EXPECT_LE(node.fanins.size(), 2u);
    }
  }
  EXPECT_TRUE(d.validate().empty());
}

TEST(DecomposeTest, PreservesBehaviour) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    const Netlist d = decompose_to_binary(n);
    EquivalenceOptions opt;
    opt.runs = 3;
    opt.cycles = 32;
    opt.init_registers_by_name = true;
    const auto result = check_sequential_equivalence(n, d, opt);
    EXPECT_TRUE(result.equivalent)
        << "seed " << seed << ": " << result.counterexample;
  }
}

TEST(DecomposeTest, PreservesRegistersAndInterface) {
  const Netlist n = testing::fig1_circuit();
  const Netlist d = decompose_to_binary(n);
  EXPECT_EQ(d.register_count(), n.register_count());
  EXPECT_EQ(d.inputs().size(), n.inputs().size());
  EXPECT_EQ(d.outputs().size(), n.outputs().size());
  // Control connections survive.
  EXPECT_EQ(d.stats().with_en, 2u);
}

TEST(DecomposeTest, WideGateBecomesTree) {
  Netlist n;
  std::vector<NetId> ins;
  for (int i = 0; i < 6; ++i) {
    ins.push_back(n.add_input("i" + std::to_string(i)));
  }
  const NetId g = n.add_lut(TruthTable::and_n(6), ins, "wide");
  n.add_output("o", g);
  const Netlist d = decompose_to_binary(n);
  EXPECT_TRUE(d.validate().empty());
  // AND6 -> 5 AND2 gates via the Shannon/CSE pipeline (any count is fine as
  // long as each node is small and behaviour matches).
  const auto result = check_sequential_equivalence(n, d, {});
  EXPECT_TRUE(result.equivalent) << result.counterexample;
}

TEST(DecomposeTest, ConstantsFold) {
  Netlist n;
  const NetId c = n.add_const(true);
  const NetId a = n.add_input("a");
  const NetId g = n.add_lut(TruthTable::and_n(2), {a, c}, "g");
  n.add_output("o", g);
  const Netlist d = decompose_to_binary(n);
  // AND(a, 1) = a: output fed directly by the input (no LUTs needed).
  EXPECT_EQ(d.stats().luts, 0u);
  const auto result = check_sequential_equivalence(n, d, {});
  EXPECT_TRUE(result.equivalent);
}

TEST(DecomposeTest, SharesCommonSubterms) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g1 = n.add_lut(TruthTable::and_n(2), {a, b}, "g1");
  const NetId g2 = n.add_lut(TruthTable::and_n(2), {a, b}, "g2");
  const NetId o = n.add_lut(TruthTable::xor_n(2), {g1, g2}, "o");
  n.add_output("out", o);
  const Netlist d = decompose_to_binary(n);
  // g1 and g2 merge, so XOR(x, x) folds to constant 0.
  EXPECT_EQ(d.const_value(d.node(d.outputs()[0]).fanins[0]), false);
}

}  // namespace
}  // namespace mcrt

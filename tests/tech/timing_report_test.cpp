#include "tech/timing_report.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "tech/sta.h"

namespace mcrt {
namespace {

TEST(TimingReportTest, ChainPathReconstructed) {
  const Netlist n = testing::chain_circuit(3, 1, 5);
  const auto paths = worst_paths(n, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].delay, 15);
  EXPECT_EQ(paths[0].endpoint, TimingPath::Endpoint::kRegisterD);
  // Path: in0 -> g0 -> g1 -> g2 (4 nets).
  ASSERT_EQ(paths[0].nets.size(), 4u);
  EXPECT_EQ(n.net(paths[0].nets.front()).name, "in0");
  EXPECT_EQ(n.net(paths[0].nets.back()).name, "g2");
}

TEST(TimingReportTest, WorstFirstOrdering) {
  // Two endpoint paths of different depth.
  Netlist n;
  const NetId clk = n.add_input("clk");
  NetId slow = n.add_input("a");
  for (int i = 0; i < 3; ++i) {
    slow = n.add_lut(TruthTable::inverter(), {slow});
    n.set_node_delay(NodeId{n.net(slow).driver.index}, 10);
  }
  NetId fast = n.add_lut(TruthTable::inverter(), {n.add_input("b")});
  n.set_node_delay(NodeId{n.net(fast).driver.index}, 10);
  n.add_output("slow_o", slow);
  n.add_output("fast_o", fast);
  (void)clk;
  const auto paths = worst_paths(n, 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].endpoint_name, "slow_o");
  EXPECT_EQ(paths[0].delay, 30);
  EXPECT_EQ(paths[1].endpoint_name, "fast_o");
  EXPECT_EQ(paths[1].delay, 10);
}

TEST(TimingReportTest, ControlConesAreEndpoints) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  NetId en = n.add_input("a");
  for (int i = 0; i < 2; ++i) {
    en = n.add_lut(TruthTable::inverter(), {en});
    n.set_node_delay(NodeId{n.net(en).driver.index}, 10);
  }
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = en;
  ff.name = "the_reg";
  n.add_output("o", n.add_register(std::move(ff)));
  const auto paths = worst_paths(n, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].endpoint, TimingPath::Endpoint::kRegisterControl);
  EXPECT_EQ(paths[0].endpoint_name, "the_reg");
  EXPECT_EQ(paths[0].delay, 20);
}

TEST(TimingReportTest, WorstPathMatchesPeriod) {
  const Netlist n = testing::fig5_circuit();
  Netlist timed = n;
  for (std::size_t i = 0; i < timed.node_count(); ++i) {
    if (timed.nodes()[i].kind == NodeKind::kLut) {
      timed.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 7);
    }
  }
  const auto paths = worst_paths(timed, 3);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths[0].delay, compute_period(timed));
}

TEST(TimingReportTest, FormatIsReadable) {
  const Netlist n = testing::chain_circuit(2, 1, 5);
  const auto paths = worst_paths(n, 1);
  const std::string report = format_timing_report(n, paths);
  EXPECT_NE(report.find("#1"), std::string::npos);
  EXPECT_NE(report.find("delay 10"), std::string::npos);
  EXPECT_NE(report.find("in0 -> g0 -> g1"), std::string::npos);
}

TEST(TimingReportTest, KLargerThanEndpointsIsFine) {
  const Netlist n = testing::chain_circuit(1, 1);
  const auto paths = worst_paths(n, 100);
  EXPECT_GE(paths.size(), 1u);
  EXPECT_LE(paths.size(), 100u);
}

}  // namespace
}  // namespace mcrt

// Compact-core FlowMap vs the seed's pointer-chasing mapper: every
// result-determining order (cone DFS, sorted cut-input lists, flow-arc
// insertion, cut extraction) is replicated exactly, so the two engines must
// produce structurally identical mapped netlists — pinned here by the
// 128-bit structural hash, with depth/LUT counts and behavior as backup.
#include "tech/flowmap.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "netlist/structural_hash.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "workload/generator.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

void expect_identical_mapping(const Netlist& subject, std::uint32_t k,
                              bool area_recovery) {
  FlowMapOptions compact_opt;
  compact_opt.k = k;
  compact_opt.area_recovery = area_recovery;
  FlowMapOptions legacy_opt = compact_opt;
  legacy_opt.legacy_engine = true;

  const FlowMapResult compact = flowmap_map(subject, compact_opt);
  const FlowMapResult legacy = flowmap_map(subject, legacy_opt);

  EXPECT_EQ(compact.depth, legacy.depth);
  EXPECT_EQ(compact.lut_count, legacy.lut_count);
  EXPECT_EQ(structural_hash(compact.mapped), structural_hash(legacy.mapped))
      << "k=" << k << " area_recovery=" << area_recovery;
}

TEST(FlowMapDifferentialTest, HandCircuits) {
  for (const bool recovery : {false, true}) {
    expect_identical_mapping(decompose_to_binary(testing::fig1_circuit()), 4,
                             recovery);
    expect_identical_mapping(decompose_to_binary(testing::chain_circuit(9, 3)),
                             4, recovery);
    expect_identical_mapping(decompose_to_binary(testing::fig5_circuit()), 3,
                             recovery);
  }
}

TEST(FlowMapDifferentialTest, RandomCircuitsBothKAndRecovery) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Netlist subject =
        decompose_to_binary(random_sequential_circuit(seed));
    expect_identical_mapping(subject, 4, false);
    expect_identical_mapping(subject, 4, true);
    expect_identical_mapping(subject, 5, seed % 2 == 0);
  }
}

TEST(FlowMapDifferentialTest, WorkloadCircuits) {
  for (const CircuitProfile& profile : random_suite(6, 17)) {
    const Netlist subject = decompose_to_binary(generate_circuit(profile));
    expect_identical_mapping(subject, 4, false);
    expect_identical_mapping(subject, 4, true);
  }
}

TEST(FlowMapDifferentialTest, CompactEngineStillBehaviorallyCorrect) {
  // Belt and braces on top of the hash equality: the compact engine's
  // output is sequentially equivalent to its input.
  const Netlist subject =
      decompose_to_binary(random_sequential_circuit(77));
  FlowMapOptions opt;
  opt.k = 4;
  const FlowMapResult mapped = flowmap_map(subject, opt);
  EquivalenceOptions eq;
  eq.init_registers_by_name = true;
  eq.runs = 4;
  eq.cycles = 32;
  const EquivalenceResult verdict =
      check_sequential_equivalence(subject, mapped.mapped, eq);
  EXPECT_TRUE(verdict.equivalent) << verdict.counterexample;
}

}  // namespace
}  // namespace mcrt

#include "tech/flowmap.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "tech/sta.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

FlowMapResult map4(const Netlist& n) {
  FlowMapOptions opt;
  opt.k = 4;
  return flowmap_map(decompose_to_binary(n), opt);
}

TEST(FlowMapTest, LutFaninsBounded) {
  const Netlist n = random_sequential_circuit(11);
  const auto result = map4(n);
  for (const Node& node : result.mapped.nodes()) {
    if (node.kind == NodeKind::kLut) {
      EXPECT_LE(node.fanins.size(), 4u);
    }
  }
  EXPECT_TRUE(result.mapped.validate().empty());
}

TEST(FlowMapTest, PreservesBehaviour) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist n = random_sequential_circuit(seed);
    const auto result = map4(n);
    EquivalenceOptions opt;
    opt.runs = 3;
    opt.cycles = 32;
    opt.init_registers_by_name = true;
    const auto eq = check_sequential_equivalence(n, result.mapped, opt);
    EXPECT_TRUE(eq.equivalent)
        << "seed " << seed << ": " << eq.counterexample;
  }
}

TEST(FlowMapTest, ChainPacksIntoFewLuts) {
  // 8 inverters in a row fit into two 4-LUTs (depth 2); FlowMap must not
  // leave them as 8 levels.
  const Netlist n = testing::chain_circuit(8, 1);
  const auto result = map4(n);
  EXPECT_LE(result.depth, 2u);
  EXPECT_LE(result.lut_count, 2u);
}

TEST(FlowMapTest, DepthIsOptimalForBalancedTree) {
  // A 16-input AND tree: 4-LUT depth 2 is optimal.
  Netlist n;
  std::vector<NetId> layer;
  for (int i = 0; i < 16; ++i) {
    layer.push_back(n.add_input("i" + std::to_string(i)));
  }
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(n.add_lut(TruthTable::and_n(2), {layer[i], layer[i + 1]}));
    }
    layer = std::move(next);
  }
  n.add_output("o", layer[0]);
  const auto result = flowmap_map(n, {});
  EXPECT_EQ(result.depth, 2u);
}

TEST(FlowMapTest, AssignsLutDelays) {
  const Netlist n = testing::chain_circuit(8, 1);
  FlowMapOptions opt;
  opt.lut_delay = 10;
  const auto result = flowmap_map(decompose_to_binary(n), opt);
  const std::int64_t period = compute_period(result.mapped);
  EXPECT_EQ(period, static_cast<std::int64_t>(result.depth) * 10);
}

TEST(FlowMapTest, RegistersAndControlsSurvive) {
  const Netlist n = testing::fig1_circuit();
  const auto result = map4(n);
  EXPECT_EQ(result.mapped.register_count(), 2u);
  EXPECT_EQ(result.mapped.stats().with_en, 2u);
}

TEST(FlowMapTest, ControlConesAreMapped) {
  // An enable computed by logic must itself be covered by LUTs.
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId d = n.add_input("d");
  const NetId en = n.add_lut(TruthTable::or_n(2), {a, b}, "en");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = en;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q", q);
  const auto result = map4(n);
  EXPECT_GE(result.lut_count, 1u);
  ASSERT_EQ(result.mapped.register_count(), 1u);
  EXPECT_TRUE(result.mapped.reg(RegId{0}).en.valid());
}

TEST(FlowMapTest, AreaRecoveryPreservesDepthAndBehaviour) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist n = decompose_to_binary(random_sequential_circuit(seed));
    FlowMapOptions plain;
    FlowMapOptions recover;
    recover.area_recovery = true;
    const auto a = flowmap_map(n, plain);
    const auto b = flowmap_map(n, recover);
    // Depth-optimality is preserved exactly.
    EXPECT_EQ(b.depth, a.depth) << "seed " << seed;
    EquivalenceOptions opt;
    opt.runs = 2;
    opt.cycles = 32;
    opt.init_registers_by_name = true;
    const auto eq = check_sequential_equivalence(n, b.mapped, opt);
    EXPECT_TRUE(eq.equivalent) << "seed " << seed << ": "
                               << eq.counterexample;
  }
}

TEST(FlowMapTest, AreaRecoveryReusesSharedCone) {
  // Diamond: a shared subcone demanded by a deep consumer and tapped by a
  // shallow one. With recovery the shallow root reuses the shared net
  // instead of duplicating its cone.
  Netlist n;
  std::vector<NetId> ins;
  for (int i = 0; i < 4; ++i) {
    ins.push_back(n.add_input("i" + std::to_string(i)));
  }
  // shared = AND tree of all four inputs (depth 2 at k=2 bound).
  const NetId s1 = n.add_lut(TruthTable::and_n(2), {ins[0], ins[1]});
  const NetId s2 = n.add_lut(TruthTable::and_n(2), {ins[2], ins[3]});
  const NetId shared = n.add_lut(TruthTable::and_n(2), {s1, s2});
  // Deep consumer: a few more levels; shallow consumer: one gate on top.
  NetId deep = shared;
  for (int i = 0; i < 6; ++i) {
    deep = n.add_lut(TruthTable::xor_n(2), {deep, ins[i % 4]});
  }
  const NetId shallow = n.add_lut(TruthTable::inverter(), {shared});
  n.add_output("deep", deep);
  n.add_output("shallow", shallow);

  FlowMapOptions plain;
  FlowMapOptions recover;
  recover.area_recovery = true;
  const auto a = flowmap_map(n, plain);
  const auto b = flowmap_map(n, recover);
  EXPECT_EQ(b.depth, a.depth);
  EXPECT_LE(b.lut_count, a.lut_count);
}

TEST(FlowMapTest, RejectsUnboundedSubjectGraph) {
  Netlist n;
  std::vector<NetId> ins;
  for (int i = 0; i < 6; ++i) {
    ins.push_back(n.add_input("i" + std::to_string(i)));
  }
  n.add_output("o", n.add_lut(TruthTable::and_n(6), ins));
  FlowMapOptions opt;
  opt.k = 4;
  EXPECT_THROW(flowmap_map(n, opt), std::invalid_argument);
}

}  // namespace
}  // namespace mcrt

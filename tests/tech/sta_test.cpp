#include "tech/sta.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(StaTest, ChainDelayAccumulates) {
  const Netlist n = testing::chain_circuit(5, 1, /*gate_delay=*/3);
  EXPECT_EQ(compute_period(n), 15);
}

TEST(StaTest, RegistersCutPaths) {
  // 2 gates, register, 3 gates: period = 3 * gate_delay.
  Netlist n;
  const NetId clk = n.add_input("clk");
  NetId net = n.add_input("in");
  for (int i = 0; i < 2; ++i) {
    net = n.add_lut(TruthTable::inverter(), {net});
    n.set_node_delay(NodeId{n.net(net).driver.index}, 5);
  }
  Register ff;
  ff.d = net;
  ff.clk = clk;
  net = n.add_register(std::move(ff));
  for (int i = 0; i < 3; ++i) {
    net = n.add_lut(TruthTable::inverter(), {net});
    n.set_node_delay(NodeId{n.net(net).driver.index}, 5);
  }
  n.add_output("o", net);
  EXPECT_EQ(compute_period(n), 15);
}

TEST(StaTest, ControlPinsAreEndpoints) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  const NetId d = n.add_input("d");
  NetId en = a;
  for (int i = 0; i < 4; ++i) {
    en = n.add_lut(TruthTable::inverter(), {en});
    n.set_node_delay(NodeId{n.net(en).driver.index}, 7);
  }
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = en;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q", q);
  EXPECT_EQ(compute_period(n), 28);  // the enable cone is the critical path
}

TEST(StaTest, ArrivalTimesExposed) {
  const Netlist n = testing::chain_circuit(3, 1, 2);
  const TimingReport report = analyze_timing(n);
  EXPECT_EQ(report.period, 6);
  // Arrival at the PI is 0.
  EXPECT_EQ(report.arrival[n.node(n.inputs()[0]).output.index()], 0);
}

TEST(StaTest, PureCombinationalCircuit) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId g = n.add_lut(TruthTable::inverter(), {a});
  n.set_node_delay(NodeId{n.net(g).driver.index}, 4);
  n.add_output("o", g);
  EXPECT_EQ(compute_period(n), 4);
}

TEST(StaTest, EmptyDelaysGiveZero) {
  const Netlist n = testing::fig1_circuit();  // delays default to 0
  EXPECT_EQ(compute_period(n), 0);
}

}  // namespace
}  // namespace mcrt

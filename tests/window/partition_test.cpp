// Partitioner invariants: every movable vertex lands in exactly one
// window, windows respect the size cap, the cut statistics match a
// recount, and the result is deterministic in the seed.
#include "window/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "mcretime/mcgraph.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

bool movable(const McGraph& g, std::uint32_t v) {
  const McVertexKind kind = g.kind(VertexId{v});
  return kind == McVertexKind::kGate || kind == McVertexKind::kSeparator;
}

McGraph test_graph(std::uint64_t seed) {
  RandomCircuitOptions options;
  options.gates = 120;
  options.registers = 24;
  options.feedback_registers = 4;
  return build_mc_graph(random_sequential_circuit(seed, options));
}

TEST(PartitionTest, EveryMovableAssignedExactlyOnce) {
  const McGraph g = test_graph(7);
  PartitionOptions options;
  options.max_window = 32;
  const WindowPartition part = partition_mc_graph(g, options);
  ASSERT_GT(part.window_count(), 1u);

  std::set<std::uint32_t> seen;
  for (std::size_t w = 0; w < part.window_count(); ++w) {
    EXPECT_FALSE(part.windows[w].empty()) << "empty window " << w;
    for (const std::uint32_t v : part.windows[w]) {
      EXPECT_TRUE(movable(g, v));
      EXPECT_EQ(part.window_of[v], w);
      EXPECT_TRUE(seen.insert(v).second) << "vertex " << v << " twice";
    }
  }
  for (std::uint32_t v = 0; v < g.vertex_count(); ++v) {
    if (movable(g, v)) {
      EXPECT_NE(part.window_of[v], WindowPartition::kUnassigned);
    } else {
      EXPECT_EQ(part.window_of[v], WindowPartition::kUnassigned);
    }
  }
}

TEST(PartitionTest, RespectsSizeCap) {
  const McGraph g = test_graph(11);
  PartitionOptions options;
  options.max_window = 24;
  const WindowPartition part = partition_mc_graph(g, options);
  for (std::size_t w = 0; w < part.window_count(); ++w) {
    EXPECT_LE(part.windows[w].size(), options.max_window);
  }
}

TEST(PartitionTest, CutStatisticsMatchRecount) {
  const McGraph g = test_graph(13);
  PartitionOptions options;
  options.max_window = 32;
  const WindowPartition part = partition_mc_graph(g, options);

  // A cut edge joins two *different assigned* windows; edges touching
  // pinned vertices (inputs, outputs, host) move no registers and are not
  // part of the cut.
  std::size_t cut_edges = 0;
  std::size_t cut_registers = 0;
  const Digraph& dg = g.digraph();
  for (std::size_t e = 0; e < dg.edge_count(); ++e) {
    const EdgeId eid{static_cast<std::uint32_t>(e)};
    const std::uint32_t a = part.window_of[dg.from(eid).index()];
    const std::uint32_t b = part.window_of[dg.to(eid).index()];
    if (a != b && a != WindowPartition::kUnassigned &&
        b != WindowPartition::kUnassigned) {
      ++cut_edges;
      cut_registers += g.regs(eid).size();
    }
  }
  EXPECT_EQ(part.cut_edges, cut_edges);
  EXPECT_EQ(part.cut_registers, cut_registers);
}

TEST(PartitionTest, DeterministicInSeed) {
  const McGraph g = test_graph(17);
  PartitionOptions options;
  options.max_window = 32;
  options.seed = 5;
  const WindowPartition a = partition_mc_graph(g, options);
  const WindowPartition b = partition_mc_graph(g, options);
  EXPECT_EQ(a.window_of, b.window_of);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

TEST(PartitionTest, FixedWindowCountIsHonored) {
  const McGraph g = test_graph(19);
  PartitionOptions options;
  options.window_count = 3;
  const WindowPartition part = partition_mc_graph(g, options);
  // Empty windows are dropped, so <= the request; on a 120-gate graph all
  // three should survive.
  EXPECT_EQ(part.window_count(), 3u);
}

}  // namespace
}  // namespace mcrt

// End-to-end windowed flow: differential against the monolithic flow
// (equivalence, period quality), determinism in the worker count,
// cancellation, the solve-only mode and the retime-windowed script pass.
#include "window/windowed_retime.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "mcretime/lower.h"
#include "netlist/structural_hash.h"
#include "pipeline/diagnostics.h"
#include "pipeline/flow_context.h"
#include "pipeline/flow_script.h"
#include "pipeline/pass_manager.h"
#include "sim/equivalence.h"
#include "tech/sta.h"
#include "verify/ternary_bmc.h"
#include "workload/generator.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

Netlist with_delays(Netlist n, std::int64_t delay = 10) {
  for (std::size_t i = 0; i < n.node_count(); ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (n.node(id).kind == NodeKind::kLut) n.set_node_delay(id, delay);
  }
  return n;
}

WindowedRetimeOptions small_window_options() {
  WindowedRetimeOptions options;
  options.partition.max_window = 16;  // force several windows even on
  options.jobs = 2;                   // test-sized circuits
  return options;
}

TEST(WindowedRetimeTest, ChainReachesMonolithicOptimum) {
  // One window covers the whole chain: the windowed flow degenerates to
  // the monolithic solve and must find the same optimum (6 -> 2).
  const Netlist n = testing::chain_circuit(6, 2);
  WindowedRetimeOptions options;
  options.base.objective = McRetimeOptions::Objective::kMinPeriod;
  const WindowedRetimeResult result = retime_windowed(n, options);
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.stats.period_before, 6);
  EXPECT_EQ(result.stats.period_after, 2);
  EXPECT_EQ(compute_period(result.netlist), 2);
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(WindowedRetimeTest, DifferentialAgainstMonolithic) {
  for (const CircuitProfile& profile : random_suite(4, 23)) {
    SCOPED_TRACE(profile.name);
    const Netlist n = with_delays(generate_circuit(profile));

    McRetimeOptions mono_options;
    const McRetimeResult mono = mc_retime(n, mono_options);
    ASSERT_TRUE(mono.success) << mono.error;

    const WindowedRetimeResult windowed =
        retime_windowed(n, small_window_options());
    ASSERT_TRUE(windowed.success) << windowed.error;
    EXPECT_TRUE(windowed.netlist.validate().empty());

    // The monolithic solve is optimal, so the windowed period may trail
    // it but never beat it; both flows report the same starting period.
    EXPECT_EQ(windowed.stats.period_before, mono.stats.period_before);
    EXPECT_GE(windowed.stats.period_after, mono.stats.period_after);

    const auto eq = check_sequential_equivalence(n, windowed.netlist, {});
    EXPECT_TRUE(eq.equivalent) << eq.counterexample;

    TernaryBmcOptions bmc;
    bmc.depth = 6;
    bmc.x_refinement_ok = true;
    const auto verdict = check_ternary_bmc(n, windowed.netlist, bmc);
    EXPECT_NE(verdict.verdict, TernaryBmcResult::Verdict::kMismatch)
        << verdict.detail;
  }
}

TEST(WindowedRetimeTest, DeterministicInWorkerCount) {
  RandomCircuitOptions circuit;
  circuit.gates = 150;
  circuit.registers = 30;
  circuit.feedback_registers = 4;
  const Netlist n = with_delays(random_sequential_circuit(31, circuit));

  WindowedRetimeOptions one = small_window_options();
  one.jobs = 1;
  WindowedRetimeOptions many = small_window_options();
  many.jobs = 4;
  const WindowedRetimeResult a = retime_windowed(n, one);
  const WindowedRetimeResult b = retime_windowed(n, many);
  ASSERT_TRUE(a.success) << a.error;
  ASSERT_TRUE(b.success) << b.error;
  // Windows write disjoint label slices and acceptance checks run on the
  // coordinating thread, so the labeling is independent of the pool size.
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.stats.period_after, b.stats.period_after);
  EXPECT_EQ(a.netlist.register_count(), b.netlist.register_count());
}

TEST(WindowedRetimeTest, SolveOnlyReturnsLegalLabels) {
  RandomCircuitOptions circuit;
  circuit.gates = 120;
  circuit.registers = 24;
  const Netlist n = with_delays(random_sequential_circuit(37, circuit));

  WindowedRetimeOptions options = small_window_options();
  options.solve_only = true;
  const WindowedRetimeResult result = retime_windowed(n, options);
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.netlist.node_count(), 0u);

  // Rebuild the lowered graph independently and check the labels on it.
  const McPrepared prepared = prepare_mc_graph(n, options.base);
  const RetimeGraph global =
      lower_to_retime_graph(prepared.graph, prepared.bounds);
  ASSERT_EQ(result.labels.size(), global.vertex_count());
  EXPECT_TRUE(global.check_legal(result.labels).empty())
      << global.check_legal(result.labels);
  EXPECT_EQ(global.period(result.labels), result.stats.period_after);
}

TEST(WindowedRetimeTest, CancellationUnwinds) {
  const Netlist n = with_delays(generate_circuit(random_suite(1, 41)[0]));
  CancelToken cancel;
  cancel.request_cancel();
  WindowedRetimeOptions options = small_window_options();
  options.base.cancel = &cancel;
  EXPECT_THROW(retime_windowed(n, options), CancelledError);
}

/// Cancels via the progress stream once `trigger` appears, then asserts the
/// flow unwinds as CancelledError without touching the host netlist, and
/// that the same inputs still solve cleanly afterwards.
void check_mid_flight_cancel(const char* trigger) {
  SCOPED_TRACE(trigger);
  RandomCircuitOptions circuit;
  circuit.gates = 150;
  circuit.registers = 30;
  circuit.feedback_registers = 4;
  const Netlist n = with_delays(random_sequential_circuit(53, circuit));
  const std::uint64_t revision_before = n.revision();
  const StructuralHash hash_before = structural_hash(n);

  CancelToken cancel;
  WindowedRetimeOptions options = small_window_options();
  options.base.cancel = &cancel;
  bool fired = false;
  options.progress = [&](const std::string& line) {
    if (!fired && line.rfind(trigger, 0) == 0) {
      fired = true;
      cancel.request_cancel();
    }
  };
  EXPECT_THROW(retime_windowed(n, options), CancelledError);
  EXPECT_TRUE(fired) << "progress line never arrived";

  // No partial labels or rebuilt registers may escape into the host: the
  // input is byte-for-byte the circuit it was.
  EXPECT_EQ(n.revision(), revision_before);
  EXPECT_EQ(structural_hash(n), hash_before);

  // A clean re-run over the unchanged input must succeed.
  WindowedRetimeOptions clean = small_window_options();
  const WindowedRetimeResult result = retime_windowed(n, clean);
  ASSERT_TRUE(result.success) << result.error;
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(WindowedRetimeTest, CancelDuringWindowStitchingUnwindsCleanly) {
  // "windows: N ..." is printed right before the stage-1 parallel solves
  // and stitching — cancelling there aborts mid-stitch.
  check_mid_flight_cancel("windows: ");
}

TEST(WindowedRetimeTest, CancelDuringRefinementRoundsUnwindsCleanly) {
  // "stage 1: ..." is printed right before the boundary-refinement loop —
  // cancelling there aborts between refinement rounds.
  check_mid_flight_cancel("stage 1: ");
}

TEST(WindowedRetimeTest, WindowTimeoutDegradesGracefully) {
  RandomCircuitOptions circuit;
  circuit.gates = 200;
  circuit.registers = 40;
  const Netlist n = with_delays(random_sequential_circuit(43, circuit));

  WindowedRetimeOptions options = small_window_options();
  options.window_timeout_seconds = 1e-9;  // every window trips immediately
  const WindowedRetimeResult result = retime_windowed(n, options);
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GT(result.window_stats.window_timeouts, 0u);
  // Timed-out windows keep r = 0, which is always legal — the flow
  // degrades to "no improvement", never to a broken circuit.
  const auto eq = check_sequential_equivalence(n, result.netlist, {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
}

TEST(WindowedRetimeTest, ScriptPassRunsWindowedFlow) {
  const Netlist n = generate_circuit(random_suite(1, 47)[0]);
  PassManager manager{PassManagerOptions{}};
  const auto error = compile_flow_script(
      "retime-windowed(window-size=16,window-jobs=2)",
      PassRegistry::standard(), manager);
  ASSERT_FALSE(error.has_value()) << *error;

  StreamDiagnostics diag(stderr);
  FlowContext context(n, &diag);
  const FlowResult result = manager.run(context);
  ASSERT_TRUE(result.success) << result.error;
  const auto eq = check_sequential_equivalence(n, context.netlist(), {});
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
  EXPECT_GT(context.metrics().count("retime.windows"), 0u);
}

}  // namespace
}  // namespace mcrt

// The §4.1 composition property that makes windowing sound: the lowered
// retiming graph carries per-vertex r_min/r_max bounds, so a window solved
// with its boundary frozen at r = 0 yields labels that are legal in the
// *parent* graph — for each window alone, and for all windows stitched
// together. Exercised across EN, async-reset and plain register classes.
#include "window/extract.h"

#include <gtest/gtest.h>

#include "mcretime/lower.h"
#include "mcretime/mc_retime.h"
#include "retime/minperiod.h"
#include "window/partition.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

struct Lowered {
  McGraph mcg;
  RetimeGraph global;
};

Lowered lower_circuit(std::uint64_t seed, bool use_en, bool use_async) {
  RandomCircuitOptions circuit;
  circuit.gates = 100;
  circuit.registers = 20;
  circuit.feedback_registers = 3;
  circuit.use_en = use_en;
  circuit.use_async = use_async;
  const Netlist n = random_sequential_circuit(seed, circuit);
  McRetimeOptions options;
  McPrepared prepared = prepare_mc_graph(n, options);
  Lowered out;
  out.global = lower_to_retime_graph(prepared.graph, prepared.bounds);
  out.mcg = std::move(prepared.graph);
  return out;
}

void check_composition(std::uint64_t seed, bool use_en, bool use_async) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed << " en=" << use_en
                                    << " async=" << use_async);
  const Lowered lowered = lower_circuit(seed, use_en, use_async);
  const RetimeGraph& global = lowered.global;

  PartitionOptions popt;
  popt.max_window = 24;
  const WindowPartition part = partition_mc_graph(lowered.mcg, popt);
  ASSERT_GT(part.window_count(), 1u);
  const BoundaryTiming timing = compute_boundary_timing(global);

  std::vector<std::int64_t> stitched(global.vertex_count(), 0);
  for (std::size_t w = 0; w < part.window_count(); ++w) {
    const WindowProblem prob = extract_window(global, part, w, timing);
    // Boundary proxies are pinned: the outside is frozen at r = 0.
    for (std::uint32_t v = 1; v < prob.graph.vertex_count(); ++v) {
      if (prob.proxy(v)) {
        EXPECT_EQ(prob.graph.lower_bound(VertexId{v}), 0);
        EXPECT_EQ(prob.graph.upper_bound(VertexId{v}), 0);
      }
    }
    const RetimeSolution sol = minperiod_retime(prob.graph, FeasImpl::kCsr);
    ASSERT_TRUE(sol.feasible);
    ASSERT_TRUE(prob.graph.check_legal(sol.r).empty())
        << prob.graph.check_legal(sol.r);

    // One window's solution with everything else frozen at r = 0 is legal
    // in the parent graph: the bounds compose (paper §4.1).
    std::vector<std::int64_t> alone(global.vertex_count(), 0);
    stitch_window_labels(prob, sol.r, alone);
    EXPECT_TRUE(global.check_legal(alone).empty())
        << "window " << w << ": " << global.check_legal(alone);

    stitch_window_labels(prob, sol.r, stitched);
  }
  // All windows together: crossing edges see each endpoint move within its
  // own §4.1 bounds, so the union stays legal too.
  EXPECT_TRUE(global.check_legal(stitched).empty())
      << global.check_legal(stitched);
}

TEST(WindowComposeTest, PlainRegisters) {
  check_composition(3, /*use_en=*/false, /*use_async=*/false);
}

TEST(WindowComposeTest, EnableClasses) {
  check_composition(5, /*use_en=*/true, /*use_async=*/false);
}

TEST(WindowComposeTest, AsyncResetClasses) {
  check_composition(7, /*use_en=*/false, /*use_async=*/true);
}

TEST(WindowComposeTest, MixedClasses) {
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    check_composition(seed, /*use_en=*/true, /*use_async=*/true);
  }
}

TEST(WindowComposeTest, BoundaryTimingIsConservative) {
  const Lowered lowered = lower_circuit(21, true, true);
  const BoundaryTiming timing = compute_boundary_timing(lowered.global);
  ASSERT_EQ(timing.arrival.size(), lowered.global.vertex_count());
  for (std::uint32_t v = 0; v < lowered.global.vertex_count(); ++v) {
    // Arrival/required include the vertex's own delay, so they are at
    // least d(v) and never negative.
    EXPECT_GE(timing.arrival[v], lowered.global.delay(VertexId{v}));
    EXPECT_GE(timing.required[v], lowered.global.delay(VertexId{v}));
  }
}

}  // namespace
}  // namespace mcrt

// Schema validation, regression gating and serialization of the bench
// harness. The heavy end-to-end run is covered by the cli_bench_quick smoke
// test; here the report-shape logic is pinned on hand-built documents.
#include "perf/bench.h"

#include <gtest/gtest.h>

#include <variant>

namespace mcrt {
namespace {

Json entry(const char* circuit, double speedup, bool identical = true) {
  Json e = Json::object();
  e.set("circuit", circuit);
  e.set("legacy_seconds", 1.0);
  e.set("csr_seconds", 1.0 / speedup);
  e.set("speedup", speedup);
  e.set("identical", identical);
  return e;
}

Json report(std::initializer_list<Json> entries, double geomean) {
  Json::Array array;
  for (const Json& e : entries) array.push_back(e);
  Json summary = Json::object();
  summary.set("circuits", array.size());
  summary.set("geomean_speedup", geomean);
  summary.set("all_identical", true);
  Json doc = Json::object();
  doc.set("schema", kBenchRetimeSchema);
  doc.set("options", Json::object());
  doc.set("entries", Json(std::move(array)));
  doc.set("summary", std::move(summary));
  return doc;
}

TEST(BenchReportTest, ValidReportPasses) {
  const Json doc = report({entry("C1", 2.5), entry("C2", 3.0)}, 2.7);
  EXPECT_EQ(validate_bench_report(doc, kBenchRetimeSchema), "");
}

TEST(BenchReportTest, SchemaMismatchRejected) {
  const Json doc = report({entry("C1", 2.5)}, 2.5);
  EXPECT_NE(validate_bench_report(doc, kBenchSimSchema), "");
}

TEST(BenchReportTest, DivergedEnginesRejected) {
  const Json doc = report({entry("C1", 2.5, /*identical=*/false)}, 2.5);
  const std::string problem = validate_bench_report(doc, kBenchRetimeSchema);
  EXPECT_NE(problem.find("diverged"), std::string::npos) << problem;
}

TEST(BenchReportTest, EmptyAndMalformedRejected) {
  EXPECT_NE(validate_bench_report(Json("nope"), kBenchRetimeSchema), "");
  EXPECT_NE(validate_bench_report(report({}, 1.0), kBenchRetimeSchema), "");
  Json no_speedup = Json::object();
  no_speedup.set("circuit", "C1");
  no_speedup.set("identical", true);
  EXPECT_NE(validate_bench_report(report({no_speedup}, 1.0),
                                  kBenchRetimeSchema),
            "");
}

TEST(BenchRegressionTest, WithinToleranceIsClean) {
  const Json baseline = report({entry("C1", 2.0), entry("C2", 4.0)}, 2.8);
  // 15% slower than baseline everywhere: inside a 20% gate.
  const Json current = report({entry("C1", 1.7), entry("C2", 3.4)}, 2.4);
  EXPECT_TRUE(bench_regressions(current, baseline, 0.20).empty());
}

TEST(BenchRegressionTest, RegressionBeyondToleranceFlagged) {
  // C1 falls beyond the 20% floor; the geomean stays inside it so only the
  // per-circuit column is flagged.
  const Json baseline = report({entry("C1", 2.0), entry("C2", 4.0)}, 2.8);
  const Json current = report({entry("C1", 1.2), entry("C2", 4.0)}, 2.4);
  const auto regressions = bench_regressions(current, baseline, 0.20);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("C1"), std::string::npos);
}

TEST(BenchRegressionTest, ImprovementNeverFlagged) {
  const Json baseline = report({entry("C1", 2.0)}, 2.0);
  const Json current = report({entry("C1", 20.0)}, 20.0);
  EXPECT_TRUE(bench_regressions(current, baseline, 0.20).empty());
}

TEST(BenchRegressionTest, MissingCircuitFlagged) {
  const Json baseline = report({entry("C1", 2.0), entry("C2", 4.0)}, 2.8);
  const Json current = report({entry("C1", 2.0)}, 2.0);
  const auto regressions = bench_regressions(current, baseline, 0.20);
  ASSERT_FALSE(regressions.empty());
  EXPECT_NE(regressions[0].find("C2"), std::string::npos);
}

TEST(BenchRegressionTest, SummaryGeomeanGated) {
  const Json baseline = report({entry("C1", 2.0)}, 4.0);
  const Json current = report({entry("C1", 2.0)}, 2.0);
  const auto regressions = bench_regressions(current, baseline, 0.20);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("summary"), std::string::npos);
}

TEST(BenchReportTest, PrettyWriterRoundTrips) {
  const Json doc = report({entry("C1", 2.5), entry("C2", 3.0)}, 2.7);
  const std::string text = write_bench_report(doc);
  // One entry per line for reviewable diffs.
  EXPECT_NE(text.find("\n    {"), std::string::npos);
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(std::holds_alternative<Json>(parsed));
  EXPECT_EQ(std::get<Json>(parsed).write(), doc.write());
}

}  // namespace
}  // namespace mcrt

// Table-driven hardening test: every class of malformed BLIF input must
// surface as a BlifError (or, for inputs that parse but describe a broken
// circuit, as Netlist::validate() problems) — never as a crash or a
// silently-wrong netlist.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "blif/blif.h"

namespace mcrt {
namespace {

struct MalformedCase {
  const char* label;
  const char* text;
  /// Substring expected in the BlifError message.
  const char* message_part;
};

TEST(BlifMalformedTest, RejectsWithDiagnostic) {
  const std::vector<MalformedCase> cases = {
      // --- truncation ----------------------------------------------------
      {"truncated mid-continuation",
       ".inputs a b\n.outputs y\n.names a b \\", "line continuation"},
      {"truncated .names header", ".names", ".names needs an output"},
      {"truncated .latch", ".latch d", ".latch needs input and output"},
      {"truncated .mclatch", ".mclatch d q", ".mclatch needs D, Q, clk="},
      {".latch type without control", ".latch d q re", "needs a control net"},
      // --- duplicate drivers ---------------------------------------------
      {"duplicate .names outputs",
       ".inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n",
       "multiple drivers"},
      {"latch Q redefined as .names output",
       ".inputs a d\n.outputs q\n.latch d q 2\n.names a q\n1 1\n.end\n",
       "multiple drivers"},
      {"duplicate latch Q",
       ".inputs a b\n.outputs q\n.latch a q 2\n.latch b q 2\n.end\n",
       "multiple drivers"},
      {"declared input is driven",
       ".inputs a\n.outputs a\n.names a\n1\n.end\n", "also driven"},
      // --- oversized / malformed covers ----------------------------------
      {"oversized .names",
       ".inputs a b c d e f g\n.outputs y\n.names a b c d e f g y\n"
       "1111111 1\n.end\n",
       ".names with 7 inputs"},
      {"cover row arity mismatch",
       ".inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n",
       "arity mismatch"},
      {"bad cover character",
       ".inputs a b\n.outputs y\n.names a b y\n1x 1\n.end\n",
       "bad cover character"},
      {"bad cover output",
       ".inputs a b\n.outputs y\n.names a b y\n11 2\n.end\n",
       "cover output must be 0 or 1"},
      {"mixed-polarity cover",
       ".inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n",
       "mixed-polarity"},
      {"cover row with no .names", "11 1\n", "cover row outside .names"},
      {"malformed cover row",
       ".inputs a b\n.outputs y\n.names a b y\n1 1 1\n.end\n",
       "malformed cover row"},
      // --- latches --------------------------------------------------------
      {"bad .latch init", ".inputs d\n.outputs q\n.latch d q 7\n.end\n",
       "bad .latch init value"},
      {"trailing .latch tokens",
       ".inputs d\n.outputs q\n.latch d q re clk 2 junk\n.end\n",
       "trailing tokens"},
      {"malformed .mclatch attribute",
       ".inputs d\n.outputs q\n.mclatch d q clk\n.end\n",
       "malformed .mclatch attribute"},
      {".mclatch without clk",
       ".inputs d e\n.outputs q\n.mclatch d q en=e\n.end\n",
       ".mclatch requires clk="},
      {"bad .mclatch reset value",
       ".inputs d c\n.outputs q\n.mclatch d q clk=c sync=c:x\n.end\n",
       "bad reset value"},
      {"unknown .mclatch attribute",
       ".inputs d c\n.outputs q\n.mclatch d q clk=c foo=c\n.end\n",
       "unknown .mclatch attribute"},
      // --- dangling references -------------------------------------------
      {"undefined output", ".inputs a\n.outputs y\n.end\n", "never defined"},
      {"unsupported construct",
       ".inputs a\n.outputs y\n.subckt sub a=a y=y\n.end\n",
       "unsupported BLIF construct"},
  };
  for (const MalformedCase& c : cases) {
    SCOPED_TRACE(c.label);
    auto result = read_blif_string(c.text);
    ASSERT_TRUE(std::holds_alternative<BlifError>(result))
        << "expected a parse error, got a netlist";
    const BlifError& err = std::get<BlifError>(result);
    EXPECT_NE(err.message.find(c.message_part), std::string::npos)
        << "message was: " << err.message;
  }
}

// Inputs that parse but describe circuits the rest of the stack must not
// choke on: the reader hands them over, validate() names the problem.
TEST(BlifMalformedTest, CombinationalCycleFlaggedByValidate) {
  auto result = read_blif_string(
      ".inputs a\n.outputs y\n"
      ".names a y x\n11 1\n.names a x y\n11 1\n.end\n");
  ASSERT_TRUE(std::holds_alternative<Netlist>(result));
  const Netlist& netlist = std::get<Netlist>(result);
  const std::vector<std::string> problems = netlist.validate();
  bool cycle = false;
  for (const std::string& p : problems) {
    if (p.find("cycle") != std::string::npos) cycle = true;
  }
  EXPECT_TRUE(cycle) << "validate() did not flag the combinational cycle";
}

TEST(BlifMalformedTest, CyclicLatchesAreLegal) {
  // Two registers in a ring are sequentially fine — the reader must accept
  // them and the netlist must validate (no combinational cycle).
  auto result = read_blif_string(
      ".inputs\n.outputs q\n.latch p q 2\n.latch q p 2\n.end\n");
  ASSERT_TRUE(std::holds_alternative<Netlist>(result));
  EXPECT_TRUE(std::get<Netlist>(result).validate().empty());
}

TEST(BlifMalformedTest, EmptyAndCommentOnlyFiles) {
  // Degenerate but syntactically fine: empty netlist, no crash.
  for (const char* text : {"", "# just a comment\n", "\n\n\n", ".end\n"}) {
    SCOPED_TRACE(text);
    auto result = read_blif_string(text);
    EXPECT_TRUE(std::holds_alternative<Netlist>(result));
  }
}

TEST(BlifMalformedTest, MissingFileIsDiagnosed) {
  auto result = read_blif_file("/nonexistent/path/to/circuit.blif");
  ASSERT_TRUE(std::holds_alternative<BlifError>(result));
  EXPECT_NE(std::get<BlifError>(result).message.find("cannot open"),
            std::string::npos);
}

}  // namespace
}  // namespace mcrt

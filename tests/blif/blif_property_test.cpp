// Round-trip property: write(read(write(n))) is stable and behaviourally
// identical for random multi-class circuits, including after retiming
// (which produces the name-collision-prone rebuilt netlists).
#include <gtest/gtest.h>

#include "blif/blif.h"
#include "mcretime/mc_retime.h"
#include "sim/equivalence.h"
#include "transform/sweep.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

class BlifRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlifRoundTrip, RandomCircuitSurvives) {
  RandomCircuitOptions opt;
  opt.use_sync = GetParam() % 2 == 0;
  const Netlist n = sweep(random_sequential_circuit(GetParam(), opt), nullptr);
  const std::string text = write_blif_string(n);
  auto parsed = read_blif_string(text);
  ASSERT_TRUE(std::holds_alternative<Netlist>(parsed))
      << std::get<BlifError>(parsed).message;
  const Netlist& back = std::get<Netlist>(parsed);
  EXPECT_TRUE(back.validate().empty());
  EXPECT_EQ(back.register_count(), n.register_count());
  // The writer may add one buffer per primary output whose name differs
  // from its source net; nothing else.
  EXPECT_GE(back.stats().luts, n.stats().luts);
  EXPECT_LE(back.stats().luts, n.stats().luts + n.outputs().size());
  EquivalenceOptions eq_opt;
  eq_opt.runs = 2;
  eq_opt.cycles = 32;
  eq_opt.init_registers_by_name = false;
  const auto eq = check_sequential_equivalence(n, back, eq_opt);
  EXPECT_TRUE(eq.equivalent) << eq.counterexample;
  // From the second trip on the text is a fixed point.
  const std::string text2 = write_blif_string(back);
  auto parsed2 = read_blif_string(text2);
  ASSERT_TRUE(std::holds_alternative<Netlist>(parsed2));
  EXPECT_EQ(write_blif_string(std::get<Netlist>(parsed2)), text2);
}

TEST_P(BlifRoundTrip, RetimedCircuitSurvives) {
  RandomCircuitOptions opt;
  opt.gates = 22;
  opt.registers = 6;
  Netlist n = sweep(random_sequential_circuit(GetParam(), opt), nullptr);
  for (std::size_t i = 0; i < n.node_count(); ++i) {
    if (n.nodes()[i].kind == NodeKind::kLut) {
      n.set_node_delay(NodeId{static_cast<std::uint32_t>(i)}, 10);
    }
  }
  const auto retimed = mc_retime(n, {});
  ASSERT_TRUE(retimed.success) << retimed.error;
  const std::string text = write_blif_string(retimed.netlist);
  auto parsed = read_blif_string(text);
  ASSERT_TRUE(std::holds_alternative<Netlist>(parsed))
      << std::get<BlifError>(parsed).message << "\n"
      << text;
  const Netlist& back = std::get<Netlist>(parsed);
  EXPECT_TRUE(back.validate().empty());
  EXPECT_EQ(back.register_count(), retimed.netlist.register_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mcrt

#include "blif/blif.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "sim/equivalence.h"

namespace mcrt {
namespace {

Netlist parse_ok(const std::string& text) {
  auto result = read_blif_string(text);
  if (auto* err = std::get_if<BlifError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return Netlist{};
  }
  return std::move(std::get<Netlist>(result));
}

BlifError parse_err(const std::string& text) {
  auto result = read_blif_string(text);
  if (std::holds_alternative<Netlist>(result)) {
    ADD_FAILURE() << "expected parse error";
    return {};
  }
  return std::get<BlifError>(result);
}

TEST(BlifReaderTest, MinimalCombinational) {
  const Netlist n = parse_ok(R"(
.model t
.inputs a b
.outputs y
.names a b y
11 1
.end
)");
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_TRUE(n.validate().empty());
  const auto stats = n.stats();
  EXPECT_EQ(stats.luts, 1u);
}

TEST(BlifReaderTest, CoverSemanticsAnd) {
  const Netlist n = parse_ok(
      ".inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n");
  // Find the LUT and verify it is AND2.
  for (const Node& node : n.nodes()) {
    if (node.kind == NodeKind::kLut) {
      EXPECT_EQ(node.function, TruthTable::and_n(2));
    }
  }
}

TEST(BlifReaderTest, DontCareCubes) {
  const Netlist n = parse_ok(
      ".inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n");
  for (const Node& node : n.nodes()) {
    if (node.kind == NodeKind::kLut) {
      EXPECT_EQ(node.function, TruthTable::or_n(2));
    }
  }
}

TEST(BlifReaderTest, OffsetCover) {
  const Netlist n = parse_ok(
      ".inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n");
  for (const Node& node : n.nodes()) {
    if (node.kind == NodeKind::kLut) {
      EXPECT_EQ(node.function, TruthTable::nand_n(2));
    }
  }
}

TEST(BlifReaderTest, ConstantFunctions) {
  const Netlist n = parse_ok(
      ".inputs a\n.outputs y z\n.names y\n1\n.names z\n.names a unused\n1 1\n.end\n");
  EXPECT_EQ(n.const_value(n.node(n.outputs()[0]).fanins[0]), true);
  EXPECT_EQ(n.const_value(n.node(n.outputs()[1]).fanins[0]), false);
}

TEST(BlifReaderTest, LatchWithClockAndInit) {
  const Netlist n = parse_ok(R"(
.inputs d clk
.outputs q
.latch d q re clk 0
.end
)");
  ASSERT_EQ(n.register_count(), 1u);
  const Register& ff = n.reg(RegId{0});
  EXPECT_EQ(n.net(ff.clk).name, "clk");
  // init 0 becomes an async clear from the synthetic power-on-reset input.
  ASSERT_TRUE(ff.async_ctrl.valid());
  EXPECT_EQ(ff.async_val, ResetVal::kZero);
  EXPECT_EQ(n.net(ff.async_ctrl).name, "__por");
}

TEST(BlifReaderTest, LatchDefaultClockSynthesized) {
  const Netlist n = parse_ok(
      ".inputs d\n.outputs q\n.latch d q 2\n.end\n");
  ASSERT_EQ(n.register_count(), 1u);
  EXPECT_EQ(n.net(n.reg(RegId{0}).clk).name, "__clk");
}

TEST(BlifReaderTest, McLatchFull) {
  const Netlist n = parse_ok(R"(
.inputs d clk en sr ar
.outputs q
.mclatch d q clk=clk en=en sync=sr:1 async=ar:0
.end
)");
  ASSERT_EQ(n.register_count(), 1u);
  const Register& ff = n.reg(RegId{0});
  EXPECT_TRUE(ff.en.valid());
  EXPECT_EQ(ff.sync_val, ResetVal::kOne);
  EXPECT_EQ(ff.async_val, ResetVal::kZero);
}

TEST(BlifReaderTest, LineContinuation) {
  const Netlist n = parse_ok(
      ".inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n");
  EXPECT_EQ(n.inputs().size(), 2u);
}

TEST(BlifReaderTest, CommentsStripped) {
  const Netlist n = parse_ok(
      "# header\n.inputs a # trailing\n.outputs y\n.names a y # gate\n1 1\n.end\n");
  EXPECT_EQ(n.inputs().size(), 1u);
}

TEST(BlifReaderTest, ErrorOnMultipleDrivers) {
  const auto err = parse_err(
      ".inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n1 1\n.end\n");
  EXPECT_NE(err.message.find("multiple drivers"), std::string::npos);
}

TEST(BlifReaderTest, ErrorOnArityMismatch) {
  const auto err =
      parse_err(".inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n");
  EXPECT_NE(err.message.find("arity"), std::string::npos);
}

TEST(BlifReaderTest, ErrorOnUnsupportedConstruct) {
  const auto err = parse_err(".inputs a\n.outputs y\n.subckt foo x=a\n.end\n");
  EXPECT_NE(err.message.find("unsupported"), std::string::npos);
}

TEST(BlifReaderTest, ErrorOnTooManyInputs) {
  const auto err = parse_err(
      ".inputs a b c d e f g\n.outputs y\n.names a b c d e f g y\n1111111 1\n.end\n");
  EXPECT_NE(err.message.find("inputs"), std::string::npos);
}

TEST(BlifRoundTripTest, Fig1RoundTripsFunctionally) {
  const Netlist original = testing::fig1_circuit();
  const std::string text = write_blif_string(original, "fig1");
  auto parsed = read_blif_string(text);
  ASSERT_TRUE(std::holds_alternative<Netlist>(parsed))
      << std::get<BlifError>(parsed).message << "\n" << text;
  const Netlist& back = std::get<Netlist>(parsed);
  EXPECT_TRUE(back.validate().empty());
  EXPECT_EQ(back.register_count(), original.register_count());
  const auto result =
      check_sequential_equivalence(original, back, EquivalenceOptions{});
  EXPECT_TRUE(result.equivalent) << result.counterexample;
}

TEST(BlifRoundTripTest, ComplexRegistersPreserved) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId rst = n.add_input("rst");
  const NetId en = n.add_input("en");
  const NetId d = n.add_input("d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.en = en;
  ff.async_ctrl = rst;
  ff.async_val = ResetVal::kOne;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("q_out", q);

  const std::string text = write_blif_string(n);
  auto parsed = read_blif_string(text);
  ASSERT_TRUE(std::holds_alternative<Netlist>(parsed));
  const Netlist& back = std::get<Netlist>(parsed);
  ASSERT_EQ(back.register_count(), 1u);
  const Register& ff2 = back.reg(RegId{0});
  EXPECT_TRUE(ff2.en.valid());
  EXPECT_EQ(ff2.async_val, ResetVal::kOne);
  EXPECT_EQ(ff2.sync_val, ResetVal::kDontCare);
}

TEST(BlifWriterTest, FileRoundTrip) {
  const Netlist n = testing::chain_circuit(3, 2);
  const std::string path = ::testing::TempDir() + "/mcrt_blif_test.blif";
  ASSERT_TRUE(write_blif_file(n, path));
  auto parsed = read_blif_file(path);
  ASSERT_TRUE(std::holds_alternative<Netlist>(parsed));
  EXPECT_EQ(std::get<Netlist>(parsed).register_count(), 2u);
}

}  // namespace
}  // namespace mcrt

#include "netlist/truth_table.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(TruthTableTest, Constants) {
  EXPECT_TRUE(TruthTable::constant(true).eval(0));
  EXPECT_FALSE(TruthTable::constant(false).eval(0));
  EXPECT_TRUE(TruthTable::constant(true).is_const(true));
  EXPECT_TRUE(TruthTable::constant(false).is_const(false));
}

TEST(TruthTableTest, BasicGates) {
  const TruthTable inv = TruthTable::inverter();
  EXPECT_TRUE(inv.eval(0));
  EXPECT_FALSE(inv.eval(1));

  const TruthTable and3 = TruthTable::and_n(3);
  for (std::uint32_t row = 0; row < 8; ++row) {
    EXPECT_EQ(and3.eval(row), row == 7);
  }
  const TruthTable or2 = TruthTable::or_n(2);
  EXPECT_FALSE(or2.eval(0));
  EXPECT_TRUE(or2.eval(1));
  EXPECT_TRUE(or2.eval(2));
  EXPECT_TRUE(or2.eval(3));
  const TruthTable xor2 = TruthTable::xor_n(2);
  EXPECT_EQ(xor2.eval(0b00), false);
  EXPECT_EQ(xor2.eval(0b01), true);
  EXPECT_EQ(xor2.eval(0b10), true);
  EXPECT_EQ(xor2.eval(0b11), false);
  const TruthTable nand2 = TruthTable::nand_n(2);
  EXPECT_TRUE(nand2.eval(0));
  EXPECT_FALSE(nand2.eval(3));
}

TEST(TruthTableTest, Mux21) {
  const TruthTable mux = TruthTable::mux21();
  // inputs (sel, a, b): sel=0 -> a.
  EXPECT_EQ(mux.eval(0b010), true);   // sel=0, a=1, b=0
  EXPECT_EQ(mux.eval(0b100), false);  // sel=0, a=0, b=1
  EXPECT_EQ(mux.eval(0b101), true);   // sel=1, a=0, b=1
  EXPECT_EQ(mux.eval(0b011), false);  // sel=1, a=1, b=0
}

TEST(TruthTableTest, CofactorReducesArity) {
  const TruthTable mux = TruthTable::mux21();
  // sel = 0 leaves "a" (input 0 of the 2-input remainder).
  const TruthTable a_path = mux.cofactor(0, false);
  EXPECT_EQ(a_path.input_count(), 2u);
  EXPECT_EQ(a_path.eval(0b01), true);   // a=1, b=0
  EXPECT_EQ(a_path.eval(0b10), false);  // a=0, b=1
  const TruthTable b_path = mux.cofactor(0, true);
  EXPECT_EQ(b_path.eval(0b10), true);
}

TEST(TruthTableTest, InputRedundancy) {
  const TruthTable mux = TruthTable::mux21();
  EXPECT_FALSE(mux.input_redundant(0));
  // f(a, b) = a  (b redundant).
  const TruthTable proj(2, 0b1010);
  EXPECT_FALSE(proj.input_redundant(0));
  EXPECT_TRUE(proj.input_redundant(1));
}

TEST(TruthTableTest, TernaryEvalKnown) {
  const TruthTable and2 = TruthTable::and_n(2);
  const Trit both_one[] = {Trit::kOne, Trit::kOne};
  EXPECT_EQ(and2.eval_ternary(both_one), Trit::kOne);
  const Trit one_zero[] = {Trit::kOne, Trit::kZero};
  EXPECT_EQ(and2.eval_ternary(one_zero), Trit::kZero);
}

TEST(TruthTableTest, TernaryEvalControllingValue) {
  const TruthTable and2 = TruthTable::and_n(2);
  const Trit zero_x[] = {Trit::kZero, Trit::kUnknown};
  EXPECT_EQ(and2.eval_ternary(zero_x), Trit::kZero);  // 0 controls AND
  const TruthTable or2 = TruthTable::or_n(2);
  const Trit one_x[] = {Trit::kOne, Trit::kUnknown};
  EXPECT_EQ(or2.eval_ternary(one_x), Trit::kOne);
}

TEST(TruthTableTest, TernaryEvalUnknown) {
  const TruthTable xor2 = TruthTable::xor_n(2);
  const Trit x_one[] = {Trit::kUnknown, Trit::kOne};
  EXPECT_EQ(xor2.eval_ternary(x_one), Trit::kUnknown);
}

TEST(TruthTableTest, SixInputTable) {
  const TruthTable and6 = TruthTable::and_n(6);
  EXPECT_EQ(and6.eval(63), true);
  EXPECT_EQ(and6.eval(62), false);
  EXPECT_TRUE(TruthTable::or_n(6).eval(32));
}

TEST(TruthTableTest, BitsAboveRangeIgnored) {
  const TruthTable t(1, 0xFF);  // only bits 0..1 matter
  EXPECT_EQ(t.bits(), 0b11u);
}

TEST(TruthTableTest, ToStringFormat) {
  EXPECT_EQ(TruthTable::and_n(2).to_string(), "tt2:0x8");
}

}  // namespace
}  // namespace mcrt

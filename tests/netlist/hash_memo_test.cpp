// Revision counter, structural-hash memoization and reserve() behavior.
#include <gtest/gtest.h>

#include "../common/test_circuits.h"
#include "netlist/netlist.h"
#include "netlist/structural_hash.h"

namespace mcrt {
namespace {

TEST(NetlistRevisionTest, EveryMutatorBumpsTheRevision) {
  Netlist n;
  std::uint64_t last = n.revision();
  const auto bumped = [&] {
    const bool advanced = n.revision() > last;
    last = n.revision();
    return advanced;
  };

  const NetId a = n.add_input("a");
  EXPECT_TRUE(bumped());
  const NetId clk = n.add_input("clk");
  EXPECT_TRUE(bumped());
  const NetId x = n.add_net("x");
  EXPECT_TRUE(bumped());
  n.add_lut_driving(x, TruthTable::inverter(), {a});
  EXPECT_TRUE(bumped());
  const NetId g = n.add_lut(TruthTable::and_n(2), {a, x}, "g");
  EXPECT_TRUE(bumped());
  Register ff;
  ff.d = g;
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  EXPECT_TRUE(bumped());
  n.add_output("o", q);
  EXPECT_TRUE(bumped());
  n.set_node_delay(NodeId{0}, 3);
  EXPECT_TRUE(bumped());
  // Non-const accessors hand out mutable references, so they must count.
  (void)n.node(NodeId{0});
  EXPECT_TRUE(bumped());
  (void)n.reg(RegId{0});
  EXPECT_TRUE(bumped());

  // Const reads do not.
  const Netlist& cn = n;
  (void)cn.node(NodeId{0});
  (void)cn.net(a);
  EXPECT_EQ(cn.revision(), last);
}

TEST(StructuralHashMemoTest, CachedHashMatchesFreshComputation) {
  Netlist n = testing::fig1_circuit();
  const StructuralHash first = structural_hash(n);   // computes + caches
  const StructuralHash second = structural_hash(n);  // served from cache
  EXPECT_EQ(first, second);

  // An identically-built netlist (never hashed twice) agrees, so the cache
  // is returning the real hash, not a stale or partial one.
  const Netlist fresh = testing::fig1_circuit();
  EXPECT_EQ(structural_hash(fresh), first);
}

TEST(StructuralHashMemoTest, MutationInvalidatesTheCache) {
  Netlist n = testing::chain_circuit(4, 2);
  const StructuralHash before = structural_hash(n);
  // Structural change through a mutable reference: the inverter chain's
  // first gate becomes a buffer. The memo must notice and recompute.
  for (std::uint32_t v = 0; v < n.node_count(); ++v) {
    if (n.node(NodeId{v}).kind == NodeKind::kLut) {
      n.node(NodeId{v}).function = TruthTable::buffer();
      break;
    }
  }
  const StructuralHash after = structural_hash(n);
  EXPECT_NE(before, after);
}

TEST(NetlistReserveTest, ReserveDoesNotChangeContentsOrHash) {
  Netlist plain = testing::fig1_circuit();

  Netlist reserved;
  reserved.reserve(64, 32, 8);
  {
    // Rebuild fig1 into the reserved netlist.
    Netlist tmp = testing::fig1_circuit();
    reserved = std::move(tmp);
  }
  EXPECT_EQ(structural_hash(plain), structural_hash(reserved));

  // Reserving on a live netlist is a no-op for contents.
  const StructuralHash before = structural_hash(plain);
  plain.reserve(1000, 1000, 1000);
  EXPECT_EQ(plain.node_count(), reserved.node_count());
  EXPECT_EQ(structural_hash(plain), before);
}

}  // namespace
}  // namespace mcrt

#include "netlist/compact.h"

#include <gtest/gtest.h>

#include <vector>

#include "../common/test_circuits.h"
#include "workload/generator.h"
#include "workload/random_circuit.h"

namespace mcrt {
namespace {

// Register-class zoo: EN, sync clear, async set, don't-care resets.
Netlist class_zoo() {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  const NetId sc = n.add_input("sc");
  const NetId ar = n.add_input("ar");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g = n.add_lut(TruthTable::xor_n(2), {a, b}, "g");
  Register r0;
  r0.d = g;
  r0.clk = clk;
  r0.en = en;
  r0.name = "r_en";
  const NetId q0 = n.add_register(std::move(r0));
  Register r1;
  r1.d = q0;
  r1.clk = clk;
  r1.sync_ctrl = sc;
  r1.sync_val = ResetVal::kZero;
  r1.name = "r_sync";
  const NetId q1 = n.add_register(std::move(r1));
  Register r2;
  r2.d = q1;
  r2.clk = clk;
  r2.async_ctrl = ar;
  r2.async_val = ResetVal::kOne;
  r2.name = "r_async";
  const NetId q2 = n.add_register(std::move(r2));
  n.add_output("o", q2);
  return n;
}

TEST(CompactNetlistTest, MirrorsNodesNetsAndRegisters) {
  const Netlist n = class_zoo();
  const CompactNetlist c(n);

  ASSERT_EQ(c.node_count(), n.node_count());
  ASSERT_EQ(c.net_count(), n.net_count());
  ASSERT_EQ(c.register_count(), n.register_count());

  for (std::uint32_t v = 0; v < c.node_count(); ++v) {
    const Node& node = n.node(NodeId{v});
    EXPECT_EQ(c.node_kind(v), node.kind);
    EXPECT_EQ(c.node_delay(v), node.delay);
    if (node.kind == NodeKind::kOutput) {
      EXPECT_EQ(c.node_output(v), CompactNetlist::kNoNet);
    } else {
      EXPECT_EQ(c.node_output(v), node.output.value());
    }
    const auto fanins = c.fanins(v);
    ASSERT_EQ(fanins.size(), node.fanins.size());
    for (std::size_t p = 0; p < fanins.size(); ++p) {
      EXPECT_EQ(fanins[p], node.fanins[p].value());
    }
    if (node.kind == NodeKind::kLut) {
      EXPECT_EQ(c.tt_bits(v), node.function.bits());
      EXPECT_EQ(c.tt_arity(v), node.function.input_count());
    }
  }
  for (std::uint32_t net = 0; net < c.net_count(); ++net) {
    const NetDriver& driver = n.net(NetId{net}).driver;
    EXPECT_EQ(c.driver_kind(net), driver.kind);
    if (driver.kind != NetDriver::Kind::kNone) {
      EXPECT_EQ(c.driver_index(net), driver.index);
    }
  }
  for (std::uint32_t r = 0; r < c.register_count(); ++r) {
    const Register& reg = n.reg(RegId{r});
    EXPECT_EQ(c.reg_d(r), reg.d.value());
    EXPECT_EQ(c.reg_q(r), reg.q.value());
    EXPECT_EQ(c.reg_clk(r), reg.clk.value());
    EXPECT_EQ(c.reg_en(r),
              reg.en.valid() ? reg.en.value() : CompactNetlist::kNoNet);
    EXPECT_EQ(c.reg_sync(r), reg.sync_ctrl.valid()
                                 ? reg.sync_ctrl.value()
                                 : CompactNetlist::kNoNet);
    EXPECT_EQ(c.reg_async(r), reg.async_ctrl.valid()
                                  ? reg.async_ctrl.value()
                                  : CompactNetlist::kNoNet);
    EXPECT_EQ(c.reg_sync_val(r), reg.sync_val);
    EXPECT_EQ(c.reg_async_val(r), reg.async_val);
  }
  EXPECT_TRUE(c.has_async());
  EXPECT_FALSE(CompactNetlist(testing::fig1_circuit()).has_async());
}

TEST(CompactNetlistTest, CombOrderMatchesNetlist) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const Netlist n = random_sequential_circuit(seed);
    const CompactNetlist c(n);
    ASSERT_TRUE(c.acyclic());
    const auto order = n.combinational_order();
    ASSERT_TRUE(order.has_value());
    ASSERT_EQ(c.comb_order().size(), order->size());
    for (std::size_t i = 0; i < order->size(); ++i) {
      EXPECT_EQ(c.comb_order()[i], (*order)[i].value()) << "position " << i;
    }
  }
}

TEST(CompactNetlistTest, ReaderIndexMatchesNetlist) {
  const Netlist n = random_sequential_circuit(42);
  const CompactNetlist c(n);
  const std::vector<NetReaders> readers = n.build_reader_index();
  for (std::uint32_t net = 0; net < c.net_count(); ++net) {
    const auto nodes = c.reader_nodes(net);
    ASSERT_EQ(nodes.size(), readers[net].node_pins.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(nodes[i], readers[net].node_pins[i].node.value());
    }
    const auto regs = c.reader_regs(net);
    ASSERT_EQ(regs.size(), readers[net].reg_data.size());
    for (std::size_t i = 0; i < regs.size(); ++i) {
      EXPECT_EQ(regs[i], readers[net].reg_data[i].value());
    }
  }
}

TEST(CompactNetlistTest, InterfaceListsMatch) {
  const Netlist n = class_zoo();
  const CompactNetlist c(n);
  ASSERT_EQ(c.input_nodes().size(), n.inputs().size());
  for (std::size_t i = 0; i < n.inputs().size(); ++i) {
    EXPECT_EQ(c.input_nodes()[i], n.inputs()[i].value());
  }
  ASSERT_EQ(c.output_nodes().size(), n.outputs().size());
  for (std::size_t i = 0; i < n.outputs().size(); ++i) {
    EXPECT_EQ(c.output_nodes()[i], n.outputs()[i].value());
  }
}

TEST(CompactNetlistTest, ValidForTracksMutation) {
  Netlist n = class_zoo();
  const CompactNetlist c(n);
  EXPECT_TRUE(c.valid_for(n));

  n.set_node_delay(NodeId{0}, 5);
  EXPECT_FALSE(c.valid_for(n));

  const CompactNetlist rebuilt(n);
  EXPECT_TRUE(rebuilt.valid_for(n));

  // Non-const access counts as mutation: the caller may have written
  // through the reference.
  (void)n.node(NodeId{0});
  EXPECT_FALSE(rebuilt.valid_for(n));
}

TEST(CompactNetlistTest, CombinationalCycleIsFlagged) {
  Netlist n;
  n.add_input("i");
  const NetId x = n.add_net("x");
  const NetId y = n.add_lut(TruthTable::inverter(), {x}, "g1");
  n.add_lut_driving(x, TruthTable::inverter(), {y});
  const CompactNetlist c(n);
  EXPECT_FALSE(c.acyclic());
  EXPECT_TRUE(c.comb_order().empty());
}

TEST(CompactNetlistTest, WorkloadSuiteRoundTrips) {
  for (const CircuitProfile& profile : random_suite(8, 3)) {
    const Netlist n = generate_circuit(profile);
    const CompactNetlist c(n);
    EXPECT_TRUE(c.valid_for(n));
    EXPECT_TRUE(c.acyclic());
    EXPECT_EQ(c.node_count(), n.node_count());
    EXPECT_EQ(c.register_count(), n.register_count());
  }
}

}  // namespace
}  // namespace mcrt

#include "netlist/structural_hash.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "../common/test_circuits.h"
#include "blif/blif.h"
#include "netlist/netlist.h"

namespace mcrt {
namespace {

// The same two-gate, one-register circuit built with different insertion
// orders and different internal net names. Structurally identical.
Netlist demo_forward() {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  const NetId b = n.add_input("b");
  const NetId g = n.add_lut(TruthTable::xor_n(2), {a, b}, "g");
  const NetId inv = n.add_lut(TruthTable::inverter(), {g}, "inv");
  Register ff;
  ff.d = inv;
  ff.q = n.add_net("q");
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("o", q);
  return n;
}

Netlist demo_shuffled() {
  Netlist n;
  // Inputs declared in a different order, nets named differently, gates
  // created back-to-front via pre-declared nets.
  const NetId b = n.add_input("b");
  const NetId clk = n.add_input("clk");
  const NetId a = n.add_input("a");
  const NetId xor_net = n.add_net("t17");
  const NetId inv = n.add_lut(TruthTable::inverter(), {xor_net}, "n3");
  n.add_lut_driving(xor_net, TruthTable::xor_n(2), {a, b});
  Register ff;
  ff.d = inv;
  ff.q = n.add_net("state");
  ff.clk = clk;
  const NetId q = n.add_register(std::move(ff));
  n.add_output("o", q);
  return n;
}

TEST(StructuralHashTest, InsertionOrderAndNetNamesDoNotMatter) {
  const StructuralHash base = structural_hash(demo_forward());
  EXPECT_EQ(base, structural_hash(demo_shuffled()));
}

TEST(StructuralHashTest, HexIs128BitsAndNonTrivial) {
  const StructuralHash hash = structural_hash(demo_forward());
  EXPECT_EQ(hash.hex().size(), 32u);
  EXPECT_FALSE(hash.hi == 0 && hash.lo == 0);
}

TEST(StructuralHashTest, InterfaceNamesMatter) {
  Netlist renamed = demo_forward();
  // Primary IO names are part of what a circuit *is*.
  Netlist other;
  {
    other = demo_forward();
  }
  Netlist changed;
  {
    Netlist n;
    const NetId clk = n.add_input("clk");
    const NetId a = n.add_input("a");
    const NetId b = n.add_input("b");
    const NetId g = n.add_lut(TruthTable::xor_n(2), {a, b}, "g");
    const NetId inv = n.add_lut(TruthTable::inverter(), {g}, "inv");
    Register ff;
    ff.d = inv;
    ff.q = n.add_net("q");
    ff.clk = clk;
    const NetId q = n.add_register(std::move(ff));
    n.add_output("out_renamed", q);
    changed = std::move(n);
  }
  EXPECT_EQ(structural_hash(renamed), structural_hash(other));
  EXPECT_NE(structural_hash(renamed), structural_hash(changed));
}

TEST(StructuralHashTest, LogicFunctionMatters) {
  Netlist n = demo_forward();
  Netlist and_variant;
  {
    Netlist m;
    const NetId clk = m.add_input("clk");
    const NetId a = m.add_input("a");
    const NetId b = m.add_input("b");
    const NetId g = m.add_lut(TruthTable::and_n(2), {a, b}, "g");
    const NetId inv = m.add_lut(TruthTable::inverter(), {g}, "inv");
    Register ff;
    ff.d = inv;
    ff.q = m.add_net("q");
    ff.clk = clk;
    const NetId q = m.add_register(std::move(ff));
    m.add_output("o", q);
    and_variant = std::move(m);
  }
  EXPECT_NE(structural_hash(n), structural_hash(and_variant));
}

TEST(StructuralHashTest, RegisterClassMatters) {
  // Adding an enable, a sync reset, or flipping a reset value must each
  // move the hash: they change the register's class, and classes decide
  // which registers may share a position after retiming.
  Netlist base = demo_forward();
  const StructuralHash h0 = structural_hash(base);

  Netlist with_en = demo_forward();
  with_en.reg(RegId{0}).en = with_en.node(with_en.inputs()[1]).output;
  const StructuralHash h_en = structural_hash(with_en);
  EXPECT_NE(h0, h_en);

  Netlist with_sync = demo_forward();
  with_sync.reg(RegId{0}).sync_ctrl =
      with_sync.node(with_sync.inputs()[2]).output;
  with_sync.reg(RegId{0}).sync_val = ResetVal::kZero;
  const StructuralHash h_sync0 = structural_hash(with_sync);
  EXPECT_NE(h0, h_sync0);
  EXPECT_NE(h_en, h_sync0);

  // Same wiring, different reset *value*: still a different class.
  with_sync.reg(RegId{0}).sync_val = ResetVal::kOne;
  const StructuralHash h_sync1 = structural_hash(with_sync);
  EXPECT_NE(h_sync0, h_sync1);

  // Async vs sync control on the same net: different class again.
  Netlist with_async = demo_forward();
  with_async.reg(RegId{0}).async_ctrl =
      with_async.node(with_async.inputs()[2]).output;
  with_async.reg(RegId{0}).async_val = ResetVal::kZero;
  EXPECT_NE(h_sync0, structural_hash(with_async));
}

TEST(StructuralHashTest, WriteReadRoundTripIsStable) {
  // The serve result cache keys on the hash of netlists *parsed from BLIF
  // text* — that is all the daemon ever sees. Parsed netlists must be a
  // round-trip fixpoint: write -> read must preserve the hash (and the
  // bytes), or resubmitting a circuit the server previously wrote out
  // would silently never hit the cache. (The very first serialization of a
  // hand-built netlist may differ structurally: the writer materializes
  // output-binding buffers that exist only implicitly in memory.)
  const Netlist circuits[] = {demo_forward(), testing::fig1_circuit()};
  for (const Netlist& original : circuits) {
    auto parsed = read_blif_string(write_blif_string(original, "rt"));
    ASSERT_TRUE(std::holds_alternative<Netlist>(parsed))
        << std::get<BlifError>(parsed).message;
    const Netlist& first = std::get<Netlist>(parsed);
    const StructuralHash anchor = structural_hash(first);

    const std::string text = write_blif_string(first, "rt");
    auto parsed2 = read_blif_string(text);
    ASSERT_TRUE(std::holds_alternative<Netlist>(parsed2));
    const Netlist& second = std::get<Netlist>(parsed2);
    EXPECT_EQ(anchor, structural_hash(second));
    // The serialization itself is a fixpoint too.
    EXPECT_EQ(text, write_blif_string(second, "rt"));
    // And re-parsing identical text is trivially identical.
    auto reparsed = read_blif_string(text);
    ASSERT_TRUE(std::holds_alternative<Netlist>(reparsed));
    EXPECT_EQ(structural_hash(second),
              structural_hash(std::get<Netlist>(reparsed)));
  }
}

TEST(StructuralHashTest, Fig1HashDiffersFromDemo) {
  EXPECT_NE(structural_hash(testing::fig1_circuit()),
            structural_hash(demo_forward()));
}

}  // namespace
}  // namespace mcrt

#include "netlist/dot_export.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(DotExportTest, ContainsAllElements) {
  const Netlist n = testing::fig1_circuit();
  const std::string dot = write_dot_string(n, "fig1");
  EXPECT_NE(dot.find("digraph \"fig1\""), std::string::npos);
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // registers
  EXPECT_NE(dot.find("en=en"), std::string::npos);          // control label
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // the AND gate
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(dot.front(), 'd');
  EXPECT_EQ(dot[dot.size() - 2], '}');
}

TEST(DotExportTest, ResetValuesAnnotated) {
  const Netlist n = testing::fig5_circuit();
  const std::string dot = write_dot_string(n);
  EXPECT_NE(dot.find("sync=srst:1"), std::string::npos);
  EXPECT_NE(dot.find("sync=srst:0"), std::string::npos);
}

TEST(DotExportTest, QuotesEscaped) {
  Netlist n;
  const NetId a = n.add_input("a\"b");
  n.add_output("o", a);
  const std::string dot = write_dot_string(n);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

TEST(DotExportTest, FileWrite) {
  const Netlist n = testing::chain_circuit(2, 1);
  const std::string path = ::testing::TempDir() + "/mcrt_dot_test.dot";
  EXPECT_TRUE(write_dot_file(n, path));
}

}  // namespace
}  // namespace mcrt

#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "../common/test_circuits.h"

namespace mcrt {
namespace {

TEST(NetlistTest, BuildFig1) {
  const Netlist n = testing::fig1_circuit();
  EXPECT_EQ(n.inputs().size(), 4u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.register_count(), 2u);
  EXPECT_TRUE(n.validate().empty()) << n.validate()[0];
}

TEST(NetlistTest, StatsCountKinds) {
  const Netlist n = testing::fig1_circuit();
  const auto stats = n.stats();
  EXPECT_EQ(stats.inputs, 4u);
  EXPECT_EQ(stats.outputs, 1u);
  EXPECT_EQ(stats.luts, 1u);
  EXPECT_EQ(stats.registers, 2u);
  EXPECT_EQ(stats.with_en, 2u);
  EXPECT_EQ(stats.with_async, 0u);
}

TEST(NetlistTest, ConstValue) {
  Netlist n;
  const NetId c1 = n.add_const(true);
  const NetId c0 = n.add_const(false);
  const NetId in = n.add_input("x");
  EXPECT_EQ(n.const_value(c1), true);
  EXPECT_EQ(n.const_value(c0), false);
  EXPECT_FALSE(n.const_value(in));
}

TEST(NetlistTest, ReaderIndex) {
  const Netlist n = testing::fig1_circuit();
  const auto readers = n.build_reader_index();
  // The enable net is read by two registers as control.
  const NetId en = n.node(n.inputs()[1]).output;
  EXPECT_EQ(readers[en.index()].reg_control.size(), 2u);
  EXPECT_TRUE(readers[en.index()].node_pins.empty());
}

TEST(NetlistTest, CombinationalOrderRespectsDependencies) {
  Netlist n;
  const NetId a = n.add_input("a");
  const NetId x = n.add_lut(TruthTable::inverter(), {a}, "x");
  const NetId y = n.add_lut(TruthTable::inverter(), {x}, "y");
  n.add_output("o", y);
  const auto order = n.combinational_order();
  ASSERT_TRUE(order);
  // x's node must come before y's node.
  std::size_t pos_x = 0;
  std::size_t pos_y = 0;
  for (std::size_t i = 0; i < order->size(); ++i) {
    if (n.node((*order)[i]).output == x) pos_x = i;
    if (n.node((*order)[i]).output == y) pos_y = i;
  }
  EXPECT_LT(pos_x, pos_y);
}

TEST(NetlistTest, CombinationalCycleDetected) {
  Netlist n;
  const NetId loop = n.add_net("loop");
  n.add_lut_driving(loop, TruthTable::inverter(), {loop});
  EXPECT_FALSE(n.combinational_order());
  EXPECT_FALSE(n.validate().empty());
}

TEST(NetlistTest, RegisterBreaksCycle) {
  // in -> gate -> FF -> back to gate: fine (sequential loop).
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId q_net = n.add_net("q");
  const NetId g = n.add_lut(TruthTable::xor_n(2), {n.add_input("a"), q_net});
  Register ff;
  ff.d = g;
  ff.q = q_net;
  ff.clk = clk;
  n.add_register(std::move(ff));
  n.add_output("o", g);
  EXPECT_TRUE(n.combinational_order());
  EXPECT_TRUE(n.validate().empty());
}

TEST(NetlistTest, ValidateCatchesUndrivenNet) {
  Netlist n;
  const NetId dangling = n.add_net("dangling");
  n.add_output("o", dangling);
  const auto problems = n.validate();
  ASSERT_FALSE(problems.empty());
}

TEST(NetlistTest, ValidateCatchesResetValueWithoutControl) {
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId d = n.add_input("d");
  Register ff;
  ff.d = d;
  ff.clk = clk;
  ff.sync_val = ResetVal::kOne;  // but no sync_ctrl
  // add_register asserts in debug; bypass via direct field mutation.
  const NetId q = n.add_register([&] {
    Register ok = ff;
    ok.sync_val = ResetVal::kDontCare;
    return ok;
  }());
  n.reg(RegId{0}).sync_val = ResetVal::kOne;
  n.add_output("o", q);
  EXPECT_FALSE(n.validate().empty());
}

TEST(NetlistTest, AddLutDrivingAttachesDriver) {
  Netlist n;
  const NetId pre = n.add_net("pre");
  const NetId a = n.add_input("a");
  n.add_lut_driving(pre, TruthTable::buffer(), {a});
  EXPECT_EQ(n.net(pre).driver.kind, NetDriver::Kind::kNode);
  n.add_output("o", pre);
  EXPECT_TRUE(n.validate().empty());
}

TEST(NetlistTest, CopySemantics) {
  const Netlist n = testing::fig1_circuit();
  Netlist copy = n;
  EXPECT_EQ(copy.register_count(), n.register_count());
  EXPECT_EQ(copy.node_count(), n.node_count());
  EXPECT_TRUE(copy.validate().empty());
}

}  // namespace
}  // namespace mcrt

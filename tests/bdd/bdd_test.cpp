#include "bdd/bdd.h"

#include <gtest/gtest.h>

namespace mcrt {
namespace {

TEST(BddTest, TerminalIdentities) {
  BddManager bdd;
  EXPECT_EQ(bdd.bdd_not(BddManager::kFalse), BddManager::kTrue);
  EXPECT_EQ(bdd.bdd_and(BddManager::kTrue, BddManager::kTrue),
            BddManager::kTrue);
  EXPECT_EQ(bdd.bdd_or(BddManager::kFalse, BddManager::kFalse),
            BddManager::kFalse);
}

TEST(BddTest, HashConsing) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  // (x & y) built twice is the same node.
  EXPECT_EQ(bdd.bdd_and(x, y), bdd.bdd_and(x, y));
  // Commuted form too (semantic equality).
  EXPECT_EQ(bdd.bdd_and(x, y), bdd.bdd_and(y, x));
}

TEST(BddTest, DeMorgan) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  const BddRef lhs = bdd.bdd_not(bdd.bdd_and(x, y));
  const BddRef rhs = bdd.bdd_or(bdd.bdd_not(x), bdd.bdd_not(y));
  EXPECT_EQ(lhs, rhs);
}

TEST(BddTest, XorProperties) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  EXPECT_EQ(bdd.bdd_xor(x, x), BddManager::kFalse);
  EXPECT_EQ(bdd.bdd_xor(x, BddManager::kFalse), x);
  EXPECT_EQ(bdd.bdd_xnor(x, y), bdd.bdd_not(bdd.bdd_xor(x, y)));
}

TEST(BddTest, EvalMatchesSemantics) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  const BddRef z = bdd.var(2);
  const BddRef f = bdd.bdd_or(bdd.bdd_and(x, y), z);
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<bool> assignment = {static_cast<bool>(bits & 1),
                                          static_cast<bool>(bits & 2),
                                          static_cast<bool>(bits & 4)};
    const bool expected =
        (assignment[0] && assignment[1]) || assignment[2];
    EXPECT_EQ(bdd.eval(f, assignment), expected);
  }
}

TEST(BddTest, RestrictAndCompose) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  const BddRef f = bdd.bdd_xor(x, y);
  EXPECT_EQ(bdd.restrict_var(f, 0, false), y);
  EXPECT_EQ(bdd.restrict_var(f, 0, true), bdd.bdd_not(y));
  // f[x := y] = y xor y = 0.
  EXPECT_EQ(bdd.compose(f, 0, y), BddManager::kFalse);
}

TEST(BddTest, Exists) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  const BddRef f = bdd.bdd_and(x, y);
  EXPECT_EQ(bdd.exists(f, 0), y);
  EXPECT_EQ(bdd.exists(bdd.exists(f, 0), 1), BddManager::kTrue);
}

TEST(BddTest, ShortestCubePrefersFewLiterals) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  const BddRef z = bdd.var(2);
  // f = (x & y & z) | !x : the cube {x=0} suffices.
  const BddRef f =
      bdd.bdd_or(bdd.bdd_and(bdd.bdd_and(x, y), z), bdd.bdd_not(x));
  const auto cube = bdd.shortest_cube(f);
  ASSERT_TRUE(cube);
  EXPECT_EQ(cube->size(), 1u);
  EXPECT_EQ((*cube)[0].var, 0u);
  EXPECT_FALSE((*cube)[0].value);
}

TEST(BddTest, ShortestCubeOfFalseIsNullopt) {
  BddManager bdd;
  EXPECT_FALSE(bdd.shortest_cube(BddManager::kFalse));
}

TEST(BddTest, ShortestCubeOfTrueIsEmpty) {
  BddManager bdd;
  const auto cube = bdd.shortest_cube(BddManager::kTrue);
  ASSERT_TRUE(cube);
  EXPECT_TRUE(cube->empty());
}

TEST(BddTest, ShortestCubeSatisfies) {
  BddManager bdd;
  const BddRef a = bdd.var(0);
  const BddRef b = bdd.var(1);
  const BddRef c = bdd.var(2);
  const BddRef f = bdd.bdd_and(bdd.bdd_xor(a, b), bdd.bdd_or(b, c));
  const auto cube = bdd.shortest_cube(f);
  ASSERT_TRUE(cube);
  // Complete the cube arbitrarily (unassigned = false) and check eval.
  std::vector<bool> assignment(3, false);
  for (const auto& lit : *cube) assignment[lit.var] = lit.value;
  // Every completion must satisfy f; check both completions of each
  // unassigned variable by brute force.
  std::vector<bool> assigned(3, false);
  for (const auto& lit : *cube) assigned[lit.var] = true;
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<bool> full = assignment;
    for (int i = 0; i < 3; ++i) {
      if (!assigned[i]) full[i] = (bits >> i) & 1;
    }
    EXPECT_TRUE(bdd.eval(f, full));
  }
}

TEST(BddTest, SatCount) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  EXPECT_DOUBLE_EQ(bdd.sat_count(bdd.bdd_and(x, y), 2), 1.0);
  EXPECT_DOUBLE_EQ(bdd.sat_count(bdd.bdd_or(x, y), 2), 3.0);
  EXPECT_DOUBLE_EQ(bdd.sat_count(bdd.bdd_xor(x, y), 3), 4.0);  // free z
}

TEST(BddTest, Support) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef z = bdd.var(2);
  const BddRef f = bdd.bdd_and(x, z);
  const auto support = bdd.support(f);
  ASSERT_EQ(support.size(), 2u);
  EXPECT_EQ(support[0], 0u);
  EXPECT_EQ(support[1], 2u);
}

TEST(BddTest, IteGeneral) {
  BddManager bdd;
  const BddRef x = bdd.var(0);
  const BddRef y = bdd.var(1);
  const BddRef z = bdd.var(2);
  const BddRef f = bdd.ite(x, y, z);
  EXPECT_EQ(bdd.restrict_var(f, 0, true), y);
  EXPECT_EQ(bdd.restrict_var(f, 0, false), z);
}

}  // namespace
}  // namespace mcrt

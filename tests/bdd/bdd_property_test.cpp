// Property tests for the BDD package against truth-table references:
// random expressions over up to 6 variables must evaluate identically, and
// structural operations (restrict/compose/exists) must obey their
// definitional identities on random functions.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "bdd/bdd.h"

namespace mcrt {
namespace {

/// Random expression builder producing a BDD and a 64-bit truth table over
/// 6 variables simultaneously.
struct Expression {
  BddRef bdd;
  std::uint64_t table;  // minterm i = value under assignment bits i
};

constexpr std::uint64_t kVarTable[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

Expression random_expression(BddManager& bdd, Rng& rng, int depth) {
  if (depth == 0 || rng.chance(0.3)) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.below(6));
    return {bdd.var(v), kVarTable[v]};
  }
  const Expression a = random_expression(bdd, rng, depth - 1);
  switch (rng.below(4)) {
    case 0: {
      const Expression b = random_expression(bdd, rng, depth - 1);
      return {bdd.bdd_and(a.bdd, b.bdd), a.table & b.table};
    }
    case 1: {
      const Expression b = random_expression(bdd, rng, depth - 1);
      return {bdd.bdd_or(a.bdd, b.bdd), a.table | b.table};
    }
    case 2: {
      const Expression b = random_expression(bdd, rng, depth - 1);
      return {bdd.bdd_xor(a.bdd, b.bdd), a.table ^ b.table};
    }
    default:
      return {bdd.bdd_not(a.bdd), ~a.table};
  }
}

class BddProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddProperty, EvalMatchesTruthTable) {
  BddManager bdd;
  Rng rng(GetParam());
  const Expression e = random_expression(bdd, rng, 4);
  for (std::uint32_t row = 0; row < 64; ++row) {
    std::vector<bool> assignment(6);
    for (int v = 0; v < 6; ++v) assignment[v] = (row >> v) & 1;
    EXPECT_EQ(bdd.eval(e.bdd, assignment),
              static_cast<bool>((e.table >> row) & 1))
        << "row " << row;
  }
}

TEST_P(BddProperty, SemanticEqualityIsPointerEquality) {
  BddManager bdd;
  Rng rng(GetParam());
  const Expression e = random_expression(bdd, rng, 4);
  // Rebuild a logically equal function: double negation + xor with false.
  const BddRef same = bdd.bdd_xor(bdd.bdd_not(bdd.bdd_not(e.bdd)),
                                  BddManager::kFalse);
  EXPECT_EQ(same, e.bdd);
}

TEST_P(BddProperty, ShannonExpansionIdentity) {
  BddManager bdd;
  Rng rng(GetParam());
  const Expression e = random_expression(bdd, rng, 4);
  for (std::uint32_t v = 0; v < 6; ++v) {
    const BddRef expanded =
        bdd.ite(bdd.var(v), bdd.restrict_var(e.bdd, v, true),
                bdd.restrict_var(e.bdd, v, false));
    EXPECT_EQ(expanded, e.bdd) << "var " << v;
  }
}

TEST_P(BddProperty, ComposeWithSelfIsIdentity) {
  BddManager bdd;
  Rng rng(GetParam());
  const Expression e = random_expression(bdd, rng, 3);
  for (std::uint32_t v = 0; v < 6; ++v) {
    EXPECT_EQ(bdd.compose(e.bdd, v, bdd.var(v)), e.bdd);
  }
}

TEST_P(BddProperty, ExistsIsUnionOfCofactors) {
  BddManager bdd;
  Rng rng(GetParam());
  const Expression e = random_expression(bdd, rng, 4);
  for (std::uint32_t v = 0; v < 6; ++v) {
    const BddRef expected = bdd.bdd_or(bdd.restrict_var(e.bdd, v, false),
                                       bdd.restrict_var(e.bdd, v, true));
    EXPECT_EQ(bdd.exists(e.bdd, v), expected);
  }
}

TEST_P(BddProperty, ShortestCubeIsImplicant) {
  BddManager bdd;
  Rng rng(GetParam());
  const Expression e = random_expression(bdd, rng, 4);
  const auto cube = bdd.shortest_cube(e.bdd);
  if (e.bdd == BddManager::kFalse) {
    EXPECT_FALSE(cube);
    return;
  }
  ASSERT_TRUE(cube);
  // Restricting by every literal of the cube must give the constant true.
  BddRef rest = e.bdd;
  for (const auto& lit : *cube) {
    rest = bdd.restrict_var(rest, lit.var, lit.value);
  }
  EXPECT_EQ(rest, BddManager::kTrue);
}

TEST_P(BddProperty, SatCountMatchesPopcount) {
  BddManager bdd;
  Rng rng(GetParam());
  const Expression e = random_expression(bdd, rng, 4);
  EXPECT_DOUBLE_EQ(bdd.sat_count(e.bdd, 6),
                   static_cast<double>(__builtin_popcountll(e.table)));
}

INSTANTIATE_TEST_SUITE_P(RandomExpressions, BddProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mcrt

// The whole toolchain on one generated circuit, mirroring the paper's §6
// script: generate -> decompose sync controls -> sweep -> map ->
// mc-retime (minarea @ minperiod) -> remap -> verify (simulation + ternary
// BMC) -> timing report, with BLIF/dot/VCD artifacts written alongside.
//
//   $ ./full_flow [outdir]
#include <cstdio>
#include <string>

#include "blif/blif.h"
#include "mcretime/mc_retime.h"
#include "netlist/dot_export.h"
#include "sim/equivalence.h"
#include "sim/simulator.h"
#include "sim/vcd.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "tech/sta.h"
#include "tech/timing_report.h"
#include "transform/decompose_controls.h"
#include "transform/sweep.h"
#include "verify/ternary_bmc.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace mcrt;
  const std::string outdir = argc > 1 ? argv[1] : ".";

  std::printf("== Full multiple-class retiming flow ==\n\n");

  // 1. "HDL analyzer" output: the C1 profile of the synthetic suite.
  CircuitProfile profile = paper_suite()[0];
  Netlist rtl = generate_circuit(profile);
  std::printf("[1] generated %s: %zu gates, %zu registers\n",
              profile.name.c_str(), rtl.stats().luts, rtl.register_count());

  // 2. Technology-independent prep: sync set/clear -> logic, sweep.
  rtl = sweep(decompose_sync_controls(rtl), nullptr);

  // 3. Map to 4-LUTs.
  const FlowMapResult mapped = flowmap_map(decompose_to_binary(rtl), {});
  const Netlist& before = mapped.mapped;
  std::printf("[2] mapped: %zu LUTs, depth %u, period %lld\n",
              mapped.lut_count, mapped.depth,
              static_cast<long long>(compute_period(before)));
  write_blif_file(before, outdir + "/full_flow_before.blif");
  write_dot_file(before, outdir + "/full_flow_before.dot");

  // 4. Retime + remap.
  const McRetimeResult retimed = mc_retime(before, {});
  if (!retimed.success) {
    std::printf("retiming failed: %s\n", retimed.error.c_str());
    return 1;
  }
  const FlowMapResult remapped =
      flowmap_map(decompose_to_binary(retimed.netlist), {});
  const Netlist& after = remapped.mapped;
  std::printf("[3] retimed: %zu classes, %zu/%zu steps, period %lld -> %lld,"
              " FF %zu -> %zu\n",
              retimed.stats.num_classes, retimed.stats.moved_layers,
              retimed.stats.possible_steps,
              static_cast<long long>(retimed.stats.period_before),
              static_cast<long long>(compute_period(before)) == 0
                  ? 0
                  : static_cast<long long>(compute_period(after)),
              before.register_count(), after.register_count());
  write_blif_file(after, outdir + "/full_flow_after.blif");
  write_dot_file(after, outdir + "/full_flow_after.dot");

  // 5. Verify: random simulation plus exhaustive bounded check.
  EquivalenceOptions eq_opt;
  eq_opt.runs = 4;
  const auto sim = check_sequential_equivalence(before, after, eq_opt);
  std::printf("[4] simulation equivalence: %s (%zu defined outputs)\n",
              sim.equivalent ? "PASS" : "FAIL",
              sim.compared_defined_outputs);
  TernaryBmcOptions bmc_opt;
  bmc_opt.depth = 4;
  bmc_opt.max_input_vars = 120;
  const auto bmc = check_ternary_bmc(before, after, bmc_opt);
  std::printf("    ternary BMC: %s (%s)\n",
              bmc.verdict == TernaryBmcResult::Verdict::kEquivalentUpToDepth
                  ? "PASS"
                  : bmc.verdict == TernaryBmcResult::Verdict::kMismatch
                        ? "FAIL"
                        : "SKIPPED",
              bmc.detail.c_str());

  // 6. Timing report of the final circuit.
  std::printf("[5] three worst paths after retiming:\n%s",
              format_timing_report(after, worst_paths(after, 3)).c_str());

  // 7. A short VCD trace of the retimed circuit for waveform viewers.
  {
    Simulator simulator(after);
    VcdTrace trace(after);
    for (int cycle = 0; cycle < 8; ++cycle) {
      for (const NodeId in : after.inputs()) {
        const NetId net = after.node(in).output;
        const bool is_reset =
            after.node(in).name.find("rst") != std::string::npos;
        simulator.set_input(net, is_reset && cycle < 2 ? Trit::kOne
                            : (cycle & 1) ? Trit::kOne
                                          : Trit::kZero);
      }
      simulator.settle();
      trace.sample(simulator);
      simulator.clock_edge();
    }
    trace.write_file(outdir + "/full_flow_after.vcd");
  }
  std::printf("[6] artifacts: full_flow_{before,after}.{blif,dot} and "
              "full_flow_after.vcd in %s\n", outdir.c_str());
  return sim.equivalent ? 0 : 1;
}

// Quickstart: the paper's Fig. 1 circuit end to end.
//
// Builds the two-register load-enable circuit of Fig. 1a, shows what the
// classic "decompose enables, then retime" flow costs (Fig. 1c/1d), and
// runs multiple-class retiming, which moves the registers together with
// their EN input (Fig. 1b) at zero logic cost. Behavioural equivalence is
// verified by simulation.
//
//   $ ./quickstart
#include <cstdio>

#include "mcretime/mc_retime.h"
#include "netlist/netlist.h"
#include "sim/equivalence.h"
#include "transform/decompose_controls.h"

namespace {

mcrt::Netlist build_fig1() {
  using namespace mcrt;
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  const NetId a = n.add_input("in0");
  const NetId b = n.add_input("in1");
  Register ra;
  ra.d = a;
  ra.clk = clk;
  ra.en = en;
  ra.name = "ra";
  const NetId qa = n.add_register(std::move(ra));
  Register rb;
  rb.d = b;
  rb.clk = clk;
  rb.en = en;
  rb.name = "rb";
  const NetId qb = n.add_register(std::move(rb));
  const NetId g = n.add_lut(TruthTable::and_n(2), {qa, qb}, "g");
  n.set_node_delay(NodeId{n.net(g).driver.index}, 10);
  n.add_output("out", g);
  return n;
}

void print_stats(const char* title, const mcrt::Netlist& n) {
  const auto stats = n.stats();
  std::printf("%-34s  FF=%zu  LUT=%zu  (with EN: %zu)\n", title,
              stats.registers, stats.luts, stats.with_en);
}

}  // namespace

int main() {
  using namespace mcrt;
  std::printf("== Multiple-class retiming quickstart (paper Fig. 1) ==\n\n");

  const Netlist original = build_fig1();
  print_stats("Fig. 1a original", original);

  // The old way: decompose EN into feedback muxes, making each register a
  // plain D-FF (Fig. 1c). Any later *forward* retiming of those plain
  // registers duplicates them at the mux feedback (Fig. 1d).
  const Netlist decomposed = decompose_load_enables(original);
  print_stats("Fig. 1c EN decomposed", decomposed);

  // The mc-retiming way: registers move together with their EN as one
  // compatible layer (Fig. 1b) - one register after the gate, no new logic.
  const auto result = mc_retime(original, {});
  if (!result.success) {
    std::printf("mc-retiming failed: %s\n", result.error.c_str());
    return 1;
  }
  print_stats("Fig. 1b mc-retimed", result.netlist);

  std::printf("\nclasses=%zu, layers moved=%zu (of %zu possible steps)\n",
              result.stats.num_classes, result.stats.moved_layers,
              result.stats.possible_steps);

  const auto eq = check_sequential_equivalence(original, result.netlist, {});
  std::printf("sequential equivalence: %s (%zu defined outputs compared)\n",
              eq.equivalent ? "PASS" : "FAIL",
              eq.compared_defined_outputs);
  return eq.equivalent ? 0 : 1;
}

// Walkthrough of the paper's Fig. 5: computing equivalent reset states
// while moving registers backward - local BDD justification per gate, and
// the global justification that rescues a local conflict.
//
//   $ ./reset_justification
#include <cstdio>

#include "mcretime/maximal_retiming.h"
#include "mcretime/mcgraph.h"
#include "mcretime/rebuild.h"
#include "mcretime/relocate.h"
#include "netlist/netlist.h"
#include "sim/equivalence.h"

namespace {

/// Fig. 5: v2 = AND(i0,i1); v3 = NAND(v2,i2) -> FF(s=1);
/// v4 = INV(v2) -> FF(s=0). Moving both FFs back across v3/v4 succeeds
/// locally; the next move across v2 conflicts (the justified values on
/// v2's fanout edges differ) and is resolved globally across v2, v3, v4.
mcrt::Netlist fig5() {
  using namespace mcrt;
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId srst = n.add_input("srst");
  const NetId i0 = n.add_input("i0");
  const NetId i1 = n.add_input("i1");
  const NetId i2 = n.add_input("i2");
  const NetId v2 = n.add_lut(TruthTable::and_n(2), {i0, i1}, "v2");
  const NetId v3 = n.add_lut(TruthTable::nand_n(2), {v2, i2}, "v3");
  const NetId v4 = n.add_lut(TruthTable::inverter(), {v2}, "v4");
  Register f3;
  f3.d = v3;
  f3.clk = clk;
  f3.sync_ctrl = srst;
  f3.sync_val = ResetVal::kOne;
  f3.name = "f3";
  const NetId q3 = n.add_register(std::move(f3));
  Register f4;
  f4.d = v4;
  f4.clk = clk;
  f4.sync_ctrl = srst;
  f4.sync_val = ResetVal::kZero;
  f4.name = "f4";
  const NetId q4 = n.add_register(std::move(f4));
  n.add_output("out0", q3);
  n.add_output("out1", q4);
  return n;
}

mcrt::VertexId gate(const mcrt::McGraph& g, const mcrt::Netlist& n,
                    const char* name) {
  using namespace mcrt;
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    if (g.kind(vid) == McVertexKind::kGate &&
        n.node(g.origin_node(vid)).name == name) {
      return vid;
    }
  }
  return {};
}

}  // namespace

int main() {
  using namespace mcrt;
  std::printf("== Equivalent reset states (paper Fig. 5) ==\n\n");
  const Netlist n = fig5();
  std::printf("original: f3 loads s=1 behind NAND(v3), "
              "f4 loads s=0 behind INV(v4)\n");

  McGraph g = build_mc_graph(n);
  std::vector<std::int64_t> r(g.vertex_count(), 0);
  r[gate(g, n, "v2").index()] = 1;
  r[gate(g, n, "v3").index()] = 1;
  r[gate(g, n, "v4").index()] = 1;
  std::printf("retiming: one backward layer across v2, v3 and v4\n\n");

  const auto result = relocate_registers(g, n, r);
  if (!result.success) {
    std::printf("relocation failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("moves: %zu backward, %zu forward\n",
              result.stats.backward_steps, result.stats.forward_steps);
  std::printf("justifications: %zu local, %zu global\n",
              result.stats.local_justifications,
              result.stats.global_justifications);

  // Show the final register placement and reset values.
  std::printf("\nfinal register positions (edges with registers):\n");
  const Digraph& dg = g.digraph();
  for (std::size_t e = 0; e < dg.edge_count(); ++e) {
    const EdgeId eid{static_cast<std::uint32_t>(e)};
    if (g.regs(eid).empty()) continue;
    for (const McReg& reg : g.regs(eid)) {
      std::printf("  edge %zu: class %u, s=%c a=%c\n", e, reg.cls.value(),
                  reset_val_char(reg.sync_val),
                  reset_val_char(reg.async_val));
    }
  }

  const Netlist rebuilt = rebuild_netlist(g, n);
  EquivalenceOptions opt;
  opt.reset_inputs = {"srst"};
  const auto eq = check_sequential_equivalence(n, rebuilt, opt);
  std::printf("\nequivalence after relocation: %s\n",
              eq.equivalent ? "PASS" : "FAIL");
  if (!eq.equivalent) std::printf("  %s\n", eq.counterexample.c_str());
  return eq.equivalent ? 0 : 1;
}

// BLIF-driven flow: read an (extended) BLIF netlist, run minarea
// mc-retiming at the minimum feasible period, and write the result back as
// BLIF. Demonstrates the `.mclatch` extension carrying load enables and
// asynchronous set/clear through a file-based flow.
//
//   $ ./blif_flow [input.blif [output.blif]]
//
// Without arguments, a built-in demo circuit is used and the output goes
// to stdout.
#include <cstdio>
#include <iostream>

#include "blif/blif.h"
#include "mcretime/mc_retime.h"
#include "sim/equivalence.h"
#include "tech/sta.h"

namespace {

const char* kDemoBlif = R"(# Demo: enabled pipeline with async clear.
.model demo
.inputs clk rst en a b
.outputs y
# Combinational cascade.
.names a b t0
11 1
.names t0 b t1
10 1
.names t1 a t2
01 1
.names t2 t1 t3
11 0
# Two pipeline registers bunched at the end (retiming will spread them).
.mclatch t3 p0 clk=clk en=en async=rst:0
.mclatch p0 p1 clk=clk en=en async=rst:0
.names p1 y
1 1
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mcrt;
  std::variant<Netlist, BlifError> parsed =
      argc > 1 ? read_blif_file(argv[1]) : read_blif_string(kDemoBlif);
  if (const auto* err = std::get_if<BlifError>(&parsed)) {
    std::fprintf(stderr, "BLIF parse error at line %zu: %s\n", err->line,
                 err->message.c_str());
    return 1;
  }
  Netlist netlist = std::move(std::get<Netlist>(parsed));
  // Unit delays per LUT if the file carries none.
  for (std::size_t i = 0; i < netlist.node_count(); ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (netlist.node(id).kind == NodeKind::kLut &&
        !netlist.node(id).fanins.empty() && netlist.node(id).delay == 0) {
      netlist.set_node_delay(id, 10);
    }
  }

  std::fprintf(stderr, "in:  FF=%zu LUT=%zu period=%lld\n",
               netlist.register_count(), netlist.stats().luts,
               static_cast<long long>(compute_period(netlist)));

  const auto result = mc_retime(netlist, {});
  if (!result.success) {
    std::fprintf(stderr, "mc-retiming failed: %s\n", result.error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "out: FF=%zu LUT=%zu period=%lld "
               "(classes=%zu, steps=%zu/%zu, attempts=%zu)\n",
               result.netlist.register_count(), result.netlist.stats().luts,
               static_cast<long long>(result.stats.period_after),
               result.stats.num_classes, result.stats.moved_layers,
               result.stats.possible_steps, result.stats.attempts);

  const auto eq = check_sequential_equivalence(netlist, result.netlist, {});
  std::fprintf(stderr, "equivalence: %s\n", eq.equivalent ? "PASS" : "FAIL");

  if (argc > 2) {
    if (!write_blif_file(result.netlist, argv[2], "retimed")) {
      std::fprintf(stderr, "cannot write %s\n", argv[2]);
      return 1;
    }
  } else {
    write_blif(result.netlist, std::cout, "retimed");
  }
  return eq.equivalent ? 0 : 1;
}

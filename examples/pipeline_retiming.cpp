// A DSP-style pipelined multiply-accumulate datapath with load enables:
// the scenario the paper's introduction motivates. The HDL-style coding
// places all pipeline registers at the end of the combinational cascade;
// mc-retiming redistributes them (keeping the EN class intact) and roughly
// halves the clock period, then a remap cleans up the combinational part.
//
//   $ ./pipeline_retiming
#include <cstdio>

#include "base/strings.h"
#include "mcretime/mc_retime.h"
#include "netlist/netlist.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "tech/sta.h"

namespace {

/// width-bit XOR/AND "multiplier-ish" cascade of `depth` stages, then
/// `stages` register layers with a shared load enable.
mcrt::Netlist build_pipeline(std::size_t width, std::size_t depth,
                             std::size_t reg_layers) {
  using namespace mcrt;
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  std::vector<NetId> x;
  std::vector<NetId> y;
  for (std::size_t i = 0; i < width; ++i) {
    x.push_back(n.add_input(str_format("x%zu", i)));
    y.push_back(n.add_input(str_format("y%zu", i)));
  }
  std::vector<NetId> layer;
  for (std::size_t i = 0; i < width; ++i) {
    layer.push_back(n.add_lut(TruthTable::and_n(2), {x[i], y[i]}));
  }
  for (std::size_t d = 0; d < depth; ++d) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < width; ++i) {
      next.push_back(n.add_lut(TruthTable::xor_n(2),
                               {layer[i], layer[(i + 1) % width]}));
    }
    layer = std::move(next);
  }
  for (std::size_t r = 0; r < reg_layers; ++r) {
    for (std::size_t i = 0; i < width; ++i) {
      Register ff;
      ff.d = layer[i];
      ff.clk = clk;
      ff.en = en;
      layer[i] = n.add_register(std::move(ff));
    }
  }
  for (std::size_t i = 0; i < width; ++i) {
    n.add_output(str_format("acc%zu", i), layer[i]);
  }
  return n;
}

}  // namespace

int main() {
  using namespace mcrt;
  std::printf("== Pipeline retiming with load enables ==\n\n");

  const Netlist rtl = build_pipeline(/*width=*/8, /*depth=*/6,
                                     /*reg_layers=*/3);
  // Map to 4-LUTs (assigns realistic delays).
  const FlowMapResult mapped = flowmap_map(decompose_to_binary(rtl), {});
  std::printf("mapped:   FF=%zu LUT=%zu period=%lld\n",
              mapped.mapped.register_count(), mapped.lut_count,
              static_cast<long long>(compute_period(mapped.mapped)));

  const auto result = mc_retime(mapped.mapped, {});
  if (!result.success) {
    std::printf("retiming failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("retimed:  FF=%zu period=%lld (classes=%zu, moved=%zu/%zu)\n",
              result.stats.registers_after,
              static_cast<long long>(result.stats.period_after),
              result.stats.num_classes, result.stats.moved_layers,
              result.stats.possible_steps);

  // Remap the combinational part (the paper's "remap" command).
  const FlowMapResult remapped =
      flowmap_map(decompose_to_binary(result.netlist), {});
  std::printf("remapped: FF=%zu LUT=%zu period=%lld\n",
              remapped.mapped.register_count(), remapped.lut_count,
              static_cast<long long>(compute_period(remapped.mapped)));

  EquivalenceOptions opt;
  opt.runs = 4;
  const auto eq =
      check_sequential_equivalence(mapped.mapped, remapped.mapped, opt);
  std::printf("\nsequential equivalence after retime+remap: %s\n",
              eq.equivalent ? "PASS" : "FAIL");
  if (!eq.equivalent) std::printf("  %s\n", eq.counterexample.c_str());
  return eq.equivalent ? 0 : 1;
}

#!/bin/sh
# Regenerates the committed bench documents:
#   BENCH_retime.json / BENCH_sim.json / BENCH_window.json /
#   BENCH_cslow.json / BENCH_serve.json
#                                        full-suite perf trajectory (repo root;
#                                        the window report's headline entry runs
#                                        a deadline-capped monolithic solve and
#                                        takes a few minutes)
#   bench/baseline/BENCH_*.json          quick-suite baseline for CI's
#                                        bench-smoke and serve-chaos gates
#
# Run from the repo root on a quiet machine. The CI gate compares speedup
# *ratios* only, so the baseline does not need to come from CI hardware —
# but it must come from the default (RelWithDebInfo) build, matching what
# bench-smoke configures.
#
#   sh tools/update_bench_baseline.sh [build-dir]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target mcrt_cli

echo "== full suite (perf trajectory documents) =="
"$build_dir/tools/mcrt" bench --out-dir "$repo_root"
"$build_dir/tools/mcrt" loadtest --out-dir "$repo_root"

echo "== quick suite (CI regression baseline) =="
mkdir -p "$repo_root/bench/baseline"
"$build_dir/tools/mcrt" bench --quick --out-dir "$repo_root/bench/baseline"
"$build_dir/tools/mcrt" loadtest --quick --out-dir "$repo_root/bench/baseline"

echo "Updated:"
for doc in BENCH_retime.json BENCH_sim.json BENCH_window.json \
           BENCH_cslow.json BENCH_serve.json; do
  echo "  $repo_root/$doc"
  echo "  $repo_root/bench/baseline/$doc"
done
echo "Review the speedup columns, then commit all ten files."

#!/bin/sh
# Re-minimizes the committed fuzz reproducer corpus (testdata/fuzz/).
#
# Run this after a shrinker or oracle improvement: every committed
# reproducer is replayed with `mcrt fuzz --repro FILE --update`, which
# re-shrinks a still-failing case and rewrites the file only if the
# smaller case still fails its oracle. Reproducers that pass (fixed
# bugs) are left untouched — they are the regression corpus and must
# keep passing forever; break-spec guards must keep failing forever.
#
#   sh tools/update_fuzz_corpus.sh [build-dir]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target mcrt_cli

updated=0
for repro in "$repo_root"/testdata/fuzz/*.repro; do
  [ -e "$repro" ] || continue
  echo "== $repro =="
  before=$(cksum "$repro")
  # Exit 0 = case passes (fixed bug, kept as-is); exit 1 = case still
  # fails (expected for break-spec guards, possibly re-shrunk). Anything
  # else is a parse/usage error and aborts the sweep.
  status=0
  "$build_dir/tools/mcrt" fuzz --repro "$repro" --update || status=$?
  if [ "$status" -gt 1 ]; then
    echo "error: replay of $repro exited $status" >&2
    exit "$status"
  fi
  after=$(cksum "$repro")
  if [ "$before" != "$after" ]; then
    echo "  re-minimized: $repro"
    updated=$((updated + 1))
  fi
done

echo "$updated reproducer(s) rewritten."
echo "Replay the corpus (ctest -R FuzzRegress), then commit testdata/fuzz/."

// mcrt - command-line front end for the multiple-class retiming library.
//
//   mcrt stats   in.blif                    circuit statistics
//   mcrt classes in.blif                    register class report
//   mcrt sweep   in.blif out.blif           constant folding + dead logic
//   mcrt map     [-k N] [-d D] in out       decompose + FlowMap k-LUT map
//   mcrt retime  [--minperiod] [--no-sharing] in out
//                                           mc-retiming (default: minarea
//                                           at minimum feasible period)
//   mcrt decompose-en   in out              EN -> feedback mux (baseline)
//   mcrt decompose-sync in out              SS/SC -> gates before D
//   mcrt check   [--formal] a.blif b.blif   sequential equivalence
//
// All files are BLIF with the `.mclatch` extension for complex registers
// (see blif/blif.h). Gate delays: `map` assigns -d per LUT (default 10);
// other commands preserve what the file had (0 if none).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "blif/blif.h"
#include "netlist/dot_export.h"
#include "mcretime/mc_retime.h"
#include "mcretime/register_class.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "tech/sta.h"
#include "tech/timing_report.h"
#include "transform/decompose_controls.h"
#include "transform/strash.h"
#include "transform/register_sweep.h"
#include "transform/sweep.h"
#include "verify/formal_equivalence.h"
#include "verify/ternary_bmc.h"

namespace {

using namespace mcrt;

int usage() {
  std::fprintf(stderr,
               "usage: mcrt <stats|classes|timing|dot|sweep|strash|regsweep|map|retime|decompose-en|"
               "decompose-sync|check> [options] <in.blif> [out.blif]\n"
               "  map:    -k <lut_inputs=4>  -d <lut_delay=10>\n"
               "  retime: --minperiod  --no-sharing  --target <period>\n"
               "  check:  --formal  --bmc <depth>\n");
  return 2;
}

std::optional<Netlist> load(const std::string& path) {
  auto parsed = read_blif_file(path);
  if (const auto* err = std::get_if<BlifError>(&parsed)) {
    std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), err->line,
                 err->message.c_str());
    return std::nullopt;
  }
  Netlist netlist = std::move(std::get<Netlist>(parsed));
  const auto problems = netlist.validate();
  if (!problems.empty()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), problems[0].c_str());
    return std::nullopt;
  }
  return netlist;
}

bool store(const Netlist& netlist, const std::string& path) {
  if (!write_blif_file(netlist, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

void print_stats(const Netlist& n, const char* label) {
  const auto stats = n.stats();
  std::printf("%-10s in=%zu out=%zu lut=%zu const=%zu ff=%zu "
              "(en=%zu sync=%zu async=%zu) period=%lld\n",
              label, stats.inputs, stats.outputs, stats.luts, stats.constants,
              stats.registers, stats.with_en, stats.with_sync,
              stats.with_async,
              static_cast<long long>(compute_period(n)));
}

int cmd_stats(const Netlist& n) {
  print_stats(n, "circuit");
  return 0;
}

int cmd_classes(const Netlist& n) {
  const auto classes = classify_registers(n);
  std::printf("%zu registers in %zu classes\n", n.register_count(),
              classes.class_count());
  std::vector<std::size_t> population(classes.class_count(), 0);
  for (const ClassId c : classes.reg_class) ++population[c.index()];
  for (std::size_t c = 0; c < classes.class_count(); ++c) {
    const RegisterClassInfo& info = classes.classes[c];
    std::printf("  class %zu: %zu regs, clk=%s", c, population[c],
                n.net(info.clk).name.c_str());
    if (info.en.valid()) std::printf(" en=%s", n.net(info.en).name.c_str());
    if (info.sync_ctrl.valid()) {
      std::printf(" sync=%s", n.net(info.sync_ctrl).name.c_str());
    }
    if (info.async_ctrl.valid()) {
      std::printf(" async=%s", n.net(info.async_ctrl).name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];

  // Collect flags and positionals.
  std::vector<std::string> files;
  std::uint32_t lut_k = 4;
  std::int64_t lut_delay = 10;
  bool minperiod = false;
  std::int64_t target_period = 0;
  bool no_sharing = false;
  bool formal = false;
  std::size_t bmc_depth = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-k" && i + 1 < argc) {
      lut_k = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "-d" && i + 1 < argc) {
      lut_delay = std::atoll(argv[++i]);
    } else if (arg == "--minperiod") {
      minperiod = true;
    } else if (arg == "--target" && i + 1 < argc) {
      target_period = std::atoll(argv[++i]);
    } else if (arg == "--no-sharing") {
      no_sharing = true;
    } else if (arg == "--formal") {
      formal = true;
    } else if (arg == "--bmc" && i + 1 < argc) {
      bmc_depth = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();
  const auto input = load(files[0]);
  if (!input) return 1;

  if (command == "stats") return cmd_stats(*input);
  if (command == "classes") return cmd_classes(*input);
  if (command == "dot") {
    if (files.size() < 2) return usage();
    if (!write_dot_file(*input, files[1])) {
      std::fprintf(stderr, "cannot write %s\n", files[1].c_str());
      return 1;
    }
    return 0;
  }
  if (command == "timing") {
    Netlist timed = *input;
    for (std::size_t i = 0; i < timed.node_count(); ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      if (timed.node(id).kind == NodeKind::kLut &&
          !timed.node(id).fanins.empty() && timed.node(id).delay == 0) {
        timed.set_node_delay(id, lut_delay);
      }
    }
    const auto paths = worst_paths(timed, 5);
    std::fputs(format_timing_report(timed, paths).c_str(), stdout);
    return 0;
  }

  if (command == "check") {
    if (files.size() < 2) return usage();
    const auto other = load(files[1]);
    if (!other) return 1;
    const auto sim = check_sequential_equivalence(*input, *other, {});
    std::printf("simulation: %s (%zu defined outputs)%s%s\n",
                sim.equivalent ? "EQUIVALENT" : "DIFFERENT",
                sim.compared_defined_outputs,
                sim.equivalent ? "" : " - ",
                sim.counterexample.c_str());
    if (bmc_depth > 0) {
      TernaryBmcOptions bo;
      bo.depth = bmc_depth;
      const auto bmc = check_ternary_bmc(*input, *other, bo);
      const char* verdict =
          bmc.verdict == TernaryBmcResult::Verdict::kEquivalentUpToDepth
              ? "EQUIVALENT (bounded)"
          : bmc.verdict == TernaryBmcResult::Verdict::kMismatch ? "DIFFERENT"
                                                                : "UNSUPPORTED";
      std::printf("bmc[%zu]:    %s (%s)\n", bmc_depth, verdict,
                  bmc.detail.c_str());
      if (bmc.verdict == TernaryBmcResult::Verdict::kMismatch) return 1;
    }
    if (formal) {
      const auto fv = check_formal_equivalence(*input, *other, {});
      const char* verdict =
          fv.verdict == FormalResult::Verdict::kEquivalent  ? "EQUIVALENT"
          : fv.verdict == FormalResult::Verdict::kMismatch ? "DIFFERENT"
                                                           : "UNSUPPORTED";
      std::printf("formal:     %s (%s)\n", verdict, fv.detail.c_str());
      return fv.verdict == FormalResult::Verdict::kEquivalent && sim.equivalent
                 ? 0
                 : 1;
    }
    return sim.equivalent ? 0 : 1;
  }

  // Transforming commands need an output file.
  if (files.size() < 2) return usage();
  Netlist result;
  if (command == "sweep") {
    SweepStats stats;
    result = sweep(*input, &stats);
    std::fprintf(stderr, "removed %zu nodes, %zu registers; folded %zu\n",
                 stats.nodes_removed, stats.registers_removed,
                 stats.constants_folded);
  } else if (command == "strash") {
    StrashStats stats;
    result = structural_hash(*input, &stats);
    std::fprintf(stderr, "merged %zu duplicate nodes\n", stats.merged_nodes);
  } else if (command == "regsweep") {
    RegisterSweepStats stats;
    result = register_sweep(*input, &stats);
    std::fprintf(stderr, "merged %zu duplicate registers\n",
                 stats.merged_registers);
  } else if (command == "map") {
    FlowMapOptions options;
    options.k = lut_k;
    options.lut_delay = lut_delay;
    const FlowMapResult mapped =
        flowmap_map(decompose_to_binary(*input), options);
    std::fprintf(stderr, "mapped to %zu LUTs, depth %u\n", mapped.lut_count,
                 mapped.depth);
    result = std::move(mapped.mapped);
  } else if (command == "retime") {
    McRetimeOptions options;
    if (minperiod) {
      options.objective = McRetimeOptions::Objective::kMinPeriod;
    }
    options.sharing_modification = !no_sharing;
    options.target_period = target_period;
    // BLIF carries no delays: give delay-less LUTs the -d default so the
    // period objective is meaningful.
    Netlist timed = *input;
    for (std::size_t i = 0; i < timed.node_count(); ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      if (timed.node(id).kind == NodeKind::kLut &&
          !timed.node(id).fanins.empty() && timed.node(id).delay == 0) {
        timed.set_node_delay(id, lut_delay);
      }
    }
    const McRetimeResult retimed = mc_retime(timed, options);
    if (!retimed.success) {
      std::fprintf(stderr, "retiming failed: %s\n", retimed.error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "classes=%zu steps=%zu/%zu period %lld -> %lld "
                 "ff %zu -> %zu (attempts=%zu)\n",
                 retimed.stats.num_classes, retimed.stats.moved_layers,
                 retimed.stats.possible_steps,
                 static_cast<long long>(retimed.stats.period_before),
                 static_cast<long long>(retimed.stats.period_after),
                 retimed.stats.registers_before,
                 retimed.stats.registers_after, retimed.stats.attempts);
    result = std::move(retimed.netlist);
  } else if (command == "decompose-en") {
    result = decompose_load_enables(*input);
  } else if (command == "decompose-sync") {
    result = decompose_sync_controls(*input);
  } else {
    return usage();
  }
  print_stats(result, "result");
  return store(result, files[1]) ? 0 : 1;
}

// mcrt - command-line front end for the multiple-class retiming library.
//
//   mcrt stats   in.blif                    circuit statistics
//   mcrt classes in.blif                    register class report
//   mcrt timing  in.blif                    worst-path timing report
//   mcrt dot     in.blif out.dot            netlist as Graphviz dot
//   mcrt sweep   in.blif out.blif           constant folding + dead logic
//   mcrt strash  in.blif out.blif           merge duplicate nodes
//   mcrt regsweep in.blif out.blif          merge duplicate registers
//   mcrt map     [-k N] [-d D] in out       decompose + FlowMap k-LUT map
//   mcrt retime  [--minperiod] [--no-sharing] [--target P] in out
//                [--windows N] [--window-size N] [--window-jobs N]
//                [--cslow C]
//                                           mc-retiming (default: minarea
//                                           at minimum feasible period);
//                                           --cslow C replicates every
//                                           register into a chain of C
//                                           before retiming, multiplying
//                                           throughput across C interleaved
//                                           streams (src/cslow/,
//                                           docs/CSLOW.md); with --verify
//                                           the stream-equivalence + BMC
//                                           self-check runs instead of the
//                                           flow-level spot check (a
//                                           C-slowed netlist is not
//                                           input-equivalent);
//                                           any --window* flag switches to
//                                           the windowed flow (src/window/,
//                                           docs/WINDOWING.md): partition
//                                           into bounded regions, solve in
//                                           parallel, stitch
//   mcrt decompose-en   in out              EN -> feedback mux (baseline)
//   mcrt decompose-sync in out              SS/SC -> gates before D
//   mcrt check   [--formal] [--bmc N] a.blif b.blif
//                                           sequential equivalence
//   mcrt flow    "<script>" in out          run any pass pipeline, e.g.
//                                           "sweep; strash; retime(target=24)"
//                                           (see docs/PIPELINE.md); --profile
//                                           prints per-pass timing, --verify
//                                           spot-checks equivalence between
//                                           passes
//   mcrt bulk    "<script>" [--jobs N] [--out-dir D] [--report F]
//                [--canonical] [--timeout S] [--manifest F] [--resume]
//                [--retries N] <in.blif|dir>...
//                                           run one flow over many circuits
//                                           in parallel; directories expand
//                                           to their *.blif files, outputs
//                                           land in --out-dir (atomically),
//                                           --report writes a JSON report
//                                           (--canonical: timing-free,
//                                           machine-independent bytes).
//                                           --timeout bounds each job's wall
//                                           clock; ctrl-C cancels the batch
//                                           cleanly. --manifest journals
//                                           completed jobs so a killed batch
//                                           resumes with --resume, skipping
//                                           finished work; --retries re-runs
//                                           transient (I/O) failures.
//   mcrt corpus  <out-dir> [--count N] [--seed S] [--gates G]
//                                           write a deterministic randomized
//                                           BLIF corpus (workload generator);
//                                           --gates adds one scaled design
//                                           of ~G LUTs (the windowed-retiming
//                                           size range); progress goes to the
//                                           diagnostics sink on big suites
//   mcrt fuzz    [--budget-s S] [--cases N] [--seed S] [--oracle NAME]
//                [--out-dir D] [--report F] [--canonical] [--repro PATH]
//                [--update]
//                                           differential fuzzing across the
//                                           engine pairs (serial-vs-bulk,
//                                           bulk-vs-serve, mono-vs-windowed,
//                                           compact-vs-legacy,
//                                           cslow-vs-replicated): sample a
//                                           random circuit + flow script,
//                                           cross-check, minimize failures
//                                           into self-contained reproducers
//                                           (docs/FUZZING.md). --repro PATH
//                                           replays one reproducer file;
//                                           with an explicit --seed it first
//                                           regenerates that exact case and
//                                           writes it to PATH, so a CI
//                                           failure line is copy-pasteable.
//   mcrt bench   [--quick] [--out-dir D] [--seed S]
//                [--baseline D --max-regress F]
//                                           compact-vs-legacy engine bench
//                                           on the pinned workload suite;
//                                           writes BENCH_retime.json,
//                                           BENCH_sim.json and
//                                           BENCH_window.json (windowed vs
//                                           monolithic retiming;
//                                           docs/INTERNALS.md describes the
//                                           schemas); with --baseline, fails
//                                           on a speedup regression beyond
//                                           --max-regress
//   mcrt loadtest [--quick] [--out-dir D] [--seed S]
//                 [--baseline D --max-regress F]
//                                           chaos load harness for the serve
//                                           stack: in-process daemons under
//                                           injected disk faults, dropped
//                                           connections and a corrupt-entry
//                                           restart; every response is
//                                           byte-compared against the bulk
//                                           path; writes BENCH_serve.json
//
// Every transforming subcommand is a canned pipeline over the same
// pipeline/PassManager that `flow` scripts use, so stats reporting, timing
// and invariant checking behave identically everywhere.
//
// All files are BLIF with the `.mclatch` extension for complex registers
// (see blif/blif.h). Gate delays: `map` assigns -d per LUT (default 10);
// `retime` gives delay-less LUTs -d so the period objective is meaningful;
// other commands preserve what the file had (0 if none).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "base/cancel.h"
#include "base/fault_injector.h"
#include "base/json.h"
#include "base/socket.h"
#include "base/strings.h"
#include "base/version.h"
#include "blif/blif.h"
#include "netlist/dot_export.h"
#include "mcretime/register_class.h"
#include "pipeline/bulk_runner.h"
#include "pipeline/diagnostics.h"
#include "pipeline/flow_context.h"
#include "pipeline/flow_script.h"
#include "pipeline/pass_manager.h"
#include "perf/bench.h"
#include "perf/serve_bench.h"
#include "pipeline/passes.h"
#include "server/client.h"
#include "server/server.h"
#include "sim/equivalence.h"
#include "tech/sta.h"
#include "tech/timing_report.h"
#include "fuzz/driver.h"
#include "verify/formal_equivalence.h"
#include "verify/ternary_bmc.h"
#include "workload/generator.h"

namespace {

using namespace mcrt;

/// Batch-wide stop driven by SIGINT. request_cancel() only stores relaxed
/// atomics, so it is safe to call from the signal handler; every engine
/// polls the chained per-job tokens and unwinds at the next poll.
CancelToken g_interrupt;

extern "C" void handle_sigint(int) { g_interrupt.request_cancel(); }

int usage() {
  std::fprintf(stderr,
               "usage: mcrt <stats|classes|timing|dot|sweep|strash|regsweep|"
               "map|retime|decompose-en|decompose-sync|check|flow|bulk|"
               "corpus> [options] <in.blif> [out.blif]\n"
               "  map:    -k <lut_inputs=4>  -d <lut_delay=10>\n"
               "  retime: --minperiod  --no-sharing  --target <period>\n"
               "          --windows <n> | --window-size <n=1024> "
               "[--window-jobs <n>]\n"
               "          (any --window* flag selects the windowed parallel "
               "flow)\n"
               "          --cslow <C> (replicate registers into chains of C\n"
               "          and retime: C interleaved streams at ~T/C each;\n"
               "          --verify then runs the stream-equivalence check)\n"
               "  check:  --formal  --bmc <depth>  --bmc-x-ok (treat a\n"
               "          defined output refining an X as benign)\n"
               "  flow:   mcrt flow \"<script>\" in.blif out.blif\n"
               "          script: pass[(arg,key=val)]; pass; ...  e.g.\n"
               "          \"sweep; strash; retime(target=24,no-sharing); "
               "map(k=4)\"\n"
               "          --profile (per-pass timing)  --verify (per-pass\n"
               "          equivalence spot check)  --no-validate\n"
               "  bulk:   mcrt bulk \"<script>\" [--jobs N] [--out-dir D]\n"
               "          [--report F] [--canonical] [--timeout <seconds>]\n"
               "          [--manifest F] [--resume] [--retries N]\n"
               "          <in.blif|dir>...\n"
               "  resilience (flow and bulk):\n"
               "          --timeout <s>       per-flow/per-job deadline\n"
               "          --budget-bdd <n>    BDD node cap for verification\n"
               "          --budget-bmc <n>    BMC unroll depth cap\n"
               "          --budget-rss-mb <m> peak-RSS budget per flow\n"
               "          --faults \"<spec>\"   inject faults, e.g.\n"
               "          \"pass:retime=throw; write:*=fail@2\" (also via\n"
               "          MCRT_FAULT_* environment variables)\n"
               "  corpus: mcrt corpus <out-dir> [--count N] [--seed S]\n"
               "          [--gates G] (adds one ~G-LUT scaled design)\n"
               "  fuzz:   mcrt fuzz [--budget-s S] [--cases N] [--seed S]\n"
               "          [--oracle <serial-vs-bulk|bulk-vs-serve|"
               "mono-vs-windowed|compact-vs-legacy|cslow-vs-replicated>]\n"
               "          [--out-dir D] [--report F] [--canonical]\n"
               "          differential fuzzing across the engine pairs;\n"
               "          failures are minimized into reproducers in "
               "--out-dir.\n"
               "          mcrt fuzz --repro <file> replays one reproducer\n"
               "          (--update re-minimizes and rewrites it); with an\n"
               "          explicit --seed the case is regenerated and\n"
               "          written to <file> first (see docs/FUZZING.md)\n"
               "  bench:  mcrt bench [--quick] [--out-dir D] [--seed S]\n"
               "          [--baseline <dir> --max-regress <frac=0.20>]\n"
               "          compact-vs-legacy benchmark; writes BENCH_*.json\n"
               "  serve:  mcrt serve (--socket <path> | --port <n>) [--jobs N]\n"
               "          [--cache-mb M] [--disk-cache-dir D "
               "--disk-cache-mb M\n"
               "          --disk-cache-ttl-s S (age out disk entries)]\n"
               "          [--max-inflight N --retry-after-ms MS] [--timeout S]\n"
               "          [--no-validate] [--verify] [--faults <spec>] "
               "[budgets]\n"
               "          persistent retiming daemon with a structural\n"
               "          result cache and a crash-safe disk tier (see\n"
               "          docs/SERVER.md)\n"
               "  client: mcrt client \"<script>\" (--socket <p> | --port <n>)\n"
               "          [--out-dir D] [--report F --canonical] [--timeout S]\n"
               "          [--retries N --retry-base-ms MS] [--tenant T]\n"
               "          [--stats] [--shutdown] <in.blif|dir>...\n"
               "          submit circuits to a running daemon; also:\n"
               "          mcrt client --hello|--stats|--health|--drain|"
               "--shutdown\n"
               "  loadtest: mcrt loadtest [--quick] [--seed S]\n"
               "          [--out-dir D] [--baseline <dir> "
               "[--max-regress F]]\n"
               "          chaos load harness: spins in-process daemons and\n"
               "          drives traffic under injected disk and connection\n"
               "          faults plus a corrupt-entry restart recovery\n"
               "          check; writes BENCH_serve.json\n"
               "  mcrt --version prints version, build type and sanitizers\n");
  return 2;
}

/// Loads + validates a netlist, reporting every problem to `diag`.
std::optional<Netlist> load(const std::string& path, DiagnosticsSink& diag) {
  auto parsed = read_blif_file(path);
  if (const auto* err = std::get_if<BlifError>(&parsed)) {
    diag.error(path, str_format("line %zu: %s", err->line,
                                err->message.c_str()));
    return std::nullopt;
  }
  Netlist netlist = std::move(std::get<Netlist>(parsed));
  const auto problems = netlist.validate();
  if (!problems.empty()) {
    for (const std::string& problem : problems) diag.error(path, problem);
    return std::nullopt;
  }
  return netlist;
}

bool store(const Netlist& netlist, const std::string& path,
           DiagnosticsSink& diag) {
  if (!write_blif_file(netlist, path)) {
    diag.error(path, "cannot write file");
    return false;
  }
  return true;
}

void print_stats(const Netlist& n, const char* label) {
  const auto stats = n.stats();
  std::printf("%-10s in=%zu out=%zu lut=%zu const=%zu ff=%zu "
              "(en=%zu sync=%zu async=%zu) period=%lld\n",
              label, stats.inputs, stats.outputs, stats.luts, stats.constants,
              stats.registers, stats.with_en, stats.with_sync,
              stats.with_async,
              static_cast<long long>(compute_period(n)));
}

int cmd_stats(const Netlist& n) {
  print_stats(n, "circuit");
  return 0;
}

int cmd_classes(const Netlist& n) {
  const auto classes = classify_registers(n);
  std::printf("%zu registers in %zu classes\n", n.register_count(),
              classes.class_count());
  std::vector<std::size_t> population(classes.class_count(), 0);
  for (const ClassId c : classes.reg_class) ++population[c.index()];
  for (std::size_t c = 0; c < classes.class_count(); ++c) {
    const RegisterClassInfo& info = classes.classes[c];
    std::printf("  class %zu: %zu regs, clk=%s", c, population[c],
                n.net(info.clk).name.c_str());
    if (info.en.valid()) std::printf(" en=%s", n.net(info.en).name.c_str());
    if (info.sync_ctrl.valid()) {
      std::printf(" sync=%s", n.net(info.sync_ctrl).name.c_str());
    }
    if (info.async_ctrl.valid()) {
      std::printf(" async=%s", n.net(info.async_ctrl).name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

struct FlowFlags {
  bool profile = false;
  bool verify = false;
  bool validate = true;
  double timeout_seconds = 0;  ///< per-flow (or per-bulk-job) deadline
  ResourceBudgets budgets;
  std::string fault_spec;  ///< --faults, merged over MCRT_FAULT_* env
};

/// Builds the --faults injector (on top of the MCRT_FAULT_* environment
/// configuration). Returns false on a malformed spec.
bool make_fault_injector(const FlowFlags& flags, FaultInjector& injector,
                         DiagnosticsSink& diag) {
  if (flags.fault_spec.empty()) return true;
  std::string error;
  if (!injector.configure(flags.fault_spec, &error)) {
    diag.error("--faults", error);
    return false;
  }
  return true;
}

/// Shared driver for `flow` and the canned legacy pipelines: compile the
/// script, run it, report, write the result.
int run_flow(const std::string& script, const std::string& in_path,
             const std::string& out_path, const FlowFlags& flags,
             StreamDiagnostics& diag) {
  auto input = load(in_path, diag);
  if (!input) return 1;

  PassManagerOptions options;
  options.check_invariants = flags.validate;
  options.check_equivalence = flags.verify;
  options.equivalence.runs = 2;
  options.equivalence.cycles = 48;
  options.verbose = true;
  PassManager manager(options);
  if (const auto error =
          compile_flow_script(script, PassRegistry::standard(), manager)) {
    diag.error("flow", *error);
    return 2;
  }

  FlowContext context(std::move(*input), &diag);
  CancelToken deadline(&g_interrupt);
  if (flags.timeout_seconds > 0) deadline.set_timeout(flags.timeout_seconds);
  context.cancel = &deadline;
  context.budgets = flags.budgets;
  FaultInjector faults;
  if (!make_fault_injector(flags, faults, diag)) return 2;
  if (!flags.fault_spec.empty()) context.faults = &faults;

  const FlowResult result = manager.run(context);
  if (flags.profile) std::fputs(result.format_profile().c_str(), stderr);
  if (!result.success) {
    diag.error("flow", str_format("%s: %s", flow_status_name(result.status),
                                  result.error.c_str()));
    return 1;
  }
  print_stats(context.netlist(), "result");
  return store(context.netlist(), out_path, diag) ? 0 : 1;
}

struct BulkFlags {
  std::size_t jobs = 0;  ///< 0 = hardware concurrency
  std::string out_dir;
  std::string report_path;
  bool canonical = false;
  std::string manifest_path;
  bool resume = false;
  std::size_t retries = 0;
};

/// Expands each input (a .blif file or a directory scanned for *.blif,
/// sorted) into bulk jobs writing to `out_dir` (if given). Deterministic
/// job order: inputs as given, directory entries sorted by name.
std::vector<BulkJob> collect_bulk_jobs(const std::vector<std::string>& inputs,
                                       const std::string& out_dir,
                                       DiagnosticsSink& diag, bool* ok) {
  namespace fs = std::filesystem;
  *ok = true;
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(input, ec)) {
        if (entry.path().extension() == ".blif") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        diag.error(input, "cannot list directory: " + ec.message());
        *ok = false;
        return {};
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) diag.warning(input, "no .blif files in directory");
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(input);
    }
  }
  std::vector<BulkJob> jobs;
  jobs.reserve(files.size());
  for (const std::string& file : files) {
    std::string output;
    if (!out_dir.empty()) {
      output = (fs::path(out_dir) / fs::path(file).filename()).string();
    }
    jobs.push_back(make_file_job(file, std::move(output)));
  }
  // Two inputs mapping onto one output file would race; refuse up front.
  for (std::size_t i = 0; i + 1 < jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      if (!jobs[i].output_path.empty() &&
          jobs[i].output_path == jobs[j].output_path) {
        diag.error(jobs[j].input_path,
                   "output collides with " + jobs[i].input_path + " at " +
                       jobs[i].output_path);
        *ok = false;
        return {};
      }
    }
  }
  return jobs;
}

int cmd_bulk(const std::string& script, const std::vector<std::string>& inputs,
             const BulkFlags& bulk, const FlowFlags& flags,
             StreamDiagnostics& diag) {
  bool ok = false;
  std::vector<BulkJob> jobs =
      collect_bulk_jobs(inputs, bulk.out_dir, diag, &ok);
  if (!ok) return 2;
  if (jobs.empty()) {
    diag.error("bulk", "no input circuits");
    return 2;
  }

  FaultInjector faults;
  if (!make_fault_injector(flags, faults, diag)) return 2;

  BulkOptions options;
  options.jobs = bulk.jobs;
  options.manager.check_invariants = flags.validate;
  options.manager.check_equivalence = flags.verify;
  options.manager.equivalence.runs = 2;
  options.manager.equivalence.cycles = 48;
  options.timeout_seconds = flags.timeout_seconds;
  options.cancel = &g_interrupt;
  options.manifest_path = bulk.manifest_path;
  options.resume = bulk.resume;
  options.max_retries = bulk.retries;
  options.budgets = flags.budgets;
  if (!flags.fault_spec.empty()) options.faults = &faults;
  BulkRunner runner(script, options);
  if (const auto error = runner.check()) {
    diag.error("bulk", *error);
    return 2;
  }
  const BulkReport report = runner.run(jobs);

  for (const BulkJobResult& r : report.results) {
    if (r.success) {
      std::printf("%-20s %-9s lut %zu -> %zu  ff %zu -> %zu  period "
                  "%lld -> %lld  (%.3fs)\n",
                  r.name.c_str(), r.resumed ? "ok*" : "ok", r.before.luts,
                  r.after.luts, r.before.registers, r.after.registers,
                  static_cast<long long>(r.period_before),
                  static_cast<long long>(r.period_after), r.seconds);
    } else {
      std::printf("%-20s %-9s %s\n", r.name.c_str(),
                  job_status_name(r.status), r.error.c_str());
      for (const Diagnostic& d : r.diagnostics) {
        if (d.severity != DiagSeverity::kNote) diag.report(d);
      }
    }
  }
  std::printf("bulk: %zu/%zu ok on %zu workers, wall %.3fs cpu %.3fs "
              "(speedup %.2fx)\n",
              report.succeeded(), report.results.size(), report.jobs,
              report.wall_seconds, report.cpu_seconds, report.speedup());

  if (!bulk.report_path.empty()) {
    BulkJsonOptions json;
    json.canonical = bulk.canonical;
    std::ofstream out(bulk.report_path, std::ios::binary);
    out << report.to_json(json);
    if (!out) {
      diag.error(bulk.report_path, "cannot write report");
      return 1;
    }
  }
  return report.failed() == 0 ? 0 : 1;
}

int cmd_corpus(const std::string& out_dir, std::size_t count,
               std::uint64_t seed, std::size_t scaled_gates,
               StreamDiagnostics& diag) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  std::vector<CircuitProfile> suite = random_suite(count, seed);
  if (scaled_gates > 0) suite.push_back(scaled_profile(scaled_gates, seed));
  // Big suites (many circuits, or a scaled design that takes seconds to
  // generate and write) report progress through the diagnostics sink so a
  // long-running corpus build is visibly alive, not hung.
  const bool report_progress = suite.size() >= 16 || scaled_gates >= 100000;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const CircuitProfile& profile = suite[i];
    if (report_progress) {
      diag.note("corpus", str_format("[%zu/%zu] generating %s", i + 1,
                                     suite.size(), profile.name.c_str()));
    }
    const Netlist netlist = generate_circuit(profile);
    const std::string path =
        (fs::path(out_dir) / (profile.name + ".blif")).string();
    if (!write_blif_file(netlist, path, profile.name)) {
      diag.error(path, "cannot write file");
      return 1;
    }
    const auto stats = netlist.stats();
    std::printf("%s: in=%zu lut=%zu ff=%zu\n", path.c_str(), stats.inputs,
                stats.luts, stats.registers);
  }
  return 0;
}

struct BenchFlags {
  bool quick = false;          ///< trimmed suite + fewer reps (CI smoke)
  std::string out_dir = ".";   ///< where BENCH_*.json land
  std::uint64_t seed = 1;      ///< random_suite / stimulus seed
  std::string baseline_dir;    ///< committed BENCH_*.json to gate against
  double max_regress = 0.20;   ///< allowed fractional speedup loss
};

int cmd_bench(const BenchFlags& flags, StreamDiagnostics& diag) {
  namespace fs = std::filesystem;
  const BenchOptions options{flags.quick, flags.seed};

  const auto run_one = [&](const char* label, const char* schema,
                           const char* file_name, Json (*runner)(
                               const BenchOptions&)) -> std::optional<Json> {
    std::printf("bench: running %s suite (%s)...\n", label,
                flags.quick ? "quick" : "full");
    Json report = runner(options);
    const std::string problem = validate_bench_report(report, schema);
    if (!problem.empty()) {
      diag.error("bench", std::string(label) + ": " + problem);
      return std::nullopt;
    }
    for (const Json& entry : report.at("entries").as_array()) {
      std::string line =
          str_format("  %-8s", entry.at("circuit").as_string().c_str());
      for (const auto& [key, value] : entry.as_object()) {
        if (key.rfind("speedup", 0) == 0) {
          line += str_format(" %s=%.2fx", key.c_str(), value.as_number());
        }
      }
      std::printf("%s\n", line.c_str());
    }
    std::printf("  geomean %.2fx over %lld circuits\n",
                report.at("summary").at("geomean_speedup").as_number(),
                static_cast<long long>(
                    report.at("summary").at("circuits").as_int()));
    std::error_code ec;
    fs::create_directories(flags.out_dir, ec);
    const std::string path = (fs::path(flags.out_dir) / file_name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << write_bench_report(report);
    if (!out.good()) {
      diag.error("bench", "cannot write " + path);
      return std::nullopt;
    }
    std::printf("  wrote %s\n", path.c_str());
    return report;
  };

  const auto retime = run_one("retime", kBenchRetimeSchema,
                              "BENCH_retime.json", run_retime_bench);
  if (!retime) return 1;
  const auto sim =
      run_one("sim", kBenchSimSchema, "BENCH_sim.json", run_sim_bench);
  if (!sim) return 1;
  const auto window = run_one("window", kBenchWindowSchema,
                              "BENCH_window.json", run_window_bench);
  if (!window) return 1;
  const auto cslow = run_one("cslow", kBenchCslowSchema, "BENCH_cslow.json",
                             run_cslow_bench);
  if (!cslow) return 1;

  if (flags.baseline_dir.empty()) return 0;

  // Regression gate: speedup ratios vs the committed baseline documents.
  const auto gate = [&](const Json& current, const char* schema,
                        const char* file_name) -> int {
    const std::string path =
        (fs::path(flags.baseline_dir) / file_name).string();
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      diag.error("bench", "cannot read baseline " + path);
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto parsed = Json::parse(text);
    if (const auto* err = std::get_if<JsonParseError>(&parsed)) {
      diag.error("bench", path + ": " + err->message);
      return 1;
    }
    const Json& baseline = std::get<Json>(parsed);
    const std::string problem = validate_bench_report(baseline, schema);
    if (!problem.empty()) {
      diag.error("bench", path + ": " + problem);
      return 1;
    }
    const std::vector<std::string> regressions =
        bench_regressions(current, baseline, flags.max_regress);
    for (const std::string& regression : regressions) {
      diag.error("bench", std::string(file_name) + ": " + regression);
    }
    return regressions.empty() ? 0 : 1;
  };
  int rc = gate(*retime, kBenchRetimeSchema, "BENCH_retime.json");
  rc |= gate(*sim, kBenchSimSchema, "BENCH_sim.json");
  rc |= gate(*window, kBenchWindowSchema, "BENCH_window.json");
  rc |= gate(*cslow, kBenchCslowSchema, "BENCH_cslow.json");
  if (rc == 0) std::printf("bench: no regression vs baseline\n");
  return rc;
}

int cmd_loadtest(const BenchFlags& flags, StreamDiagnostics& diag) {
  namespace fs = std::filesystem;
  ServeBenchOptions options;
  options.quick = flags.quick;
  options.seed = flags.seed;
  options.work_dir = (fs::path(flags.out_dir) / "loadtest_work").string();

  std::printf("loadtest: running serve chaos phases (%s)...\n",
              flags.quick ? "quick" : "full");
  const Json report = run_serve_bench(options, &diag);
  const std::string problem = validate_serve_bench_report(report);
  if (!problem.empty()) {
    if (report.has("error")) {
      diag.error("loadtest", report.at("error").as_string());
    }
    diag.error("loadtest", problem);
    return 1;
  }
  for (const Json& entry : report.at("entries").as_array()) {
    std::printf(
        "  %-10s requests=%lld speedup=%.2fx p99=%.1fms mem_hit=%.2f "
        "disk_hit=%.2f identical=%s\n",
        entry.at("circuit").as_string().c_str(),
        static_cast<long long>(entry.at("requests").as_int()),
        entry.at("speedup_warm_vs_cold").as_number(),
        entry.at("p99_ms").as_number(), entry.at("mem_hit_ratio").as_number(),
        entry.at("disk_hit_ratio").as_number(),
        entry.at("identical").as_bool() ? "yes" : "NO");
  }
  const Json& summary = report.at("summary");
  std::printf(
      "  geomean %.2fx, corrupt_served=%lld, restart_disk_hit_ratio=%.2f\n",
      summary.at("geomean_speedup").as_number(),
      static_cast<long long>(summary.at("corrupt_served").as_int()),
      summary.at("restart_disk_hit_ratio").as_number());

  std::error_code ec;
  fs::create_directories(flags.out_dir, ec);
  const std::string path =
      (fs::path(flags.out_dir) / "BENCH_serve.json").string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << write_bench_report(report);
  if (!out.good()) {
    diag.error("loadtest", "cannot write " + path);
    return 1;
  }
  std::printf("  wrote %s\n", path.c_str());

  if (flags.baseline_dir.empty()) return 0;
  const std::string baseline_path =
      (fs::path(flags.baseline_dir) / "BENCH_serve.json").string();
  std::ifstream in(baseline_path, std::ios::binary);
  if (!in.good()) {
    diag.error("loadtest", "cannot read baseline " + baseline_path);
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto parsed = Json::parse(text);
  if (const auto* err = std::get_if<JsonParseError>(&parsed)) {
    diag.error("loadtest", baseline_path + ": " + err->message);
    return 1;
  }
  const Json& baseline = std::get<Json>(parsed);
  const std::string baseline_problem = validate_serve_bench_report(baseline);
  if (!baseline_problem.empty()) {
    diag.error("loadtest", baseline_path + ": " + baseline_problem);
    return 1;
  }
  const std::vector<std::string> regressions =
      bench_regressions(report, baseline, flags.max_regress);
  for (const std::string& regression : regressions) {
    diag.error("loadtest", "BENCH_serve.json: " + regression);
  }
  if (regressions.empty()) {
    std::printf("loadtest: no regression vs baseline\n");
    return 0;
  }
  return 1;
}

struct ServeFlags {
  std::string socket_path;    ///< --socket (Unix-domain)
  int port = -1;              ///< --port (loopback TCP; 0 = ephemeral)
  std::size_t cache_mb = 64;  ///< --cache-mb (0 disables the result cache)
  std::string disk_cache_dir;       ///< --disk-cache-dir (empty = no tier)
  std::size_t disk_cache_mb = 256;  ///< --disk-cache-mb
  std::uint64_t disk_cache_ttl_s = 0;  ///< --disk-cache-ttl-s (0 = no aging)
  std::size_t max_inflight = 0;     ///< --max-inflight (0 = unbounded)
  int retry_after_ms = 200;         ///< --retry-after-ms (busy frame hint)
  int retry_base_ms = 50;     ///< client: --retry-base-ms (backoff base)
  std::string tenant;         ///< client: --tenant (fair-share bucket)
  bool stats = false;         ///< client: print the daemon's {"stats"} frame
  bool shutdown = false;      ///< client: stop the daemon when done
  bool hello = false;         ///< client: print the greeting hello frame
  bool health = false;        ///< client: print the {"health"} frame
  bool drain = false;         ///< client: ask the daemon to drain
};

bool serve_endpoint(const ServeFlags& serve, SocketEndpoint* endpoint,
                    DiagnosticsSink& diag) {
  if (serve.socket_path.empty() && serve.port < 0) {
    diag.error("serve", "need --socket <path> or --port <n>");
    return false;
  }
  endpoint->unix_path = serve.socket_path;
  endpoint->tcp_port =
      serve.port > 0 ? static_cast<std::uint16_t>(serve.port) : 0;
  return true;
}

int cmd_serve(const ServeFlags& serve, const BulkFlags& bulk,
              const FlowFlags& flags, StreamDiagnostics& diag) {
  ServerOptions options;
  if (!serve_endpoint(serve, &options.endpoint, diag)) return 2;
  FaultInjector faults;
  if (!make_fault_injector(flags, faults, diag)) return 2;
  options.jobs = bulk.jobs;
  options.cache_bytes = serve.cache_mb << 20;
  options.disk_cache_dir = serve.disk_cache_dir;
  options.disk_cache_bytes = serve.disk_cache_mb << 20;
  options.disk_cache_ttl_seconds = serve.disk_cache_ttl_s;
  options.max_inflight = serve.max_inflight;
  options.retry_after_ms = serve.retry_after_ms;
  // Same equivalence effort the flow/bulk commands use, so a request with
  // verify=true spot-checks exactly like `mcrt bulk --verify`.
  options.manager.equivalence.runs = 2;
  options.manager.equivalence.cycles = 48;
  options.default_timeout_seconds = flags.timeout_seconds;
  options.budgets = flags.budgets;
  if (!flags.fault_spec.empty()) options.faults = &faults;
  options.log = &diag;

  RetimingServer server(options);
  std::string error;
  if (!server.start(&error)) {
    diag.error("serve", error);
    return 1;
  }
  // The smoke tests (and shell users) wait for this line before dialing.
  std::printf("mcrt serve: listening on %s\n",
              server.bound_endpoint().describe().c_str());
  std::fflush(stdout);
  server.run(&g_interrupt);
  const ServerStats stats = server.stats();
  const CacheStats cache = server.cache_stats();
  std::printf("mcrt serve: %llu requests (%llu ok, %llu failed, %llu timeout, "
              "%llu cancelled, %llu busy, %llu coalesced), cache %llu/%llu "
              "hits\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.ok),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.timeout),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.busy),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.hits + cache.misses));
  if (const std::optional<DiskCacheStats> disk = server.disk_cache_stats()) {
    std::printf("mcrt serve: disk cache %llu/%llu hits, %zu entries, "
                "%llu quarantined, %llu write failures\n",
                static_cast<unsigned long long>(disk->hits),
                static_cast<unsigned long long>(disk->hits + disk->misses),
                disk->entries,
                static_cast<unsigned long long>(disk->quarantined),
                static_cast<unsigned long long>(disk->write_failures));
  }
  return 0;
}

int cmd_client(const std::string& script,
               const std::vector<std::string>& inputs, const ServeFlags& serve,
               const BulkFlags& bulk, const FlowFlags& flags,
               StreamDiagnostics& diag) {
  namespace fs = std::filesystem;
  SocketEndpoint endpoint;
  if (!serve_endpoint(serve, &endpoint, diag)) return 2;
  if (!bulk.report_path.empty() && !bulk.canonical) {
    diag.error("client", "--report needs --canonical (the client composes "
                         "the report from the daemon's canonical records)");
    return 2;
  }

  ServeClient client;
  std::string error;
  if (!client.connect(endpoint, &error)) {
    diag.error("client", error);
    return 1;
  }
  if (serve.hello) std::printf("%s\n", client.greeting().write().c_str());

  int exit_code = 0;
  std::vector<std::string> job_jsons;
  std::size_t succeeded = 0;
  if (!inputs.empty()) {
    bool ok = false;
    std::vector<BulkJob> jobs =
        collect_bulk_jobs(inputs, bulk.out_dir, diag, &ok);
    if (!ok) return 2;
    if (jobs.empty()) {
      diag.error("client", "no input circuits");
      return 2;
    }
    std::vector<JobRequest> requests;
    requests.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      JobRequest request;
      request.id = str_format("j%zu", i);
      request.name = jobs[i].name;
      request.tenant = serve.tenant;
      // The daemon may run in a different working directory.
      request.path = fs::absolute(jobs[i].input_path).string();
      if (!jobs[i].output_path.empty()) {
        request.output = fs::absolute(jobs[i].output_path).string();
      }
      request.script = script;
      request.options.canonical = bulk.canonical;
      request.options.timeout_seconds = flags.timeout_seconds;
      request.options.validate = flags.validate;
      request.options.verify = flags.verify;
      request.options.budgets = flags.budgets;
      if (!client.submit(request)) {
        diag.error("client", "connection lost while submitting");
        return 1;
      }
      requests.push_back(std::move(request));
    }
    std::vector<ClientJobResult> results;
    if (!client.collect(&results, &error)) {
      diag.error("client", error);
      return 1;
    }
    // Re-submit transient outcomes — busy frames and the kIoError class
    // `mcrt bulk` retries — with exponential backoff honoring the daemon's
    // retry-after hint.
    RetryPolicy policy;
    policy.max_attempts = 1 + static_cast<int>(bulk.retries);
    policy.base_delay_ms = serve.retry_base_ms;
    for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
      int hint_ms = 0;
      std::vector<std::size_t> redo;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].retryable()) {
          hint_ms = std::max(hint_ms, results[i].retry_after_ms);
          redo.push_back(i);
        }
      }
      if (redo.empty()) break;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(policy.delay_ms(attempt, hint_ms)));
      for (const std::size_t i : redo) {
        if (!client.submit(requests[i])) {
          diag.error("client", "connection lost while retrying");
          return 1;
        }
      }
      if (!client.collect(&results, &error)) {
        diag.error("client", error);
        return 1;
      }
    }
    for (const ClientJobResult& result : results) {
      if (result.success) {
        // Pull the stats line out of the per-job report object.
        auto parsed = Json::parse(result.job_json);
        const Json* job = std::get_if<Json>(&parsed);
        const Json& before = job != nullptr ? job->at("before") : Json();
        const Json& after = job != nullptr ? job->at("after") : Json();
        std::printf("%-20s %-9s lut %lld -> %lld  ff %lld -> %lld  period "
                    "%lld -> %lld%s\n",
                    result.name.c_str(), "ok",
                    static_cast<long long>(before.at("luts").as_int()),
                    static_cast<long long>(after.at("luts").as_int()),
                    static_cast<long long>(before.at("registers").as_int()),
                    static_cast<long long>(after.at("registers").as_int()),
                    static_cast<long long>(before.at("period").as_int()),
                    static_cast<long long>(after.at("period").as_int()),
                    result.cached ? "  (cached)" : "");
        ++succeeded;
      } else {
        std::printf("%-20s %-9s %s\n", result.name.c_str(),
                    result.status.c_str(), result.error.c_str());
        for (const Diagnostic& d : result.diagnostics) {
          if (d.severity != DiagSeverity::kNote) diag.report(d);
        }
        exit_code = 1;
      }
      job_jsons.push_back(result.job_json);
    }
    for (const std::string& protocol_error : client.protocol_errors()) {
      diag.error("client", protocol_error);
      exit_code = 1;
    }
    std::printf("client: %zu/%zu ok\n", succeeded, results.size());

    if (!bulk.report_path.empty()) {
      std::ofstream out(bulk.report_path, std::ios::binary);
      out << compose_canonical_report_json(script, job_jsons, succeeded);
      if (!out) {
        diag.error(bulk.report_path, "cannot write report");
        return 1;
      }
    }
  }

  if (serve.stats) {
    std::optional<Json> stats = client.query_stats(&error);
    if (!stats) {
      diag.error("client", error);
      return 1;
    }
    std::printf("%s\n", stats->write().c_str());
  }
  if (serve.health) {
    std::optional<Json> health = client.query_health(&error);
    if (!health) {
      diag.error("client", error);
      return 1;
    }
    std::printf("%s\n", health->write().c_str());
  }
  if (serve.drain) {
    std::optional<Json> ack = client.send_drain(&error);
    if (!ack) {
      diag.error("client", error);
      return 1;
    }
    std::printf("%s\n", ack->write().c_str());
  }
  if (serve.shutdown) {
    if (!client.send_shutdown()) {
      diag.error("client", "connection lost before shutdown");
      return 1;
    }
  }
  return exit_code;
}

// ---------------------------------------------------------------------------
// fuzz: differential fuzzing across the engine pairs (src/fuzz/,
// docs/FUZZING.md).

struct FuzzFlags {
  std::size_t cases = 0;      ///< --cases (0 = run until the budget expires)
  double budget_seconds = 0;  ///< --budget-s (both zero => 60s default)
  std::string oracle;         ///< --oracle (empty = round-robin over all four)
  std::string repro_path;     ///< --repro: replay (or materialize) one case
  bool update = false;        ///< --update: re-minimize + rewrite a failing repro
  bool seed_given = false;    ///< explicit --seed (drives --repro write mode)
  std::string plant_bug;      ///< --plant-bug: sabotage spec (self-tests only)
};

/// Replays one reproducer. With an explicit --seed the case is first
/// regenerated from that 64-bit case seed and written to the path, so the
/// seed printed by a CI failure line materializes as a committable file.
int cmd_fuzz_repro(const FuzzFlags& fuzz, std::uint64_t seed,
                   const std::optional<OracleKind>& only,
                   const OracleOptions& oracle_options,
                   StreamDiagnostics& diag) {
  FuzzCase c;
  if (fuzz.seed_given) {
    c = generate_fuzz_case_from_seed(seed,
                                     only.value_or(OracleKind::kSerialVsBulk));
    if (!fuzz.plant_bug.empty()) c.break_spec = fuzz.plant_bug;
    if (!write_repro_file(c, fuzz.repro_path)) {
      diag.error(fuzz.repro_path, "cannot write reproducer");
      return 1;
    }
  } else {
    auto parsed = read_repro_file(fuzz.repro_path);
    if (const auto* err = std::get_if<std::string>(&parsed)) {
      diag.error(fuzz.repro_path, *err);
      return 2;
    }
    c = std::move(std::get<FuzzCase>(parsed));
    if (only.has_value()) c.oracle = *only;
    if (!fuzz.plant_bug.empty()) c.break_spec = fuzz.plant_bug;
  }

  OracleVerdict verdict;
  try {
    verdict = run_oracle(c, oracle_options);
  } catch (const CancelledError&) {
    diag.error(c.name, "cancelled");
    return 130;
  }
  for (const OracleLeg& leg : verdict.legs) {
    std::printf("  %-28s %s%s%s\n", leg.name.c_str(),
                leg.pass ? "PASS" : "FAIL", leg.detail.empty() ? "" : "  ",
                leg.detail.c_str());
  }
  std::printf("%s [%s seed %llu]: %s\n", c.name.c_str(),
              oracle_name(c.oracle),
              static_cast<unsigned long long>(c.seed),
              verdict.pass ? "PASS" : verdict.first_failure().c_str());

  if (!verdict.pass && fuzz.update) {
    ShrinkOptions shrink;
    shrink.oracle = oracle_options;
    const ShrinkResult r = shrink_case(c, shrink);
    if (r.still_failing) {
      if (!write_repro_file(r.minimized, fuzz.repro_path)) {
        diag.error(fuzz.repro_path, "cannot rewrite reproducer");
        return 1;
      }
      std::printf("re-minimized: %zu -> %zu LUTs (%zu oracle runs)\n",
                  r.before.luts, r.after.luts, r.oracle_runs);
    }
  }
  return verdict.pass ? 0 : 1;
}

int cmd_fuzz(const FuzzFlags& fuzz, const BulkFlags& bulk,
             const FlowFlags& flags, std::uint64_t seed,
             StreamDiagnostics& diag) {
  OracleOptions oracle_options;
  if (flags.timeout_seconds > 0) {
    oracle_options.timeout_seconds = flags.timeout_seconds;
  }
  oracle_options.cancel = &g_interrupt;

  std::optional<OracleKind> only;
  if (!fuzz.oracle.empty()) {
    only = oracle_from_name(fuzz.oracle);
    if (!only.has_value()) {
      diag.error("fuzz", str_format(
          "unknown oracle '%s' (serial-vs-bulk, bulk-vs-serve, "
          "mono-vs-windowed, compact-vs-legacy, cslow-vs-replicated)",
          fuzz.oracle.c_str()));
      return 2;
    }
  }

  if (!fuzz.repro_path.empty()) {
    return cmd_fuzz_repro(fuzz, seed, only, oracle_options, diag);
  }

  FuzzDriverOptions options;
  options.seed = seed;
  options.cases = fuzz.cases;
  options.budget_seconds = fuzz.budget_seconds;
  options.only_oracle = only;
  options.out_dir = bulk.out_dir;
  options.canonical = bulk.canonical;
  options.oracle = oracle_options;
  options.cancel = &g_interrupt;
  options.break_spec = fuzz.plant_bug;
  options.progress = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };

  const FuzzRunReport report = run_fuzz(options);
  if (!bulk.report_path.empty()) {
    namespace fs = std::filesystem;
    const fs::path parent = fs::path(bulk.report_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      fs::create_directories(parent, ec);
    }
    std::ofstream out(bulk.report_path, std::ios::binary);
    out << report.to_json(bulk.canonical) << "\n";
    if (!out) {
      diag.error(bulk.report_path, "cannot write report");
      return 1;
    }
  }
  std::printf("fuzz: %zu cases, %zu failures (seed %llu, %.1fs)\n",
              report.cases_run, report.failures,
              static_cast<unsigned long long>(report.seed),
              report.wall_seconds);
  return report.failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--version") == 0 ||
                    std::strcmp(argv[1], "version") == 0)) {
    std::printf("%s\n", version_line().c_str());
    return 0;
  }
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // `bench` and `fuzz` are self-contained (generated workloads, no circuit
  // files), so a bare `mcrt bench` / `mcrt fuzz` is a complete invocation.
  if (argc < 3 && command != "bench" && command != "fuzz") return usage();
  StreamDiagnostics diag(stderr);

  // Collect flags and positionals.
  std::vector<std::string> files;
  std::uint32_t lut_k = 4;
  std::int64_t lut_delay = 10;
  bool minperiod = false;
  std::int64_t target_period = 0;
  bool no_sharing = false;
  bool windowed = false;         ///< any --window* flag seen
  std::size_t window_count = 0;  ///< --windows (0 = derive from size)
  std::size_t window_size = 0;   ///< --window-size (0 = pass default)
  std::size_t window_jobs = 0;   ///< --window-jobs (0 = hardware threads)
  std::uint32_t cslow = 0;       ///< --cslow (0 = off)
  std::size_t corpus_gates = 0;  ///< corpus --gates (0 = random suite only)
  bool formal = false;
  std::size_t bmc_depth = 0;
  bool bmc_x_ok = false;
  FlowFlags flow_flags;
  BulkFlags bulk_flags;
  ServeFlags serve_flags;
  std::size_t corpus_count = 10;
  std::uint64_t corpus_seed = 1;
  BenchFlags bench_flags;
  FuzzFlags fuzz_flags;
  // Value-taking long flags accept both "--flag value" and "--flag=value".
  const auto flag_value = [&](const std::string& arg, const char* name,
                              int* i, std::string* value) {
    const std::string prefix = std::string(name) + "=";
    if (arg == name && *i + 1 < argc) {
      *value = argv[++*i];
      return true;
    }
    if (starts_with(arg, prefix)) {
      *value = arg.substr(prefix.size());
      return true;
    }
    return false;
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (flag_value(arg, "--jobs", &i, &value)) {
      bulk_flags.jobs = static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--out-dir", &i, &value)) {
      bulk_flags.out_dir = value;
      bench_flags.out_dir = value;
      continue;
    }
    if (flag_value(arg, "--report", &i, &value)) {
      bulk_flags.report_path = value;
      continue;
    }
    if (flag_value(arg, "--count", &i, &value)) {
      corpus_count = static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--gates", &i, &value)) {
      corpus_gates = static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--windows", &i, &value)) {
      window_count = static_cast<std::size_t>(std::atoll(value.c_str()));
      windowed = true;
      continue;
    }
    if (flag_value(arg, "--window-size", &i, &value)) {
      window_size = static_cast<std::size_t>(std::atoll(value.c_str()));
      windowed = true;
      continue;
    }
    if (flag_value(arg, "--window-jobs", &i, &value)) {
      window_jobs = static_cast<std::size_t>(std::atoll(value.c_str()));
      windowed = true;
      continue;
    }
    if (flag_value(arg, "--cslow", &i, &value)) {
      cslow = static_cast<std::uint32_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--seed", &i, &value)) {
      corpus_seed = std::strtoull(value.c_str(), nullptr, 10);
      bench_flags.seed = corpus_seed;
      fuzz_flags.seed_given = true;
      continue;
    }
    if (flag_value(arg, "--budget-s", &i, &value)) {
      fuzz_flags.budget_seconds = std::atof(value.c_str());
      continue;
    }
    if (flag_value(arg, "--cases", &i, &value)) {
      fuzz_flags.cases = static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--oracle", &i, &value)) {
      fuzz_flags.oracle = value;
      continue;
    }
    if (flag_value(arg, "--repro", &i, &value)) {
      fuzz_flags.repro_path = value;
      continue;
    }
    if (arg == "--update") {
      fuzz_flags.update = true;
      continue;
    }
    if (flag_value(arg, "--plant-bug", &i, &value)) {
      fuzz_flags.plant_bug = value;
      continue;
    }
    if (arg == "--quick") {
      bench_flags.quick = true;
      continue;
    }
    if (flag_value(arg, "--baseline", &i, &value)) {
      bench_flags.baseline_dir = value;
      continue;
    }
    if (flag_value(arg, "--max-regress", &i, &value)) {
      bench_flags.max_regress = std::atof(value.c_str());
      continue;
    }
    if (arg == "--canonical") {
      bulk_flags.canonical = true;
      continue;
    }
    if (flag_value(arg, "--timeout", &i, &value)) {
      flow_flags.timeout_seconds = std::atof(value.c_str());
      continue;
    }
    if (flag_value(arg, "--manifest", &i, &value)) {
      bulk_flags.manifest_path = value;
      continue;
    }
    if (arg == "--resume") {
      bulk_flags.resume = true;
      continue;
    }
    if (flag_value(arg, "--retries", &i, &value)) {
      bulk_flags.retries = static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--faults", &i, &value)) {
      flow_flags.fault_spec = value;
      continue;
    }
    if (flag_value(arg, "--budget-bdd", &i, &value)) {
      flow_flags.budgets.bdd_node_cap =
          static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--budget-bmc", &i, &value)) {
      flow_flags.budgets.bmc_step_cap =
          static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--budget-rss-mb", &i, &value)) {
      flow_flags.budgets.max_rss_bytes =
          static_cast<std::size_t>(std::atoll(value.c_str())) * 1024 * 1024;
      continue;
    }
    if (arg == "--bmc-x-ok") {
      bmc_x_ok = true;
      continue;
    }
    if (flag_value(arg, "--socket", &i, &value)) {
      serve_flags.socket_path = value;
      continue;
    }
    if (flag_value(arg, "--port", &i, &value)) {
      serve_flags.port = std::atoi(value.c_str());
      continue;
    }
    if (flag_value(arg, "--cache-mb", &i, &value)) {
      serve_flags.cache_mb = static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--disk-cache-dir", &i, &value)) {
      serve_flags.disk_cache_dir = value;
      continue;
    }
    if (flag_value(arg, "--disk-cache-mb", &i, &value)) {
      serve_flags.disk_cache_mb =
          static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--disk-cache-ttl-s", &i, &value)) {
      serve_flags.disk_cache_ttl_s =
          static_cast<std::uint64_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--max-inflight", &i, &value)) {
      serve_flags.max_inflight =
          static_cast<std::size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (flag_value(arg, "--retry-after-ms", &i, &value)) {
      serve_flags.retry_after_ms = std::atoi(value.c_str());
      continue;
    }
    if (flag_value(arg, "--retry-base-ms", &i, &value)) {
      serve_flags.retry_base_ms = std::atoi(value.c_str());
      continue;
    }
    if (flag_value(arg, "--tenant", &i, &value)) {
      serve_flags.tenant = value;
      continue;
    }
    if (arg == "--stats") {
      serve_flags.stats = true;
      continue;
    }
    if (arg == "--shutdown") {
      serve_flags.shutdown = true;
      continue;
    }
    if (arg == "--hello") {
      serve_flags.hello = true;
      continue;
    }
    if (arg == "--health") {
      serve_flags.health = true;
      continue;
    }
    if (arg == "--drain") {
      serve_flags.drain = true;
      continue;
    }
    if (arg == "-k" && i + 1 < argc) {
      lut_k = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "-d" && i + 1 < argc) {
      lut_delay = std::atoll(argv[++i]);
    } else if (arg == "--minperiod") {
      minperiod = true;
    } else if (arg == "--target" && i + 1 < argc) {
      target_period = std::atoll(argv[++i]);
    } else if (arg == "--no-sharing") {
      no_sharing = true;
    } else if (arg == "--formal") {
      formal = true;
    } else if (arg == "--bmc" && i + 1 < argc) {
      bmc_depth = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--profile") {
      flow_flags.profile = true;
    } else if (arg == "--verify") {
      flow_flags.verify = true;
    } else if (arg == "--no-validate") {
      flow_flags.validate = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  const bool server_command = command == "serve" || command == "client";
  if (files.empty() && !server_command && command != "bench" &&
      command != "fuzz" && command != "loadtest") {
    return usage();
  }

  // ctrl-C requests a clean cooperative stop: in-flight flows unwind at
  // their next engine poll and report "cancelled" instead of dying mid-write.
  std::signal(SIGINT, handle_sigint);
  // A dropped client mid-reply must surface as a write error on that
  // session, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  if (command == "serve") {
    if (!files.empty()) return usage();
    return cmd_serve(serve_flags, bulk_flags, flow_flags, diag);
  }
  if (command == "client") {
    // Positionals are the flow script then circuits; a control-only call
    // (--hello / --stats / --shutdown) takes none.
    if (files.size() == 1 ||
        (files.empty() && !serve_flags.hello && !serve_flags.stats &&
         !serve_flags.shutdown && !serve_flags.health &&
         !serve_flags.drain)) {
      return usage();
    }
    const std::string script = files.empty() ? std::string() : files[0];
    const std::vector<std::string> inputs(
        files.empty() ? files.end() : files.begin() + 1, files.end());
    return cmd_client(script, inputs, serve_flags, bulk_flags, flow_flags,
                      diag);
  }

  // `flow` positionals are script, input, output; everything else starts
  // with the input file.
  if (command == "flow") {
    if (files.size() < 3) return usage();
    return run_flow(files[0], files[1], files[2], flow_flags, diag);
  }
  if (command == "bulk") {
    if (files.size() < 2) return usage();
    const std::vector<std::string> inputs(files.begin() + 1, files.end());
    return cmd_bulk(files[0], inputs, bulk_flags, flow_flags, diag);
  }
  if (command == "corpus") {
    return cmd_corpus(files[0], corpus_count, corpus_seed, corpus_gates, diag);
  }
  if (command == "bench") {
    if (!files.empty()) return usage();
    return cmd_bench(bench_flags, diag);
  }
  if (command == "loadtest") {
    if (!files.empty()) return usage();
    return cmd_loadtest(bench_flags, diag);
  }
  if (command == "fuzz") {
    if (!files.empty()) return usage();
    return cmd_fuzz(fuzz_flags, bulk_flags, flow_flags, corpus_seed, diag);
  }

  // Transforming subcommands are canned single-pass pipelines.
  std::string script;
  if (command == "sweep" || command == "strash" || command == "regsweep" ||
      command == "decompose-en" || command == "decompose-sync") {
    script = command;
  } else if (command == "map") {
    script = str_format("map(k=%u,d=%lld)", lut_k,
                        static_cast<long long>(lut_delay));
  } else if (command == "retime") {
    script = str_format("%s(d=%lld", windowed ? "retime-windowed" : "retime",
                        static_cast<long long>(lut_delay));
    if (windowed) {
      if (window_size > 0) script += str_format(",window-size=%zu", window_size);
      if (window_count > 0) script += str_format(",windows=%zu", window_count);
      if (window_jobs > 0) script += str_format(",window-jobs=%zu", window_jobs);
    }
    if (minperiod) script += ",minperiod";
    if (no_sharing) script += ",no-sharing";
    if (target_period != 0) {
      script += str_format(",target=%lld",
                           static_cast<long long>(target_period));
    }
    if (cslow > 0) {
      script += str_format(",cslow=%u", cslow);
      // A C-slowed netlist interleaves C streams, so the flow-level
      // input-vs-output spot check cannot apply; --verify maps to the
      // pass's stream-equivalence + ternary-BMC self-check instead.
      if (flow_flags.verify) {
        script += ",cslow-verify";
        flow_flags.verify = false;
      }
    }
    script += ")";
  }
  if (!script.empty()) {
    if (files.size() < 2) return usage();
    return run_flow(script, files[0], files[1], flow_flags, diag);
  }

  const auto input = load(files[0], diag);
  if (!input) return 1;

  if (command == "stats") return cmd_stats(*input);
  if (command == "classes") return cmd_classes(*input);
  if (command == "dot") {
    if (files.size() < 2) return usage();
    if (!write_dot_file(*input, files[1])) {
      diag.error(files[1], "cannot write file");
      return 1;
    }
    return 0;
  }
  if (command == "timing") {
    Netlist timed = *input;
    for (std::size_t i = 0; i < timed.node_count(); ++i) {
      const NodeId id{static_cast<std::uint32_t>(i)};
      if (timed.node(id).kind == NodeKind::kLut &&
          !timed.node(id).fanins.empty() && timed.node(id).delay == 0) {
        timed.set_node_delay(id, lut_delay);
      }
    }
    const auto paths = worst_paths(timed, 5);
    std::fputs(format_timing_report(timed, paths).c_str(), stdout);
    return 0;
  }

  if (command == "check") {
    if (files.size() < 2) return usage();
    const auto other = load(files[1], diag);
    if (!other) return 1;
    const auto sim = check_sequential_equivalence(*input, *other, {});
    std::printf("simulation: %s (%zu defined outputs)%s%s\n",
                sim.equivalent ? "EQUIVALENT" : "DIFFERENT",
                sim.compared_defined_outputs,
                sim.equivalent ? "" : " - ",
                sim.counterexample.c_str());
    if (bmc_depth > 0) {
      TernaryBmcOptions bo;
      bo.depth = bmc_depth;
      bo.x_refinement_ok = bmc_x_ok;
      bo.cancel = &g_interrupt;
      const auto bmc = check_ternary_bmc(*input, *other, bo);
      const char* verdict =
          bmc.verdict == TernaryBmcResult::Verdict::kEquivalentUpToDepth
              ? "EQUIVALENT (bounded)"
          : bmc.verdict == TernaryBmcResult::Verdict::kMismatch ? "DIFFERENT"
          : bmc.verdict == TernaryBmcResult::Verdict::kResourceLimit
              ? "RESOURCE-LIMIT"
              : "UNSUPPORTED";
      std::printf("bmc[%zu]:    %s (%s)\n", bmc_depth, verdict,
                  bmc.detail.c_str());
      if (bmc.verdict == TernaryBmcResult::Verdict::kMismatch) return 1;
    }
    if (formal) {
      const auto fv = check_formal_equivalence(*input, *other, {});
      const char* verdict =
          fv.verdict == FormalResult::Verdict::kEquivalent  ? "EQUIVALENT"
          : fv.verdict == FormalResult::Verdict::kMismatch ? "DIFFERENT"
                                                           : "UNSUPPORTED";
      std::printf("formal:     %s (%s)\n", verdict, fv.detail.c_str());
      return fv.verdict == FormalResult::Verdict::kEquivalent && sim.equivalent
                 ? 0
                 : 1;
    }
    return sim.equivalent ? 0 : 1;
  }

  return usage();
}

#!/bin/sh
# Regenerates the golden bulk-flow corpus and its expected report.
#
# The corpus under testdata/corpus/ is a fixed-seed sample of the
# workload generator; testdata/corpus/golden_report.json is the
# canonical (timing- and path-free) `mcrt bulk` report for the corpus
# under the script below. The `cli_bulk_golden` ctest re-runs the same
# command and byte-compares the fresh report against the golden file,
# so any change to the generator, the passes in the script, or the
# report schema shows up as a diff.
#
# Run this from the repository root after an intentional change, then
# review `git diff testdata/corpus/` before committing:
#
#   cmake -B build -S . && cmake --build build -j --target mcrt_cli
#   tools/update_golden_corpus.sh [build/tools/mcrt]
set -eu

MCRT=${1:-build/tools/mcrt}
COUNT=10
SEED=7
SCRIPT='decompose-sync; sweep; strash; retime(d=10)'

test -x "$MCRT" || { echo "error: $MCRT not built" >&2; exit 1; }
test -d testdata || { echo "error: run from the repo root" >&2; exit 1; }

rm -f testdata/corpus/*.blif
"$MCRT" corpus testdata/corpus --count "$COUNT" --seed "$SEED"

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT
"$MCRT" bulk "$SCRIPT" --jobs 4 --canonical \
  --out-dir "$OUT" --report testdata/corpus/golden_report.json \
  testdata/corpus

echo "updated testdata/corpus/ (count=$COUNT seed=$SEED)"

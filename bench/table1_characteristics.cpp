// Table 1 — Circuit Characteristics.
//
// Reproduces the paper's Table 1: for each circuit C1..C10, the register
// and LUT counts and the clock period after synthesis and 4-LUT mapping
// ("minimal area for best delay" script; synchronous set/clear inputs are
// decomposed into logic because XC4000E-class flip-flops have none).
//
// Absolute values differ from the paper (synthetic workloads, unit-style
// delay model); the reproduction target is the *regime*: circuit sizes,
// the AS/AC / EN usage pattern, and the FF:LUT ratios.
#include <cstdio>

#include "flow_common.h"

int main() {
  using namespace mcrt;
  using namespace mcrt::bench;

  std::printf("Table 1: Circuit Characteristics\n");
  std::printf("(delay unit: 1 LUT level = 10; paper reports ns after P&R)\n\n");
  std::printf("%-6s %-6s %-4s %7s %7s %8s\n", "Name", "AS/AC", "EN", "#FF",
              "#LUT", "Delay");
  std::printf("-------------------------------------------\n");

  std::size_t total_ff = 0;
  std::size_t total_lut = 0;
  std::int64_t total_delay = 0;
  // One bulk batch over the suite: generation + mapping run on all cores.
  for (const MappedCircuit& c : prepare_mapped_suite(paper_suite())) {
    std::printf("%-6s %-6s %-4s %7zu %7zu %8lld\n", c.name.c_str(),
                c.has_async ? "y" : "", c.has_en ? "y" : "", c.ff, c.lut,
                static_cast<long long>(c.delay));
    total_ff += c.ff;
    total_lut += c.lut;
    total_delay += c.delay;
  }
  std::printf("-------------------------------------------\n");
  std::printf("%-6s %-6s %-4s %7zu %7zu %8lld\n", "Totals", "", "", total_ff,
              total_lut, static_cast<long long>(total_delay));
  return 0;
}

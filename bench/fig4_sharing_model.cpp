// Fig. 4 — ablation of the §4.2 register-sharing modification.
//
// The separation-vertex construction exists so the minarea cost function
// does not *underestimate* multi-class register sharing: without it the
// optimizer believes incompatible registers parked on one fanout can share
// a chain. This bench runs the full retime flow twice per circuit and
// reports, for each mode, the optimizer's register ESTIMATE next to the
// PHYSICAL count after rebuild:
//
//   - with the modification, the estimate tracks the physical count
//     (honest minimization objective);
//   - without it, the estimate undercounts on multi-class circuits (the
//     paper's Fig. 4a effect, scaled up);
//   - the honest model may cost a few physical registers in corners (the
//     paper explicitly prefers overestimation to underestimation).
#include <cstdio>

#include "flow_common.h"

int main() {
  using namespace mcrt;
  using namespace mcrt::bench;

  std::printf(
      "Fig. 4 ablation: minarea cost model with/without separation "
      "vertices\n\n");
  std::printf("%-6s | %10s %10s | %11s %10s %10s\n", "", "with:est",
              "physical", "without:est", "physical", "undercount");
  std::printf(
      "-------+-----------------------+----------------------------------\n");
  std::int64_t total_with_est = 0;
  std::size_t total_with_phys = 0;
  std::int64_t total_wo_est = 0;
  std::size_t total_wo_phys = 0;
  for (const CircuitProfile& profile : paper_suite()) {
    const MappedCircuit mapped = prepare_mapped(profile);
    McRetimeOptions with;
    with.sharing_modification = true;
    McRetimeOptions without;
    without.sharing_modification = false;
    const McRetimeResult a = mc_retime(mapped.netlist, with);
    const McRetimeResult b = mc_retime(mapped.netlist, without);
    if (!a.success || !b.success) {
      std::printf("%-6s | FAILED (%s%s)\n", profile.name.c_str(),
                  a.error.c_str(), b.error.c_str());
      continue;
    }
    std::printf("%-6s | %10lld %10zu | %11lld %10zu %9.0f%%\n",
                profile.name.c_str(),
                static_cast<long long>(a.stats.register_estimate),
                a.stats.registers_after,
                static_cast<long long>(b.stats.register_estimate),
                b.stats.registers_after,
                100.0 * (1.0 -
                         static_cast<double>(b.stats.register_estimate) /
                             static_cast<double>(b.stats.registers_after)));
    total_with_est += a.stats.register_estimate;
    total_with_phys += a.stats.registers_after;
    total_wo_est += b.stats.register_estimate;
    total_wo_phys += b.stats.registers_after;
  }
  std::printf(
      "-------+-----------------------+----------------------------------\n");
  std::printf("%-6s | %10lld %10zu | %11lld %10zu %9.0f%%\n", "Totals",
              static_cast<long long>(total_with_est), total_with_phys,
              static_cast<long long>(total_wo_est), total_wo_phys,
              100.0 * (1.0 - static_cast<double>(total_wo_est) /
                                 static_cast<double>(total_wo_phys)));
  std::printf(
      "\nexpected shape: with separation vertices the estimate tracks the\n"
      "physical count (honest minimization objective); without them the\n"
      "model undercounts wherever fanout layers mix register classes.\n");
  return 0;
}

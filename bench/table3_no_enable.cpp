// Table 3 — Retiming Results without using Load Enable Inputs.
//
// The baseline the paper compares against: before synthesis, every load
// enable is decomposed into a feedback multiplexer (the "old way" that
// makes registers plain D-FFs), then the same map -> retime -> remap flow
// runs. Reported per circuit:
//
//   #FF/#LUT/Delay       - final values for the decomposed flow,
//   Rlut1/Rdelay1        - against Table 1 (original mapped circuit),
//   Rlut2/Rdelay2        - against Table 2 (mc-retiming with enables kept).
//
// Expected shape (paper §6): decomposing enables costs registers and LUTs
// (Rlut2 > 1 overall) without beating mc-retiming's delay (Rdelay2 ~ 1).
#include <cstdio>

#include "flow_common.h"

namespace {

/// Table 3 preparation: decompose EN at the source level, then the
/// standard script. Runs as one bulk batch over the whole suite.
std::vector<mcrt::bench::MappedCircuit> prepare_no_enable_suite(
    const std::vector<mcrt::CircuitProfile>& profiles) {
  return mcrt::bench::run_suite_flow(
      profiles, "decompose-en; decompose-sync; sweep; map");
}

}  // namespace

int main() {
  using namespace mcrt;
  using namespace mcrt::bench;

  std::printf(
      "Table 3: Retiming Results without using Load Enable Inputs\n\n");
  std::printf("%-6s %7s %7s %8s %7s %8s %7s %8s\n", "Name", "#FF", "#LUT",
              "Delay", "Rlut1", "Rdelay1", "Rlut2", "Rdelay2");
  std::printf(
      "----------------------------------------------------------------\n");

  std::size_t total_ff = 0;
  std::size_t total_lut = 0;
  std::int64_t total_delay = 0;
  std::size_t t1_lut = 0;
  std::int64_t t1_delay = 0;
  std::size_t t2_lut = 0;
  std::int64_t t2_delay = 0;
  std::size_t t2_ff = 0;
  std::size_t t1_ff = 0;

  // All four stages are bulk batches on the work-stealing pool: the two
  // preparation scripts and the two retime+remap sweeps each fan out over
  // the suite, keeping results in suite order for the table rows.
  const std::vector<CircuitProfile> profiles = paper_suite();
  const std::vector<MappedCircuit> table1s = prepare_mapped_suite(profiles);
  const std::vector<RetimedCircuit> table2s = retime_and_remap_suite(table1s);
  const std::vector<MappedCircuit> mappeds = prepare_no_enable_suite(profiles);
  const std::vector<RetimedCircuit> retimeds = retime_and_remap_suite(mappeds);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const MappedCircuit& table1 = table1s[i];
    const RetimedCircuit& table2 = table2s[i];
    const RetimedCircuit& retimed = retimeds[i];
    if (!retimed.ok || !table2.ok) {
      std::printf("%-6s  FAILED\n", profiles[i].name.c_str());
      continue;
    }
    const auto ratio = [](auto a, auto b) {
      return static_cast<double>(a) / static_cast<double>(b);
    };
    std::printf("%-6s %7zu %7zu %8lld %7.2f %8.2f %7.2f %8.2f\n",
                profiles[i].name.c_str(), retimed.circuit.ff,
                retimed.circuit.lut,
                static_cast<long long>(retimed.circuit.delay),
                ratio(retimed.circuit.lut, table1.lut),
                ratio(retimed.circuit.delay, table1.delay),
                ratio(retimed.circuit.lut, table2.circuit.lut),
                ratio(retimed.circuit.delay, table2.circuit.delay));
    total_ff += retimed.circuit.ff;
    total_lut += retimed.circuit.lut;
    total_delay += retimed.circuit.delay;
    t1_lut += table1.lut;
    t1_delay += table1.delay;
    t1_ff += table1.ff;
    t2_lut += table2.circuit.lut;
    t2_delay += table2.circuit.delay;
    t2_ff += table2.circuit.ff;
  }
  std::printf(
      "----------------------------------------------------------------\n");
  std::printf("%-6s %7zu %7zu %8lld %7.2f %8.2f %7.2f %8.2f\n", "Totals",
              total_ff, total_lut, static_cast<long long>(total_delay),
              static_cast<double>(total_lut) / static_cast<double>(t1_lut),
              static_cast<double>(total_delay) / static_cast<double>(t1_delay),
              static_cast<double>(total_lut) / static_cast<double>(t2_lut),
              static_cast<double>(total_delay) /
                  static_cast<double>(t2_delay));
  std::printf(
      "\nsummary (paper: decomposed flow = +17%% FF, +10%% LUT vs original;\n"
      "         mc-retiming = +10%% FF, -3%% LUT at equal-or-better delay)\n");
  std::printf("  decomposed flow registers: %zu vs original %zu (%.2f)\n",
              total_ff, t1_ff,
              static_cast<double>(total_ff) / static_cast<double>(t1_ff));
  std::printf("  mc-retiming registers:     %zu vs original %zu (%.2f)\n",
              t2_ff, t1_ff,
              static_cast<double>(t2_ff) / static_cast<double>(t1_ff));
  return 0;
}

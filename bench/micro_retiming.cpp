// Microbenchmarks for the §6 efficiency claims: scaling of the individual
// mc-retiming phases with circuit size (google-benchmark).
#include <benchmark/benchmark.h>

#include "mcretime/lower.h"
#include "mcretime/maximal_retiming.h"
#include "mcretime/mc_retime.h"
#include "mcretime/register_class.h"
#include "retime/minarea.h"
#include "retime/minperiod.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "transform/sweep.h"
#include "workload/generator.h"

namespace {

using namespace mcrt;

/// Scaled pipeline circuit with `size` controlling width/depth.
Netlist scaled_circuit(std::int64_t size) {
  CircuitProfile profile;
  profile.name = "scaled";
  profile.seed = 7;
  profile.control_signals = 4;
  profile.pipelines = {
      {static_cast<std::size_t>(size), static_cast<std::size_t>(size), 2},
      {static_cast<std::size_t>(size), 4, 1}};
  profile.accumulators = {{static_cast<std::size_t>(size)}};
  const Netlist rtl = sweep(generate_circuit(profile), nullptr);
  return flowmap_map(decompose_to_binary(rtl), {}).mapped;
}

void BM_ClassifyRegisters(benchmark::State& state) {
  const Netlist n = scaled_circuit(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_registers(n));
  }
  state.SetLabel(std::to_string(n.register_count()) + " regs");
}
BENCHMARK(BM_ClassifyRegisters)->Arg(4)->Arg(8)->Arg(16);

void BM_BuildMcGraphAndBounds(benchmark::State& state) {
  const Netlist n = scaled_circuit(state.range(0));
  for (auto _ : state) {
    const McGraph g = build_mc_graph(n);
    benchmark::DoNotOptimize(compute_mc_bounds(g));
  }
}
BENCHMARK(BM_BuildMcGraphAndBounds)->Arg(4)->Arg(8)->Arg(16);

void BM_MinPeriod(benchmark::State& state) {
  const Netlist n = scaled_circuit(state.range(0));
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minperiod_retime(basic));
  }
  state.SetLabel(std::to_string(basic.vertex_count()) + " vertices");
}
BENCHMARK(BM_MinPeriod)->Arg(4)->Arg(8)->Arg(16);

void BM_MinArea(benchmark::State& state) {
  const Netlist n = scaled_circuit(state.range(0));
  const McGraph g = build_mc_graph(n);
  const auto maximal = compute_mc_bounds(g);
  const RetimeGraph basic = lower_to_retime_graph(g, maximal.bounds);
  const auto mp = minperiod_retime(basic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minarea_retime(basic, mp.period));
  }
}
BENCHMARK(BM_MinArea)->Arg(4)->Arg(8)->Arg(16);

void BM_FullMcRetime(benchmark::State& state) {
  const Netlist n = scaled_circuit(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc_retime(n, {}));
  }
  state.SetLabel(std::to_string(n.stats().luts) + " LUTs");
}
BENCHMARK(BM_FullMcRetime)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_FlowMap(benchmark::State& state) {
  CircuitProfile profile;
  profile.name = "map";
  profile.seed = 9;
  profile.pipelines = {{static_cast<std::size_t>(state.range(0)),
                        static_cast<std::size_t>(state.range(0)), 2}};
  const Netlist rtl =
      decompose_to_binary(sweep(generate_circuit(profile), nullptr));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowmap_map(rtl, {}));
  }
}
BENCHMARK(BM_FlowMap)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

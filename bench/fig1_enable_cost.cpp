// Fig. 1 — the cost of retiming registers with load enables.
//
// Parametric version of the paper's motivating figure: a layer of W
// enabled registers feeds a balanced AND tree. Retiming wants to move the
// layer forward across the tree (reducing W registers toward 1).
//
//  - mc-retiming moves the registers *with* their EN input: no extra logic
//    (Fig. 1b), register count shrinks with tree depth.
//  - the decomposed flow (Fig. 1c) turns each register into FF + feedback
//    mux; a forward move then costs an extra register and mux per fanout
//    split (Fig. 1d) - so retiming either pays area or cannot improve.
//
// The bench sweeps W and reports FF/LUT for both flows after
// retime(minarea@minperiod) + remap.
#include <cstdio>

#include "flow_common.h"
#include "transform/decompose_controls.h"
#include "transform/sweep.h"

namespace {

mcrt::Netlist enabled_tree(std::size_t width) {
  using namespace mcrt;
  Netlist n;
  const NetId clk = n.add_input("clk");
  const NetId en = n.add_input("en");
  std::vector<NetId> layer;
  for (std::size_t i = 0; i < width; ++i) {
    const NetId in = n.add_input("in" + std::to_string(i));
    Register ff;
    ff.d = in;
    ff.clk = clk;
    ff.en = en;
    layer.push_back(n.add_register(std::move(ff)));
  }
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const NetId g = n.add_lut(TruthTable::and_n(2), {layer[i], layer[i + 1]});
      n.set_node_delay(NodeId{n.net(g).driver.index}, 10);
      next.push_back(g);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  n.add_output("out", layer[0]);
  return n;
}

}  // namespace

int main() {
  using namespace mcrt;
  using namespace mcrt::bench;

  std::printf("Fig. 1: cost of moving load-enable registers forward\n");
  std::printf("(W enabled registers feeding an AND tree; after retime+remap)\n\n");
  std::printf("%5s | %21s | %21s\n", "", "mc-retiming (Fig.1b)",
              "EN decomposed (Fig.1d)");
  std::printf("%5s | %6s %6s %7s | %6s %6s %7s\n", "W", "#FF", "#LUT", "Delay",
              "#FF", "#LUT", "Delay");
  std::printf("------+-----------------------+----------------------\n");
  for (const std::size_t width : {2, 4, 8, 16, 32}) {
    const Netlist original = enabled_tree(width);

    // mc flow.
    const McRetimeResult mc = mc_retime(original, {});
    // Decomposed flow: EN -> mux first, then the same retiming engine.
    const Netlist decomposed =
        sweep(decompose_load_enables(original), nullptr);
    const McRetimeResult dec = mc_retime(decomposed, {});
    if (!mc.success || !dec.success) {
      std::printf("%5zu | retiming failed: %s%s\n", width, mc.error.c_str(),
                  dec.error.c_str());
      continue;
    }
    const auto mc_stats = mc.netlist.stats();
    const auto dec_stats = dec.netlist.stats();
    std::printf("%5zu | %6zu %6zu %7lld | %6zu %6zu %7lld\n", width,
                mc_stats.registers, mc_stats.luts,
                static_cast<long long>(compute_period(mc.netlist)),
                dec_stats.registers, dec_stats.luts,
                static_cast<long long>(compute_period(dec.netlist)));
  }
  std::printf(
      "\nexpected shape: the mc flow compresses W registers toward 1 with no\n"
      "LUT growth; the decomposed flow keeps its registers and mux LUTs.\n");
  return 0;
}

// Ablation: how register-class diversity constrains retiming.
//
// Class compatibility bites where differently-controlled registers
// *reconverge*: a forward move across a shared gate needs the whole fanin
// layer to be one class. The circuit: B parallel branches, each with a
// small gate and a stack of two enabled registers, reconverging into an
// unregistered reduction tree plus a deep tail cascade. Meeting timing
// requires pushing the branch registers forward into the shared logic -
// which is only a valid mc-step if the converging registers share a class.
//
// Branch b uses enable input (b mod K): K = 1 reproduces the single-class
// best case; larger K blocks the convergence gates layer by layer and the
// achievable period degrades toward the unretimed one. This is the paper's
// central trade-off isolated: the registers keep their enable semantics at
// zero area cost, in exchange for movement freedom.
#include <cstdio>
#include <vector>

#include "base/strings.h"
#include "mcretime/mc_retime.h"
#include "netlist/netlist.h"
#include "tech/sta.h"

namespace {

constexpr std::size_t kBranches = 8;
constexpr std::size_t kTailDepth = 8;

mcrt::Netlist build(std::size_t enable_count) {
  using namespace mcrt;
  Netlist n;
  const NetId clk = n.add_input("clk");
  std::vector<NetId> enables;
  for (std::size_t e = 0; e < enable_count; ++e) {
    enables.push_back(n.add_input(str_format("en%zu", e)));
  }
  std::vector<NetId> branch;
  for (std::size_t b = 0; b < kBranches; ++b) {
    const NetId x = n.add_input(str_format("x%zu", b));
    const NetId y = n.add_input(str_format("y%zu", b));
    NetId net = n.add_lut(TruthTable::xor_n(2), {x, y});
    n.set_node_delay(NodeId{n.net(net).driver.index}, 10);
    for (int s = 0; s < 2; ++s) {
      Register ff;
      ff.d = net;
      ff.clk = clk;
      ff.en = enables[b % enable_count];
      net = n.add_register(std::move(ff));
    }
    branch.push_back(net);
  }
  // Reduction tree (reconvergence points) ...
  std::vector<NetId> layer = branch;
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const NetId g = n.add_lut(TruthTable::xor_n(2), {layer[i], layer[i + 1]});
      n.set_node_delay(NodeId{n.net(g).driver.index}, 10);
      next.push_back(g);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  // ... and a deep unregistered tail.
  NetId tail = layer[0];
  for (std::size_t d = 0; d < kTailDepth; ++d) {
    tail = n.add_lut(TruthTable::inverter(), {tail});
    n.set_node_delay(NodeId{n.net(tail).driver.index}, 10);
  }
  n.add_output("out", tail);
  return n;
}

}  // namespace

int main() {
  using namespace mcrt;
  std::printf("Class-count ablation: %zu enabled branches reconverging into\n"
              "a %zu-deep unregistered tail; branch b uses enable (b mod K)\n\n",
              kBranches, kTailDepth);
  std::printf("%8s %8s %12s %10s %10s %8s\n", "K", "#Class", "#Step",
              "period", "Rdelay", "#FF");
  std::printf("--------------------------------------------------------\n");
  for (const std::size_t k : {1, 2, 4, 8}) {
    const Netlist n = build(k);
    const McRetimeResult result = mc_retime(n, {});
    if (!result.success) {
      std::printf("%8zu  FAILED (%s)\n", k, result.error.c_str());
      continue;
    }
    char steps[32];
    std::snprintf(steps, sizeof steps, "%zu/%zu", result.stats.moved_layers,
                  result.stats.possible_steps);
    std::printf("%8zu %8zu %12s %10lld %10.2f %8zu\n", k,
                result.stats.num_classes, steps,
                static_cast<long long>(result.stats.period_after),
                static_cast<double>(result.stats.period_after) /
                    static_cast<double>(result.stats.period_before),
                result.stats.registers_after);
  }
  std::printf(
      "\nexpected shape: K = 1 pushes registers through the reconvergence\n"
      "tree into the tail (short period, fewer registers after merging);\n"
      "as K grows the convergence gates see mixed-class layers, movement\n"
      "stalls at the tree and the period degrades toward unretimed.\n");
  return 0;
}

// Extension bench: the register-count / clock-period trade-off curve.
//
// The paper's "retime" command targets minarea at the *minimum feasible*
// period. The same machinery supports any target period (§2's "minarea
// retiming ... while achieving a given clock period ... is of most
// practical interest"), so a designer can trade slack for registers. This
// bench sweeps the target from the minimum feasible period up to the
// unretimed period for three representative circuits and prints the
// Pareto curve (registers should fall monotonically as the target relaxes).
#include <cstdio>

#include "flow_common.h"

int main() {
  using namespace mcrt;
  using namespace mcrt::bench;

  std::printf("Area/period trade-off (minarea at a swept target period)\n\n");
  for (const CircuitProfile& profile : paper_suite()) {
    if (profile.name != "C1" && profile.name != "C7" &&
        profile.name != "C9") {
      continue;
    }
    const MappedCircuit mapped = prepare_mapped(profile);
    // Minimum feasible period first.
    const McRetimeResult best = mc_retime(mapped.netlist, {});
    if (!best.success) {
      std::printf("%s: FAILED (%s)\n", profile.name.c_str(),
                  best.error.c_str());
      continue;
    }
    std::printf("%s (unretimed: period %lld, %zu FF)\n", profile.name.c_str(),
                static_cast<long long>(mapped.delay), mapped.ff);
    std::printf("  %10s %8s %10s\n", "target", "#FF", "achieved");
    for (std::int64_t target = best.stats.period_after;
         target <= mapped.delay + 10; target += 10) {
      McRetimeOptions options;
      options.target_period = target;
      const McRetimeResult r = mc_retime(mapped.netlist, options);
      if (!r.success) {
        std::printf("  %10lld   FAILED\n", static_cast<long long>(target));
        continue;
      }
      std::printf("  %10lld %8zu %10lld\n", static_cast<long long>(target),
                  r.stats.registers_after,
                  static_cast<long long>(r.stats.period_after));
    }
    std::printf("\n");
  }
  std::printf("expected shape: #FF is non-increasing as the target period\n"
              "relaxes; the tightest point matches Table 2's row.\n");
  return 0;
}

// Shared flow pieces for the table/figure harnesses: the equivalents of the
// paper's synthesis scripts (§6).
//
//  - prepare_mapped(): HDL analyzer -> decompose sync set/clear (XC4000E
//    registers have none) -> optimize (sweep) -> map to 4-LUTs with the
//    FlowMap delay model. This produces the "Table 1" view of a circuit.
//  - retime_and_remap(): insert the "retime" command after mapping
//    (minarea at best delay), then "remap" the combinational part.
#pragma once

#include <cstdio>
#include <string>

#include "base/timer.h"
#include "mcretime/mc_retime.h"
#include "netlist/netlist.h"
#include "sim/equivalence.h"
#include "tech/decompose.h"
#include "tech/flowmap.h"
#include "tech/sta.h"
#include "transform/decompose_controls.h"
#include "transform/sweep.h"
#include "workload/generator.h"

namespace mcrt::bench {

struct MappedCircuit {
  std::string name;
  Netlist netlist;
  std::size_t ff = 0;
  std::size_t lut = 0;
  std::int64_t delay = 0;
  bool has_async = false;
  bool has_en = false;
};

inline MappedCircuit measure(std::string name, Netlist netlist) {
  MappedCircuit out;
  out.name = std::move(name);
  const auto stats = netlist.stats();
  out.ff = stats.registers;
  out.lut = stats.luts;
  out.has_async = stats.with_async > 0;
  out.has_en = stats.with_en > 0;
  out.delay = compute_period(netlist);
  out.netlist = std::move(netlist);
  return out;
}

/// The paper's "minimal area for best delay" preparation script.
inline MappedCircuit prepare_mapped(const CircuitProfile& profile) {
  Netlist rtl = generate_circuit(profile);
  // XC4000E flip-flops have no synchronous set/clear: decompose to logic.
  rtl = decompose_sync_controls(rtl);
  rtl = sweep(rtl, nullptr);
  const FlowMapResult mapped = flowmap_map(decompose_to_binary(rtl), {});
  return measure(profile.name, mapped.mapped);
}

struct RetimedCircuit {
  MappedCircuit circuit;
  McRetimeStats stats;
  bool ok = false;
  bool equivalent = false;
  double seconds = 0.0;
};

/// "retime" (minarea at minimum period) + "remap", with equivalence check.
inline RetimedCircuit retime_and_remap(const MappedCircuit& mapped,
                                       const McRetimeOptions& options = {}) {
  RetimedCircuit out;
  Timer timer;
  const McRetimeResult result = mc_retime(mapped.netlist, options);
  if (!result.success) {
    std::fprintf(stderr, "  %s: mc-retiming failed: %s\n",
                 mapped.name.c_str(), result.error.c_str());
    return out;
  }
  // Remap the combinational part after retiming (registers pass through).
  const FlowMapResult remapped =
      flowmap_map(decompose_to_binary(result.netlist), {});
  out.seconds = timer.seconds();
  out.circuit = measure(mapped.name, remapped.mapped);
  out.stats = result.stats;
  out.ok = true;
  EquivalenceOptions eq_opt;
  eq_opt.runs = 2;
  eq_opt.cycles = 48;
  out.equivalent =
      check_sequential_equivalence(mapped.netlist, out.circuit.netlist, eq_opt)
          .equivalent;
  return out;
}

}  // namespace mcrt::bench

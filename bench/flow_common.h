// Shared flow pieces for the table/figure harnesses: the equivalents of the
// paper's synthesis scripts (§6), built on the pipeline PassManager so the
// benches report the same per-pass wall-clock profile the CLI does.
//
//  - prepare_mapped(): HDL analyzer -> decompose sync set/clear (XC4000E
//    registers have none) -> optimize (sweep) -> map to 4-LUTs with the
//    FlowMap delay model. This produces the "Table 1" view of a circuit.
//  - retime_and_remap(): insert the "retime" command after mapping
//    (minarea at best delay), then "remap" the combinational part.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "base/timer.h"
#include "mcretime/mc_retime.h"
#include "netlist/netlist.h"
#include "pipeline/flow_context.h"
#include "pipeline/flow_script.h"
#include "pipeline/pass_manager.h"
#include "pipeline/passes.h"
#include "sim/equivalence.h"
#include "tech/sta.h"
#include "workload/generator.h"

namespace mcrt::bench {

struct MappedCircuit {
  std::string name;
  Netlist netlist;
  std::size_t ff = 0;
  std::size_t lut = 0;
  std::int64_t delay = 0;
  bool has_async = false;
  bool has_en = false;
  /// Per-pass wall clock of the flow that produced this circuit.
  PhaseProfile pass_profile;
};

inline MappedCircuit measure(std::string name, Netlist netlist) {
  MappedCircuit out;
  out.name = std::move(name);
  const auto stats = netlist.stats();
  out.ff = stats.registers;
  out.lut = stats.luts;
  out.has_async = stats.with_async > 0;
  out.has_en = stats.with_en > 0;
  out.delay = compute_period(netlist);
  out.netlist = std::move(netlist);
  return out;
}

/// Benches time the passes themselves: leave per-pass checking to the test
/// suites so the reported seconds stay comparable with the paper's.
inline PassManagerOptions bench_manager_options() {
  PassManagerOptions options;
  options.check_invariants = false;
  options.check_equivalence = false;
  return options;
}

/// Runs `script` over `rtl` through the standard registry; exits loudly on
/// a script or pass failure (bench scripts are static, so this is a bug).
inline MappedCircuit run_bench_flow(std::string name, Netlist rtl,
                                    const std::string& script) {
  FlowContext context(std::move(rtl));
  PassManager manager(bench_manager_options());
  if (const auto error =
          compile_flow_script(script, PassRegistry::standard(), manager)) {
    std::fprintf(stderr, "%s: bad bench flow script: %s\n", name.c_str(),
                 error->c_str());
    std::abort();
  }
  const FlowResult run = manager.run(context);
  if (!run.success) {
    std::fprintf(stderr, "%s: bench flow failed: %s\n", name.c_str(),
                 run.error.c_str());
    std::abort();
  }
  MappedCircuit out = measure(std::move(name), context.take_netlist());
  out.pass_profile = run.profile;
  return out;
}

/// The paper's "minimal area for best delay" preparation script.
inline MappedCircuit prepare_mapped(const CircuitProfile& profile) {
  // XC4000E flip-flops have no synchronous set/clear: decompose to logic.
  return run_bench_flow(profile.name, generate_circuit(profile),
                        "decompose-sync; sweep; map");
}

struct RetimedCircuit {
  MappedCircuit circuit;
  McRetimeStats stats;
  bool ok = false;
  bool equivalent = false;
  double seconds = 0.0;
};

/// "retime" (minarea at minimum period) + "remap", with equivalence check.
inline RetimedCircuit retime_and_remap(const MappedCircuit& mapped,
                                       const McRetimeOptions& options = {}) {
  RetimedCircuit out;
  FlowContext context(mapped.netlist);
  PassManager manager(bench_manager_options());
  manager.add(std::make_unique<RetimePass>(options));
  // Remap the combinational part after retiming (registers pass through).
  manager.add(std::make_unique<MapPass>());
  const FlowResult run = manager.run(context);
  if (!run.success) {
    std::fprintf(stderr, "  %s: %s\n", mapped.name.c_str(),
                 run.error.c_str());
    return out;
  }
  out.seconds = run.profile.total();
  out.stats = *context.retime_stats;
  out.circuit = measure(mapped.name, context.take_netlist());
  out.circuit.pass_profile = run.profile;
  out.ok = true;
  EquivalenceOptions eq_opt;
  eq_opt.runs = 2;
  eq_opt.cycles = 48;
  out.equivalent =
      check_sequential_equivalence(mapped.netlist, out.circuit.netlist, eq_opt)
          .equivalent;
  return out;
}

}  // namespace mcrt::bench

// Shared flow pieces for the table/figure harnesses: the equivalents of the
// paper's synthesis scripts (§6), built on the pipeline PassManager so the
// benches report the same per-pass wall-clock profile the CLI does.
//
//  - prepare_mapped(): HDL analyzer -> decompose sync set/clear (XC4000E
//    registers have none) -> optimize (sweep) -> map to 4-LUTs with the
//    FlowMap delay model. This produces the "Table 1" view of a circuit.
//  - retime_and_remap(): insert the "retime" command after mapping
//    (minarea at best delay), then "remap" the combinational part.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/thread_pool.h"
#include "base/timer.h"
#include "mcretime/mc_retime.h"
#include "netlist/netlist.h"
#include "pipeline/bulk_runner.h"
#include "pipeline/flow_context.h"
#include "pipeline/flow_script.h"
#include "pipeline/pass_manager.h"
#include "pipeline/passes.h"
#include "sim/equivalence.h"
#include "tech/sta.h"
#include "workload/generator.h"

namespace mcrt::bench {

struct MappedCircuit {
  std::string name;
  Netlist netlist;
  std::size_t ff = 0;
  std::size_t lut = 0;
  std::int64_t delay = 0;
  bool has_async = false;
  bool has_en = false;
  /// Per-pass wall clock of the flow that produced this circuit.
  PhaseProfile pass_profile;
};

inline MappedCircuit measure(std::string name, Netlist netlist) {
  MappedCircuit out;
  out.name = std::move(name);
  const auto stats = netlist.stats();
  out.ff = stats.registers;
  out.lut = stats.luts;
  out.has_async = stats.with_async > 0;
  out.has_en = stats.with_en > 0;
  out.delay = compute_period(netlist);
  out.netlist = std::move(netlist);
  return out;
}

/// Benches time the passes themselves: leave per-pass checking to the test
/// suites so the reported seconds stay comparable with the paper's.
inline PassManagerOptions bench_manager_options() {
  PassManagerOptions options;
  options.check_invariants = false;
  options.check_equivalence = false;
  return options;
}

/// Runs `script` over `rtl` through the standard registry; exits loudly on
/// a script or pass failure (bench scripts are static, so this is a bug).
inline MappedCircuit run_bench_flow(std::string name, Netlist rtl,
                                    const std::string& script) {
  FlowContext context(std::move(rtl));
  PassManager manager(bench_manager_options());
  if (const auto error =
          compile_flow_script(script, PassRegistry::standard(), manager)) {
    std::fprintf(stderr, "%s: bad bench flow script: %s\n", name.c_str(),
                 error->c_str());
    std::abort();
  }
  const FlowResult run = manager.run(context);
  if (!run.success) {
    std::fprintf(stderr, "%s: bench flow failed: %s\n", name.c_str(),
                 run.error.c_str());
    std::abort();
  }
  MappedCircuit out = measure(std::move(name), context.take_netlist());
  out.pass_profile = run.profile;
  return out;
}

/// The paper's "minimal area for best delay" preparation script.
inline MappedCircuit prepare_mapped(const CircuitProfile& profile) {
  // XC4000E flip-flops have no synchronous set/clear: decompose to logic.
  return run_bench_flow(profile.name, generate_circuit(profile),
                        "decompose-sync; sweep; map");
}

/// Runs `script` over every profile's generated circuit through the bulk
/// engine (one worker per hardware thread by default); generation happens
/// on the workers too. Aborts loudly on any failure, like run_bench_flow.
inline std::vector<MappedCircuit> run_suite_flow(
    const std::vector<CircuitProfile>& profiles, const std::string& script,
    std::size_t jobs = 0) {
  BulkOptions options;
  options.jobs = jobs;
  options.manager = bench_manager_options();
  options.keep_netlists = true;
  std::vector<BulkJob> batch;
  batch.reserve(profiles.size());
  for (const CircuitProfile& profile : profiles) {
    BulkJob job;
    job.name = profile.name;
    job.load = [profile](DiagnosticsSink&) -> std::optional<Netlist> {
      return generate_circuit(profile);
    };
    batch.push_back(std::move(job));
  }
  BulkReport report = BulkRunner(script, options).run(batch);
  std::vector<MappedCircuit> out;
  out.reserve(report.results.size());
  for (BulkJobResult& result : report.results) {
    if (!result.success || !result.netlist) {
      std::fprintf(stderr, "%s: bench suite flow failed: %s\n",
                   result.name.c_str(), result.error.c_str());
      std::abort();
    }
    MappedCircuit circuit =
        measure(result.name, std::move(*result.netlist));
    circuit.pass_profile = result.profile;
    out.push_back(std::move(circuit));
  }
  return out;
}

/// Bulk prepare_mapped() over a whole suite.
inline std::vector<MappedCircuit> prepare_mapped_suite(
    const std::vector<CircuitProfile>& profiles, std::size_t jobs = 0) {
  return run_suite_flow(profiles, "decompose-sync; sweep; map", jobs);
}

struct RetimedCircuit {
  MappedCircuit circuit;
  McRetimeStats stats;
  bool ok = false;
  bool equivalent = false;
  double seconds = 0.0;
};

/// "retime" (minarea at minimum period) + "remap", with equivalence check.
inline RetimedCircuit retime_and_remap(const MappedCircuit& mapped,
                                       const McRetimeOptions& options = {}) {
  RetimedCircuit out;
  FlowContext context(mapped.netlist);
  PassManager manager(bench_manager_options());
  manager.add(std::make_unique<RetimePass>(options));
  // Remap the combinational part after retiming (registers pass through).
  manager.add(std::make_unique<MapPass>());
  const FlowResult run = manager.run(context);
  if (!run.success) {
    std::fprintf(stderr, "  %s: %s\n", mapped.name.c_str(),
                 run.error.c_str());
    return out;
  }
  out.seconds = run.profile.total();
  out.stats = *context.retime_stats;
  out.circuit = measure(mapped.name, context.take_netlist());
  out.circuit.pass_profile = run.profile;
  out.ok = true;
  EquivalenceOptions eq_opt;
  eq_opt.runs = 2;
  eq_opt.cycles = 48;
  out.equivalent =
      check_sequential_equivalence(mapped.netlist, out.circuit.netlist, eq_opt)
          .equivalent;
  return out;
}

/// Bulk retime_and_remap() over a suite: the retime+remap pipelines run on
/// the bulk engine's work-stealing pool, then the per-circuit equivalence
/// checks fan out over the same pool. Results line up with `mapped` by
/// index; per-circuit failures are reported in RetimedCircuit::ok exactly
/// like the serial helper.
inline std::vector<RetimedCircuit> retime_and_remap_suite(
    const std::vector<MappedCircuit>& mapped,
    const McRetimeOptions& options = {}, std::size_t jobs = 0) {
  BulkOptions bulk_options;
  bulk_options.jobs = jobs;
  bulk_options.manager = bench_manager_options();
  bulk_options.keep_netlists = true;
  std::vector<BulkJob> batch;
  batch.reserve(mapped.size());
  for (const MappedCircuit& circuit : mapped) {
    batch.push_back(make_netlist_job(circuit.name, circuit.netlist));
  }
  BulkRunner runner(
      [options](PassManager& manager, std::string*) {
        manager.add(std::make_unique<RetimePass>(options));
        // Remap the combinational part after retiming (registers pass
        // through).
        manager.add(std::make_unique<MapPass>());
        return true;
      },
      bulk_options);

  ThreadPool pool(jobs);
  BulkReport report = runner.run(batch, pool);

  std::vector<RetimedCircuit> out(mapped.size());
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    BulkJobResult& result = report.results[i];
    RetimedCircuit& retimed = out[i];
    retimed.seconds = result.seconds;
    if (!result.success || !result.netlist || !result.retime_stats) {
      std::fprintf(stderr, "  %s: %s\n", result.name.c_str(),
                   result.error.c_str());
      continue;
    }
    retimed.stats = *result.retime_stats;
    retimed.circuit = measure(result.name, std::move(*result.netlist));
    retimed.circuit.pass_profile = result.profile;
    retimed.ok = true;
  }
  {  // Equivalence spot checks are independent: fan out over the pool.
    TaskGroup group(pool);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (!out[i].ok) continue;
      group.run([&mapped, &out, i] {
        EquivalenceOptions eq_opt;
        eq_opt.runs = 2;
        eq_opt.cycles = 48;
        out[i].equivalent =
            check_sequential_equivalence(mapped[i].netlist,
                                         out[i].circuit.netlist, eq_opt)
                .equivalent;
      });
    }
    group.wait();
  }
  return out;
}

}  // namespace mcrt::bench

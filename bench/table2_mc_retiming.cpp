// Table 2 — Retiming Results (the paper's headline experiment).
//
// For each circuit: run the "retime" command (multiple-class minarea
// retiming at the minimum feasible period) on the mapped netlist, then
// "remap" the combinational part, and report
//
//   #Class  - register classes in the mc-graph,
//   #Step   - layers actually moved / possible valid mc-steps,
//   #FF/#LUT/Delay - after retime+remap,
//   Rlut/Rdelay    - ratios against the Table 1 (pre-retiming) values.
//
// Also reproduces the §6 claims: the CPU-time breakdown across basic
// retiming / implementation (relocation + reset states) / mc-graph
// construction, and the fraction of backward justifications answered
// locally (paper: >99%).
#include <cstdio>

#include "flow_common.h"

int main() {
  using namespace mcrt;
  using namespace mcrt::bench;

  std::printf("Table 2: Retiming Results (mc-retiming, minarea @ minperiod)\n\n");
  std::printf("%-6s %6s %11s %7s %7s %8s %6s %7s %4s\n", "Name", "#Class",
              "#Step", "#FF", "#LUT", "Delay", "Rlut", "Rdelay", "eq");
  std::printf(
      "----------------------------------------------------------------\n");

  std::size_t total_ff_before = 0;
  std::size_t total_ff = 0;
  std::size_t total_lut_before = 0;
  std::size_t total_lut = 0;
  std::int64_t total_delay_before = 0;
  std::int64_t total_delay = 0;
  double total_seconds = 0.0;
  PhaseProfile profile_sum;
  std::size_t local_just = 0;
  std::size_t global_just = 0;

  // Both stages run as bulk batches on the work-stealing pool; results
  // stay in suite order so the table rows are stable.
  const std::vector<MappedCircuit> suite = prepare_mapped_suite(paper_suite());
  const std::vector<RetimedCircuit> retimed = retime_and_remap_suite(suite);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const MappedCircuit& before = suite[i];
    const RetimedCircuit& after = retimed[i];
    if (!after.ok) {
      std::printf("%-6s  FAILED\n", before.name.c_str());
      continue;
    }
    const double rlut =
        static_cast<double>(after.circuit.lut) / static_cast<double>(before.lut);
    const double rdelay = static_cast<double>(after.circuit.delay) /
                          static_cast<double>(before.delay);
    char steps[32];
    std::snprintf(steps, sizeof steps, "%zu/%zu", after.stats.moved_layers,
                  after.stats.possible_steps);
    std::printf("%-6s %6zu %11s %7zu %7zu %8lld %6.2f %7.2f %4s\n",
                before.name.c_str(), after.stats.num_classes, steps,
                after.circuit.ff, after.circuit.lut,
                static_cast<long long>(after.circuit.delay), rlut, rdelay,
                after.equivalent ? "ok" : "FAIL");
    total_ff_before += before.ff;
    total_ff += after.circuit.ff;
    total_lut_before += before.lut;
    total_lut += after.circuit.lut;
    total_delay_before += before.delay;
    total_delay += after.circuit.delay;
    total_seconds += after.seconds;
    profile_sum.merge(after.stats.profile);
    local_just += after.stats.relocate.local_justifications;
    global_just += after.stats.relocate.global_justifications;
  }
  std::printf(
      "----------------------------------------------------------------\n");
  std::printf("%-6s %6s %11s %7zu %7zu %8lld %6.2f %7.2f\n", "Total", "", "",
              total_ff, total_lut, static_cast<long long>(total_delay),
              static_cast<double>(total_lut) /
                  static_cast<double>(total_lut_before),
              static_cast<double>(total_delay) /
                  static_cast<double>(total_delay_before));
  std::printf("(register totals: %zu -> %zu, ratio %.2f)\n\n", total_ff_before,
              total_ff,
              static_cast<double>(total_ff) /
                  static_cast<double>(total_ff_before));

  std::printf("Section 6 runtime claims:\n");
  std::printf("  total retime+remap wall clock: %.2f s (paper: <60 s/circuit"
              " on a 333 MHz UltraSPARC)\n", total_seconds);
  std::printf("  CPU breakdown: retime %.0f%%, implement %.0f%%, mc-graph+"
              "classes+bounds %.0f%%  (paper: 90%% / 7%% / 3%%)\n",
              profile_sum.percent("retime"), profile_sum.percent("implement"),
              profile_sum.percent("graph"));
  const std::size_t just_total = local_just + global_just;
  std::printf("  backward justifications: %zu local, %zu global (%.2f%% local;"
              " paper: >99%% local)\n",
              local_just, global_just,
              just_total == 0
                  ? 100.0
                  : 100.0 * static_cast<double>(local_just) /
                        static_cast<double>(just_total));
  return 0;
}

// Fig. 5 / §5.2 — the reset-state computation strategy ablation.
//
// The paper's claims: backward justification is almost always answerable
// locally (>99%), global justification resolves nearly all remaining
// conflicts, and a full recompute of the retiming (bound + re-solve) was
// never needed on their designs. This bench quantifies the same pipeline
// on the synthetic suite:
//
//   local+global (paper flow) : #local, #global, retiming attempts
//   local only   (ablation)   : attempts balloon because every conflict
//                               becomes a retiming bound + recompute
#include <cstdio>

#include "flow_common.h"

int main() {
  using namespace mcrt;
  using namespace mcrt::bench;

  std::printf("Fig. 5 / §5.2: reset-state justification strategies\n\n");
  std::printf("%-6s | %9s %9s %9s | %12s %9s\n", "", "local", "global",
              "attempts", "local-only:", "attempts");
  std::printf("-------+-------------------------------+-----------------\n");
  std::size_t total_local = 0;
  std::size_t total_global = 0;
  std::size_t total_attempts_full = 0;
  std::size_t total_attempts_ablate = 0;
  for (const CircuitProfile& profile : paper_suite()) {
    const MappedCircuit mapped = prepare_mapped(profile);
    McRetimeOptions full;  // defaults: global justification on
    McRetimeOptions local_only;
    local_only.global_justification_budget = 0;
    local_only.max_attempts = 200;
    const McRetimeResult a = mc_retime(mapped.netlist, full);
    const McRetimeResult b = mc_retime(mapped.netlist, local_only);
    if (!a.success) {
      std::printf("%-6s | FAILED (%s)\n", profile.name.c_str(),
                  a.error.c_str());
      continue;
    }
    char ablate[32];
    if (b.success) {
      std::snprintf(ablate, sizeof ablate, "%9zu", b.stats.attempts);
    } else {
      std::snprintf(ablate, sizeof ablate, "%9s", "FAILED");
    }
    std::printf("%-6s | %9zu %9zu %9zu | %12s %9s\n", profile.name.c_str(),
                a.stats.relocate.local_justifications,
                a.stats.relocate.global_justifications, a.stats.attempts, "",
                ablate);
    total_local += a.stats.relocate.local_justifications;
    total_global += a.stats.relocate.global_justifications;
    total_attempts_full += a.stats.attempts;
    if (b.success) total_attempts_ablate += b.stats.attempts;
  }
  std::printf("-------+-------------------------------+-----------------\n");
  std::printf("%-6s | %9zu %9zu %9zu | %12s %9zu\n", "Totals", total_local,
              total_global, total_attempts_full, "", total_attempts_ablate);
  const std::size_t justs = total_local + total_global;
  std::printf(
      "\n%.2f%% of justifications answered locally (paper: >99%%);\n"
      "with global justification the flow needed %zu retiming attempts,\n"
      "without it %zu (paper: never had to recompute).\n",
      justs ? 100.0 * static_cast<double>(total_local) /
                  static_cast<double>(justs)
            : 100.0,
      total_attempts_full, total_attempts_ablate);
  return 0;
}


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcretime/lower.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/lower.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/lower.cpp.o.d"
  "/root/repo/src/mcretime/maximal_retiming.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/maximal_retiming.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/maximal_retiming.cpp.o.d"
  "/root/repo/src/mcretime/mc_retime.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/mc_retime.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/mc_retime.cpp.o.d"
  "/root/repo/src/mcretime/mcgraph.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/mcgraph.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/mcgraph.cpp.o.d"
  "/root/repo/src/mcretime/mcgraph_dot.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/mcgraph_dot.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/mcgraph_dot.cpp.o.d"
  "/root/repo/src/mcretime/rebuild.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/rebuild.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/rebuild.cpp.o.d"
  "/root/repo/src/mcretime/register_class.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/register_class.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/register_class.cpp.o.d"
  "/root/repo/src/mcretime/relocate.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/relocate.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/relocate.cpp.o.d"
  "/root/repo/src/mcretime/reset_state.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/reset_state.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/reset_state.cpp.o.d"
  "/root/repo/src/mcretime/sharing.cpp" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/sharing.cpp.o" "gcc" "src/mcretime/CMakeFiles/mcrt_mcretime.dir/sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/retime/CMakeFiles/mcrt_retime.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mcrt_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/mcrt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mcrt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

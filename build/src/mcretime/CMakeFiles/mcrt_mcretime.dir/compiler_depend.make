# Empty compiler generated dependencies file for mcrt_mcretime.
# This may be replaced when dependencies are built.

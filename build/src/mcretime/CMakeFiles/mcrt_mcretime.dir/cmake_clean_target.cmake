file(REMOVE_RECURSE
  "libmcrt_mcretime.a"
)

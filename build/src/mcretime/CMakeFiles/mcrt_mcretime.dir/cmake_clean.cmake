file(REMOVE_RECURSE
  "CMakeFiles/mcrt_mcretime.dir/lower.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/lower.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/maximal_retiming.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/maximal_retiming.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/mc_retime.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/mc_retime.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/mcgraph.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/mcgraph.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/mcgraph_dot.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/mcgraph_dot.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/rebuild.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/rebuild.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/register_class.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/register_class.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/relocate.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/relocate.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/reset_state.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/reset_state.cpp.o.d"
  "CMakeFiles/mcrt_mcretime.dir/sharing.cpp.o"
  "CMakeFiles/mcrt_mcretime.dir/sharing.cpp.o.d"
  "libmcrt_mcretime.a"
  "libmcrt_mcretime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_mcretime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/formal_equivalence.cpp" "src/verify/CMakeFiles/mcrt_verify.dir/formal_equivalence.cpp.o" "gcc" "src/verify/CMakeFiles/mcrt_verify.dir/formal_equivalence.cpp.o.d"
  "/root/repo/src/verify/ternary_bmc.cpp" "src/verify/CMakeFiles/mcrt_verify.dir/ternary_bmc.cpp.o" "gcc" "src/verify/CMakeFiles/mcrt_verify.dir/ternary_bmc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mcrt_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mcrt_verify.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmcrt_verify.a"
)

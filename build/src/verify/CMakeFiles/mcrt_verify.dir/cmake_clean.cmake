file(REMOVE_RECURSE
  "CMakeFiles/mcrt_verify.dir/formal_equivalence.cpp.o"
  "CMakeFiles/mcrt_verify.dir/formal_equivalence.cpp.o.d"
  "CMakeFiles/mcrt_verify.dir/ternary_bmc.cpp.o"
  "CMakeFiles/mcrt_verify.dir/ternary_bmc.cpp.o.d"
  "libmcrt_verify.a"
  "libmcrt_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("graph")
subdirs("flow")
subdirs("bdd")
subdirs("netlist")
subdirs("blif")
subdirs("sim")
subdirs("tech")
subdirs("transform")
subdirs("workload")
subdirs("retime")
subdirs("mcretime")
subdirs("verify")

# Empty compiler generated dependencies file for mcrt_blif.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blif/blif_reader.cpp" "src/blif/CMakeFiles/mcrt_blif.dir/blif_reader.cpp.o" "gcc" "src/blif/CMakeFiles/mcrt_blif.dir/blif_reader.cpp.o.d"
  "/root/repo/src/blif/blif_writer.cpp" "src/blif/CMakeFiles/mcrt_blif.dir/blif_writer.cpp.o" "gcc" "src/blif/CMakeFiles/mcrt_blif.dir/blif_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_blif.dir/blif_reader.cpp.o"
  "CMakeFiles/mcrt_blif.dir/blif_reader.cpp.o.d"
  "CMakeFiles/mcrt_blif.dir/blif_writer.cpp.o"
  "CMakeFiles/mcrt_blif.dir/blif_writer.cpp.o.d"
  "libmcrt_blif.a"
  "libmcrt_blif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_blif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

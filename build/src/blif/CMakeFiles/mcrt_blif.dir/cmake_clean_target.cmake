file(REMOVE_RECURSE
  "libmcrt_blif.a"
)

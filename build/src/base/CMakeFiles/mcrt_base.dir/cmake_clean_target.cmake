file(REMOVE_RECURSE
  "libmcrt_base.a"
)

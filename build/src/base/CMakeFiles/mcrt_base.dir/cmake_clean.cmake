file(REMOVE_RECURSE
  "CMakeFiles/mcrt_base.dir/log.cpp.o"
  "CMakeFiles/mcrt_base.dir/log.cpp.o.d"
  "CMakeFiles/mcrt_base.dir/rng.cpp.o"
  "CMakeFiles/mcrt_base.dir/rng.cpp.o.d"
  "CMakeFiles/mcrt_base.dir/strings.cpp.o"
  "CMakeFiles/mcrt_base.dir/strings.cpp.o.d"
  "CMakeFiles/mcrt_base.dir/timer.cpp.o"
  "CMakeFiles/mcrt_base.dir/timer.cpp.o.d"
  "libmcrt_base.a"
  "libmcrt_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mcrt_base.
# This may be replaced when dependencies are built.

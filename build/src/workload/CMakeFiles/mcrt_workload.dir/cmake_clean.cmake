file(REMOVE_RECURSE
  "CMakeFiles/mcrt_workload.dir/generator.cpp.o"
  "CMakeFiles/mcrt_workload.dir/generator.cpp.o.d"
  "CMakeFiles/mcrt_workload.dir/random_circuit.cpp.o"
  "CMakeFiles/mcrt_workload.dir/random_circuit.cpp.o.d"
  "libmcrt_workload.a"
  "libmcrt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mcrt_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmcrt_workload.a"
)

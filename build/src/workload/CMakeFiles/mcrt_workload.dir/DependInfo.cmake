
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/mcrt_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/mcrt_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/random_circuit.cpp" "src/workload/CMakeFiles/mcrt_workload.dir/random_circuit.cpp.o" "gcc" "src/workload/CMakeFiles/mcrt_workload.dir/random_circuit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_graph.dir/difference_constraints.cpp.o"
  "CMakeFiles/mcrt_graph.dir/difference_constraints.cpp.o.d"
  "CMakeFiles/mcrt_graph.dir/digraph.cpp.o"
  "CMakeFiles/mcrt_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/mcrt_graph.dir/scc.cpp.o"
  "CMakeFiles/mcrt_graph.dir/scc.cpp.o.d"
  "CMakeFiles/mcrt_graph.dir/topo.cpp.o"
  "CMakeFiles/mcrt_graph.dir/topo.cpp.o.d"
  "libmcrt_graph.a"
  "libmcrt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

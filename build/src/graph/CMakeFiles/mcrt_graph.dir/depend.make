# Empty dependencies file for mcrt_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmcrt_graph.a"
)

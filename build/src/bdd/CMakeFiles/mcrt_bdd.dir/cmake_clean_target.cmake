file(REMOVE_RECURSE
  "libmcrt_bdd.a"
)

# Empty dependencies file for mcrt_bdd.
# This may be replaced when dependencies are built.

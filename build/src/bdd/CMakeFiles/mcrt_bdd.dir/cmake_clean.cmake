file(REMOVE_RECURSE
  "CMakeFiles/mcrt_bdd.dir/bdd.cpp.o"
  "CMakeFiles/mcrt_bdd.dir/bdd.cpp.o.d"
  "libmcrt_bdd.a"
  "libmcrt_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

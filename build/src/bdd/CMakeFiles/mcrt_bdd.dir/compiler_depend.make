# Empty compiler generated dependencies file for mcrt_bdd.
# This may be replaced when dependencies are built.

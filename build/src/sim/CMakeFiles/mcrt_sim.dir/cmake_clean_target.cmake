file(REMOVE_RECURSE
  "libmcrt_sim.a"
)

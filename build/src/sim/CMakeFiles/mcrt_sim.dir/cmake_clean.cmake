file(REMOVE_RECURSE
  "CMakeFiles/mcrt_sim.dir/equivalence.cpp.o"
  "CMakeFiles/mcrt_sim.dir/equivalence.cpp.o.d"
  "CMakeFiles/mcrt_sim.dir/parallel_simulator.cpp.o"
  "CMakeFiles/mcrt_sim.dir/parallel_simulator.cpp.o.d"
  "CMakeFiles/mcrt_sim.dir/simulator.cpp.o"
  "CMakeFiles/mcrt_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mcrt_sim.dir/vcd.cpp.o"
  "CMakeFiles/mcrt_sim.dir/vcd.cpp.o.d"
  "libmcrt_sim.a"
  "libmcrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mcrt_sim.
# This may be replaced when dependencies are built.

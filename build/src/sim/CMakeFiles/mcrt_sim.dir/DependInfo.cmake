
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/equivalence.cpp" "src/sim/CMakeFiles/mcrt_sim.dir/equivalence.cpp.o" "gcc" "src/sim/CMakeFiles/mcrt_sim.dir/equivalence.cpp.o.d"
  "/root/repo/src/sim/parallel_simulator.cpp" "src/sim/CMakeFiles/mcrt_sim.dir/parallel_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mcrt_sim.dir/parallel_simulator.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mcrt_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mcrt_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/mcrt_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/mcrt_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

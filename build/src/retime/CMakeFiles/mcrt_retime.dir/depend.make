# Empty dependencies file for mcrt_retime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_retime.dir/feas.cpp.o"
  "CMakeFiles/mcrt_retime.dir/feas.cpp.o.d"
  "CMakeFiles/mcrt_retime.dir/minarea.cpp.o"
  "CMakeFiles/mcrt_retime.dir/minarea.cpp.o.d"
  "CMakeFiles/mcrt_retime.dir/minperiod.cpp.o"
  "CMakeFiles/mcrt_retime.dir/minperiod.cpp.o.d"
  "CMakeFiles/mcrt_retime.dir/period_constraints.cpp.o"
  "CMakeFiles/mcrt_retime.dir/period_constraints.cpp.o.d"
  "CMakeFiles/mcrt_retime.dir/retime_graph.cpp.o"
  "CMakeFiles/mcrt_retime.dir/retime_graph.cpp.o.d"
  "libmcrt_retime.a"
  "libmcrt_retime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

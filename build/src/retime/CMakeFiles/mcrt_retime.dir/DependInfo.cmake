
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retime/feas.cpp" "src/retime/CMakeFiles/mcrt_retime.dir/feas.cpp.o" "gcc" "src/retime/CMakeFiles/mcrt_retime.dir/feas.cpp.o.d"
  "/root/repo/src/retime/minarea.cpp" "src/retime/CMakeFiles/mcrt_retime.dir/minarea.cpp.o" "gcc" "src/retime/CMakeFiles/mcrt_retime.dir/minarea.cpp.o.d"
  "/root/repo/src/retime/minperiod.cpp" "src/retime/CMakeFiles/mcrt_retime.dir/minperiod.cpp.o" "gcc" "src/retime/CMakeFiles/mcrt_retime.dir/minperiod.cpp.o.d"
  "/root/repo/src/retime/period_constraints.cpp" "src/retime/CMakeFiles/mcrt_retime.dir/period_constraints.cpp.o" "gcc" "src/retime/CMakeFiles/mcrt_retime.dir/period_constraints.cpp.o.d"
  "/root/repo/src/retime/retime_graph.cpp" "src/retime/CMakeFiles/mcrt_retime.dir/retime_graph.cpp.o" "gcc" "src/retime/CMakeFiles/mcrt_retime.dir/retime_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mcrt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmcrt_retime.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/dot_export.cpp" "src/netlist/CMakeFiles/mcrt_netlist.dir/dot_export.cpp.o" "gcc" "src/netlist/CMakeFiles/mcrt_netlist.dir/dot_export.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/mcrt_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/mcrt_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/truth_table.cpp" "src/netlist/CMakeFiles/mcrt_netlist.dir/truth_table.cpp.o" "gcc" "src/netlist/CMakeFiles/mcrt_netlist.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_netlist.dir/dot_export.cpp.o"
  "CMakeFiles/mcrt_netlist.dir/dot_export.cpp.o.d"
  "CMakeFiles/mcrt_netlist.dir/netlist.cpp.o"
  "CMakeFiles/mcrt_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/mcrt_netlist.dir/truth_table.cpp.o"
  "CMakeFiles/mcrt_netlist.dir/truth_table.cpp.o.d"
  "libmcrt_netlist.a"
  "libmcrt_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

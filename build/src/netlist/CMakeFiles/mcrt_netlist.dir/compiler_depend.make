# Empty compiler generated dependencies file for mcrt_netlist.
# This may be replaced when dependencies are built.

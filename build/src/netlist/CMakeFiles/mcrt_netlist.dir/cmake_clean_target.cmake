file(REMOVE_RECURSE
  "libmcrt_netlist.a"
)

# Empty dependencies file for mcrt_tech.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmcrt_tech.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/decompose.cpp" "src/tech/CMakeFiles/mcrt_tech.dir/decompose.cpp.o" "gcc" "src/tech/CMakeFiles/mcrt_tech.dir/decompose.cpp.o.d"
  "/root/repo/src/tech/flowmap.cpp" "src/tech/CMakeFiles/mcrt_tech.dir/flowmap.cpp.o" "gcc" "src/tech/CMakeFiles/mcrt_tech.dir/flowmap.cpp.o.d"
  "/root/repo/src/tech/sta.cpp" "src/tech/CMakeFiles/mcrt_tech.dir/sta.cpp.o" "gcc" "src/tech/CMakeFiles/mcrt_tech.dir/sta.cpp.o.d"
  "/root/repo/src/tech/timing_report.cpp" "src/tech/CMakeFiles/mcrt_tech.dir/timing_report.cpp.o" "gcc" "src/tech/CMakeFiles/mcrt_tech.dir/timing_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mcrt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_tech.dir/decompose.cpp.o"
  "CMakeFiles/mcrt_tech.dir/decompose.cpp.o.d"
  "CMakeFiles/mcrt_tech.dir/flowmap.cpp.o"
  "CMakeFiles/mcrt_tech.dir/flowmap.cpp.o.d"
  "CMakeFiles/mcrt_tech.dir/sta.cpp.o"
  "CMakeFiles/mcrt_tech.dir/sta.cpp.o.d"
  "CMakeFiles/mcrt_tech.dir/timing_report.cpp.o"
  "CMakeFiles/mcrt_tech.dir/timing_report.cpp.o.d"
  "libmcrt_tech.a"
  "libmcrt_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

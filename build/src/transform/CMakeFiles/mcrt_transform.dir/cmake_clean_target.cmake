file(REMOVE_RECURSE
  "libmcrt_transform.a"
)

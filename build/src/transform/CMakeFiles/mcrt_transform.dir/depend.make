# Empty dependencies file for mcrt_transform.
# This may be replaced when dependencies are built.

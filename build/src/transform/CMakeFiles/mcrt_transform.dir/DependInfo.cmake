
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/decompose_controls.cpp" "src/transform/CMakeFiles/mcrt_transform.dir/decompose_controls.cpp.o" "gcc" "src/transform/CMakeFiles/mcrt_transform.dir/decompose_controls.cpp.o.d"
  "/root/repo/src/transform/register_sweep.cpp" "src/transform/CMakeFiles/mcrt_transform.dir/register_sweep.cpp.o" "gcc" "src/transform/CMakeFiles/mcrt_transform.dir/register_sweep.cpp.o.d"
  "/root/repo/src/transform/rewrite.cpp" "src/transform/CMakeFiles/mcrt_transform.dir/rewrite.cpp.o" "gcc" "src/transform/CMakeFiles/mcrt_transform.dir/rewrite.cpp.o.d"
  "/root/repo/src/transform/strash.cpp" "src/transform/CMakeFiles/mcrt_transform.dir/strash.cpp.o" "gcc" "src/transform/CMakeFiles/mcrt_transform.dir/strash.cpp.o.d"
  "/root/repo/src/transform/sweep.cpp" "src/transform/CMakeFiles/mcrt_transform.dir/sweep.cpp.o" "gcc" "src/transform/CMakeFiles/mcrt_transform.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_transform.dir/decompose_controls.cpp.o"
  "CMakeFiles/mcrt_transform.dir/decompose_controls.cpp.o.d"
  "CMakeFiles/mcrt_transform.dir/register_sweep.cpp.o"
  "CMakeFiles/mcrt_transform.dir/register_sweep.cpp.o.d"
  "CMakeFiles/mcrt_transform.dir/rewrite.cpp.o"
  "CMakeFiles/mcrt_transform.dir/rewrite.cpp.o.d"
  "CMakeFiles/mcrt_transform.dir/strash.cpp.o"
  "CMakeFiles/mcrt_transform.dir/strash.cpp.o.d"
  "CMakeFiles/mcrt_transform.dir/sweep.cpp.o"
  "CMakeFiles/mcrt_transform.dir/sweep.cpp.o.d"
  "libmcrt_transform.a"
  "libmcrt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

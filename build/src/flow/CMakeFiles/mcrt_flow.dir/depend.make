# Empty dependencies file for mcrt_flow.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/maxflow.cpp" "src/flow/CMakeFiles/mcrt_flow.dir/maxflow.cpp.o" "gcc" "src/flow/CMakeFiles/mcrt_flow.dir/maxflow.cpp.o.d"
  "/root/repo/src/flow/mincost_flow.cpp" "src/flow/CMakeFiles/mcrt_flow.dir/mincost_flow.cpp.o" "gcc" "src/flow/CMakeFiles/mcrt_flow.dir/mincost_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmcrt_flow.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_flow.dir/maxflow.cpp.o"
  "CMakeFiles/mcrt_flow.dir/maxflow.cpp.o.d"
  "CMakeFiles/mcrt_flow.dir/mincost_flow.cpp.o"
  "CMakeFiles/mcrt_flow.dir/mincost_flow.cpp.o.d"
  "libmcrt_flow.a"
  "libmcrt_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

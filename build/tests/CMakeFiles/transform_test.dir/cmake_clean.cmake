file(REMOVE_RECURSE
  "CMakeFiles/transform_test.dir/transform/decompose_controls_test.cpp.o"
  "CMakeFiles/transform_test.dir/transform/decompose_controls_test.cpp.o.d"
  "CMakeFiles/transform_test.dir/transform/register_sweep_test.cpp.o"
  "CMakeFiles/transform_test.dir/transform/register_sweep_test.cpp.o.d"
  "CMakeFiles/transform_test.dir/transform/strash_test.cpp.o"
  "CMakeFiles/transform_test.dir/transform/strash_test.cpp.o.d"
  "CMakeFiles/transform_test.dir/transform/sweep_test.cpp.o"
  "CMakeFiles/transform_test.dir/transform/sweep_test.cpp.o.d"
  "transform_test"
  "transform_test.pdb"
  "transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tech_test.dir/tech/decompose_test.cpp.o"
  "CMakeFiles/tech_test.dir/tech/decompose_test.cpp.o.d"
  "CMakeFiles/tech_test.dir/tech/flowmap_test.cpp.o"
  "CMakeFiles/tech_test.dir/tech/flowmap_test.cpp.o.d"
  "CMakeFiles/tech_test.dir/tech/sta_test.cpp.o"
  "CMakeFiles/tech_test.dir/tech/sta_test.cpp.o.d"
  "CMakeFiles/tech_test.dir/tech/timing_report_test.cpp.o"
  "CMakeFiles/tech_test.dir/tech/timing_report_test.cpp.o.d"
  "tech_test"
  "tech_test.pdb"
  "tech_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

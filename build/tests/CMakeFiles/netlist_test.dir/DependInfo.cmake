
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netlist/dot_export_test.cpp" "tests/CMakeFiles/netlist_test.dir/netlist/dot_export_test.cpp.o" "gcc" "tests/CMakeFiles/netlist_test.dir/netlist/dot_export_test.cpp.o.d"
  "/root/repo/tests/netlist/netlist_test.cpp" "tests/CMakeFiles/netlist_test.dir/netlist/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/netlist_test.dir/netlist/netlist_test.cpp.o.d"
  "/root/repo/tests/netlist/truth_table_test.cpp" "tests/CMakeFiles/netlist_test.dir/netlist/truth_table_test.cpp.o" "gcc" "tests/CMakeFiles/netlist_test.dir/netlist/truth_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mcrt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mcrt_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/blif/CMakeFiles/mcrt_blif.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcrt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/mcrt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/mcrt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcrt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/retime/CMakeFiles/mcrt_retime.dir/DependInfo.cmake"
  "/root/repo/build/src/mcretime/CMakeFiles/mcrt_mcretime.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/mcrt_verify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/retime_test.dir/retime/bounded_optimality_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime/bounded_optimality_test.cpp.o.d"
  "CMakeFiles/retime_test.dir/retime/feas_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime/feas_test.cpp.o.d"
  "CMakeFiles/retime_test.dir/retime/minarea_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime/minarea_test.cpp.o.d"
  "CMakeFiles/retime_test.dir/retime/minperiod_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime/minperiod_test.cpp.o.d"
  "CMakeFiles/retime_test.dir/retime/pruning_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime/pruning_test.cpp.o.d"
  "CMakeFiles/retime_test.dir/retime/retime_graph_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime/retime_graph_test.cpp.o.d"
  "CMakeFiles/retime_test.dir/retime/wd_labels_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime/wd_labels_test.cpp.o.d"
  "retime_test"
  "retime_test.pdb"
  "retime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

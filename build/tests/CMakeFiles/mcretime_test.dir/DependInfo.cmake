
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mcretime/determinism_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/determinism_test.cpp.o.d"
  "/root/repo/tests/mcretime/edge_cases_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/edge_cases_test.cpp.o.d"
  "/root/repo/tests/mcretime/lower_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/lower_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/lower_test.cpp.o.d"
  "/root/repo/tests/mcretime/maximal_retiming_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/maximal_retiming_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/maximal_retiming_test.cpp.o.d"
  "/root/repo/tests/mcretime/mc_retime_property_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/mc_retime_property_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/mc_retime_property_test.cpp.o.d"
  "/root/repo/tests/mcretime/mc_retime_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/mc_retime_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/mc_retime_test.cpp.o.d"
  "/root/repo/tests/mcretime/mcgraph_dot_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/mcgraph_dot_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/mcgraph_dot_test.cpp.o.d"
  "/root/repo/tests/mcretime/mcgraph_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/mcgraph_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/mcgraph_test.cpp.o.d"
  "/root/repo/tests/mcretime/multiclock_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/multiclock_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/multiclock_test.cpp.o.d"
  "/root/repo/tests/mcretime/rebuild_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/rebuild_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/rebuild_test.cpp.o.d"
  "/root/repo/tests/mcretime/register_class_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/register_class_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/register_class_test.cpp.o.d"
  "/root/repo/tests/mcretime/relocate_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/relocate_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/relocate_test.cpp.o.d"
  "/root/repo/tests/mcretime/reset_state_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/reset_state_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/reset_state_test.cpp.o.d"
  "/root/repo/tests/mcretime/sharing_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/sharing_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/sharing_test.cpp.o.d"
  "/root/repo/tests/mcretime/stress_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/stress_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/stress_test.cpp.o.d"
  "/root/repo/tests/mcretime/sync_control_test.cpp" "tests/CMakeFiles/mcretime_test.dir/mcretime/sync_control_test.cpp.o" "gcc" "tests/CMakeFiles/mcretime_test.dir/mcretime/sync_control_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mcrt_base.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mcrt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mcrt_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mcrt_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mcrt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/blif/CMakeFiles/mcrt_blif.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcrt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/mcrt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/mcrt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mcrt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/retime/CMakeFiles/mcrt_retime.dir/DependInfo.cmake"
  "/root/repo/build/src/mcretime/CMakeFiles/mcrt_mcretime.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/mcrt_verify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

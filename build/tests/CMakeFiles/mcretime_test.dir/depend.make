# Empty dependencies file for mcretime_test.
# This may be replaced when dependencies are built.

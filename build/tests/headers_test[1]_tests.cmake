add_test([=[HeadersTest.AllPublicHeadersIncluded]=]  /root/repo/build/tests/headers_test [==[--gtest_filter=HeadersTest.AllPublicHeadersIncluded]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[HeadersTest.AllPublicHeadersIncluded]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  headers_test_TESTS HeadersTest.AllPublicHeadersIncluded)

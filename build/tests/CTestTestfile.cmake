# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/headers_test[1]_include.cmake")
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/blif_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tech_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/retime_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/mcretime_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/mcrt_cli.dir/mcrt_cli.cpp.o"
  "CMakeFiles/mcrt_cli.dir/mcrt_cli.cpp.o.d"
  "mcrt"
  "mcrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mcrt_cli.
# This may be replaced when dependencies are built.

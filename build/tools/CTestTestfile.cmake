# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_stats "/root/repo/build/tools/mcrt" "stats" "/root/repo/testdata/enabled_pipeline.blif")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_classes "/root/repo/build/tools/mcrt" "classes" "/root/repo/testdata/enabled_pipeline.blif")
set_tests_properties(cli_classes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_retime "/root/repo/build/tools/mcrt" "retime" "/root/repo/testdata/enabled_pipeline.blif" "/root/repo/build/tools/cli_retimed.blif")
set_tests_properties(cli_retime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_check "/root/repo/build/tools/mcrt" "check" "--formal" "/root/repo/testdata/enabled_pipeline.blif" "/root/repo/build/tools/cli_retimed.blif")
set_tests_properties(cli_check PROPERTIES  DEPENDS "cli_retime" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map "/root/repo/build/tools/mcrt" "map" "-k" "4" "/root/repo/testdata/enabled_pipeline.blif" "/root/repo/build/tools/cli_mapped.blif")
set_tests_properties(cli_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/mcrt" "sweep" "/root/repo/testdata/enabled_pipeline.blif" "/root/repo/build/tools/cli_swept.blif")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_timing "/root/repo/build/tools/mcrt" "timing" "/root/repo/testdata/enabled_pipeline.blif")
set_tests_properties(cli_timing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot "/root/repo/build/tools/mcrt" "dot" "/root/repo/testdata/enabled_pipeline.blif" "/root/repo/build/tools/cli_demo.dot")
set_tests_properties(cli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_strash "/root/repo/build/tools/mcrt" "strash" "/root/repo/testdata/enabled_pipeline.blif" "/root/repo/build/tools/cli_strash.blif")
set_tests_properties(cli_strash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_regsweep "/root/repo/build/tools/mcrt" "regsweep" "/root/repo/testdata/enabled_pipeline.blif" "/root/repo/build/tools/cli_regsweep.blif")
set_tests_properties(cli_regsweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")

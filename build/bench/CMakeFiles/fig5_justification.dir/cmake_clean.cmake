file(REMOVE_RECURSE
  "CMakeFiles/fig5_justification.dir/fig5_justification.cpp.o"
  "CMakeFiles/fig5_justification.dir/fig5_justification.cpp.o.d"
  "fig5_justification"
  "fig5_justification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_justification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_justification.
# This may be replaced when dependencies are built.

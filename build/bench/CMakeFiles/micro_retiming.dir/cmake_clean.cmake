file(REMOVE_RECURSE
  "CMakeFiles/micro_retiming.dir/micro_retiming.cpp.o"
  "CMakeFiles/micro_retiming.dir/micro_retiming.cpp.o.d"
  "micro_retiming"
  "micro_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for micro_retiming.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1_enable_cost.dir/fig1_enable_cost.cpp.o"
  "CMakeFiles/fig1_enable_cost.dir/fig1_enable_cost.cpp.o.d"
  "fig1_enable_cost"
  "fig1_enable_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_enable_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig1_enable_cost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/area_period_tradeoff.dir/area_period_tradeoff.cpp.o"
  "CMakeFiles/area_period_tradeoff.dir/area_period_tradeoff.cpp.o.d"
  "area_period_tradeoff"
  "area_period_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_period_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for area_period_tradeoff.
# This may be replaced when dependencies are built.

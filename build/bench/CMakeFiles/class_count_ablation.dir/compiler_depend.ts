# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for class_count_ablation.

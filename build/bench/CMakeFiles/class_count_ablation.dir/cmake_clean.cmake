file(REMOVE_RECURSE
  "CMakeFiles/class_count_ablation.dir/class_count_ablation.cpp.o"
  "CMakeFiles/class_count_ablation.dir/class_count_ablation.cpp.o.d"
  "class_count_ablation"
  "class_count_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_count_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

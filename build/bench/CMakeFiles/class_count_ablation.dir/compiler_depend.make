# Empty compiler generated dependencies file for class_count_ablation.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig4_sharing_model.
# This may be replaced when dependencies are built.

# Empty dependencies file for table2_mc_retiming.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_mc_retiming.dir/table2_mc_retiming.cpp.o"
  "CMakeFiles/table2_mc_retiming.dir/table2_mc_retiming.cpp.o.d"
  "table2_mc_retiming"
  "table2_mc_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_mc_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

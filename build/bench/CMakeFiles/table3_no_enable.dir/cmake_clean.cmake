file(REMOVE_RECURSE
  "CMakeFiles/table3_no_enable.dir/table3_no_enable.cpp.o"
  "CMakeFiles/table3_no_enable.dir/table3_no_enable.cpp.o.d"
  "table3_no_enable"
  "table3_no_enable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_no_enable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

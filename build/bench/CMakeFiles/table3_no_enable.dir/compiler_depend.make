# Empty compiler generated dependencies file for table3_no_enable.
# This may be replaced when dependencies are built.

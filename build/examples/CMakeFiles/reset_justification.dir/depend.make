# Empty dependencies file for reset_justification.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/reset_justification.dir/reset_justification.cpp.o"
  "CMakeFiles/reset_justification.dir/reset_justification.cpp.o.d"
  "reset_justification"
  "reset_justification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reset_justification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pipeline_retiming.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pipeline_retiming.dir/pipeline_retiming.cpp.o"
  "CMakeFiles/pipeline_retiming.dir/pipeline_retiming.cpp.o.d"
  "pipeline_retiming"
  "pipeline_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Gate-level sequential netlist with generic multiple-class registers.
//
// This is the circuit representation of the whole library: a network of
// single-output combinational nodes (LUTs / truth tables), primary inputs
// and outputs, and *generic registers* in the sense of the paper's Fig. 2a:
//
//        +--------+
//   D ---|D      Q|--- Q
//   EN --|EN      |        synchronous load enable (absent = always load)
//   SS --|SS / SC |        synchronous set/clear   (value in sync_val)
//   AS --|AS / AC |        asynchronous set/clear  (value in async_val)
//  clk --|>       |
//        +--------+
//
// Register semantics (used by the simulator and preserved by retiming):
//   - while async_ctrl == 1: Q = async_val (dominates everything);
//   - at a clock edge: if sync_ctrl == 1 then Q' = sync_val
//                      else if EN == 1 (or EN absent) then Q' = D
//                      else Q' = Q.
//
// The netlist is a value type: copyable, no hidden global state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/ids.h"
#include "netlist/truth_table.h"

namespace mcrt {

struct StructuralHash;

/// Reset value of a register: '0', '1' or '-' (don't care / absent).
enum class ResetVal : std::uint8_t { kZero = 0, kOne = 1, kDontCare = 2 };

[[nodiscard]] constexpr char reset_val_char(ResetVal v) noexcept {
  return v == ResetVal::kZero ? '0' : (v == ResetVal::kOne ? '1' : '-');
}

[[nodiscard]] constexpr Trit reset_val_trit(ResetVal v) noexcept {
  switch (v) {
    case ResetVal::kZero: return Trit::kZero;
    case ResetVal::kOne: return Trit::kOne;
    case ResetVal::kDontCare: return Trit::kUnknown;
  }
  return Trit::kUnknown;
}

/// Who drives a net.
struct NetDriver {
  enum class Kind : std::uint8_t { kNone, kNode, kRegister } kind = Kind::kNone;
  std::uint32_t index = 0;  ///< NodeId or RegId value depending on kind
};

enum class NodeKind : std::uint8_t {
  kInput,   ///< primary input: no fanins, drives one net
  kOutput,  ///< primary output: one fanin, no output net
  kLut      ///< combinational node: truth table over fanins (0-input = const)
};

struct Node {
  NodeKind kind = NodeKind::kLut;
  TruthTable function;          ///< meaningful for kLut only
  std::vector<NetId> fanins;    ///< input nets (order matches function)
  NetId output;                 ///< driven net (invalid for kOutput)
  std::int64_t delay = 0;       ///< propagation delay d(v), set by tech map
  std::string name;
};

/// Generic register (paper Fig. 2a). Control inputs that are absent hold an
/// invalid NetId; the matching reset value must then be kDontCare.
struct Register {
  NetId d;
  NetId q;
  NetId clk;                            ///< required
  NetId en;                             ///< invalid = always enabled
  NetId sync_ctrl;                      ///< invalid = no sync set/clear
  NetId async_ctrl;                     ///< invalid = no async set/clear
  ResetVal sync_val = ResetVal::kDontCare;   ///< s in the paper
  ResetVal async_val = ResetVal::kDontCare;  ///< a in the paper
  std::string name;
};

struct Net {
  std::string name;
  NetDriver driver;
};

/// How a net is consumed: node pins, register data pins, register control
/// pins. Built on demand by Netlist::build_reader_index().
struct NetReaders {
  struct NodePin {
    NodeId node;
    std::uint32_t pin;
  };
  std::vector<NodePin> node_pins;
  std::vector<RegId> reg_data;  ///< registers whose D is this net
  /// Registers using the net as clk/en/sync/async control.
  std::vector<RegId> reg_control;
};

class Netlist {
 public:
  // --- construction -------------------------------------------------------
  /// Pre-sizes the backing vectors (BLIF headers and workload profiles know
  /// their element counts up front; reserving avoids reallocation churn).
  void reserve(std::size_t nets, std::size_t nodes, std::size_t registers);

  NetId add_net(std::string name = {});
  NetId add_input(std::string name);
  NodeId add_output(std::string name, NetId source);
  /// Adds a combinational node; returns the net it drives.
  NetId add_lut(TruthTable function, std::vector<NetId> fanins,
                std::string name = {});
  /// Adds a combinational node driving the pre-created (undriven) net
  /// `output`. Used by parsers that see net names before their drivers.
  NodeId add_lut_driving(NetId output, TruthTable function,
                         std::vector<NetId> fanins);
  /// Adds a primary input driving the pre-created (undriven) net `output`.
  NodeId add_input_driving(NetId output);
  NetId add_const(bool value, std::string name = {});
  /// Adds a register; `spec.q` is ignored and a fresh net is created unless
  /// `spec.q` is valid (then the register drives that pre-made net).
  /// Returns the Q net.
  NetId add_register(Register spec);

  // --- access --------------------------------------------------------------
  [[nodiscard]] std::size_t net_count() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t register_count() const noexcept {
    return registers_.size();
  }

  [[nodiscard]] const Net& net(NetId id) const { return nets_[id.index()]; }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id.index()]; }
  [[nodiscard]] const Register& reg(RegId id) const {
    return registers_[id.index()];
  }
  // Non-const access conservatively counts as a mutation (the caller can
  // rewrite fanins, functions or control wiring through the reference).
  [[nodiscard]] Node& node(NodeId id) {
    touch();
    return nodes_[id.index()];
  }
  [[nodiscard]] Register& reg(RegId id) {
    touch();
    return registers_[id.index()];
  }

  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::span<const Register> registers() const noexcept {
    return registers_;
  }

  [[nodiscard]] const std::vector<NodeId>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<NodeId>& outputs() const noexcept {
    return outputs_;
  }

  /// Driver of `net` if it is a 0-input constant LUT.
  [[nodiscard]] std::optional<bool> const_value(NetId net) const;

  void set_node_delay(NodeId id, std::int64_t delay) {
    touch();
    nodes_[id.index()].delay = delay;
  }

  /// Monotone mutation counter. Bumped by every mutating method (including
  /// non-const node()/reg() access); derived views such as CompactNetlist
  /// record the revision they were built at and compare it to detect
  /// staleness. Copies keep the source's revision.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  // --- analysis ------------------------------------------------------------
  /// Per-net reader lists; recomputed from scratch at each call.
  [[nodiscard]] std::vector<NetReaders> build_reader_index() const;

  /// Combinational nodes (kLut) in topological order; std::nullopt if a
  /// combinational cycle exists.
  [[nodiscard]] std::optional<std::vector<NodeId>> combinational_order() const;

  /// Structural sanity checks; returns human-readable problems (empty = ok).
  [[nodiscard]] std::vector<std::string> validate() const;

  struct Stats {
    std::size_t inputs = 0;
    std::size_t outputs = 0;
    std::size_t luts = 0;       ///< kLut nodes with >= 1 input
    std::size_t constants = 0;  ///< 0-input kLut nodes
    std::size_t registers = 0;
    std::size_t with_en = 0;
    std::size_t with_sync = 0;
    std::size_t with_async = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  // Invalidation hook shared by every mutating method: bumps the revision
  // (staleness detection for CompactNetlist and friends) and drops the
  // memoized structural hash. Not thread-safe; a Netlist is single-writer
  // by design (docs/INTERNALS.md#compact-core).
  void touch() noexcept {
    ++revision_;
    hash_valid_ = false;
  }

  // structural_hash() memoizes its digest here (lazily, invalidated by
  // touch()) so repeated hashing of an unchanged netlist — serve cache
  // lookups, bench runs — is O(1) after the first call.
  friend StructuralHash structural_hash(const Netlist& netlist);

  std::vector<Net> nets_;
  std::vector<Node> nodes_;
  std::vector<Register> registers_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::uint64_t revision_ = 0;
  mutable bool hash_valid_ = false;
  mutable std::uint64_t hash_hi_ = 0;
  mutable std::uint64_t hash_lo_ = 0;
};

}  // namespace mcrt

// Data-oriented compact view of a Netlist.
//
// The seed Netlist is pointer-heavy: per-node std::vector fanins, name
// strings and an on-demand reader index rebuilt from scratch by every
// analysis. The hot loops of this library (FEAS probes, FlowMap cut
// enumeration, pattern simulation) traverse that structure thousands of
// times per flow, so CompactNetlist snapshots it once into flat arrays in
// the mockturtle idiom: dense uint32 ids, CSR-packed fanin *and* fanout
// adjacency (one offsets[]/edges[] pair each), a flat truth-table arena
// (one uint64 per node; a 6-LUT fits a word) and struct-of-arrays register
// metadata. Node/net/register ids are the Netlist's own dense indices, so
// results computed on the view map back without translation tables.
//
// Build/invalidate contract (docs/INTERNALS.md#compact-core):
//  - CompactNetlist(n) is a read-only snapshot of n at n.revision();
//  - every mutating Netlist method (and non-const node()/reg() access)
//    bumps the revision, so valid_for(n) detects staleness in O(1);
//  - transform passes that mutate the netlist must rebuild the view before
//    reusing it — there is no incremental update, by design: a rebuild is
//    one linear pass, and passes mutate in bursts between analyses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace mcrt {

/// Compressed-sparse-row adjacency: row i spans
/// edges[offsets[i] .. offsets[i+1]).
struct Csr {
  std::vector<std::uint32_t> offsets;  ///< rows + 1 entries
  std::vector<std::uint32_t> edges;

  [[nodiscard]] std::span<const std::uint32_t> row(
      std::uint32_t i) const noexcept {
    return {edges.data() + offsets[i], edges.data() + offsets[i + 1]};
  }
  [[nodiscard]] std::size_t rows() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
};

class CompactNetlist {
 public:
  /// Absent control net (matches NetId's invalid sentinel value).
  static constexpr std::uint32_t kNoNet = 0xffffffffu;

  /// Snapshots `netlist`. O(nodes + nets + registers + edges).
  explicit CompactNetlist(const Netlist& netlist);

  /// True while the snapshot still reflects `netlist` (same object state;
  /// compares the mutation revision recorded at build time).
  [[nodiscard]] bool valid_for(const Netlist& netlist) const noexcept {
    return revision_ == netlist.revision();
  }
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

  // --- counts --------------------------------------------------------------
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(node_kind_.size());
  }
  [[nodiscard]] std::uint32_t net_count() const noexcept {
    return static_cast<std::uint32_t>(driver_kind_.size());
  }
  [[nodiscard]] std::uint32_t register_count() const noexcept {
    return static_cast<std::uint32_t>(reg_d_.size());
  }

  // --- nodes ---------------------------------------------------------------
  [[nodiscard]] NodeKind node_kind(std::uint32_t v) const {
    return node_kind_[v];
  }
  /// Net driven by node v; kNoNet for primary outputs.
  [[nodiscard]] std::uint32_t node_output(std::uint32_t v) const {
    return node_output_[v];
  }
  [[nodiscard]] std::int64_t node_delay(std::uint32_t v) const {
    return node_delay_[v];
  }
  /// Fanin nets of node v, in pin order.
  [[nodiscard]] std::span<const std::uint32_t> fanins(std::uint32_t v) const {
    return fanin_.row(v);
  }
  /// Truth-table arena: positional bits / arity of node v (kLut only).
  [[nodiscard]] std::uint64_t tt_bits(std::uint32_t v) const {
    return tt_bits_[v];
  }
  [[nodiscard]] std::uint32_t tt_arity(std::uint32_t v) const {
    return tt_arity_[v];
  }

  // --- nets ----------------------------------------------------------------
  [[nodiscard]] NetDriver::Kind driver_kind(std::uint32_t net) const {
    return static_cast<NetDriver::Kind>(driver_kind_[net]);
  }
  /// NodeId or RegId value, meaningful unless driver_kind is kNone.
  [[nodiscard]] std::uint32_t driver_index(std::uint32_t net) const {
    return driver_index_[net];
  }
  /// Nodes consuming `net`, one entry per pin, ordered by (node, pin).
  [[nodiscard]] std::span<const std::uint32_t> reader_nodes(
      std::uint32_t net) const {
    return node_readers_.row(net);
  }
  /// Registers whose D input is `net`.
  [[nodiscard]] std::span<const std::uint32_t> reader_regs(
      std::uint32_t net) const {
    return reg_readers_.row(net);
  }

  // --- registers (struct-of-arrays; kNoNet = absent control) --------------
  [[nodiscard]] std::uint32_t reg_d(std::uint32_t r) const { return reg_d_[r]; }
  [[nodiscard]] std::uint32_t reg_q(std::uint32_t r) const { return reg_q_[r]; }
  [[nodiscard]] std::uint32_t reg_clk(std::uint32_t r) const {
    return reg_clk_[r];
  }
  [[nodiscard]] std::uint32_t reg_en(std::uint32_t r) const {
    return reg_en_[r];
  }
  [[nodiscard]] std::uint32_t reg_sync(std::uint32_t r) const {
    return reg_sync_[r];
  }
  [[nodiscard]] std::uint32_t reg_async(std::uint32_t r) const {
    return reg_async_[r];
  }
  [[nodiscard]] ResetVal reg_sync_val(std::uint32_t r) const {
    return reg_sync_val_[r];
  }
  [[nodiscard]] ResetVal reg_async_val(std::uint32_t r) const {
    return reg_async_val_[r];
  }
  /// True if any register has an async set/clear (simulators use this to
  /// skip the async-override fixed-point machinery entirely).
  [[nodiscard]] bool has_async() const noexcept { return has_async_; }

  // --- orders and interface ------------------------------------------------
  /// kLut nodes in topological order (empty if the netlist has a
  /// combinational cycle; check acyclic()).
  [[nodiscard]] std::span<const std::uint32_t> comb_order() const noexcept {
    return comb_order_;
  }
  [[nodiscard]] bool acyclic() const noexcept { return acyclic_; }
  [[nodiscard]] std::span<const std::uint32_t> input_nodes() const noexcept {
    return input_nodes_;
  }
  [[nodiscard]] std::span<const std::uint32_t> output_nodes() const noexcept {
    return output_nodes_;
  }

 private:
  std::uint64_t revision_ = 0;
  bool acyclic_ = false;
  bool has_async_ = false;

  std::vector<NodeKind> node_kind_;
  std::vector<std::uint32_t> node_output_;
  std::vector<std::int64_t> node_delay_;
  std::vector<std::uint64_t> tt_bits_;
  std::vector<std::uint8_t> tt_arity_;
  Csr fanin_;  ///< node -> fanin nets

  std::vector<std::uint8_t> driver_kind_;
  std::vector<std::uint32_t> driver_index_;
  Csr node_readers_;  ///< net -> consuming nodes (pin-expanded)
  Csr reg_readers_;   ///< net -> registers with D on the net

  std::vector<std::uint32_t> reg_d_;
  std::vector<std::uint32_t> reg_q_;
  std::vector<std::uint32_t> reg_clk_;
  std::vector<std::uint32_t> reg_en_;
  std::vector<std::uint32_t> reg_sync_;
  std::vector<std::uint32_t> reg_async_;
  std::vector<ResetVal> reg_sync_val_;
  std::vector<ResetVal> reg_async_val_;

  std::vector<std::uint32_t> comb_order_;
  std::vector<std::uint32_t> input_nodes_;
  std::vector<std::uint32_t> output_nodes_;
};

}  // namespace mcrt

// Truth tables for small combinational functions (up to 6 inputs).
//
// Mapped FPGA netlists are LUT networks; a 64-bit word holds the complete
// function of a 6-LUT, which covers the XC4000-class architectures the
// paper targets (4-LUTs) with room to spare. Bit i of the word is the
// function value when the fanin assignment, read as a binary number with
// fanin 0 as the least significant bit, equals i.
#pragma once

#include <cstdint>
#include <string>

namespace mcrt {

/// Three-valued logic value used by the simulator and reset calculus.
enum class Trit : std::uint8_t { kZero = 0, kOne = 1, kUnknown = 2 };

[[nodiscard]] constexpr char trit_char(Trit t) noexcept {
  return t == Trit::kZero ? '0' : (t == Trit::kOne ? '1' : 'X');
}

/// merge(a, b): a if a == b, else X. The join of the information order.
[[nodiscard]] constexpr Trit trit_merge(Trit a, Trit b) noexcept {
  return a == b ? a : Trit::kUnknown;
}

class TruthTable {
 public:
  static constexpr std::uint32_t kMaxInputs = 6;

  /// Constant-false 0-input function.
  constexpr TruthTable() noexcept : bits_(0), input_count_(0) {}
  /// `bits` uses positional encoding (see file comment); bits above
  /// 2^input_count are ignored and canonicalized to a repetition pattern.
  TruthTable(std::uint32_t input_count, std::uint64_t bits);

  static TruthTable constant(bool value);
  static TruthTable buffer();
  static TruthTable inverter();
  static TruthTable and_n(std::uint32_t inputs);
  static TruthTable or_n(std::uint32_t inputs);
  static TruthTable nand_n(std::uint32_t inputs);
  static TruthTable nor_n(std::uint32_t inputs);
  static TruthTable xor_n(std::uint32_t inputs);
  /// 2:1 multiplexer; fanin order (sel, a, b): sel==0 -> a, sel==1 -> b.
  static TruthTable mux21();

  [[nodiscard]] std::uint32_t input_count() const noexcept {
    return input_count_;
  }
  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }

  /// Evaluates under the complete assignment packed into `input_bits`
  /// (fanin i at bit i).
  [[nodiscard]] bool eval(std::uint32_t input_bits) const noexcept;

  /// Three-valued evaluation: returns kUnknown only if both completions of
  /// the unknown inputs are reachable. `inputs` has input_count entries.
  [[nodiscard]] Trit eval_ternary(const Trit* inputs) const;

  /// Fixes input `index` to `value`, yielding a function of one fewer input
  /// (remaining inputs shift down).
  [[nodiscard]] TruthTable cofactor(std::uint32_t index, bool value) const;

  /// True if the function ignores input `index`.
  [[nodiscard]] bool input_redundant(std::uint32_t index) const;

  [[nodiscard]] bool is_const(bool value) const;

  /// SOP-free debug form, e.g. "tt4:0x8001".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const TruthTable&) const = default;

 private:
  std::uint64_t bits_;
  std::uint32_t input_count_;
};

}  // namespace mcrt

#include "netlist/compact.h"

#include <cassert>

namespace mcrt {
namespace {

/// Turns per-row counts into CSR offsets (exclusive prefix sum) and returns
/// the total; counts is left holding the running fill cursor per row.
std::uint32_t counts_to_offsets(std::vector<std::uint32_t>& counts,
                                std::vector<std::uint32_t>& offsets) {
  offsets.resize(counts.size() + 1);
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = total;
    total += counts[i];
    counts[i] = offsets[i];  // becomes the insertion cursor
  }
  offsets[counts.size()] = total;
  return total;
}

}  // namespace

CompactNetlist::CompactNetlist(const Netlist& netlist) {
  revision_ = netlist.revision();
  const std::uint32_t nodes = static_cast<std::uint32_t>(netlist.node_count());
  const std::uint32_t nets = static_cast<std::uint32_t>(netlist.net_count());
  const std::uint32_t regs =
      static_cast<std::uint32_t>(netlist.register_count());

  // --- nodes + fanin CSR ---------------------------------------------------
  node_kind_.resize(nodes);
  node_output_.resize(nodes, kNoNet);
  node_delay_.resize(nodes, 0);
  tt_bits_.resize(nodes, 0);
  tt_arity_.resize(nodes, 0);
  std::vector<std::uint32_t> cursor(nodes, 0);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    cursor[v] =
        static_cast<std::uint32_t>(netlist.node(NodeId{v}).fanins.size());
  }
  const std::uint32_t fanin_total = counts_to_offsets(cursor, fanin_.offsets);
  fanin_.edges.resize(fanin_total);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    const Node& node = netlist.node(NodeId{v});
    node_kind_[v] = node.kind;
    node_delay_[v] = node.delay;
    if (node.output.valid()) node_output_[v] = node.output.value();
    if (node.kind == NodeKind::kLut) {
      tt_bits_[v] = node.function.bits();
      tt_arity_[v] = static_cast<std::uint8_t>(node.function.input_count());
    }
    for (const NetId fanin : node.fanins) {
      fanin_.edges[cursor[v]++] = fanin.value();
    }
  }

  // --- nets + fanout CSRs --------------------------------------------------
  driver_kind_.resize(nets, 0);
  driver_index_.resize(nets, 0);
  for (std::uint32_t n = 0; n < nets; ++n) {
    const NetDriver& driver = netlist.net(NetId{n}).driver;
    driver_kind_[n] = static_cast<std::uint8_t>(driver.kind);
    driver_index_[n] = driver.index;
  }
  // Counting sort of node pins by fanin net: pass 1 counts, pass 2 fills in
  // (node, pin) order, so each row comes out sorted by construction.
  cursor.assign(nets, 0);
  for (const std::uint32_t e : fanin_.edges) ++cursor[e];
  const std::uint32_t reader_total =
      counts_to_offsets(cursor, node_readers_.offsets);
  node_readers_.edges.resize(reader_total);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    for (const std::uint32_t net : fanin_.row(v)) {
      node_readers_.edges[cursor[net]++] = v;
    }
  }

  // --- registers -----------------------------------------------------------
  reg_d_.resize(regs);
  reg_q_.resize(regs);
  reg_clk_.resize(regs);
  reg_en_.resize(regs);
  reg_sync_.resize(regs);
  reg_async_.resize(regs);
  reg_sync_val_.resize(regs);
  reg_async_val_.resize(regs);
  cursor.assign(nets, 0);
  for (std::uint32_t r = 0; r < regs; ++r) {
    const Register& ff = netlist.reg(RegId{r});
    reg_d_[r] = ff.d.valid() ? ff.d.value() : kNoNet;
    reg_q_[r] = ff.q.valid() ? ff.q.value() : kNoNet;
    reg_clk_[r] = ff.clk.valid() ? ff.clk.value() : kNoNet;
    reg_en_[r] = ff.en.valid() ? ff.en.value() : kNoNet;
    reg_sync_[r] = ff.sync_ctrl.valid() ? ff.sync_ctrl.value() : kNoNet;
    reg_async_[r] = ff.async_ctrl.valid() ? ff.async_ctrl.value() : kNoNet;
    reg_sync_val_[r] = ff.sync_val;
    reg_async_val_[r] = ff.async_val;
    if (reg_async_[r] != kNoNet) has_async_ = true;
    if (reg_d_[r] != kNoNet) ++cursor[reg_d_[r]];
  }
  const std::uint32_t reg_total =
      counts_to_offsets(cursor, reg_readers_.offsets);
  reg_readers_.edges.resize(reg_total);
  for (std::uint32_t r = 0; r < regs; ++r) {
    if (reg_d_[r] != kNoNet) reg_readers_.edges[cursor[reg_d_[r]]++] = r;
  }

  // --- interface lists -----------------------------------------------------
  input_nodes_.reserve(netlist.inputs().size());
  for (const NodeId id : netlist.inputs()) input_nodes_.push_back(id.value());
  output_nodes_.reserve(netlist.outputs().size());
  for (const NodeId id : netlist.outputs()) output_nodes_.push_back(id.value());

  // --- combinational topological order (Kahn over the flat arrays) --------
  std::vector<std::uint32_t> indegree(nodes, 0);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    for (const std::uint32_t net : fanin_.row(v)) {
      if (driver_kind(net) == NetDriver::Kind::kNode) ++indegree[v];
    }
  }
  std::vector<std::uint32_t> queue;
  queue.reserve(nodes);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    if (indegree[v] == 0) queue.push_back(v);
  }
  std::uint32_t processed = 0;
  comb_order_.reserve(nodes);
  while (!queue.empty()) {
    const std::uint32_t v = queue.back();
    queue.pop_back();
    ++processed;
    if (node_kind_[v] == NodeKind::kLut) comb_order_.push_back(v);
    const std::uint32_t out = node_output_[v];
    if (out == kNoNet) continue;
    for (const std::uint32_t reader : node_readers_.row(out)) {
      if (--indegree[reader] == 0) queue.push_back(reader);
    }
  }
  acyclic_ = processed == nodes;
  if (!acyclic_) comb_order_.clear();
}

}  // namespace mcrt

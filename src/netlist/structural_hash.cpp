#include "netlist/structural_hash.h"

#include <string_view>
#include <vector>

#include "base/strings.h"

namespace mcrt {
namespace {

/// splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (v * 0xff51afd7ed558ccdULL));
}

std::uint64_t hash_text(std::uint64_t seed, std::string_view text) noexcept {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h = combine(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return combine(h, text.size());
}

// Tags keeping differently-shaped drivers from colliding by construction.
enum : std::uint64_t {
  kTagUndriven = 0x11,
  kTagInput = 0x22,
  kTagLut = 0x33,
  kTagRegister = 0x44,
  kTagAbsentNet = 0x55,
};

/// One 64-bit lane of the digest; two differently seeded lanes give the
/// 128-bit result.
std::uint64_t hash_lane(const Netlist& netlist, std::uint64_t seed) {
  const std::size_t nets = netlist.net_count();
  std::vector<std::uint64_t> label(nets, 0);

  // Map each net back to its driving register, if any (NetDriver carries
  // the same information; this avoids trusting its index blindly).
  // Initial labels: local structure only, no indices and no internal names.
  for (std::size_t n = 0; n < nets; ++n) {
    const NetDriver& driver = netlist.net(NetId{
        static_cast<std::uint32_t>(n)}).driver;
    switch (driver.kind) {
      case NetDriver::Kind::kNone:
        label[n] = combine(seed, kTagUndriven);
        break;
      case NetDriver::Kind::kNode: {
        const Node& node = netlist.node(NodeId{driver.index});
        if (node.kind == NodeKind::kInput) {
          // Primary-input names are the circuit's interface: semantic.
          label[n] = combine(combine(seed, kTagInput),
                             hash_text(seed, node.name));
        } else {
          std::uint64_t h = combine(seed, kTagLut);
          h = combine(h, node.fanins.size());
          h = combine(h, static_cast<std::uint64_t>(node.delay));
          const std::uint32_t inputs = node.function.input_count();
          std::uint64_t bits = 0;
          for (std::uint32_t row = 0; row < (1u << inputs); ++row) {
            bits = (bits << 1) | (node.function.eval(row) ? 1u : 0u);
            if ((row & 63u) == 63u) {
              h = combine(h, bits);
              bits = 0;
            }
          }
          label[n] = combine(h, bits);
        }
        break;
      }
      case NetDriver::Kind::kRegister: {
        const Register& ff = netlist.reg(RegId{driver.index});
        std::uint64_t h = combine(seed, kTagRegister);
        h = combine(h, static_cast<std::uint64_t>(ff.sync_val));
        h = combine(h, static_cast<std::uint64_t>(ff.async_val));
        h = combine(h, (ff.en.valid() ? 1u : 0u) |
                           (ff.sync_ctrl.valid() ? 2u : 0u) |
                           (ff.async_ctrl.valid() ? 4u : 0u));
        label[n] = h;
        break;
      }
    }
  }

  const auto net_label = [&](NetId id) {
    return id.valid() ? label[id.index()] : combine(seed, kTagAbsentNet);
  };

  // Refinement: each round folds every driver's input labels into its
  // output label, so after R rounds a net's label reflects its radius-R
  // structural neighborhood (registers propagate too, covering feedback).
  std::vector<std::uint64_t> next(nets, 0);
  constexpr int kRounds = 24;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t n = 0; n < nets; ++n) {
      const NetDriver& driver = netlist.net(NetId{
          static_cast<std::uint32_t>(n)}).driver;
      std::uint64_t h = label[n];
      switch (driver.kind) {
        case NetDriver::Kind::kNone:
          break;
        case NetDriver::Kind::kNode: {
          const Node& node = netlist.node(NodeId{driver.index});
          // Pin order matters: AND(a,b) vs AND(b,a) differ unless the
          // truth table is symmetric, and then the labels compensate.
          for (const NetId fanin : node.fanins) {
            h = combine(h, net_label(fanin));
          }
          break;
        }
        case NetDriver::Kind::kRegister: {
          const Register& ff = netlist.reg(RegId{driver.index});
          h = combine(h, net_label(ff.d));
          h = combine(h, net_label(ff.clk));
          h = combine(h, net_label(ff.en));
          h = combine(h, net_label(ff.sync_ctrl));
          h = combine(h, net_label(ff.async_ctrl));
          break;
        }
      }
      next[n] = h;
    }
    label.swap(next);
  }

  // Order-independent aggregation: wrapping sums of full-entropy labels.
  std::uint64_t digest = combine(seed, 0xd1);
  std::uint64_t net_sum = 0;
  for (std::size_t n = 0; n < nets; ++n) {
    const NetDriver& driver = netlist.net(NetId{
        static_cast<std::uint32_t>(n)}).driver;
    // Undriven nets that nothing reads are storage artifacts; driven nets
    // and control inputs all reach this sum via their drivers' labels.
    if (driver.kind == NetDriver::Kind::kNone) continue;
    net_sum += mix64(label[n]);
  }
  digest = combine(digest, net_sum);

  // Interface bindings: which net each named primary output observes.
  std::uint64_t po_sum = 0;
  for (const NodeId po : netlist.outputs()) {
    const Node& node = netlist.node(po);
    const NetId source =
        node.fanins.empty() ? NetId{} : node.fanins[0];
    po_sum += combine(hash_text(seed, node.name), net_label(source));
  }
  digest = combine(digest, po_sum);

  digest = combine(digest, netlist.node_count());
  digest = combine(digest, netlist.register_count());
  digest = combine(digest, netlist.inputs().size());
  digest = combine(digest, netlist.outputs().size());
  return digest;
}

}  // namespace

std::string StructuralHash::hex() const {
  return str_format("%016llx%016llx", static_cast<unsigned long long>(hi),
                    static_cast<unsigned long long>(lo));
}

StructuralHash structural_hash(const Netlist& netlist) {
  // Memoized: every mutating Netlist method drops hash_valid_, so a cache
  // hit can only observe the digest of the current structure. Not
  // thread-safe — callers hashing one netlist from several threads must
  // hash a copy or synchronize (single-writer rule, docs/INTERNALS.md).
  if (netlist.hash_valid_) {
    return StructuralHash{netlist.hash_hi_, netlist.hash_lo_};
  }
  StructuralHash hash;
  hash.hi = hash_lane(netlist, 0x6d63727448617368ULL);  // "mcrtHash"
  hash.lo = hash_lane(netlist, 0x726574696d696e67ULL);  // "retiming"
  netlist.hash_hi_ = hash.hi;
  netlist.hash_lo_ = hash.lo;
  netlist.hash_valid_ = true;
  return hash;
}

}  // namespace mcrt

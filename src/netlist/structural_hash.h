// Content-addressed structural hashing of netlists.
//
// structural_hash() digests what a circuit *is* — its interface (primary
// input/output names), its combinational structure (truth tables, fanin
// wiring, delays) and its register classes (clock/enable/sync/async wiring
// and reset values) — while ignoring how it happens to be stored: node and
// net insertion order, internal net names, and index numbering all leave
// the hash unchanged. Two netlists built in different orders, or the same
// netlist shuffled by a pass that only renumbers, hash identically; any
// change to logic, wiring, a register's class or a reset value moves it.
//
// The algorithm is Weisfeiler–Lehman style label refinement: every net
// starts with a label derived from its driver's local structure, labels are
// refined for a fixed number of rounds by hashing each driver's input
// labels into its output label (registers included, so feedback loops
// propagate), and the final 128-bit digest order-independently folds every
// net's label plus the interface bindings. 128 bits (two independently
// seeded 64-bit lanes) makes accidental collisions implausible at any
// realistic cache size, which is what the `mcrt serve` result cache keys
// on (docs/SERVER.md#cache).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace mcrt {

struct StructuralHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool operator==(const StructuralHash&) const = default;
  /// 32 lowercase hex digits, hi lane first.
  [[nodiscard]] std::string hex() const;
};

StructuralHash structural_hash(const Netlist& netlist);

}  // namespace mcrt

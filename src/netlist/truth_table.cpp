#include "netlist/truth_table.h"

#include <cassert>

#include "base/strings.h"

namespace mcrt {
namespace {

constexpr std::uint64_t mask_for(std::uint32_t input_count) noexcept {
  const std::uint32_t rows = 1u << input_count;
  return rows >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << rows) - 1;
}

}  // namespace

TruthTable::TruthTable(std::uint32_t input_count, std::uint64_t bits)
    : bits_(bits & mask_for(input_count)), input_count_(input_count) {
  assert(input_count <= kMaxInputs);
}

TruthTable TruthTable::constant(bool value) {
  return TruthTable(0, value ? 1u : 0u);
}

TruthTable TruthTable::buffer() { return TruthTable(1, 0b10); }
TruthTable TruthTable::inverter() { return TruthTable(1, 0b01); }

TruthTable TruthTable::and_n(std::uint32_t inputs) {
  assert(inputs >= 1 && inputs <= kMaxInputs);
  const std::uint32_t rows = 1u << inputs;
  return TruthTable(inputs, std::uint64_t{1} << (rows - 1));
}

TruthTable TruthTable::or_n(std::uint32_t inputs) {
  assert(inputs >= 1 && inputs <= kMaxInputs);
  return TruthTable(inputs, mask_for(inputs) & ~std::uint64_t{1});
}

TruthTable TruthTable::nand_n(std::uint32_t inputs) {
  const TruthTable t = and_n(inputs);
  return TruthTable(inputs, ~t.bits());
}

TruthTable TruthTable::nor_n(std::uint32_t inputs) {
  const TruthTable t = or_n(inputs);
  return TruthTable(inputs, ~t.bits());
}

TruthTable TruthTable::xor_n(std::uint32_t inputs) {
  assert(inputs >= 1 && inputs <= kMaxInputs);
  std::uint64_t bits = 0;
  for (std::uint32_t row = 0; row < (1u << inputs); ++row) {
    if (__builtin_popcount(row) & 1) bits |= std::uint64_t{1} << row;
  }
  return TruthTable(inputs, bits);
}

TruthTable TruthTable::mux21() {
  // Inputs (sel, a, b) at positions (0, 1, 2): out = sel ? b : a.
  std::uint64_t bits = 0;
  for (std::uint32_t row = 0; row < 8; ++row) {
    const bool sel = row & 1;
    const bool a = row & 2;
    const bool b = row & 4;
    if (sel ? b : a) bits |= std::uint64_t{1} << row;
  }
  return TruthTable(3, bits);
}

bool TruthTable::eval(std::uint32_t input_bits) const noexcept {
  return (bits_ >> (input_bits & ((1u << input_count_) - 1))) & 1;
}

Trit TruthTable::eval_ternary(const Trit* inputs) const {
  // Enumerate completions of unknown inputs (at most 2^6).
  std::uint32_t known_bits = 0;
  std::uint32_t unknown_positions[kMaxInputs];
  std::uint32_t unknown_count = 0;
  for (std::uint32_t i = 0; i < input_count_; ++i) {
    switch (inputs[i]) {
      case Trit::kOne: known_bits |= 1u << i; break;
      case Trit::kZero: break;
      case Trit::kUnknown: unknown_positions[unknown_count++] = i; break;
    }
  }
  bool seen_zero = false;
  bool seen_one = false;
  for (std::uint32_t combo = 0; combo < (1u << unknown_count); ++combo) {
    std::uint32_t bits = known_bits;
    for (std::uint32_t j = 0; j < unknown_count; ++j) {
      if ((combo >> j) & 1) bits |= 1u << unknown_positions[j];
    }
    (eval(bits) ? seen_one : seen_zero) = true;
    if (seen_zero && seen_one) return Trit::kUnknown;
  }
  return seen_one ? Trit::kOne : Trit::kZero;
}

TruthTable TruthTable::cofactor(std::uint32_t index, bool value) const {
  assert(index < input_count_);
  std::uint64_t bits = 0;
  std::uint32_t out_row = 0;
  for (std::uint32_t row = 0; row < (1u << input_count_); ++row) {
    if (((row >> index) & 1) != static_cast<std::uint32_t>(value)) continue;
    if (eval(row)) bits |= std::uint64_t{1} << out_row;
    ++out_row;
  }
  return TruthTable(input_count_ - 1, bits);
}

bool TruthTable::input_redundant(std::uint32_t index) const {
  return cofactor(index, false) == cofactor(index, true);
}

bool TruthTable::is_const(bool value) const {
  const std::uint64_t mask = mask_for(input_count_);
  return value ? (bits_ & mask) == mask : (bits_ & mask) == 0;
}

std::string TruthTable::to_string() const {
  return str_format("tt%u:0x%llx", input_count_,
                    static_cast<unsigned long long>(bits_));
}

}  // namespace mcrt

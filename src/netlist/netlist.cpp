#include "netlist/netlist.h"

#include <cassert>

#include "base/strings.h"

namespace mcrt {

void Netlist::reserve(std::size_t nets, std::size_t nodes,
                      std::size_t registers) {
  nets_.reserve(nets);
  nodes_.reserve(nodes);
  registers_.reserve(registers);
}

NetId Netlist::add_net(std::string name) {
  touch();
  const NetId id{static_cast<NetId::value_type>(nets_.size())};
  if (name.empty()) name = str_format("n%u", id.value());
  nets_.push_back(Net{std::move(name), {}});
  return id;
}

NetId Netlist::add_input(std::string name) {
  touch();
  const NodeId node_id{static_cast<NodeId::value_type>(nodes_.size())};
  const NetId net_id = add_net(name);
  Node node;
  node.kind = NodeKind::kInput;
  node.output = net_id;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  nets_[net_id.index()].driver = {NetDriver::Kind::kNode, node_id.value()};
  inputs_.push_back(node_id);
  return net_id;
}

NodeId Netlist::add_output(std::string name, NetId source) {
  touch();
  const NodeId node_id{static_cast<NodeId::value_type>(nodes_.size())};
  Node node;
  node.kind = NodeKind::kOutput;
  node.fanins = {source};
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  outputs_.push_back(node_id);
  return node_id;
}

NetId Netlist::add_lut(TruthTable function, std::vector<NetId> fanins,
                       std::string name) {
  touch();
  assert(function.input_count() == fanins.size());
  const NodeId node_id{static_cast<NodeId::value_type>(nodes_.size())};
  const NetId net_id = add_net(std::move(name));
  Node node;
  node.kind = NodeKind::kLut;
  node.function = function;
  node.fanins = std::move(fanins);
  node.output = net_id;
  node.name = nets_[net_id.index()].name;
  nodes_.push_back(std::move(node));
  nets_[net_id.index()].driver = {NetDriver::Kind::kNode, node_id.value()};
  return net_id;
}

NodeId Netlist::add_lut_driving(NetId output, TruthTable function,
                                std::vector<NetId> fanins) {
  touch();
  assert(function.input_count() == fanins.size());
  assert(nets_[output.index()].driver.kind == NetDriver::Kind::kNone);
  const NodeId node_id{static_cast<NodeId::value_type>(nodes_.size())};
  Node node;
  node.kind = NodeKind::kLut;
  node.function = function;
  node.fanins = std::move(fanins);
  node.output = output;
  node.name = nets_[output.index()].name;
  nodes_.push_back(std::move(node));
  nets_[output.index()].driver = {NetDriver::Kind::kNode, node_id.value()};
  return node_id;
}

NodeId Netlist::add_input_driving(NetId output) {
  touch();
  assert(nets_[output.index()].driver.kind == NetDriver::Kind::kNone);
  const NodeId node_id{static_cast<NodeId::value_type>(nodes_.size())};
  Node node;
  node.kind = NodeKind::kInput;
  node.output = output;
  node.name = nets_[output.index()].name;
  nodes_.push_back(std::move(node));
  nets_[output.index()].driver = {NetDriver::Kind::kNode, node_id.value()};
  inputs_.push_back(node_id);
  return node_id;
}

NetId Netlist::add_const(bool value, std::string name) {
  return add_lut(TruthTable::constant(value), {}, std::move(name));
}

NetId Netlist::add_register(Register spec) {
  touch();
  const RegId reg_id{static_cast<RegId::value_type>(registers_.size())};
  if (!spec.q.valid()) {
    spec.q = add_net(spec.name.empty()
                         ? str_format("ff%u", reg_id.value())
                         : spec.name + "_q");
  }
  assert(spec.sync_ctrl.valid() || spec.sync_val == ResetVal::kDontCare);
  assert(spec.async_ctrl.valid() || spec.async_val == ResetVal::kDontCare);
  nets_[spec.q.index()].driver = {NetDriver::Kind::kRegister, reg_id.value()};
  if (spec.name.empty()) spec.name = str_format("ff%u", reg_id.value());
  const NetId q = spec.q;
  registers_.push_back(std::move(spec));
  return q;
}

std::optional<bool> Netlist::const_value(NetId net_id) const {
  const NetDriver& driver = nets_[net_id.index()].driver;
  if (driver.kind != NetDriver::Kind::kNode) return std::nullopt;
  const Node& node = nodes_[driver.index];
  if (node.kind != NodeKind::kLut || !node.fanins.empty()) return std::nullopt;
  return node.function.eval(0);
}

std::vector<NetReaders> Netlist::build_reader_index() const {
  std::vector<NetReaders> readers(nets_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    for (std::uint32_t pin = 0; pin < node.fanins.size(); ++pin) {
      readers[node.fanins[pin].index()].node_pins.push_back(
          {NodeId{static_cast<std::uint32_t>(n)}, pin});
    }
  }
  for (std::size_t r = 0; r < registers_.size(); ++r) {
    const Register& ff = registers_[r];
    const RegId id{static_cast<std::uint32_t>(r)};
    if (ff.d.valid()) readers[ff.d.index()].reg_data.push_back(id);
    for (const NetId ctrl : {ff.clk, ff.en, ff.sync_ctrl, ff.async_ctrl}) {
      if (ctrl.valid()) readers[ctrl.index()].reg_control.push_back(id);
    }
  }
  return readers;
}

std::optional<std::vector<NodeId>> Netlist::combinational_order() const {
  // Kahn over node->node edges that do not pass through a register.
  std::vector<std::uint32_t> indegree(nodes_.size(), 0);
  auto driver_node = [&](NetId net_id) -> std::optional<NodeId> {
    const NetDriver& d = nets_[net_id.index()].driver;
    if (d.kind == NetDriver::Kind::kNode) return NodeId{d.index};
    return std::nullopt;  // register or undriven: sequential boundary
  };
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (const NetId fanin : nodes_[n].fanins) {
      if (driver_node(fanin)) ++indegree[n];
    }
  }
  // Reader index for forward propagation.
  const auto readers = build_reader_index();
  std::vector<NodeId> queue;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (indegree[n] == 0) queue.push_back(NodeId{static_cast<std::uint32_t>(n)});
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    const Node& node = nodes_[v.index()];
    if (!node.output.valid()) continue;
    for (const auto& pin : readers[node.output.index()].node_pins) {
      if (--indegree[pin.node.index()] == 0) queue.push_back(pin.node);
    }
  }
  if (order.size() != nodes_.size()) return std::nullopt;
  // Keep only combinational nodes, in order.
  std::vector<NodeId> luts;
  for (const NodeId v : order) {
    if (nodes_[v.index()].kind == NodeKind::kLut) luts.push_back(v);
  }
  return luts;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  auto check_net = [&](NetId id, const std::string& what) {
    if (!id.valid() || id.index() >= nets_.size()) {
      problems.push_back("invalid net reference: " + what);
      return false;
    }
    return true;
  };
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    const std::string where = str_format("node %zu (%s)", n, node.name.c_str());
    if (node.kind == NodeKind::kLut &&
        node.function.input_count() != node.fanins.size()) {
      problems.push_back(where + ": truth table arity mismatch");
    }
    if (node.kind == NodeKind::kOutput && node.fanins.size() != 1) {
      problems.push_back(where + ": primary output must have one fanin");
    }
    if (node.kind != NodeKind::kOutput && !node.output.valid()) {
      problems.push_back(where + ": missing output net");
    }
    for (const NetId f : node.fanins) check_net(f, where + " fanin");
    if (node.output.valid() && check_net(node.output, where + " output")) {
      const NetDriver& d = nets_[node.output.index()].driver;
      if (d.kind != NetDriver::Kind::kNode || d.index != n) {
        problems.push_back(where + ": output net driver mismatch");
      }
    }
  }
  for (std::size_t r = 0; r < registers_.size(); ++r) {
    const Register& ff = registers_[r];
    const std::string where = str_format("register %zu (%s)", r, ff.name.c_str());
    check_net(ff.d, where + " D");
    check_net(ff.q, where + " Q");
    check_net(ff.clk, where + " clk");
    if (ff.q.valid() && ff.q.index() < nets_.size()) {
      const NetDriver& d = nets_[ff.q.index()].driver;
      if (d.kind != NetDriver::Kind::kRegister || d.index != r) {
        problems.push_back(where + ": Q net driver mismatch");
      }
    }
    if (!ff.sync_ctrl.valid() && ff.sync_val != ResetVal::kDontCare) {
      problems.push_back(where + ": sync value without sync control");
    }
    if (!ff.async_ctrl.valid() && ff.async_val != ResetVal::kDontCare) {
      problems.push_back(where + ": async value without async control");
    }
  }
  // Every net must have a driver (undriven nets break simulation).
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    if (nets_[n].driver.kind == NetDriver::Kind::kNone) {
      problems.push_back(
          str_format("net %zu (%s) has no driver", n, nets_[n].name.c_str()));
    }
  }
  if (!combinational_order()) {
    problems.push_back("combinational cycle detected");
  }
  return problems;
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.inputs = inputs_.size();
  s.outputs = outputs_.size();
  s.registers = registers_.size();
  for (const Node& node : nodes_) {
    if (node.kind != NodeKind::kLut) continue;
    if (node.fanins.empty()) {
      ++s.constants;
    } else {
      ++s.luts;
    }
  }
  for (const Register& ff : registers_) {
    if (ff.en.valid()) ++s.with_en;
    if (ff.sync_ctrl.valid()) ++s.with_sync;
    if (ff.async_ctrl.valid()) ++s.with_async;
  }
  return s;
}

}  // namespace mcrt

// Graphviz export of netlists for visual debugging.
//
// Renders combinational nodes as boxes, registers as double octagons
// annotated with their class-relevant controls and reset values, and I/O
// as plain ellipses. `dot -Tsvg circuit.dot -o circuit.svg` gives the
// before/after retiming pictures that make register moves reviewable.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace mcrt {

void write_dot(const Netlist& netlist, std::ostream& out,
               const std::string& graph_name = "mcrt");
std::string write_dot_string(const Netlist& netlist,
                             const std::string& graph_name = "mcrt");
bool write_dot_file(const Netlist& netlist, const std::string& path,
                    const std::string& graph_name = "mcrt");

}  // namespace mcrt

#include "netlist/dot_export.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "base/strings.h"

namespace mcrt {
namespace {

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Stable node identifier for the driver of a net.
std::string driver_id(const Netlist& netlist, NetId net) {
  const NetDriver& driver = netlist.net(net).driver;
  if (driver.kind == NetDriver::Kind::kRegister) {
    return str_format("ff%u", driver.index);
  }
  return str_format("n%u", driver.index);
}

}  // namespace

void write_dot(const Netlist& netlist, std::ostream& out,
               const std::string& graph_name) {
  out << "digraph \"" << escape(graph_name) << "\" {\n";
  out << "  rankdir=LR;\n  node [fontsize=10];\n";
  for (std::size_t i = 0; i < netlist.node_count(); ++i) {
    const Node& node = netlist.nodes()[i];
    const std::string id = str_format("n%zu", i);
    switch (node.kind) {
      case NodeKind::kInput:
        out << "  " << id << " [shape=ellipse,label=\""
            << escape(node.name) << "\",style=filled,fillcolor=lightblue];\n";
        break;
      case NodeKind::kOutput:
        out << "  " << id << " [shape=ellipse,label=\""
            << escape(node.name) << "\",style=filled,fillcolor=lightgray];\n";
        break;
      case NodeKind::kLut:
        out << "  " << id << " [shape=box,label=\"" << escape(node.name)
            << "\\n" << node.function.to_string() << "\"];\n";
        break;
    }
  }
  for (std::size_t r = 0; r < netlist.register_count(); ++r) {
    const Register& ff = netlist.registers()[r];
    std::string label = ff.name;
    if (ff.en.valid()) label += "\\nen=" + netlist.net(ff.en).name;
    if (ff.sync_ctrl.valid()) {
      label += str_format("\\nsync=%s:%c",
                          netlist.net(ff.sync_ctrl).name.c_str(),
                          reset_val_char(ff.sync_val));
    }
    if (ff.async_ctrl.valid()) {
      label += str_format("\\nasync=%s:%c",
                          netlist.net(ff.async_ctrl).name.c_str(),
                          reset_val_char(ff.async_val));
    }
    out << "  " << str_format("ff%zu", r)
        << " [shape=doubleoctagon,label=\"" << escape(label)
        << "\",style=filled,fillcolor=lightyellow];\n";
  }
  // Data edges.
  for (std::size_t i = 0; i < netlist.node_count(); ++i) {
    const Node& node = netlist.nodes()[i];
    for (const NetId fanin : node.fanins) {
      out << "  " << driver_id(netlist, fanin) << " -> "
          << str_format("n%zu", i) << ";\n";
    }
  }
  for (std::size_t r = 0; r < netlist.register_count(); ++r) {
    const Register& ff = netlist.registers()[r];
    out << "  " << driver_id(netlist, ff.d) << " -> "
        << str_format("ff%zu", r) << ";\n";
  }
  out << "}\n";
}

std::string write_dot_string(const Netlist& netlist,
                             const std::string& graph_name) {
  std::ostringstream out;
  write_dot(netlist, out, graph_name);
  return out.str();
}

bool write_dot_file(const Netlist& netlist, const std::string& path,
                    const std::string& graph_name) {
  std::ofstream out(path);
  if (!out) return false;
  write_dot(netlist, out, graph_name);
  return out.good();
}

}  // namespace mcrt

// Window extraction: lifting one partition region into a self-contained
// retiming sub-problem (windowed retiming step 2; docs/WINDOWING.md).
//
// The windowed flow solves on the *lowered* retiming graph — the basic
// graph with per-vertex §4.1 bounds that mc-retiming reduces to — because
// those bounds are the whole composition argument: any labeling of a
// subset of vertices that honors its per-vertex bounds, combined with
// r = 0 outside, is a legal multiple-class retiming of the full graph.
// Crossing-edge legality is immediate (w_r(e_uv) = w + r(v) - r(u) is the
// same expression whether u sits in the window or is a frozen proxy), and
// the bounds are per-vertex, so they do not couple windows at all.
//
// Each crossing edge is re-anchored at a *proxy* vertex pinned to r = 0:
//  - an in-proxy for outside source u carries delay arrival(u), the
//    longest zero-weight-path delay ending at u in the frozen full graph;
//  - an out-proxy for outside sink x carries delay required(x), the
//    longest zero-weight-path delay starting at x.
// With those delays the window's period constraints see the frozen
// outside's combinational context almost exactly; the one approximation
// (paths that leave the window and re-enter it through zero-weight
// outside segments are accounted from both cut points independently, and
// arrival/required include stale in-window continuations) only ever makes
// the window solver conservative — stitched solutions are re-checked and
// re-measured on the full graph, never trusted from the window view.
#pragma once

#include <cstdint>
#include <vector>

#include "retime/retime_graph.h"
#include "window/partition.h"

namespace mcrt {

/// Longest zero-weight-path delays over the full graph's *current* edge
/// weights (recomputed per stage: stage-one weights are the input's,
/// refinement stages see the reweighted graph).
struct BoundaryTiming {
  std::vector<std::int64_t> arrival;   ///< ending at v, inclusive of d(v)
  std::vector<std::int64_t> required;  ///< starting at v, inclusive of d(v)
};

/// O(V + E): Kahn topological order over the zero-weight edge subgraph
/// (acyclic in any legal retiming graph; throws std::runtime_error on a
/// zero-weight cycle) plus two longest-path sweeps.
BoundaryTiming compute_boundary_timing(const RetimeGraph& graph);

/// One window lifted into a standalone bounded retiming problem.
struct WindowProblem {
  RetimeGraph graph;  ///< local host at 0, then members, then proxies
  /// Local id -> global id for every non-host local vertex; proxies map to
  /// the outside endpoint they stand for.
  std::vector<std::uint32_t> to_global;
  std::vector<char> is_proxy;  ///< parallel to to_global (local id order)
  std::size_t member_count = 0;

  [[nodiscard]] std::uint32_t global_of(std::uint32_t local) const {
    return to_global[local - 1];
  }
  [[nodiscard]] bool proxy(std::uint32_t local) const {
    return is_proxy[local - 1] != 0;
  }
};

/// Lifts window `w` of `partition` out of `global`. Member vertices keep
/// their delay and bounds; crossing edges land on proxies pinned [0, 0]
/// with BoundaryTiming delays. Deterministic: members ascend, proxies
/// follow in first-use order of the members' edge lists.
WindowProblem extract_window(const RetimeGraph& global,
                             const WindowPartition& partition, std::size_t w,
                             const BoundaryTiming& timing);

/// Scatters a window solution into the global label vector: member labels
/// copy through, proxies (pinned 0) are skipped. `local_r` is indexed by
/// local vertex id, `global_r` by global id.
void stitch_window_labels(const WindowProblem& problem,
                          const std::vector<std::int64_t>& local_r,
                          std::vector<std::int64_t>& global_r);

}  // namespace mcrt

#include "window/windowed_retime.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>

#include "mcretime/lower.h"
#include "mcretime/rebuild.h"
#include "retime/minarea.h"
#include "retime/minperiod.h"
#include "retime/period_constraints.h"
#include "window/extract.h"

namespace mcrt {
namespace {

using BoundOverlay = std::map<std::uint32_t, std::int64_t>;

/// Solves one window for minimum period. Robust to bounds that exclude
/// r = 0 (delta-space justification retries tighten past the current
/// label): when minperiod's fallback labeling is illegal under the
/// bounds, walk the candidate periods upward — any achievable period is
/// an exact path delay, so the scan is exhaustive. nullopt = the window
/// alone cannot satisfy its bounds (caller escalates).
std::optional<std::vector<std::int64_t>> solve_window(
    const RetimeGraph& local, const CancelToken* cancel) {
  const RetimeSolution sol = minperiod_retime(local, FeasImpl::kCsr, cancel);
  if (!sol.feasible) return std::nullopt;
  if (local.check_legal(sol.r).empty()) return sol.r;
  for (const std::int64_t phi : candidate_periods(local, cancel)) {
    if (phi < sol.period) continue;
    if (auto r = bounded_feasible(local, phi, nullptr, cancel)) return r;
  }
  return std::nullopt;
}

std::int64_t shift_lower(std::int64_t bound, std::int64_t r) {
  return bound <= -RetimeGraph::kNoBound ? bound : bound - r;
}
std::int64_t shift_upper(std::int64_t bound, std::int64_t r) {
  return bound >= RetimeGraph::kNoBound ? bound : bound - r;
}

/// Copy of `global` with `r` applied to the weights and the bounds moved
/// into delta space (a local label d stands for the global label
/// r[v] + d), intersected with the justification-retry overlays, which
/// live in global label space.
RetimeGraph reweighted(const RetimeGraph& global,
                       const std::vector<std::int64_t>& r,
                       const BoundOverlay& tight_lower,
                       const BoundOverlay& tight_upper) {
  RetimeGraph g = global;
  g.apply(r);
  for (std::size_t v = 1; v < g.vertex_count(); ++v) {
    const VertexId vid{static_cast<std::uint32_t>(v)};
    std::int64_t lo = global.lower_bound(vid);
    std::int64_t hi = global.upper_bound(vid);
    if (const auto it = tight_lower.find(static_cast<std::uint32_t>(v));
        it != tight_lower.end()) {
      lo = std::max(lo, it->second);
    }
    if (const auto it = tight_upper.find(static_cast<std::uint32_t>(v));
        it != tight_upper.end()) {
      hi = std::min(hi, it->second);
    }
    g.set_bounds(vid, shift_lower(lo, r[v]), shift_upper(hi, r[v]));
  }
  return g;
}

}  // namespace

WindowedRetimeResult retime_windowed(const Netlist& input,
                                     const WindowedRetimeOptions& options) {
  WindowedRetimeResult result;
  McRetimeStats& stats = result.stats;
  WindowedRetimeStats& wstats = result.window_stats;
  stats.registers_before = input.register_count();
  const auto say = [&](const std::string& line) {
    if (options.progress) options.progress(line);
  };

  // --- Steps 1-3 (shared with the monolithic flow) -------------------------
  McGraph mcg;
  McBounds bounds;
  {
    ScopedPhase phase(stats.profile, "graph");
    McPrepared prepared = prepare_mc_graph(input, options.base);
    mcg = std::move(prepared.graph);
    bounds = std::move(prepared.bounds);
    stats.num_classes = prepared.num_classes;
    stats.possible_steps = prepared.possible_steps;
    stats.separators = prepared.separators;
  }
  const RetimeGraph global = lower_to_retime_graph(mcg, bounds);
  stats.period_before = global.period();
  const std::size_t n = global.vertex_count();

  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(options.jobs);
    pool = owned_pool.get();
  }

  // --- Partition -----------------------------------------------------------
  WindowPartition part;
  {
    ScopedPhase phase(stats.profile, "partition");
    part = partition_mc_graph(mcg, options.partition);
  }
  wstats.windows = part.window_count();
  wstats.cut_edges = part.cut_edges;
  wstats.cut_registers = part.cut_registers;
  wstats.split_class_edges = part.split_class_edges;
  say("windows: " + std::to_string(part.window_count()) + " (cut edges " +
      std::to_string(part.cut_edges) + ", cut registers " +
      std::to_string(part.cut_registers) + ", split-class edges " +
      std::to_string(part.split_class_edges) + ")");

  // Runs one parallel sweep over `sweep_part`'s windows of `g` (a graph in
  // delta space), accumulating per-window labels into `delta` (disjoint
  // slices, so concurrent writes are race-free). Timed-out or infeasible
  // windows keep delta = 0, which `g`'s bounds admit outside retries.
  std::atomic<std::size_t> stage_timeouts{0};
  const auto run_windows = [&](const RetimeGraph& g,
                               const WindowPartition& sweep_part,
                               std::vector<std::int64_t>& delta,
                               bool minarea_mode, std::int64_t phi_target) {
    const BoundaryTiming timing = compute_boundary_timing(g);
    TaskGroup group(*pool);
    for (std::size_t w = 0; w < sweep_part.window_count(); ++w) {
      group.run([&, w] {
        CancelToken token(options.base.cancel);
        if (options.window_timeout_seconds > 0) {
          token.set_timeout(options.window_timeout_seconds);
        }
        try {
          const WindowProblem prob = extract_window(g, sweep_part, w, timing);
          if (minarea_mode) {
            // The proxy approximation can push the local period above the
            // global target; relaxing to the local current period keeps
            // the solve feasible (delta 0 qualifies) and the global
            // acceptance check below still gates on the real phi.
            const std::int64_t phi_local =
                std::max(phi_target, prob.graph.period());
            const MinAreaResult ma =
                minarea_retime(prob.graph, phi_local, nullptr, &token);
            if (ma.feasible && prob.graph.check_legal(ma.r).empty()) {
              stitch_window_labels(prob, ma.r, delta);
            }
          } else if (auto r = solve_window(prob.graph, &token)) {
            stitch_window_labels(prob, *r, delta);
          }
        } catch (const CancelledError&) {
          // A per-window deadline degrades that window to delta = 0; an
          // outer cancellation aborts the whole flow.
          if (cancel_requested(options.base.cancel) != StopReason::kNone) {
            throw;
          }
          stage_timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    group.wait();
  };

  // --- Stage 1: independent window solves ----------------------------------
  std::vector<std::int64_t> labels(n, 0);
  std::int64_t phi = stats.period_before;
  {
    ScopedPhase phase(stats.profile, "retime");
    run_windows(global, part, labels, /*minarea_mode=*/false, 0);
    const std::string legal = global.check_legal(labels);
    if (!legal.empty()) {
      result.error = "windowed retiming produced illegal labels: " + legal;
      return result;
    }
    phi = global.period(labels);
    say("stage 1: period " + std::to_string(stats.period_before) + " -> " +
        std::to_string(phi));

    // --- Boundary refinement: shifted windows over the reweighted graph ---
    for (std::size_t round = 1; round <= options.refine_rounds; ++round) {
      poll_cancel(options.base.cancel);
      ++wstats.refine_rounds_run;
      const RetimeGraph rg = reweighted(global, labels, {}, {});
      PartitionOptions shifted = options.partition;
      shifted.seed = options.partition.seed + round;
      const WindowPartition repart = partition_mc_graph(mcg, shifted);
      std::vector<std::int64_t> delta(n, 0);
      run_windows(rg, repart, delta, /*minarea_mode=*/false, 0);
      std::vector<std::int64_t> candidate = labels;
      for (std::size_t v = 0; v < n; ++v) candidate[v] += delta[v];
      if (global.check_legal(candidate).empty()) {
        const std::int64_t refined = global.period(candidate);
        if (refined < phi) {
          labels = std::move(candidate);
          phi = refined;
          ++wstats.refine_accepted;
        }
      }
      say("refine round " + std::to_string(round) + ": period " +
          std::to_string(phi));
    }

    // --- Per-window min-area at the achieved period ------------------------
    if (options.base.objective ==
        McRetimeOptions::Objective::kMinAreaMinPeriod &&
        part.window_count() > 0) {
      poll_cancel(options.base.cancel);
      const RetimeGraph rg = reweighted(global, labels, {}, {});
      std::vector<std::int64_t> delta(n, 0);
      run_windows(rg, part, delta, /*minarea_mode=*/true, phi);
      std::vector<std::int64_t> candidate = labels;
      for (std::size_t v = 0; v < n; ++v) candidate[v] += delta[v];
      if (global.check_legal(candidate).empty() &&
          global.period(candidate) <= phi &&
          global.shared_register_area(candidate) <
              global.shared_register_area(labels)) {
        labels = std::move(candidate);
        wstats.minarea_applied = true;
      }
      say(std::string("min-area sweep: ") +
          (wstats.minarea_applied ? "applied" : "kept prior labels"));
    }
  }
  wstats.window_timeouts = stage_timeouts.load(std::memory_order_relaxed);
  stats.period_after = phi;
  if (options.solve_only) {
    result.labels = std::move(labels);
    stats.register_estimate = global.shared_register_area(result.labels);
    result.success = true;
    return result;
  }

  // --- Implement, with windowed justification-failure retries --------------
  BoundOverlay tightened_upper;
  BoundOverlay tightened_lower;
  McGraph relocated;
  bool implemented = false;
  for (std::size_t attempt = 0; attempt < options.base.max_attempts;
       ++attempt) {
    poll_cancel(options.base.cancel);
    stats.attempts = attempt + 1;
    std::uint32_t failed = 0;
    {
      ScopedPhase phase(stats.profile, "implement");
      relocated = mcg;
      const RelocateResult relocation =
          relocate_registers(relocated, input, labels,
                             options.base.global_justification_budget);
      stats.relocate = relocation.stats;
      if (relocation.success) {
        implemented = true;
        break;
      }
      const std::uint32_t v = relocation.failed_vertex.value();
      failed = v;
      if (relocation.failed_backward) {
        const auto it = tightened_upper.find(v);
        if (it != tightened_upper.end() && it->second <= relocation.achieved) {
          result.error = "justification failure could not be bounded away: " +
                         relocation.failure_reason;
          return result;
        }
        tightened_upper[v] = relocation.achieved;
      } else {
        const auto it = tightened_lower.find(v);
        if (it != tightened_lower.end() && it->second >= relocation.achieved) {
          result.error = "scheduling failure could not be bounded away: " +
                         relocation.failure_reason;
          return result;
        }
        tightened_lower[v] = relocation.achieved;
      }
    }
    // Re-solve only the window owning the offending vertex, in delta space
    // with the overlay applied; escalate to a full-graph re-solve when the
    // window alone cannot absorb the new bound (overlays admit the global
    // label 0, so the full problem is always feasible).
    ScopedPhase phase(stats.profile, "retime");
    bool resolved = false;
    const std::uint32_t w = part.window_of[failed];
    if (w != WindowPartition::kUnassigned) {
      const RetimeGraph rg =
          reweighted(global, labels, tightened_lower, tightened_upper);
      const BoundaryTiming timing = compute_boundary_timing(rg);
      const WindowProblem prob = extract_window(rg, part, w, timing);
      if (auto r = solve_window(prob.graph, options.base.cancel)) {
        std::vector<std::int64_t> delta(n, 0);
        stitch_window_labels(prob, *r, delta);
        std::vector<std::int64_t> candidate = labels;
        for (std::size_t i = 0; i < n; ++i) candidate[i] += delta[i];
        if (global.check_legal(candidate).empty()) {
          labels = std::move(candidate);
          resolved = true;
          ++wstats.window_resolves;
        }
      }
    }
    if (!resolved) {
      ++wstats.global_fallbacks;
      RetimeGraph g = global;
      for (const auto& [vv, hi] : tightened_upper) {
        const VertexId vid{vv};
        g.set_bounds(vid, g.lower_bound(vid),
                     std::min(hi, g.upper_bound(vid)));
      }
      for (const auto& [vv, lo] : tightened_lower) {
        const VertexId vid{vv};
        g.set_bounds(vid, std::max(lo, g.lower_bound(vid)),
                     g.upper_bound(vid));
      }
      const RetimeSolution sol =
          minperiod_retime(g, FeasImpl::kCsr, options.base.cancel);
      if (!sol.feasible || !g.check_legal(sol.r).empty()) {
        result.error = "windowed retiming: global fallback infeasible";
        return result;
      }
      labels = sol.r;
    }
    phi = global.period(labels);
    stats.period_after = phi;
    say("retry " + std::to_string(attempt + 1) + ": period " +
        std::to_string(phi));
  }
  if (!implemented) {
    result.error = "relocation failed after max attempts";
    return result;
  }

  for (std::size_t v = 1; v < mcg.vertex_count(); ++v) {
    if (mcg.kind(VertexId{static_cast<std::uint32_t>(v)}) ==
        McVertexKind::kGate) {
      stats.moved_layers += static_cast<std::size_t>(std::abs(labels[v]));
    }
  }
  stats.register_estimate = global.shared_register_area(labels);

  {
    ScopedPhase phase(stats.profile, "implement");
    result.netlist = rebuild_netlist(relocated, input);
  }
  stats.registers_after = result.netlist.register_count();
  result.labels = std::move(labels);
  result.success = true;
  return result;
}

}  // namespace mcrt

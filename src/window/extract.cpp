#include "window/extract.h"

#include <stdexcept>
#include <unordered_map>

namespace mcrt {

BoundaryTiming compute_boundary_timing(const RetimeGraph& graph) {
  const Digraph& g = graph.digraph();
  const std::size_t n = graph.vertex_count();
  BoundaryTiming timing;
  timing.arrival.resize(n);
  timing.required.resize(n);

  // Kahn over the zero-weight edge subgraph. As in RetimeGraph::period,
  // the host is sink-only: its out-edges (host -> PI) would otherwise
  // close zero-weight cycles through the environment.
  const auto zero = [&](EdgeId e) {
    return graph.weight(e) == 0 && g.from(e).index() != 0;
  };
  std::vector<std::uint32_t> indeg(n, 0);
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const EdgeId eid{static_cast<std::uint32_t>(e)};
    if (zero(eid)) ++indeg[g.to(eid).index()];
  }
  std::vector<std::uint32_t> order;
  order.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) order.push_back(v);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const VertexId vid{order[head]};
    for (const EdgeId e : g.out_edges(vid)) {
      if (!zero(e)) continue;
      const std::uint32_t to = g.to(e).index();
      if (--indeg[to] == 0) order.push_back(to);
    }
  }
  if (order.size() != n) {
    throw std::runtime_error(
        "boundary timing: zero-weight cycle in retiming graph");
  }

  for (std::uint32_t v = 0; v < n; ++v) {
    timing.arrival[v] = graph.delay(VertexId{v});
    timing.required[v] = graph.delay(VertexId{v});
  }
  for (const std::uint32_t v : order) {
    const VertexId vid{v};
    for (const EdgeId e : g.out_edges(vid)) {
      if (!zero(e)) continue;
      const std::uint32_t to = g.to(e).index();
      timing.arrival[to] =
          std::max(timing.arrival[to],
                   timing.arrival[v] + graph.delay(VertexId{to}));
    }
  }
  for (std::size_t head = order.size(); head-- > 0;) {
    const std::uint32_t v = order[head];
    const VertexId vid{v};
    for (const EdgeId e : g.out_edges(vid)) {
      if (!zero(e)) continue;
      const std::uint32_t to = g.to(e).index();
      timing.required[v] =
          std::max(timing.required[v],
                   graph.delay(vid) + timing.required[to]);
    }
  }
  return timing;
}

WindowProblem extract_window(const RetimeGraph& global,
                             const WindowPartition& partition, std::size_t w,
                             const BoundaryTiming& timing) {
  WindowProblem problem;
  const Digraph& g = global.digraph();
  const std::vector<std::uint32_t>& members = partition.windows[w];
  problem.member_count = members.size();
  std::size_t edge_estimate = 0;
  for (const std::uint32_t m : members) {
    edge_estimate += g.out_degree(VertexId{m}) + g.in_degree(VertexId{m});
  }
  problem.graph.reserve(members.size() + edge_estimate / 2 + 1, edge_estimate);
  problem.to_global.reserve(members.size() + 8);
  problem.is_proxy.reserve(members.size() + 8);

  std::unordered_map<std::uint32_t, VertexId> local_of;
  local_of.reserve(members.size() * 2);
  for (const std::uint32_t m : members) {
    const VertexId gid{m};
    const VertexId lid = problem.graph.add_vertex(global.delay(gid));
    problem.graph.set_bounds(lid, global.lower_bound(gid),
                             global.upper_bound(gid));
    problem.to_global.push_back(m);
    problem.is_proxy.push_back(0);
    local_of.emplace(m, lid);
  }

  std::unordered_map<std::uint32_t, VertexId> in_proxy;
  std::unordered_map<std::uint32_t, VertexId> out_proxy;
  const auto proxy_for = [&](std::unordered_map<std::uint32_t, VertexId>& map,
                             std::uint32_t gid, std::int64_t delay) {
    const auto it = map.find(gid);
    if (it != map.end()) return it->second;
    const VertexId lid = problem.graph.add_vertex(delay);
    problem.graph.set_bounds(lid, 0, 0);
    problem.to_global.push_back(gid);
    problem.is_proxy.push_back(1);
    map.emplace(gid, lid);
    return lid;
  };

  const std::uint32_t self = static_cast<std::uint32_t>(w);
  for (const std::uint32_t m : members) {
    const VertexId gid{m};
    const VertexId lid = local_of.at(m);
    // Every internal edge is emitted exactly once, from its source member.
    for (const EdgeId e : g.out_edges(gid)) {
      const std::uint32_t to = g.to(e).index();
      if (partition.window_of[to] == self) {
        problem.graph.add_edge(lid, local_of.at(to), global.weight(e));
      } else {
        problem.graph.add_edge(
            lid, proxy_for(out_proxy, to, timing.required[to]),
            global.weight(e));
      }
    }
    for (const EdgeId e : g.in_edges(gid)) {
      const std::uint32_t from = g.from(e).index();
      if (partition.window_of[from] == self) continue;
      problem.graph.add_edge(proxy_for(in_proxy, from, timing.arrival[from]),
                             lid, global.weight(e));
    }
  }
  return problem;
}

void stitch_window_labels(const WindowProblem& problem,
                          const std::vector<std::int64_t>& local_r,
                          std::vector<std::int64_t>& global_r) {
  for (std::uint32_t local = 1; local < problem.graph.vertex_count();
       ++local) {
    if (problem.proxy(local)) continue;
    global_r[problem.global_of(local)] = local_r[local];
  }
}

}  // namespace mcrt

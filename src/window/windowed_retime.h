// Windowed multiple-class retiming: partition, solve per window in
// parallel, stitch, refine (docs/WINDOWING.md).
//
// The monolithic flow's period-constraint generation runs a Dijkstra per
// vertex, which is quadratic-ish and caps it at Table-1 scale. The
// windowed flow prepares the same mc-graph and §4.1 bounds once, lowers
// to the bounded basic retiming graph, partitions the movable vertices
// into bounded-size windows (partition.h), and solves each window as an
// independent bounded minperiod problem with its boundary frozen at
// r = 0 (extract.h). Because the bounds are per-vertex, the stitched
// labels are a legal multiple-class retiming by construction; the flow
// still re-checks legality and re-measures the period on the full graph
// before trusting them.
//
// Quality is recovered in two optional sweeps: boundary refinement
// re-partitions with rotated seeds on the reweighted graph (windows now
// straddle the previous cuts) and keeps a round's delta only when the
// *global* period improves; per-window min-area then reduces registers at
// the achieved period, again accepted only if the global period holds.
//
// Implementation (register relocation with reset-state justification) is
// shared with the monolithic flow; a justification failure tightens the
// bound at the offending vertex and re-solves only the window that owns
// it, falling back to a full-graph re-solve if the window alone cannot
// absorb the new bound.
#pragma once

#include <functional>
#include <string>

#include "base/thread_pool.h"
#include "mcretime/mc_retime.h"
#include "window/partition.h"

namespace mcrt {

struct WindowedRetimeOptions {
  /// Objective, class options, sharing, cancellation, relocation budgets —
  /// the same knobs as the monolithic flow.
  McRetimeOptions base;
  PartitionOptions partition;
  /// Worker threads for the per-window solves; 0 = one per hardware
  /// thread. Results are deterministic in `jobs` (windows write disjoint
  /// label slices; stitching order is fixed).
  std::size_t jobs = 0;
  /// Optional external pool (bulk flows share one); owns its own when null.
  ThreadPool* pool = nullptr;
  /// Boundary-refinement sweeps after the first stitch. Each re-partitions
  /// with a rotated seed and keeps its delta only on global improvement.
  std::size_t refine_rounds = 1;
  /// Per-window wall-clock cap in seconds; 0 = none. A timed-out window
  /// falls back to r = 0 (always legal) and is counted in the stats.
  double window_timeout_seconds = 0.0;
  /// Progress callback (may be empty): one line per stage, suitable for a
  /// diagnostics sink. Called from the coordinating thread only.
  std::function<void(const std::string&)> progress;
  /// Stop after the label solve (stage 1, refinement, min-area sweep):
  /// `labels` and the solve-side stats are filled but relocation and the
  /// netlist rebuild are skipped. Benches use this to compare the solver
  /// against the monolithic one without the shared implementation cost.
  bool solve_only = false;
};

struct WindowedRetimeStats {
  std::size_t windows = 0;
  std::size_t cut_edges = 0;
  std::size_t cut_registers = 0;
  std::size_t split_class_edges = 0;
  std::size_t window_timeouts = 0;
  std::size_t refine_rounds_run = 0;
  std::size_t refine_accepted = 0;   ///< rounds whose delta improved phi
  bool minarea_applied = false;      ///< min-area sweep kept (phi held)
  std::size_t window_resolves = 0;   ///< single-window justification retries
  std::size_t global_fallbacks = 0;  ///< retries escalated to full graph
};

struct WindowedRetimeResult {
  bool success = false;
  std::string error;
  Netlist netlist;  ///< empty when options.solve_only is set
  /// Final per-vertex labels on the lowered global graph (index = mc-graph
  /// vertex id, [0] = host). Legal by construction; callers can re-check
  /// with lower_to_retime_graph(...).check_legal(labels).
  std::vector<std::int64_t> labels;
  /// Same shape as the monolithic flow's stats, for differential reporting
  /// (period_before/after, classes, steps, relocation, phase profile with
  /// buckets "graph" / "partition" / "retime" / "implement").
  McRetimeStats stats;
  WindowedRetimeStats window_stats;
};

WindowedRetimeResult retime_windowed(const Netlist& input,
                                     const WindowedRetimeOptions& options);

}  // namespace mcrt

// Bounded-size, register-class-aware partitioning of the mc-graph
// (windowed retiming step 1; docs/WINDOWING.md).
//
// The monolithic solver's quadratic parts (the per-source W/D Dijkstras of
// period-constraint generation) cap it at Table-1 scale, so the windowed
// flow clusters the movable vertices (kGate, kSeparator) into regions of
// bounded size and solves each region as an independent retiming problem
// with its boundary frozen. The partitioner is a seeded multi-source BFS
// growth in the mockturtle windowing idiom:
//
//  - seeds are spread evenly over the movable vertices (a seed-derived
//    rotation makes successive rounds produce *shifted* partitions, which
//    is what the boundary-refinement sweep exploits: round-k windows
//    straddle round-(k-1) cuts);
//  - regions grow one claim per round-robin turn, popping the
//    best-scoring frontier vertex: score rewards edges into the region
//    and, when `class_aware`, additionally rewards registers whose class
//    (EN / reset combination) is already present inside, so register
//    chains of one class — exactly the structures multiple-class steps
//    move together — are absorbed whole instead of being cut;
//  - pinned vertices (host, I/O, control taps) stay unassigned: they are
//    frozen at r = 0 by the §4.1 bounds and belong to every boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "mcretime/mcgraph.h"

namespace mcrt {

struct PartitionOptions {
  /// Movable-vertex capacity per window. The default keeps the per-window
  /// W/D constraint generation (the quadratic bit) comfortably cheap.
  std::size_t max_window = 1024;
  /// Fixed window count; 0 derives ceil(movable / max_window).
  std::uint64_t window_count = 0;
  /// Deterministic seed; distinct seeds rotate the evenly-spaced BFS seed
  /// positions, yielding shifted-but-equivalent partitions.
  std::uint64_t seed = 1;
  /// Score frontier vertices by register-class affinity (off = pure edge
  /// locality; the ablation knob for the class-aware cut scoring).
  bool class_aware = true;
};

struct WindowPartition {
  static constexpr std::uint32_t kUnassigned = 0xffffffffu;

  /// Per mc-graph vertex: owning window, or kUnassigned for pinned
  /// vertices (host, kInput/kOutput/kControlTap).
  std::vector<std::uint32_t> window_of;
  /// Member vertex ids per window, ascending. Every movable vertex is in
  /// exactly one window.
  std::vector<std::vector<std::uint32_t>> windows;

  // --- cut quality (diagnostics + bench columns) ---------------------------
  std::size_t cut_edges = 0;      ///< edges spanning two distinct windows
  std::size_t cut_registers = 0;  ///< registers sitting on those edges
  /// Cut edges carrying at least one register of a class that is present on
  /// both sides — a class frontier the cut split (the quantity the
  /// class-aware scoring minimizes).
  std::size_t split_class_edges = 0;

  [[nodiscard]] std::size_t window_count() const { return windows.size(); }
};

/// Partitions `graph`'s movable vertices. Deterministic in (graph,
/// options). Never fails: degenerate graphs yield zero or one window.
WindowPartition partition_mc_graph(const McGraph& graph,
                                   const PartitionOptions& options = {});

}  // namespace mcrt

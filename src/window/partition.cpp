#include "window/partition.h"

#include <algorithm>
#include <queue>

namespace mcrt {
namespace {

bool is_movable(const McGraph& graph, std::uint32_t v) {
  const McVertexKind kind = graph.kind(VertexId{v});
  return kind == McVertexKind::kGate || kind == McVertexKind::kSeparator;
}

/// Max-heap entry: score first, then *smaller* vertex id wins ties, so the
/// growth order — and therefore the whole partition — is deterministic.
struct FrontierEntry {
  std::int64_t score;
  std::uint32_t vertex;
  bool operator<(const FrontierEntry& other) const noexcept {
    if (score != other.score) return score < other.score;
    return vertex > other.vertex;
  }
};

/// Grows all windows round-robin, one claim per turn. Entries go stale when
/// a vertex is claimed elsewhere or its score rises (a neighbor joined the
/// window after the push); stale entries are skipped / superseded by fresh
/// pushes, the standard lazy-heap trick, so total work is O(E log E).
class Growth {
 public:
  Growth(const McGraph& graph, std::size_t window_count, std::size_t cap,
         bool class_aware)
      : graph_(graph),
        cap_(cap),
        class_aware_(class_aware),
        owner_(graph.vertex_count(), WindowPartition::kUnassigned),
        frontiers_(window_count),
        members_(window_count),
        has_class_(window_count) {
    const std::size_t classes = graph.classes().class_count();
    for (auto& set : has_class_) set.assign(classes, false);
  }

  void seed(std::size_t window, std::uint32_t vertex) {
    frontiers_[window].push({0, vertex});
  }

  /// Runs the round-robin growth until every frontier is exhausted.
  void run() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t w = 0; w < frontiers_.size(); ++w) {
        if (members_[w].size() >= cap_) continue;
        if (claim_best(w)) progressed = true;
      }
    }
  }

  /// Claims `vertex` for `window` unconditionally (leftover sweep).
  void claim(std::size_t window, std::uint32_t vertex) {
    owner_[vertex] = static_cast<std::uint32_t>(window);
    members_[window].push_back(vertex);
    absorb_classes(window, vertex);
    push_neighbors(window, vertex);
  }

  [[nodiscard]] const std::vector<std::uint32_t>& owner() const {
    return owner_;
  }
  [[nodiscard]] std::size_t smallest_window() const {
    std::size_t best = 0;
    for (std::size_t w = 1; w < members_.size(); ++w) {
      if (members_[w].size() < members_[best].size()) best = w;
    }
    return best;
  }
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> take_members() {
    return std::move(members_);
  }

 private:
  bool claim_best(std::size_t window) {
    auto& frontier = frontiers_[window];
    while (!frontier.empty()) {
      const FrontierEntry entry = frontier.top();
      frontier.pop();
      if (owner_[entry.vertex] != WindowPartition::kUnassigned) continue;
      claim(window, entry.vertex);
      return true;
    }
    return false;
  }

  void absorb_classes(std::size_t window, std::uint32_t vertex) {
    if (!class_aware_) return;
    auto& present = has_class_[window];
    const Digraph& g = graph_.digraph();
    const VertexId vid{vertex};
    for (const EdgeId e : g.in_edges(vid)) {
      for (const McReg& reg : graph_.regs(e)) {
        present[reg.cls.index()] = true;
      }
    }
    for (const EdgeId e : g.out_edges(vid)) {
      for (const McReg& reg : graph_.regs(e)) {
        present[reg.cls.index()] = true;
      }
    }
  }

  void push_neighbors(std::size_t window, std::uint32_t vertex) {
    const Digraph& g = graph_.digraph();
    const VertexId vid{vertex};
    for (const EdgeId e : g.in_edges(vid)) {
      consider(window, g.from(e).value(), e);
    }
    for (const EdgeId e : g.out_edges(vid)) {
      consider(window, g.to(e).value(), e);
    }
  }

  void consider(std::size_t window, std::uint32_t candidate, EdgeId via) {
    if (candidate >= owner_.size()) return;
    if (owner_[candidate] != WindowPartition::kUnassigned) return;
    if (!is_movable(graph_, candidate)) return;
    frontiers_[window].push({score(window, candidate, via), candidate});
  }

  /// Affinity of `candidate` for `window`: +2 per edge already internal,
  /// and when class-aware +3 per register of an in-window class on the
  /// connecting edges — register chains follow their class inside.
  std::int64_t score(std::size_t window, std::uint32_t candidate,
                     EdgeId via) const {
    (void)via;
    const Digraph& g = graph_.digraph();
    const VertexId vid{candidate};
    std::int64_t total = 0;
    const auto tally = [&](EdgeId e, std::uint32_t other) {
      if (owner_[other] != window) return;
      total += 2;
      if (!class_aware_) return;
      for (const McReg& reg : graph_.regs(e)) {
        if (has_class_[window][reg.cls.index()]) total += 3;
      }
    };
    for (const EdgeId e : g.in_edges(vid)) tally(e, g.from(e).value());
    for (const EdgeId e : g.out_edges(vid)) tally(e, g.to(e).value());
    return total;
  }

  const McGraph& graph_;
  std::size_t cap_;
  bool class_aware_;
  std::vector<std::uint32_t> owner_;
  std::vector<std::priority_queue<FrontierEntry>> frontiers_;
  std::vector<std::vector<std::uint32_t>> members_;
  std::vector<std::vector<bool>> has_class_;
};

}  // namespace

WindowPartition partition_mc_graph(const McGraph& graph,
                                   const PartitionOptions& options) {
  WindowPartition result;
  const std::size_t n = graph.vertex_count();
  result.window_of.assign(n, WindowPartition::kUnassigned);

  std::vector<std::uint32_t> movable;
  for (std::size_t v = 0; v < n; ++v) {
    if (is_movable(graph, static_cast<std::uint32_t>(v))) {
      movable.push_back(static_cast<std::uint32_t>(v));
    }
  }
  if (movable.empty()) return result;

  const std::size_t cap = std::max<std::size_t>(options.max_window, 1);
  std::size_t window_count =
      options.window_count > 0
          ? static_cast<std::size_t>(options.window_count)
          : (movable.size() + cap - 1) / cap;
  window_count = std::min(window_count, movable.size());
  window_count = std::max<std::size_t>(window_count, 1);
  // With a fixed window count, capacity follows from the count (plus slack
  // so the last claims are not forced into far-away windows).
  const std::size_t effective_cap =
      options.window_count > 0
          ? ((movable.size() + window_count - 1) / window_count) +
                std::max<std::size_t>(movable.size() / (8 * window_count), 1)
          : cap;

  Growth growth(graph, window_count, effective_cap, options.class_aware);

  // Evenly spaced seeds over the movable list (which follows netlist
  // construction order, a strong locality signal), rotated by the seed so
  // refinement rounds get shifted partitions.
  const std::size_t stride = movable.size() / window_count;
  const std::size_t rotation =
      stride > 1 ? static_cast<std::size_t>(
                       (options.seed * 0x9e3779b97f4a7c15ull) % stride)
                 : 0;
  for (std::size_t w = 0; w < window_count; ++w) {
    growth.seed(w, movable[(w * stride + rotation) % movable.size()]);
  }
  growth.run();

  // Leftovers (disconnected pockets, capacity overflow): sweep in id order,
  // claiming each for the currently smallest window and letting BFS absorb
  // its connected pocket before the next sweep step.
  for (const std::uint32_t v : movable) {
    if (growth.owner()[v] != WindowPartition::kUnassigned) continue;
    growth.claim(growth.smallest_window(), v);
    growth.run();
  }
  std::vector<std::vector<std::uint32_t>> members = growth.take_members();

  result.window_of = growth.owner();
  result.windows.resize(window_count);
  for (std::size_t w = 0; w < window_count; ++w) {
    result.windows[w] = std::move(members[w]);
    std::sort(result.windows[w].begin(), result.windows[w].end());
  }
  // Drop empty windows (fixed counts larger than the movable set).
  result.windows.erase(
      std::remove_if(result.windows.begin(), result.windows.end(),
                     [](const auto& w) { return w.empty(); }),
      result.windows.end());
  // Renumber window_of after the erase.
  std::fill(result.window_of.begin(), result.window_of.end(),
            WindowPartition::kUnassigned);
  for (std::size_t w = 0; w < result.windows.size(); ++w) {
    for (const std::uint32_t v : result.windows[w]) {
      result.window_of[v] = static_cast<std::uint32_t>(w);
    }
  }

  // --- cut statistics ------------------------------------------------------
  const Digraph& g = graph.digraph();
  const std::size_t classes = graph.classes().class_count();
  // Class presence per (final) window, for split-frontier accounting.
  std::vector<std::vector<bool>> has_class(result.windows.size());
  for (auto& set : has_class) set.assign(classes, false);
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const EdgeId eid{static_cast<std::uint32_t>(e)};
    for (const std::uint32_t end :
         {g.from(eid).value(), g.to(eid).value()}) {
      const std::uint32_t w = result.window_of[end];
      if (w == WindowPartition::kUnassigned) continue;
      for (const McReg& reg : graph.regs(eid)) {
        has_class[w][reg.cls.index()] = true;
      }
    }
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const EdgeId eid{static_cast<std::uint32_t>(e)};
    const std::uint32_t wf = result.window_of[g.from(eid).value()];
    const std::uint32_t wt = result.window_of[g.to(eid).value()];
    if (wf == wt || wf == WindowPartition::kUnassigned ||
        wt == WindowPartition::kUnassigned) {
      continue;
    }
    ++result.cut_edges;
    result.cut_registers += graph.regs(eid).size();
    for (const McReg& reg : graph.regs(eid)) {
      if (has_class[wf][reg.cls.index()] && has_class[wt][reg.cls.index()]) {
        ++result.split_class_edges;
        break;
      }
    }
  }
  return result;
}

}  // namespace mcrt

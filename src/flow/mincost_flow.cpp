#include "flow/mincost_flow.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace mcrt {

MinCostFlow::MinCostFlow(std::size_t node_count)
    : head_(node_count), demand_(node_count, 0) {}

std::size_t MinCostFlow::add_arc(std::uint32_t from, std::uint32_t to,
                                 std::int64_t cap, std::int64_t cost) {
  assert(from < head_.size() && to < head_.size() && cap >= 0);
  const std::size_t idx = arcs_.size();
  arcs_.push_back({to, cap, cost});
  arcs_.push_back({from, 0, -cost});
  initial_cap_.push_back(cap);
  initial_cap_.push_back(0);
  head_[from].push_back(static_cast<std::uint32_t>(idx));
  head_[to].push_back(static_cast<std::uint32_t>(idx + 1));
  return idx;
}

void MinCostFlow::set_demand(std::uint32_t node, std::int64_t demand) {
  demand_[node] = demand;
}

std::optional<MinCostFlow::Solution> MinCostFlow::solve() {
  const std::size_t n = head_.size();
  constexpr std::int64_t kUnreached = INT64_MAX / 2;

  // Add a super-source s and super-sink t connecting supplies to demands so
  // a single-source SSP loop can route everything.
  const auto s = static_cast<std::uint32_t>(n);
  const auto t = static_cast<std::uint32_t>(n + 1);
  head_.resize(n + 2);
  std::int64_t total_demand = 0;
  std::int64_t total_supply = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (demand_[v] > 0) {
      add_arc(v, t, demand_[v], 0);
      total_demand += demand_[v];
    } else if (demand_[v] < 0) {
      add_arc(s, v, -demand_[v], 0);
      total_supply += -demand_[v];
    }
  }
  if (total_demand != total_supply) return std::nullopt;

  // Initial potentials via SPFA (arcs may have negative costs). All residual
  // arcs with positive capacity participate. Unreachable nodes keep a large
  // potential, which is fine: they can never lie on an augmenting path.
  std::vector<std::int64_t> pi(n + 2, kUnreached);
  pi[s] = 0;
  {
    std::deque<std::uint32_t> queue{s};
    std::vector<bool> in_queue(n + 2, false);
    std::vector<std::uint32_t> relax_count(n + 2, 0);
    in_queue[s] = true;
    // Nodes might be reachable only via constraint arcs not connected to s;
    // seed every node so Bellman-Ford validates the absence of negative
    // cycles globally (a negative cycle of infinite-capacity arcs makes the
    // problem unbounded).
    for (std::uint32_t v = 0; v < n; ++v) {
      pi[v] = std::min(pi[v], std::int64_t{0});
      queue.push_back(v);
      in_queue[v] = true;
    }
    std::uint32_t pops = 0;
    while (!queue.empty()) {
      if ((++pops & 0xfffu) == 0) poll_cancel(cancel_);
      const std::uint32_t v = queue.front();
      queue.pop_front();
      in_queue[v] = false;
      for (const std::uint32_t a : head_[v]) {
        const Arc& arc = arcs_[a];
        if (arc.cap <= 0) continue;
        if (pi[v] + arc.cost < pi[arc.to]) {
          pi[arc.to] = pi[v] + arc.cost;
          if (!in_queue[arc.to]) {
            if (++relax_count[arc.to] > n + 2) return std::nullopt;
            in_queue[arc.to] = true;
            queue.push_back(arc.to);
          }
        }
      }
    }
  }

  // Successive shortest paths with Dijkstra on reduced costs.
  std::int64_t routed = 0;
  std::int64_t total_cost = 0;
  std::vector<std::int64_t> dist(n + 2);
  std::vector<std::uint32_t> parent_arc(n + 2);
  while (routed < total_demand) {
    poll_cancel(cancel_);
    std::fill(dist.begin(), dist.end(), kUnreached);
    dist[s] = 0;
    using Item = std::pair<std::int64_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0, s});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[v]) continue;
      for (const std::uint32_t a : head_[v]) {
        const Arc& arc = arcs_[a];
        if (arc.cap <= 0) continue;
        const std::int64_t reduced = arc.cost + pi[v] - pi[arc.to];
        if (dist[v] + reduced < dist[arc.to]) {
          dist[arc.to] = dist[v] + reduced;
          parent_arc[arc.to] = a;
          pq.push({dist[arc.to], arc.to});
        }
      }
    }
    if (dist[t] >= kUnreached) return std::nullopt;  // demand unreachable
    // Capping at dist[t] keeps reduced costs of all residual arcs
    // nonnegative even for nodes not settled this round.
    for (std::uint32_t v = 0; v < n + 2; ++v) {
      pi[v] += std::min(dist[v], dist[t]);
    }
    // Find bottleneck along s->t path and push.
    std::int64_t push = total_demand - routed;
    for (std::uint32_t v = t; v != s; v = arcs_[parent_arc[v] ^ 1].to) {
      push = std::min(push, arcs_[parent_arc[v]].cap);
    }
    for (std::uint32_t v = t; v != s; v = arcs_[parent_arc[v] ^ 1].to) {
      arcs_[parent_arc[v]].cap -= push;
      arcs_[parent_arc[v] ^ 1].cap += push;
      total_cost += push * arcs_[parent_arc[v]].cost;
    }
    routed += push;
  }

  Solution solution;
  solution.total_cost = total_cost;
  solution.potential.assign(pi.begin(), pi.begin() + static_cast<long>(n));
  // Unreached potentials (isolated nodes) normalize to 0.
  for (auto& p : solution.potential) {
    if (p >= kUnreached / 2) p = 0;
  }
  solution.arc_flow.resize(arcs_.size() / 2);
  for (std::size_t a = 0; a < arcs_.size(); a += 2) {
    solution.arc_flow[a / 2] = initial_cap_[a] - arcs_[a].cap;
  }
  return solution;
}

}  // namespace mcrt

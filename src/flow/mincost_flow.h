// Minimum-cost flow (transshipment) solver with node-potential extraction.
//
// The Leiserson-Saxe minimum-area retiming ILP
//
//     minimize   sum_v c(v) * r(v)
//     subject to r(u) - r(v) <= b(e)        for each constraint arc e=(u,v)
//
// is the linear-programming dual of a transshipment problem: each constraint
// arc carries flow at cost b(e) with infinite capacity, and node v must have
// net inflow c(v). Because the constraint matrix is totally unimodular the
// LP optimum is integral, and the optimal retiming labels are recovered from
// the flow solver's node potentials (r = -pi). This file implements
// successive shortest paths with potentials (Bellman-Ford bootstrap for
// negative arc costs, Dijkstra afterwards).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/cancel.h"

namespace mcrt {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t node_count);

  /// Cooperative cancellation: solve() polls `token` once per shortest-path
  /// augmentation (and periodically during the Bellman-Ford bootstrap),
  /// throwing CancelledError on a stop request.
  void set_cancel(const CancelToken* token) noexcept { cancel_ = token; }

  /// Adds an arc from -> to with the given capacity and per-unit cost.
  /// Use MinCostFlow::kInfinite for uncapacitated (constraint) arcs.
  std::size_t add_arc(std::uint32_t from, std::uint32_t to, std::int64_t cap,
                      std::int64_t cost);

  /// Sets the required net inflow of a node (positive = demand/sink,
  /// negative = supply/source). Sum over all nodes must be zero.
  void set_demand(std::uint32_t node, std::int64_t demand);

  struct Solution {
    std::int64_t total_cost = 0;
    /// Node potentials pi; for the retiming dual, r(v) = -pi(v).
    std::vector<std::int64_t> potential;
    /// Flow per arc, indexed by the value returned from add_arc.
    std::vector<std::int64_t> arc_flow;
  };

  /// Solves the transshipment problem. Returns std::nullopt if demands
  /// cannot be met or a negative-cost infinite cycle exists (the dual LP is
  /// then infeasible / the primal unbounded).
  std::optional<Solution> solve();

  static constexpr std::int64_t kInfinite = INT64_MAX / 4;

 private:
  struct Arc {
    std::uint32_t to;
    std::int64_t cap;   // residual capacity
    std::int64_t cost;
  };
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::uint32_t>> head_;
  std::vector<std::int64_t> demand_;
  std::vector<std::int64_t> initial_cap_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace mcrt

#include "flow/maxflow.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace mcrt {

MaxFlow::MaxFlow(std::size_t node_count) : head_(node_count) {}

std::size_t MaxFlow::add_arc(std::uint32_t from, std::uint32_t to,
                             std::int64_t cap) {
  assert(from < head_.size() && to < head_.size() && cap >= 0);
  const std::size_t idx = arcs_.size();
  arcs_.push_back({to, cap});
  arcs_.push_back({from, 0});
  initial_cap_.push_back(cap);
  initial_cap_.push_back(0);
  head_[from].push_back(static_cast<std::uint32_t>(idx));
  head_[to].push_back(static_cast<std::uint32_t>(idx + 1));
  return idx;
}

bool MaxFlow::bfs(std::uint32_t source, std::uint32_t sink) {
  level_.assign(head_.size(), ~0u);
  std::deque<std::uint32_t> queue{source};
  level_[source] = 0;
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    for (const std::uint32_t a : head_[v]) {
      if (arcs_[a].cap > 0 && level_[arcs_[a].to] == ~0u) {
        level_[arcs_[a].to] = level_[v] + 1;
        queue.push_back(arcs_[a].to);
      }
    }
  }
  return level_[sink] != ~0u;
}

std::int64_t MaxFlow::dfs(std::uint32_t v, std::uint32_t sink,
                          std::int64_t pushed) {
  if (v == sink) return pushed;
  for (std::size_t& i = iter_[v]; i < head_[v].size(); ++i) {
    const std::uint32_t a = head_[v][i];
    Arc& arc = arcs_[a];
    if (arc.cap <= 0 || level_[arc.to] != level_[v] + 1) continue;
    const std::int64_t got = dfs(arc.to, sink, std::min(pushed, arc.cap));
    if (got > 0) {
      arc.cap -= got;
      arcs_[a ^ 1].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(std::uint32_t source, std::uint32_t sink,
                            std::int64_t limit) {
  std::int64_t total = 0;
  poll_cancel(cancel_);
  while (total < limit && bfs(source, sink)) {
    poll_cancel(cancel_);
    iter_.assign(head_.size(), 0);
    while (total < limit) {
      const std::int64_t got = dfs(source, sink, limit - total);
      if (got == 0) break;
      total += got;
    }
  }
  // Final residual BFS so source_side() reflects the min cut.
  bfs(source, sink);
  return total;
}

std::int64_t MaxFlow::flow_on(std::size_t arc_index) const {
  return initial_cap_[arc_index] - arcs_[arc_index].cap;
}

bool MaxFlow::source_side(std::uint32_t node) const {
  return level_[node] != ~0u;
}

}  // namespace mcrt

// Max-flow (Dinic's algorithm) on a small mutable network.
//
// Used by the FlowMap LUT mapper, which solves one small unit-capacity
// max-flow per logic node to test k-feasibility of a cut, and by tests as a
// reference oracle. Capacities are 64-bit; the k-feasibility use case only
// needs values up to k+1.
#pragma once

#include <cstdint>
#include <vector>

#include "base/cancel.h"

namespace mcrt {

class MaxFlow {
 public:
  explicit MaxFlow(std::size_t node_count);

  /// Cooperative cancellation: solve() polls `token` once per BFS phase and
  /// throws CancelledError on a stop request.
  void set_cancel(const CancelToken* token) noexcept { cancel_ = token; }

  /// Adds a directed arc with the given capacity; returns its arc index
  /// (the paired reverse arc is at index^1).
  std::size_t add_arc(std::uint32_t from, std::uint32_t to, std::int64_t cap);

  /// Computes max flow from source to sink, at most `limit` units
  /// (pass a large value for the true maximum). Callable once per network.
  std::int64_t solve(std::uint32_t source, std::uint32_t sink,
                     std::int64_t limit = INT64_MAX);

  /// After solve(): flow currently on arc `arc_index`.
  [[nodiscard]] std::int64_t flow_on(std::size_t arc_index) const;

  /// After solve(): true if `node` is reachable from the source in the
  /// residual graph (i.e., on the source side of the min cut).
  [[nodiscard]] bool source_side(std::uint32_t node) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return head_.size(); }

 private:
  struct Arc {
    std::uint32_t to;
    std::int64_t cap;  // residual capacity
  };
  bool bfs(std::uint32_t source, std::uint32_t sink);
  std::int64_t dfs(std::uint32_t v, std::uint32_t sink, std::int64_t pushed);

  std::vector<Arc> arcs_;
  std::vector<std::vector<std::uint32_t>> head_;  // arc indices per node
  std::vector<std::int64_t> initial_cap_;
  std::vector<std::uint32_t> level_;
  std::vector<std::size_t> iter_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace mcrt

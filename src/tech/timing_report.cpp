#include "tech/timing_report.h"

#include <algorithm>

#include "base/strings.h"
#include "tech/sta.h"

namespace mcrt {
namespace {

/// Backtracks a critical path ending at `net`: repeatedly follow the fanin
/// with the latest arrival until a sequential/primary start point.
std::vector<NetId> backtrack(const Netlist& netlist,
                             const std::vector<std::int64_t>& arrival,
                             NetId net) {
  std::vector<NetId> reversed{net};
  while (true) {
    const NetDriver& driver = netlist.net(net).driver;
    if (driver.kind != NetDriver::Kind::kNode) break;  // register Q
    const Node& node = netlist.node(NodeId{driver.index});
    if (node.kind != NodeKind::kLut || node.fanins.empty()) break;  // PI/const
    NetId best = node.fanins[0];
    for (const NetId f : node.fanins) {
      if (arrival[f.index()] > arrival[best.index()]) best = f;
    }
    net = best;
    reversed.push_back(net);
  }
  return {reversed.rbegin(), reversed.rend()};
}

}  // namespace

std::vector<TimingPath> worst_paths(const Netlist& netlist, std::size_t k) {
  const TimingReport report = analyze_timing(netlist);

  struct Candidate {
    std::int64_t delay;
    NetId net;
    TimingPath::Endpoint endpoint;
    std::string name;
  };
  std::vector<Candidate> candidates;
  for (const NodeId po : netlist.outputs()) {
    const NetId net = netlist.node(po).fanins[0];
    candidates.push_back({report.arrival[net.index()], net,
                          TimingPath::Endpoint::kPrimaryOutput,
                          netlist.node(po).name});
  }
  for (const Register& ff : netlist.registers()) {
    candidates.push_back({report.arrival[ff.d.index()], ff.d,
                          TimingPath::Endpoint::kRegisterD, ff.name});
    for (const NetId ctrl : {ff.en, ff.sync_ctrl, ff.async_ctrl}) {
      if (!ctrl.valid()) continue;
      candidates.push_back({report.arrival[ctrl.index()], ctrl,
                            TimingPath::Endpoint::kRegisterControl, ff.name});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.delay > b.delay;
                   });
  if (candidates.size() > k) candidates.resize(k);

  std::vector<TimingPath> paths;
  paths.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    TimingPath path;
    path.delay = c.delay;
    path.endpoint = c.endpoint;
    path.endpoint_name = c.name;
    path.nets = backtrack(netlist, report.arrival, c.net);
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string format_timing_report(const Netlist& netlist,
                                 const std::vector<TimingPath>& paths) {
  std::string out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const TimingPath& path = paths[i];
    const char* kind =
        path.endpoint == TimingPath::Endpoint::kRegisterD ? "reg D"
        : path.endpoint == TimingPath::Endpoint::kRegisterControl
            ? "reg ctrl"
            : "output";
    out += str_format("#%zu  delay %lld -> %s %s\n", i + 1,
                      static_cast<long long>(path.delay), kind,
                      path.endpoint_name.c_str());
    out += "    ";
    for (std::size_t n = 0; n < path.nets.size(); ++n) {
      if (n != 0) out += " -> ";
      out += netlist.net(path.nets[n]).name;
    }
    out += "\n";
  }
  return out;
}

}  // namespace mcrt

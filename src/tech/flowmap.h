// FlowMap: depth-optimal k-LUT technology mapping (Cong & Ding, 1994).
//
// The paper runs mc-retiming on a *mapped* netlist of FPGA primitives and
// remaps the combinational part afterwards ("remap" in §6). This module
// provides both steps: it covers a k-bounded subject graph with k-input
// LUTs of provably minimum depth, computing for every node a label (its
// optimal LUT depth) via one small max-flow per node, then realizes the
// chosen k-feasible cuts as LUTs.
//
// Mapping boundaries: primary inputs and register outputs are sources;
// primary outputs, register D pins and register control pins (EN, sync,
// async, clk) are roots. Registers pass through unchanged.
#pragma once

#include <cstdint>

#include "base/cancel.h"
#include "netlist/netlist.h"

namespace mcrt {

struct FlowMapOptions {
  std::uint32_t k = 4;            ///< LUT input count (XC4000: 4)
  std::int64_t lut_delay = 10;    ///< delay units per LUT level
  /// Depth-preserving area recovery: while realizing LUTs, a net with
  /// depth slack whose fanins are all demanded anyway reuses its trivial
  /// cut instead of duplicating the depth-optimal cone. Never increases
  /// the mapping depth; helps on duplication-heavy cones, can fragment
  /// otherwise - off by default, measure per design.
  bool area_recovery = false;
  /// Cooperative cancellation: polled once per labeled node (each label is
  /// one small max-flow); a stop request unwinds with CancelledError.
  const CancelToken* cancel = nullptr;
  /// Use the seed's pointer-chasing mapper instead of the compact-core
  /// engine. Both produce identical mapped netlists (the differential test
  /// pins this); the legacy path exists as that oracle and as the bench
  /// baseline, not for production use.
  bool legacy_engine = false;
};

struct FlowMapResult {
  Netlist mapped;
  std::uint32_t depth = 0;        ///< maximum label = LUT depth of mapping
  std::size_t lut_count = 0;
};

/// Maps the combinational part of `input` (which must be k-bounded: every
/// node has at most k fanins; run decompose_to_binary first for arbitrary
/// netlists) into k-LUTs. Node delays in the result are set to
/// options.lut_delay for LUTs and 0 elsewhere.
FlowMapResult flowmap_map(const Netlist& input, const FlowMapOptions& options);

}  // namespace mcrt

#include "tech/flowmap.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "flow/maxflow.h"
#include "netlist/compact.h"

namespace mcrt {
namespace {

/// Mapping works on nets: every combinational node output is a candidate
/// LUT output; PIs, constants and register Q nets are boundary sources.
/// This is the seed implementation, kept compiled as the differential
/// oracle for the compact-core engine below (options.legacy_engine).
class LegacyFlowMapper {
 public:
  LegacyFlowMapper(const Netlist& input, const FlowMapOptions& options)
      : input_(input), options_(options) {}

  FlowMapResult run() {
    collect_boundaries();
    compute_labels();
    return realize();
  }

 private:
  struct NetInfo {
    bool boundary = false;        ///< source: PI / const / register Q
    NodeId driver;                ///< driving LUT node (if not boundary)
    std::uint32_t label = 0;      ///< FlowMap label (boundary: 0)
    std::vector<NetId> cut;       ///< chosen k-feasible cut (LUT inputs)
  };

  void collect_boundaries() {
    info_.resize(input_.net_count());
    for (const NodeId in : input_.inputs()) {
      info_[input_.node(in).output.index()].boundary = true;
    }
    for (const Register& ff : input_.registers()) {
      info_[ff.q.index()].boundary = true;
    }
    for (std::size_t n = 0; n < input_.node_count(); ++n) {
      const Node& node = input_.nodes()[n];
      if (node.kind != NodeKind::kLut) continue;
      if (node.fanins.size() > options_.k) {
        throw std::invalid_argument(
            "flowmap: subject graph is not k-bounded");
      }
      if (node.fanins.empty()) {
        // Constants are boundary sources with label 0 and no LUT.
        info_[node.output.index()].boundary = true;
        continue;
      }
      info_[node.output.index()].driver = NodeId{static_cast<uint32_t>(n)};
    }
  }

  /// Transitive fanin cone of `target` up to boundary nets.
  /// Returns cone nets in topological order (inputs excluded).
  std::vector<NetId> cone_of(NetId target) const {
    std::vector<NetId> cone;
    std::vector<NetId> stack{target};
    std::unordered_set<std::uint32_t> seen{target.value()};
    while (!stack.empty()) {
      const NetId net = stack.back();
      stack.pop_back();
      cone.push_back(net);
      const Node& node = input_.node(info_[net.index()].driver);
      for (const NetId f : node.fanins) {
        if (info_[f.index()].boundary) continue;
        if (seen.insert(f.value()).second) stack.push_back(f);
      }
    }
    return cone;
  }

  void compute_labels() {
    const auto order = input_.combinational_order();
    if (!order) throw std::invalid_argument("flowmap: cyclic netlist");
    for (const NodeId id : *order) {
      poll_cancel(options_.cancel);
      const Node& node = input_.node(id);
      if (node.kind != NodeKind::kLut || node.fanins.empty()) continue;
      compute_label(node.output);
    }
  }

  void compute_label(NetId target) {
    NetInfo& target_info = info_[target.index()];
    const Node& node = input_.node(target_info.driver);
    // p = max label over fanins.
    std::uint32_t p = 0;
    for (const NetId f : node.fanins) {
      p = std::max(p, info_[f.index()].label);
    }
    if (p == 0) {
      // All fanins are boundaries; the trivial cut is always k-feasible for
      // a k-bounded node.
      target_info.label = 1;
      target_info.cut.assign(node.fanins.begin(), node.fanins.end());
      dedupe(target_info.cut);
      return;
    }
    // Build the flow network over the cone: collapse target and all cone
    // nets with label == p into the sink; test max-flow <= k.
    const std::vector<NetId> cone = cone_of(target);
    std::unordered_set<std::uint32_t> cone_set;
    for (const NetId n : cone) cone_set.insert(n.value());
    // Cone input nets (boundaries or nets outside cone... all non-boundary
    // fanins are in the cone by construction, so inputs = boundary fanins).
    std::set<std::uint32_t> input_nets;
    for (const NetId n : cone) {
      for (const NetId f : input_.node(info_[n.index()].driver).fanins) {
        if (info_[f.index()].boundary) input_nets.insert(f.value());
      }
    }
    // Node ids in the flow network: 0 = source, 1 = sink (collapsed
    // cluster), then two per cuttable net (in, out).
    std::unordered_map<std::uint32_t, std::uint32_t> net_to_flow;
    std::uint32_t next = 2;
    auto flow_in = [&](std::uint32_t net) { return net_to_flow.at(net); };
    auto flow_out = [&](std::uint32_t net) { return net_to_flow.at(net) + 1; };
    std::vector<std::uint32_t> cuttable;
    for (const std::uint32_t net : input_nets) {
      net_to_flow.emplace(net, next);
      next += 2;
      cuttable.push_back(net);
    }
    for (const NetId n : cone) {
      if (info_[n.index()].label == p) continue;  // part of the sink cluster
      if (n == target) continue;
      net_to_flow.emplace(n.value(), next);
      next += 2;
      cuttable.push_back(n.value());
    }
    MaxFlow flow(next);
    std::vector<std::size_t> net_arc(input_.net_count(), ~std::size_t{0});
    for (const std::uint32_t net : cuttable) {
      net_arc[net] = flow.add_arc(flow_in(net), flow_out(net), 1);
    }
    const std::int64_t kInf = 1 << 20;
    for (const std::uint32_t net : input_nets) {
      flow.add_arc(0, flow_in(net), kInf);
    }
    auto sink_or_out = [&](NetId n) -> std::uint32_t {
      // Nets in the collapsed cluster map to the sink itself.
      if (n == target || (cone_set.count(n.value()) &&
                          info_[n.index()].label == p)) {
        return 1;
      }
      return flow_out(n.value());
    };
    auto sink_or_in = [&](NetId n) -> std::uint32_t {
      if (n == target || (cone_set.count(n.value()) &&
                          info_[n.index()].label == p)) {
        return 1;
      }
      return flow_in(n.value());
    };
    for (const NetId n : cone) {
      const Node& gate = input_.node(info_[n.index()].driver);
      const std::uint32_t head = sink_or_in(n);
      for (const NetId f : gate.fanins) {
        const std::uint32_t tail = sink_or_out(f);
        if (tail == head) continue;  // both inside the cluster
        flow.add_arc(tail, head, kInf);
      }
    }
    const std::int64_t max_flow =
        flow.solve(0, 1, static_cast<std::int64_t>(options_.k) + 1);
    if (max_flow <= options_.k) {
      // Min cut = cuttable nets whose in-side is reachable but out-side is
      // not (saturated net arcs crossing the cut).
      target_info.label = p;
      target_info.cut.clear();
      for (const std::uint32_t net : cuttable) {
        if (flow.source_side(flow_in(net)) &&
            !flow.source_side(flow_out(net))) {
          target_info.cut.push_back(NetId{net});
        }
      }
      assert(!target_info.cut.empty());
    } else {
      target_info.label = p + 1;
      target_info.cut.assign(node.fanins.begin(), node.fanins.end());
      dedupe(target_info.cut);
    }
  }

  static void dedupe(std::vector<NetId>& nets) {
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  }

  /// Evaluates the cone function of `root` restricted to `cut` under the
  /// assignment `values` (bit i = value of cut[i]).
  bool eval_cone(NetId root, const std::vector<NetId>& cut,
                 std::uint32_t values) const {
    std::unordered_map<std::uint32_t, bool> cache;
    for (std::size_t i = 0; i < cut.size(); ++i) {
      cache[cut[i].value()] = (values >> i) & 1;
    }
    return eval_net(root, cache);
  }

  bool eval_net(NetId net,
                std::unordered_map<std::uint32_t, bool>& cache) const {
    if (auto it = cache.find(net.value()); it != cache.end()) {
      return it->second;
    }
    const NetInfo& info = info_[net.index()];
    if (info.boundary) {
      // Constant boundary nets evaluate to their constant; other boundary
      // nets must be in the cut (cache) - reaching here is a logic error
      // unless the net is a constant.
      const auto constant = input_.const_value(net);
      if (!constant) {
        throw std::logic_error("flowmap: cone evaluation escaped its cut");
      }
      cache[net.value()] = *constant;
      return *constant;
    }
    const Node& node = input_.node(info.driver);
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      if (eval_net(node.fanins[i], cache)) bits |= 1u << i;
    }
    const bool value = node.function.eval(bits);
    cache[net.value()] = value;
    return value;
  }

  /// Trivial cut of a net: the driving node's fanins, deduplicated.
  std::vector<NetId> trivial_cut(NetId net) const {
    const Node& node = input_.node(info_[net.index()].driver);
    std::vector<NetId> cut(node.fanins.begin(), node.fanins.end());
    dedupe(cut);
    return cut;
  }

  /// Chooses the cut to realize per needed net. With area recovery, a net
  /// with depth slack reuses its (cheap, non-duplicating) trivial cut:
  /// nets are visited in reverse topological order, so every consumer has
  /// already registered its requirement, and the choice
  ///     trivial  iff  1 + max fanin label <= need(net)
  /// keeps realized depth <= need(net) by induction (an optimal cut's
  /// depth is bounded by the net's own label <= need).
  std::unordered_map<std::uint32_t, std::vector<NetId>> choose_cuts(
      const std::vector<NetId>& roots) {
    std::unordered_map<std::uint32_t, std::uint32_t> need;
    for (const NetId root : roots) {
      if (info_[root.index()].boundary) continue;
      auto [it, inserted] =
          need.emplace(root.value(), info_[root.index()].label);
      if (!inserted) {
        it->second = std::min(it->second, info_[root.index()].label);
      }
    }
    std::unordered_map<std::uint32_t, std::vector<NetId>> chosen;
    const auto order = input_.combinational_order();
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const Node& node = input_.node(*it);
      if (node.kind != NodeKind::kLut || node.fanins.empty()) continue;
      const NetId net = node.output;
      const auto need_it = need.find(net.value());
      if (need_it == need.end()) continue;  // not needed by any consumer
      const NetInfo& info = info_[net.index()];
      std::vector<NetId> cut;
      if (options_.area_recovery) {
        // Reuse-only recovery: fall back to the trivial cut when (a) depth
        // slack allows it and (b) every non-boundary fanin is already
        // demanded by some other consumer - then the trivial cut duplicates
        // nothing and simply taps logic that exists anyway. Without (b)
        // the trivial cut would fragment the cone into small LUTs.
        std::uint32_t fanin_label = 0;
        bool all_reused = true;
        for (const NetId f : node.fanins) {
          fanin_label = std::max(fanin_label, info_[f.index()].label);
          if (!info_[f.index()].boundary && !need.count(f.value())) {
            all_reused = false;
          }
        }
        if (all_reused && fanin_label + 1 <= need_it->second) {
          cut = trivial_cut(net);
        }
      }
      if (cut.empty()) cut = info.cut;
      for (const NetId c : cut) {
        if (info_[c.index()].boundary) continue;
        const std::uint32_t required = need_it->second - 1;
        auto [cit, inserted] = need.emplace(c.value(), required);
        if (!inserted) cit->second = std::min(cit->second, required);
      }
      chosen.emplace(net.value(), std::move(cut));
    }
    return chosen;
  }

  FlowMapResult realize() {
    FlowMapResult result;
    Netlist& out = result.mapped;
    std::unordered_map<std::uint32_t, NetId> net_map;  // old -> new
    for (const NodeId in : input_.inputs()) {
      net_map[input_.node(in).output.value()] =
          out.add_input(input_.node(in).name);
    }
    // Constants carry over as constants.
    for (const Node& node : input_.nodes()) {
      if (node.kind == NodeKind::kLut && node.fanins.empty()) {
        net_map[node.output.value()] =
            out.add_const(node.function.eval(0), node.name);
      }
    }
    for (const Register& ff : input_.registers()) {
      net_map[ff.q.value()] = out.add_net(input_.net(ff.q).name);
    }

    // Roots: nets consumed by POs, register D pins and control pins.
    std::vector<NetId> roots;
    auto add_root = [&](NetId n) {
      if (n.valid()) roots.push_back(n);
    };
    for (const NodeId po : input_.outputs()) {
      add_root(input_.node(po).fanins[0]);
    }
    for (const Register& ff : input_.registers()) {
      add_root(ff.d);
      add_root(ff.clk);
      add_root(ff.en);
      add_root(ff.sync_ctrl);
      add_root(ff.async_ctrl);
    }

    const auto chosen = choose_cuts(roots);

    // Build the chosen LUTs in topological order (cut inputs come first).
    const auto order = input_.combinational_order();
    for (const NodeId id : *order) {
      const Node& node = input_.node(id);
      if (node.kind != NodeKind::kLut || node.fanins.empty()) continue;
      const NetId net = node.output;
      const auto it = chosen.find(net.value());
      if (it == chosen.end()) continue;
      const std::vector<NetId>& cut = it->second;
      const auto cut_size = static_cast<std::uint32_t>(cut.size());
      assert(cut_size <= options_.k && cut_size >= 1);
      std::uint64_t bits = 0;
      for (std::uint32_t row = 0; row < (1u << cut_size); ++row) {
        if (eval_cone(net, cut, row)) bits |= std::uint64_t{1} << row;
      }
      std::vector<NetId> lut_fanins;
      for (const NetId c : cut) lut_fanins.push_back(net_map.at(c.value()));
      const NetId mapped = out.add_lut(TruthTable(cut_size, bits),
                                       std::move(lut_fanins),
                                       input_.net(net).name);
      out.set_node_delay(NodeId{out.net(mapped).driver.index},
                         options_.lut_delay);
      net_map[net.value()] = mapped;
      result.depth = std::max(result.depth, info_[net.index()].label);
      ++result.lut_count;
    }

    for (const Register& ff : input_.registers()) {
      Register spec;
      spec.d = net_map.at(ff.d.value());
      spec.q = net_map.at(ff.q.value());
      spec.clk = net_map.at(ff.clk.value());
      if (ff.en.valid()) spec.en = net_map.at(ff.en.value());
      if (ff.sync_ctrl.valid()) spec.sync_ctrl = net_map.at(ff.sync_ctrl.value());
      if (ff.async_ctrl.valid()) {
        spec.async_ctrl = net_map.at(ff.async_ctrl.value());
      }
      spec.sync_val = ff.sync_val;
      spec.async_val = ff.async_val;
      spec.name = ff.name;
      out.add_register(std::move(spec));
    }
    for (const NodeId po : input_.outputs()) {
      const Node& node = input_.node(po);
      out.add_output(node.name, net_map.at(node.fanins[0].value()));
    }
    return result;
  }

  const Netlist& input_;
  const FlowMapOptions& options_;
  std::vector<NetInfo> info_;
};

/// The production mapper: same algorithm, same cuts, same mapped netlist,
/// but iterating the CompactNetlist's CSR spans with persistent
/// epoch-stamped scratch instead of per-label hash containers (the legacy
/// engine allocates an O(net_count) array plus several unordered maps for
/// *every* label's max-flow). Orders that determine the result — cone DFS
/// order, the sorted cone-input list, flow-arc insertion order, cut
/// extraction order — replicate the legacy engine exactly, which is what
/// makes the two engines emit identical netlists, not merely equivalent
/// ones (tests/tech/flowmap_differential_test.cpp).
class CompactFlowMapper {
 public:
  CompactFlowMapper(const Netlist& input, const FlowMapOptions& options)
      : input_(input), compact_(input), options_(options) {}

  FlowMapResult run() {
    collect_boundaries();
    compute_labels();
    return realize();
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  void collect_boundaries() {
    const std::uint32_t nets = compact_.net_count();
    boundary_.assign(nets, 0);
    driver_.assign(nets, kNone);
    label_.assign(nets, 0);
    cut_.resize(nets);
    cone_mark_.assign(nets, 0);
    eval_mark_.assign(nets, 0);
    eval_val_.assign(nets, 0);
    net_to_flow_.assign(nets, kNone);
    for (const std::uint32_t in : compact_.input_nodes()) {
      boundary_[compact_.node_output(in)] = 1;
    }
    for (std::uint32_t r = 0; r < compact_.register_count(); ++r) {
      boundary_[compact_.reg_q(r)] = 1;
    }
    for (std::uint32_t v = 0; v < compact_.node_count(); ++v) {
      if (compact_.node_kind(v) != NodeKind::kLut) continue;
      const auto fanins = compact_.fanins(v);
      if (fanins.size() > options_.k) {
        throw std::invalid_argument(
            "flowmap: subject graph is not k-bounded");
      }
      if (fanins.empty()) {
        boundary_[compact_.node_output(v)] = 1;
        continue;
      }
      driver_[compact_.node_output(v)] = v;
    }
  }

  /// Transitive fanin cone of `target` up to boundary nets, in the legacy
  /// engine's DFS order; cone membership is marked with the current epoch.
  void cone_of(std::uint32_t target) {
    ++cone_epoch_;
    cone_.clear();
    stack_.assign(1, target);
    cone_mark_[target] = cone_epoch_;
    while (!stack_.empty()) {
      const std::uint32_t net = stack_.back();
      stack_.pop_back();
      cone_.push_back(net);
      for (const std::uint32_t f : compact_.fanins(driver_[net])) {
        if (boundary_[f]) continue;
        if (cone_mark_[f] != cone_epoch_) {
          cone_mark_[f] = cone_epoch_;
          stack_.push_back(f);
        }
      }
    }
  }

  void compute_labels() {
    if (!compact_.acyclic()) {
      throw std::invalid_argument("flowmap: cyclic netlist");
    }
    for (const std::uint32_t v : compact_.comb_order()) {
      if (compact_.fanins(v).empty()) continue;
      poll_cancel(options_.cancel);
      compute_label(compact_.node_output(v));
    }
  }

  void compute_label(std::uint32_t target) {
    const std::uint32_t driver = driver_[target];
    const auto target_fanins = compact_.fanins(driver);
    // p = max label over fanins.
    std::uint32_t p = 0;
    for (const std::uint32_t f : target_fanins) {
      p = std::max(p, label_[f]);
    }
    if (p == 0) {
      // All fanins are boundaries; the trivial cut is always k-feasible for
      // a k-bounded node.
      label_[target] = 1;
      cut_[target].assign(target_fanins.begin(), target_fanins.end());
      dedupe_ids(cut_[target]);
      return;
    }
    // Build the flow network over the cone: collapse target and all cone
    // nets with label == p into the sink; test max-flow <= k.
    cone_of(target);
    // Cone inputs = boundary fanins, in ascending net order (the legacy
    // engine's std::set iteration order).
    input_nets_.clear();
    for (const std::uint32_t n : cone_) {
      for (const std::uint32_t f : compact_.fanins(driver_[n])) {
        if (boundary_[f]) input_nets_.push_back(f);
      }
    }
    std::sort(input_nets_.begin(), input_nets_.end());
    input_nets_.erase(std::unique(input_nets_.begin(), input_nets_.end()),
                      input_nets_.end());
    // Flow node ids: 0 = source, 1 = sink (collapsed cluster), then two per
    // cuttable net (in, out).
    cuttable_.clear();
    std::uint32_t next = 2;
    for (const std::uint32_t net : input_nets_) {
      net_to_flow_[net] = next;
      next += 2;
      cuttable_.push_back(net);
    }
    for (const std::uint32_t n : cone_) {
      if (label_[n] == p) continue;  // part of the sink cluster
      if (n == target) continue;
      net_to_flow_[n] = next;
      next += 2;
      cuttable_.push_back(n);
    }
    MaxFlow flow(next);
    for (const std::uint32_t net : cuttable_) {
      flow.add_arc(net_to_flow_[net], net_to_flow_[net] + 1, 1);
    }
    const std::int64_t kInf = 1 << 20;
    for (const std::uint32_t net : input_nets_) {
      flow.add_arc(0, net_to_flow_[net], kInf);
    }
    auto in_cluster = [&](std::uint32_t n) {
      return n == target || (cone_mark_[n] == cone_epoch_ && label_[n] == p);
    };
    for (const std::uint32_t n : cone_) {
      const std::uint32_t head = in_cluster(n) ? 1 : net_to_flow_[n];
      for (const std::uint32_t f : compact_.fanins(driver_[n])) {
        const std::uint32_t tail = in_cluster(f) ? 1 : net_to_flow_[f] + 1;
        if (tail == head) continue;  // both inside the cluster
        flow.add_arc(tail, head, kInf);
      }
    }
    const std::int64_t max_flow =
        flow.solve(0, 1, static_cast<std::int64_t>(options_.k) + 1);
    if (max_flow <= options_.k) {
      // Min cut = cuttable nets whose in-side is reachable but out-side is
      // not (saturated net arcs crossing the cut).
      label_[target] = p;
      cut_[target].clear();
      for (const std::uint32_t net : cuttable_) {
        if (flow.source_side(net_to_flow_[net]) &&
            !flow.source_side(net_to_flow_[net] + 1)) {
          cut_[target].push_back(net);
        }
      }
      assert(!cut_[target].empty());
    } else {
      label_[target] = p + 1;
      cut_[target].assign(target_fanins.begin(), target_fanins.end());
      dedupe_ids(cut_[target]);
    }
    // Restore the shared scratch for the next label.
    for (const std::uint32_t net : cuttable_) net_to_flow_[net] = kNone;
  }

  static void dedupe_ids(std::vector<std::uint32_t>& nets) {
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  }

  /// Evaluates the cone function of `root` restricted to `cut` under the
  /// assignment `values` (bit i = value of cut[i]).
  bool eval_cone(std::uint32_t root, const std::vector<std::uint32_t>& cut,
                 std::uint32_t values) {
    ++eval_epoch_;
    for (std::size_t i = 0; i < cut.size(); ++i) {
      eval_mark_[cut[i]] = eval_epoch_;
      eval_val_[cut[i]] = (values >> i) & 1;
    }
    return eval_net(root);
  }

  bool eval_net(std::uint32_t net) {
    if (eval_mark_[net] == eval_epoch_) return eval_val_[net] != 0;
    if (boundary_[net]) {
      // Constant boundary nets evaluate to their constant; other boundary
      // nets must be in the cut - reaching here is a logic error unless
      // the net is a constant.
      if (compact_.driver_kind(net) != NetDriver::Kind::kNode) {
        throw std::logic_error("flowmap: cone evaluation escaped its cut");
      }
      const std::uint32_t v = compact_.driver_index(net);
      if (compact_.node_kind(v) != NodeKind::kLut ||
          !compact_.fanins(v).empty()) {
        throw std::logic_error("flowmap: cone evaluation escaped its cut");
      }
      const bool value = (compact_.tt_bits(v) & 1) != 0;
      eval_mark_[net] = eval_epoch_;
      eval_val_[net] = value ? 1 : 0;
      return value;
    }
    const std::uint32_t v = driver_[net];
    std::uint32_t bits = 0;
    const auto fanins = compact_.fanins(v);
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      if (eval_net(fanins[i])) bits |= 1u << i;
    }
    const bool value = ((compact_.tt_bits(v) >> bits) & 1) != 0;
    eval_mark_[net] = eval_epoch_;
    eval_val_[net] = value ? 1 : 0;
    return value;
  }

  /// Trivial cut of a net: the driving node's fanins, deduplicated.
  std::vector<std::uint32_t> trivial_cut(std::uint32_t net) const {
    const auto fanins = compact_.fanins(driver_[net]);
    std::vector<std::uint32_t> cut(fanins.begin(), fanins.end());
    dedupe_ids(cut);
    return cut;
  }

  /// Chooses the cut to realize per needed net; flat-array port of the
  /// legacy choose_cuts (same reverse-topological visit, same
  /// area-recovery reuse rule, so the same cuts come out).
  void choose_cuts(const std::vector<std::uint32_t>& roots) {
    need_.assign(compact_.net_count(), kNone);
    chosen_.assign(compact_.net_count(), 0);
    chosen_cut_.assign(compact_.net_count(), {});
    for (const std::uint32_t root : roots) {
      if (boundary_[root]) continue;
      need_[root] = need_[root] == kNone ? label_[root]
                                         : std::min(need_[root], label_[root]);
    }
    const auto order = compact_.comb_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto fanins = compact_.fanins(*it);
      if (fanins.empty()) continue;
      const std::uint32_t net = compact_.node_output(*it);
      if (need_[net] == kNone) continue;  // not needed by any consumer
      std::vector<std::uint32_t> cut;
      if (options_.area_recovery) {
        // Reuse-only recovery: fall back to the trivial cut when (a) depth
        // slack allows it and (b) every non-boundary fanin is already
        // demanded by some other consumer - then the trivial cut duplicates
        // nothing and simply taps logic that exists anyway.
        std::uint32_t fanin_label = 0;
        bool all_reused = true;
        for (const std::uint32_t f : fanins) {
          fanin_label = std::max(fanin_label, label_[f]);
          if (!boundary_[f] && need_[f] == kNone) all_reused = false;
        }
        if (all_reused && fanin_label + 1 <= need_[net]) {
          cut = trivial_cut(net);
        }
      }
      if (cut.empty()) cut = cut_[net];
      for (const std::uint32_t c : cut) {
        if (boundary_[c]) continue;
        const std::uint32_t required = need_[net] - 1;
        need_[c] = need_[c] == kNone ? required : std::min(need_[c], required);
      }
      chosen_[net] = 1;
      chosen_cut_[net] = std::move(cut);
    }
  }

  FlowMapResult realize() {
    FlowMapResult result;
    Netlist& out = result.mapped;
    std::vector<NetId> net_map(compact_.net_count());  // old -> new
    for (const NodeId in : input_.inputs()) {
      net_map[input_.node(in).output.index()] =
          out.add_input(input_.node(in).name);
    }
    // Constants carry over as constants.
    for (const Node& node : input_.nodes()) {
      if (node.kind == NodeKind::kLut && node.fanins.empty()) {
        net_map[node.output.index()] =
            out.add_const(node.function.eval(0), node.name);
      }
    }
    for (const Register& ff : input_.registers()) {
      net_map[ff.q.index()] = out.add_net(input_.net(ff.q).name);
    }

    // Roots: nets consumed by POs, register D pins and control pins.
    std::vector<std::uint32_t> roots;
    auto add_root = [&](NetId n) {
      if (n.valid()) roots.push_back(n.value());
    };
    for (const NodeId po : input_.outputs()) {
      add_root(input_.node(po).fanins[0]);
    }
    for (const Register& ff : input_.registers()) {
      add_root(ff.d);
      add_root(ff.clk);
      add_root(ff.en);
      add_root(ff.sync_ctrl);
      add_root(ff.async_ctrl);
    }

    choose_cuts(roots);

    // Build the chosen LUTs in topological order (cut inputs come first).
    for (const std::uint32_t v : compact_.comb_order()) {
      if (compact_.fanins(v).empty()) continue;
      const std::uint32_t net = compact_.node_output(v);
      if (!chosen_[net]) continue;
      const std::vector<std::uint32_t>& cut = chosen_cut_[net];
      const auto cut_size = static_cast<std::uint32_t>(cut.size());
      assert(cut_size <= options_.k && cut_size >= 1);
      std::uint64_t bits = 0;
      for (std::uint32_t row = 0; row < (1u << cut_size); ++row) {
        if (eval_cone(net, cut, row)) bits |= std::uint64_t{1} << row;
      }
      std::vector<NetId> lut_fanins;
      lut_fanins.reserve(cut_size);
      for (const std::uint32_t c : cut) lut_fanins.push_back(net_map[c]);
      const NetId mapped = out.add_lut(TruthTable(cut_size, bits),
                                       std::move(lut_fanins),
                                       input_.net(NetId{net}).name);
      out.set_node_delay(NodeId{out.net(mapped).driver.index},
                         options_.lut_delay);
      net_map[net] = mapped;
      result.depth = std::max(result.depth, label_[net]);
      ++result.lut_count;
    }

    for (const Register& ff : input_.registers()) {
      Register spec;
      spec.d = net_map[ff.d.index()];
      spec.q = net_map[ff.q.index()];
      spec.clk = net_map[ff.clk.index()];
      if (ff.en.valid()) spec.en = net_map[ff.en.index()];
      if (ff.sync_ctrl.valid()) spec.sync_ctrl = net_map[ff.sync_ctrl.index()];
      if (ff.async_ctrl.valid()) {
        spec.async_ctrl = net_map[ff.async_ctrl.index()];
      }
      spec.sync_val = ff.sync_val;
      spec.async_val = ff.async_val;
      spec.name = ff.name;
      out.add_register(std::move(spec));
    }
    for (const NodeId po : input_.outputs()) {
      const Node& node = input_.node(po);
      out.add_output(node.name, net_map[node.fanins[0].index()]);
    }
    return result;
  }

  const Netlist& input_;
  CompactNetlist compact_;
  const FlowMapOptions& options_;

  std::vector<std::uint8_t> boundary_;
  std::vector<std::uint32_t> driver_;  ///< net -> driving LUT node
  std::vector<std::uint32_t> label_;
  std::vector<std::vector<std::uint32_t>> cut_;  ///< optimal k-feasible cuts

  // Persistent scratch, epoch-stamped so per-label resets are O(touched).
  std::uint32_t cone_epoch_ = 0;
  std::vector<std::uint32_t> cone_mark_;
  std::vector<std::uint32_t> cone_;
  std::vector<std::uint32_t> stack_;
  std::vector<std::uint32_t> input_nets_;
  std::vector<std::uint32_t> cuttable_;
  std::vector<std::uint32_t> net_to_flow_;
  std::uint32_t eval_epoch_ = 0;
  std::vector<std::uint32_t> eval_mark_;
  std::vector<std::uint8_t> eval_val_;
  std::vector<std::uint32_t> need_;
  std::vector<std::uint8_t> chosen_;
  std::vector<std::vector<std::uint32_t>> chosen_cut_;
};

}  // namespace

FlowMapResult flowmap_map(const Netlist& input,
                          const FlowMapOptions& options) {
  if (options.legacy_engine) {
    LegacyFlowMapper mapper(input, options);
    return mapper.run();
  }
  CompactFlowMapper mapper(input, options);
  return mapper.run();
}

}  // namespace mcrt

// Static timing analysis on mapped netlists.
//
// The delay model matches how the paper uses timing: each combinational
// node carries a propagation delay d(v) (assigned by the mapper), register
// and I/O pins are timing endpoints, and the clock period of a circuit is
// the maximum combinational path delay between endpoints — the quantity
// reported in the paper's "Delay" columns and minimized by retiming.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace mcrt {

struct TimingReport {
  /// Worst combinational path delay (the achievable clock period).
  std::int64_t period = 0;
  /// Arrival time per net: latest output transition relative to the clock
  /// edge, 0 for sequential sources (PI, register Q, constants).
  std::vector<std::int64_t> arrival;
};

/// Computes arrival times and the worst path delay. Endpoints are primary
/// outputs, register D pins and register control pins.
TimingReport analyze_timing(const Netlist& netlist);

/// Convenience: just the period.
std::int64_t compute_period(const Netlist& netlist);

}  // namespace mcrt

// Decomposition of wide combinational nodes into a 2-bounded network.
//
// FlowMap requires a k-bounded subject graph; decomposing every node into
// 2-input AND/OR/INV (recursive Shannon expansion with constant and
// single-variable simplification) both satisfies that requirement and gives
// the mapper freedom to repack logic — which is what lets the Table 3
// baseline's load-enable muxes get absorbed into neighbouring LUTs exactly
// as a real synthesis flow would.
#pragma once

#include "netlist/netlist.h"

namespace mcrt {

/// Returns a functionally identical netlist in which every combinational
/// node has at most two fanins. Registers, PIs and POs are preserved
/// (by name); node delays are reset to 0 (the mapper reassigns them).
Netlist decompose_to_binary(const Netlist& input);

}  // namespace mcrt

#include "tech/decompose.h"

#include <array>
#include <cassert>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>

namespace mcrt {
namespace {

/// Rebuilds a netlist while decomposing functions; shares common subterms
/// per (function, fanins) via structural hashing.
class Decomposer {
 public:
  explicit Decomposer(const Netlist& input) : input_(input) {}

  Netlist run() {
    for (const NodeId in : input_.inputs()) {
      map_net(input_.node(in).output,
              output_.add_input(input_.node(in).name));
    }
    // Register Q nets are sequential sources: pre-create their nets so
    // combinational logic can reference them before the registers exist.
    for (const Register& ff : input_.registers()) {
      map_net(ff.q, output_.add_net(input_.net(ff.q).name));
    }
    const auto order = input_.combinational_order();
    if (!order) throw std::invalid_argument("decompose: cyclic netlist");
    for (const NodeId id : *order) {
      const Node& node = input_.node(id);
      std::vector<NetId> fanins;
      fanins.reserve(node.fanins.size());
      for (const NetId f : node.fanins) fanins.push_back(net_map_.at(f));
      map_net(node.output, build(node.function, fanins));
    }
    for (const Register& ff : input_.registers()) {
      Register spec;
      spec.d = net_map_.at(ff.d);
      spec.q = net_map_.at(ff.q);
      spec.clk = net_map_.at(ff.clk);
      if (ff.en.valid()) spec.en = net_map_.at(ff.en);
      if (ff.sync_ctrl.valid()) spec.sync_ctrl = net_map_.at(ff.sync_ctrl);
      if (ff.async_ctrl.valid()) spec.async_ctrl = net_map_.at(ff.async_ctrl);
      spec.sync_val = ff.sync_val;
      spec.async_val = ff.async_val;
      spec.name = ff.name;
      output_.add_register(std::move(spec));
    }
    for (const NodeId po : input_.outputs()) {
      const Node& node = input_.node(po);
      output_.add_output(node.name, net_map_.at(node.fanins[0]));
    }
    return std::move(output_);
  }

 private:
  void map_net(NetId old_net, NetId new_net) {
    net_map_[old_net] = new_net;
  }

  NetId const_net(bool value) {
    NetId& cached = value ? const1_ : const0_;
    if (!cached.valid()) cached = output_.add_const(value);
    return cached;
  }

  /// Constant value of a net in the *output* netlist, if known.
  std::optional<bool> known_const(NetId net) const {
    if (net == const0_) return false;
    if (net == const1_) return true;
    return output_.const_value(net);
  }

  /// Hash-consed 1- or 2-input node creation.
  NetId emit(const TruthTable& tt, std::vector<NetId> fanins) {
    assert(tt.input_count() <= 2);
    // Local simplifications.
    if (tt.is_const(false)) return const_net(false);
    if (tt.is_const(true)) return const_net(true);
    for (std::uint32_t i = 0; i < tt.input_count(); ++i) {
      // Constant fanins fold into the function.
      if (const auto c = known_const(fanins[i])) {
        std::vector<NetId> reduced;
        for (std::uint32_t j = 0; j < fanins.size(); ++j) {
          if (j != i) reduced.push_back(fanins[j]);
        }
        return emit(tt.cofactor(i, *c), std::move(reduced));
      }
      if (tt.input_redundant(i)) {
        std::vector<NetId> reduced;
        for (std::uint32_t j = 0; j < fanins.size(); ++j) {
          if (j != i) reduced.push_back(fanins[j]);
        }
        return emit(tt.cofactor(i, false), std::move(reduced));
      }
    }
    // Duplicate fanins collapse: f(a, a) is a 1-input function of a.
    if (fanins.size() == 2 && fanins[0] == fanins[1]) {
      std::uint64_t bits = 0;
      if (tt.eval(0b00)) bits |= 1;
      if (tt.eval(0b11)) bits |= 2;
      return emit(TruthTable(1, bits), {fanins[0]});
    }
    if (tt == TruthTable::buffer()) return fanins[0];
    const CseKey key = make_key(tt, fanins);
    if (auto it = cse_.find(key); it != cse_.end()) return it->second;
    const NetId result = output_.add_lut(tt, std::move(fanins));
    cse_.emplace(key, result);
    return result;
  }

  // Exact structural key: (truth bits, arity, fanin ids). Must be collision
  // free - merging two structurally different nodes would corrupt logic.
  using CseKey = std::array<std::uint64_t, 2>;
  static CseKey make_key(const TruthTable& tt,
                         const std::vector<NetId>& fanins) {
    CseKey key{};
    key[0] = (tt.bits() << 8) | tt.input_count();
    const std::uint64_t f0 = fanins.empty() ? ~0ull >> 32 : fanins[0].value();
    const std::uint64_t f1 =
        fanins.size() < 2 ? ~0ull >> 32 : fanins[1].value();
    key[1] = (f0 << 32) | f1;
    return key;
  }

  /// Recursive Shannon decomposition into INV/AND2/OR2.
  NetId build(const TruthTable& tt, const std::vector<NetId>& fanins) {
    if (tt.input_count() <= 2) return emit(tt, fanins);
    // Expand on the last input (keeps remaining indices stable).
    const std::uint32_t split = tt.input_count() - 1;
    std::vector<NetId> rest(fanins.begin(), fanins.end() - 1);
    const NetId x = fanins[split];
    const TruthTable f0 = tt.cofactor(split, false);
    const TruthTable f1 = tt.cofactor(split, true);
    const NetId low = build(f0, rest);
    const NetId high = build(f1, rest);
    if (low == high) return low;
    // f = (x & high) | (~x & low)
    const NetId xn = emit(TruthTable::inverter(), {x});
    const NetId a = emit(TruthTable::and_n(2), {x, high});
    const NetId b = emit(TruthTable::and_n(2), {xn, low});
    return emit(TruthTable::or_n(2), {a, b});
  }

  const Netlist& input_;
  Netlist output_;
  std::unordered_map<NetId, NetId> net_map_;
  std::map<CseKey, NetId> cse_;
  NetId const0_;
  NetId const1_;
};

}  // namespace

Netlist decompose_to_binary(const Netlist& input) {
  return Decomposer(input).run();
}

}  // namespace mcrt

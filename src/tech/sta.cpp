#include "tech/sta.h"

#include <algorithm>
#include <stdexcept>

namespace mcrt {

TimingReport analyze_timing(const Netlist& netlist) {
  TimingReport report;
  report.arrival.assign(netlist.net_count(), 0);
  const auto order = netlist.combinational_order();
  if (!order) throw std::invalid_argument("sta: combinational cycle");
  for (const NodeId id : *order) {
    const Node& node = netlist.node(id);
    if (node.kind != NodeKind::kLut) continue;
    std::int64_t arrival = 0;
    for (const NetId f : node.fanins) {
      arrival = std::max(arrival, report.arrival[f.index()]);
    }
    report.arrival[node.output.index()] = arrival + node.delay;
  }
  auto endpoint = [&](NetId net) {
    if (!net.valid()) return;
    report.period = std::max(report.period, report.arrival[net.index()]);
  };
  for (const NodeId po : netlist.outputs()) {
    endpoint(netlist.node(po).fanins[0]);
  }
  for (const Register& ff : netlist.registers()) {
    endpoint(ff.d);
    endpoint(ff.en);
    endpoint(ff.sync_ctrl);
    endpoint(ff.async_ctrl);
  }
  return report;
}

std::int64_t compute_period(const Netlist& netlist) {
  return analyze_timing(netlist).period;
}

}  // namespace mcrt

// Critical-path extraction and timing reports.
//
// Beyond the single worst-path delay of sta.h, this module reconstructs the
// K worst register-to-register (or I/O) combinational paths with their
// through-points — the report a designer reads to see *where* retiming
// helped and what limits the clock next. Used by the `mcrt timing` CLI
// command and the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace mcrt {

/// One combinational path from a timing start point to an endpoint.
struct TimingPath {
  std::int64_t delay = 0;
  /// Kind of endpoint the path terminates at.
  enum class Endpoint { kRegisterD, kRegisterControl, kPrimaryOutput };
  Endpoint endpoint = Endpoint::kPrimaryOutput;
  /// Name of the endpoint object (register or output).
  std::string endpoint_name;
  /// Nets along the path, start point first (a PI net or a register Q net).
  std::vector<NetId> nets;
};

/// The K worst paths, most critical first. Paths are maximal (they begin
/// at a sequential/primary start point). Ties broken deterministically.
std::vector<TimingPath> worst_paths(const Netlist& netlist, std::size_t k);

/// Human-readable report of the K worst paths.
std::string format_timing_report(const Netlist& netlist,
                                 const std::vector<TimingPath>& paths);

}  // namespace mcrt

#include "workload/generator.h"

#include <algorithm>
#include <cassert>

#include "base/rng.h"
#include "base/strings.h"

namespace mcrt {
namespace {

/// Builder state shared by the block constructors.
class CircuitBuilder {
 public:
  explicit CircuitBuilder(const CircuitProfile& profile)
      : profile_(profile), rng_(profile.seed) {}

  Netlist run() {
    reserve_from_profile();
    clk_ = netlist_.add_input("clk");
    if (profile_.use_async) rst_ = netlist_.add_input("rst");
    for (std::size_t i = 0; i < profile_.data_inputs; ++i) {
      data_.push_back(netlist_.add_input(str_format("in%zu", i)));
    }
    build_control_section();
    std::size_t block = 0;
    for (const auto& p : profile_.pipelines) {
      build_pipeline(p, block++);
    }
    for (const auto& a : profile_.accumulators) {
      build_accumulator(a, block++);
    }
    for (const auto& s : profile_.shifts) {
      build_shift_group(s, block++);
    }
    emit_outputs();
    return std::move(netlist_);
  }

 private:
  /// The profile states every block's element counts, so the expected
  /// totals are a closed-form sum; reserving them up front keeps the
  /// netlist vectors from reallocating while blocks are appended. Slight
  /// over-estimates are fine (reserve is capacity, not size).
  void reserve_from_profile() {
    std::size_t regs = profile_.counter_bits;
    std::size_t luts = 4 * profile_.counter_bits +
                       4 * profile_.control_signals + 8;
    for (const auto& p : profile_.pipelines) {
      luts += p.width * p.depth + p.width;
      regs += p.width * p.registers;
    }
    for (const auto& a : profile_.accumulators) {
      luts += 3 * a.width;
      regs += a.width;
    }
    for (const auto& s : profile_.shifts) {
      luts += s.width + 2;
      regs += s.width * s.length;
    }
    const std::size_t ios = profile_.data_inputs + 2 + luts / 4 + 8;
    const std::size_t nodes = luts + ios;
    netlist_.reserve(nodes + regs, nodes, regs);
  }

  struct ControlSet {
    NetId en;          ///< invalid = no enable
    NetId sync_ctrl;   ///< invalid = none
    ResetVal sync_val = ResetVal::kDontCare;
    NetId async_ctrl;  ///< invalid = none
    ResetVal async_val = ResetVal::kDontCare;
  };

  NetId random_gate(std::vector<NetId> fanins) {
    const std::size_t arity = fanins.size();
    TruthTable tt;
    switch (rng_.below(4)) {
      case 0: tt = TruthTable::and_n(static_cast<std::uint32_t>(arity)); break;
      case 1: tt = TruthTable::or_n(static_cast<std::uint32_t>(arity)); break;
      case 2: tt = TruthTable::xor_n(static_cast<std::uint32_t>(arity)); break;
      default:
        tt = TruthTable::nand_n(static_cast<std::uint32_t>(arity));
        break;
    }
    return netlist_.add_lut(tt, std::move(fanins));
  }

  NetId pick(const std::vector<NetId>& pool) {
    return pool[rng_.below(pool.size())];
  }

  /// A register with the given control set.
  NetId make_reg(NetId d, const ControlSet& ctrl, const std::string& name) {
    Register spec;
    spec.d = d;
    spec.clk = clk_;
    spec.en = ctrl.en;
    spec.sync_ctrl = ctrl.sync_ctrl;
    spec.sync_val = ctrl.sync_ctrl.valid() ? ctrl.sync_val
                                           : ResetVal::kDontCare;
    spec.async_ctrl = ctrl.async_ctrl;
    spec.async_val = ctrl.async_ctrl.valid() ? ctrl.async_val
                                             : ResetVal::kDontCare;
    spec.name = name;
    return netlist_.add_register(std::move(spec));
  }

  void build_control_section() {
    // A ripple-enable counter: bit i toggles when all lower bits are 1.
    // Counter registers use the plain (async-only) class.
    ControlSet counter_ctrl;
    if (rst_.valid()) {
      counter_ctrl.async_ctrl = rst_;
      counter_ctrl.async_val = ResetVal::kZero;
    }
    std::vector<NetId> bits;
    NetId carry;  // all lower bits set
    for (std::size_t b = 0; b < profile_.counter_bits; ++b) {
      // Placeholder D: fixed after Q nets exist (feedback). We build the
      // feedback by creating the register on a fresh D net that we then
      // drive with the toggle logic reading the register outputs.
      const NetId d = netlist_.add_net(str_format("cnt%zu_d", b));
      Register spec;
      spec.d = d;
      spec.clk = clk_;
      spec.async_ctrl = counter_ctrl.async_ctrl;
      spec.async_val = counter_ctrl.async_ctrl.valid() ? ResetVal::kZero
                                                       : ResetVal::kDontCare;
      spec.name = str_format("cnt%zu", b);
      const NetId q = netlist_.add_register(std::move(spec));
      bits.push_back(q);
      // toggle = q XOR carry ; first bit toggles every cycle.
      NetId toggle;
      if (b == 0) {
        toggle = netlist_.add_lut(TruthTable::inverter(), {q});
        carry = q;
      } else {
        toggle = netlist_.add_lut(TruthTable::xor_n(2), {q, carry});
        carry = netlist_.add_lut(TruthTable::and_n(2), {carry, q});
      }
      netlist_.add_lut_driving(d, TruthTable::buffer(), {toggle});
    }

    // Control signals: decode cones over the counter plus data inputs.
    const std::size_t n = std::max<std::size_t>(profile_.control_signals, 1);
    for (std::size_t i = 0; i < n; ++i) {
      ControlSet ctrl;
      if (rst_.valid() && profile_.use_async && rng_.chance(0.8)) {
        // Most registers clear on the global reset; some use a *derived*
        // reset (OR of rst with a soft-reset condition), giving distinct
        // async classes whose control cones pass through logic - the case
        // the paper's control-tap pseudo-outputs exist for.
        if (rng_.chance(0.3) && !data_.empty()) {
          const NetId soft = netlist_.add_lut(
              TruthTable::and_n(2), {pick(data_), pick(data_)},
              str_format("soft_rst%zu", i));
          ctrl.async_ctrl = netlist_.add_lut(TruthTable::or_n(2),
                                             {rst_, soft},
                                             str_format("arst%zu", i));
        } else {
          ctrl.async_ctrl = rst_;
        }
        ctrl.async_val = rng_.chance(0.25) ? ResetVal::kOne : ResetVal::kZero;
      }
      if (profile_.use_en && (i != 0 || n == 1)) {
        // Structurally and functionally distinct decode per control set:
        // rotate through counter-bit pairs plus a data input, with a bank
        // of non-degenerate 3-input functions. Distinct functions over
        // distinct cones keep the BDD class analysis from merging them
        // (real designs have one enable condition per interface).
        static constexpr std::uint64_t kDecodeFunctions[] = {
            0xE8, 0x96, 0xD4, 0xB2, 0x71, 0x2B, 0x4D, 0x17,
            0x69, 0x8E, 0x3C, 0xA5, 0x5A, 0xC3, 0x36, 0xD9,
        };
        const NetId x = bits[i % bits.size()];
        const NetId y = bits[(i / bits.size() + i + 1) % bits.size()];
        const NetId z = data_.empty() ? bits[0] : data_[i % data_.size()];
        const TruthTable tt(3, kDecodeFunctions[i % 16]);
        ctrl.en = netlist_.add_lut(tt, {x, y, z}, str_format("en%zu", i));
      }
      if (profile_.use_sync && rng_.chance(0.5)) {
        ctrl.sync_ctrl = netlist_.add_lut(TruthTable::and_n(2),
                                          {pick(bits), pick(bits)},
                                          str_format("sclr%zu", i));
        ctrl.sync_val = rng_.chance(0.5) ? ResetVal::kOne : ResetVal::kZero;
      }
      controls_.push_back(ctrl);
    }
    // Counter bits are observable (keeps the control section live).
    taps_.push_back(carry);
  }

  const ControlSet& control_for_block(std::size_t block) {
    return controls_[block % controls_.size()];
  }

  void build_pipeline(const CircuitProfile::Pipeline& p, std::size_t block) {
    std::vector<NetId> layer;
    for (std::size_t i = 0; i < p.width; ++i) layer.push_back(pick(data_));
    // All register layers sit bunched about two thirds into the cascade
    // (the HDL "register the result a few times" idiom): retiming has to
    // spread them both ways to balance the stages, and the trailing
    // combinational depth keeps minarea from draining them into the
    // output compression logic.
    const std::size_t insert_after =
        p.depth == 0 ? 0 : 1 + (p.depth * 2) / 3;
    for (std::size_t d = 0; d < p.depth; ++d) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i < p.width; ++i) {
        const std::size_t arity = 2 + rng_.below(3);  // 2..4
        std::vector<NetId> fanins;
        // Mostly previous layer, occasionally a fresh input (keeps cones
        // wide and the mapped depth realistic).
        for (std::size_t k = 0; k < arity; ++k) {
          fanins.push_back(rng_.chance(0.9) ? pick(layer) : pick(data_));
        }
        next.push_back(random_gate(std::move(fanins)));
      }
      layer = std::move(next);
      if (d + 1 == insert_after) {
        for (std::size_t r = 0; r < p.registers; ++r) {
          // Each pipeline stage has its own stall condition (distinct
          // control set), as real interfaces do; this drives the class
          // count toward the configured number of control signals.
          const ControlSet& ctrl = control_for_block(block + 3 * r);
          for (std::size_t i = 0; i < p.width; ++i) {
            layer[i] = make_reg(layer[i], ctrl,
                                str_format("p%zu_r%zu_%zu", block, r, i));
          }
        }
      }
    }
    for (const NetId n : layer) taps_.push_back(n);
  }

  void build_accumulator(const CircuitProfile::Accumulator& a,
                         std::size_t block) {
    const ControlSet& ctrl = control_for_block(block);
    // acc' = acc XOR (in AND acc_rot): a feedback datapath with one
    // register layer; retiming cannot pull registers out of the loop, but
    // the input cone can absorb some.
    std::vector<NetId> state_d;
    std::vector<NetId> state_q;
    for (std::size_t i = 0; i < a.width; ++i) {
      const NetId d = netlist_.add_net(str_format("acc%zu_d%zu", block, i));
      Register spec;
      spec.d = d;
      spec.clk = clk_;
      spec.en = ctrl.en;
      spec.async_ctrl = ctrl.async_ctrl;
      spec.async_val =
          ctrl.async_ctrl.valid() ? ctrl.async_val : ResetVal::kDontCare;
      spec.sync_ctrl = ctrl.sync_ctrl;
      spec.sync_val =
          ctrl.sync_ctrl.valid() ? ctrl.sync_val : ResetVal::kDontCare;
      spec.name = str_format("acc%zu_%zu", block, i);
      state_q.push_back(netlist_.add_register(std::move(spec)));
      state_d.push_back(d);
    }
    for (std::size_t i = 0; i < a.width; ++i) {
      const NetId rotated = state_q[(i + 1) % a.width];
      const NetId input = pick(data_);
      const NetId masked =
          netlist_.add_lut(TruthTable::and_n(2), {input, rotated});
      const NetId next =
          netlist_.add_lut(TruthTable::xor_n(2), {state_q[i], masked});
      netlist_.add_lut_driving(state_d[i], TruthTable::buffer(), {next});
    }
    taps_.push_back(state_q[0]);
    taps_.push_back(state_q[a.width / 2]);
  }

  void build_shift_group(const CircuitProfile::ShiftGroup& s,
                         std::size_t block) {
    const ControlSet& ctrl = control_for_block(block);
    // A delay line: one register chain with `width` taps at staggered
    // depths (the realistic shared-shift-register idiom; tap depth cycles
    // through the chain). Exercises the fanout-sharing cost model.
    const NetId head = random_gate({pick(data_), pick(data_)});
    std::vector<NetId> chain{head};
    for (std::size_t k = 0; k < s.length; ++k) {
      chain.push_back(make_reg(chain.back(), ctrl,
                               str_format("sh%zu_%zu", block, k)));
    }
    for (std::size_t t = 0; t < s.width; ++t) {
      const NetId tap = chain[1 + (t % s.length)];
      // Light per-tap logic so the taps stay distinct.
      taps_.push_back(
          netlist_.add_lut(TruthTable::xor_n(2), {tap, pick(data_)}));
    }
  }

  void emit_outputs() {
    // XOR-compress taps pairwise until a manageable output count, then one
    // PO per remaining tap: everything stays observable.
    std::vector<NetId> nets = taps_;
    while (nets.size() > 16) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < nets.size(); i += 2) {
        next.push_back(
            netlist_.add_lut(TruthTable::xor_n(2), {nets[i], nets[i + 1]}));
      }
      if (nets.size() % 2) next.push_back(nets.back());
      nets = std::move(next);
    }
    for (std::size_t i = 0; i < nets.size(); ++i) {
      netlist_.add_output(str_format("out%zu", i), nets[i]);
    }
  }

  const CircuitProfile& profile_;
  Rng rng_;
  Netlist netlist_;
  NetId clk_;
  NetId rst_;
  std::vector<NetId> data_;
  std::vector<ControlSet> controls_;
  std::vector<NetId> taps_;
};

}  // namespace

Netlist generate_circuit(const CircuitProfile& profile) {
  return CircuitBuilder(profile).run();
}

std::vector<CircuitProfile> paper_suite() {
  std::vector<CircuitProfile> suite;
  auto make = [&](const std::string& name, std::uint64_t seed, bool async,
                  bool en, std::size_t signals) {
    CircuitProfile p;
    p.name = name;
    p.seed = seed;
    p.use_async = async;
    p.use_en = en;
    p.control_signals = signals;
    suite.push_back(p);
    return suite.size() - 1;
  };

  {  // C1: small, AS/AC + EN, ~35 FF / ~90 LUT, 8 classes
    const auto i = make("C1", 101, true, true, 8);
    suite[i].pipelines = {{6, 9, 2}, {4, 7, 2}};
    suite[i].accumulators = {{6}};
    suite[i].shifts = {{3, 6}};
    suite[i].counter_bits = 3;
  }
  {  // C2: tiny register count, logic-heavy, 3 classes
    const auto i = make("C2", 102, true, true, 3);
    suite[i].pipelines = {{5, 16, 1}};
    suite[i].accumulators = {{4}};
    suite[i].counter_bits = 3;
  }
  {  // C3: EN only (no async), 4 classes
    const auto i = make("C3", 103, false, true, 4);
    suite[i].pipelines = {{5, 8, 2}};
    suite[i].shifts = {{5, 8}};
    suite[i].counter_bits = 3;
  }
  {  // C4: the big pipeline design, EN only, 11 classes
    const auto i = make("C4", 104, false, true, 11);
    suite[i].data_inputs = 16;
    suite[i].pipelines = {{20, 18, 4}, {20, 15, 4}, {14, 14, 3}, {14, 12, 3},
                          {10, 12, 2}};
    suite[i].accumulators = {{16}, {12}};
    suite[i].shifts = {{4, 12}};
    suite[i].counter_bits = 5;
  }
  {  // C5: AS/AC but no enables, 15 classes come from sync decodes
    const auto i = make("C5", 105, true, false, 15);
    suite[i].use_sync = true;
    suite[i].pipelines = {{8, 8, 2}, {6, 6, 2}};
    suite[i].shifts = {{8, 20}, {6, 16}};
    suite[i].accumulators = {{8}};
    suite[i].counter_bits = 4;
  }
  {  // C6: the big single-class design: async only, one shared reset
    const auto i = make("C6", 106, true, false, 1);
    suite[i].data_inputs = 16;
    suite[i].pipelines = {{24, 10, 8}, {24, 10, 8}, {20, 8, 7}, {20, 8, 7},
                          {16, 8, 6}};
    suite[i].shifts = {{10, 60}, {10, 40}};
    suite[i].counter_bits = 4;
  }
  {  // C7: control-heavy design, 40 classes
    const auto i = make("C7", 107, true, true, 40);
    suite[i].data_inputs = 12;
    suite[i].pipelines = {{12, 7, 4}, {10, 7, 4}, {10, 6, 3}, {8, 6, 3},
                          {8, 5, 3}, {8, 5, 3}};
    suite[i].accumulators = {{10}, {10}, {8}, {8}, {10}};
    suite[i].shifts = {{6, 20}, {6, 20}};
    suite[i].counter_bits = 5;
  }
  {  // C8: EN only, mid-size
    const auto i = make("C8", 108, false, true, 7);
    suite[i].pipelines = {{8, 8, 3}, {6, 6, 2}};
    suite[i].accumulators = {{8}};
    suite[i].shifts = {{6, 20}};
    suite[i].counter_bits = 4;
  }
  {  // C9: logic-heavy relative to registers
    const auto i = make("C9", 109, true, true, 6);
    suite[i].data_inputs = 12;
    suite[i].pipelines = {{12, 18, 3}, {10, 16, 2}};
    suite[i].accumulators = {{6}};
    suite[i].counter_bits = 4;
  }
  {  // C10: larger mixed design
    const auto i = make("C10", 110, true, true, 5);
    suite[i].data_inputs = 12;
    suite[i].pipelines = {{16, 16, 4}, {14, 14, 3}, {12, 12, 3}};
    suite[i].accumulators = {{10}};
    suite[i].shifts = {{8, 28}};
    suite[i].counter_bits = 4;
  }
  return suite;
}

CircuitProfile scaled_profile(std::size_t target_gates, std::uint64_t seed) {
  CircuitProfile p;
  p.name = target_gates % 1000000 == 0
               ? str_format("s%zum", target_gates / 1000000)
               : str_format("s%zuk", target_gates / 1000);
  p.seed = seed;
  p.use_async = true;
  p.use_en = true;
  p.control_signals = 8;
  p.data_inputs = 32;
  p.counter_bits = 6;
  // Fixed-size pipeline slices; only the count scales, so per-window
  // structure (and the partitioner's job) is the same at every size.
  constexpr std::size_t kWidth = 32;
  constexpr std::size_t kDepth = 24;
  constexpr std::size_t kSliceGates = kWidth * kDepth + kWidth;
  const std::size_t slices =
      std::max<std::size_t>(1, target_gates / kSliceGates);
  p.pipelines.reserve(slices);
  for (std::size_t i = 0; i < slices; ++i) {
    p.pipelines.push_back({kWidth, kDepth, 1 + i % 3});
  }
  // Feedback and shared-shift structure in proportion, so min-area and
  // class analysis see the same block mix as the Table-1 profiles.
  for (std::size_t i = 0; i + 1 < slices / 16 + 1; ++i) {
    p.accumulators.push_back({16});
  }
  for (std::size_t i = 0; i + 1 < slices / 24 + 1; ++i) {
    p.shifts.push_back({8, 12});
  }
  return p;
}

std::vector<CircuitProfile> scaled_suite() {
  return {
      scaled_profile(100000, 201),
      scaled_profile(250000, 202),
      scaled_profile(500000, 203),
      scaled_profile(1000000, 204),
  };
}

std::vector<CircuitProfile> random_suite(std::size_t count,
                                         std::uint64_t seed) {
  std::vector<CircuitProfile> suite;
  suite.reserve(count);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < count; ++i) {
    CircuitProfile p;
    p.name = str_format("r%02zu", i);
    // Per-circuit seed drawn from the suite stream: stable under `count`
    // prefix extension (circuit k is the same in a 10- and 64-deep suite).
    p.seed = rng.next() | 1;
    p.use_async = rng.chance(0.5);
    p.use_en = rng.chance(0.7);
    p.use_sync = rng.chance(0.3);
    p.control_signals = static_cast<std::size_t>(rng.range(1, 5));
    p.data_inputs = static_cast<std::size_t>(rng.range(4, 8));
    const std::size_t n_pipelines = static_cast<std::size_t>(rng.range(1, 2));
    for (std::size_t j = 0; j < n_pipelines; ++j) {
      CircuitProfile::Pipeline pipe;
      pipe.width = static_cast<std::size_t>(rng.range(3, 6));
      pipe.depth = static_cast<std::size_t>(rng.range(2, 5));
      pipe.registers = static_cast<std::size_t>(rng.range(1, 2));
      p.pipelines.push_back(pipe);
    }
    if (rng.chance(0.6)) {
      p.accumulators.push_back({static_cast<std::size_t>(rng.range(3, 6))});
    }
    if (rng.chance(0.5)) {
      CircuitProfile::ShiftGroup shift;
      shift.width = static_cast<std::size_t>(rng.range(2, 4));
      shift.length = static_cast<std::size_t>(rng.range(2, 5));
      p.shifts.push_back(shift);
    }
    p.counter_bits = static_cast<std::size_t>(rng.range(2, 4));
    suite.push_back(std::move(p));
  }
  return suite;
}

}  // namespace mcrt

// Synthetic industrial-style FPGA workloads (substitute for the paper's
// proprietary RTL designs; see DESIGN.md §2).
//
// Each circuit is assembled from blocks that mirror what the paper's
// industrial designs contain:
//  - *pipelines*: wide combinational clouds whose registers sit bunched at
//    the end of the chain (HDL coding style), leaving retiming real work;
//  - *accumulators*: feedback datapaths whose registers cannot move far;
//  - *shift groups*: register chains that exercise fanout sharing;
//  - a *control section*: counters plus decode cones that generate the
//    load-enable and synchronous-clear signals the register classes use.
//
// The C1..C10 profiles are tuned so the resulting circuit characteristics
// (#FF, #LUT, AS/AC and EN usage, and the class count of Table 2) land in
// the same regime as the paper's Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace mcrt {

struct CircuitProfile {
  std::string name;
  std::uint64_t seed = 1;

  bool use_async = true;   ///< some registers get AS/AC (Table 1 "AS/AC")
  bool use_en = true;      ///< some registers get load enables (Table 1 "EN")
  bool use_sync = false;   ///< synchronous set/clear (decomposed before map)

  /// Number of distinct enable/reset signal combinations to spread over the
  /// registers (drives Table 2 "#Class").
  std::size_t control_signals = 4;

  std::size_t data_inputs = 8;

  struct Pipeline {
    std::size_t width = 8;        ///< gates per layer
    std::size_t depth = 6;        ///< combinational layers
    std::size_t registers = 2;    ///< register layers bunched at the end
  };
  std::vector<Pipeline> pipelines;

  struct Accumulator {
    std::size_t width = 8;
  };
  std::vector<Accumulator> accumulators;

  struct ShiftGroup {
    std::size_t width = 4;   ///< parallel taps sharing the chain head
    std::size_t length = 3;  ///< registers per tap
  };
  std::vector<ShiftGroup> shifts;

  std::size_t counter_bits = 4;  ///< control-section counter width
};

/// Generates the circuit for a profile. The result validates cleanly, has
/// no combinational cycles and every register reachable from the outputs.
Netlist generate_circuit(const CircuitProfile& profile);

/// The ten profiles used by the Table 1/2/3 benchmark harnesses.
std::vector<CircuitProfile> paper_suite();

/// A profile whose generated circuit lands near `target_gates` LUTs,
/// assembled from fixed-size pipeline slices (width 32, depth 24) whose
/// *count* scales, plus proportional accumulator/shift structure and the
/// usual control section. Construction streams block by block and the
/// builder pre-reserves every netlist vector from the profile's closed-form
/// counts, so generating 1e5..1e6-gate designs (the windowed-retiming
/// bench range) stays allocation-cheap and linear.
CircuitProfile scaled_profile(std::size_t target_gates, std::uint64_t seed);

/// The large-design suite used by the windowed-retiming benches:
/// s100k / s250k / s500k / s1m (approximate LUT counts).
std::vector<CircuitProfile> scaled_suite();

/// `count` small randomized profiles ("r00", "r01", ...), fully determined
/// by `seed`: block mix, widths/depths and register-class structure are
/// drawn per circuit, sized so whole corpora stay cheap to run. This is
/// the corpus source for the bulk-flow regression suites (`mcrt corpus`,
/// tests/pipeline/bulk_vs_serial_test.cpp) — keep it deterministic.
std::vector<CircuitProfile> random_suite(std::size_t count,
                                         std::uint64_t seed);

}  // namespace mcrt

#include "workload/random_circuit.h"

#include "base/rng.h"
#include "base/strings.h"

namespace mcrt {

Netlist random_sequential_circuit(std::uint64_t seed,
                                  const RandomCircuitOptions& options) {
  Rng rng(seed);
  Netlist netlist;

  const NetId clk = netlist.add_input("clk");
  NetId rst;
  if (options.use_async || options.use_sync) {
    rst = netlist.add_input("rst");
  }
  std::vector<NetId> pool;
  for (std::size_t i = 0; i < options.inputs; ++i) {
    pool.push_back(netlist.add_input(str_format("in%zu", i)));
  }
  auto pick = [&] { return pool[rng.below(pool.size())]; };

  // Control signatures: (en, sync, async) selections reused by registers.
  struct Signature {
    NetId en;
    NetId sync_ctrl;
    ResetVal sync_val = ResetVal::kDontCare;
    NetId async_ctrl;
    ResetVal async_val = ResetVal::kDontCare;
  };
  std::vector<Signature> signatures;
  for (std::size_t i = 0; i < std::max<std::size_t>(options.control_signatures, 1);
       ++i) {
    Signature sig;
    if (options.use_en && rng.chance(0.7)) {
      sig.en = netlist.add_lut(
          rng.chance(0.5) ? TruthTable::or_n(2) : TruthTable::nand_n(2),
          {pick(), pick()}, str_format("ctl_en%zu", i));
    }
    if (options.use_async && rng.chance(0.8)) {
      sig.async_ctrl = rst;
      sig.async_val = rng.chance(0.3) ? ResetVal::kOne : ResetVal::kZero;
    }
    if (options.use_sync && rng.chance(0.5)) {
      sig.sync_ctrl = rst;
      sig.sync_val = rng.chance(0.5) ? ResetVal::kOne : ResetVal::kZero;
    }
    signatures.push_back(sig);
  }

  auto add_register = [&](NetId d, NetId q) {
    const Signature& sig = signatures[rng.below(signatures.size())];
    Register spec;
    spec.d = d;
    spec.q = q;
    spec.clk = clk;
    spec.en = sig.en;
    spec.sync_ctrl = sig.sync_ctrl;
    spec.sync_val = sig.sync_ctrl.valid() ? sig.sync_val
                                          : ResetVal::kDontCare;
    spec.async_ctrl = sig.async_ctrl;
    spec.async_val = sig.async_ctrl.valid() ? sig.async_val
                                            : ResetVal::kDontCare;
    return netlist.add_register(std::move(spec));
  };

  // Feedback registers: D nets pre-created, driven by gates added later.
  std::vector<NetId> feedback_d;
  for (std::size_t i = 0; i < options.feedback_registers; ++i) {
    const NetId d = netlist.add_net(str_format("fb%zu_d", i));
    feedback_d.push_back(d);
    pool.push_back(add_register(d, NetId{}));
  }

  // Random gates and registers interleaved.
  const std::size_t total =
      options.gates + options.registers;
  std::size_t regs_left = options.registers;
  for (std::size_t step = 0; step < total; ++step) {
    const bool make_reg =
        regs_left > 0 &&
        rng.below(total - step) < regs_left;
    if (make_reg) {
      pool.push_back(add_register(pick(), NetId{}));
      --regs_left;
    } else {
      const std::size_t arity = 1 + rng.below(4);  // 1..4
      std::vector<NetId> fanins;
      for (std::size_t k = 0; k < arity; ++k) fanins.push_back(pick());
      TruthTable tt(static_cast<std::uint32_t>(arity),
                    rng.next());  // random function
      pool.push_back(netlist.add_lut(tt, std::move(fanins)));
    }
  }

  // Close the feedback loops.
  for (const NetId d : feedback_d) {
    netlist.add_lut_driving(d, TruthTable::xor_n(2), {pick(), pick()});
  }

  for (std::size_t i = 0; i < options.outputs; ++i) {
    netlist.add_output(str_format("out%zu", i), pick());
  }
  return netlist;
}

}  // namespace mcrt

// Random sequential circuits for property-based tests.
//
// Structurally valid by construction (acyclic combinational logic, every
// net driven); registers draw their controls from a small set of class
// signatures so multiple-class behaviour is exercised. Feedback registers
// (whose data cones see their own output) are added explicitly.
#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace mcrt {

struct RandomCircuitOptions {
  std::size_t gates = 40;
  std::size_t registers = 10;
  std::size_t feedback_registers = 2;
  std::size_t inputs = 5;
  std::size_t outputs = 4;
  std::size_t control_signatures = 3;
  bool use_async = true;
  bool use_en = true;
  bool use_sync = false;
};

Netlist random_sequential_circuit(std::uint64_t seed,
                                  const RandomCircuitOptions& options = {});

}  // namespace mcrt

// Crash-safe persistent second cache tier for the retiming daemon.
//
// The in-memory ResultCache dies with the process; a restarted daemon used
// to re-execute every request cold. DiskCache is a content-addressed
// on-disk tier behind it, keyed by the same 192-bit
// (structural hash x flow-options hash) key: entries are files named from
// the key's hex digits, so the directory itself is the index and a restart
// recovers the whole tier by scanning it.
//
// Crash safety is the design center:
//  - Writes are atomic: "<name>.tmp" + rename, the same discipline as job
//    outputs, so a crash mid-write leaves a stray .tmp (deleted on the
//    next startup scan), never a half-visible entry.
//  - Every entry carries its payload lengths and a 64-bit checksum; the
//    startup recovery scan and every read verify them. A torn, truncated
//    or bit-flipped entry is moved to the "quarantine/" subdirectory —
//    never deleted (it is forensic evidence), never *served* (the request
//    falls through to a cold execute). Zero corrupt results served is the
//    tier's contract, and the chaos harness's differential checks it
//    byte-for-byte against `mcrt bulk`.
//  - Eviction is size-budgeted LRU (`mcrt serve --disk-cache-mb`): the
//    scan orders entries by mtime, inserts refresh recency, and the
//    coldest files are deleted once the budget is exceeded.
//  - Entries optionally age out (`mcrt serve --disk-cache-ttl-s`): a TTL
//    measured from the file's mtime. Expiry is enforced at the two points
//    an entry could otherwise be served — the startup recovery scan and
//    lookup() — so a stale result is deleted (not quarantined: age is not
//    corruption) and the request falls through to a cold execute. TTL 0
//    disables aging; entries then live until evicted by the size budget.
//
// Fault injection: writes fire the "io:write:<file>" site and reads fire
// "io:read:<file>" (FaultInjector's io-class actions short-write /
// fsync-fail / enospc / corrupt plus the generic throw / fail / stall), so
// every recovery path above is deterministically testable.
//
// All operations are serialized by one mutex; the daemon only touches the
// disk tier on memory-tier misses and on insertions, both of which are
// adjacent to multi-millisecond flow executions.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/cancel.h"
#include "base/fault_injector.h"
#include "server/result_cache.h"

namespace mcrt {

inline constexpr const char* kDiskCacheMagic = "mcrt-disk-cache/1";

struct DiskCacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Entries moved to quarantine/ (startup scan + read-time verification).
  std::uint64_t quarantined = 0;
  /// Insertions that failed (I/O error, injected fault); the daemon keeps
  /// serving, the entry is simply not persisted.
  std::uint64_t write_failures = 0;
  /// Entries deleted because they outlived the TTL (startup scan +
  /// lookup-time age check). Always 0 when the TTL is disabled.
  std::uint64_t expired = 0;
};

class DiskCache {
 public:
  /// `capacity_bytes == 0` disables the tier (open() still succeeds,
  /// lookups miss, inserts drop). `ttl_seconds == 0` disables age-out.
  /// `faults` null = the global injector.
  DiskCache(std::string directory, std::size_t capacity_bytes,
            std::uint64_t ttl_seconds = 0, FaultInjector* faults = nullptr);

  /// Creates the directory and runs the recovery scan: stray .tmp files
  /// are deleted, entries failing magic/length/checksum verification are
  /// quarantined, the survivors build the LRU index (coldest = oldest
  /// mtime) and the size budget is enforced. Returns false and sets
  /// *error when the directory cannot be created or scanned.
  [[nodiscard]] bool open(std::string* error);

  /// Reads, verifies and decodes the entry for `key`. A verification
  /// failure quarantines the file and reports a miss — a corrupt entry is
  /// never served. `count_miss=false` keeps an absent-entry miss out of
  /// the counters (internal re-checks); quarantines always count.
  [[nodiscard]] std::optional<CachedResult> lookup(
      const CacheKey& key, const CancelToken* cancel = nullptr,
      bool count_miss = true);

  /// Persists a successful result atomically, evicting cold entries past
  /// the budget. Failures are counted and swallowed (the caller served the
  /// result already; persistence is best-effort).
  void insert(const CacheKey& key, const CachedResult& result,
              const CancelToken* cancel = nullptr);

  [[nodiscard]] DiskCacheStats stats() const;
  [[nodiscard]] const std::string& directory() const { return directory_; }

  // --- exposed for tests and the chaos harness ----------------------------
  /// "<hi:016x><lo:016x>-<flow:016x>.entry"
  [[nodiscard]] static std::string entry_file_name(const CacheKey& key);
  /// Serializes an entry to its on-disk bytes (header + meta + BLIF).
  [[nodiscard]] static std::string encode_entry(const CacheKey& key,
                                                const CachedResult& result);
  /// Verifies and decodes on-disk bytes. Returns false and sets *error on
  /// any mismatch (magic, lengths, checksum, malformed meta).
  [[nodiscard]] static bool decode_entry(std::string_view bytes, CacheKey* key,
                                         CachedResult* result,
                                         std::string* error);

 private:
  struct Entry {
    CacheKey key;
    std::size_t bytes = 0;
  };

  [[nodiscard]] FaultInjector& injector() const;
  [[nodiscard]] bool expired_locked(std::filesystem::file_time_type mtime,
                                    std::filesystem::file_time_type now) const;
  void quarantine_locked(const std::string& file_name);
  void erase_index_locked(const CacheKey& key);
  void evict_to_fit_locked();
  [[nodiscard]] std::string path_of(const std::string& file_name) const;

  const std::string directory_;
  const std::size_t capacity_bytes_;
  const std::uint64_t ttl_seconds_;  ///< 0 = entries never age out
  FaultInjector* const faults_;

  mutable std::mutex mutex_;
  bool open_ = false;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = hottest
  std::unordered_map<CacheKey, std::list<Entry>::iterator,
                     CacheKeyHash>
      index_;
  DiskCacheStats counters_;
};

}  // namespace mcrt

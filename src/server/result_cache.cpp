#include "server/result_cache.h"

namespace mcrt {
namespace {

// splitmix64 finalizer; same mixing quality as the structural hash lanes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t hash_text(std::uint64_t h, std::string_view text) {
  std::uint64_t word = 0;
  int filled = 0;
  for (const char c : text) {
    word = (word << 8) | static_cast<unsigned char>(c);
    if (++filled == 8) {
      h = combine(h, word);
      word = 0;
      filled = 0;
    }
  }
  return combine(combine(h, word), text.size());
}

}  // namespace

std::uint64_t flow_options_hash(const std::string& script,
                                const PassManagerOptions& manager,
                                const ResourceBudgets& budgets) {
  std::uint64_t h = 0x6d6372744b657931ULL;  // "mcrtKey1"
  h = hash_text(h, script);
  h = combine(h, manager.check_invariants ? 1 : 0);
  h = combine(h, manager.check_equivalence ? 1 : 0);
  h = combine(h, static_cast<std::uint64_t>(manager.equivalence.cycles));
  h = combine(h, static_cast<std::uint64_t>(manager.equivalence.runs));
  h = combine(h, manager.equivalence.seed);
  h = combine(h, static_cast<std::uint64_t>(budgets.bdd_node_cap));
  h = combine(h, static_cast<std::uint64_t>(budgets.bmc_step_cap));
  h = combine(h, static_cast<std::uint64_t>(budgets.max_rss_bytes));
  return h;
}

std::size_t CachedResult::approximate_bytes() const {
  std::size_t bytes = sizeof(CachedResult) + blif.size() + job.name.size() +
                      job.input_path.size() + job.output_path.size() +
                      job.error.size();
  for (const PassExecution& pass : job.executed) {
    bytes += sizeof(PassExecution) + pass.name.size() + pass.summary.size();
  }
  for (const Diagnostic& diag : job.diagnostics) {
    bytes += sizeof(Diagnostic) + diag.origin.size() + diag.message.size();
  }
  bytes += job.profile.phases().size() * 64;
  return bytes;
}

std::optional<CachedResult> ResultCache::lookup(const CacheKey& key,
                                                bool count_miss) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (count_miss) ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ResultCache::insert(const CacheKey& key, CachedResult result) {
  const std::size_t bytes = result.approximate_bytes();
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > capacity_bytes_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(result), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  ++counters_.insertions;
  evict_to_fit_locked();
}

void ResultCache::evict_to_fit_locked() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& cold = lru_.back();
    bytes_ -= cold.bytes;
    index_.erase(cold.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats stats = counters_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace mcrt

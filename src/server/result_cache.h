// Content-addressed result cache for the retiming service.
//
// Retiming is deterministic: the same input netlist run through the same
// flow script under the same result-affecting options always produces the
// same output netlist, pass summaries and statistics. The daemon therefore
// keys completed results by (structural netlist hash, script/options hash)
// and serves repeated circuits — corpus regressions, clocking-conversion
// flows that re-run retiming per step, N clients sweeping the same designs
// — straight from memory in microseconds.
//
// The cache is a bounded, thread-safe LRU: entries charge their
// approximate in-memory footprint against a byte budget (`mcrt serve
// --cache-mb`), and inserting past the budget evicts from the cold end.
// Only successful (kOk) results are cached; failures, timeouts and
// cancellations always re-execute. Hit/miss/eviction counters feed the
// `{"stats"}` protocol frame.
//
// Keys are 192 bits (128-bit structural hash + 64-bit script/options
// hash); a collision would require ~2^96 distinct circuits in one daemon's
// lifetime, far beyond any realistic workload, so entries are trusted
// without byte-comparing inputs (docs/SERVER.md#cache discusses this).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "netlist/structural_hash.h"
#include "pipeline/job_executor.h"

namespace mcrt {

struct CacheKey {
  StructuralHash netlist;
  std::uint64_t flow = 0;  ///< hash of script + result-affecting options

  [[nodiscard]] bool operator==(const CacheKey&) const = default;
};

/// Hash functor shared by the memory and disk tiers' indexes.
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    // Lanes are already full-entropy; fold them.
    return static_cast<std::size_t>(key.netlist.hi ^ (key.netlist.lo * 3) ^
                                    (key.flow * 7));
  }
};

/// Digest of the flow script plus every option that can change a result
/// (invariant checking, equivalence spot checks, resource budgets).
/// Serialization-only options (canonical) and schedule-only ones
/// (timeouts) deliberately do not contribute.
[[nodiscard]] std::uint64_t flow_options_hash(const std::string& script,
                                              const PassManagerOptions& manager,
                                              const ResourceBudgets& budgets);

/// A cached successful result: the job record (stats, passes, diagnostics;
/// netlist field unused) plus the serialized output netlist.
struct CachedResult {
  BulkJobResult job;  ///< name/input/output are the *first* requester's
  std::string blif;   ///< write_blif_string() of the result netlist

  [[nodiscard]] std::size_t approximate_bytes() const;
};

struct CacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class ResultCache {
 public:
  /// `capacity_bytes == 0` disables caching (every lookup misses).
  explicit ResultCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns a copy of the entry and refreshes its recency, counting a
  /// hit; std::nullopt when absent. `count_miss=false` makes an absent
  /// entry silent — for internal re-checks (coalescing race-closes) that
  /// would otherwise count one request's miss twice.
  [[nodiscard]] std::optional<CachedResult> lookup(const CacheKey& key,
                                                   bool count_miss = true);

  /// Inserts (or refreshes) an entry, evicting cold entries until the
  /// budget holds. An entry larger than the whole budget is not cached.
  void insert(const CacheKey& key, CachedResult result);

  [[nodiscard]] CacheStats stats() const;
  void clear();

 private:
  struct Entry {
    CacheKey key;
    CachedResult result;
    std::size_t bytes = 0;
  };

  void evict_to_fit_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_;  ///< front = hottest
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  CacheStats counters_;
};

}  // namespace mcrt

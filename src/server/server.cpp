#include "server/server.h"

#include <utility>

#include "base/strings.h"

namespace mcrt {

RetimingServer::RetimingServer(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      admission_(options_.max_inflight, options_.retry_after_ms) {}

RetimingServer::~RetimingServer() {
  request_stop();
  shutdown_all_sessions();
}

bool RetimingServer::start(std::string* error) {
  if (!options_.disk_cache_dir.empty()) {
    disk_cache_ = std::make_unique<DiskCache>(
        options_.disk_cache_dir, options_.disk_cache_bytes,
        options_.disk_cache_ttl_seconds, options_.faults);
    if (!disk_cache_->open(error)) {
      disk_cache_.reset();
      return false;
    }
    const DiskCacheStats recovered = disk_cache_->stats();
    log_note("server",
             str_format("disk cache %s: %zu entries (%zu bytes) recovered, "
                        "%llu quarantined",
                        options_.disk_cache_dir.c_str(), recovered.entries,
                        recovered.bytes,
                        static_cast<unsigned long long>(
                            recovered.quarantined)));
  }
  if (!listener_.listen(options_.endpoint, error)) return false;
  pool_ = std::make_unique<ThreadPool>(options_.jobs);
  log_note("server", "listening on " + bound_endpoint().describe() +
                         str_format(" with %zu workers",
                                    pool_->worker_count()));
  return true;
}

void RetimingServer::run(const CancelToken* interrupt) {
  while (!stopping_.load(std::memory_order_acquire)) {
    if (cancel_requested(interrupt) != StopReason::kNone) {
      request_stop();
      break;
    }
    std::optional<SocketStream> stream =
        listener_.accept(options_.accept_timeout_ms);
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      reap_finished_sessions_locked();
      if (stream && !stopping_.load(std::memory_order_acquire)) {
        auto session = std::make_unique<Session>(*this, std::move(*stream),
                                                 next_session_id_++);
        session->start();
        sessions_.push_back(std::move(session));
      }
    }
  }
  listener_.close();
  shutdown_all_sessions();
  if (pool_ != nullptr) pool_->wait_idle();
  log_note("server", "stopped");
}

void RetimingServer::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  stop_token_.request_cancel();
}

void RetimingServer::shutdown_all_sessions() {
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) session->initiate_shutdown();
  for (auto& session : sessions) session->join();
}

void RetimingServer::reap_finished_sessions_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      (*it)->join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

SocketEndpoint RetimingServer::bound_endpoint() const {
  SocketEndpoint endpoint = options_.endpoint;
  if (!endpoint.is_unix()) endpoint.tcp_port = listener_.bound_port();
  return endpoint;
}

ServerStats RetimingServer::stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats = counters_;
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    stats.sessions = sessions_.size();
  }
  stats.jobs = pool_ != nullptr ? pool_->worker_count() : 0;
  return stats;
}

FaultInjector& RetimingServer::faults() const {
  return options_.faults != nullptr ? *options_.faults
                                    : FaultInjector::global();
}

std::optional<DiskCacheStats> RetimingServer::disk_cache_stats() const {
  if (disk_cache_ == nullptr) return std::nullopt;
  return disk_cache_->stats();
}

std::optional<CachedResult> RetimingServer::cache_lookup(
    const CacheKey& key, const CancelToken* cancel, bool count_miss) {
  if (auto hit = cache_.lookup(key, count_miss)) return hit;
  if (disk_cache_ != nullptr) {
    if (auto hit = disk_cache_->lookup(key, cancel, count_miss)) {
      cache_.insert(key, *hit);  // promote: next hit is a memory hit
      return hit;
    }
  }
  return std::nullopt;
}

void RetimingServer::cache_insert(const CacheKey& key, CachedResult result,
                                  const CancelToken* cancel) {
  if (disk_cache_ != nullptr) disk_cache_->insert(key, result, cancel);
  cache_.insert(key, std::move(result));
}

std::shared_ptr<CoalescedExecution> RetimingServer::try_lead(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(coalesce_mutex_);
  auto [it, inserted] = leading_.try_emplace(key);
  if (inserted) {
    it->second = std::make_shared<CoalescedExecution>();
    return nullptr;  // the caller leads
  }
  return it->second;
}

void RetimingServer::finish_lead(const CacheKey& key) {
  std::shared_ptr<CoalescedExecution> state;
  {
    std::lock_guard<std::mutex> lock(coalesce_mutex_);
    auto it = leading_.find(key);
    if (it == leading_.end()) return;
    state = std::move(it->second);
    leading_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->done = true;
  }
  state->cv.notify_all();
}

void RetimingServer::note_job_accepted() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++counters_.requests;
}

void RetimingServer::note_job_finished(JobStatus status, bool cached) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  switch (status) {
    case JobStatus::kOk: ++counters_.ok; break;
    case JobStatus::kTimeout: ++counters_.timeout; break;
    case JobStatus::kCancelled: ++counters_.cancelled; break;
    case JobStatus::kFailed:
    case JobStatus::kIoError: ++counters_.failed; break;
  }
  if (cached) ++counters_.cache_served;
}

void RetimingServer::note_busy() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++counters_.busy;
}

void RetimingServer::note_coalesced() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++counters_.coalesced;
}

void RetimingServer::log_note(const std::string& origin,
                              const std::string& message) {
  if (options_.log != nullptr) options_.log->note(origin, message);
}

}  // namespace mcrt

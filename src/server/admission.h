// Admission control and graceful degradation for the retiming daemon.
//
// The daemon used to accept unbounded concurrent work: every job frame went
// straight onto the shared ThreadPool's queue, so a burst of N requests
// from M clients made the p99 of *everyone* grow with N. The
// AdmissionController bounds the number of in-flight jobs and answers the
// overflow with a structured `busy` frame (a retry-after hint the client's
// backoff honors) instead of queueing without limit — shedding load early
// is what keeps the served requests' latency bounded under overload.
//
// Fairness: job requests may carry a "tenant" string. The in-flight budget
// is fair-shared across *active* tenants (tenants with work in flight):
// each tenant may hold at most max(1, max_inflight / active_tenants) slots,
// so one chatty tenant saturating the daemon cannot starve a second
// tenant's first request — there is always a slot a new tenant can claim.
//
// Draining: begin_drain() flips the controller into a mode where every new
// submission is rejected ("draining") while in-flight jobs run to
// completion — the clean-restart half of the crash-safety story (the disk
// cache tier is the other half). The health frame exposes the state so
// orchestrators can poll for "in-flight reached zero".
//
// All methods are thread-safe; sessions call try_admit()/release() from
// reader and pool threads concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace mcrt {

/// Counters + live state for the stats/health frames.
struct AdmissionStats {
  std::size_t inflight = 0;
  std::size_t max_inflight = 0;  ///< 0 = unbounded
  std::size_t active_tenants = 0;
  bool draining = false;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_tenant = 0;
  std::uint64_t rejected_draining = 0;
  int retry_after_ms = 0;  ///< the hint handed to rejected clients
};

class AdmissionController {
 public:
  struct Decision {
    bool admitted = false;
    std::string reason;      ///< "overloaded" | "tenant-throttled" | "draining"
    int retry_after_ms = 0;  ///< backoff hint for the busy frame
  };

  /// `max_inflight == 0` disables the bound (every submission admitted
  /// unless draining); `retry_after_ms` is the hint rejections carry.
  explicit AdmissionController(std::size_t max_inflight = 0,
                               int retry_after_ms = 200);

  /// Claims an in-flight slot for `tenant` (empty = the default tenant).
  /// Each admitted call must be paired with exactly one release().
  [[nodiscard]] Decision try_admit(const std::string& tenant);
  void release(const std::string& tenant);

  /// Stop admitting; in-flight work keeps its slots until release().
  void begin_drain();
  [[nodiscard]] bool draining() const;
  [[nodiscard]] std::size_t inflight() const;

  [[nodiscard]] AdmissionStats stats() const;

 private:
  const std::size_t max_inflight_;
  const int retry_after_ms_;

  mutable std::mutex mutex_;
  bool draining_ = false;
  std::size_t inflight_ = 0;
  std::map<std::string, std::size_t> per_tenant_;  ///< active tenants only
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t rejected_tenant_ = 0;
  std::uint64_t rejected_draining_ = 0;
};

}  // namespace mcrt

#include "server/session.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "base/strings.h"
#include "blif/blif.h"
#include "netlist/structural_hash.h"
#include "pipeline/bulk_runner.h"
#include "pipeline/flow_script.h"
#include "pipeline/job_executor.h"
#include "server/server.h"

namespace mcrt {

namespace fs = std::filesystem;

namespace {

/// Mirrors store_atomically() of the job executor for the cache-hit path,
/// where the result already exists as BLIF text: same "<path>.tmp" +
/// rename discipline, same "write:<filename>" fault site.
bool store_text_atomically(const std::string& text, const std::string& path,
                           FaultInjector& faults, const CancelToken* cancel,
                           std::string* error) {
  const fs::path target(path);
  if (faults.inject("write:" + target.filename().string(), cancel)) {
    *error = "injected write fault";
    return false;
  }
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);  // best-effort
  }
  const std::string temp = path + ".tmp";
  if (FILE* file = std::fopen(temp.c_str(), "wb"); file == nullptr) {
    *error = "cannot write temp file " + temp;
    return false;
  } else {
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
    const bool ok = std::fclose(file) == 0 && written == text.size();
    if (!ok) {
      *error = "cannot write temp file " + temp;
      fs::remove(temp, ec);
      return false;
    }
  }
  fs::rename(temp, target, ec);
  if (ec) {
    *error = "cannot rename " + temp + ": " + ec.message();
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

/// The job identity a request asked for: explicit name, else path stem,
/// else the request id.
std::string job_name_for(const JobRequest& request) {
  if (!request.name.empty()) return request.name;
  if (!request.path.empty()) return fs::path(request.path).stem().string();
  return request.id;
}

}  // namespace

Session::Session(RetimingServer& server, SocketStream stream, std::uint64_t id)
    : server_(server),
      stream_(std::move(stream)),
      id_(id),
      group_(server.pool()),
      cancel_(server.stop_token()) {}

Session::~Session() { join(); }

void Session::start() {
  (void)send_frame(make_hello_frame(server_.pool().worker_count()));
  reader_ = std::thread([this] { reader_loop(); });
}

void Session::initiate_shutdown() {
  cancel_.request_cancel();
  {
    std::lock_guard<std::mutex> lock(requests_mutex_);
    for (auto& [id, token] : active_) token->request_cancel();
  }
  stream_.shutdown();
}

void Session::join() {
  if (reader_.joinable()) reader_.join();
}

void Session::reader_loop() {
  while (!cancel_.stopped()) {
    bool overflow = false;
    std::optional<std::string> line =
        stream_.read_line(server_.options().max_frame_bytes, &overflow);
    if (!line) break;  // disconnect (or shutdown) ends the conversation
    if (overflow) {
      // The oversized line was discarded through its newline, so the
      // stream is still frame-aligned and the connection stays usable.
      const std::string message = str_format(
          "frame exceeds %zu bytes", server_.options().max_frame_bytes);
      server_.log_note(str_format("session %llu",
                                  static_cast<unsigned long long>(id_)),
                       "protocol error: " + message);
      if (!send_frame(make_error_frame("", message))) break;
      continue;
    }
    if (line->empty()) continue;
    auto parsed = parse_request_frame(*line);
    if (const auto* error = std::get_if<std::string>(&parsed)) {
      server_.log_note(str_format("session %llu",
                                  static_cast<unsigned long long>(id_)),
                       "protocol error: " + *error);
      if (!send_frame(make_error_frame("", *error))) break;
      continue;
    }
    handle_frame(std::get<RequestFrame>(parsed));
  }
  // The client is gone (or the server is stopping): whatever this
  // connection still has in flight is abandoned work — cancel it, then
  // drain so no job outlives its session.
  {
    std::lock_guard<std::mutex> lock(requests_mutex_);
    for (auto& [id, token] : active_) token->request_cancel();
  }
  group_.wait();
  finished_.store(true, std::memory_order_release);
}

void Session::handle_frame(const RequestFrame& frame) {
  switch (frame.kind) {
    case RequestFrame::Kind::kHello:
      (void)send_frame(make_hello_frame(server_.pool().worker_count()));
      return;
    case RequestFrame::Kind::kStats: {
      const std::optional<DiskCacheStats> disk = server_.disk_cache_stats();
      const AdmissionStats admission = server_.admission().stats();
      (void)send_frame(make_stats_frame(server_.stats(),
                                        server_.cache_stats(),
                                        disk ? &*disk : nullptr, &admission));
      return;
    }
    case RequestFrame::Kind::kHealth:
      (void)send_frame(make_health_frame(server_.admission().stats(),
                                         server_.pool().worker_count()));
      return;
    case RequestFrame::Kind::kDrain:
      server_.admission().begin_drain();
      server_.log_note(str_format("session %llu",
                                  static_cast<unsigned long long>(id_)),
                       "drain requested");
      (void)send_frame(
          make_drain_ack_frame(server_.admission().inflight()));
      return;
    case RequestFrame::Kind::kShutdown:
      if (server_.options().allow_remote_shutdown) {
        (void)send_frame(make_bye_frame());
        server_.request_stop();
      } else {
        (void)send_frame(make_error_frame("", "shutdown is disabled"));
      }
      return;
    case RequestFrame::Kind::kCancel: {
      std::shared_ptr<CancelToken> token;
      {
        std::lock_guard<std::mutex> lock(requests_mutex_);
        auto it = active_.find(frame.cancel_id);
        if (it != active_.end()) token = it->second;
      }
      if (token != nullptr) token->request_cancel();
      (void)send_frame(make_cancel_ack_frame(frame.cancel_id,
                                             token != nullptr));
      return;
    }
    case RequestFrame::Kind::kJob: {
      const AdmissionController::Decision admit =
          server_.admission().try_admit(frame.job.tenant);
      if (!admit.admitted) {
        server_.note_busy();
        (void)send_frame(make_busy_frame(frame.job.id, admit.retry_after_ms,
                                         admit.reason));
        return;
      }
      auto token = std::make_shared<CancelToken>(&cancel_);
      if (!register_request(frame.job.id, token)) {
        server_.admission().release(frame.job.tenant);
        return;
      }
      server_.note_job_accepted();
      (void)send_frame(make_accepted_frame(frame.job.id));
      group_.run([this, request = frame.job, token]() mutable {
        run_job(std::move(request), std::move(token));
      });
      return;
    }
  }
}

bool Session::register_request(const std::string& id,
                               const std::shared_ptr<CancelToken>& token) {
  {
    std::lock_guard<std::mutex> lock(requests_mutex_);
    if (!active_.emplace(id, token).second) {
      (void)send_frame(
          make_error_frame(id, "request id '" + id + "' is already in flight"));
      return false;
    }
  }
  return true;
}

void Session::unregister_request(const std::string& id) {
  std::lock_guard<std::mutex> lock(requests_mutex_);
  active_.erase(id);
}

void Session::run_job(JobRequest request, std::shared_ptr<CancelToken> token) {
  // The admission slot claimed in handle_frame is held for the whole job.
  struct AdmissionSlot {
    RetimingServer& server;
    const std::string& tenant;
    ~AdmissionSlot() { server.admission().release(tenant); }
  } slot{server_, request.tenant};

  const std::string name = job_name_for(request);
  BulkJobResult result;
  result.name = name;
  result.input_path = request.path.empty() ? "<inline>" : request.path;
  result.output_path = request.output;

  // Load + validate up front (the daemon hashes the parsed netlist for the
  // cache before deciding whether to execute at all).
  CollectingDiagnostics load_diag;
  std::optional<Netlist> input;
  {
    auto parsed = request.path.empty() ? read_blif_string(request.blif)
                                       : read_blif_file(request.path);
    const std::string& origin = request.path.empty() ? name : request.path;
    if (const auto* err = std::get_if<BlifError>(&parsed)) {
      load_diag.error(origin, str_format("line %zu: %s", err->line,
                                         err->message.c_str()));
    } else {
      input = std::move(std::get<Netlist>(parsed));
      const auto problems = input->validate();
      if (!problems.empty()) {
        for (const std::string& problem : problems) {
          load_diag.error(origin, problem);
        }
        input.reset();
      }
    }
  }
  if (!input) {
    result.error = "cannot load input";
    result.status = JobStatus::kFailed;
    result.diagnostics = load_diag.diagnostics();
    finish_job(request, result, /*cached=*/false, nullptr);
    unregister_request(request.id);
    return;
  }

  const ServerOptions& server_options = server_.options();
  PassManagerOptions manager = server_options.manager;
  manager.check_invariants = request.options.validate;
  manager.check_equivalence = request.options.verify;
  ResourceBudgets budgets = server_options.budgets;
  if (request.options.budgets.bdd_node_cap != 0) {
    budgets.bdd_node_cap = request.options.budgets.bdd_node_cap;
  }
  if (request.options.budgets.bmc_step_cap != 0) {
    budgets.bmc_step_cap = request.options.budgets.bmc_step_cap;
  }
  if (request.options.budgets.max_rss_bytes != 0) {
    budgets.max_rss_bytes = request.options.budgets.max_rss_bytes;
  }

  CacheKey key{structural_hash(*input),
               flow_options_hash(request.script, manager, budgets)};
  if (auto cached = server_.cache_lookup(key, token.get())) {
    serve_cached(request, std::move(*cached));
    unregister_request(request.id);
    return;
  }

  // Coalesce identical in-flight work: if another request is already
  // executing this exact (netlist, flow) key, wait for it and serve its
  // freshly cached result instead of burning a second execution. A
  // follower can only block while its leader holds a pool thread, so no
  // circular wait is possible. A leader whose run fails (nothing cached)
  // wakes the followers to race for the lead themselves.
  bool counted_coalesced = false;
  for (;;) {
    std::shared_ptr<CoalescedExecution> leader = server_.try_lead(key);
    if (leader == nullptr) {
      // We lead — but a previous leader may have finished between our
      // cache miss and now, so close that race before executing. The
      // request's miss was already counted; this re-check is silent.
      if (auto cached = server_.cache_lookup(key, token.get(),
                                             /*count_miss=*/false)) {
        server_.finish_lead(key);
        serve_cached(request, std::move(*cached));
        unregister_request(request.id);
        return;
      }
      break;
    }
    if (!counted_coalesced) {
      server_.note_coalesced();
      counted_coalesced = true;
    }
    {
      std::unique_lock<std::mutex> lock(leader->mutex);
      while (!leader->done &&
             cancel_requested(token.get()) == StopReason::kNone) {
        leader->cv.wait_for(lock, std::chrono::milliseconds(50));
      }
    }
    if (auto cached = server_.cache_lookup(key, token.get(),
                                           /*count_miss=*/false)) {
      serve_cached(request, std::move(*cached));
      unregister_request(request.id);
      return;
    }
    // Leader failed or we were cancelled: loop to lead (a cancelled run
    // unwinds via the executor's first poll immediately).
  }

  // Cache miss: run the request through the shared flow-execution core —
  // the exact path `mcrt bulk` takes.
  BulkJob job;
  job.name = name;
  job.input_path = result.input_path;
  job.output_path = request.output;
  // Validation already happened above; re-running it in load would double
  // every diagnostic.
  job.load = [netlist = std::move(*input)](
                 DiagnosticsSink&) -> std::optional<Netlist> {
    return netlist;
  };

  JobExecutionOptions exec;
  exec.manager = manager;
  exec.keep_netlist = true;
  exec.timeout_seconds = request.options.timeout_seconds > 0
                             ? request.options.timeout_seconds
                             : server_options.default_timeout_seconds;
  exec.cancel = token.get();
  exec.budgets = budgets;
  exec.faults = server_options.faults;

  const PassRegistry& registry = server_options.registry != nullptr
                                     ? *server_options.registry
                                     : PassRegistry::standard();
  const std::string& script = request.script;
  execute_flow_job(
      job,
      [&registry, &script](PassManager& pm, std::string* error) {
        if (auto problem = compile_flow_script(script, registry, pm)) {
          *error = *problem;
          return false;
        }
        return true;
      },
      exec, result);

  std::optional<std::string> blif_text;
  if (result.netlist.has_value()) {
    blif_text = write_blif_string(*result.netlist);
  }
  // Insert before the terminal frame goes out (same ordering rule as the
  // counters): a client that has seen its result must observe the entry.
  if (result.status == JobStatus::kOk && blif_text.has_value()) {
    CachedResult entry;
    entry.job = result;
    entry.job.netlist.reset();  // the BLIF text is the compact form
    entry.blif = *blif_text;
    server_.cache_insert(key, std::move(entry), token.get());
  }
  // Wake coalesced followers only after the insert: they re-check the
  // cache and must observe this result (or, on failure, race to lead).
  server_.finish_lead(key);
  finish_job(request, result, /*cached=*/false,
             blif_text ? &*blif_text : nullptr);
  unregister_request(request.id);
}

void Session::serve_cached(const JobRequest& request, CachedResult cached) {
  // Re-stamp the cached record with this request's identity: the payload
  // (stats, passes, diagnostics, BLIF bytes) is identical by construction,
  // but name and paths belong to the requester.
  cached.job.name = job_name_for(request);
  cached.job.input_path = request.path.empty() ? "<inline>" : request.path;
  cached.job.output_path = request.output;
  if (!request.output.empty()) {
    std::string error;
    if (!store_text_atomically(cached.blif, request.output, server_.faults(),
                               &cancel_, &error)) {
      cached.job.success = false;
      cached.job.status = JobStatus::kIoError;
      cached.job.error = "cannot write output";
      cached.job.diagnostics.push_back(
          Diagnostic{DiagSeverity::kError, request.output, error});
      // A failed write is this request's failure, not the cache's: the
      // entry itself stays valid for the next hit.
      finish_job(request, cached.job, /*cached=*/true, nullptr);
      return;
    }
  }
  finish_job(request, cached.job, /*cached=*/true, &cached.blif);
}

void Session::finish_job(const JobRequest& request,
                         const BulkJobResult& result, bool cached,
                         const std::string* blif) {
  for (const Diagnostic& diag : result.diagnostics) {
    if (!send_frame(make_diagnostic_frame(request.id, diag))) break;
  }
  BulkJsonOptions json;
  json.canonical = request.options.canonical;
  const std::string job_json = bulk_job_result_to_json(result, json);
  // Count before the terminal frame goes out: a client that has seen its
  // result must never read stats that don't include it yet.
  server_.note_job_finished(result.status, cached);
  (void)send_frame(make_result_frame(
      request.id, result, cached, job_json,
      request.options.return_blif ? blif : nullptr));
}

bool Session::send_frame(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return stream_.write_line(line);
}

}  // namespace mcrt

// One client connection of the retiming daemon.
//
// A Session owns the accepted SocketStream and a reader thread that parses
// request frames in arrival order. Job requests are answered with an
// "accepted" frame and handed to the server's shared ThreadPool through a
// per-session TaskGroup; control frames (hello/stats/cancel/shutdown) are
// answered inline. Response frames from concurrently finishing jobs are
// serialized line-atomically through one write mutex, so frames never
// interleave mid-line even though requests complete out of order.
//
// Cancellation: every in-flight request holds its own CancelToken chained
// onto the session token (itself chained onto the server's stop token), so
// a `{"cancel": id}` frame stops one request, a client disconnect (reader
// EOF) stops everything the connection still has in flight, and a server
// shutdown stops all sessions — each through the same poll the engines
// already do. The reader drains its TaskGroup before the session reports
// finished, so a Session is never destroyed under a running job.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "base/cancel.h"
#include "base/socket.h"
#include "base/thread_pool.h"
#include "server/protocol.h"

namespace mcrt {

class RetimingServer;

class Session {
 public:
  Session(RetimingServer& server, SocketStream stream, std::uint64_t id);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Sends the greeting hello frame and launches the reader thread.
  void start();

  /// Asks the session to wind down: cancels in-flight requests and
  /// shuts the stream down so a blocked reader unblocks. Thread-safe.
  void initiate_shutdown();

  /// True once the reader exited and every submitted job drained; the
  /// server reaps (joins + destroys) finished sessions.
  [[nodiscard]] bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }
  /// Joins the reader thread (call only after initiate_shutdown() or once
  /// finished()).
  void join();

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  void reader_loop();
  void handle_frame(const RequestFrame& frame);
  /// Runs one job request on the current (pool) thread, start to frame.
  void run_job(JobRequest request, std::shared_ptr<CancelToken> token);
  /// Serves `request` from `cached`, re-stamping the job identity and
  /// honoring a server-side output write.
  void serve_cached(const JobRequest& request, CachedResult cached);
  /// Streams a finished job's diagnostics and result frame and updates the
  /// server counters.
  void finish_job(const JobRequest& request, const BulkJobResult& result,
                  bool cached, const std::string* blif);

  bool send_frame(const std::string& line);

  /// Registers a request id; false (error frame sent) on duplicates.
  bool register_request(const std::string& id,
                        const std::shared_ptr<CancelToken>& token);
  void unregister_request(const std::string& id);

  RetimingServer& server_;
  SocketStream stream_;
  const std::uint64_t id_;

  std::mutex write_mutex_;   ///< one response line at a time
  std::thread reader_;
  TaskGroup group_;          ///< this session's jobs on the server pool
  CancelToken cancel_;       ///< chained onto the server stop token

  std::mutex requests_mutex_;
  std::map<std::string, std::shared_ptr<CancelToken>> active_;

  std::atomic<bool> finished_{false};
};

}  // namespace mcrt

#include "server/protocol.h"

#include "base/version.h"
#include "server/admission.h"
#include "server/disk_cache.h"

namespace mcrt {
namespace {

constexpr double kBytesPerMb = 1024.0 * 1024.0;

JobRequestOptions parse_options(const Json& options) {
  JobRequestOptions parsed;
  parsed.timeout_seconds = options.at("timeout").as_number(0);
  parsed.canonical = options.at("canonical").as_bool(false);
  parsed.return_blif = options.at("return_blif").as_bool(false);
  parsed.validate = options.at("validate").as_bool(true);
  parsed.verify = options.at("verify").as_bool(false);
  if (const Json* budgets = options.find("budgets")) {
    parsed.budgets.bdd_node_cap =
        static_cast<std::size_t>(budgets->at("bdd_nodes").as_int(0));
    parsed.budgets.bmc_step_cap =
        static_cast<std::size_t>(budgets->at("bmc_steps").as_int(0));
    parsed.budgets.max_rss_bytes = static_cast<std::size_t>(
        budgets->at("max_rss_mb").as_number(0) * kBytesPerMb);
  }
  return parsed;
}

Json options_to_json(const JobRequestOptions& options) {
  Json object = Json::object();
  if (options.timeout_seconds > 0) object.set("timeout", options.timeout_seconds);
  if (options.canonical) object.set("canonical", true);
  if (options.return_blif) object.set("return_blif", true);
  if (!options.validate) object.set("validate", false);
  if (options.verify) object.set("verify", true);
  const ResourceBudgets& b = options.budgets;
  if (b.bdd_node_cap != 0 || b.bmc_step_cap != 0 || b.max_rss_bytes != 0) {
    Json budgets = Json::object();
    if (b.bdd_node_cap != 0) budgets.set("bdd_nodes", b.bdd_node_cap);
    if (b.bmc_step_cap != 0) budgets.set("bmc_steps", b.bmc_step_cap);
    if (b.max_rss_bytes != 0) {
      budgets.set("max_rss_mb", static_cast<double>(b.max_rss_bytes) /
                                    kBytesPerMb);
    }
    object.set("budgets", std::move(budgets));
  }
  return object;
}

/// Strict UTF-8 scan (RFC 3629: no overlongs, no surrogates, max U+10FFFF).
/// Frames failing this are answered with a structured error instead of
/// letting mojibake propagate into reports and logs.
bool is_valid_utf8(const std::string& text) {
  const auto* s = reinterpret_cast<const unsigned char*>(text.data());
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n;) {
    const unsigned char c = s[i];
    if (c < 0x80) {
      ++i;
      continue;
    }
    std::size_t len = 0;
    unsigned min = 0, code = 0;
    if ((c & 0xE0) == 0xC0) {
      len = 2; min = 0x80; code = c & 0x1Fu;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3; min = 0x800; code = c & 0x0Fu;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4; min = 0x10000; code = c & 0x07u;
    } else {
      return false;  // stray continuation or invalid lead byte
    }
    if (i + len > n) return false;
    for (std::size_t k = 1; k < len; ++k) {
      if ((s[i + k] & 0xC0) != 0x80) return false;
      code = (code << 6) | (s[i + k] & 0x3Fu);
    }
    if (code < min || code > 0x10FFFF) return false;
    if (code >= 0xD800 && code <= 0xDFFF) return false;  // surrogate
    i += len;
  }
  return true;
}

}  // namespace

std::variant<RequestFrame, std::string> parse_request_frame(
    const std::string& line) {
  if (!is_valid_utf8(line)) {
    return std::string("frame is not valid UTF-8");
  }
  auto parsed = Json::parse(line);
  if (const auto* err = std::get_if<JsonParseError>(&parsed)) {
    return "malformed JSON at offset " + std::to_string(err->offset) + ": " +
           err->message;
  }
  const Json& doc = std::get<Json>(parsed);
  if (!doc.is_object()) return std::string("request must be a JSON object");

  RequestFrame frame;
  if (doc.has("hello")) {
    frame.kind = RequestFrame::Kind::kHello;
    return frame;
  }
  if (doc.has("stats")) {
    frame.kind = RequestFrame::Kind::kStats;
    return frame;
  }
  if (doc.has("health")) {
    frame.kind = RequestFrame::Kind::kHealth;
    return frame;
  }
  if (doc.has("drain")) {
    frame.kind = RequestFrame::Kind::kDrain;
    return frame;
  }
  if (doc.has("shutdown")) {
    frame.kind = RequestFrame::Kind::kShutdown;
    return frame;
  }
  if (const Json* cancel = doc.find("cancel")) {
    if (!cancel->is_string() || cancel->as_string().empty()) {
      return std::string("'cancel' must name a request id");
    }
    frame.kind = RequestFrame::Kind::kCancel;
    frame.cancel_id = cancel->as_string();
    return frame;
  }

  // Everything else must be a job submission.
  frame.kind = RequestFrame::Kind::kJob;
  JobRequest& job = frame.job;
  job.id = doc.at("id").as_string();
  if (job.id.empty()) {
    return std::string("job request is missing a non-empty 'id'");
  }
  job.script = doc.at("script").as_string();
  if (job.script.empty()) {
    return std::string("job request is missing a non-empty 'script'");
  }
  job.blif = doc.at("blif").as_string();
  job.path = doc.at("path").as_string();
  if (job.blif.empty() && job.path.empty()) {
    return std::string("job request needs 'blif' text or a 'path'");
  }
  job.name = doc.at("name").as_string();
  job.tenant = doc.at("tenant").as_string();
  job.output = doc.at("output").as_string();
  if (const Json* options = doc.find("options")) {
    if (!options->is_object()) {
      return std::string("'options' must be an object");
    }
    job.options = parse_options(*options);
  }
  return frame;
}

std::string write_request_frame(const RequestFrame& frame) {
  Json object = Json::object();
  switch (frame.kind) {
    case RequestFrame::Kind::kHello:
      object.set("hello", true);
      break;
    case RequestFrame::Kind::kStats:
      object.set("stats", true);
      break;
    case RequestFrame::Kind::kHealth:
      object.set("health", true);
      break;
    case RequestFrame::Kind::kDrain:
      object.set("drain", true);
      break;
    case RequestFrame::Kind::kShutdown:
      object.set("shutdown", true);
      break;
    case RequestFrame::Kind::kCancel:
      object.set("cancel", frame.cancel_id);
      break;
    case RequestFrame::Kind::kJob: {
      const JobRequest& job = frame.job;
      object.set("id", job.id);
      object.set("script", job.script);
      if (!job.blif.empty()) object.set("blif", job.blif);
      if (!job.path.empty()) object.set("path", job.path);
      if (!job.name.empty()) object.set("name", job.name);
      if (!job.tenant.empty()) object.set("tenant", job.tenant);
      if (!job.output.empty()) object.set("output", job.output);
      Json options = options_to_json(job.options);
      if (!options.as_object().empty()) object.set("options", std::move(options));
      break;
    }
  }
  return object.write();
}

std::string make_hello_frame(std::size_t jobs) {
  Json frame = Json::object();
  frame.set("frame", "hello");
  frame.set("tool", "mcrt");
  frame.set("version", version_string());
  frame.set("protocol", protocol_version());
  frame.set("build_type", build_type());
  Json sanitizers = Json::array();
  for (const std::string& flag : sanitizer_flags()) sanitizers.push_back(flag);
  frame.set("sanitizers", std::move(sanitizers));
  frame.set("jobs", jobs);
  return frame.write();
}

std::string make_accepted_frame(const std::string& id) {
  Json frame = Json::object();
  frame.set("frame", "accepted");
  frame.set("id", id);
  return frame.write();
}

std::string make_busy_frame(const std::string& id, int retry_after_ms,
                            const std::string& reason) {
  Json frame = Json::object();
  frame.set("frame", "busy");
  frame.set("id", id);
  frame.set("reason", reason);
  frame.set("retry_after_ms", retry_after_ms);
  return frame.write();
}

std::string make_diagnostic_frame(const std::string& id,
                                  const Diagnostic& diag) {
  Json frame = Json::object();
  frame.set("frame", "diagnostic");
  frame.set("id", id);
  frame.set("severity", diag_severity_name(diag.severity));
  frame.set("origin", diag.origin);
  frame.set("message", diag.message);
  return frame.write();
}

std::string make_result_frame(const std::string& id,
                              const BulkJobResult& result, bool cached,
                              const std::string& job_json,
                              const std::string* blif) {
  Json frame = Json::object();
  frame.set("frame", "result");
  frame.set("id", id);
  frame.set("name", result.name);
  frame.set("status", job_status_name(result.status));
  frame.set("success", result.success);
  frame.set("cached", cached);
  if (!result.error.empty()) frame.set("error", result.error);
  frame.set("job", job_json);
  if (blif != nullptr) frame.set("blif", *blif);
  return frame.write();
}

std::string make_cancel_ack_frame(const std::string& id, bool found) {
  Json frame = Json::object();
  frame.set("frame", "cancel-ack");
  frame.set("id", id);
  frame.set("found", found);
  return frame.write();
}

std::string make_stats_frame(const ServerStats& server,
                             const CacheStats& cache,
                             const DiskCacheStats* disk,
                             const AdmissionStats* admission) {
  Json frame = Json::object();
  frame.set("frame", "stats");
  Json srv = Json::object();
  srv.set("requests", server.requests);
  srv.set("ok", server.ok);
  srv.set("failed", server.failed);
  srv.set("timeout", server.timeout);
  srv.set("cancelled", server.cancelled);
  srv.set("cache_served", server.cache_served);
  srv.set("busy", server.busy);
  srv.set("coalesced", server.coalesced);
  srv.set("sessions", server.sessions);
  srv.set("jobs", server.jobs);
  frame.set("server", std::move(srv));
  Json c = Json::object();
  c.set("entries", cache.entries);
  c.set("bytes", cache.bytes);
  c.set("capacity_bytes", cache.capacity_bytes);
  c.set("hits", cache.hits);
  c.set("misses", cache.misses);
  c.set("insertions", cache.insertions);
  c.set("evictions", cache.evictions);
  frame.set("cache", std::move(c));
  if (disk != nullptr) {
    Json d = Json::object();
    d.set("entries", disk->entries);
    d.set("bytes", disk->bytes);
    d.set("capacity_bytes", disk->capacity_bytes);
    d.set("hits", disk->hits);
    d.set("misses", disk->misses);
    d.set("insertions", disk->insertions);
    d.set("evictions", disk->evictions);
    d.set("quarantined", disk->quarantined);
    d.set("write_failures", disk->write_failures);
    d.set("expired", disk->expired);
    frame.set("disk", std::move(d));
  }
  if (admission != nullptr) {
    Json a = Json::object();
    a.set("inflight", admission->inflight);
    a.set("max_inflight", admission->max_inflight);
    a.set("active_tenants", admission->active_tenants);
    a.set("draining", admission->draining);
    a.set("admitted", admission->admitted);
    a.set("rejected_overload", admission->rejected_overload);
    a.set("rejected_tenant", admission->rejected_tenant);
    a.set("rejected_draining", admission->rejected_draining);
    frame.set("admission", std::move(a));
  }
  return frame.write();
}

std::string make_health_frame(const AdmissionStats& admission,
                              std::size_t jobs) {
  Json frame = Json::object();
  frame.set("frame", "health");
  frame.set("state", admission.draining ? "draining" : "ok");
  frame.set("inflight", admission.inflight);
  frame.set("max_inflight", admission.max_inflight);
  frame.set("active_tenants", admission.active_tenants);
  frame.set("jobs", jobs);
  return frame.write();
}

std::string make_drain_ack_frame(std::size_t inflight) {
  Json frame = Json::object();
  frame.set("frame", "drain-ack");
  frame.set("inflight", inflight);
  return frame.write();
}

std::string make_error_frame(const std::string& id,
                             const std::string& message) {
  Json frame = Json::object();
  frame.set("frame", "error");
  if (!id.empty()) frame.set("id", id);
  frame.set("message", message);
  return frame.write();
}

std::string make_bye_frame() {
  Json frame = Json::object();
  frame.set("frame", "bye");
  return frame.write();
}

}  // namespace mcrt

#include "server/protocol.h"

#include "base/version.h"

namespace mcrt {
namespace {

constexpr double kBytesPerMb = 1024.0 * 1024.0;

JobRequestOptions parse_options(const Json& options) {
  JobRequestOptions parsed;
  parsed.timeout_seconds = options.at("timeout").as_number(0);
  parsed.canonical = options.at("canonical").as_bool(false);
  parsed.return_blif = options.at("return_blif").as_bool(false);
  parsed.validate = options.at("validate").as_bool(true);
  parsed.verify = options.at("verify").as_bool(false);
  if (const Json* budgets = options.find("budgets")) {
    parsed.budgets.bdd_node_cap =
        static_cast<std::size_t>(budgets->at("bdd_nodes").as_int(0));
    parsed.budgets.bmc_step_cap =
        static_cast<std::size_t>(budgets->at("bmc_steps").as_int(0));
    parsed.budgets.max_rss_bytes = static_cast<std::size_t>(
        budgets->at("max_rss_mb").as_number(0) * kBytesPerMb);
  }
  return parsed;
}

Json options_to_json(const JobRequestOptions& options) {
  Json object = Json::object();
  if (options.timeout_seconds > 0) object.set("timeout", options.timeout_seconds);
  if (options.canonical) object.set("canonical", true);
  if (options.return_blif) object.set("return_blif", true);
  if (!options.validate) object.set("validate", false);
  if (options.verify) object.set("verify", true);
  const ResourceBudgets& b = options.budgets;
  if (b.bdd_node_cap != 0 || b.bmc_step_cap != 0 || b.max_rss_bytes != 0) {
    Json budgets = Json::object();
    if (b.bdd_node_cap != 0) budgets.set("bdd_nodes", b.bdd_node_cap);
    if (b.bmc_step_cap != 0) budgets.set("bmc_steps", b.bmc_step_cap);
    if (b.max_rss_bytes != 0) {
      budgets.set("max_rss_mb", static_cast<double>(b.max_rss_bytes) /
                                    kBytesPerMb);
    }
    object.set("budgets", std::move(budgets));
  }
  return object;
}

}  // namespace

std::variant<RequestFrame, std::string> parse_request_frame(
    const std::string& line) {
  auto parsed = Json::parse(line);
  if (const auto* err = std::get_if<JsonParseError>(&parsed)) {
    return "malformed JSON at offset " + std::to_string(err->offset) + ": " +
           err->message;
  }
  const Json& doc = std::get<Json>(parsed);
  if (!doc.is_object()) return std::string("request must be a JSON object");

  RequestFrame frame;
  if (doc.has("hello")) {
    frame.kind = RequestFrame::Kind::kHello;
    return frame;
  }
  if (doc.has("stats")) {
    frame.kind = RequestFrame::Kind::kStats;
    return frame;
  }
  if (doc.has("shutdown")) {
    frame.kind = RequestFrame::Kind::kShutdown;
    return frame;
  }
  if (const Json* cancel = doc.find("cancel")) {
    if (!cancel->is_string() || cancel->as_string().empty()) {
      return std::string("'cancel' must name a request id");
    }
    frame.kind = RequestFrame::Kind::kCancel;
    frame.cancel_id = cancel->as_string();
    return frame;
  }

  // Everything else must be a job submission.
  frame.kind = RequestFrame::Kind::kJob;
  JobRequest& job = frame.job;
  job.id = doc.at("id").as_string();
  if (job.id.empty()) {
    return std::string("job request is missing a non-empty 'id'");
  }
  job.script = doc.at("script").as_string();
  if (job.script.empty()) {
    return std::string("job request is missing a non-empty 'script'");
  }
  job.blif = doc.at("blif").as_string();
  job.path = doc.at("path").as_string();
  if (job.blif.empty() && job.path.empty()) {
    return std::string("job request needs 'blif' text or a 'path'");
  }
  job.name = doc.at("name").as_string();
  job.output = doc.at("output").as_string();
  if (const Json* options = doc.find("options")) {
    if (!options->is_object()) {
      return std::string("'options' must be an object");
    }
    job.options = parse_options(*options);
  }
  return frame;
}

std::string write_request_frame(const RequestFrame& frame) {
  Json object = Json::object();
  switch (frame.kind) {
    case RequestFrame::Kind::kHello:
      object.set("hello", true);
      break;
    case RequestFrame::Kind::kStats:
      object.set("stats", true);
      break;
    case RequestFrame::Kind::kShutdown:
      object.set("shutdown", true);
      break;
    case RequestFrame::Kind::kCancel:
      object.set("cancel", frame.cancel_id);
      break;
    case RequestFrame::Kind::kJob: {
      const JobRequest& job = frame.job;
      object.set("id", job.id);
      object.set("script", job.script);
      if (!job.blif.empty()) object.set("blif", job.blif);
      if (!job.path.empty()) object.set("path", job.path);
      if (!job.name.empty()) object.set("name", job.name);
      if (!job.output.empty()) object.set("output", job.output);
      Json options = options_to_json(job.options);
      if (!options.as_object().empty()) object.set("options", std::move(options));
      break;
    }
  }
  return object.write();
}

std::string make_hello_frame(std::size_t jobs) {
  Json frame = Json::object();
  frame.set("frame", "hello");
  frame.set("tool", "mcrt");
  frame.set("version", version_string());
  frame.set("protocol", protocol_version());
  frame.set("build_type", build_type());
  Json sanitizers = Json::array();
  for (const std::string& flag : sanitizer_flags()) sanitizers.push_back(flag);
  frame.set("sanitizers", std::move(sanitizers));
  frame.set("jobs", jobs);
  return frame.write();
}

std::string make_accepted_frame(const std::string& id) {
  Json frame = Json::object();
  frame.set("frame", "accepted");
  frame.set("id", id);
  return frame.write();
}

std::string make_diagnostic_frame(const std::string& id,
                                  const Diagnostic& diag) {
  Json frame = Json::object();
  frame.set("frame", "diagnostic");
  frame.set("id", id);
  frame.set("severity", diag_severity_name(diag.severity));
  frame.set("origin", diag.origin);
  frame.set("message", diag.message);
  return frame.write();
}

std::string make_result_frame(const std::string& id,
                              const BulkJobResult& result, bool cached,
                              const std::string& job_json,
                              const std::string* blif) {
  Json frame = Json::object();
  frame.set("frame", "result");
  frame.set("id", id);
  frame.set("name", result.name);
  frame.set("status", job_status_name(result.status));
  frame.set("success", result.success);
  frame.set("cached", cached);
  if (!result.error.empty()) frame.set("error", result.error);
  frame.set("job", job_json);
  if (blif != nullptr) frame.set("blif", *blif);
  return frame.write();
}

std::string make_cancel_ack_frame(const std::string& id, bool found) {
  Json frame = Json::object();
  frame.set("frame", "cancel-ack");
  frame.set("id", id);
  frame.set("found", found);
  return frame.write();
}

std::string make_stats_frame(const ServerStats& server,
                             const CacheStats& cache) {
  Json frame = Json::object();
  frame.set("frame", "stats");
  Json srv = Json::object();
  srv.set("requests", server.requests);
  srv.set("ok", server.ok);
  srv.set("failed", server.failed);
  srv.set("timeout", server.timeout);
  srv.set("cancelled", server.cancelled);
  srv.set("cache_served", server.cache_served);
  srv.set("sessions", server.sessions);
  srv.set("jobs", server.jobs);
  frame.set("server", std::move(srv));
  Json c = Json::object();
  c.set("entries", cache.entries);
  c.set("bytes", cache.bytes);
  c.set("capacity_bytes", cache.capacity_bytes);
  c.set("hits", cache.hits);
  c.set("misses", cache.misses);
  c.set("insertions", cache.insertions);
  c.set("evictions", cache.evictions);
  frame.set("cache", std::move(c));
  return frame.write();
}

std::string make_error_frame(const std::string& id,
                             const std::string& message) {
  Json frame = Json::object();
  frame.set("frame", "error");
  if (!id.empty()) frame.set("id", id);
  frame.set("message", message);
  return frame.write();
}

std::string make_bye_frame() {
  Json frame = Json::object();
  frame.set("frame", "bye");
  return frame.write();
}

}  // namespace mcrt

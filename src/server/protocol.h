// The `mcrt serve` wire protocol: newline-delimited JSON frames.
//
// Every message — client request or server response — is one JSON object
// on one line, terminated by '\n'. Requests:
//
//   {"hello": true}                          handshake / version probe
//   {"id": "j1", "script": "sweep; retime(d=10)",
//    "blif": "<text>" | "path": "<file>",    inline circuit or server path
//    "name": "r00",                          job name (default: path stem/id)
//    "output": "<file>",                     atomic server-side result write
//    "options": {"timeout": 5.0, "canonical": true, "return_blif": true,
//                "validate": true, "verify": false,
//                "budgets": {"bdd_nodes": 0, "bmc_steps": 0, "max_rss_mb": 0}}}
//   {"cancel": "j1"}                         cancel an in-flight request
//   {"stats": true}                          server + cache counters
//   {"shutdown": true}                       stop the daemon (when allowed)
//
// Responses carry a "frame" discriminator: "hello", "accepted",
// "diagnostic" (streamed per job diagnostic), "result" (terminal, exactly
// one per job request), "cancel-ack", "stats", "error", "bye". Frames for
// different requests interleave, matched by "id"; frames for one request
// are ordered accepted -> diagnostics -> result. docs/SERVER.md documents
// every field.
//
// This header is the shared vocabulary: request parsing for the server,
// response builders for the server, and both directions for the client and
// the protocol tests.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "base/cancel.h"
#include "base/json.h"
#include "pipeline/diagnostics.h"
#include "pipeline/job_executor.h"
#include "server/result_cache.h"

namespace mcrt {

/// Per-request execution options (the "options" object).
struct JobRequestOptions {
  double timeout_seconds = 0;  ///< 0 = server default
  bool canonical = false;      ///< canonical (byte-stable) job serialization
  bool return_blif = false;    ///< include the result netlist in the frame
  bool validate = true;        ///< PassManagerOptions::check_invariants
  bool verify = false;         ///< PassManagerOptions::check_equivalence
  ResourceBudgets budgets;     ///< zero fields inherit the server default
};

/// A parsed job-submission request.
struct JobRequest {
  std::string id;
  std::string name;    ///< empty: derived from path stem, else id
  std::string script;
  std::string blif;    ///< inline BLIF text (wins over path when both set)
  std::string path;    ///< server-side input file
  std::string output;  ///< server-side atomic result write (empty = none)
  JobRequestOptions options;
};

/// Any client request.
struct RequestFrame {
  enum class Kind : std::uint8_t { kHello, kJob, kCancel, kStats, kShutdown };
  Kind kind = Kind::kHello;
  JobRequest job;         ///< kJob only
  std::string cancel_id;  ///< kCancel only
};

/// Parses one request line. Returns the frame or a protocol error message
/// (malformed JSON, unknown frame shape, missing required fields).
[[nodiscard]] std::variant<RequestFrame, std::string> parse_request_frame(
    const std::string& line);

/// Serializes a request back to its wire line (without the '\n').
[[nodiscard]] std::string write_request_frame(const RequestFrame& frame);

/// Server-level counters for the stats frame.
struct ServerStats {
  std::uint64_t requests = 0;      ///< job requests accepted
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;        ///< kFailed + kIoError
  std::uint64_t timeout = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t cache_served = 0;  ///< results answered from the cache
  std::size_t sessions = 0;        ///< currently connected clients
  std::size_t jobs = 0;            ///< worker threads
};

// Response-frame builders (each returns the wire line without the '\n').
[[nodiscard]] std::string make_hello_frame(std::size_t jobs);
[[nodiscard]] std::string make_accepted_frame(const std::string& id);
[[nodiscard]] std::string make_diagnostic_frame(const std::string& id,
                                                const Diagnostic& diag);
/// The terminal frame of a job request. `job_json` is the pretty per-job
/// report object (bulk_job_result_to_json); `blif` is included only when
/// the request asked for return_blif.
[[nodiscard]] std::string make_result_frame(const std::string& id,
                                            const BulkJobResult& result,
                                            bool cached,
                                            const std::string& job_json,
                                            const std::string* blif);
[[nodiscard]] std::string make_cancel_ack_frame(const std::string& id,
                                                bool found);
[[nodiscard]] std::string make_stats_frame(const ServerStats& server,
                                           const CacheStats& cache);
[[nodiscard]] std::string make_error_frame(const std::string& id,
                                           const std::string& message);
[[nodiscard]] std::string make_bye_frame();

}  // namespace mcrt

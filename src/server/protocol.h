// The `mcrt serve` wire protocol: newline-delimited JSON frames.
//
// Every message — client request or server response — is one JSON object
// on one line, terminated by '\n'. Requests:
//
//   {"hello": true}                          handshake / version probe
//   {"id": "j1", "script": "sweep; retime(d=10)",
//    "blif": "<text>" | "path": "<file>",    inline circuit or server path
//    "name": "r00",                          job name (default: path stem/id)
//    "output": "<file>",                     atomic server-side result write
//    "options": {"timeout": 5.0, "canonical": true, "return_blif": true,
//                "validate": true, "verify": false,
//                "budgets": {"bdd_nodes": 0, "bmc_steps": 0, "max_rss_mb": 0}}}
//   {"cancel": "j1"}                         cancel an in-flight request
//   {"stats": true}                          server + cache counters
//   {"health": true}                         liveness / load / drain state
//   {"drain": true}                          stop admitting, finish in-flight
//   {"shutdown": true}                       stop the daemon (when allowed)
//
// Job submissions may carry a "tenant" string; the admission controller
// fair-shares the in-flight budget across tenants (docs/SERVER.md).
//
// Responses carry a "frame" discriminator: "hello", "accepted", "busy"
// (admission rejected the job; terminal for that submission, carries a
// "retry_after_ms" hint), "diagnostic" (streamed per job diagnostic),
// "result" (terminal, exactly one per accepted job request), "cancel-ack",
// "stats", "health", "drain-ack", "error", "bye". Frames for different
// requests interleave, matched by "id"; frames for one request are ordered
// accepted -> diagnostics -> result. docs/SERVER.md documents every field.
//
// This header is the shared vocabulary: request parsing for the server,
// response builders for the server, and both directions for the client and
// the protocol tests.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "base/cancel.h"
#include "base/json.h"
#include "pipeline/diagnostics.h"
#include "pipeline/job_executor.h"
#include "server/result_cache.h"

namespace mcrt {

/// Per-request execution options (the "options" object).
struct JobRequestOptions {
  double timeout_seconds = 0;  ///< 0 = server default
  bool canonical = false;      ///< canonical (byte-stable) job serialization
  bool return_blif = false;    ///< include the result netlist in the frame
  bool validate = true;        ///< PassManagerOptions::check_invariants
  bool verify = false;         ///< PassManagerOptions::check_equivalence
  ResourceBudgets budgets;     ///< zero fields inherit the server default
};

/// A parsed job-submission request.
struct JobRequest {
  std::string id;
  std::string name;    ///< empty: derived from path stem, else id
  std::string tenant;  ///< fair-scheduling bucket (empty = default tenant)
  std::string script;
  std::string blif;    ///< inline BLIF text (wins over path when both set)
  std::string path;    ///< server-side input file
  std::string output;  ///< server-side atomic result write (empty = none)
  JobRequestOptions options;
};

/// Any client request.
struct RequestFrame {
  enum class Kind : std::uint8_t {
    kHello,
    kJob,
    kCancel,
    kStats,
    kHealth,
    kDrain,
    kShutdown,
  };
  Kind kind = Kind::kHello;
  JobRequest job;         ///< kJob only
  std::string cancel_id;  ///< kCancel only
};

/// Parses one request line. Returns the frame or a protocol error message
/// (malformed JSON, unknown frame shape, missing required fields).
[[nodiscard]] std::variant<RequestFrame, std::string> parse_request_frame(
    const std::string& line);

/// Serializes a request back to its wire line (without the '\n').
[[nodiscard]] std::string write_request_frame(const RequestFrame& frame);

/// Server-level counters for the stats frame.
struct ServerStats {
  std::uint64_t requests = 0;      ///< job requests accepted
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;        ///< kFailed + kIoError
  std::uint64_t timeout = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t cache_served = 0;  ///< results answered from a cache tier
  std::uint64_t busy = 0;          ///< submissions rejected with a busy frame
  std::uint64_t coalesced = 0;     ///< requests that shared another's run
  std::size_t sessions = 0;        ///< currently connected clients
  std::size_t jobs = 0;            ///< worker threads
};

struct DiskCacheStats;   // server/disk_cache.h
struct AdmissionStats;   // server/admission.h

// Response-frame builders (each returns the wire line without the '\n').
[[nodiscard]] std::string make_hello_frame(std::size_t jobs);
[[nodiscard]] std::string make_accepted_frame(const std::string& id);
/// Admission rejection: terminal for that submission. `retry_after_ms` is
/// the server's backoff hint; `reason` is "overloaded", "tenant-throttled"
/// or "draining".
[[nodiscard]] std::string make_busy_frame(const std::string& id,
                                          int retry_after_ms,
                                          const std::string& reason);
[[nodiscard]] std::string make_diagnostic_frame(const std::string& id,
                                                const Diagnostic& diag);
/// The terminal frame of a job request. `job_json` is the pretty per-job
/// report object (bulk_job_result_to_json); `blif` is included only when
/// the request asked for return_blif.
[[nodiscard]] std::string make_result_frame(const std::string& id,
                                            const BulkJobResult& result,
                                            bool cached,
                                            const std::string& job_json,
                                            const std::string* blif);
[[nodiscard]] std::string make_cancel_ack_frame(const std::string& id,
                                                bool found);
/// `disk` and `admission` are optional: servers without a disk tier or an
/// admission bound omit those objects (nullptr).
[[nodiscard]] std::string make_stats_frame(
    const ServerStats& server, const CacheStats& cache,
    const DiskCacheStats* disk = nullptr,
    const AdmissionStats* admission = nullptr);
/// Liveness probe: "state" is "ok" or "draining", plus in-flight load and
/// the admission limits.
[[nodiscard]] std::string make_health_frame(const AdmissionStats& admission,
                                            std::size_t jobs);
/// Acknowledges a drain request with the number of jobs still in flight.
[[nodiscard]] std::string make_drain_ack_frame(std::size_t inflight);
[[nodiscard]] std::string make_error_frame(const std::string& id,
                                           const std::string& message);
[[nodiscard]] std::string make_bye_frame();

}  // namespace mcrt

// The `mcrt serve` daemon: a persistent retiming service.
//
// Motivation (ISSUE 5): flows that retime many circuits — corpus
// regressions, incremental clocking work, design-space sweeps — pay the
// process spawn, pass-registry setup and (above all) repeated identical
// retiming work on every CLI invocation. The daemon keeps one warm process
// with a shared work-stealing ThreadPool and a content-addressed result
// cache, and serves requests over a Unix-domain or loopback-TCP socket
// using the newline-delimited JSON protocol of server/protocol.h.
//
// Execution semantics are identical to `mcrt bulk` by construction: every
// request runs through the same execute_flow_job() core with a per-request
// FlowContext, CancelToken (chained session -> server), resource budgets
// and rollback-on-failure, so a served result — including the canonical
// per-job JSON record and the output BLIF bytes — cannot drift from what
// the batch CLI produces (the server differential test pins this).
//
// Lifecycle: start() binds and spins up the pool; run() accepts
// connections until request_stop() (a SIGINT-wired CancelToken, a
// `{"shutdown"}` frame, or a test) and then winds everything down —
// listening socket closed, sessions cancelled and drained, pool idle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "base/fault_injector.h"
#include "base/socket.h"
#include "base/thread_pool.h"
#include "pipeline/diagnostics.h"
#include "pipeline/pass_manager.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/session.h"

namespace mcrt {

struct ServerOptions {
  SocketEndpoint endpoint;
  /// Worker threads for job execution; 0 = ThreadPool default.
  std::size_t jobs = 0;
  /// Result-cache budget in bytes (0 disables caching).
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Flow-engine defaults for fields requests do not control (rollback,
  /// verbosity, equivalence effort). Per-request options own
  /// check_invariants / check_equivalence.
  PassManagerOptions manager;
  /// Per-request timeout ceiling applied when a request sets none (0 =
  /// unlimited).
  double default_timeout_seconds = 0;
  /// Default per-request budgets; a request's non-zero fields override.
  ResourceBudgets budgets;
  /// Pass registry for script compilation; nullptr = standard().
  const PassRegistry* registry = nullptr;
  /// Fault injection hooks (null = the MCRT_FAULT*-configured injector).
  FaultInjector* faults = nullptr;
  /// Server log (connection lifecycle, protocol errors); may be null.
  DiagnosticsSink* log = nullptr;
  /// Honor `{"shutdown": true}` frames (the smoke tests rely on it; long
  /// lived deployments may prefer signals only).
  bool allow_remote_shutdown = true;
  /// Accept-loop poll granularity: how fast stop requests are noticed.
  int accept_timeout_ms = 100;
};

class RetimingServer {
 public:
  explicit RetimingServer(ServerOptions options);
  ~RetimingServer();
  RetimingServer(const RetimingServer&) = delete;
  RetimingServer& operator=(const RetimingServer&) = delete;

  /// Binds the endpoint and starts the worker pool. Returns false and sets
  /// *error when the socket cannot be bound.
  [[nodiscard]] bool start(std::string* error);

  /// Accepts and serves connections on the calling thread until
  /// request_stop() — or `interrupt` (polled each accept timeout) — fires;
  /// then winds down sessions and returns. start() must have succeeded.
  void run(const CancelToken* interrupt = nullptr);

  /// Thread-safe (and signal-handler-safe via the stop token): makes run()
  /// return. Also honored by the `{"shutdown"}` frame.
  void request_stop() noexcept;

  /// The bound endpoint with any ephemeral TCP port resolved (valid after
  /// start()).
  [[nodiscard]] SocketEndpoint bound_endpoint() const;

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }

 private:
  friend class Session;

  // --- session-facing internals -------------------------------------------
  [[nodiscard]] ThreadPool& pool() { return *pool_; }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] const CancelToken* stop_token() const { return &stop_token_; }
  [[nodiscard]] FaultInjector& faults() const;
  void note_job_accepted();
  void note_job_finished(JobStatus status, bool cached);
  void log_note(const std::string& origin, const std::string& message);

  void reap_finished_sessions_locked();
  void shutdown_all_sessions();

  ServerOptions options_;
  ListenSocket listener_;
  std::unique_ptr<ThreadPool> pool_;
  ResultCache cache_;

  CancelToken stop_token_;  ///< parent of every session/request token
  std::atomic<bool> stopping_{false};

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;

  mutable std::mutex stats_mutex_;
  ServerStats counters_;
};

}  // namespace mcrt

// The `mcrt serve` daemon: a persistent retiming service.
//
// Motivation (ISSUE 5): flows that retime many circuits — corpus
// regressions, incremental clocking work, design-space sweeps — pay the
// process spawn, pass-registry setup and (above all) repeated identical
// retiming work on every CLI invocation. The daemon keeps one warm process
// with a shared work-stealing ThreadPool and a content-addressed result
// cache, and serves requests over a Unix-domain or loopback-TCP socket
// using the newline-delimited JSON protocol of server/protocol.h.
//
// Execution semantics are identical to `mcrt bulk` by construction: every
// request runs through the same execute_flow_job() core with a per-request
// FlowContext, CancelToken (chained session -> server), resource budgets
// and rollback-on-failure, so a served result — including the canonical
// per-job JSON record and the output BLIF bytes — cannot drift from what
// the batch CLI produces (the server differential test pins this).
//
// Lifecycle: start() binds and spins up the pool; run() accepts
// connections until request_stop() (a SIGINT-wired CancelToken, a
// `{"shutdown"}` frame, or a test) and then winds everything down —
// listening socket closed, sessions cancelled and drained, pool idle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/cancel.h"
#include "base/fault_injector.h"
#include "base/socket.h"
#include "base/thread_pool.h"
#include "pipeline/diagnostics.h"
#include "pipeline/pass_manager.h"
#include "server/admission.h"
#include "server/disk_cache.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/session.h"

namespace mcrt {

struct ServerOptions {
  SocketEndpoint endpoint;
  /// Worker threads for job execution; 0 = ThreadPool default.
  std::size_t jobs = 0;
  /// Result-cache budget in bytes (0 disables caching).
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Flow-engine defaults for fields requests do not control (rollback,
  /// verbosity, equivalence effort). Per-request options own
  /// check_invariants / check_equivalence.
  PassManagerOptions manager;
  /// Per-request timeout ceiling applied when a request sets none (0 =
  /// unlimited).
  double default_timeout_seconds = 0;
  /// Default per-request budgets; a request's non-zero fields override.
  ResourceBudgets budgets;
  /// Pass registry for script compilation; nullptr = standard().
  const PassRegistry* registry = nullptr;
  /// Fault injection hooks (null = the MCRT_FAULT*-configured injector).
  FaultInjector* faults = nullptr;
  /// Server log (connection lifecycle, protocol errors); may be null.
  DiagnosticsSink* log = nullptr;
  /// Honor `{"shutdown": true}` frames (the smoke tests rely on it; long
  /// lived deployments may prefer signals only).
  bool allow_remote_shutdown = true;
  /// Accept-loop poll granularity: how fast stop requests are noticed.
  int accept_timeout_ms = 100;
  /// Persistent second cache tier directory (empty = memory tier only).
  /// start() runs the crash-recovery scan and fails on an unusable dir.
  std::string disk_cache_dir;
  /// Disk-tier byte budget (`--disk-cache-mb`).
  std::size_t disk_cache_bytes = std::size_t{256} << 20;
  /// Disk-tier entry TTL in seconds (`--disk-cache-ttl-s`, 0 = no aging):
  /// entries older than this are deleted on the recovery scan and at
  /// lookup instead of being served.
  std::uint64_t disk_cache_ttl_seconds = 0;
  /// Admission bound: max concurrently admitted jobs across all sessions
  /// (0 = unbounded, the historical behavior). Overflow gets busy frames.
  std::size_t max_inflight = 0;
  /// Backoff hint carried by busy frames.
  int retry_after_ms = 200;
  /// Largest accepted request line; longer frames are answered with a
  /// structured error and discarded without desynchronizing the stream.
  std::size_t max_frame_bytes = std::size_t{32} << 20;
};

/// Rendezvous for identical in-flight requests: the first session to reach
/// a (netlist, flow) key executes it, followers block on `cv` and serve the
/// leader's freshly cached result. See RetimingServer::try_lead().
struct CoalescedExecution {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
};

class RetimingServer {
 public:
  explicit RetimingServer(ServerOptions options);
  ~RetimingServer();
  RetimingServer(const RetimingServer&) = delete;
  RetimingServer& operator=(const RetimingServer&) = delete;

  /// Binds the endpoint and starts the worker pool. Returns false and sets
  /// *error when the socket cannot be bound.
  [[nodiscard]] bool start(std::string* error);

  /// Accepts and serves connections on the calling thread until
  /// request_stop() — or `interrupt` (polled each accept timeout) — fires;
  /// then winds down sessions and returns. start() must have succeeded.
  void run(const CancelToken* interrupt = nullptr);

  /// Thread-safe (and signal-handler-safe via the stop token): makes run()
  /// return. Also honored by the `{"shutdown"}` frame.
  void request_stop() noexcept;

  /// The bound endpoint with any ephemeral TCP port resolved (valid after
  /// start()).
  [[nodiscard]] SocketEndpoint bound_endpoint() const;

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  /// nullopt when the server runs without a disk tier.
  [[nodiscard]] std::optional<DiskCacheStats> disk_cache_stats() const;
  [[nodiscard]] AdmissionController& admission() { return admission_; }

 private:
  friend class Session;

  // --- session-facing internals -------------------------------------------
  [[nodiscard]] ThreadPool& pool() { return *pool_; }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] const CancelToken* stop_token() const { return &stop_token_; }
  [[nodiscard]] FaultInjector& faults() const;
  /// Tiered lookup: memory first, then disk (a disk hit is promoted into
  /// the memory tier so the next hit costs microseconds again).
  /// `count_miss=false` for coalescing re-checks, which must not count one
  /// request's miss twice.
  [[nodiscard]] std::optional<CachedResult> cache_lookup(
      const CacheKey& key, const CancelToken* cancel, bool count_miss = true);
  /// Inserts into both tiers (the disk write is best-effort).
  void cache_insert(const CacheKey& key, CachedResult result,
                    const CancelToken* cancel);
  /// Coalescing: returns nullptr when the caller became the leader for
  /// `key` (it must call finish_lead() once its result is cached or its
  /// execution failed); otherwise the in-flight leader's rendezvous to
  /// block on.
  [[nodiscard]] std::shared_ptr<CoalescedExecution> try_lead(
      const CacheKey& key);
  void finish_lead(const CacheKey& key);
  void note_job_accepted();
  void note_job_finished(JobStatus status, bool cached);
  void note_busy();
  void note_coalesced();
  void log_note(const std::string& origin, const std::string& message);

  void reap_finished_sessions_locked();
  void shutdown_all_sessions();

  ServerOptions options_;
  ListenSocket listener_;
  std::unique_ptr<ThreadPool> pool_;
  ResultCache cache_;
  std::unique_ptr<DiskCache> disk_cache_;  ///< null without --disk-cache-dir
  AdmissionController admission_;

  std::mutex coalesce_mutex_;
  std::unordered_map<CacheKey, std::shared_ptr<CoalescedExecution>,
                     CacheKeyHash>
      leading_;

  CancelToken stop_token_;  ///< parent of every session/request token
  std::atomic<bool> stopping_{false};

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;

  mutable std::mutex stats_mutex_;
  ServerStats counters_;
};

}  // namespace mcrt

#include "server/disk_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "base/json.h"
#include "base/strings.h"

namespace mcrt {

namespace fs = std::filesystem;

namespace {

// FNV-1a 64: cheap, deterministic, catches torn writes and bit flips. Not
// cryptographic — the threat model is crashes and bad disks, not attackers
// (the cache directory has the same trust level as the daemon binary).
std::uint64_t checksum64(std::string_view a, std::string_view b) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  };
  mix(a);
  mix(b);
  return h;
}

std::uint64_t parse_hex64(std::string_view text, bool* ok) {
  std::uint64_t value = 0;
  if (text.empty() || text.size() > 16) {
    *ok = false;
    return 0;
  }
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      *ok = false;
      return 0;
    }
  }
  *ok = true;
  return value;
}

Json stats_to_json(const Netlist::Stats& stats) {
  Json object = Json::object();
  object.set("luts", stats.luts);
  object.set("registers", stats.registers);
  return object;
}

Netlist::Stats stats_from_json(const Json& object) {
  Netlist::Stats stats;
  stats.luts = static_cast<std::size_t>(object.at("luts").as_int(0));
  stats.registers = static_cast<std::size_t>(object.at("registers").as_int(0));
  return stats;
}

/// The job-record fields the result frame can observe: everything
/// bulk_job_result_to_json() serializes plus the streamed diagnostics.
/// (PhaseProfile, per-pass netlist stats and retime_stats never reach the
/// wire for a cached result, so they are deliberately not persisted.)
Json job_to_json(const BulkJobResult& job) {
  Json object = Json::object();
  object.set("name", job.name);
  object.set("input", job.input_path);
  object.set("output", job.output_path);
  object.set("success", job.success);
  object.set("status", job_status_name(job.status));
  object.set("error", job.error);
  object.set("seconds", job.seconds);
  object.set("before", stats_to_json(job.before));
  object.set("after", stats_to_json(job.after));
  object.set("period_before", job.period_before);
  object.set("period_after", job.period_after);
  Json passes = Json::array();
  for (const PassExecution& pass : job.executed) {
    Json entry = Json::object();
    entry.set("name", pass.name);
    entry.set("seconds", pass.seconds);
    entry.set("success", pass.success);
    entry.set("rolled_back", pass.rolled_back);
    entry.set("summary", pass.summary);
    passes.push_back(std::move(entry));
  }
  object.set("passes", std::move(passes));
  Json diagnostics = Json::array();
  for (const Diagnostic& diag : job.diagnostics) {
    Json entry = Json::object();
    entry.set("severity", diag_severity_name(diag.severity));
    entry.set("origin", diag.origin);
    entry.set("message", diag.message);
    diagnostics.push_back(std::move(entry));
  }
  object.set("diagnostics", std::move(diagnostics));
  return object;
}

BulkJobResult job_from_json(const Json& object) {
  BulkJobResult job;
  job.name = object.at("name").as_string();
  job.input_path = object.at("input").as_string();
  job.output_path = object.at("output").as_string();
  job.success = object.at("success").as_bool();
  if (const auto status = job_status_from_name(object.at("status").as_string())) {
    job.status = *status;
  }
  job.error = object.at("error").as_string();
  job.seconds = object.at("seconds").as_number(0);
  job.before = stats_from_json(object.at("before"));
  job.after = stats_from_json(object.at("after"));
  job.period_before = object.at("period_before").as_int(0);
  job.period_after = object.at("period_after").as_int(0);
  for (const Json& entry : object.at("passes").as_array()) {
    PassExecution pass;
    pass.name = entry.at("name").as_string();
    pass.seconds = entry.at("seconds").as_number(0);
    pass.success = entry.at("success").as_bool();
    pass.rolled_back = entry.at("rolled_back").as_bool();
    pass.summary = entry.at("summary").as_string();
    job.executed.push_back(std::move(pass));
  }
  for (const Json& entry : object.at("diagnostics").as_array()) {
    Diagnostic diag;
    const std::string& severity = entry.at("severity").as_string();
    diag.severity = severity == "error"     ? DiagSeverity::kError
                    : severity == "warning" ? DiagSeverity::kWarning
                                            : DiagSeverity::kNote;
    diag.origin = entry.at("origin").as_string();
    diag.message = entry.at("message").as_string();
    job.diagnostics.push_back(std::move(diag));
  }
  return job;
}

}  // namespace

std::string DiskCache::entry_file_name(const CacheKey& key) {
  return str_format("%016llx%016llx-%016llx.entry",
                    static_cast<unsigned long long>(key.netlist.hi),
                    static_cast<unsigned long long>(key.netlist.lo),
                    static_cast<unsigned long long>(key.flow));
}

std::string DiskCache::encode_entry(const CacheKey& key,
                                    const CachedResult& result) {
  Json meta = Json::object();
  Json key_json = Json::object();
  key_json.set("hi", str_format("%016llx",
                                static_cast<unsigned long long>(key.netlist.hi)));
  key_json.set("lo", str_format("%016llx",
                                static_cast<unsigned long long>(key.netlist.lo)));
  key_json.set("flow",
               str_format("%016llx", static_cast<unsigned long long>(key.flow)));
  meta.set("key", std::move(key_json));
  meta.set("job", job_to_json(result.job));
  const std::string meta_text = meta.write();

  std::string out = str_format(
      "%s meta=%zu blif=%zu sum=%016llx\n", kDiskCacheMagic, meta_text.size(),
      result.blif.size(),
      static_cast<unsigned long long>(checksum64(meta_text, result.blif)));
  out += meta_text;
  out += '\n';
  out += result.blif;
  return out;
}

bool DiskCache::decode_entry(std::string_view bytes, CacheKey* key,
                             CachedResult* result, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string_view::npos) return fail("missing header line");
  const std::string_view header = bytes.substr(0, header_end);
  const std::string_view magic(kDiskCacheMagic);
  if (header.substr(0, magic.size()) != magic) return fail("bad magic");

  std::size_t meta_len = 0, blif_len = 0;
  unsigned long long sum = 0;
  {
    // " meta=<M> blif=<N> sum=<hex>"
    const std::string header_text(header.substr(magic.size()));
    if (std::sscanf(header_text.c_str(), " meta=%zu blif=%zu sum=%llx",
                    &meta_len, &blif_len, &sum) != 3) {
      return fail("malformed header");
    }
  }
  const std::size_t body = header_end + 1;
  if (bytes.size() != body + meta_len + 1 + blif_len) {
    return fail("truncated entry (length mismatch)");
  }
  const std::string_view meta_text = bytes.substr(body, meta_len);
  if (bytes[body + meta_len] != '\n') return fail("malformed payload framing");
  const std::string_view blif = bytes.substr(body + meta_len + 1, blif_len);
  if (checksum64(meta_text, blif) != sum) return fail("checksum mismatch");

  auto parsed = Json::parse(meta_text);
  if (std::holds_alternative<JsonParseError>(parsed)) {
    return fail("malformed meta JSON");
  }
  const Json& meta = std::get<Json>(parsed);
  const Json& key_json = meta.at("key");
  bool ok_hi = false, ok_lo = false, ok_flow = false;
  CacheKey decoded;
  decoded.netlist.hi = parse_hex64(key_json.at("hi").as_string(), &ok_hi);
  decoded.netlist.lo = parse_hex64(key_json.at("lo").as_string(), &ok_lo);
  decoded.flow = parse_hex64(key_json.at("flow").as_string(), &ok_flow);
  if (!ok_hi || !ok_lo || !ok_flow) return fail("malformed key");
  if (key != nullptr) *key = decoded;
  if (result != nullptr) {
    result->job = job_from_json(meta.at("job"));
    result->blif = std::string(blif);
  }
  return true;
}

DiskCache::DiskCache(std::string directory, std::size_t capacity_bytes,
                     std::uint64_t ttl_seconds, FaultInjector* faults)
    : directory_(std::move(directory)),
      capacity_bytes_(capacity_bytes),
      ttl_seconds_(ttl_seconds),
      faults_(faults) {}

bool DiskCache::expired_locked(fs::file_time_type mtime,
                               fs::file_time_type now) const {
  if (ttl_seconds_ == 0) return false;
  // A future mtime (clock skew, copied directory) counts as fresh.
  return now > mtime && now - mtime >= std::chrono::seconds(ttl_seconds_);
}

FaultInjector& DiskCache::injector() const {
  return faults_ != nullptr ? *faults_ : FaultInjector::global();
}

std::string DiskCache::path_of(const std::string& file_name) const {
  return directory_ + "/" + file_name;
}

bool DiskCache::open(std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  counters_ = DiskCacheStats{};
  counters_.capacity_bytes = capacity_bytes_;

  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + directory_ + ": " + ec.message();
    }
    return false;
  }
  fs::create_directories(directory_ + "/quarantine", ec);

  // Recovery scan. Oldest-first so the LRU list ends up hottest-first.
  struct Found {
    fs::file_time_type mtime;
    std::string name;
    CacheKey key;
    std::size_t bytes = 0;
  };
  std::vector<Found> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      // A crash mid-write: the rename never happened, the bytes are
      // garbage by definition. Delete.
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
      continue;
    }
    if (name.size() < 6 || name.substr(name.size() - 6) != ".entry") continue;

    std::string bytes;
    bool read_ok = false;
    if (FILE* file = std::fopen(entry.path().c_str(), "rb")) {
      char chunk[1 << 16];
      std::size_t n = 0;
      while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
        bytes.append(chunk, n);
      }
      read_ok = std::ferror(file) == 0;
      std::fclose(file);
    }
    CacheKey key;
    std::string why;
    if (!read_ok || !decode_entry(bytes, &key, nullptr, &why) ||
        entry_file_name(key) != name) {
      quarantine_locked(name);
      continue;
    }
    const fs::file_time_type mtime = entry.last_write_time();
    if (expired_locked(mtime, fs::file_time_type::clock::now())) {
      // Aged out while the daemon was down. Age is not corruption: delete
      // instead of quarantining.
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
      ++counters_.expired;
      continue;
    }
    found.push_back(Found{mtime, name, key, bytes.size()});
  }
  if (ec) {
    if (error != nullptr) {
      *error = "cannot scan " + directory_ + ": " + ec.message();
    }
    return false;
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
            });
  for (const Found& entry : found) {
    lru_.push_front(Entry{entry.key, entry.bytes});
    index_[entry.key] = lru_.begin();
    bytes_ += entry.bytes;
  }
  evict_to_fit_locked();
  open_ = true;
  return true;
}

std::optional<CachedResult> DiskCache::lookup(const CacheKey& key,
                                              const CancelToken* cancel,
                                              bool count_miss) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_ || capacity_bytes_ == 0) {
    if (count_miss) ++counters_.misses;
    return std::nullopt;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (count_miss) ++counters_.misses;
    return std::nullopt;
  }
  const std::string name = entry_file_name(key);
  if (ttl_seconds_ > 0) {
    // The file's mtime, not an indexed timestamp, is the TTL epoch — it
    // stays honest if another process rewrites or backdates the entry.
    std::error_code ec;
    const fs::file_time_type mtime = fs::last_write_time(path_of(name), ec);
    if (!ec && expired_locked(mtime, fs::file_time_type::clock::now())) {
      // Aged out since insertion: delete before reading a single byte so a
      // stale result can never be served.
      std::error_code ignore;
      fs::remove(path_of(name), ignore);
      erase_index_locked(key);
      ++counters_.expired;
      if (count_miss) ++counters_.misses;
      return std::nullopt;
    }
  }

  std::string bytes;
  bool read_ok = false;
  if (FILE* file = std::fopen(path_of(name).c_str(), "rb")) {
    char chunk[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
      bytes.append(chunk, n);
    }
    read_ok = std::ferror(file) == 0;
    std::fclose(file);
  }

  switch (injector().fire("io:read:" + name)) {
    case FaultInjector::Action::kNone:
      break;
    case FaultInjector::Action::kCorrupt:
      // Bit rot between write and read; the checksum must catch it.
      if (!bytes.empty()) bytes[bytes.size() / 2] ^= 0x40;
      break;
    case FaultInjector::Action::kStall:
      while (cancel_requested(cancel) == StopReason::kNone) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      [[fallthrough]];
    case FaultInjector::Action::kThrow:
    case FaultInjector::Action::kFail:
    case FaultInjector::Action::kShortWrite:
    case FaultInjector::Action::kFsyncFail:
    case FaultInjector::Action::kEnospc:
      read_ok = false;  // transient read failure: miss, entry kept
      break;
  }
  if (!read_ok) {
    ++counters_.misses;
    return std::nullopt;
  }

  CachedResult result;
  std::string why;
  CacheKey decoded;
  if (!decode_entry(bytes, &decoded, &result, &why) || decoded != key) {
    // Verification failed: this entry must never be served again.
    quarantine_locked(name);
    erase_index_locked(key);
    ++counters_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  return result;
}

void DiskCache::insert(const CacheKey& key, const CachedResult& result,
                       const CancelToken* cancel) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!open_ || capacity_bytes_ == 0) return;
  if (result.job.status != JobStatus::kOk) return;
  const std::string encoded = encode_entry(key, result);
  if (encoded.size() > capacity_bytes_) return;
  const std::string name = entry_file_name(key);
  const std::string target = path_of(name);
  const std::string temp = target + ".tmp";

  std::size_t write_bytes = encoded.size();
  bool publish_torn = false;
  switch (injector().fire("io:write:" + name)) {
    case FaultInjector::Action::kNone:
      break;
    case FaultInjector::Action::kShortWrite:
      // Model a crash after rename but before the page cache flushed: the
      // entry is published torn. The next scan or read quarantines it.
      write_bytes = encoded.size() / 2;
      publish_torn = true;
      break;
    case FaultInjector::Action::kEnospc:
    case FaultInjector::Action::kFsyncFail:
    case FaultInjector::Action::kThrow:
    case FaultInjector::Action::kFail:
      ++counters_.write_failures;
      return;
    case FaultInjector::Action::kStall:
      // The chaos harness's kill-mid-write point: SIGKILL lands here with
      // the .tmp (or nothing) on disk, never a half-renamed entry.
      for (;;) {
        poll_cancel(cancel);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    case FaultInjector::Action::kCorrupt:
      break;  // corrupt is a read-side action; write proceeds
  }

  std::error_code ec;
  FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    ++counters_.write_failures;
    return;
  }
  const std::size_t written = std::fwrite(encoded.data(), 1, write_bytes, file);
  const bool write_ok = std::fclose(file) == 0 && written == write_bytes;
  if (!write_ok) {
    fs::remove(temp, ec);
    ++counters_.write_failures;
    return;
  }
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    ++counters_.write_failures;
    return;
  }

  if (publish_torn) {
    // The file exists but is torn; count the failure and index it anyway —
    // exactly what a real crash leaves behind for recovery to catch.
    ++counters_.write_failures;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, write_bytes});
  index_[key] = lru_.begin();
  bytes_ += write_bytes;
  ++counters_.insertions;
  evict_to_fit_locked();
}

void DiskCache::quarantine_locked(const std::string& file_name) {
  std::error_code ec;
  fs::rename(path_of(file_name), directory_ + "/quarantine/" + file_name, ec);
  if (ec) fs::remove(path_of(file_name), ec);  // worst case: drop it
  ++counters_.quarantined;
}

void DiskCache::erase_index_locked(const CacheKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

void DiskCache::evict_to_fit_locked() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& cold = lru_.back();
    std::error_code ec;
    fs::remove(path_of(entry_file_name(cold.key)), ec);
    bytes_ -= cold.bytes;
    index_.erase(cold.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

DiskCacheStats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DiskCacheStats stats = counters_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

}  // namespace mcrt

#include "server/admission.h"

#include <algorithm>

namespace mcrt {

AdmissionController::AdmissionController(std::size_t max_inflight,
                                         int retry_after_ms)
    : max_inflight_(max_inflight), retry_after_ms_(retry_after_ms) {}

AdmissionController::Decision AdmissionController::try_admit(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Decision decision;
  decision.retry_after_ms = retry_after_ms_;
  if (draining_) {
    ++rejected_draining_;
    decision.reason = "draining";
    return decision;
  }
  if (max_inflight_ != 0) {
    if (inflight_ >= max_inflight_) {
      ++rejected_overload_;
      decision.reason = "overloaded";
      return decision;
    }
    // Fair share across active tenants. This tenant counts as active for
    // the division (whether or not it already holds slots), so the cap is
    // at least 1 and a new tenant can always claim its first slot.
    const std::size_t held = per_tenant_[tenant];  // inserts; counted below
    const std::size_t active = std::max<std::size_t>(1, per_tenant_.size());
    const std::size_t share =
        std::max<std::size_t>(1, max_inflight_ / active);
    if (held >= share) {
      ++rejected_tenant_;
      decision.reason = "tenant-throttled";
      return decision;
    }
    ++per_tenant_[tenant];
  } else {
    ++per_tenant_[tenant];
  }
  ++inflight_;
  ++admitted_;
  decision.admitted = true;
  decision.reason.clear();
  return decision;
}

void AdmissionController::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_ > 0) --inflight_;
  auto it = per_tenant_.find(tenant);
  if (it != per_tenant_.end()) {
    if (it->second > 1) {
      --it->second;
    } else {
      per_tenant_.erase(it);  // tenant went idle: stops counting as active
    }
  }
}

void AdmissionController::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats stats;
  stats.inflight = inflight_;
  stats.max_inflight = max_inflight_;
  stats.active_tenants = per_tenant_.size();
  stats.draining = draining_;
  stats.admitted = admitted_;
  stats.rejected_overload = rejected_overload_;
  stats.rejected_tenant = rejected_tenant_;
  stats.rejected_draining = rejected_draining_;
  stats.retry_after_ms = retry_after_ms_;
  return stats;
}

}  // namespace mcrt

#include "server/client.h"

#include <algorithm>

namespace mcrt {
namespace {

Diagnostic diagnostic_from_frame(const Json& frame) {
  Diagnostic diag;
  const std::string& severity = frame.at("severity").as_string();
  if (severity == "error") {
    diag.severity = DiagSeverity::kError;
  } else if (severity == "warning") {
    diag.severity = DiagSeverity::kWarning;
  } else {
    diag.severity = DiagSeverity::kNote;
  }
  diag.origin = frame.at("origin").as_string();
  diag.message = frame.at("message").as_string();
  return diag;
}

}  // namespace

int RetryPolicy::delay_ms(int attempt, int server_hint_ms) const {
  std::int64_t delay = base_delay_ms;
  for (int i = 1; i < attempt; ++i) {
    delay = std::min<std::int64_t>(delay * 2, max_delay_ms);
  }
  if (server_hint_ms > delay) delay = server_hint_ms;
  // splitmix64 over (seed, attempt): deterministic, well-mixed jitter.
  std::uint64_t x =
      jitter_seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  delay += static_cast<std::int64_t>(x % (static_cast<std::uint64_t>(delay) / 2 + 1));
  return static_cast<int>(std::min<std::int64_t>(delay, max_delay_ms));
}

bool ServeClient::connect(const SocketEndpoint& endpoint, std::string* error) {
  stream_ = connect_socket(endpoint, error);
  if (!stream_.valid()) return false;
  std::optional<Json> frame = read_control_frame(error);
  if (!frame || frame->at("frame").as_string() != "hello") {
    if (error != nullptr && error->empty()) {
      *error = "no hello greeting from " + endpoint.describe();
    }
    return false;
  }
  greeting_ = std::move(*frame);
  return true;
}

bool ServeClient::submit(const JobRequest& request) {
  RequestFrame frame;
  frame.kind = RequestFrame::Kind::kJob;
  frame.job = request;
  if (!stream_.write_line(write_request_frame(frame))) return false;
  if (std::find(pending_.begin(), pending_.end(), request.id) ==
      pending_.end()) {
    pending_.push_back(request.id);
  }
  // A re-submission resets the slot (drops the busy/transient outcome and
  // stale diagnostics) instead of duplicating the pending entry.
  ClientJobResult& slot = results_[request.id];
  slot = ClientJobResult{};
  slot.id = request.id;
  return true;
}

bool ServeClient::cancel(const std::string& id) {
  RequestFrame frame;
  frame.kind = RequestFrame::Kind::kCancel;
  frame.cancel_id = id;
  return stream_.write_line(write_request_frame(frame));
}

std::optional<Json> ServeClient::query_stats(std::string* error) {
  RequestFrame request;
  request.kind = RequestFrame::Kind::kStats;
  if (!stream_.write_line(write_request_frame(request))) {
    if (error != nullptr) *error = "connection lost";
    return std::nullopt;
  }
  for (;;) {
    std::optional<Json> frame = read_control_frame(error);
    if (!frame) return std::nullopt;
    if (frame->at("frame").as_string() == "stats") return frame;
  }
}

bool ServeClient::query_hello(std::string* error) {
  RequestFrame request;
  request.kind = RequestFrame::Kind::kHello;
  if (!stream_.write_line(write_request_frame(request))) {
    if (error != nullptr) *error = "connection lost";
    return false;
  }
  for (;;) {
    std::optional<Json> frame = read_control_frame(error);
    if (!frame) return false;
    if (frame->at("frame").as_string() == "hello") {
      greeting_ = std::move(*frame);
      return true;
    }
  }
}

std::optional<Json> ServeClient::query_health(std::string* error) {
  RequestFrame request;
  request.kind = RequestFrame::Kind::kHealth;
  if (!stream_.write_line(write_request_frame(request))) {
    if (error != nullptr) *error = "connection lost";
    return std::nullopt;
  }
  for (;;) {
    std::optional<Json> frame = read_control_frame(error);
    if (!frame) return std::nullopt;
    if (frame->at("frame").as_string() == "health") return frame;
  }
}

std::optional<Json> ServeClient::send_drain(std::string* error) {
  RequestFrame request;
  request.kind = RequestFrame::Kind::kDrain;
  if (!stream_.write_line(write_request_frame(request))) {
    if (error != nullptr) *error = "connection lost";
    return std::nullopt;
  }
  for (;;) {
    std::optional<Json> frame = read_control_frame(error);
    if (!frame) return std::nullopt;
    if (frame->at("frame").as_string() == "drain-ack") return frame;
  }
}

bool ServeClient::send_shutdown() {
  RequestFrame request;
  request.kind = RequestFrame::Kind::kShutdown;
  return stream_.write_line(write_request_frame(request));
}

bool ServeClient::collect(std::vector<ClientJobResult>* results,
                          std::string* error) {
  auto outstanding = [this] {
    return std::any_of(pending_.begin(), pending_.end(),
                       [this](const std::string& id) {
                         auto it = results_.find(id);
                         return it != results_.end() && it->second.status.empty();
                       });
  };
  while (outstanding()) {
    if (!read_one_frame(error)) {
      if (error != nullptr && error->empty()) {
        *error = "connection closed with results outstanding";
      }
      return false;
    }
  }
  if (results != nullptr) {
    results->clear();
    for (const std::string& id : pending_) results->push_back(results_[id]);
  }
  return true;
}

std::optional<Json> ServeClient::read_one_frame(std::string* error) {
  std::optional<std::string> line;
  do {
    line = stream_.read_line();
    if (!line) {
      if (error != nullptr) *error = "connection closed";
      return std::nullopt;
    }
  } while (line->empty());
  auto parsed = Json::parse(*line);
  if (const auto* err = std::get_if<JsonParseError>(&parsed)) {
    if (error != nullptr) {
      *error = "malformed frame from server: " + err->message;
    }
    return std::nullopt;
  }
  Json frame = std::move(std::get<Json>(parsed));
  const std::string& kind = frame.at("frame").as_string();
  if (kind == "accepted" || kind == "diagnostic" || kind == "result" ||
      kind == "busy" || kind == "error") {
    fold_job_frame(frame);
    return Json();  // folded: not a control frame
  }
  return frame;
}

std::optional<Json> ServeClient::read_control_frame(std::string* error) {
  for (;;) {
    std::optional<Json> frame = read_one_frame(error);
    if (!frame) return std::nullopt;
    if (!frame->is_null()) return frame;
  }
}

void ServeClient::fold_job_frame(const Json& frame) {
  const std::string& kind = frame.at("frame").as_string();
  const std::string& id = frame.at("id").as_string();
  auto it = results_.find(id);
  if (it == results_.end()) {
    if (kind == "error") {
      protocol_errors_.push_back(frame.at("message").as_string());
    }
    return;
  }
  ClientJobResult& slot = it->second;
  if (kind == "accepted") return;
  if (kind == "diagnostic") {
    slot.diagnostics.push_back(diagnostic_from_frame(frame));
    return;
  }
  if (kind == "busy") {
    // Terminal for this submission; retryable() signals the retry loop.
    slot.status = "busy";
    slot.busy = true;
    slot.retry_after_ms = static_cast<int>(frame.at("retry_after_ms").as_int(0));
    slot.error = frame.at("reason").as_string();
    return;
  }
  if (kind == "error") {
    slot.status = "failed";
    slot.error = frame.at("message").as_string();
    return;
  }
  // result
  slot.name = frame.at("name").as_string();
  slot.status = frame.at("status").as_string();
  slot.success = frame.at("success").as_bool();
  slot.cached = frame.at("cached").as_bool();
  slot.error = frame.at("error").as_string();
  slot.job_json = frame.at("job").as_string();
  slot.blif = frame.at("blif").as_string();
}

}  // namespace mcrt

// Client side of the `mcrt serve` protocol.
//
// ServeClient speaks the newline-delimited JSON protocol for the `mcrt
// client` subcommand and the server tests: connect (consuming the daemon's
// greeting hello frame), pipeline any number of job submissions, then
// collect() the terminal result frames — responses arrive in completion
// order and are matched back to submissions by id, with streamed
// diagnostic frames folded into their job's result. Control round-trips
// (hello, stats, cancel, shutdown) interleave safely with in-flight jobs:
// any job frames read while waiting for a control reply are folded into
// the in-flight state, not dropped.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/socket.h"
#include "pipeline/diagnostics.h"
#include "server/protocol.h"

namespace mcrt {

/// One job request's terminal outcome as seen over the wire.
struct ClientJobResult {
  std::string id;
  std::string name;
  std::string status;  ///< job_status_name: "ok", "failed", ...
  bool success = false;
  bool cached = false;   ///< served from the daemon's result cache
  std::string error;     ///< failure reason (empty on success)
  std::string job_json;  ///< the per-job report object (pretty, bulk format)
  std::string blif;      ///< result netlist (return_blif requests only)
  std::vector<Diagnostic> diagnostics;  ///< streamed diagnostic frames
};

class ServeClient {
 public:
  /// Connects and consumes the greeting hello frame. Returns false and
  /// sets *error on connect/handshake failure.
  [[nodiscard]] bool connect(const SocketEndpoint& endpoint,
                             std::string* error);

  /// The daemon's greeting (version, protocol, build type, workers).
  [[nodiscard]] const Json& greeting() const noexcept { return greeting_; }

  /// Sends a job submission; its result arrives via collect().
  [[nodiscard]] bool submit(const JobRequest& request);
  /// Sends `{"cancel": id}`; the cancelled job still delivers a (terminal,
  /// status "cancelled") result frame.
  [[nodiscard]] bool cancel(const std::string& id);
  /// `{"stats"}` round-trip; job frames arriving meanwhile are folded in.
  [[nodiscard]] std::optional<Json> query_stats(std::string* error);
  /// `{"hello"}` round-trip (refreshes greeting()).
  [[nodiscard]] bool query_hello(std::string* error);
  /// Asks the daemon to stop (when it allows remote shutdown).
  [[nodiscard]] bool send_shutdown();

  /// Blocks until every submitted job has its result (submission order).
  /// Returns false and sets *error when the connection drops first.
  [[nodiscard]] bool collect(std::vector<ClientJobResult>* results,
                             std::string* error);

  /// Protocol-level error frames the daemon sent for unmatchable requests.
  [[nodiscard]] const std::vector<std::string>& protocol_errors() const {
    return protocol_errors_;
  }

  void close() { stream_.close(); }

 private:
  /// Reads and processes exactly one frame: job-related frames are folded
  /// into the in-flight state, control frames (hello/stats/cancel-ack/bye)
  /// are returned as-is; folded frames return an is-null Json. Returns
  /// std::nullopt on EOF/error.
  [[nodiscard]] std::optional<Json> read_one_frame(std::string* error);
  /// read_one_frame() until a control frame arrives.
  [[nodiscard]] std::optional<Json> read_control_frame(std::string* error);
  void fold_job_frame(const Json& frame);

  SocketStream stream_;
  Json greeting_;
  std::vector<std::string> pending_;  ///< ids submitted, result outstanding
  std::map<std::string, ClientJobResult> results_;
  std::vector<std::string> protocol_errors_;
};

}  // namespace mcrt

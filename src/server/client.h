// Client side of the `mcrt serve` protocol.
//
// ServeClient speaks the newline-delimited JSON protocol for the `mcrt
// client` subcommand and the server tests: connect (consuming the daemon's
// greeting hello frame), pipeline any number of job submissions, then
// collect() the terminal result frames — responses arrive in completion
// order and are matched back to submissions by id, with streamed
// diagnostic frames folded into their job's result. Control round-trips
// (hello, stats, cancel, shutdown) interleave safely with in-flight jobs:
// any job frames read while waiting for a control reply are folded into
// the in-flight state, not dropped.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/socket.h"
#include "pipeline/diagnostics.h"
#include "server/protocol.h"

namespace mcrt {

/// One job request's terminal outcome as seen over the wire.
struct ClientJobResult {
  std::string id;
  std::string name;
  std::string status;  ///< job_status_name: "ok", "failed", ...; "busy"
  bool success = false;
  bool cached = false;   ///< served from the daemon's result cache
  bool busy = false;     ///< admission rejected the submission (retryable)
  int retry_after_ms = 0;  ///< the busy frame's backoff hint
  std::string error;     ///< failure reason (empty on success)
  std::string job_json;  ///< the per-job report object (pretty, bulk format)
  std::string blif;      ///< result netlist (return_blif requests only)
  std::vector<Diagnostic> diagnostics;  ///< streamed diagnostic frames

  /// Transient outcomes a retry loop should re-submit: an admission
  /// rejection (busy frame) or the kIoError class `mcrt bulk` also
  /// retries. Deterministic failures/timeouts/cancellations are final.
  [[nodiscard]] bool retryable() const {
    return busy || status == "ioerror";
  }
};

/// Exponential backoff with deterministic jitter for re-submitting
/// retryable outcomes. Deterministic on (seed, attempt) so tests and the
/// chaos harness replay the exact schedule.
struct RetryPolicy {
  int max_attempts = 1;    ///< total submission attempts (1 = no retry)
  int base_delay_ms = 50;  ///< first retry's backoff before jitter
  int max_delay_ms = 2000;
  std::uint64_t jitter_seed = 0;

  /// Backoff before retry number `attempt` (1-based): base * 2^(attempt-1)
  /// with up to +50% jitter, floored by the server's retry-after hint and
  /// capped at max_delay_ms.
  [[nodiscard]] int delay_ms(int attempt, int server_hint_ms = 0) const;
};

class ServeClient {
 public:
  /// Connects and consumes the greeting hello frame. Returns false and
  /// sets *error on connect/handshake failure.
  [[nodiscard]] bool connect(const SocketEndpoint& endpoint,
                             std::string* error);

  /// The daemon's greeting (version, protocol, build type, workers).
  [[nodiscard]] const Json& greeting() const noexcept { return greeting_; }

  /// Sends a job submission; its result arrives via collect(). Submitting
  /// an id that already has an outcome (a busy rejection, a transient
  /// failure) re-submits it: the slot is reset, not duplicated.
  [[nodiscard]] bool submit(const JobRequest& request);
  /// Sends `{"cancel": id}`; the cancelled job still delivers a (terminal,
  /// status "cancelled") result frame.
  [[nodiscard]] bool cancel(const std::string& id);
  /// `{"stats"}` round-trip; job frames arriving meanwhile are folded in.
  [[nodiscard]] std::optional<Json> query_stats(std::string* error);
  /// `{"hello"}` round-trip (refreshes greeting()).
  [[nodiscard]] bool query_hello(std::string* error);
  /// `{"health"}` round-trip: liveness, in-flight load, drain state.
  [[nodiscard]] std::optional<Json> query_health(std::string* error);
  /// `{"drain"}` round-trip; returns the drain-ack frame.
  [[nodiscard]] std::optional<Json> send_drain(std::string* error);
  /// Asks the daemon to stop (when it allows remote shutdown).
  [[nodiscard]] bool send_shutdown();

  /// Blocks until every submitted job has its result (submission order).
  /// Returns false and sets *error when the connection drops first.
  [[nodiscard]] bool collect(std::vector<ClientJobResult>* results,
                             std::string* error);

  /// Protocol-level error frames the daemon sent for unmatchable requests.
  [[nodiscard]] const std::vector<std::string>& protocol_errors() const {
    return protocol_errors_;
  }

  void close() { stream_.close(); }

 private:
  /// Reads and processes exactly one frame: job-related frames are folded
  /// into the in-flight state, control frames (hello/stats/cancel-ack/bye)
  /// are returned as-is; folded frames return an is-null Json. Returns
  /// std::nullopt on EOF/error.
  [[nodiscard]] std::optional<Json> read_one_frame(std::string* error);
  /// read_one_frame() until a control frame arrives.
  [[nodiscard]] std::optional<Json> read_control_frame(std::string* error);
  void fold_job_frame(const Json& frame);

  SocketStream stream_;
  Json greeting_;
  std::vector<std::string> pending_;  ///< ids submitted, result outstanding
  std::map<std::string, ClientJobResult> results_;
  std::vector<std::string> protocol_errors_;
};

}  // namespace mcrt

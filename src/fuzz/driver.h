// The fuzz campaign driver behind `mcrt fuzz`.
//
// run_fuzz() samples deterministic cases (fuzz/case_gen.h), runs each
// through its differential oracle (fuzz/oracles.h), and on a mismatch
// minimizes the case (fuzz/shrinker.h) and writes a self-contained
// `mcrt-fuzz-repro/1` file into `out_dir`. The run is replayable two ways:
//
//   - same --seed (and --cases) => the same case sequence and, in
//     canonical mode, a byte-identical JSON report;
//   - every case's own 64-bit seed is printed and recorded, and
//     `mcrt fuzz --seed <case_seed> --cases 1 --oracle <name>`
//     regenerates exactly that case.
//
// With a wall-clock budget instead of a case count, the sampled sequence
// is still the same deterministic stream — the budget only decides how far
// down it the run gets.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "fuzz/case_gen.h"
#include "fuzz/oracles.h"
#include "fuzz/shrinker.h"

namespace mcrt {

struct FuzzDriverOptions {
  std::uint64_t seed = 1;
  /// Number of cases to run; 0 = run until the budget expires.
  std::size_t cases = 0;
  /// Wall-clock budget in seconds; 0 = none (then `cases` must be set).
  /// Both zero defaults to a 60 second budget.
  double budget_seconds = 0;
  /// Restrict to one engine pair (default: round-robin over all four).
  std::optional<OracleKind> only_oracle;
  /// Where failing reproducers are written ("" = don't write files).
  std::string out_dir;
  /// Drop wall-clock fields from the report so two runs of the same seed
  /// and case count are byte-identical.
  bool canonical = false;
  /// Minimize failing cases before writing the reproducer.
  bool shrink = true;
  ShrinkOptions shrink_options;
  OracleOptions oracle;
  const CancelToken* cancel = nullptr;
  /// Plant a bug (oracles.h install_break spec) into every case — the
  /// harness self-test proving find -> shrink -> reproduce end to end.
  std::string break_spec;
  /// Per-case progress line sink (the CLI wires this to stderr).
  std::function<void(const std::string&)> progress;
};

/// One case's outcome in the run report.
struct FuzzCaseOutcome {
  std::string name;
  std::uint64_t seed = 0;
  OracleKind oracle = OracleKind::kSerialVsBulk;
  std::string script;
  bool pass = true;
  std::string failure;  ///< first failing leg ("leg: detail")
  std::vector<OracleLeg> legs;
  std::string repro_path;      ///< written reproducer (failures only)
  std::size_t shrunk_luts = 0; ///< LUTs in the minimized case (failures)
  std::size_t original_luts = 0;
  double seconds = 0;          ///< case wall clock (dropped when canonical)
};

struct FuzzRunReport {
  std::uint64_t seed = 0;
  std::size_t cases_run = 0;
  std::size_t failures = 0;
  double wall_seconds = 0;
  std::vector<FuzzCaseOutcome> outcomes;

  /// The `mcrt fuzz --report` document, schema "mcrt-fuzz-report/1".
  /// Canonical mode drops every wall-clock field.
  [[nodiscard]] std::string to_json(bool canonical) const;
};

[[nodiscard]] FuzzRunReport run_fuzz(const FuzzDriverOptions& options);

}  // namespace mcrt
